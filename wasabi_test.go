package wasabi

import (
	"strings"
	"testing"
)

func TestCorpusHasEightApps(t *testing.T) {
	apps := Corpus()
	if len(apps) != 8 {
		t.Fatalf("corpus = %d apps", len(apps))
	}
	codes := map[string]bool{}
	for _, a := range apps {
		codes[a.Code] = true
	}
	for _, want := range []string{"HA", "HD", "MA", "YA", "HB", "HI", "CA", "EL"} {
		if !codes[want] {
			t.Errorf("missing app %s", want)
		}
	}
}

func TestAppByCode(t *testing.T) {
	if _, err := AppByCode("HB"); err != nil {
		t.Error(err)
	}
	if _, err := AppByCode("nope"); err == nil {
		t.Error("expected error for unknown code")
	}
}

func TestPipelineAnalyzeFindsSeededBugs(t *testing.T) {
	p := NewPipeline(DefaultConfig())
	app, err := AppByCode("CA")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := p.Analyze(app)
	if err != nil {
		t.Fatal(err)
	}
	if rep.App != "CA" || rep.StructuresTotal == 0 {
		t.Fatalf("report = %+v", rep)
	}
	var sawDynamic, sawStatic bool
	for _, b := range rep.Bugs {
		switch b.Workflow {
		case "dynamic":
			sawDynamic = true
		case "static-llm":
			sawStatic = true
		}
		if b.Kind == "" || b.Coordinator == "" {
			t.Errorf("incomplete bug report: %+v", b)
		}
	}
	if !sawDynamic || !sawStatic {
		t.Errorf("both workflows should report on Cassandra: dyn=%v static=%v", sawDynamic, sawStatic)
	}
	if u := p.LLMUsage(); u.Calls == 0 || u.CostUSD <= 0 {
		t.Errorf("usage = %+v", u)
	}
}

func TestPipelineIFBugsAcrossApps(t *testing.T) {
	p := NewPipeline(DefaultConfig())
	for _, code := range []string{"HI", "CA", "HB"} {
		app, _ := AppByCode(code)
		if _, err := p.Analyze(app); err != nil {
			t.Fatal(err)
		}
	}
	bugs := p.IFBugs()
	if len(bugs) == 0 {
		t.Fatal("no IF outliers across HI+CA+HB")
	}
	for _, b := range bugs {
		if b.Workflow != "static-if" || b.Kind != "wrong-policy" {
			t.Errorf("bad IF report: %+v", b)
		}
		if !strings.Contains(b.Details, "retried") {
			t.Errorf("details should describe the outlier: %q", b.Details)
		}
	}
}

func TestEvaluateSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation")
	}
	ev, err := Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if len(ev.Apps) != 8 || ev.IFScore.Reports() == 0 {
		t.Errorf("evaluation incomplete: %d apps, %d IF reports", len(ev.Apps), ev.IFScore.Reports())
	}
}
