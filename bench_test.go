package wasabi

import (
	"runtime"
	"sync"
	"testing"

	"wasabi/internal/core"
	"wasabi/internal/evaluation"
	"wasabi/internal/llm"
	"wasabi/internal/obs"
	"wasabi/internal/sast"
	"wasabi/internal/study"
)

// One benchmark per table and figure in the paper's evaluation (§4), as
// indexed in DESIGN.md. Each benchmark exercises exactly the computation
// that regenerates the artifact; `go run ./cmd/benchreport` prints the
// artifacts themselves, and EXPERIMENTS.md records paper-vs-measured.

// evalOnce caches the full corpus evaluation: the table benchmarks measure
// rendering plus scoring, not eight redundant corpus sweeps per iteration.
var (
	evalOnce sync.Once
	evalRes  *evaluation.Evaluation
	evalErr  error
)

func sharedEval(b *testing.B) *evaluation.Evaluation {
	b.Helper()
	evalOnce.Do(func() { evalRes, evalErr = evaluation.Run() })
	if evalErr != nil {
		b.Fatal(evalErr)
	}
	return evalRes
}

// BenchmarkTable1_StudyApplications regenerates Table 1 from the study
// dataset.
func BenchmarkTable1_StudyApplications(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out := evaluation.Table1(); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable2_RootCauses regenerates Table 2.
func BenchmarkTable2_RootCauses(b *testing.B) {
	for i := 0; i < b.N; i++ {
		counts := study.CountByCategory(study.Issues())
		if counts[study.WrongPolicy] != 17 {
			b.Fatalf("taxonomy drifted: %v", counts)
		}
	}
}

// BenchmarkStudyStats regenerates the §2.5 statistics.
func BenchmarkStudyStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out := evaluation.StudyStats(); len(out) == 0 {
			b.Fatal("empty stats")
		}
	}
}

// BenchmarkTable3_UnitTesting regenerates Table 3 (the dynamic workflow's
// per-app bug reports with false-positive subscripts).
func BenchmarkTable3_UnitTesting(b *testing.B) {
	ev := sharedEval(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := ev.Table3(); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable4_LLMDetector regenerates Table 4.
func BenchmarkTable4_LLMDetector(b *testing.B) {
	ev := sharedEval(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := ev.Table4(); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable5_Coverage regenerates Table 5.
func BenchmarkTable5_Coverage(b *testing.B) {
	ev := sharedEval(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := ev.Table5(); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable6_Planning regenerates Table 6.
func BenchmarkTable6_Planning(b *testing.B) {
	ev := sharedEval(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := ev.Table6(); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFigure3_BugOverlap regenerates Figure 3's overlap analysis.
func BenchmarkFigure3_BugOverlap(b *testing.B) {
	ev := sharedEval(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dyn, st := ev.TrueBugKeys()
		if len(dyn) == 0 || len(st) == 0 {
			b.Fatal("no true bugs found")
		}
	}
}

// BenchmarkFigure4_Identification regenerates Figure 4's identification
// breakdown.
func BenchmarkFigure4_Identification(b *testing.B) {
	ev := sharedEval(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := ev.Figure4(); len(out) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkCost_LLM regenerates the §4.3 cost accounting.
func BenchmarkCost_LLM(b *testing.B) {
	ev := sharedEval(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := ev.CostReport(); len(out) == 0 {
			b.Fatal("empty report")
		}
	}
}

// BenchmarkAblation_KeywordFilter regenerates the §4.4 keyword ablation.
func BenchmarkAblation_KeywordFilter(b *testing.B) {
	ev := sharedEval(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := ev.AblationKeywordFilter(); len(out) == 0 {
			b.Fatal("empty ablation")
		}
	}
}

// BenchmarkAblation_Oracles regenerates the §4.4 oracle ablation.
func BenchmarkAblation_Oracles(b *testing.B) {
	ev := sharedEval(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := ev.AblationOracles(); len(out) == 0 {
			b.Fatal("empty ablation")
		}
	}
}

// benchPipeline runs the full pipeline (identify + dynamic + static + IF)
// over the whole corpus with the given worker count, instrumented with a
// fresh observer per iteration when instrumented is set.
func benchPipeline(b *testing.B, workers int, instrumented bool) {
	apps := Corpus()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig()
		cfg.Workers = workers
		if instrumented {
			cfg.Obs = obs.New()
		}
		p := NewPipeline(cfg)
		reports, err := p.AnalyzeAll(apps...)
		if err != nil {
			b.Fatal(err)
		}
		if len(reports) != len(apps) {
			b.Fatalf("got %d reports for %d apps", len(reports), len(apps))
		}
	}
}

// BenchmarkPipelineSequential measures the full-corpus pipeline on the
// strictly sequential path (Workers=1) — the pre-parallel baseline.
func BenchmarkPipelineSequential(b *testing.B) { benchPipeline(b, 1, false) }

// BenchmarkPipelineParallel measures the same workload on the bounded
// worker pool with one worker per CPU. Results are byte-identical to the
// sequential run (asserted by core's determinism tests); only wall time
// may differ, scaling with available cores since per-app pipelines and
// per-entry injection runs are independent.
func BenchmarkPipelineParallel(b *testing.B) { benchPipeline(b, runtime.GOMAXPROCS(0), false) }

// BenchmarkPipelineParallel4 pins the pool at 4 workers so the number
// recorded in EXPERIMENTS.md has a fixed configuration across machines.
func BenchmarkPipelineParallel4(b *testing.B) { benchPipeline(b, 4, false) }

// BenchmarkPipelineInstrumented is BenchmarkPipelineSequential with full
// observability attached (metrics registry + span tracer). The delta
// against the uninstrumented sequential run is the instrumentation
// overhead recorded in EXPERIMENTS.md; the acceptance bar is <5%.
func BenchmarkPipelineInstrumented(b *testing.B) { benchPipeline(b, 1, true) }

// BenchmarkPipelineInstrumented4 is the instrumented counterpart of
// BenchmarkPipelineParallel4.
func BenchmarkPipelineInstrumented4(b *testing.B) { benchPipeline(b, 4, true) }

// The remaining benchmarks measure the cost of the pipeline *stages*
// themselves on the largest corpus application (HBase), so stage-level
// regressions are visible independent of the cached evaluation.

// BenchmarkStage_Identify measures static + LLM retry identification.
func BenchmarkStage_Identify(b *testing.B) {
	app, err := AppByCode("HB")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		w := core.New(core.DefaultOptions())
		if _, err := w.Identify(app); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStage_DynamicWorkflow measures coverage, planning, injection
// and oracle evaluation end to end.
func BenchmarkStage_DynamicWorkflow(b *testing.B) {
	app, err := AppByCode("HB")
	if err != nil {
		b.Fatal(err)
	}
	w := core.New(core.DefaultOptions())
	id, err := w.Identify(app)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.RunDynamic(app, id); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStage_SAST measures the CodeQL-analogue loop analysis alone.
func BenchmarkStage_SAST(b *testing.B) {
	app, err := AppByCode("HB")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := sast.AnalyzeDir(app.Dir); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStage_LLMReview measures the simulated-LLM file review alone.
func BenchmarkStage_LLMReview(b *testing.B) {
	app, err := AppByCode("HB")
	if err != nil {
		b.Fatal(err)
	}
	c := llm.NewClient(llm.DefaultConfig())
	for i := 0; i < b.N; i++ {
		if _, err := c.ReviewFile(app.Dir + "/rpc.go"); err != nil {
			b.Fatal(err)
		}
	}
}
