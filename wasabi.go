// Package wasabi is a Go reproduction of WASABI, the retry-bug detection
// toolkit from "If At First You Don't Succeed, Try, Try, Again...?
// Insights and LLM-informed Tooling for Detecting Retry Bugs in Software
// Systems" (SOSP 2024).
//
// WASABI detects three classes of retry bugs:
//
//   - IF bugs: wrong retry policies (non-recoverable errors retried,
//     recoverable errors not retried), found by a corpus-wide retry-ratio
//     analysis;
//   - WHEN bugs: missing caps and missing delays, found both by fault
//     injection into existing unit tests and by LLM-based static checking;
//   - HOW bugs: broken retry execution (improper state reset, broken job
//     tracking), found by the "different exception" test oracle.
//
// The package is a thin facade over the toolkit's engine. A typical use:
//
//	p := wasabi.NewPipeline(wasabi.DefaultConfig())
//	for _, app := range wasabi.Corpus() {
//	    report, err := p.Analyze(app)
//	    ...
//	}
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured comparison of every table and figure.
package wasabi

import (
	"fmt"

	"wasabi/internal/apps/corpus"
	"wasabi/internal/core"
	"wasabi/internal/evaluation"
	"wasabi/internal/llm"
	"wasabi/internal/oracle"
	"wasabi/internal/report"
	"wasabi/internal/sast"
)

// Config tunes a pipeline. The zero value is replaced by DefaultConfig.
type Config = core.Options

// DefaultConfig mirrors the paper's configuration: K ∈ {1, 100}, a
// 100-injection cap threshold, a 15-minute virtual timeout, the measured
// GPT-4 behaviour profile, and one pipeline worker per CPU (set
// Config.Workers = 1 for strictly sequential execution; results are
// byte-identical either way).
func DefaultConfig() Config { return core.DefaultOptions() }

// App is one analyzable target application.
type App = corpus.App

// Corpus returns the eight bundled target applications (miniatures of the
// systems the paper evaluates on).
func Corpus() []App { return corpus.Apps() }

// AppByCode looks up a corpus application by its short code (HA, HD, MA,
// YA, HB, HI, CA, EL).
func AppByCode(code string) (App, error) { return corpus.ByCode(code) }

// BugReport is one detector finding.
type BugReport struct {
	// Workflow is "dynamic", "static-llm", or "static-if".
	Workflow string
	// Kind is "missing-cap", "missing-delay", "how", or "wrong-policy".
	Kind string
	// Coordinator is the method implementing the suspect retry.
	Coordinator string
	// Details is a human-readable explanation.
	Details string
}

// Report is the outcome of analyzing one application.
type Report struct {
	App string
	// Identified retry structures (merged over both techniques).
	Structures []core.Structure
	// Bugs are the deduplicated findings of both workflows, except IF
	// bugs, which are corpus-wide (see Pipeline.AnalyzeAll).
	Bugs []BugReport
	// Coverage and cost statistics.
	TestsTotal, TestsCoveringRetry    int
	StructuresTotal, StructuresTested int
	PlannedRuns, NaiveRuns            int
}

// Pipeline runs WASABI's workflows.
type Pipeline struct {
	w   *core.Wasabi
	ids []*core.Identification
	// last is the most recent AnalyzeAll corpus run, retained for
	// ReportJSON.
	last *core.CorpusRun
}

// NewPipeline returns a pipeline with the given configuration.
func NewPipeline(cfg Config) *Pipeline {
	return &Pipeline{w: core.New(cfg)}
}

// Analyze runs identification, the dynamic workflow, and the LLM static
// workflow on one application.
func (p *Pipeline) Analyze(app App) (*Report, error) {
	id, err := p.w.Identify(app)
	if err != nil {
		return nil, fmt.Errorf("wasabi: %w", err)
	}
	p.ids = append(p.ids, id)
	dyn, err := p.w.RunDynamic(app, id)
	if err != nil {
		return nil, fmt.Errorf("wasabi: %w", err)
	}
	st := p.w.RunStatic(app, id)
	return buildReport(app.Code, id, dyn, st), nil
}

// AnalyzeAll analyzes every given application — all of Corpus() when none
// are named — fanning the work out over Config.Workers workers. Reports
// come back in input order and are byte-identical to calling Analyze on
// each app in sequence, whatever the worker count.
func (p *Pipeline) AnalyzeAll(apps ...App) ([]*Report, error) {
	if len(apps) == 0 {
		apps = Corpus()
	}
	cr, err := p.w.RunCorpus(apps)
	if err != nil {
		return nil, fmt.Errorf("wasabi: %w", err)
	}
	p.last = cr
	reports := make([]*Report, 0, len(cr.Apps))
	for _, ar := range cr.Apps {
		p.ids = append(p.ids, ar.ID)
		reports = append(reports, buildReport(ar.App.Code, ar.ID, ar.Dyn, ar.Static))
	}
	return reports, nil
}

// buildReport converts one application's raw workflow results into the
// facade report shape.
func buildReport(app string, id *core.Identification, dyn *core.DynamicResult, st *core.StaticResult) *Report {
	rep := &Report{
		App:                app,
		Structures:         id.Structures,
		TestsTotal:         dyn.TestsTotal,
		TestsCoveringRetry: dyn.TestsCoveringRetry,
		StructuresTotal:    dyn.StructuresTotal,
		StructuresTested:   dyn.StructuresTested,
		PlannedRuns:        dyn.PlannedRuns,
		NaiveRuns:          dyn.NaiveRuns,
	}
	for _, r := range dyn.Reports {
		rep.Bugs = append(rep.Bugs, BugReport{
			Workflow: "dynamic", Kind: string(r.Kind),
			Coordinator: r.Coordinator, Details: r.Details,
		})
	}
	for _, r := range st.WhenReports {
		rep.Bugs = append(rep.Bugs, BugReport{
			Workflow: "static-llm", Kind: r.Kind,
			Coordinator: r.Coordinator, Details: "detected from source (" + r.File + ")",
		})
	}
	return rep
}

// IFBugs runs the corpus-wide retry-ratio analysis over every application
// analyzed so far and returns the outlier reports.
func (p *Pipeline) IFBugs() []BugReport {
	_, reports := p.w.RunIFAnalysis(p.ids)
	var out []BugReport
	for _, r := range reports {
		verb := "never retried here though usually retried"
		if r.Retried {
			verb = "retried here though usually not"
		}
		out = append(out, BugReport{
			Workflow: "static-if", Kind: "wrong-policy",
			Coordinator: r.Coordinator,
			Details:     fmt.Sprintf("%s %s (%s)", r.Exception, verb, r.Ratio.String()),
		})
	}
	return out
}

// LLMUsage reports the accumulated simulated-LLM cost (§4.3).
func (p *Pipeline) LLMUsage() llm.Usage { return p.w.LLMUsage() }

// ReportJSON renders the most recent AnalyzeAll run as the canonical,
// schema-versioned JSON document — the deterministic encoding of every
// Report plus the corpus-wide IF analysis, byte-identical at any worker
// count (and across warm cache-served re-runs). It is the same encoder
// the wasabid service returns and cmd/wasabi -json prints; see
// docs/SERVICE.md for the schema.
func (p *Pipeline) ReportJSON() ([]byte, error) {
	if p.last == nil {
		return nil, fmt.Errorf("wasabi: ReportJSON needs a prior AnalyzeAll run")
	}
	return report.Marshal(report.Build(p.last))
}

// Evaluate runs the complete paper evaluation (all tables and figures)
// over the corpus. It is the programmatic equivalent of cmd/benchreport.
func Evaluate() (*evaluation.Evaluation, error) { return evaluation.Run() }

// Re-exported result types for API consumers.
type (
	// OracleReport is a dynamic-workflow finding before facade conversion.
	OracleReport = oracle.Report
	// ExceptionRatio is a corpus-wide retry-ratio row (§3.2.2).
	ExceptionRatio = sast.ExceptionRatio
)
