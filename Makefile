GO ?= go

.PHONY: build test vet race bench bench-smoke gen-smoke chaos serve-smoke restart-smoke docs-check ci all

all: ci

## build: compile every package and command.
build:
	$(GO) build ./...

## test: run the full test suite (tier-1 gate).
test:
	$(GO) test ./...

## vet: run go vet over every package.
vet:
	$(GO) vet ./...

## race: run the concurrency-sensitive packages under the race detector,
## including the parallel-runner determinism test over the full corpus.
race:
	$(GO) test -race ./internal/core/... ./internal/testkit/... ./internal/fault/... ./internal/trace/... ./internal/obs/... ./internal/cache/... ./internal/server/... ./internal/source/...

## bench: run the pipeline benchmarks (sequential vs parallel), the
## snapshot-store microbenchmarks (parse-once vs the legacy triple
## parse, docs/PERFORMANCE.md), and the generated-corpus scale sweep —
## cold/warm pipeline cost over 1x and 10x synthetic corpora
## (docs/CORPUSGEN.md), recorded in BENCH_pipeline.json's scale_sweep
## section. The sweep runs here only, never in ci.
bench:
	$(GO) test -bench 'BenchmarkPipeline' -benchmem -run '^$$' .
	$(GO) test -bench . -benchmem -run '^$$' ./internal/source/
	$(GO) run ./cmd/benchreport -scale-sweep -only cost

## gen-smoke: generate a 10x synthetic corpus into a temp dir and push
## it through the static-only pipeline — every emitted file must parse,
## every app must identify structures, and the candidate ledger must
## cover the manifest exactly (docs/CORPUSGEN.md).
gen-smoke:
	$(GO) test -run 'TestGenSmoke' -count=1 ./internal/corpusgen/

## bench-smoke: compile and run every benchmark for one iteration — a
## CI gate that keeps the benchmarks building and executable without
## asserting thresholds.
bench-smoke:
	$(GO) test -bench . -benchtime 1x -run '^$$' . ./internal/source/

## chaos: sweep LLM fault profiles under the race detector — the
## determinism-under-chaos and graceful-degradation gate — plus the
## multi-backend failover drill: a hard primary outage must complete
## the full corpus through the secondary with zero degraded files and
## byte-identical output (docs/RESILIENCE.md).
chaos:
	$(GO) test -race -run 'Chaos|ZeroFaultProfile|HardOutage|BudgetExhaustion|Failover|PrimaryOutage|SingleHealthyBackend' ./internal/core/
	$(GO) test -race ./internal/resilience/ ./internal/llm/

## serve-smoke: end-to-end service exercise — a real wasabid server on a
## loopback port driven through analyze → poll → report → trace →
## metrics, with three tenants submitting concurrently, every warm job
## served from the cache, and /metrics proving the slots overlapped
## (docs/SERVICE.md, docs/SCHEDULING.md); plus the scheduler's
## wall-clock overlap, fairness, and shared-snapshot-store concurrency
## proofs, and the per-job trace-isolation and structured-log
## correlation proofs (docs/OBSERVABILITY.md).
serve-smoke:
	$(GO) test -race -run 'TestServeSmoke|TestJobsOverlapWallClock|TestSlowTenantCannotStarveFast|TestConcurrentJobsShareSnapshotStore|TestJobTraceIsolationUnderConcurrency|TestStructuredLogCorrelation' -count=1 ./internal/server/

## restart-smoke: cold-start a real wasabid binary with a persistent
## cache directory, run one job, SIGTERM-drain it, relaunch over the
## same directory and prove the warm job reproduces the cold report
## byte-for-byte with zero parses, zero extractions and zero fresh LLM
## spend — the portable retry-facts restart guarantee
## (docs/PERFORMANCE.md, docs/ARCHITECTURE.md).
restart-smoke:
	$(GO) test -run 'TestRestartSmokeProcess' -count=1 ./internal/server/

## docs-check: fail on dangling doc references — .md paths mentioned in
## Go sources, relative links in README.md and docs/*.md, and internal
## packages missing a paper-section (§) godoc reference.
docs-check:
	sh scripts/docs_check.sh

## ci: the local gate — everything the driver checks, in one target.
ci: build test vet chaos serve-smoke restart-smoke bench-smoke gen-smoke docs-check
