// snapshot.go is the parse-once entry point of the traditional static
// analysis: AnalyzeSnapshot consumes a pre-loaded source.Snapshot
// instead of re-reading and re-parsing the directory, and splits the
// work file-granularly — per-file method extraction is memoized on the
// snapshot file by content hash (File.Memo), so a warm daemon
// re-extracts only files whose bytes changed — followed by the cheap
// cross-file merge (package-qualified naming and the retry-loop
// analysis, which must see every method to resolve callees).
package sast

import (
	"fmt"
	"go/ast"

	"wasabi/internal/source"
)

// ExtractKind is the File.Memo key of the per-file extraction artifact
// (the source_derived_*_total{kind=...} metrics label).
const ExtractKind = "sast-extract"

// fileFacts is the per-file extraction artifact: the package name and
// every function declaration's facts, keyed pkg-unqualified so the
// artifact depends on nothing outside the file. The merge step applies
// the directory's package prefix.
type fileFacts struct {
	pkg   string
	funcs []fileFunc
}

// fileFunc is one extracted function declaration.
type fileFunc struct {
	key     string // funcKey: "Type.method" or "func"
	throws  []string
	hasHook bool
	decl    *ast.FuncDecl
}

// extractFacts computes (or reuses) the file's extraction artifact.
// Callers must have checked ParseErr: extraction requires an AST.
func extractFacts(f *source.File) *fileFacts {
	return f.Memo(ExtractKind, func() any {
		ff := &fileFacts{pkg: f.AST.Name.Name}
		for _, d := range f.AST.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ff.funcs = append(ff.funcs, fileFunc{
				key:     funcKey(fd),
				throws:  parseThrows(fd.Doc),
				hasHook: callsFaultHook(fd.Body),
				decl:    fd,
			})
		}
		return ff
	}).(*fileFacts)
}

// AnalyzeSnapshot runs the retry-loop analysis over a pre-loaded
// snapshot. It parses nothing: per-file facts come from the snapshot's
// memoized extraction, and only the cross-file merge (naming, callee
// resolution, loop analysis) runs unconditionally. The result is
// byte-identical to AnalyzeDir over the same directory state.
func AnalyzeSnapshot(snap *source.Snapshot) (*Analysis, error) {
	a := &Analysis{
		Files:   make(map[string]int),
		Methods: make(map[string]*Method),
	}
	for _, f := range snap.Files {
		if f.ParseErr != nil {
			return nil, fmt.Errorf("sast: %w", f.ParseErr)
		}
		a.Pkg = f.AST.Name.Name
		a.Files[f.Name] = int(f.Size)
	}
	for _, f := range snap.Files {
		for _, fn := range extractFacts(f).funcs {
			m := &Method{
				Name:    a.Pkg + "." + fn.key,
				File:    f.Name,
				Throws:  fn.throws,
				HasHook: fn.hasHook,
				decl:    fn.decl,
				fset:    snap.Fset,
			}
			a.Methods[m.Name] = m
		}
	}
	a.findRetryLoops()
	return a, nil
}
