// snapshot.go is the parse-once entry point of the traditional static
// analysis: AnalyzeSnapshot consumes a pre-loaded source.Snapshot
// instead of re-reading and re-parsing the directory, and splits the
// work file-granularly — per-file extraction is memoized on the
// snapshot file by content hash (File.MemoThrough) and hydrated from
// the portable facts tier (facts.go) when one is attached, so a warm
// daemon re-extracts only files whose bytes changed and a restart-warm
// daemon extracts nothing at all — followed by the cheap cross-file
// merge (package-qualified naming and the retry-loop analysis, which
// must see every method to resolve callees).
package sast

import (
	"fmt"
	"go/ast"

	"wasabi/internal/source"
)

// ExtractKind is the File.Memo key of the per-file extraction artifact
// (the source_derived_*_total{kind=...} metrics label).
const ExtractKind = "sast-extract"

// factsResult is the memoized extraction outcome: facts, or the parse
// error that prevented them. Errors memoize too — content-addressed
// files fail identically every time.
type factsResult struct {
	ff  *FileFacts
	err error
}

// fileFactsOf returns the file's extraction facts, in preference order:
// the in-memory memo (warm run), the facts store (restart-warm run —
// no parse), or a fresh extraction from the AST (cold run or edit).
func fileFactsOf(f *source.File, store FactsStore) (*FileFacts, error) {
	v := f.MemoThrough(ExtractKind,
		func() (any, bool) {
			if store == nil {
				return nil, false
			}
			ff, ok := store.GetFacts(f.SHA256)
			if !ok {
				return nil, false
			}
			return &factsResult{ff: ff}, true
		},
		func() any {
			ff, err := extractFacts(f)
			if err != nil {
				return &factsResult{err: err}
			}
			if store != nil {
				store.PutFacts(f.SHA256, ff)
			}
			return &factsResult{ff: ff}
		})
	r := v.(*factsResult)
	return r.ff, r.err
}

// extractFacts builds the portable facts of one file from its AST — the
// only place the static tier parses.
func extractFacts(f *source.File) (*FileFacts, error) {
	syntax, err := f.Syntax()
	if err != nil {
		return nil, err
	}
	ff := &FileFacts{Schema: FactsSchema, Hash: f.SHA256, Pkg: syntax.Name.Name}
	for _, d := range syntax.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		fn := FuncFacts{
			Key:     funcKey(fd),
			Throws:  parseThrows(fd.Doc),
			HasHook: callsFaultHook(fd.Body),
			Calls:   callNamesIn(fd.Body),
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch loop := n.(type) {
			case *ast.ForStmt:
				body = loop.Body
			case *ast.RangeStmt:
				body = loop.Body
			default:
				return true
			}
			if !catchReachesHeader(body) {
				return true
			}
			lf := LoopFacts{
				Line:      f.Fset.Position(n.Pos()).Line,
				Keyworded: hasRetryKeyword(n),
			}
			if lf.Keyworded {
				lf.Excluded = sortedClasses(excludedExceptions(body))
				lf.Calls = callNamesIn(body)
			}
			fn.Loops = append(fn.Loops, lf)
			return true
		})
		ff.Funcs = append(ff.Funcs, fn)
	}
	return ff, nil
}

// AnalyzeSnapshot runs the retry-loop analysis over a pre-loaded
// snapshot with no facts tier attached: unseen files extract from their
// ASTs. The result is byte-identical to AnalyzeDir over the same
// directory state.
func AnalyzeSnapshot(snap *source.Snapshot) (*Analysis, error) {
	return AnalyzeSnapshotWith(snap, nil)
}

// AnalyzeSnapshotWith is AnalyzeSnapshot with a facts tier: per-file
// facts come from the snapshot's memo, hydrate from the store by
// content hash, or — only when both miss — extract from the AST. Over
// an unchanged corpus with a populated store, it parses nothing; only
// the cross-file merge (naming, callee resolution, loop analysis) runs
// unconditionally, and its output is byte-identical whichever path
// supplied the facts.
func AnalyzeSnapshotWith(snap *source.Snapshot, store FactsStore) (*Analysis, error) {
	a := &Analysis{
		Files:   make(map[string]int),
		Methods: make(map[string]*Method),
	}
	facts := make([]*FileFacts, len(snap.Files))
	for i, f := range snap.Files {
		ff, err := fileFactsOf(f, store)
		if err != nil {
			return nil, fmt.Errorf("sast: %w", err)
		}
		facts[i] = ff
		a.Pkg = ff.Pkg
		a.Files[f.Name] = int(f.Size)
	}
	for i, f := range snap.Files {
		for j := range facts[i].Funcs {
			fn := &facts[i].Funcs[j]
			m := &Method{
				Name:    a.Pkg + "." + fn.Key,
				File:    f.Name,
				Throws:  fn.Throws,
				HasHook: fn.HasHook,
				calls:   fn.Calls,
				loops:   fn.Loops,
			}
			a.Methods[m.Name] = m
		}
	}
	a.findRetryLoops()
	return a, nil
}
