// Package sast is WASABI's traditional static analysis over real Go ASTs —
// the reproduction of the paper's CodeQL queries (§3.1.1 technique 1 and
// §3.2.2).
//
// It provides three analyses over a corpus application's source directory:
//
//  1. Retry-loop identification: loops whose header is reachable from an
//     error-handling ("catch") block in the loop body, filtered by the
//     retry-naming heuristic, with (coordinator, retried method, trigger
//     exception) triplet extraction from callee "Throws:" declarations —
//     the Go analogue of Java's checked-exception signatures.
//  2. Callee/throws lookup for an arbitrary coordinator method, used as
//     the second step of the LLM identification workflow (the paper goes
//     "back to CodeQL" to resolve callees and their exceptions).
//  3. The application-wide retry-ratio analysis for IF-bug detection.
package sast

import (
	"fmt"
	"go/ast"
	"sort"
	"strings"

	"wasabi/internal/source"
)

// Method is a function or method declaration found in the corpus. It
// carries no AST: everything the merge needs comes from the portable
// facts (facts.go), which is what makes a cached Analysis rebuildable
// without parsing.
type Method struct {
	// Name is the normalized identifier "pkg.Type.method" or "pkg.func".
	Name string
	// File is the source file basename containing the declaration.
	File string
	// Throws lists the exception classes declared in the method's
	// "Throws:" doc-comment line.
	Throws []string
	// HasHook reports whether the method body calls fault.Hook, i.e. it
	// is instrumentable for injection.
	HasHook bool

	// calls / loops are the method's FuncFacts payload: bare callee
	// names of the body and the structural retry-loop candidates.
	calls []string
	loops []LoopFacts
}

// Triplet is a retry location: coordinator, retried method, and a trigger
// exception the retried method may throw whose handling returns control to
// the retry.
type Triplet struct {
	Coordinator string
	Retried     string
	Exception   string
}

// RetryLoop is one identified loop-based retry structure.
type RetryLoop struct {
	Coordinator string
	File        string
	Line        int
	// Keyworded reports whether the loop passes the retry-naming filter.
	Keyworded bool
	// Triplets are the injectable retry locations of this loop.
	Triplets []Triplet
	// ThrownHere maps each exception throwable inside the loop to whether
	// it is retried (handler returns control to the loop header) — the
	// input of the IF-ratio analysis.
	ThrownHere map[string]bool
}

// Analysis is the result of analyzing one application directory.
type Analysis struct {
	// Pkg is the Go package name, used as the app prefix in method names.
	Pkg string
	// Files maps basenames to their byte size (the LLM workflow uses
	// sizes; contents are re-read by the LLM itself).
	Files map[string]int
	// Methods maps normalized names to declarations.
	Methods map[string]*Method
	// Loops are the keyword-filtered retry loops (the tool's output).
	Loops []RetryLoop
	// CandidateLoops counts the structural candidates *before* the
	// keyword filter — the §4.4 ablation ("3.5x more loops").
	CandidateLoops int
}

// IsSourceFile reports whether a directory entry counts as application
// source for the static workflows. It is source.IsSourceFile, re-exported
// where the analyses live: the snapshot store, the analysis cache
// (internal/cache) and this package all share the predicate, so content
// addresses cover exactly the files analyzed here.
func IsSourceFile(name string) bool { return source.IsSourceFile(name) }

// AnalyzeDir loads every non-test Go file in dir into a one-shot
// snapshot and runs the retry-loop analysis. Pipeline runs go through
// AnalyzeSnapshot (snapshot.go) on an already-loaded, shared snapshot
// instead; this entry point remains for standalone callers and parses
// each file exactly once either way.
func AnalyzeDir(dir string) (*Analysis, error) {
	snap, err := source.NewStore(nil).Load(dir)
	if err != nil {
		return nil, fmt.Errorf("sast: %w", err)
	}
	return AnalyzeSnapshot(snap)
}

// funcKey renders "Type.method" for methods and "func" for functions.
func funcKey(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}

// parseThrows extracts the exception classes from a "Throws:" doc line.
func parseThrows(doc *ast.CommentGroup) []string {
	if doc == nil {
		return nil
	}
	for _, c := range doc.List {
		line := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if !strings.HasPrefix(line, "Throws:") {
			continue
		}
		line = strings.TrimSuffix(strings.TrimSpace(strings.TrimPrefix(line, "Throws:")), ".")
		var out []string
		for _, part := range strings.Split(line, ",") {
			if p := strings.TrimSpace(part); p != "" {
				out = append(out, p)
			}
		}
		return out
	}
	return nil
}

// callsFaultHook reports whether the body contains a fault.Hook call.
func callsFaultHook(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			if id, ok := sel.X.(*ast.Ident); ok && id.Name == "fault" && sel.Sel.Name == "Hook" {
				found = true
			}
		}
		return !found
	})
	return found
}

// MethodsByShortName indexes methods by their bare method name (the last
// dot-separated segment), used to resolve call expressions.
func (a *Analysis) MethodsByShortName() map[string][]*Method {
	out := make(map[string][]*Method)
	for _, m := range a.Methods {
		short := m.Name[strings.LastIndex(m.Name, ".")+1:]
		out[short] = append(out[short], m)
	}
	for _, ms := range out {
		sort.Slice(ms, func(i, j int) bool { return ms[i].Name < ms[j].Name })
	}
	return out
}

// CalleesOf returns, for a coordinator method name, every corpus method it
// calls that declares Throws, with the declared exceptions — the lookup
// the LLM identification workflow delegates back to traditional analysis.
// Callee names were recorded at extraction time (facts.go); resolution
// against the corpus method index happens here, so the result reflects
// the whole analysis even when every file's facts hydrated from disk.
func (a *Analysis) CalleesOf(coordinator string) []Triplet {
	m := a.Methods[coordinator]
	if m == nil {
		return nil
	}
	short := a.MethodsByShortName()
	var out []Triplet
	seen := make(map[Triplet]bool)
	for _, name := range m.calls {
		for _, callee := range short[name] {
			if !callee.HasHook {
				continue
			}
			for _, exc := range callee.Throws {
				t := Triplet{Coordinator: coordinator, Retried: callee.Name, Exception: exc}
				if !seen[t] {
					seen[t] = true
					out = append(out, t)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Retried != out[j].Retried {
			return out[i].Retried < out[j].Retried
		}
		return out[i].Exception < out[j].Exception
	})
	return out
}

// bareCalleeName maps a call expression to the bare name resolution
// works over, or "" for calls the analysis ignores. Name-based
// resolution is deliberately fuzzy (the paper's analysis is "neither
// sound nor complete"); the test oracles absorb the inaccuracy.
func bareCalleeName(call *ast.CallExpr) string {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		// Skip cross-package utility calls like vclock.Sleep.
		if id, ok := fn.X.(*ast.Ident); ok {
			switch id.Name {
			case "fault", "vclock", "errmodel", "trace", "common", "testkit", "resilience",
				"strings", "strconv", "fmt", "time", "sort", "context", "math":
				return ""
			}
		}
		return fn.Sel.Name
	}
	return ""
}

// callNamesIn collects the bare callee names of a block, deduped and
// sorted — the canonical facts form. Only the set matters: every
// consumer re-sorts its resolved output, so recording names instead of
// resolved methods loses nothing.
func callNamesIn(body *ast.BlockStmt) []string {
	seen := make(map[string]bool)
	var out []string
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name := bareCalleeName(call); name != "" && !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
		return true
	})
	sort.Strings(out)
	return out
}

// sortedClasses renders an exception-class set in canonical slice form.
func sortedClasses(set map[string]bool) []string {
	if len(set) == 0 {
		return nil
	}
	out := make([]string, 0, len(set))
	for cls := range set {
		out = append(out, cls)
	}
	sort.Strings(out)
	return out
}
