package sast

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"wasabi/internal/apps/corpus"
	"wasabi/internal/source"
)

// loadHDFS loads the HDFS corpus app into a fresh snapshot store, so
// each call starts with empty memos (a simulated cold process).
func loadHDFS(t *testing.T) *source.Snapshot {
	t.Helper()
	app, err := corpus.ByCode("HD")
	if err != nil {
		t.Fatal(err)
	}
	snap, err := source.NewStore(nil).Load(app.Dir)
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

// memFactsStore is an in-memory FactsStore that round-trips through the
// wire encoding on every access, the way the disk tier does.
type memFactsStore struct {
	entries    map[string][]byte
	gets, puts int
}

func newMemFactsStore() *memFactsStore {
	return &memFactsStore{entries: make(map[string][]byte)}
}

func (m *memFactsStore) GetFacts(hash string) (*FileFacts, bool) {
	data, ok := m.entries[hash]
	if !ok {
		return nil, false
	}
	ff, err := DecodeFacts(data, hash)
	if err != nil {
		return nil, false
	}
	m.gets++
	return ff, true
}

func (m *memFactsStore) PutFacts(hash string, ff *FileFacts) {
	data, err := EncodeFacts(ff)
	if err != nil {
		return
	}
	m.entries[hash] = data
	m.puts++
}

// TestFactsEncodingDeterministic proves the format's round-trip
// guarantee over real corpus files: encode → decode → encode is
// byte-identical, so a disk entry re-persisted after a restart never
// churns.
func TestFactsEncodingDeterministic(t *testing.T) {
	snap := loadHDFS(t)
	for _, f := range snap.Files {
		ff, err := extractFacts(f)
		if err != nil {
			t.Fatal(err)
		}
		first, err := EncodeFacts(ff)
		if err != nil {
			t.Fatal(err)
		}
		decoded, err := DecodeFacts(first, f.SHA256)
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		second, err := EncodeFacts(decoded)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, second) {
			t.Fatalf("%s: re-encoding changed bytes:\n%s\n%s", f.Name, first, second)
		}
	}
}

// TestDecodeFactsFailsClosed covers every rejection path: malformed
// bytes, a truncated entry, a format-version mismatch (what a schema
// bump looks like to a stale store file) and a content-hash mismatch.
func TestDecodeFactsFailsClosed(t *testing.T) {
	good, err := EncodeFacts(&FileFacts{
		Schema: FactsSchema, Hash: "abc", Pkg: "demo",
		Funcs: []FuncFacts{{Key: "F", Calls: []string{"g"}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	stale, err := EncodeFacts(&FileFacts{Schema: "wasabi-facts/v0", Hash: "abc", Pkg: "demo"})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name     string
		data     []byte
		wantHash string
		wantErr  string
	}{
		{"garbage", []byte("not json"), "abc", "decode facts"},
		{"truncated", good[:len(good)/2], "abc", "decode facts"},
		{"schema mismatch", stale, "abc", "schema mismatch"},
		{"hash mismatch", good, "other", "hash mismatch"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeFacts(tc.data, tc.wantHash)
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want %q", err, tc.wantErr)
			}
		})
	}
	if _, err := DecodeFacts(good, "abc"); err != nil {
		t.Fatalf("valid entry rejected: %v", err)
	}
}

// TestAnalyzeSnapshotWithStoreMatchesDirect proves the acceptance
// property of the portable tier: an analysis hydrated entirely from
// encoded facts equals an analysis extracted from ASTs — including the
// unexported merge inputs — and the hydrated pass extracts nothing.
func TestAnalyzeSnapshotWithStoreMatchesDirect(t *testing.T) {
	direct, err := AnalyzeSnapshot(loadHDFS(t))
	if err != nil {
		t.Fatal(err)
	}

	store := newMemFactsStore()
	cold := loadHDFS(t)
	if _, err := AnalyzeSnapshotWith(cold, store); err != nil {
		t.Fatal(err)
	}
	if store.puts != len(cold.Files) {
		t.Fatalf("cold run persisted %d facts, want %d", store.puts, len(cold.Files))
	}

	store.gets, store.puts = 0, 0
	warm := loadHDFS(t)
	hydrated, err := AnalyzeSnapshotWith(warm, store)
	if err != nil {
		t.Fatal(err)
	}
	if store.gets != len(warm.Files) || store.puts != 0 {
		t.Fatalf("warm run: gets = %d, puts = %d; want %d hydrations and no extraction",
			store.gets, store.puts, len(warm.Files))
	}
	if !reflect.DeepEqual(direct, hydrated) {
		t.Fatalf("hydrated analysis diverges from direct analysis:\n%+v\n%+v", direct, hydrated)
	}
}
