// facts.go defines the portable retry-facts format — the AST-free,
// position-compact encoding of everything the §3.1.1 analyses actually
// consume from one parsed file. A FileFacts entry carries the package
// name plus, per function declaration: its normalized key, declared
// Throws classes, fault-hook instrumentability, the bare callee names
// of its body, and the structural retry-loop candidates (line, keyword
// flag, excluded exceptions, loop-body callees). That is exactly the
// input of the cross-file merge (loops.go), so AnalyzeSnapshot can run
// over decoded facts without ever touching go/ast — which is what lets
// the static tier round-trip through the disk cache and survive a
// daemon restart at zero parses.
//
// The encoding is versioned and deterministic: structs marshal with a
// fixed field order, every slice is emitted in a canonical (sorted or
// syntax-stable) order, and encode→decode→encode is byte-identical.
// Entries are keyed by (content hash, FactsSchema) — see
// internal/cache/keys.go — so bumping FactsSchema orphans old entries
// as clean misses, never decode errors.
package sast

import (
	"encoding/json"
	"fmt"
)

// FactsSchema identifies the retry-facts format, and doubles as the
// ExtractKind version folded into facts cache keys. Bump it whenever
// extraction output changes for unchanged input: old entries then miss
// cleanly (their keys are never derived again) and re-extraction
// repopulates the tier.
const FactsSchema = "wasabi-facts/v1"

// FileFacts is one file's extraction artifact in portable form.
type FileFacts struct {
	// Schema is FactsSchema, stored redundantly so a stray or stale file
	// fails closed at decode time.
	Schema string `json:"schema"`
	// Hash is the content SHA-256 the facts were extracted from.
	Hash string `json:"hash"`
	// Pkg is the file's Go package name.
	Pkg string `json:"pkg"`
	// Funcs are the file's function declarations in source order.
	Funcs []FuncFacts `json:"funcs,omitempty"`
}

// FuncFacts is one extracted function declaration.
type FuncFacts struct {
	// Key is the pkg-unqualified funcKey: "Type.method" or "func".
	Key string `json:"key"`
	// Throws lists the exception classes of the "Throws:" doc line.
	Throws []string `json:"throws,omitempty"`
	// HasHook reports whether the body calls fault.Hook.
	HasHook bool `json:"has_hook,omitempty"`
	// Calls are the bare callee names of the body (sorted, deduped,
	// cross-package utility calls excluded) — the merge resolves them
	// against the corpus method index, so only the set matters.
	Calls []string `json:"calls,omitempty"`
	// Loops are the structural retry-loop candidates (loops whose header
	// a catch block reaches), in syntax order.
	Loops []LoopFacts `json:"loops,omitempty"`
}

// LoopFacts is one structural retry-loop candidate — position-compact:
// a line number instead of an AST node.
type LoopFacts struct {
	// Line is the loop's 1-based source line.
	Line int `json:"line"`
	// Keyworded reports whether the loop passes the retry-naming filter.
	Keyworded bool `json:"keyworded,omitempty"`
	// Excluded are the "catch and abort" exception classes (sorted).
	Excluded []string `json:"excluded,omitempty"`
	// Calls are the bare callee names of the loop body (sorted, deduped).
	Calls []string `json:"calls,omitempty"`
}

// FactsStore is the persistence seam AnalyzeSnapshot hydrates extraction
// facts through, keyed by content hash. *cache.Cache implements it (the
// interface lives here because the cache package already depends on
// sast); a nil store disables hydration and every file extracts from
// its AST.
type FactsStore interface {
	// GetFacts returns the decoded facts for a content hash, or false —
	// a corrupt, truncated or version-mismatched entry is a miss, never
	// an error.
	GetFacts(contentSHA256 string) (*FileFacts, bool)
	// PutFacts persists freshly extracted facts, best-effort.
	PutFacts(contentSHA256 string, ff *FileFacts)
}

// EncodeFacts renders the canonical facts bytes. Encoding is a pure
// function of the facts value, and decoding then re-encoding reproduces
// the bytes exactly (TestFactsEncodingDeterministic).
func EncodeFacts(ff *FileFacts) ([]byte, error) {
	return json.Marshal(ff)
}

// DecodeFacts parses facts bytes, verifying the format version and the
// content hash they claim to describe. Any mismatch fails closed.
func DecodeFacts(data []byte, wantHash string) (*FileFacts, error) {
	var ff FileFacts
	if err := json.Unmarshal(data, &ff); err != nil {
		return nil, fmt.Errorf("sast: decode facts: %w", err)
	}
	if ff.Schema != FactsSchema {
		return nil, fmt.Errorf("sast: facts schema mismatch (%q, want %q)", ff.Schema, FactsSchema)
	}
	if ff.Hash != wantHash {
		return nil, fmt.Errorf("sast: facts hash mismatch")
	}
	return &ff, nil
}
