package sast

import (
	"os"
	"path/filepath"
	"testing"
)

// analyzeSource writes src as a single-file package into a temp dir and
// analyzes it.
func analyzeSource(t *testing.T, src string) *Analysis {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "pkg.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	a, err := AnalyzeDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

const header = `package pkg

import (
	"context"

	"wasabi/internal/errmodel"
	"wasabi/internal/fault"
)

var _ = errmodel.New

// connect opens a connection.
//
// Throws: ConnectException, AccessControlException.
func connect(ctx context.Context) error {
	if err := fault.Hook(ctx); err != nil {
		return err
	}
	return nil
}
`

func TestSyntheticContinueCatch(t *testing.T) {
	a := analyzeSource(t, header+`
func run(ctx context.Context) error {
	var last error
	for retry := 0; retry < 3; retry++ {
		if err := connect(ctx); err != nil {
			last = err
			continue
		}
		return nil
	}
	return last
}
`)
	if len(a.Loops) != 1 || a.Loops[0].Coordinator != "pkg.run" {
		t.Fatalf("loops = %+v", a.Loops)
	}
	if a.CandidateLoops != 1 {
		t.Errorf("candidates = %d", a.CandidateLoops)
	}
}

func TestSyntheticFallthroughCatch(t *testing.T) {
	a := analyzeSource(t, header+`
func run(ctx context.Context) error {
	var last error
	for retry := 0; retry < 3; retry++ {
		err := connect(ctx)
		if err == nil {
			return nil
		}
		last = err
	}
	return last
}
`)
	if len(a.Loops) != 1 {
		t.Fatalf("inverted err==nil shape not detected: %+v", a.Loops)
	}
}

func TestSyntheticCatchThatReturnsIsNotRetry(t *testing.T) {
	a := analyzeSource(t, header+`
func run(ctx context.Context) error {
	for retry := 0; retry < 3; retry++ {
		if err := connect(ctx); err != nil {
			return err
		}
	}
	return nil
}
`)
	if len(a.Loops) != 0 || a.CandidateLoops != 0 {
		t.Fatalf("a catch that always returns cannot reach the header: %+v", a.Loops)
	}
}

func TestSyntheticNoKeywordIsCandidateOnly(t *testing.T) {
	a := analyzeSource(t, header+`
func run(ctx context.Context) error {
	var last error
	for tries := 0; tries < 3; tries++ {
		if err := connect(ctx); err != nil {
			last = err
			continue
		}
		return nil
	}
	return last
}
`)
	if len(a.Loops) != 0 {
		t.Errorf("keyword filter should prune a 'tries' loop: %+v", a.Loops)
	}
	if a.CandidateLoops != 1 {
		t.Errorf("candidates = %d, want the structural hit", a.CandidateLoops)
	}
}

func TestSyntheticExclusionPattern(t *testing.T) {
	a := analyzeSource(t, header+`
func run(ctx context.Context) error {
	var last error
	for retry := 0; retry < 3; retry++ {
		if err := connect(ctx); err != nil {
			if errmodel.IsClass(err, "AccessControlException") {
				return err
			}
			last = err
			continue
		}
		return nil
	}
	return last
}
`)
	if len(a.Loops) != 1 {
		t.Fatalf("loops = %+v", a.Loops)
	}
	loop := a.Loops[0]
	if retried, ok := loop.ThrownHere["AccessControlException"]; !ok || retried {
		t.Errorf("AccessControlException should be thrown-but-excluded: %v %v", retried, ok)
	}
	for _, tr := range loop.Triplets {
		if tr.Exception == "AccessControlException" {
			t.Error("excluded exception leaked into the triplets")
		}
	}
	if len(loop.Triplets) != 1 || loop.Triplets[0].Exception != "ConnectException" {
		t.Errorf("triplets = %+v", loop.Triplets)
	}
}

func TestSyntheticRangeLoop(t *testing.T) {
	a := analyzeSource(t, header+`
func run(ctx context.Context, retryTargets []string) error {
	var last error
	for range retryTargets {
		if err := connect(ctx); err != nil {
			last = err
			continue
		}
		return nil
	}
	return last
}
`)
	if len(a.Loops) != 1 {
		t.Fatalf("range-based retry loop not detected: %+v", a.Loops)
	}
}

func TestSyntheticNestedLoopContinueScoping(t *testing.T) {
	// The continue belongs to the INNER loop, which has no retry-named
	// identifiers; the outer loop's body must not claim it.
	a := analyzeSource(t, header+`
func run(ctx context.Context, retryBudget int) error {
	for i := 0; i < retryBudget; i++ {
		for j := 0; j < 2; j++ {
			if err := connect(ctx); err != nil {
				continue
			}
		}
		return nil
	}
	return nil
}
`)
	// The inner loop IS a structural candidate, but carries no keyword
	// itself... except it inherits none from the outer scope. The outer
	// loop has no catch of its own.
	for _, loop := range a.Loops {
		if loop.Coordinator != "pkg.run" {
			t.Errorf("unexpected loop %+v", loop)
		}
	}
	// Inner loop nodes include the identifiers of their own subtree only;
	// "retryBudget" appears in the outer loop's init, so the outer loop is
	// keyword-positive but not catch-positive. Expect at most the inner
	// candidate.
	if a.CandidateLoops != 1 {
		t.Errorf("candidates = %d, want inner loop only", a.CandidateLoops)
	}
}

func TestSyntheticUnreadableDir(t *testing.T) {
	if _, err := AnalyzeDir(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("expected error for missing directory")
	}
}

func TestSyntheticParseError(t *testing.T) {
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "bad.go"), []byte("not go {{{"), 0o644)
	if _, err := AnalyzeDir(dir); err == nil {
		t.Error("expected parse error")
	}
}

func TestSyntheticTestAndScaffoldFilesSkipped(t *testing.T) {
	dir := t.TempDir()
	files := map[string]string{
		"pkg.go":      "package pkg\n",
		"x_test.go":   "package pkg\n\nvar testOnly = 1\n",
		"suite.go":    "package pkg\n\nvar suiteOnly = 1\n",
		"manifest.go": "package pkg\n\nvar manifestOnly = 1\n",
		"workload.go": "package pkg\n\nvar workloadOnly = 1\n",
	}
	for name, src := range files {
		os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644)
	}
	a, err := AnalyzeDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Files) != 1 {
		t.Errorf("analyzed files = %v, want pkg.go only", a.Files)
	}
}
