package sast

import (
	"fmt"
	"sort"
)

// ExceptionRatio summarizes corpus-wide retry policy for one exception
// class: in how many retry loops it can be thrown and in how many of those
// it is actually retried (§3.2.2).
type ExceptionRatio struct {
	Exception string
	Retried   int
	Total     int
	RetriedIn []string // coordinators retrying the exception
	SkippedIn []string // coordinators not retrying it
}

// Ratio returns the application-wide retry ratio R_E / N_E.
func (r ExceptionRatio) Ratio() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Retried) / float64(r.Total)
}

// String renders "retried 17/20".
func (r ExceptionRatio) String() string {
	return fmt.Sprintf("%s retried %d/%d", r.Exception, r.Retried, r.Total)
}

// IFReport flags one outlier loop whose retry-or-not decision for an
// exception disagrees with the rest of the codebase.
type IFReport struct {
	Exception   string
	Coordinator string
	// Retried reports the outlier's behaviour: true means the exception
	// is retried here although it mostly is not (a possible
	// "non-recoverable error retried" bug); false means the inverse.
	Retried bool
	Ratio   ExceptionRatio
}

// RatioOptions tunes the outlier thresholds.
type RatioOptions struct {
	// MinLoops is the minimum N_E for an exception to be considered.
	MinLoops int
	// HighRatio: ratios >= HighRatio (but < 1) flag the not-retried
	// minority. Ratios <= 1-HighRatio (but > 0) flag the retried
	// minority. The paper uses 2/3.
	HighRatio float64
}

// DefaultRatioOptions mirrors the paper's thresholds.
func DefaultRatioOptions() RatioOptions {
	return RatioOptions{MinLoops: 3, HighRatio: 2.0 / 3.0}
}

// RatioAnalysis computes per-exception retry ratios over the keyword-
// filtered retry loops of all analyzed applications and reports outliers.
func RatioAnalysis(analyses []*Analysis, opts RatioOptions) ([]ExceptionRatio, []IFReport) {
	byExc := make(map[string]*ExceptionRatio)
	for _, a := range analyses {
		for _, loop := range a.Loops {
			for exc, retried := range loop.ThrownHere {
				r := byExc[exc]
				if r == nil {
					r = &ExceptionRatio{Exception: exc}
					byExc[exc] = r
				}
				r.Total++
				if retried {
					r.Retried++
					r.RetriedIn = append(r.RetriedIn, loop.Coordinator)
				} else {
					r.SkippedIn = append(r.SkippedIn, loop.Coordinator)
				}
			}
		}
	}
	var ratios []ExceptionRatio
	var reports []IFReport
	excs := make([]string, 0, len(byExc))
	for e := range byExc {
		excs = append(excs, e)
	}
	sort.Strings(excs)
	for _, e := range excs {
		r := *byExc[e]
		sort.Strings(r.RetriedIn)
		sort.Strings(r.SkippedIn)
		ratios = append(ratios, r)
		if r.Total < opts.MinLoops || r.Retried == 0 || r.Retried == r.Total {
			continue
		}
		switch ratio := r.Ratio(); {
		case ratio >= opts.HighRatio:
			for _, c := range r.SkippedIn {
				reports = append(reports, IFReport{Exception: e, Coordinator: c, Retried: false, Ratio: r})
			}
		case ratio <= 1-opts.HighRatio:
			for _, c := range r.RetriedIn {
				reports = append(reports, IFReport{Exception: e, Coordinator: c, Retried: true, Ratio: r})
			}
		}
	}
	return ratios, reports
}
