package sast

import (
	"go/ast"
	"sort"
	"strings"
)

// findRetryLoops runs the cross-file half of the control-flow + naming
// analysis of §3.1.1: the structural work (loop discovery, catch-block
// reachability, the keyword filter, excluded-exception scanning)
// happened at extraction time and lives in each method's LoopFacts;
// here the recorded candidates are counted, the keyworded ones get
// their callee names resolved against the whole corpus, and triplets
// are emitted. The output is byte-identical to the pre-facts AST walk:
// methods are visited in sorted name order, loops in recorded (syntax)
// order, and every per-loop result is dedup-sorted downstream of
// resolution, so only the recorded name sets matter.
func (a *Analysis) findRetryLoops() {
	short := a.MethodsByShortName()
	names := make([]string, 0, len(a.Methods))
	for n := range a.Methods {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		m := a.Methods[name]
		for _, lf := range m.loops {
			a.CandidateLoops++
			if !lf.Keyworded {
				continue
			}
			excluded := make(map[string]bool, len(lf.Excluded))
			for _, cls := range lf.Excluded {
				excluded[cls] = true
			}
			loop := RetryLoop{
				Coordinator: m.Name,
				File:        m.File,
				Line:        lf.Line,
				Keyworded:   true,
				ThrownHere:  make(map[string]bool),
			}
			for _, callee := range throwingCallees(lf.Calls, short) {
				for _, exc := range callee.Throws {
					retried := !excluded[exc]
					loop.ThrownHere[exc] = retried
					if retried && callee.HasHook {
						loop.Triplets = append(loop.Triplets, Triplet{
							Coordinator: m.Name,
							Retried:     callee.Name,
							Exception:   exc,
						})
					}
				}
			}
			a.Loops = append(a.Loops, loop)
		}
	}
}

// catchReachesHeader reports whether the loop body contains an
// error-handling block from which control returns to the loop header —
// either an `if err != nil` block that continues or falls through, or the
// inverted `if err == nil { return/break }` shape whose fallthrough is the
// handler.
func catchReachesHeader(body *ast.BlockStmt) bool {
	found := false
	walkShallow(body, func(s ast.Stmt) {
		ifs, ok := s.(*ast.IfStmt)
		if !ok || found {
			return
		}
		switch errCheckKind(ifs.Cond) {
		case errNotNil:
			if containsContinue(ifs.Body) || !terminates(ifs.Body) {
				found = true
			}
		case errIsNil:
			if terminates(ifs.Body) {
				// Fallthrough after "if err == nil { return }" is the
				// handler; it reaches the header unless the remaining
				// body unconditionally leaves the loop, which we cannot
				// see locally — accept, matching CodeQL's over-approx.
				found = true
			}
		}
	})
	return found
}

type errCheck int

const (
	errCheckNone errCheck = iota
	errNotNil
	errIsNil
)

// errCheckKind classifies an if-condition as an error check.
func errCheckKind(cond ast.Expr) errCheck {
	bin, ok := cond.(*ast.BinaryExpr)
	if !ok {
		return errCheckNone
	}
	isNilComparison := func(x, y ast.Expr) bool {
		id, ok := y.(*ast.Ident)
		if !ok || id.Name != "nil" {
			return false
		}
		switch lhs := x.(type) {
		case *ast.Ident:
			return looksLikeErrName(lhs.Name)
		case *ast.SelectorExpr:
			return looksLikeErrName(lhs.Sel.Name)
		}
		return false
	}
	switch bin.Op.String() {
	case "!=":
		if isNilComparison(bin.X, bin.Y) || isNilComparison(bin.Y, bin.X) {
			return errNotNil
		}
	case "==":
		if isNilComparison(bin.X, bin.Y) || isNilComparison(bin.Y, bin.X) {
			return errIsNil
		}
	}
	return errCheckNone
}

// looksLikeErrName matches the conventional error variable spellings.
func looksLikeErrName(name string) bool {
	n := strings.ToLower(name)
	return n == "err" || n == "e" || n == "last" || n == "lasterr" ||
		strings.HasSuffix(n, "err") || strings.HasSuffix(n, "error")
}

// walkShallow visits statements in a block, descending into blocks, ifs,
// and switches but NOT into nested loops or function literals (whose
// continue/handlers belong to a different scope).
func walkShallow(block *ast.BlockStmt, visit func(ast.Stmt)) {
	if block == nil {
		return
	}
	for _, s := range block.List {
		walkShallowStmt(s, visit)
	}
}

func walkShallowStmt(s ast.Stmt, visit func(ast.Stmt)) {
	visit(s)
	switch st := s.(type) {
	case *ast.BlockStmt:
		walkShallow(st, visit)
	case *ast.IfStmt:
		walkShallow(st.Body, visit)
		if st.Else != nil {
			walkShallowStmt(st.Else, visit)
		}
	case *ast.SwitchStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, cs := range cc.Body {
					walkShallowStmt(cs, visit)
				}
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, cs := range cc.Body {
					walkShallowStmt(cs, visit)
				}
			}
		}
	}
}

// containsContinue reports whether the block contains a continue targeting
// the enclosing loop.
func containsContinue(block *ast.BlockStmt) bool {
	found := false
	walkShallow(block, func(s ast.Stmt) {
		if br, ok := s.(*ast.BranchStmt); ok && br.Tok.String() == "continue" {
			found = true
		}
	})
	return found
}

// terminates reports whether control definitely leaves the enclosing loop
// at the end of the block (return, break, or panic on every path we model).
func terminates(block *ast.BlockStmt) bool {
	if block == nil || len(block.List) == 0 {
		return false
	}
	return stmtTerminates(block.List[len(block.List)-1])
}

func stmtTerminates(s ast.Stmt) bool {
	switch st := s.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		return st.Tok.String() == "break" || st.Tok.String() == "goto"
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
		return false
	case *ast.BlockStmt:
		return terminates(st)
	case *ast.IfStmt:
		if st.Else == nil {
			return false
		}
		return terminates(st.Body) && stmtTerminates(st.Else)
	default:
		return false
	}
}

// hasRetryKeyword implements the naming heuristic: the loop node contains
// an identifier, selector, or string literal whose lowercase form contains
// "retry" or "retrie" (covering "retries"). Comments are NOT consulted,
// matching the paper's CodeQL query.
func hasRetryKeyword(loop ast.Node) bool {
	found := false
	ast.Inspect(loop, func(n ast.Node) bool {
		if found {
			return false
		}
		switch v := n.(type) {
		case *ast.Ident:
			if containsRetryWord(v.Name) {
				found = true
			}
		case *ast.BasicLit:
			if v.Kind.String() == "STRING" && containsRetryWord(v.Value) {
				found = true
			}
		}
		return !found
	})
	return found
}

func containsRetryWord(s string) bool {
	l := strings.ToLower(s)
	return strings.Contains(l, "retry") || strings.Contains(l, "retrie") ||
		strings.Contains(l, "reattempt") || strings.Contains(l, "resubmit")
}

// excludedExceptions finds the "catch and abort" pattern: an if statement
// testing errmodel.IsClass/CauseIsClass(err, "X") whose body leaves the
// loop, meaning X does not trigger retry.
func excludedExceptions(body *ast.BlockStmt) map[string]bool {
	out := make(map[string]bool)
	var scan func(*ast.BlockStmt)
	scan = func(b *ast.BlockStmt) {
		walkShallow(b, func(s ast.Stmt) {
			ifs, ok := s.(*ast.IfStmt)
			if !ok {
				return
			}
			cls := isClassCheck(ifs.Cond)
			if cls != "" && terminates(ifs.Body) {
				out[cls] = true
			}
		})
	}
	scan(body)
	return out
}

// isClassCheck extracts the class literal from an
// errmodel.IsClass(err, "X") or errmodel.CauseIsClass(err, "X") condition,
// including when joined by && with other tests.
func isClassCheck(cond ast.Expr) string {
	switch c := cond.(type) {
	case *ast.CallExpr:
		sel, ok := c.Fun.(*ast.SelectorExpr)
		if !ok {
			return ""
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || id.Name != "errmodel" {
			return ""
		}
		if sel.Sel.Name != "IsClass" && sel.Sel.Name != "CauseIsClass" {
			return ""
		}
		if len(c.Args) != 2 {
			return ""
		}
		lit, ok := c.Args[1].(*ast.BasicLit)
		if !ok {
			return ""
		}
		return strings.Trim(lit.Value, `"`)
	case *ast.BinaryExpr:
		if c.Op.String() == "&&" {
			if cls := isClassCheck(c.X); cls != "" {
				return cls
			}
			return isClassCheck(c.Y)
		}
	}
	return ""
}

// throwingCallees resolves recorded bare callee names to corpus methods
// declaring Throws (whether or not they carry hooks; hook presence
// gates triplet injectability, not throwability), deduped by qualified
// name and sorted.
func throwingCallees(names []string, short map[string][]*Method) []*Method {
	var out []*Method
	seen := make(map[string]bool)
	for _, name := range names {
		for _, m := range short[name] {
			if len(m.Throws) == 0 || seen[m.Name] {
				continue
			}
			seen[m.Name] = true
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
