package sast

import (
	"testing"

	"wasabi/internal/apps/corpus"
)

func analyzeHDFS(t *testing.T) *Analysis {
	t.Helper()
	app, err := corpus.ByCode("HD")
	if err != nil {
		t.Fatal(err)
	}
	a, err := AnalyzeDir(app.Dir)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func loopByCoordinator(a *Analysis, name string) *RetryLoop {
	for i := range a.Loops {
		if a.Loops[i].Coordinator == name {
			return &a.Loops[i]
		}
	}
	return nil
}

func TestAnalyzeFindsMethodsAndThrows(t *testing.T) {
	a := analyzeHDFS(t)
	m := a.Methods["hdfs.WebFS.connect"]
	if m == nil {
		t.Fatal("hdfs.WebFS.connect not found")
	}
	if len(m.Throws) != 2 || m.Throws[0] != "ConnectException" || m.Throws[1] != "AccessControlException" {
		t.Errorf("Throws = %v", m.Throws)
	}
	if !m.HasHook {
		t.Error("connect should be hook-instrumented")
	}
}

func TestMethodWithoutThrows(t *testing.T) {
	a := analyzeHDFS(t)
	m := a.Methods["hdfs.WebFS.Fetch"]
	if m == nil {
		t.Fatal("Fetch not found")
	}
	if len(m.Throws) != 0 {
		t.Errorf("coordinator should not declare Throws, got %v", m.Throws)
	}
}

func TestKeywordedLoopsDetected(t *testing.T) {
	a := analyzeHDFS(t)
	for _, want := range []string{
		"hdfs.WebFS.Fetch",
		"hdfs.WebFS.UploadChunked",
		"hdfs.DFSInputStream.ReadBlock",
		"hdfs.DFSInputStream.ReadWithFailover",
		"hdfs.DataStreamer.SetupPipeline",
		"hdfs.Mover.MoveBlock",
		"hdfs.EditLogTailer.CatchUp",
		"hdfs.Checkpointer.UploadImage",
		"hdfs.NamenodeRPC.Call",
	} {
		if loopByCoordinator(a, want) == nil {
			t.Errorf("retry loop %s not detected", want)
		}
	}
}

func TestNonKeywordedLoopsMissed(t *testing.T) {
	a := analyzeHDFS(t)
	for _, miss := range []string{
		"hdfs.BlockFetcher.FetchChecksummed", // counter named "tries"
		"hdfs.LeaseRenewer.Renew",
		"hdfs.DataStreamer.WritePacketGroup",
	} {
		if loopByCoordinator(a, miss) != nil {
			t.Errorf("keyword filter should miss %s", miss)
		}
	}
}

func TestNonLoopRetryNotDetected(t *testing.T) {
	a := analyzeHDFS(t)
	for _, miss := range []string{
		"hdfs.Balancer.processTask",    // queue re-enqueue
		"hdfs.ReconstructionProc.Step", // state machine
		"hdfs.RegistrationProc.Step",   // state machine
	} {
		if loopByCoordinator(a, miss) != nil {
			t.Errorf("structural analysis should not flag non-loop retry %s", miss)
		}
	}
}

func TestCandidateLoopsExceedFiltered(t *testing.T) {
	a := analyzeHDFS(t)
	if a.CandidateLoops <= len(a.Loops) {
		t.Errorf("candidates = %d should exceed keyword-filtered = %d",
			a.CandidateLoops, len(a.Loops))
	}
}

func TestTripletsForFetch(t *testing.T) {
	a := analyzeHDFS(t)
	loop := loopByCoordinator(a, "hdfs.WebFS.Fetch")
	if loop == nil {
		t.Fatal("Fetch loop missing")
	}
	want := map[Triplet]bool{
		{Coordinator: "hdfs.WebFS.Fetch", Retried: "hdfs.WebFS.connect", Exception: "ConnectException"}:           false,
		{Coordinator: "hdfs.WebFS.Fetch", Retried: "hdfs.WebFS.getResponse", Exception: "SocketTimeoutException"}: false,
		{Coordinator: "hdfs.WebFS.Fetch", Retried: "hdfs.WebFS.getResponse", Exception: "EOFException"}:           false,
	}
	for _, tr := range loop.Triplets {
		if _, ok := want[tr]; ok {
			want[tr] = true
		}
		if tr.Exception == "AccessControlException" {
			t.Error("AccessControlException is caught-and-aborted; it must not be a trigger")
		}
		if tr.Exception == "FileNotFoundException" {
			t.Error("FileNotFoundException is caught-and-aborted; it must not be a trigger")
		}
	}
	for tr, seen := range want {
		if !seen {
			t.Errorf("missing triplet %+v (have %+v)", tr, loop.Triplets)
		}
	}
}

func TestExclusionRecordedInThrownHere(t *testing.T) {
	a := analyzeHDFS(t)
	loop := loopByCoordinator(a, "hdfs.WebFS.Fetch")
	if loop == nil {
		t.Fatal("Fetch loop missing")
	}
	if retried, ok := loop.ThrownHere["AccessControlException"]; !ok || retried {
		t.Errorf("AccessControlException should be recorded as thrown-but-not-retried, got %v/%v", retried, ok)
	}
	if retried := loop.ThrownHere["ConnectException"]; !retried {
		t.Error("ConnectException should be recorded as retried")
	}
}

func TestCalleesOfQueueCoordinator(t *testing.T) {
	a := analyzeHDFS(t)
	ts := a.CalleesOf("hdfs.Balancer.processTask")
	found := false
	for _, tr := range ts {
		if tr.Retried == "hdfs.Balancer.transferBlock" && tr.Exception == "ConnectException" {
			found = true
		}
	}
	if !found {
		t.Errorf("CalleesOf missed transferBlock triplet: %+v", ts)
	}
}

func TestCalleesOfStateMachineStep(t *testing.T) {
	a := analyzeHDFS(t)
	ts := a.CalleesOf("hdfs.ReconstructionProc.Step")
	names := map[string]bool{}
	for _, tr := range ts {
		names[tr.Retried] = true
	}
	if !names["hdfs.ReconstructionProc.readShards"] || !names["hdfs.ReconstructionProc.writeRecovered"] {
		t.Errorf("CalleesOf(Step) = %+v", ts)
	}
}

func TestCalleesOfUnknownMethod(t *testing.T) {
	a := analyzeHDFS(t)
	if got := a.CalleesOf("hdfs.NoSuch.method"); got != nil {
		t.Errorf("expected nil, got %+v", got)
	}
}

func TestRatioAnalysisCountsExclusions(t *testing.T) {
	a := analyzeHDFS(t)
	ratios, _ := RatioAnalysis([]*Analysis{a}, DefaultRatioOptions())
	var acl *ExceptionRatio
	for i := range ratios {
		if ratios[i].Exception == "AccessControlException" {
			acl = &ratios[i]
		}
	}
	if acl == nil {
		t.Fatal("AccessControlException not in ratio analysis")
	}
	if acl.Retried != 0 {
		t.Errorf("AccessControlException should never be retried in HDFS, got %d/%d", acl.Retried, acl.Total)
	}
}
