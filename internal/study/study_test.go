package study

import "testing"

func TestSeventyIssues(t *testing.T) {
	if got := len(Issues()); got != 70 {
		t.Fatalf("issues = %d, want 70", got)
	}
}

func TestTable1PerAppCounts(t *testing.T) {
	want := map[string]int{
		"Elasticsearch": 11, "Hadoop": 15, "HBase": 15,
		"Hive": 11, "Kafka": 9, "Spark": 9,
	}
	got := CountByApp(Issues())
	for app, n := range want {
		if got[app] != n {
			t.Errorf("%s = %d, want %d", app, got[app], n)
		}
	}
	if len(got) != len(want) {
		t.Errorf("unexpected apps: %v", got)
	}
}

func TestTable2RootCauses(t *testing.T) {
	want := map[Category]int{
		WrongPolicy: 17, MissingMechanism: 8,
		DelayProblem: 10, CapProblem: 13,
		StateReset: 12, JobTracking: 8, Other: 2,
	}
	got := CountByCategory(Issues())
	for c, n := range want {
		if got[c] != n {
			t.Errorf("%s = %d, want %d", c, got[c], n)
		}
	}
}

func TestRootCauseGroupsBalanced(t *testing.T) {
	// Paper: IF 36%, WHEN 33%, HOW 31% of 70.
	g := CountByGroup(Issues())
	if g["IF"] != 25 || g["WHEN"] != 23 || g["HOW"] != 22 {
		t.Errorf("groups = %v, want IF=25 WHEN=23 HOW=22", g)
	}
}

func TestMechanismMix(t *testing.T) {
	// Paper §2.5: ~55% loop, 25% queue re-enqueue, 20% state machine.
	m := CountByMechanism(Issues())
	if m[Loop] != 38 || m[Queue] != 18 || m[StateMachine] != 14 {
		t.Errorf("mechanisms = %v", m)
	}
}

func TestSeverityMix(t *testing.T) {
	// Paper §2.5: blocker 5%, critical 10%, major 65%, minor 5%, 10% unlabeled.
	s := CountBySeverity(Issues())
	if s[Blocker] != 4 || s[Critical] != 7 || s[Major] != 45 || s[Minor] != 4 || s[Unlabeled] != 10 {
		t.Errorf("severities = %v", s)
	}
}

func TestTriggerMix(t *testing.T) {
	// Paper §3.1: 70% exceptions, 30% error codes.
	tr := CountByTrigger(Issues())
	if tr[Exception] != 49 || tr[ErrorCode] != 21 {
		t.Errorf("triggers = %v", tr)
	}
}

func TestRegressionTests(t *testing.T) {
	// Paper §2.5: regression tests added for 42 of 70 issues.
	if got := RegressionTested(Issues()); got != 42 {
		t.Errorf("regression-tested = %d, want 42", got)
	}
}

func TestPaperIssuesPresent(t *testing.T) {
	want := map[string]Category{
		"KAFKA-6829":          WrongPolicy,
		"KAFKA-12339":         WrongPolicy,
		"HADOOP-16580":        WrongPolicy,
		"HADOOP-16683":        WrongPolicy,
		"HIVE-23894":          WrongPolicy,
		"ELASTICSEARCH-53687": WrongPolicy,
		"HBASE-25743":         WrongPolicy,
		"HIVE-20349":          MissingMechanism,
		"HBASE-20492":         DelayProblem,
		"HDFS-15439":          CapProblem,
		"YARN-8362":           CapProblem,
		"HBASE-20616":         StateReset,
		"SPARK-27630":         JobTracking,
	}
	byID := map[string]Issue{}
	for _, i := range Issues() {
		byID[i.ID] = i
	}
	for id, cat := range want {
		iss, ok := byID[id]
		if !ok {
			t.Errorf("paper issue %s missing", id)
			continue
		}
		if iss.Category != cat {
			t.Errorf("%s category = %s, want %s", id, iss.Category, cat)
		}
		if !iss.InPaper {
			t.Errorf("%s should be marked InPaper", id)
		}
	}
}

func TestUniqueIDs(t *testing.T) {
	seen := map[string]bool{}
	for _, i := range Issues() {
		if seen[i.ID] {
			t.Errorf("duplicate issue id %s", i.ID)
		}
		seen[i.ID] = true
	}
}

func TestApplicationsTable(t *testing.T) {
	apps := Applications()
	if len(apps) != 6 {
		t.Fatalf("apps = %d", len(apps))
	}
	counts := CountByApp(Issues())
	for _, a := range apps {
		if counts[a.Name] == 0 {
			t.Errorf("no issues for %s", a.Name)
		}
		if a.StarsK <= 0 {
			t.Errorf("%s stars = %d", a.Name, a.StarsK)
		}
	}
}

func TestRootCauseGroupUnknown(t *testing.T) {
	if Category("bogus").RootCauseGroup() != "?" {
		t.Error("unknown category should map to ?")
	}
}
