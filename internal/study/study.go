// Package study contains the paper's empirical study substrate (§2): the
// 70 retry-related issues from 8 popular Java applications, with the
// attributes the paper aggregates — root-cause category (Table 2),
// per-application counts (Table 1), severity labels, retry mechanism,
// trigger encoding, and whether developers later added a regression test
// (§2.5).
//
// Issues explicitly discussed in the paper carry their real tracker IDs
// (KAFKA-6829, HBASE-20492, HADOOP-16683, ...); the remaining records are
// representative reconstructions that preserve every aggregate the paper
// reports, since the paper publishes only those aggregates.
package study

// Category is a root-cause category from Table 2.
type Category string

const (
	// WrongPolicy: recoverable errors not retried, or non-recoverable
	// errors retried (IF, §2.2.1).
	WrongPolicy Category = "wrong-retry-policy"
	// MissingMechanism: retry opportunity not implemented at all (§2.2.2).
	MissingMechanism Category = "missing-mechanism"
	// DelayProblem: no or wrong delay between attempts (§2.3.1).
	DelayProblem Category = "delay-problem"
	// CapProblem: missing or broken bound on attempts (§2.3.2).
	CapProblem Category = "cap-problem"
	// StateReset: improper state reset before re-execution (§2.4).
	StateReset Category = "improper-state-reset"
	// JobTracking: broken or raced job status tracking (§2.4).
	JobTracking Category = "broken-job-tracking"
	// Other HOW-retry defects.
	Other Category = "other"
)

// RootCauseGroup returns the IF/WHEN/HOW grouping of Table 2.
func (c Category) RootCauseGroup() string {
	switch c {
	case WrongPolicy, MissingMechanism:
		return "IF"
	case DelayProblem, CapProblem:
		return "WHEN"
	case StateReset, JobTracking, Other:
		return "HOW"
	}
	return "?"
}

// Mechanism is the retry code structure involved (§2.5).
type Mechanism string

const (
	Loop         Mechanism = "loop"
	Queue        Mechanism = "queue"
	StateMachine Mechanism = "statemachine"
)

// Severity is the developer-assigned priority label.
type Severity string

const (
	Blocker   Severity = "blocker"
	Critical  Severity = "critical"
	Major     Severity = "major"
	Minor     Severity = "minor"
	Unlabeled Severity = "unlabeled"
)

// Trigger is how the task error reaches the retry decision.
type Trigger string

const (
	Exception Trigger = "exception"
	ErrorCode Trigger = "errorcode"
)

// Issue is one studied retry bug report.
type Issue struct {
	// ID is the tracker identifier, e.g. "HBASE-20492".
	ID string
	// App is the application name as in Table 1.
	App string
	// Title is a one-line summary.
	Title     string
	Category  Category
	Mechanism Mechanism
	Severity  Severity
	Trigger   Trigger
	// RegressionTest reports whether developers added a unit test with
	// the fix (42 of 70 issues, §2.5).
	RegressionTest bool
	// InPaper marks issues the paper discusses explicitly by ID.
	InPaper bool
}

// AppInfo is a Table 1 row.
type AppInfo struct {
	Name     string
	Category string
	StarsK   int // GitHub stars in thousands at study time
}

// Applications returns Table 1's application list.
func Applications() []AppInfo {
	return []AppInfo{
		{Name: "Elasticsearch", Category: "Full-text search", StarsK: 66},
		{Name: "Hadoop", Category: "Distr. storage/processing", StarsK: 14},
		{Name: "HBase", Category: "Database", StarsK: 5},
		{Name: "Hive", Category: "Data warehousing", StarsK: 5},
		{Name: "Kafka", Category: "Stream processing", StarsK: 26},
		{Name: "Spark", Category: "Data processing", StarsK: 37},
	}
}

// CountByApp tallies issues per application (Table 1's "Bugs" column).
func CountByApp(issues []Issue) map[string]int {
	out := make(map[string]int)
	for _, i := range issues {
		out[i.App]++
	}
	return out
}

// CountByCategory tallies issues per root-cause category (Table 2).
func CountByCategory(issues []Issue) map[Category]int {
	out := make(map[Category]int)
	for _, i := range issues {
		out[i.Category]++
	}
	return out
}

// CountByGroup tallies issues per IF/WHEN/HOW group.
func CountByGroup(issues []Issue) map[string]int {
	out := make(map[string]int)
	for _, i := range issues {
		out[i.Category.RootCauseGroup()]++
	}
	return out
}

// CountByMechanism tallies issues per retry mechanism (§2.5).
func CountByMechanism(issues []Issue) map[Mechanism]int {
	out := make(map[Mechanism]int)
	for _, i := range issues {
		out[i.Mechanism]++
	}
	return out
}

// CountBySeverity tallies issues per priority label (§2.5).
func CountBySeverity(issues []Issue) map[Severity]int {
	out := make(map[Severity]int)
	for _, i := range issues {
		out[i.Severity]++
	}
	return out
}

// CountByTrigger tallies exception- vs error-code-reported failures
// (70%/30% in §3.1).
func CountByTrigger(issues []Issue) map[Trigger]int {
	out := make(map[Trigger]int)
	for _, i := range issues {
		out[i.Trigger]++
	}
	return out
}

// RegressionTested counts issues whose fix came with a unit test.
func RegressionTested(issues []Issue) int {
	n := 0
	for _, i := range issues {
		if i.RegressionTest {
			n++
		}
	}
	return n
}
