package llm

import (
	"context"
	"errors"
	"testing"

	"wasabi/internal/errmodel"
	"wasabi/internal/obs"
)

func TestParseFaultProfilePresets(t *testing.T) {
	cases := []struct {
		spec string
		want FaultProfile
	}{
		{"", FaultProfile{}},
		{"none", FaultProfile{}},
		{"light", FaultProfile{TimeoutDenom: 60, RateLimitDenom: 60, ServerErrorDenom: 60}},
		{"heavy", FaultProfile{TimeoutDenom: 15, RateLimitDenom: 15, ServerErrorDenom: 15}},
		{"outage", FaultProfile{HardOutage: true}},
		{"timeout=10,malformed=50", FaultProfile{TimeoutDenom: 10, MalformedDenom: 50}},
		{"heavy,outage-after=120", FaultProfile{TimeoutDenom: 15, RateLimitDenom: 15, ServerErrorDenom: 15, OutageAfterFiles: 120}},
		{"outage-after=5,light", FaultProfile{TimeoutDenom: 60, RateLimitDenom: 60, ServerErrorDenom: 60, OutageAfterFiles: 5}},
		{"ratelimit=9, servererror=8", FaultProfile{RateLimitDenom: 9, ServerErrorDenom: 8}},
	}
	for _, c := range cases {
		got, err := ParseFaultProfile(c.spec)
		if err != nil {
			t.Errorf("ParseFaultProfile(%q) error: %v", c.spec, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseFaultProfile(%q) = %+v, want %+v", c.spec, got, c.want)
		}
	}
}

func TestParseFaultProfileErrors(t *testing.T) {
	for _, spec := range []string{"bogus", "timeout", "timeout=x", "timeout=-1", "wat=3"} {
		if _, err := ParseFaultProfile(spec); err == nil {
			t.Errorf("ParseFaultProfile(%q) accepted, want error", spec)
		}
	}
}

func TestFaultProfileZeroAndString(t *testing.T) {
	if !(FaultProfile{}).Zero() {
		t.Error("empty profile must report Zero")
	}
	p := FaultProfile{TimeoutDenom: 60, HardOutage: true}
	if p.Zero() {
		t.Error("non-empty profile must not report Zero")
	}
	// String round-trips through the parser.
	back, err := ParseFaultProfile(p.String())
	if err != nil || back != p {
		t.Errorf("round trip %q → %+v (err %v), want %+v", p.String(), back, err, p)
	}
}

// TestFaultyTransportDeterministic: the fault schedule is a pure function
// of (seed, path, attempt) — two transports with the same seed agree on
// every call, a different seed produces a different schedule somewhere.
func TestFaultyTransportDeterministic(t *testing.T) {
	profile := FaultProfile{TimeoutDenom: 5, RateLimitDenom: 7, ServerErrorDenom: 9, MalformedDenom: 11}
	a := NewFaultyTransport(nil, profile, 42)
	b := NewFaultyTransport(nil, profile, 42)
	c := NewFaultyTransport(nil, profile, 43)
	differs := false
	for i := 0; i < 200; i++ {
		for attempt := 0; attempt < 4; attempt++ {
			path := "pkg/file" + string(rune('a'+i%26)) + ".go"
			ka := a.faultAt(path, i, attempt)
			if kb := b.faultAt(path, i, attempt); ka != kb {
				t.Fatalf("same seed disagreed at (%s, %d): %q vs %q", path, attempt, ka, kb)
			}
			if kc := c.faultAt(path, i, attempt); ka != kc {
				differs = true
			}
		}
	}
	if !differs {
		t.Error("different seeds produced identical 800-call schedules")
	}
}

// TestPlanMatchesExecution replays every plan against Do and checks the
// dry-run (used for budget settlement) agrees with real execution: same
// number of transient failures before delivery, same permanent outcome.
func TestPlanMatchesExecution(t *testing.T) {
	profile := FaultProfile{TimeoutDenom: 3, RateLimitDenom: 4, ServerErrorDenom: 5, MalformedDenom: 6, OutageAfterFiles: 150}
	tr := NewFaultyTransport(nil, profile, 7)
	const maxAttempts = 4
	for i := 0; i < 200; i++ {
		path := "p/f" + string(rune('0'+i%10)) + string(rune('a'+i%26)) + ".go"
		plan := tr.planFor(path, i, maxAttempts)
		var lastErr error
		attempts := 0
		for a := 0; a < maxAttempts; a++ {
			attempts++
			lastErr = tr.Do(context.Background(), Call{Path: path, Ordinal: i, Attempt: a})
			if lastErr == nil || !IsTransient(lastErr) {
				break
			}
		}
		switch {
		case plan.permanent == FaultOutage:
			if !errmodel.IsClass(lastErr, "BackendOutageException") {
				t.Fatalf("%s ordinal %d: plan says outage, Do returned %v", path, i, lastErr)
			}
		case plan.permanent == FaultMalformed:
			if !errmodel.IsClass(lastErr, "MalformedCompletionException") {
				t.Fatalf("%s: plan says malformed, Do returned %v", path, lastErr)
			}
			if attempts-1 != plan.retriesWanted {
				t.Fatalf("%s: malformed after %d retries, plan wanted %d", path, attempts-1, plan.retriesWanted)
			}
		case plan.delivered:
			if lastErr != nil {
				t.Fatalf("%s: plan says delivered, Do returned %v", path, lastErr)
			}
			if attempts-1 != plan.retriesWanted {
				t.Fatalf("%s: delivered after %d retries, plan wanted %d", path, attempts-1, plan.retriesWanted)
			}
		default: // transient exhaustion
			if lastErr == nil || !IsTransient(lastErr) {
				t.Fatalf("%s: plan says exhausted, Do returned %v", path, lastErr)
			}
			if plan.retriesWanted != maxAttempts-1 {
				t.Fatalf("%s: exhausted plan wants %d retries", path, plan.retriesWanted)
			}
		}
	}
}

func TestIsTransientClassification(t *testing.T) {
	cases := []struct {
		class string
		want  bool
	}{
		{"SocketTimeoutException", true},
		{"RateLimitedException", true},
		{"ServiceUnavailableException", true},
		{"BackendOutageException", false},
		{"MalformedCompletionException", false},
		{"NullPointerException", false},
	}
	for _, c := range cases {
		if got := IsTransient(errmodel.New(c.class, c.class)); got != c.want {
			t.Errorf("IsTransient(%s) = %v, want %v", c.class, got, c.want)
		}
	}
	if IsTransient(errors.New("plain")) {
		t.Error("plain errors must not be transient")
	}
}

// TestHardOutageEveryCallFails: under a hard outage no ordinal or attempt
// ever gets through, and the fault counter records every rejection.
func TestHardOutageEveryCallFails(t *testing.T) {
	reg := obs.NewRegistry()
	tr := NewFaultyTransport(nil, FaultProfile{HardOutage: true}, 1).Instrument(reg)
	for i := 0; i < 10; i++ {
		err := tr.Do(context.Background(), Call{Path: "x.go", Ordinal: i, Attempt: i % 3})
		if !errmodel.IsClass(err, "BackendOutageException") {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if got := reg.Counter("llm_transport_faults_total", "kind", FaultOutage).Value(); got != 10 {
		t.Fatalf("outage fault counter = %d, want 10", got)
	}
}

// TestOutageAfterWindow: ordinals below the threshold behave normally,
// ordinals at or above it are hard-down.
func TestOutageAfterWindow(t *testing.T) {
	tr := NewFaultyTransport(nil, FaultProfile{OutageAfterFiles: 3}, 1)
	for i := 0; i < 6; i++ {
		err := tr.Do(context.Background(), Call{Path: "y.go", Ordinal: i})
		if i < 3 && err != nil {
			t.Fatalf("ordinal %d before the window failed: %v", i, err)
		}
		if i >= 3 && !errmodel.IsClass(err, "BackendOutageException") {
			t.Fatalf("ordinal %d inside the window: %v", i, err)
		}
	}
}
