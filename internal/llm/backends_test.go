package llm

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"wasabi/internal/errmodel"
	"wasabi/internal/obs"
)

// fnTransport adapts a function to the Transport interface — the test
// seam BackendSpec.Transport exists for.
type fnTransport struct {
	fn func(ctx context.Context, call Call) error
}

func (t fnTransport) Do(ctx context.Context, call Call) error { return t.fn(ctx, call) }

// okTransport always succeeds.
func okTransport() Transport {
	return fnTransport{fn: func(context.Context, Call) error { return nil }}
}

// failTransport always fails with the given exception class.
func failTransport(class string) Transport {
	return fnTransport{fn: func(context.Context, Call) error {
		return errmodel.New(class, class)
	}}
}

// slowTransport succeeds after d, or returns ctx.Err() if cancelled
// first.
func slowTransport(d time.Duration) Transport {
	return fnTransport{fn: func(ctx context.Context, _ Call) error {
		select {
		case <-time.After(d):
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}}
}

func TestParseBackendsGrammar(t *testing.T) {
	specs, err := ParseBackends("primary=sim:outage; secondary=sim;edge=http:http://127.0.0.1:8081")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 3 {
		t.Fatalf("got %d specs, want 3", len(specs))
	}
	if specs[0].Name != "primary" || specs[0].Kind != "sim" || specs[0].Fault == nil || !specs[0].Fault.HardOutage {
		t.Errorf("spec 0 = %+v", specs[0])
	}
	if specs[1].Name != "secondary" || specs[1].Kind != "sim" || specs[1].Fault != nil {
		t.Errorf("spec 1 = %+v", specs[1])
	}
	if specs[2].Kind != "http" || specs[2].URL != "http://127.0.0.1:8081" {
		t.Errorf("spec 2 = %+v", specs[2])
	}
	// Round-trip: rendering re-parses to the same topology string.
	rendered := backendsString(specs)
	again, err := ParseBackends(rendered)
	if err != nil {
		t.Fatalf("round-trip parse of %q: %v", rendered, err)
	}
	if backendsString(again) != rendered {
		t.Errorf("round-trip drifted: %q -> %q", rendered, backendsString(again))
	}
}

func TestParseBackendsErrors(t *testing.T) {
	cases := []struct {
		spec string
		want string // substring of the error
	}{
		{"", "no backends"},
		{";;", "no backends"},
		{"sim", "name=kind"},
		{"=sim", "name=kind"},
		{"bad name=sim", "must match"},
		{"a=sim;a=sim", "duplicate"},
		{"a=ftp:x", "unknown kind"},
		{"a=http", "wants a URL"},
		{"a=sim:bogus-profile", "bogus-profile"},
	}
	for _, c := range cases {
		if _, err := ParseBackends(c.spec); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("ParseBackends(%q) err = %v, want substring %q", c.spec, err, c.want)
		}
	}
}

// TestFailoverOnFailure: the primary fails hard, the secondary answers —
// routing completes the review with the secondary's name on it and the
// failover counter incremented.
func TestFailoverOnFailure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Backends = []BackendSpec{
		{Name: "primary", Kind: "sim", Transport: failTransport("BackendOutageException")},
		{Name: "secondary", Kind: "sim", Transport: okTransport()},
	}
	reg := obs.NewRegistry()
	c := NewClient(cfg).Instrument(reg)
	rev := c.Review("mem.go", []byte("package mem\n"))
	if rev.Degraded {
		t.Fatalf("review degraded: %+v", rev)
	}
	if rev.Backend != "secondary" {
		t.Errorf("winning backend = %q, want secondary", rev.Backend)
	}
	if got := reg.Counter("llm_backend_failovers_total", "backend", "secondary").Value(); got != 1 {
		t.Errorf("failovers into secondary = %d, want 1", got)
	}
	if got := reg.Counter("llm_backend_failures_total", "backend", "primary").Value(); got != 1 {
		t.Errorf("primary failures = %d, want 1", got)
	}
}

// TestAllBackendsFailDegrades: every backend fails permanently — the
// review degrades with the outage reason instead of erroring out.
func TestAllBackendsFailDegrades(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Backends = []BackendSpec{
		{Name: "a", Kind: "sim", Transport: failTransport("BackendOutageException")},
		{Name: "b", Kind: "sim", Transport: failTransport("BackendOutageException")},
	}
	reg := obs.NewRegistry()
	rev := NewClient(cfg).Instrument(reg).Review("mem.go", []byte("package mem\n"))
	if !rev.Degraded {
		t.Fatal("review did not degrade with every backend down")
	}
	if rev.DegradedReason != DegradedOutage {
		t.Errorf("degrade reason = %q, want %q", rev.DegradedReason, DegradedOutage)
	}
}

// TestHedgeBudgetBound: hedges draw from the shared retry budget —
// with capacity 2 and refill disabled, at most two hedges ever launch no
// matter how many slow reviews route; the rest are suppressed and
// counted against the budget.
func TestHedgeBudgetBound(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HedgeAfter = time.Millisecond
	cfg.Resilience = ResilienceConfig{BudgetCapacity: 2, BudgetRefillEvery: -1}
	cfg.Backends = []BackendSpec{
		{Name: "primary", Kind: "sim", Transport: slowTransport(50 * time.Millisecond)},
		{Name: "secondary", Kind: "sim", Transport: slowTransport(50 * time.Millisecond)},
	}
	mt, err := NewMultiTransport(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	mt.Instrument(reg)
	const reviews = 6
	for i := 0; i < reviews; i++ {
		if _, err := mt.Route(context.Background(), Call{Path: "mem.go", Ordinal: i}); err != nil {
			t.Fatalf("route %d: %v", i, err)
		}
	}
	launched := reg.Counter("llm_backend_hedges_total", "outcome", "launched").Value()
	suppressed := reg.Counter("llm_backend_hedges_total", "outcome", "suppressed").Value()
	if launched != 2 {
		t.Errorf("hedges launched = %d, want exactly the budget capacity (2)", launched)
	}
	if suppressed != reviews-2 {
		t.Errorf("hedges suppressed = %d, want %d", suppressed, reviews-2)
	}
	if got := mt.Budget().Remaining(); got != 0 {
		t.Errorf("budget remaining = %d, want 0", got)
	}
	if got := reg.Counter("llm_retry_budget_exhausted_total").Value(); got != reviews-2 {
		t.Errorf("budget-exhausted counter = %d, want %d", got, reviews-2)
	}
}

// TestHedgeWinnerCancelsLoser: the primary is slow, the hedge answers
// first — the hedge wins, the slow primary is cancelled, and the
// cancellation is no verdict against the primary's breaker.
func TestHedgeWinnerCancelsLoser(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HedgeAfter = time.Millisecond
	cfg.Backends = []BackendSpec{
		{Name: "primary", Kind: "sim", Transport: slowTransport(10 * time.Second)},
		{Name: "secondary", Kind: "sim", Transport: okTransport()},
	}
	mt, err := NewMultiTransport(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	mt.Instrument(reg)
	name, err := mt.Route(context.Background(), Call{Path: "mem.go"})
	if err != nil {
		t.Fatal(err)
	}
	if name != "secondary" {
		t.Errorf("winner = %q, want secondary", name)
	}
	if got := reg.Counter("llm_backend_hedges_total", "outcome", "won").Value(); got != 1 {
		t.Errorf("hedge-won counter = %d, want 1", got)
	}
	// The abandoned primary must not be penalized: its breaker never
	// transitions, so the state gauge stays at the closed seed value.
	if got := reg.Gauge("llm_backend_breaker_state", "backend", "primary").Value(); got != 0 {
		t.Errorf("primary breaker state gauge = %v, want 0 (closed)", got)
	}
}

// openEveryBreaker drives every backend's breaker open via failing
// routes. Wants BreakerThreshold 1.
func openEveryBreaker(t *testing.T, mt *MultiTransport, backends int) {
	t.Helper()
	if _, err := mt.Route(context.Background(), Call{Path: "mem.go"}); err == nil {
		t.Fatal("route against failing backends succeeded")
	}
	// One failing route records a failure on every backend it fell over
	// to, which at threshold 1 opens each breaker it touched. With lazy
	// admission that is every backend.
	_ = backends
}

// TestAllBreakersOpen: once every breaker is open, routing returns
// ErrAllBreakersOpen without touching a backend, and the review layer
// maps it to the breaker-open degrade reason.
func TestAllBreakersOpen(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Resilience = ResilienceConfig{BreakerThreshold: 1, BreakerCooldown: 5 * time.Second, BudgetRefillEvery: -1}
	calls := 0
	var mu sync.Mutex
	counting := fnTransport{fn: func(context.Context, Call) error {
		mu.Lock()
		calls++
		mu.Unlock()
		return errmodel.New("BackendOutageException", "down")
	}}
	cfg.Backends = []BackendSpec{
		{Name: "a", Kind: "sim", Transport: counting},
		{Name: "b", Kind: "sim", Transport: counting},
	}
	mt, err := NewMultiTransport(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	mt.Instrument(reg)
	clock := time.Duration(0)
	mt.SetClock(func() time.Duration { return clock })

	openEveryBreaker(t, mt, 2)
	mu.Lock()
	before := calls
	mu.Unlock()
	if _, err := mt.Route(context.Background(), Call{Path: "mem.go"}); !errors.Is(err, ErrAllBreakersOpen) {
		t.Fatalf("err = %v, want ErrAllBreakersOpen", err)
	}
	mu.Lock()
	after := calls
	mu.Unlock()
	if after != before {
		t.Errorf("all-open routing still called a backend (%d -> %d calls)", before, after)
	}
	if got := reg.Counter("llm_backend_all_open_total").Value(); got != 1 {
		t.Errorf("all-open counter = %d, want 1", got)
	}
	if got := reg.Gauge("llm_backend_breaker_state", "backend", "a").Value(); got != 1 {
		t.Errorf("breaker a state gauge = %v, want 1 (open)", got)
	}
	if multiDegradeReason(ErrAllBreakersOpen, false) != DegradedBreakerOpen {
		t.Error("ErrAllBreakersOpen must map to the breaker-open degrade reason")
	}
}

// TestHalfOpenSingleProbeUnderConcurrency: after the cooldown, two
// racing routes must not both be admitted as probes — exactly one gets
// the half-open slot, the other finds nowhere to route. Run under -race
// (make chaos does): the probe latch is the synchronization under test.
func TestHalfOpenSingleProbeUnderConcurrency(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Resilience = ResilienceConfig{BreakerThreshold: 1, BreakerCooldown: 5 * time.Second, BudgetRefillEvery: -1}
	gate := make(chan struct{})
	healthy := false
	var mu sync.Mutex
	cfg.Backends = []BackendSpec{{Name: "only", Kind: "sim", Transport: fnTransport{fn: func(ctx context.Context, _ Call) error {
		mu.Lock()
		ok := healthy
		mu.Unlock()
		if !ok {
			return errmodel.New("ServiceUnavailableException", "warming up")
		}
		<-gate
		return nil
	}}}}
	mt, err := NewMultiTransport(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	mt.Instrument(reg)
	clock := time.Duration(0)
	mt.SetClock(func() time.Duration { return clock })

	// Open the breaker, then recover the backend and expire the cooldown.
	if _, err := mt.Route(context.Background(), Call{Path: "mem.go"}); err == nil {
		t.Fatal("warm-up route succeeded")
	}
	mu.Lock()
	healthy = true
	mu.Unlock()
	clock = 6 * time.Second

	type out struct {
		name string
		err  error
	}
	results := make(chan out, 2)
	for i := 0; i < 2; i++ {
		go func() {
			name, err := mt.Route(context.Background(), Call{Path: "mem.go"})
			results <- out{name, err}
		}()
	}
	// Exactly one goroutine holds the probe slot (blocked on gate); the
	// other must already have been refused.
	first := <-results
	if !errors.Is(first.err, ErrAllBreakersOpen) {
		t.Fatalf("loser err = %v, want ErrAllBreakersOpen (probe slot already claimed)", first.err)
	}
	close(gate)
	second := <-results
	if second.err != nil || second.name != "only" {
		t.Fatalf("probe route = %q, %v, want only, nil", second.name, second.err)
	}
	// The successful probe closed the circuit again.
	if got := reg.Gauge("llm_backend_breaker_state", "backend", "only").Value(); got != 0 {
		t.Errorf("breaker state gauge after probe = %v, want 0 (closed)", got)
	}
	if _, err := mt.Route(context.Background(), Call{Path: "mem.go"}); err != nil {
		t.Fatalf("post-recovery route: %v", err)
	}
}

// TestHedgeSuppressionReleasesProbeSlot: a hedge target in half-open
// state has its single probe slot claimed by admission; when the empty
// budget then suppresses the hedge, the slot must be handed back —
// otherwise no call ever settles it and the backend is unroutable for
// the rest of the transport's (daemon-long) life.
func TestHedgeSuppressionReleasesProbeSlot(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HedgeAfter = time.Millisecond
	cfg.Resilience = ResilienceConfig{BreakerThreshold: 1, BreakerCooldown: 5 * time.Second, BudgetCapacity: 1, BudgetRefillEvery: -1}
	healthy := false
	var mu sync.Mutex
	secondary := fnTransport{fn: func(context.Context, Call) error {
		mu.Lock()
		defer mu.Unlock()
		if !healthy {
			return errmodel.New("ServiceUnavailableException", "warming up")
		}
		return nil
	}}
	cfg.Backends = []BackendSpec{
		{Name: "primary", Kind: "sim", Transport: slowTransport(30 * time.Millisecond)},
		{Name: "secondary", Kind: "sim", Transport: secondary},
	}
	mt, err := NewMultiTransport(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	mt.Instrument(reg)
	clock := time.Duration(0)
	mt.SetClock(func() time.Duration { return clock })

	// Open the secondary's breaker directly (threshold 1), then recover
	// the backend and expire the cooldown so it sits half-open with one
	// probe slot available.
	mt.recordOutcome(mt.backends[1], errmodel.New("ServiceUnavailableException", "down"))
	mu.Lock()
	healthy = true
	mu.Unlock()
	clock = 6 * time.Second
	// Drain the one-token budget so the hedge finds the bucket empty
	// (withDefaults treats capacity 0 as "use the default").
	if !mt.takeToken() {
		t.Fatal("draining the budget failed (test setup)")
	}

	// The slow primary trips the hedge timer; admission claims the
	// secondary's probe slot, then the empty budget suppresses the
	// hedge. The slot must come back with the suppression.
	if _, err := mt.Route(context.Background(), Call{Path: "mem.go"}); err != nil {
		t.Fatalf("route with suppressed hedge: %v", err)
	}
	if got := reg.Counter("llm_backend_hedges_total", "outcome", "suppressed").Value(); got != 1 {
		t.Fatalf("suppressed hedges = %d, want 1 (test setup)", got)
	}

	// The secondary must still be probe-able: a failing primary now
	// fails over to it, and the probe succeeds.
	mt.backends[0].t = failTransport("BackendOutageException")
	name, err := mt.Route(context.Background(), Call{Path: "mem.go"})
	if err != nil {
		t.Fatalf("post-suppression route: %v (leaked probe latch keeps the secondary unroutable)", err)
	}
	if name != "secondary" {
		t.Errorf("winner = %q, want secondary", name)
	}
	if got := reg.Gauge("llm_backend_breaker_state", "backend", "secondary").Value(); got != 0 {
		t.Errorf("secondary breaker state = %v, want 0 (closed after successful probe)", got)
	}
}

// TestFlightCoalesces: callers arriving while an identical review is in
// flight share the leader's answer; late callers start fresh; shared
// copies do not alias the leader's findings slice.
func TestFlightCoalesces(t *testing.T) {
	f := NewFlight()
	entered := make(chan struct{})
	release := make(chan struct{})
	leaderRev := FileReview{File: "x.go", Findings: []Finding{{Coordinator: "w"}}}

	var follower FileReview
	var followerShared bool
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		rev, shared := f.Do("k", func() FileReview {
			close(entered)
			<-release
			return leaderRev
		})
		if shared {
			t.Error("leader reported shared")
		}
		if len(rev.Findings) != 1 {
			t.Errorf("leader findings = %v", rev.Findings)
		}
	}()
	<-entered
	go func() {
		defer wg.Done()
		follower, followerShared = f.Do("k", func() FileReview {
			t.Error("follower ran the review fn")
			return FileReview{}
		})
	}()
	// The follower blocks on the leader's flight; give it a moment to
	// register, then let the leader finish.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()
	if !followerShared {
		t.Fatal("follower did not share the leader's flight")
	}
	if follower.File != "x.go" || len(follower.Findings) != 1 {
		t.Fatalf("follower rev = %+v", follower)
	}
	follower.Findings[0].Coordinator = "mutated"
	if leaderRev.Findings[0].Coordinator != "w" {
		t.Error("shared copy aliases the leader's findings")
	}
	// The flight is settled: the next caller runs fresh.
	ran := false
	if _, shared := f.Do("k", func() FileReview { ran = true; return FileReview{} }); shared || !ran {
		t.Error("late caller after settlement must start a fresh flight")
	}
}

// TestClientSingleflightSharesOneCall: two concurrent client reviews of
// identical content make exactly one upstream call; the follower's
// FileReview is marked Shared and the shared counter records it.
func TestClientSingleflightSharesOneCall(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	calls := 0
	var mu sync.Mutex
	cfg := DefaultConfig()
	cfg.Flight = NewFlight()
	cfg.Backends = []BackendSpec{{Name: "only", Kind: "sim", Transport: fnTransport{fn: func(context.Context, Call) error {
		mu.Lock()
		calls++
		first := calls == 1
		mu.Unlock()
		if first {
			close(entered)
			<-release
		}
		return nil
	}}}}
	reg := obs.NewRegistry()
	c := NewClient(cfg).Instrument(reg)

	src := []byte("package mem\n")
	revs := make(chan FileReview, 2)
	go func() { revs <- c.Review("mem.go", src) }()
	<-entered
	go func() { revs <- c.Review("mem.go", src) }()
	// Let the second review reach the flight wait before the leader's
	// transport answers.
	time.Sleep(20 * time.Millisecond)
	close(release)
	a, b := <-revs, <-revs
	mu.Lock()
	upstream := calls
	mu.Unlock()
	if upstream != 1 {
		t.Fatalf("upstream calls = %d, want 1 (coalesced)", upstream)
	}
	sharedCount := 0
	for _, rev := range []FileReview{a, b} {
		if rev.Degraded {
			t.Fatalf("degraded review: %+v", rev)
		}
		if rev.Shared {
			sharedCount++
		}
	}
	if sharedCount != 1 {
		t.Errorf("shared reviews = %d, want exactly 1 follower", sharedCount)
	}
	if got := reg.Counter("llm_backend_singleflight_shared_total").Value(); got != 1 {
		t.Errorf("singleflight counter = %d, want 1", got)
	}
}

// TestFingerprintCoversTopology: backend topology and hedge threshold
// are part of the config fingerprint (they change routing, so cached
// reviews must not cross them) — and the default config's fingerprint is
// untouched, keeping PR 3 cache keys and chaos baselines stable.
func TestFingerprintCoversTopology(t *testing.T) {
	base := DefaultConfig().Fingerprint()
	if strings.Contains(base, "backends=") || strings.Contains(base, "hedge=") {
		t.Errorf("default fingerprint mentions backends: %q", base)
	}
	cfg := DefaultConfig()
	var err error
	cfg.Backends, err = ParseBackends("primary=sim:outage;secondary=sim")
	if err != nil {
		t.Fatal(err)
	}
	fp1 := cfg.Fingerprint()
	if fp1 == base {
		t.Error("topology did not change the fingerprint")
	}
	cfg.HedgeAfter = 50 * time.Millisecond
	if cfg.Fingerprint() == fp1 {
		t.Error("hedge threshold did not change the fingerprint")
	}
}

// TestMultiBackendZeroRetriesKeepsBudgetFull: healthy routing never
// touches the shared budget (tokens pay for retries and hedges only).
func TestMultiBackendZeroRetriesKeepsBudgetFull(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Resilience = ResilienceConfig{BudgetCapacity: 4, BudgetRefillEvery: -1}
	cfg.Backends = []BackendSpec{{Name: "only", Kind: "sim", Transport: okTransport()}}
	c := NewClient(cfg).Instrument(obs.NewRegistry())
	for i := 0; i < 5; i++ {
		if rev := c.Review("mem.go", []byte("package mem\n")); rev.Degraded || rev.Retries != 0 {
			t.Fatalf("healthy review %d: %+v", i, rev)
		}
	}
	if got := c.Multi().Budget().Remaining(); got != 4 {
		t.Errorf("budget remaining = %d, want untouched 4", got)
	}
}
