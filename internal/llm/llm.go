// Package llm is the reproduction's stand-in for GPT-4: a deterministic
// model of the large language model's *measured* behaviour in the WASABI
// paper, used for fuzzy retry identification (§3.1.1 technique 2) and
// static WHEN-bug detection (§3.2.1).
//
// The environment is offline, so instead of calling an LLM API, the client
// reproduces the capability envelope the paper reports for GPT-4:
//
//   - it identifies retry from NON-structural evidence — names, comments,
//     string literals — and therefore finds queue- and state-machine-based
//     retry that control-flow analysis cannot (§4.2, Figure 4);
//   - it answers the paper's prompt chain Q1 (does the file retry?), Q2
//     (sleep before retry?), Q3 (cap on retries?), Q4 (poll/spin-lock?);
//   - it FAILS on large files: beyond a context threshold it does not even
//     realize retry exists (the paper's 100 missed loops in 53 large
//     files, mean ~10.5 KB);
//   - it produces the paper's false-positive modes at seeded-deterministic
//     rates: labeling poll/status-update code as retry when Q4 misfires,
//     missing sleeps that live in helpers outside the file (single-file
//     context), and occasionally misreading an explicit cap;
//   - it accounts API calls, tokens, and dollar cost (§4.3 "Cost of
//     GPT-4").
//
// Every decision is a pure function of (seed, file path, function name),
// so runs are reproducible.
package llm

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"hash/fnv"
	"log/slog"
	"os"
	"strings"
	"sync"
	"time"

	"wasabi/internal/obs"
	"wasabi/internal/source"
)

// Config tunes the simulated model.
type Config struct {
	// LargeFileThreshold is the context limit in bytes: files larger than
	// this defeat the model's retry comprehension entirely.
	LargeFileThreshold int
	// Seed perturbs all stochastic-looking decisions deterministically.
	Seed uint64
	// PricePerMTokens is the dollar price per million input tokens used
	// for cost accounting.
	PricePerMTokens float64

	// Noise denominators: a hash bucket of 1-in-N triggers the failure
	// mode. Zero disables the mode.
	HallucinateRetryDenom int // borderline function labeled retry (Q1 FP)
	Q4MissDenom           int // poll/spin exclusion fails
	CapMisreadDenom       int // explicit cap not comprehended (Q3 FP)
	DelayMisreadDenom     int // in-file sleep not comprehended (Q2 FP)

	// Fault, when non-nil, models an unreliable backend: reviews go
	// through a FaultyTransport behind the resilience stack configured by
	// Resilience (see transport.go and resilient.go). Nil keeps the
	// perfect, fault-free backend. A non-nil zero-valued profile enables
	// the machinery without injecting anything — output must then be
	// byte-identical to the nil case.
	Fault *FaultProfile
	// Resilience tunes the retry policy, shared retry budget and circuit
	// breaker used when Fault is set; zero fields take the
	// DefaultResilienceConfig values.
	Resilience ResilienceConfig

	// Backends, when non-empty, routes reviews across an ordered
	// multi-backend topology (backends.go): per-backend circuit breakers,
	// health-gated failover, and optional hedging. Mutually exclusive
	// with Fault — a topology models per-backend fault profiles on its
	// own specs. Empty keeps the single-backend behaviour byte-identical.
	Backends []BackendSpec
	// HedgeAfter, when > 0 and more than one backend is healthy, launches
	// a hedged attempt on the next backend after this much wall time
	// without an answer. Hedges draw from the shared retry budget.
	HedgeAfter time.Duration
	// Multi, when non-nil, is a pre-built shared transport (e.g. one per
	// daemon process, so backend health and the shared budget span jobs).
	// Callers setting Multi should set Backends to the same topology so
	// Fingerprint stays truthful.
	Multi *MultiTransport
	// Flight, when non-nil, coalesces identical in-flight reviews across
	// every client sharing it (singleflight).
	Flight *Flight
	// Log receives structured failover/hedge/breaker decision events;
	// nil discards them.
	Log *slog.Logger
}

// MultiBackend reports whether reviews route through the multi-backend
// layer (which trades canonical-order admission for availability, so
// e.g. the review cache must stay off).
func (c Config) MultiBackend() bool {
	return c.Multi != nil || len(c.Backends) > 0
}

// PromptVersion identifies the revision of the Q1–Q4 prompt chain baked
// into Review. It is part of every review-cache key (internal/cache), so
// bumping it invalidates memoized reviews wholesale: change it whenever
// Review's question logic or failure modes change in a way that can alter
// output for unchanged input.
const PromptVersion = "q1q4/v1"

// Fingerprint renders every configuration fact that can influence a
// review's outcome as a stable string — the "prompt/config version"
// component of review-cache keys. Two clients with equal fingerprints
// produce identical FileReviews for identical (path, contents) inputs,
// provided no fault profile is active (fault-profile runs are admitted in
// run-global order and are not cacheable per file; the profile is still
// folded in defensively).
func (c Config) Fingerprint() string {
	fp := fmt.Sprintf("%s|thr=%d|seed=%d|price=%g|q1=%d|q4=%d|q3=%d|q2=%d",
		PromptVersion, c.LargeFileThreshold, c.Seed, c.PricePerMTokens,
		c.HallucinateRetryDenom, c.Q4MissDenom, c.CapMisreadDenom, c.DelayMisreadDenom)
	if c.Fault != nil {
		fp += "|fault=" + c.Fault.String()
	}
	if len(c.Backends) > 0 {
		fp += "|backends=" + backendsString(c.Backends)
		if c.HedgeAfter > 0 {
			fp += "|hedge=" + c.HedgeAfter.String()
		}
	}
	return fp
}

// DefaultConfig mirrors the paper's measured behaviour.
func DefaultConfig() Config {
	return Config{
		LargeFileThreshold:    7500,
		Seed:                  2024,
		PricePerMTokens:       2.50,
		HallucinateRetryDenom: 4,
		Q4MissDenom:           5,
		CapMisreadDenom:       11,
		DelayMisreadDenom:     13,
	}
}

// Client is a simulated GPT-4 endpoint with usage accounting.
type Client struct {
	cfg Config
	// reg, when set, receives the per-review observability counters and
	// latency/token histograms (see docs/OBSERVABILITY.md).
	reg *obs.Registry
	// chaos is the resilience stack (resilient.go); nil without a fault
	// profile, in which case reviews hit the model directly.
	chaos *chaosState
	// multi is the multi-backend routing state (backends.go); nil unless
	// Config.Backends or Config.Multi is set. multi and chaos are
	// mutually exclusive (multi wins).
	multi *multiState

	mu       sync.Mutex
	calls    int
	tokensIn int64
}

// NewClient returns a client with the given configuration.
func NewClient(cfg Config) *Client {
	if cfg.LargeFileThreshold == 0 {
		cfg.LargeFileThreshold = DefaultConfig().LargeFileThreshold
	}
	if cfg.PricePerMTokens == 0 {
		cfg.PricePerMTokens = DefaultConfig().PricePerMTokens
	}
	c := &Client{cfg: cfg}
	switch {
	case cfg.MultiBackend():
		c.multi = c.newMultiState()
	case cfg.Fault != nil:
		c.chaos = c.newChaosState(*cfg.Fault)
	}
	return c
}

// Fingerprint returns the client's effective configuration fingerprint
// (defaults applied), the form review-cache keys must use.
func (c *Client) Fingerprint() string { return c.cfg.Fingerprint() }

// Instrument attaches a metrics registry (nil is fine) and returns the
// client for chaining.
func (c *Client) Instrument(reg *obs.Registry) *Client {
	c.reg = reg
	if c.chaos != nil {
		c.chaos.instrument(c)
	}
	if c.multi != nil {
		// First registry wins on a shared transport; per-job clients in
		// the daemon all pass the same one.
		c.multi.mt.Instrument(reg)
	}
	return c
}

// fileTokenBuckets sizes the per-file token-spend histogram: reviews
// cost between a few hundred and a few ten-thousand tokens.
var fileTokenBuckets = []float64{256, 512, 1024, 2048, 4096, 8192, 16384, 32768}

// Usage summarizes the API traffic so far.
type Usage struct {
	Calls    int
	TokensIn int64
	CostUSD  float64
}

// Add accumulates another tally (cost is linear in tokens, so it sums).
func (u *Usage) Add(o Usage) {
	u.Calls += o.Calls
	u.TokensIn += o.TokensIn
	u.CostUSD += o.CostUSD
}

// Usage returns accumulated usage.
func (c *Client) Usage() Usage {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Usage{
		Calls:    c.calls,
		TokensIn: c.tokensIn,
		CostUSD:  float64(c.tokensIn) / 1e6 * c.cfg.PricePerMTokens,
	}
}

// ResetUsage zeroes the accounting counters.
func (c *Client) ResetUsage() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.calls, c.tokensIn = 0, 0
}

// Finding is one coordinator method the model believes implements retry.
type Finding struct {
	// Coordinator is the normalized method name "pkg.Type.method".
	Coordinator string
	// File is the source file basename.
	File string
	// Mechanism is the model's classification: "loop", "queue", or
	// "statemachine".
	Mechanism string
	// SleepsBeforeRetry is the Q2 answer.
	SleepsBeforeRetry bool
	// HasCap is the Q3 answer.
	HasCap bool
	// PollOrSpin is the Q4 answer; true findings are excluded from
	// retry identification and bug reports.
	PollOrSpin bool
	// Hallucinated marks Q1 false positives (for introspection only;
	// callers must not branch on it).
	Hallucinated bool
}

// FileReview is the outcome of the Q1–Q4 prompt chain over one file.
type FileReview struct {
	File string
	Size int
	// PerformsRetry is the Q1 answer.
	PerformsRetry bool
	// TruncatedContext marks the large-file failure mode.
	TruncatedContext bool
	// Findings are the retained (non-poll) retry coordinators.
	Findings []Finding
	// Spent is the API usage attributable to reviewing this file. Unlike
	// Client.Usage, which accumulates across every review the client has
	// performed, Spent is a pure function of the file contents — it stays
	// identical no matter how reviews are scheduled across goroutines.
	// Degraded reviews resend nothing, so their Spent stays zero.
	Spent Usage
	// Degraded marks a review the resilient client could not complete
	// against an unreliable backend: no model answers exist for this
	// file, and the pipeline falls back to static-only analysis for it.
	Degraded bool
	// DegradedReason is one of the Degraded* constants (resilient.go)
	// when Degraded is set.
	DegradedReason string
	// Retries counts transport attempts beyond the first that this
	// review consumed (0 for a clean first try, and for degraded reviews
	// that never got a successful attempt the count of failed retries).
	// It is a scheduling fact, not a property of the file contents, so
	// it is excluded from JSON: cached review envelopes and reports must
	// stay byte-identical between cold and warm runs.
	Retries int `json:"-"`
	// Backend names the backend that answered a multi-backend review
	// ("" outside multi-backend mode). A routing fact, not a property of
	// the contents — excluded from JSON like Retries.
	Backend string `json:"-"`
	// Shared marks a review whose answer was coalesced from another
	// in-flight review (singleflight follower). Followers resend nothing,
	// so callers must not re-charge their Spent as fresh upstream spend.
	Shared bool `json:"-"`
}

// ReviewFile runs the prompt chain over the file at path. With a fault
// profile configured the review is admitted in arrival order; corpus
// runs that need canonical ordering use ReviewFileAt.
func (c *Client) ReviewFile(path string) (FileReview, error) {
	return c.ReviewFileAt(path, -1, 0)
}

// ReviewFileAt is ReviewFile with an explicit canonical slot: lane is the
// app's position in the corpus and idx the file's position in the app's
// sorted file list. After StartRun, the resilience stack settles
// admissions in (lane, idx) order, which is what keeps grant decisions —
// and therefore output — identical at every worker count. Without a
// fault profile the slot is ignored.
func (c *Client) ReviewFileAt(path string, lane, idx int) (FileReview, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		c.reg.Counter("llm_read_failures_total").Inc()
		if c.chaos != nil {
			// The slot was announced via OpenLane; settle it (consuming
			// nothing) so later claims don't wait on it forever.
			c.chaos.budget.Claim(lane, idx, func(_, _ int) int { return 0 })
		}
		return FileReview{}, fmt.Errorf("llm: read %s for review: %w", path, err)
	}
	switch {
	case c.multi != nil:
		return c.reviewMulti(path, src, nil), nil
	case c.chaos != nil:
		return c.reviewChaos(path, src, nil, lane, idx), nil
	}
	return c.Review(path, src), nil
}

// ReviewSnapshotAt is ReviewFileAt over a pre-loaded snapshot file: no
// disk read, and the prompt chain consumes the snapshot's AST instead of
// re-parsing the bytes (the parse-once contract). Everything observable
// — the Q1–Q4 answers, the failure modes, the Spent accounting, and the
// chaos/budget admission path — is byte-identical to reviewing the same
// (path, contents) from disk.
func (c *Client) ReviewSnapshotAt(f *source.File, lane, idx int) FileReview {
	switch {
	case c.multi != nil:
		return c.reviewMulti(f.Path, f.Bytes, f)
	case c.chaos != nil:
		return c.reviewChaos(f.Path, f.Bytes, f, lane, idx)
	}
	return c.review(f.Path, f.Bytes, f)
}

// ReviewSnapshot is ReviewSnapshotAt outside a sequenced corpus run.
func (c *Client) ReviewSnapshot(f *source.File) FileReview {
	return c.ReviewSnapshotAt(f, -1, 0)
}

// Review runs the prompt chain over in-memory file contents, parsing
// them locally. Snapshot-backed runs use ReviewSnapshot/ReviewSnapshotAt
// and skip the parse. The review — including its Spent accounting — is a
// pure function of (config, path, contents), so concurrent reviews of
// different files are independent; the client's cumulative Usage is the
// only shared state, and it is only ever added to.
func (c *Client) Review(path string, src []byte) FileReview {
	if c.multi != nil {
		return c.reviewMulti(path, src, nil)
	}
	return c.review(path, src, nil)
}

// review is the Q1–Q4 prompt chain. pre, when non-nil, supplies the
// pre-parsed snapshot AST (and its parse error); nil parses src into a
// throwaway FileSet, the pre-snapshot behaviour. The parse only matters
// below the large-file threshold — the model answers Q1 from the raw
// context either way — so Spent never depends on which path ran.
func (c *Client) review(path string, src []byte, pre *source.File) FileReview {
	base := basename(path)
	rev := FileReview{File: base, Size: len(src)}
	start := time.Now()
	defer func() {
		c.charge(rev.Spent)
		c.reg.Counter("llm_files_reviewed_total").Inc()
		c.reg.Counter("llm_api_calls_total").Add(int64(rev.Spent.Calls))
		c.reg.Counter("llm_tokens_in_total").Add(rev.Spent.TokensIn)
		if rev.TruncatedContext {
			c.reg.Counter("llm_truncated_files_total").Inc()
		}
		c.reg.Histogram("llm_file_tokens", fileTokenBuckets).Observe(float64(rev.Spent.TokensIn))
		c.reg.Histogram("llm_review_ms", obs.LatencyBuckets).Observe(float64(time.Since(start)) / float64(time.Millisecond))
	}()

	// Q1 costs one call over the whole file.
	c.spend(&rev, len(src))

	if len(src) > c.cfg.LargeFileThreshold {
		// The model loses the thread in large inputs and answers Q1 "No"
		// — the dominant false-negative mode of §4.2.
		rev.TruncatedContext = true
		return rev
	}

	var f *ast.File
	var err error
	if pre != nil {
		f, err = pre.Syntax()
	} else {
		f, err = parser.ParseFile(token.NewFileSet(), path, src, parser.ParseComments)
	}
	if err != nil {
		// Unparseable input: the real model would still answer; ours
		// conservatively says no. Snapshot parse failures land here too,
		// keeping the counter's semantics for genuinely unparseable files
		// (large files never reach the parse, exactly as before).
		c.reg.Counter("llm_parse_failures_total").Inc()
		return rev
	}
	pkg := f.Name.Name
	sleepFuncs := localSleepFunctions(f)

	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		name := pkg + "." + funcKey(fd)
		ev := gatherEvidence(fd, f.Comments, sleepFuncs)
		// Q1's clarifications: a file that merely *defines* retry policies
		// or passes retry parameters around is not performing retry — the
		// model demands a re-execution shape (loop on error, re-enqueue,
		// or state machine) on top of naming/comment evidence.
		isRetry := ev.score() >= 3 && ev.hasReexecutionShape()
		hallucinated := false
		if !isRetry && ev.score() >= 2 && c.bucket(path, name, "q1", c.cfg.HallucinateRetryDenom) {
			isRetry, hallucinated = true, true
		}
		if !isRetry {
			continue
		}
		// Follow-up prompts Q2–Q4 cost three more calls over the file.
		c.spend(&rev, 3*len(src))

		find := Finding{
			Coordinator:       name,
			File:              base,
			Mechanism:         ev.mechanism(),
			SleepsBeforeRetry: ev.sleeps,
			HasCap:            ev.capped,
			PollOrSpin:        ev.pollish,
			Hallucinated:      hallucinated,
		}
		// Q2/Q3 misreads.
		if find.HasCap && c.bucket(path, name, "q3", c.cfg.CapMisreadDenom) {
			find.HasCap = false
		}
		if find.SleepsBeforeRetry && c.bucket(path, name, "q2", c.cfg.DelayMisreadDenom) {
			find.SleepsBeforeRetry = false
		}
		// Q4: poll/spin exclusion, which occasionally misses.
		if find.PollOrSpin {
			if c.bucket(path, name, "q4", c.cfg.Q4MissDenom) {
				find.PollOrSpin = false // exclusion failed: FP retained
			} else {
				continue // correctly excluded
			}
		}
		rev.Findings = append(rev.Findings, find)
	}
	rev.PerformsRetry = len(rev.Findings) > 0
	return rev
}

// WhenReport is a static WHEN-bug report produced from a finding (§3.2.1).
type WhenReport struct {
	Coordinator string
	File        string
	// Kind is "missing-cap" or "missing-delay".
	Kind string
}

// DetectWhenBugs derives WHEN-bug reports from a review: every retained
// retry coordinator without a cap yields a missing-cap report, and without
// a pre-retry sleep a missing-delay report.
func DetectWhenBugs(rev FileReview) []WhenReport {
	var out []WhenReport
	for _, f := range rev.Findings {
		if !f.HasCap {
			out = append(out, WhenReport{Coordinator: f.Coordinator, File: f.File, Kind: "missing-cap"})
		}
		if !f.SleepsBeforeRetry {
			out = append(out, WhenReport{Coordinator: f.Coordinator, File: f.File, Kind: "missing-delay"})
		}
	}
	return out
}

// spend accounts one API call carrying n bytes of context against the
// review's attributable usage.
func (c *Client) spend(rev *FileReview, n int) {
	rev.Spent.Calls++
	rev.Spent.TokensIn += int64(n) / 4 // ~4 bytes per token
	rev.Spent.CostUSD = float64(rev.Spent.TokensIn) / 1e6 * c.cfg.PricePerMTokens
}

// charge folds a review's attributable usage into the cumulative counters.
func (c *Client) charge(u Usage) {
	c.mu.Lock()
	c.calls += u.Calls
	c.tokensIn += u.TokensIn
	c.mu.Unlock()
}

// bucket returns true for a deterministic 1-in-denom fraction of
// (seed, path, fn, salt) tuples.
func (c *Client) bucket(path, fn, salt string, denom int) bool {
	if denom <= 0 {
		return false
	}
	h := fnv.New64a()
	h.Write([]byte(path))
	h.Write([]byte{0})
	h.Write([]byte(fn))
	h.Write([]byte{0})
	h.Write([]byte(salt))
	var seed [8]byte
	for i := 0; i < 8; i++ {
		seed[i] = byte(c.cfg.Seed >> (8 * i))
	}
	h.Write(seed[:])
	return h.Sum64()%uint64(denom) == 0
}

// basename returns the final path element.
func basename(path string) string {
	return path[strings.LastIndex(path, "/")+1:]
}

// funcKey renders "Type.method" for methods and "func" for functions.
func funcKey(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}
