package llm

import (
	"path/filepath"
	"strings"
	"testing"

	"wasabi/internal/apps/corpus"
)

func reviewHDFSFile(t *testing.T, base string) FileReview {
	t.Helper()
	app, err := corpus.ByCode("HD")
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(DefaultConfig())
	rev, err := c.ReviewFile(filepath.Join(app.Dir, base))
	if err != nil {
		t.Fatal(err)
	}
	return rev
}

func findingFor(rev FileReview, coordinator string) *Finding {
	for i := range rev.Findings {
		if rev.Findings[i].Coordinator == coordinator {
			return &rev.Findings[i]
		}
	}
	return nil
}

func TestIdentifiesLoopRetryInWebFS(t *testing.T) {
	rev := reviewHDFSFile(t, "webfs.go")
	if !rev.PerformsRetry {
		t.Fatal("webfs.go performs retry")
	}
	f := findingFor(rev, "hdfs.WebFS.Fetch")
	if f == nil {
		t.Fatalf("Fetch not identified; findings = %+v", rev.Findings)
	}
	if !f.SleepsBeforeRetry || !f.HasCap {
		t.Errorf("Fetch should have cap and delay: %+v", f)
	}
	if f.Mechanism != "loop" {
		t.Errorf("mechanism = %q", f.Mechanism)
	}
}

func TestIdentifiesNonKeywordedLoop(t *testing.T) {
	// FetchChecksummed has no retry-named identifiers — the structural
	// analysis misses it — but its comments say "re-attempting", which
	// the fuzzy reader catches.
	rev := reviewHDFSFile(t, "blockreader.go")
	f := findingFor(rev, "hdfs.BlockFetcher.FetchChecksummed")
	if f == nil {
		t.Fatalf("FetchChecksummed not identified; findings = %+v", rev.Findings)
	}
	if f.SleepsBeforeRetry {
		t.Error("FetchChecksummed has no delay; Q2 should be No")
	}
	if !f.HasCap {
		t.Error("FetchChecksummed is capped; Q3 should be Yes")
	}
}

func TestIdentifiesQueueRetry(t *testing.T) {
	rev := reviewHDFSFile(t, "mover.go")
	f := findingFor(rev, "hdfs.Balancer.processTask")
	if f == nil {
		t.Fatalf("processTask not identified; findings = %+v", rev.Findings)
	}
	if f.Mechanism != "queue" {
		t.Errorf("mechanism = %q, want queue", f.Mechanism)
	}
}

func TestIdentifiesStateMachineRetry(t *testing.T) {
	rev := reviewHDFSFile(t, "procedures.go")
	f := findingFor(rev, "hdfs.RegistrationProc.Step")
	if f == nil {
		t.Fatalf("RegistrationProc.Step not identified; findings = %+v", rev.Findings)
	}
	if f.Mechanism != "statemachine" {
		t.Errorf("mechanism = %q, want statemachine", f.Mechanism)
	}
	if f.SleepsBeforeRetry {
		t.Error("RegistrationProc has no delay; Q2 should be No")
	}
}

func TestWhenBugReportsFromHDFS(t *testing.T) {
	app, _ := corpus.ByCode("HD")
	c := NewClient(DefaultConfig())
	kinds := map[string]string{}
	for _, base := range []string{"webfs.go", "blockreader.go", "datastreamer.go", "mover.go", "editlog.go", "namenode.go", "procedures.go", "background.go"} {
		rev, err := c.ReviewFile(filepath.Join(app.Dir, base))
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range DetectWhenBugs(rev) {
			kinds[r.Coordinator+"/"+r.Kind] = base
		}
	}
	for _, want := range []string{
		"hdfs.EditLogTailer.CatchUp/missing-cap",
		"hdfs.DataStreamer.SetupPipeline/missing-delay",
		"hdfs.LeaseRenewer.Renew/missing-delay",
		"hdfs.RegistrationProc.Step/missing-delay",
	} {
		if _, ok := kinds[want]; !ok {
			t.Errorf("expected WHEN report %s; got %v", want, kinds)
		}
	}
	for k := range kinds {
		if strings.HasPrefix(k, "hdfs.WebFS.Fetch/") || strings.HasPrefix(k, "hdfs.NamenodeRPC.Call/") {
			t.Errorf("correct structure misreported: %s", k)
		}
	}
}

func TestLargeFileDefeatsComprehension(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LargeFileThreshold = 10
	c := NewClient(cfg)
	rev := c.Review("big.go", []byte("package big\n// retry retry retry\n"))
	if !rev.TruncatedContext {
		t.Error("expected truncated-context failure mode")
	}
	if rev.PerformsRetry {
		t.Error("large files must defeat retry identification")
	}
}

func TestUsageAccounting(t *testing.T) {
	c := NewClient(DefaultConfig())
	app, _ := corpus.ByCode("HD")
	if _, err := c.ReviewFile(filepath.Join(app.Dir, "webfs.go")); err != nil {
		t.Fatal(err)
	}
	u := c.Usage()
	if u.Calls < 2 {
		t.Errorf("calls = %d, want Q1 plus follow-ups", u.Calls)
	}
	if u.TokensIn == 0 || u.CostUSD <= 0 {
		t.Errorf("usage = %+v", u)
	}
	c.ResetUsage()
	if u2 := c.Usage(); u2.Calls != 0 || u2.TokensIn != 0 {
		t.Errorf("reset failed: %+v", u2)
	}
}

func TestDeterminism(t *testing.T) {
	app, _ := corpus.ByCode("HD")
	path := filepath.Join(app.Dir, "namenode.go")
	a, err := NewClient(DefaultConfig()).ReviewFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewClient(DefaultConfig()).ReviewFile(path)
	if len(a.Findings) != len(b.Findings) {
		t.Fatalf("non-deterministic finding count: %d vs %d", len(a.Findings), len(b.Findings))
	}
	for i := range a.Findings {
		if a.Findings[i] != b.Findings[i] {
			t.Errorf("finding %d differs: %+v vs %+v", i, a.Findings[i], b.Findings[i])
		}
	}
}

func TestBackgroundFileMostlyClean(t *testing.T) {
	rev := reviewHDFSFile(t, "background.go")
	for _, f := range rev.Findings {
		// Any finding here is a hallucination-mode FP; it must at least
		// be rare and deterministic. HDFS's background file should not
		// produce more than one.
		t.Logf("background finding (expected to be rare): %+v", f)
	}
	if len(rev.Findings) > 1 {
		t.Errorf("too many FPs in background.go: %+v", rev.Findings)
	}
}

func TestUnparseableFile(t *testing.T) {
	c := NewClient(DefaultConfig())
	rev := c.Review("broken.go", []byte("not go at all {{{"))
	if rev.PerformsRetry {
		t.Error("unparseable files should answer No")
	}
}
