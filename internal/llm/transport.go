// transport.go is the fault-modeled transport layer between the client's
// prompt chain and the simulated model — the reproduction's stand-in for
// the HTTPS path to a real LLM endpoint.
//
// The paper's own thesis (§1, §3.1.1) is that retry is where systems go
// wrong, and LLM backends fail in exactly the transient/permanent mix —
// rate limits, timeouts, 5xx, malformed completions, hard outages — that
// resilience frameworks exist to absorb. The transport models that mix
// deterministically: every fault decision is a pure function of
// (seed, file path, attempt, fault kind), so a chaos run reproduces
// byte-for-byte at any worker count. One Call represents one delivery
// attempt of a whole per-file prompt chain (a retry re-sends the chain,
// which is why the §4.3 cost model still charges each file once).
package llm

import (
	"context"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"

	"wasabi/internal/errmodel"
	"wasabi/internal/obs"
)

// Exception classes served by the faulty transport. Transient classes
// descend from IOException (retry-worthy wire trouble); permanent classes
// descend from Exception directly.
func init() {
	errmodel.Declare("RateLimitedException", "IOException")        // HTTP 429
	errmodel.Declare("ServiceUnavailableException", "IOException") // HTTP 5xx
	errmodel.Declare("BackendOutageException", "ConnectException")
	errmodel.Declare("MalformedCompletionException", "Exception")
}

// Call is one delivery attempt of a file's prompt chain.
type Call struct {
	// Path is the file under review (the fault-decision key).
	Path string
	// Ordinal is the review's canonical arrival index in the run — the
	// budget's settle sequence — used by outage windows.
	Ordinal int
	// Attempt is the 0-based delivery attempt.
	Attempt int
	// Bytes is the prompt-context size.
	Bytes int
}

// Transport delivers prompt chains to the model. A nil error means the
// completion arrived intact; errors carry errmodel classes so the retry
// classifier can tell transient wire trouble from permanent failure.
type Transport interface {
	Do(ctx context.Context, call Call) error
}

// perfect is the fault-free transport: every completion arrives.
type perfect struct{}

func (perfect) Do(context.Context, Call) error { return nil }

// PerfectTransport returns a transport that never fails.
func PerfectTransport() Transport { return perfect{} }

// Fault kinds, used as the `kind` label of llm_transport_faults_total.
const (
	FaultTimeout     = "timeout"
	FaultRateLimit   = "rate-limit"
	FaultServerError = "server-error"
	FaultMalformed   = "malformed"
	FaultOutage      = "outage"
)

// FaultProfile configures the fault mix of a FaultyTransport. Denominator
// fields inject their fault on a deterministic 1-in-N basis (0 disables):
// the three transient kinds are drawn independently per delivery attempt,
// so a retry usually clears them; Malformed is drawn once per file — the
// completion is delivered but unparseable, and re-sending the same prompt
// reproduces it, so it is permanent.
type FaultProfile struct {
	// TimeoutDenom injects request timeouts (transient).
	TimeoutDenom int
	// RateLimitDenom injects HTTP 429 rate limiting (transient).
	RateLimitDenom int
	// ServerErrorDenom injects HTTP 5xx responses (transient).
	ServerErrorDenom int
	// MalformedDenom injects unparseable completions (permanent, per file).
	MalformedDenom int
	// HardOutage takes the backend down for the whole run: every delivery
	// attempt fails permanently.
	HardOutage bool
	// OutageAfterFiles, when > 0, takes the backend down from the Nth
	// review onward (reviews with canonical ordinal >= N fail hard).
	OutageAfterFiles int
}

// Zero reports whether the profile injects nothing — the machinery-on,
// faults-off configuration whose output must be byte-identical to a run
// with no transport at all.
func (p FaultProfile) Zero() bool {
	return p.TimeoutDenom == 0 && p.RateLimitDenom == 0 && p.ServerErrorDenom == 0 &&
		p.MalformedDenom == 0 && !p.HardOutage && p.OutageAfterFiles == 0
}

// String renders the profile in ParseFaultProfile's key=value format.
func (p FaultProfile) String() string {
	var parts []string
	add := func(k string, v int) {
		if v != 0 {
			parts = append(parts, k+"="+strconv.Itoa(v))
		}
	}
	add("timeout", p.TimeoutDenom)
	add("ratelimit", p.RateLimitDenom)
	add("servererror", p.ServerErrorDenom)
	add("malformed", p.MalformedDenom)
	if p.HardOutage {
		parts = append(parts, "outage")
	}
	add("outage-after", p.OutageAfterFiles)
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}

// Presets accepted by ParseFaultProfile, roughly calibrated by combined
// per-attempt transient fault probability.
var presets = map[string]FaultProfile{
	"none":   {},
	"light":  {TimeoutDenom: 60, RateLimitDenom: 60, ServerErrorDenom: 60}, // ~5% transient
	"heavy":  {TimeoutDenom: 15, RateLimitDenom: 15, ServerErrorDenom: 15}, // ~20% transient
	"outage": {HardOutage: true},
}

// ParseFaultProfile parses a fault-profile spec: a preset name ("none",
// "light", "heavy", "outage") or a comma-separated key=value list with
// keys timeout, ratelimit, servererror, malformed (1-in-N denominators),
// outage (bare flag) and outage-after (review ordinal). Examples:
//
//	light
//	timeout=60,ratelimit=60,servererror=60
//	heavy,malformed=200,outage-after=120
//
// Presets may be combined with overrides; later entries win.
func ParseFaultProfile(spec string) (FaultProfile, error) {
	var p FaultProfile
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if part == "outage" {
			p.HardOutage = true
			continue
		}
		if preset, ok := presets[part]; ok {
			preset.OutageAfterFiles = p.OutageAfterFiles // presets never clear an explicit window
			if p.HardOutage {
				preset.HardOutage = true
			}
			p = preset
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return FaultProfile{}, fmt.Errorf("llm: fault profile %q: entry %q is neither a preset nor key=value", spec, part)
		}
		n, err := strconv.Atoi(strings.TrimSpace(v))
		if err != nil || n < 0 {
			return FaultProfile{}, fmt.Errorf("llm: fault profile %q: %s wants a non-negative integer, got %q", spec, k, v)
		}
		switch strings.TrimSpace(k) {
		case "timeout":
			p.TimeoutDenom = n
		case "ratelimit":
			p.RateLimitDenom = n
		case "servererror":
			p.ServerErrorDenom = n
		case "malformed":
			p.MalformedDenom = n
		case "outage-after":
			p.OutageAfterFiles = n
		default:
			return FaultProfile{}, fmt.Errorf("llm: fault profile %q: unknown key %q", spec, k)
		}
	}
	return p, nil
}

// ProfileNames returns the preset names, sorted (for usage strings).
func ProfileNames() []string {
	out := make([]string, 0, len(presets))
	for name := range presets {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// IsTransient reports whether a transport error is worth retrying:
// timeouts, rate limits and server errors clear on re-send; outages and
// malformed completions do not. The cause chain is searched so
// transparent wrappers (e.g. a Retry-After hint from the HTTP adapter)
// don't hide the class.
func IsTransient(err error) bool {
	return errmodel.CauseIsClass(err, "SocketTimeoutException") ||
		errmodel.CauseIsClass(err, "RateLimitedException") ||
		errmodel.CauseIsClass(err, "ServiceUnavailableException")
}

// FaultyTransport decorates a transport with a seeded fault model.
type FaultyTransport struct {
	inner   Transport
	profile FaultProfile
	seed    uint64
	reg     *obs.Registry
}

// NewFaultyTransport wraps inner with the given profile. Fault decisions
// are keyed by seed, so the same (seed, profile, corpus) triple replays
// the same faults.
func NewFaultyTransport(inner Transport, profile FaultProfile, seed uint64) *FaultyTransport {
	if inner == nil {
		inner = PerfectTransport()
	}
	return &FaultyTransport{inner: inner, profile: profile, seed: seed}
}

// Instrument attaches a metrics registry (nil is fine) and returns the
// transport for chaining.
func (t *FaultyTransport) Instrument(reg *obs.Registry) *FaultyTransport {
	t.reg = reg
	return t
}

// Profile returns the transport's fault profile.
func (t *FaultyTransport) Profile() FaultProfile { return t.profile }

// Do injects the profile's faults; calls that draw no fault are delivered
// through the inner transport.
func (t *FaultyTransport) Do(ctx context.Context, call Call) error {
	if kind := t.faultAt(call.Path, call.Ordinal, call.Attempt); kind != "" {
		t.reg.Counter("llm_transport_faults_total", "kind", kind).Inc()
		return faultError(kind, call)
	}
	return t.inner.Do(ctx, call)
}

// faultError builds the typed error for a fault kind.
func faultError(kind string, call Call) error {
	switch kind {
	case FaultTimeout:
		return errmodel.Newf("SocketTimeoutException", "llm: %s attempt %d timed out", call.Path, call.Attempt)
	case FaultRateLimit:
		return errmodel.Newf("RateLimitedException", "llm: 429 on %s attempt %d", call.Path, call.Attempt)
	case FaultServerError:
		return errmodel.Newf("ServiceUnavailableException", "llm: 5xx on %s attempt %d", call.Path, call.Attempt)
	case FaultMalformed:
		return errmodel.Newf("MalformedCompletionException", "llm: unparseable completion for %s", call.Path)
	case FaultOutage:
		return errmodel.Newf("BackendOutageException", "llm: endpoint down (review %d)", call.Ordinal)
	}
	return errmodel.Newf("Exception", "llm: unknown fault kind %s", kind)
}

// faultAt decides which fault, if any, a delivery attempt draws. The
// decision is a pure function of (seed, path, ordinal, attempt).
func (t *FaultyTransport) faultAt(path string, ordinal, attempt int) string {
	p := t.profile
	if p.HardOutage || (p.OutageAfterFiles > 0 && ordinal >= p.OutageAfterFiles) {
		return FaultOutage
	}
	salt := strconv.Itoa(attempt)
	if t.bucket(path, "t:"+salt, p.TimeoutDenom) {
		return FaultTimeout
	}
	if t.bucket(path, "r:"+salt, p.RateLimitDenom) {
		return FaultRateLimit
	}
	if t.bucket(path, "s:"+salt, p.ServerErrorDenom) {
		return FaultServerError
	}
	// Delivery succeeds; a malformed completion is drawn per file, since
	// re-sending the same prompt reproduces the same garbage.
	if t.bucket(path, "m", p.MalformedDenom) {
		return FaultMalformed
	}
	return ""
}

// plan is the dry-run of a review's delivery attempts, computed during
// budget settlement so grant decisions and outcomes are fixed in
// canonical order before any concurrent execution.
type transportPlan struct {
	// retriesWanted is how many retry tokens the review needs: the index
	// of the first fault-free delivery, capped at maxAttempts-1.
	retriesWanted int
	// delivered reports whether a completion arrives within maxAttempts.
	delivered bool
	// permanent is the permanent fault kind drawn ("" if none): "outage"
	// fails before delivery, "malformed" fails at delivery.
	permanent string
}

// planFor computes the transport plan for one review.
func (t *FaultyTransport) planFor(path string, ordinal, maxAttempts int) transportPlan {
	p := t.profile
	if p.HardOutage || (p.OutageAfterFiles > 0 && ordinal >= p.OutageAfterFiles) {
		return transportPlan{permanent: FaultOutage}
	}
	for a := 0; a < maxAttempts; a++ {
		kind := t.faultAt(path, ordinal, a)
		switch kind {
		case "":
			return transportPlan{retriesWanted: a, delivered: true}
		case FaultMalformed:
			return transportPlan{retriesWanted: a, delivered: true, permanent: FaultMalformed}
		}
		// Transient: burn a retry and try the next attempt.
	}
	return transportPlan{retriesWanted: maxAttempts - 1}
}

// bucket is the transport's deterministic 1-in-denom draw.
func (t *FaultyTransport) bucket(path, salt string, denom int) bool {
	if denom <= 0 {
		return false
	}
	h := fnv.New64a()
	h.Write([]byte("transport"))
	h.Write([]byte{0})
	h.Write([]byte(path))
	h.Write([]byte{0})
	h.Write([]byte(salt))
	var seed [8]byte
	for i := 0; i < 8; i++ {
		seed[i] = byte(t.seed >> (8 * i))
	}
	h.Write(seed[:])
	return h.Sum64()%uint64(denom) == 0
}
