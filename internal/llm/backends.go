// backends.go is the multi-backend routing layer: where transport.go
// models one unreliable endpoint, this file makes the client *highly
// available* across an ordered set of named backends — the availability
// techniques the paper's §1 resilience-framework discussion points at,
// applied to the pipeline's own hottest dependency. Three mechanisms
// compose:
//
//   - health-gated failover: each backend sits behind its own circuit
//     breaker (internal/resilience.Breaker); a backend whose breaker is
//     open is skipped, and after the cooldown exactly one half-open
//     probe is admitted to test recovery;
//   - hedged requests: when the preferred backend has not answered
//     within Config.HedgeAfter, a second attempt launches on the next
//     healthy backend — paying one token from the shared retry Budget,
//     so hedges and retries draw down the same bounded pool;
//   - singleflight: identical in-flight reviews (same config
//     fingerprint, path and content hash — the review-cache content
//     address) coalesce onto one upstream call whose answer is shared
//     by every waiter (Flight).
//
// The default single-simulator configuration never constructs any of
// this: with Config.Backends empty, reviews take exactly the PR 3 code
// path and chaos runs stay byte-identical. Multi-backend runs trade the
// canonical-order admission determinism of resilient.go for
// availability — *except* in the case that matters: review answers are
// computed locally (a pure function of config, path and contents), the
// transport only delivers or fails, so when the topology absorbs every
// fault (say, a hard primary outage with a healthy secondary) the
// output is byte-identical to a run against a healthy backend.
package llm

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"log/slog"
	"regexp"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"wasabi/internal/errmodel"
	"wasabi/internal/obs"
	"wasabi/internal/resilience"
	"wasabi/internal/source"
	"wasabi/internal/trace"
)

// Structured log events emitted by the routing layer (catalog in
// docs/OBSERVABILITY.md). They fire on *decisions* — failing over,
// launching or suppressing a hedge, a breaker changing state — not on
// every call.
const (
	evBackendFailover = "llm.backend_failover"
	evBackendHedge    = "llm.backend_hedge"
	evBackendBreaker  = "llm.backend_breaker"
)

// ErrAllBreakersOpen is returned by MultiTransport when every backend's
// circuit breaker refuses the call — there is nowhere left to route.
// Reviews hitting it degrade with reason DegradedBreakerOpen.
var ErrAllBreakersOpen = errors.New("llm: every backend circuit breaker is open")

// BackendSpec describes one named backend in a multi-backend topology.
// Order matters: the first spec is the preferred backend, later ones
// are failover (and hedge) targets in sequence.
type BackendSpec struct {
	// Name identifies the backend in metrics labels, trace spans and
	// log events. Names must be unique within a topology and match
	// [A-Za-z0-9_-]+ (they become metric label values).
	Name string
	// Kind selects the adapter: "sim" (the in-process simulator,
	// optionally behind a FaultProfile) or "http" (the OpenAI-compatible
	// adapter in httpbackend.go).
	Kind string
	// URL is the http kind's base URL (e.g. "http://127.0.0.1:8081").
	URL string
	// Fault optionally wraps a sim backend in a FaultyTransport so a
	// topology can mix healthy and failing simulators (chaos drills).
	Fault *FaultProfile
	// Transport, when non-nil, overrides Kind entirely — a test seam
	// for injecting slow or counting transports.
	Transport Transport
}

// String renders the spec in ParseBackends' grammar (Transport
// overrides render by kind only; they are not round-trippable).
func (b BackendSpec) String() string {
	switch {
	case b.Kind == "http":
		return b.Name + "=http:" + b.URL
	case b.Fault != nil:
		return b.Name + "=sim:" + b.Fault.String()
	default:
		return b.Name + "=sim"
	}
}

// backendName validates metric-label-safe backend names.
var backendName = regexp.MustCompile(`^[A-Za-z0-9_-]+$`)

// ParseBackends parses a backend-topology spec (the -llm-backends
// flag): entries separated by ";", each "name=sim", "name=sim:PROFILE"
// (PROFILE in ParseFaultProfile's grammar, commas and all) or
// "name=http:URL". Examples:
//
//	primary=sim
//	primary=sim:outage;secondary=sim
//	primary=http:http://127.0.0.1:8081;fallback=sim
//
// The entry separator is ";" because fault profiles already use ","
// internally.
func ParseBackends(spec string) ([]BackendSpec, error) {
	var out []BackendSpec
	seen := map[string]bool{}
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, rest, ok := strings.Cut(entry, "=")
		name = strings.TrimSpace(name)
		if !ok || name == "" {
			return nil, fmt.Errorf("llm: backends %q: entry %q wants name=kind[:detail]", spec, entry)
		}
		if !backendName.MatchString(name) {
			return nil, fmt.Errorf("llm: backends %q: name %q must match %s", spec, name, backendName)
		}
		if seen[name] {
			return nil, fmt.Errorf("llm: backends %q: duplicate backend name %q", spec, name)
		}
		seen[name] = true
		kind, detail, _ := strings.Cut(strings.TrimSpace(rest), ":")
		b := BackendSpec{Name: name, Kind: strings.TrimSpace(kind)}
		switch b.Kind {
		case "sim":
			if detail != "" {
				p, err := ParseFaultProfile(detail)
				if err != nil {
					return nil, fmt.Errorf("llm: backends %q: backend %q: %w", spec, name, err)
				}
				b.Fault = &p
			}
		case "http":
			if detail == "" {
				return nil, fmt.Errorf("llm: backends %q: backend %q: http kind wants a URL", spec, name)
			}
			b.URL = detail
		default:
			return nil, fmt.Errorf("llm: backends %q: backend %q: unknown kind %q (want sim or http)", spec, name, b.Kind)
		}
		out = append(out, b)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("llm: backends %q: no backends", spec)
	}
	return out, nil
}

// backendsString renders a topology in ParseBackends' grammar — the
// form Config.Fingerprint folds into review-cache keys.
func backendsString(specs []BackendSpec) string {
	parts := make([]string, len(specs))
	for i, b := range specs {
		parts[i] = b.String()
	}
	return strings.Join(parts, ";")
}

// backend is one routed backend: its adapter and its health state.
type backend struct {
	name    string
	t       Transport
	breaker *resilience.Breaker
}

// MultiTransport routes calls across an ordered backend set with
// per-backend circuit breakers, sequential failover, and optional
// hedging. It is goroutine-safe (unlike a bare Breaker: all breaker
// access is serialized under mu) and designed to be shared — cmd/wasabi
// builds one per run, wasabid builds one per process so backend health
// survives across jobs.
type MultiTransport struct {
	hedgeAfter time.Duration
	// budget is the shared retry/hedge token pool: the client's retry
	// loop and the hedge launcher draw from the same bucket, which is
	// what bounds total extra spend ("retries are a global resource").
	budget *resilience.Budget
	log    *slog.Logger

	mu       sync.Mutex
	backends []*backend
	reg      *obs.Registry
	start    time.Time
	// now is the breaker clock (virtual offsets since construction);
	// wall time by default, injectable for tests (SetClock).
	now func() time.Duration
	// ord hands out per-review arrival ordinals (outage-after windows
	// on sim backends key on them).
	ord atomic.Int64
}

// NewMultiTransport builds the router for cfg.Backends, with breakers
// and the shared budget sized by cfg.Resilience. The error cases are
// spec-validation failures; specs produced by ParseBackends never fail.
func NewMultiTransport(cfg Config) (*MultiTransport, error) {
	if len(cfg.Backends) == 0 {
		return nil, errors.New("llm: NewMultiTransport wants at least one backend")
	}
	res := cfg.Resilience.withDefaults()
	mt := &MultiTransport{
		hedgeAfter: cfg.HedgeAfter,
		budget:     resilience.NewBudget(res.BudgetCapacity, res.BudgetRefillEvery),
		log:        cfg.Log,
		start:      time.Now(),
	}
	if mt.log == nil {
		mt.log = slog.New(discardHandler{})
	}
	mt.now = func() time.Duration { return time.Since(mt.start) }
	for _, spec := range cfg.Backends {
		t := spec.Transport
		if t == nil {
			switch spec.Kind {
			case "sim":
				t = PerfectTransport()
				if spec.Fault != nil {
					t = NewFaultyTransport(t, *spec.Fault, cfg.Seed)
				}
			case "http":
				t = NewHTTPBackend(spec.URL)
			default:
				return nil, fmt.Errorf("llm: backend %q: unknown kind %q", spec.Name, spec.Kind)
			}
		}
		b := &backend{
			name:    spec.Name,
			t:       t,
			breaker: resilience.NewBreaker(res.BreakerThreshold, res.BreakerCooldown),
		}
		b.breaker.OnTransition(func(to resilience.BreakerState) { mt.onBreakerLocked(b, to) })
		mt.backends = append(mt.backends, b)
	}
	return mt, nil
}

// discardHandler drops every log record (slog.DiscardHandler arrives in
// go 1.24; this repo pins 1.22).
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }

// Instrument attaches a metrics registry once (later calls are no-ops,
// so per-job clients sharing a daemon-lifetime transport cannot rebind
// it mid-flight) and returns the transport for chaining.
func (mt *MultiTransport) Instrument(reg *obs.Registry) *MultiTransport {
	mt.mu.Lock()
	defer mt.mu.Unlock()
	if mt.reg == nil && reg != nil {
		mt.reg = reg
		for _, b := range mt.backends {
			reg.Gauge("llm_backend_breaker_state", "backend", b.name).Set(breakerStateValue(resilience.Closed))
		}
	}
	return mt
}

// SetClock overrides the breaker clock — a test seam for driving
// cooldowns without waiting wall time.
func (mt *MultiTransport) SetClock(now func() time.Duration) {
	mt.mu.Lock()
	defer mt.mu.Unlock()
	mt.now = now
}

// Budget exposes the shared retry/hedge token pool (for the client's
// retry loop and for tests asserting the hedge bound).
func (mt *MultiTransport) Budget() *resilience.Budget { return mt.budget }

// Backends returns the backend names in routing order.
func (mt *MultiTransport) Backends() []string {
	mt.mu.Lock()
	defer mt.mu.Unlock()
	names := make([]string, len(mt.backends))
	for i, b := range mt.backends {
		names[i] = b.name
	}
	return names
}

// breakerStateValue encodes a breaker state for the
// llm_backend_breaker_state gauge: 0 closed, 1 open, 2 half-open.
func breakerStateValue(s resilience.BreakerState) float64 {
	switch s {
	case resilience.Open:
		return 1
	case resilience.HalfOpen:
		return 2
	}
	return 0
}

// onBreakerLocked is the per-backend breaker transition hook. Breakers
// are only ever touched under mt.mu, so this runs locked — it must read
// mt.reg directly, not through a locking accessor.
func (mt *MultiTransport) onBreakerLocked(b *backend, to resilience.BreakerState) {
	mt.reg.Counter("llm_backend_breaker_transitions_total", "backend", b.name, "to", to.String()).Inc()
	mt.reg.Gauge("llm_backend_breaker_state", "backend", b.name).Set(breakerStateValue(to))
	mt.log.Info(evBackendBreaker, "backend", b.name, "state", to.String())
}

// registry returns the attached registry (nil-safe for metrics calls).
func (mt *MultiTransport) registry() *obs.Registry {
	mt.mu.Lock()
	defer mt.mu.Unlock()
	return mt.reg
}

// nextOrdinal hands out the next arrival ordinal.
func (mt *MultiTransport) nextOrdinal() int { return int(mt.ord.Add(1)) - 1 }

// takeToken claims one token from the shared budget, reporting whether
// it was granted.
func (mt *MultiTransport) takeToken() bool {
	granted := false
	mt.budget.Claim(0, 0, func(avail, _ int) int {
		if avail > 0 {
			granted = true
			return 1
		}
		return 0
	})
	return granted
}

// tick settles one zero-token claim, advancing the budget's
// refill-every-N-settlements clock — the multi-backend analogue of the
// per-review settlement chaos mode performs at admission.
func (mt *MultiTransport) tick() {
	mt.budget.Claim(0, 0, func(int, int) int { return 0 })
}

// nextAdmitted finds the first backend at position >= from whose
// breaker admits a call right now, returning it and the position after
// it. Admission happens lazily — at most one backend is consulted per
// launch — because a half-open Allow *claims* the single probe slot;
// admitting backends speculatively would leak their probe latches.
func (mt *MultiTransport) nextAdmitted(from int) (*backend, int) {
	mt.mu.Lock()
	defer mt.mu.Unlock()
	now := mt.now()
	for i := from; i < len(mt.backends); i++ {
		if mt.backends[i].breaker.Allow(now) {
			return mt.backends[i], i + 1
		}
	}
	return nil, len(mt.backends)
}

// releaseAdmission hands back an admission nextAdmitted granted for a
// call that will never launch. Admitting a half-open backend latches
// its single probe slot, and only a settled outcome (or this release)
// clears the latch — a suppressed hedge that kept the slot would leave
// the backend unroutable forever.
func (mt *MultiTransport) releaseAdmission(b *backend) {
	mt.mu.Lock()
	defer mt.mu.Unlock()
	b.breaker.CancelProbe()
}

// recordOutcome settles one finished call against its backend's
// breaker. A context-cancellation is no verdict on the backend (we
// abandoned the call, usually because a hedged rival answered first):
// it only releases a claimed half-open probe slot.
func (mt *MultiTransport) recordOutcome(b *backend, err error) {
	mt.mu.Lock()
	defer mt.mu.Unlock()
	switch {
	case err == nil:
		b.breaker.RecordSuccess()
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		b.breaker.CancelProbe()
	default:
		b.breaker.RecordFailure(mt.now())
	}
}

// result is one backend call's outcome inside Route.
type routeResult struct {
	b     *backend
	err   error
	hedge bool
}

// Do implements Transport by discarding Route's winning-backend name.
func (mt *MultiTransport) Do(ctx context.Context, call Call) error {
	_, err := mt.Route(ctx, call)
	return err
}

// Route delivers one call across the backend set and returns the name
// of the backend that answered. The preferred (first healthy) backend
// is tried first; if HedgeAfter elapses without an answer, a hedge
// launches on the next healthy backend — if the shared budget grants a
// token — and the first success wins, cancelling the loser. When every
// launched attempt fails, routing falls over to the next healthy
// backend in order until the set is exhausted. Every outcome settles
// the owning backend's breaker; an all-breakers-open set returns
// ErrAllBreakersOpen without touching any backend.
func (mt *MultiTransport) Route(ctx context.Context, call Call) (string, error) {
	reg := mt.registry()
	first, next := mt.nextAdmitted(0)
	if first == nil {
		reg.Counter("llm_backend_all_open_total").Inc()
		return "", ErrAllBreakersOpen
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make(chan routeResult, len(mt.backends))
	launch := func(b *backend, hedge bool) {
		reg.Counter("llm_backend_calls_total", "backend", b.name).Inc()
		go func() {
			err := b.t.Do(cctx, call)
			results <- routeResult{b: b, err: err, hedge: hedge}
		}()
	}
	launch(first, false)
	inflight := 1
	var hedgeTimer <-chan time.Time
	if mt.hedgeAfter > 0 && next < len(mt.backends) {
		hedgeTimer = time.After(mt.hedgeAfter)
	}
	hedged := false
	var lastErr error
	for {
		select {
		case <-hedgeTimer:
			hedgeTimer = nil
			hb, hnext := mt.nextAdmitted(next)
			if hb == nil {
				reg.Counter("llm_backend_hedges_total", "outcome", "suppressed").Inc()
				continue
			}
			if !mt.takeToken() {
				// The hedge competes with retries for the same tokens;
				// an empty bucket means the fleet is already spending
				// enough on second chances. nextAdmitted may have
				// latched hb's half-open probe slot — no call will
				// launch to settle it, so hand it back.
				mt.releaseAdmission(hb)
				reg.Counter("llm_backend_hedges_total", "outcome", "suppressed").Inc()
				reg.Counter("llm_retry_budget_exhausted_total").Inc()
				continue
			}
			reg.Counter("llm_backend_hedges_total", "outcome", "launched").Inc()
			mt.log.Info(evBackendHedge, "path", call.Path, "backend", hb.name, "after_ms", durFloatMS(mt.hedgeAfter))
			launch(hb, true)
			hedged = true
			inflight++
			next = hnext
		case r := <-results:
			inflight--
			mt.recordOutcome(r.b, r.err)
			if r.err == nil {
				if r.hedge {
					reg.Counter("llm_backend_hedges_total", "outcome", "won").Inc()
				} else if hedged && inflight > 0 {
					reg.Counter("llm_backend_hedges_total", "outcome", "cancelled").Inc()
				}
				cancel()
				if inflight > 0 {
					go mt.drainResults(results, inflight)
				}
				return r.b.name, nil
			}
			reg.Counter("llm_backend_failures_total", "backend", r.b.name).Inc()
			if !isCancellation(r.err) {
				lastErr = r.err
			}
			if inflight > 0 {
				continue // a rival attempt is still running
			}
			fb, fnext := mt.nextAdmitted(next)
			if fb == nil {
				if lastErr == nil {
					lastErr = r.err
				}
				return "", lastErr
			}
			reg.Counter("llm_backend_failovers_total", "backend", fb.name).Inc()
			mt.log.Info(evBackendFailover, "path", call.Path, "from", r.b.name, "to", fb.name, "error", r.err.Error())
			launch(fb, false)
			next = fnext
			inflight++
		}
	}
}

// drainResults settles the breakers of attempts still in flight after a
// winner returned. It runs off the caller's critical path; the
// cancelled context makes the stragglers return promptly.
func (mt *MultiTransport) drainResults(results <-chan routeResult, n int) {
	for i := 0; i < n; i++ {
		r := <-results
		mt.recordOutcome(r.b, r.err)
	}
}

// isCancellation reports whether an error is our own context
// cancellation rather than a backend verdict.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// durFloatMS renders a duration as float milliseconds for log fields.
func durFloatMS(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// Flight coalesces identical in-flight reviews: callers reviewing the
// same content address (config fingerprint, path, content hash — the
// review-cache key ingredients) while an equivalent review is already
// running wait for that review's answer instead of spending another
// upstream call. Share one Flight across clients (wasabid holds one per
// process) to coalesce across concurrent jobs. Only *in-flight*
// duplication coalesces — once the leader finishes, the next caller
// starts fresh (cross-run memoization is the cache's job, not ours).
type Flight struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	rev  FileReview
}

// NewFlight returns an empty singleflight group.
func NewFlight() *Flight {
	return &Flight{calls: make(map[string]*flightCall)}
}

// Do runs fn for the first caller of key and hands its FileReview to
// every caller that arrives while fn is in flight. The bool reports
// whether this caller shared a leader's answer (true) or ran fn itself
// (false). Shared copies alias nothing mutable with the leader's.
func (f *Flight) Do(key string, fn func() FileReview) (FileReview, bool) {
	f.mu.Lock()
	if fc, ok := f.calls[key]; ok {
		f.mu.Unlock()
		<-fc.done
		rev := fc.rev
		rev.Findings = append([]Finding(nil), fc.rev.Findings...)
		return rev, true
	}
	fc := &flightCall{done: make(chan struct{})}
	f.calls[key] = fc
	f.mu.Unlock()
	defer func() {
		// Unregister before release: late arrivals must start a fresh
		// flight, and a panic in fn must not strand waiters.
		f.mu.Lock()
		delete(f.calls, key)
		f.mu.Unlock()
		close(fc.done)
	}()
	fc.rev = fn()
	return fc.rev, false
}

// multiState is the client's multi-backend routing state, present only
// when Config.Backends (or Config.Multi) is set — the multi-mode
// counterpart of chaosState.
type multiState struct {
	res    ResilienceConfig
	mt     *MultiTransport
	flight *Flight
	// fp caches the client's fingerprint for flight keys.
	fp string
}

// newMultiState wires the client to a transport: the one provided via
// Config.Multi (shared, e.g. daemon-lifetime) or a fresh one built from
// Config.Backends (per-run, the CLI shape).
func (c *Client) newMultiState() *multiState {
	mt := c.cfg.Multi
	if mt == nil {
		var err error
		if mt, err = NewMultiTransport(c.cfg); err != nil {
			// Backends reaching NewClient unvalidated is programmer
			// error; flag paths go through ParseBackends first.
			panic(err)
		}
	}
	return &multiState{
		res:    c.cfg.Resilience.withDefaults(),
		mt:     mt,
		flight: c.cfg.Flight,
		fp:     c.cfg.Fingerprint(),
	}
}

// reviewMulti is the multi-backend review path: singleflight coalescing
// around reviewMultiDirect.
func (c *Client) reviewMulti(path string, src []byte, pre *source.File) FileReview {
	ms := c.multi
	if ms.flight == nil {
		return c.reviewMultiDirect(path, src, pre)
	}
	sum := ""
	if pre != nil {
		sum = pre.SHA256
	} else {
		h := sha256.Sum256(src)
		sum = hex.EncodeToString(h[:])
	}
	key := ms.fp + "\x00" + path + "\x00" + sum
	rev, shared := ms.flight.Do(key, func() FileReview {
		return c.reviewMultiDirect(path, src, pre)
	})
	if shared {
		rev.Shared = true
		c.reg.Counter("llm_backend_singleflight_shared_total").Inc()
	}
	return rev
}

// reviewMultiDirect runs one review through the routed transport under
// the retry policy: transient route failures retry with
// decorrelated-jitter backoff, each retry paying one token from the
// transport's shared budget (the same pool hedges draw from). Failure
// degrades the review — the same graceful-degradation contract as
// chaos mode — with the reason mapped from the terminal error.
func (c *Client) reviewMultiDirect(path string, src []byte, pre *source.File) FileReview {
	ms := c.multi
	ordinal := ms.mt.nextOrdinal()
	budgetDenied := false
	winner := ""
	attempt := 0
	policy := resilience.NewPolicy(ms.res.MaxAttempts,
		resilience.WithDecorrelatedJitter(ms.res.BaseDelay, ms.res.MaxDelay),
		resilience.WithRetryOn(func(err error) bool {
			if !IsTransient(err) {
				return false
			}
			if !ms.mt.takeToken() {
				budgetDenied = true
				c.reg.Counter("llm_retry_budget_exhausted_total").Inc()
				return false
			}
			return true
		}))
	// Backoff sleeps run on a per-review virtual clock; the route's own
	// latency (hedge timers, real HTTP) is wall time.
	reviewCtx := trace.With(context.Background(), trace.NewRun("llm-review"))
	err := policy.DoSeeded(reviewCtx, pathSeed(path, c.cfg.Seed), func(ctx context.Context) error {
		call := Call{Path: path, Ordinal: ordinal, Attempt: attempt, Bytes: len(src)}
		attempt++
		name, rerr := ms.mt.Route(ctx, call)
		if rerr == nil {
			winner = name
		}
		return rerr
	})
	ms.mt.tick()
	retries := attempt - 1
	if retries > 0 {
		c.reg.Counter("llm_transport_retries_total").Add(int64(retries))
	}
	if err != nil {
		rev := c.degraded(path, len(src), multiDegradeReason(err, budgetDenied))
		rev.Retries = retries
		return rev
	}
	rev := c.review(path, src, pre)
	rev.Retries = retries
	rev.Backend = winner
	return rev
}

// Multi exposes the routed transport (nil outside multi-backend mode)
// — for tests and reporting, the counterpart of Transport().
func (c *Client) Multi() *MultiTransport {
	if c.multi == nil {
		return nil
	}
	return c.multi.mt
}

// multiDegradeReason maps a terminal routing error onto the Degraded*
// vocabulary resilient.go established.
func multiDegradeReason(err error, budgetDenied bool) string {
	switch {
	case errors.Is(err, ErrAllBreakersOpen):
		return DegradedBreakerOpen
	// CauseIsClass, not IsClass: the policy wraps the terminal error in
	// an exhausted sentinel, and hinted 429s arrive wrapped too.
	case errmodel.CauseIsClass(err, "MalformedCompletionException"):
		return DegradedMalformed
	case errmodel.CauseIsClass(err, "BackendOutageException"):
		return DegradedOutage
	// A cancellation terminal error means every launched attempt was
	// abandoned (the caller's context died mid-route); calling that
	// "retries-exhausted" would blame a backend nobody waited on.
	case isCancellation(err):
		return DegradedCancelled
	case budgetDenied:
		return DegradedBudget
	default:
		return DegradedRetries
	}
}
