package llm

import (
	"go/ast"
	"strings"
)

// evidence is what the simulated model "notices" about one function. The
// paper's observation is that comments, names, and literals are better
// retry indicators than structure alone (§2.1, §3.1.1); this struct scores
// exactly those signals.
type evidence struct {
	commentRetry   bool // comments mention retry-ish vocabulary
	identRetry     bool // identifiers carry strong retry substrings
	identRetryWeak bool // identifiers carry weak evidence (attempt/tries)
	loopErrOnErr   bool // a loop re-checks an error and keeps going
	statusLoop     bool // a loop switches on a status and pauses (error-code retry)
	requeue        bool // a task is re-submitted to a queue on error
	stateMach      bool // procedure/state-machine shape
	sleeps         bool // Q2: a sleep happens before re-execution
	capped         bool // Q3: attempts are bounded
	pollish        bool // Q4: poll / spin-lock / status-wait shape
}

func (e evidence) score() int {
	s := 0
	if e.commentRetry {
		s += 2
	}
	if e.identRetry {
		s += 2
	}
	if e.identRetryWeak {
		s++
	}
	if e.loopErrOnErr {
		s++
	}
	if e.statusLoop {
		s++
	}
	if e.requeue {
		s++
	}
	return s
}

// hasReexecutionShape reports whether the function contains any structural
// re-execution form — the Q1 clarification that definitions-only files are
// not retry.
func (e evidence) hasReexecutionShape() bool {
	return e.loopErrOnErr || e.statusLoop || e.requeue || e.stateMach
}

func (e evidence) mechanism() string {
	switch {
	case e.stateMach:
		return "statemachine"
	case e.requeue:
		return "queue"
	default:
		return "loop"
	}
}

// retryCommentWords is the vocabulary the model associates with retry in
// prose.
var retryCommentWords = []string{
	"retry", "retri", "re-try", "reattempt", "re-attempt",
	"resubmit", "re-submit", "resubmitting", "re-enqueue", "requeue",
	"re-queue", "re-dispatch", "re-request", "re-run", "re-sent",
	"resend", "re-send", "re-execut", "re-evaluat",
	"backoff", "back off",
}

// retryIdentWords is the strong identifier vocabulary.
var retryIdentWords = []string{
	"retry", "retrie", "backoff", "requeue", "resubmit",
}

// weakIdentWords carry weaker evidence: "attempt" and "tries" also name
// ordinary counters.
var weakIdentWords = []string{
	"attempt", "tries",
}

// pollWords marks poll/spin shapes for Q4.
var pollWords = []string{
	"poll", "waitfor", "spin", "compareandswap", "compareandset", "probe",
}

func containsAny(s string, words []string) bool {
	l := strings.ToLower(s)
	for _, w := range words {
		if strings.Contains(l, w) {
			return true
		}
	}
	return false
}

// gatherEvidence inspects one function declaration plus the file's
// comments, emulating a careful single-file read.
func gatherEvidence(fd *ast.FuncDecl, fileComments []*ast.CommentGroup, localSleepFuncs map[string]bool) evidence {
	var ev evidence

	// Comments: the doc comment plus every comment group positioned
	// inside the function body.
	var comments []string
	if fd.Doc != nil {
		comments = append(comments, fd.Doc.Text())
	}
	for _, cg := range fileComments {
		if cg.Pos() >= fd.Pos() && cg.End() <= fd.End() {
			comments = append(comments, cg.Text())
		}
	}
	for _, c := range comments {
		if containsAny(c, retryCommentWords) {
			ev.commentRetry = true
		}
		if containsAny(c, pollWords) {
			ev.pollish = true
		}
	}

	if containsAny(fd.Name.Name, pollWords) {
		ev.pollish = true
	}
	if fd.Name.Name == "Step" {
		ev.stateMach = true
	}

	var errIdentSeen bool
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.Ident:
			if containsAny(v.Name, retryIdentWords) {
				ev.identRetry = true
			}
			if containsAny(v.Name, weakIdentWords) {
				ev.identRetryWeak = true
			}
			if containsAny(v.Name, pollWords) {
				ev.pollish = true
			}
		case *ast.BasicLit:
			if v.Kind.String() == "STRING" && containsAny(v.Value, retryIdentWords) {
				ev.identRetry = true
			}
		case *ast.ForStmt:
			if loopHandlesError(v.Body) {
				ev.loopErrOnErr = true
			}
			if loopSwitchesStatusAndPauses(v.Body) {
				ev.statusLoop = true
			}
			if boundedLoopCond(v.Cond) {
				ev.capped = true
			}
		case *ast.RangeStmt:
			if loopHandlesError(v.Body) {
				ev.loopErrOnErr = true
			}
			// Ranging over a fixed collection is inherently bounded.
			ev.capped = ev.capped || loopHandlesError(v.Body)
		case *ast.IfStmt:
			if attemptComparison(v.Cond) {
				ev.capped = true
			}
		case *ast.SwitchStmt:
			if tag, ok := v.Tag.(*ast.Ident); ok && strings.Contains(strings.ToLower(tag.Name), "state") {
				ev.stateMach = true
			}
			if sel, ok := v.Tag.(*ast.SelectorExpr); ok && strings.Contains(strings.ToLower(sel.Sel.Name), "state") {
				ev.stateMach = true
			}
		case *ast.CallExpr:
			name := calleeName(v)
			low := strings.ToLower(name)
			// Only sleeps visible in THIS file count: a direct Sleep call
			// or a helper defined in the same file. Helpers in other files
			// are invisible to a single-file reader — the paper's
			// missing-delay FP mode (§4.3).
			if name == "Sleep" || strings.Contains(low, "sleep") || localSleepFuncs[name] {
				ev.sleeps = true
			}
			if strings.Contains(low, "requeue") || strings.Contains(low, "resubmit") ||
				((name == "Put" || name == "Enqueue" || name == "Submit") && receiverIsQueue(v)) {
				ev.requeue = ev.requeue || errIdentSeen
			}
			if strings.Contains(low, "compareandswap") || strings.Contains(low, "compareandset") {
				ev.pollish = true
			}
			if name == "NewPolicy" || name == "Do" && usesResilience(v) {
				ev.capped = true
				ev.sleeps = true
			}
		case *ast.BinaryExpr:
			if isErrNilCheck(v) {
				errIdentSeen = true
			}
		}
		return true
	})
	return ev
}

// loopSwitchesStatusAndPauses recognizes the error-code retry shape: a
// loop whose body switches on some status value and sleeps in at least
// one branch before the next iteration.
func loopSwitchesStatusAndPauses(body *ast.BlockStmt) bool {
	hasSwitch, hasSleep := false, false
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.SwitchStmt:
			hasSwitch = true
		case *ast.CallExpr:
			if strings.Contains(strings.ToLower(calleeName(v)), "sleep") {
				hasSleep = true
			}
		}
		return !(hasSwitch && hasSleep)
	})
	return hasSwitch && hasSleep
}

// loopHandlesError reports whether a loop body contains an error-nil check
// — the model's rough notion of "checks for exceptions or errors before
// retry" from prompt Q1.
func loopHandlesError(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if ifs, ok := n.(*ast.IfStmt); ok {
			if bin, ok := ifs.Cond.(*ast.BinaryExpr); ok && isErrNilCheck(bin) {
				found = true
			}
		}
		return !found
	})
	return found
}

func isErrNilCheck(bin *ast.BinaryExpr) bool {
	isNil := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && id.Name == "nil"
	}
	isErrName := func(e ast.Expr) bool {
		switch v := e.(type) {
		case *ast.Ident:
			return strings.HasSuffix(strings.ToLower(v.Name), "err") || v.Name == "e"
		case *ast.SelectorExpr:
			return strings.HasSuffix(strings.ToLower(v.Sel.Name), "err")
		}
		return false
	}
	if bin.Op.String() != "!=" && bin.Op.String() != "==" {
		return false
	}
	return (isNil(bin.X) && isErrName(bin.Y)) || (isNil(bin.Y) && isErrName(bin.X))
}

// boundedLoopCond treats "i < max", "i <= max", and "i != max" loop
// conditions as caps.
func boundedLoopCond(cond ast.Expr) bool {
	bin, ok := cond.(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch bin.Op.String() {
	case "<", "<=", "!=", ">", ">=":
		return true
	}
	return false
}

// attemptComparison recognizes cap checks like "attempts >= maxAttempts".
func attemptComparison(cond ast.Expr) bool {
	bin, ok := cond.(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch bin.Op.String() {
	case "<", "<=", ">", ">=", "==", "!=":
	default:
		return false
	}
	mentionsAttempt := func(e ast.Expr) bool {
		switch v := e.(type) {
		case *ast.Ident:
			return containsAny(v.Name, []string{"attempt", "tries", "retry", "retrie", "count"})
		case *ast.SelectorExpr:
			return containsAny(v.Sel.Name, []string{"attempt", "tries", "retry", "retrie", "count"})
		}
		return false
	}
	return mentionsAttempt(bin.X) || mentionsAttempt(bin.Y)
}

// receiverIsQueue reports whether a method call's receiver expression
// looks like a queue ("s.queue.Put(...)").
func receiverIsQueue(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch x := sel.X.(type) {
	case *ast.Ident:
		return strings.Contains(strings.ToLower(x.Name), "queue")
	case *ast.SelectorExpr:
		return strings.Contains(strings.ToLower(x.Sel.Name), "queue")
	}
	return false
}

// calleeName extracts the called function or method name.
func calleeName(call *ast.CallExpr) string {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}

// usesResilience reports whether a .Do call is on a resilience policy
// (receiver mentions "policy").
func usesResilience(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch x := sel.X.(type) {
	case *ast.Ident:
		return strings.Contains(strings.ToLower(x.Name), "policy")
	case *ast.SelectorExpr:
		return strings.Contains(strings.ToLower(x.Sel.Name), "policy")
	}
	return false
}

// localSleepFunctions returns the names of file-local functions whose own
// bodies call a sleep — visible to a single-file reader. Helpers defined
// in OTHER files are invisible, reproducing the paper's single-file
// false-positive mode for missing-delay (§4.3).
func localSleepFunctions(f *ast.File) map[string]bool {
	out := make(map[string]bool)
	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		found := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				name := calleeName(call)
				if name == "Sleep" || strings.Contains(strings.ToLower(name), "sleep") {
					found = true
				}
			}
			return !found
		})
		if found {
			out[fd.Name.Name] = true
		}
	}
	return out
}
