// resilient.go is the client's resilience stack: when a fault profile is
// configured (Config.Fault), every review is admitted through a shared
// retry Budget and a circuit Breaker, executed against the FaultyTransport
// under a decorrelated-jitter retry Policy, and — when the backend cannot
// be made to answer — degraded instead of failed, so the pipeline falls
// back to its static-only workflow (the paper's non-LLM techniques keep
// working when GPT-4 does not).
//
// Determinism contract. The pipeline promises byte-identical output at
// every worker count, which a naively shared budget/breaker would break:
// whichever goroutine reached the empty bucket first would lose. Instead
// every review settles its admission inside Budget.Claim, which serializes
// settlements in canonical (lane, idx) corpus order. The settle callback
// dry-runs the transport's fault schedule (a pure function of seed, path
// and attempt), decides the retry grant and the outcome, and updates the
// breaker — all before any concurrent execution can interleave. The real
// retry loop then replays the same schedule outside the lock and must
// reach the same outcome. All timing is virtual: backoff sleeps run on a
// per-review trace.Run, and the breaker cooldown runs on a run-wide
// admission clock advanced per settlement.
package llm

import (
	"context"
	"hash/fnv"
	"time"

	"wasabi/internal/resilience"
	"wasabi/internal/source"
	"wasabi/internal/trace"
	"wasabi/internal/vclock"
)

// Degradation reasons recorded on FileReview.DegradedReason.
const (
	// DegradedOutage: the backend is hard-down (outage fault); retrying
	// is pointless and the run itself is considered degraded.
	DegradedOutage = "outage"
	// DegradedMalformed: the completion arrived but was unparseable, and
	// re-sending the same prompt reproduces it.
	DegradedMalformed = "malformed"
	// DegradedBudget: the shared retry budget ran dry before this
	// review's transient faults cleared.
	DegradedBudget = "budget-exhausted"
	// DegradedRetries: the per-review attempt cap was reached with the
	// fault still transient.
	DegradedRetries = "retries-exhausted"
	// DegradedBreakerOpen: the circuit breaker was open, so the review
	// was skipped without touching the backend.
	DegradedBreakerOpen = "breaker-open"
	// DegradedCancelled: the review's context was cancelled before any
	// backend answered (shutdown or caller abandonment, multi-backend
	// mode) — the abandonment says nothing about backend health.
	DegradedCancelled = "cancelled"
)

// ResilienceConfig tunes the retry/budget/breaker stack used when a fault
// profile is configured. Zero fields take the DefaultResilienceConfig
// values.
type ResilienceConfig struct {
	// MaxAttempts bounds delivery attempts per review (so MaxAttempts-1
	// retries), independent of the shared budget.
	MaxAttempts int
	// BaseDelay and MaxDelay bound the decorrelated-jitter backoff
	// between attempts (virtual time).
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// BudgetCapacity is the size of the retry token bucket shared across
	// every concurrent review of the run.
	BudgetCapacity int
	// BudgetRefillEvery returns one token to the bucket per N settled
	// reviews (0 disables refill: a strict per-run budget).
	BudgetRefillEvery int
	// BreakerThreshold is the consecutive-failure count that opens the
	// circuit.
	BreakerThreshold int
	// BreakerCooldown is the virtual time the circuit stays open before
	// admitting a half-open probe.
	BreakerCooldown time.Duration
}

// DefaultResilienceConfig returns the stack the pipeline runs chaos
// experiments with.
func DefaultResilienceConfig() ResilienceConfig {
	return ResilienceConfig{
		MaxAttempts:       4,
		BaseDelay:         500 * time.Millisecond,
		MaxDelay:          8 * time.Second,
		BudgetCapacity:    8,
		BudgetRefillEvery: 4,
		BreakerThreshold:  3,
		BreakerCooldown:   5 * time.Second,
	}
}

// withDefaults fills zero fields from DefaultResilienceConfig.
func (r ResilienceConfig) withDefaults() ResilienceConfig {
	d := DefaultResilienceConfig()
	if r.MaxAttempts == 0 {
		r.MaxAttempts = d.MaxAttempts
	}
	if r.BaseDelay == 0 {
		r.BaseDelay = d.BaseDelay
	}
	if r.MaxDelay == 0 {
		r.MaxDelay = d.MaxDelay
	}
	if r.BudgetCapacity == 0 {
		r.BudgetCapacity = d.BudgetCapacity
	}
	if r.BudgetRefillEvery == 0 {
		r.BudgetRefillEvery = d.BudgetRefillEvery
	}
	if r.BreakerThreshold == 0 {
		r.BreakerThreshold = d.BreakerThreshold
	}
	if r.BreakerCooldown == 0 {
		r.BreakerCooldown = d.BreakerCooldown
	}
	return r
}

// Virtual costs charged to the run-wide admission clock, which drives the
// breaker cooldown: each delivery attempt models an API round trip, and a
// breaker-skipped review still advances time (the pipeline keeps doing
// static work while the backend cools down).
const (
	attemptLatency = 800 * time.Millisecond
	skipLatency    = 500 * time.Millisecond
)

// chaosState is the per-client resilience stack, present only when
// Config.Fault is set.
type chaosState struct {
	res       ResilienceConfig
	transport *FaultyTransport
	budget    *resilience.Budget
	breaker   *resilience.Breaker
	admCtx    context.Context // run-wide virtual admission clock
}

// newChaosState builds the stack for a fault profile.
func (c *Client) newChaosState(profile FaultProfile) *chaosState {
	res := c.cfg.Resilience.withDefaults()
	ch := &chaosState{
		res:       res,
		transport: NewFaultyTransport(PerfectTransport(), profile, c.cfg.Seed),
		budget:    resilience.NewBudget(res.BudgetCapacity, res.BudgetRefillEvery),
	}
	ch.resetRun()
	return ch
}

// resetRun installs a fresh breaker and admission clock (state from a
// previous run must not leak into the next).
func (ch *chaosState) resetRun() {
	ch.admCtx = trace.With(context.Background(), trace.NewRun("llm-admission"))
	ch.breaker = resilience.NewBreaker(ch.res.BreakerThreshold, ch.res.BreakerCooldown)
}

// instrument wires the transport and breaker to the client's registry.
// The transition hook reads c.reg at call time, so Instrument can attach
// the registry after construction.
func (ch *chaosState) instrument(c *Client) {
	ch.transport.Instrument(c.reg)
	ch.breaker.OnTransition(func(to resilience.BreakerState) {
		c.reg.Counter("llm_breaker_transitions_total", "to", to.String()).Inc()
	})
}

// StartRun prepares the resilience stack for a corpus run of the given
// number of lanes (apps): the shared budget refills and switches to
// canonical sequencing, and the breaker and admission clock reset. A
// client without a fault profile has no stack; the call is a no-op.
func (c *Client) StartRun(lanes int) {
	if c.chaos == nil {
		return
	}
	c.chaos.resetRun()
	c.chaos.instrument(c)
	c.chaos.budget.Sequence(lanes)
}

// OpenLane announces how many reviews lane will settle (see
// resilience.Budget.OpenLane). Every lane passed to StartRun must be
// opened, with 0 claims on error paths. No-op without a fault profile.
func (c *Client) OpenLane(lane, claims int) {
	if c.chaos == nil {
		return
	}
	c.chaos.budget.OpenLane(lane, claims)
}

// admission is the settle-time decision for one review.
type admission struct {
	ordinal int    // canonical arrival index (outage windows key on it)
	granted int    // retry tokens granted from the shared budget
	skip    bool   // breaker open: do not touch the backend at all
	reason  string // degradation reason; "" means the review will succeed
}

// admit settles the review's claim against the shared budget and breaker,
// in canonical order. All decisions are made here, under the budget lock,
// from the transport's pure fault schedule — the concurrent execution
// that follows merely replays them.
func (c *Client) admit(path string, lane, idx int) admission {
	ch := c.chaos
	var ad admission
	ch.budget.Claim(lane, idx, func(avail, seq int) int {
		ad.ordinal = seq
		now := vclock.Now(ch.admCtx)
		if !ch.breaker.Allow(now) {
			ad.skip = true
			ad.reason = DegradedBreakerOpen
			vclock.Elapse(ch.admCtx, skipLatency)
			return 0
		}
		plan := ch.transport.planFor(path, seq, ch.res.MaxAttempts)
		ad.granted = plan.retriesWanted
		if ad.granted > avail {
			ad.granted = avail
			c.reg.Counter("llm_retry_budget_exhausted_total").Inc()
		}
		switch {
		case plan.permanent == FaultOutage:
			ad.reason = DegradedOutage
		case ad.granted < plan.retriesWanted:
			ad.reason = DegradedBudget
		case plan.permanent == FaultMalformed:
			ad.reason = DegradedMalformed
		case !plan.delivered:
			ad.reason = DegradedRetries
		}
		vclock.Elapse(ch.admCtx, time.Duration(ad.granted+1)*attemptLatency)
		if ad.reason == "" {
			ch.breaker.RecordSuccess()
		} else {
			ch.breaker.RecordFailure(vclock.Now(ch.admCtx))
		}
		return ad.granted
	})
	return ad
}

// reviewChaos runs one review through the resilience stack: admission in
// canonical order, then the real retry loop against the faulty transport
// on a per-review virtual clock. A review the backend cannot complete
// returns a Degraded FileReview (never an error): the caller falls back
// to static-only analysis for that file. pre, when non-nil, is the
// pre-parsed snapshot file the successful-delivery review consumes;
// admission and delivery depend only on (path, len(src)), so the
// resilience decisions are identical with or without it.
func (c *Client) reviewChaos(path string, src []byte, pre *source.File, lane, idx int) FileReview {
	ch := c.chaos
	ad := c.admit(path, lane, idx)
	if ad.skip {
		return c.degraded(path, len(src), ad.reason)
	}

	// Real delivery: bounded attempts, decorrelated-jitter backoff seeded
	// by the file path, retries capped by the granted allowance. The
	// transport replays the same fault schedule the admission dry-ran.
	allowance := ad.granted
	policy := resilience.NewPolicy(ch.res.MaxAttempts,
		resilience.WithDecorrelatedJitter(ch.res.BaseDelay, ch.res.MaxDelay),
		resilience.WithRetryOn(func(err error) bool {
			if !IsTransient(err) || allowance <= 0 {
				return false
			}
			allowance--
			return true
		}))
	attempt := 0
	reviewCtx := trace.With(context.Background(), trace.NewRun("llm-review"))
	err := policy.DoSeeded(reviewCtx, pathSeed(path, c.cfg.Seed), func(ctx context.Context) error {
		call := Call{Path: path, Ordinal: ad.ordinal, Attempt: attempt, Bytes: len(src)}
		attempt++
		return ch.transport.Do(ctx, call)
	})
	retries := attempt - 1
	if retries > 0 {
		c.reg.Counter("llm_transport_retries_total").Add(int64(retries))
	}
	if err != nil {
		reason := ad.reason
		if reason == "" {
			// Execution disagreed with the admission dry-run; that would
			// be a bug, but degrade honestly rather than panic.
			reason = DegradedRetries
		}
		rev := c.degraded(path, len(src), reason)
		rev.Retries = retries
		return rev
	}
	rev := c.review(path, src, pre)
	rev.Retries = retries
	return rev
}

// degraded builds the review record for a file the backend never
// successfully reviewed. Spent stays zero — a degraded review resends
// nothing and charges nothing, which is what keeps §4.3 cost accounting
// stable under chaos.
func (c *Client) degraded(path string, size int, reason string) FileReview {
	base := basename(path)
	c.reg.Counter("llm_degraded_reviews_total", "reason", reason).Inc()
	return FileReview{File: base, Size: size, Degraded: true, DegradedReason: reason}
}

// pathSeed derives the per-review jitter seed from the file path, so
// backoff delays are reproducible run to run yet uncorrelated file to
// file.
func pathSeed(path string, seed uint64) uint64 {
	h := fnv.New64a()
	h.Write([]byte(path))
	return h.Sum64() ^ seed
}

// Transport exposes the fault-injecting transport (nil when no fault
// profile is configured) — for tests and reporting.
func (c *Client) Transport() *FaultyTransport {
	if c.chaos == nil {
		return nil
	}
	return c.chaos.transport
}
