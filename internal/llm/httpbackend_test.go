package llm

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"wasabi/internal/errmodel"
	"wasabi/internal/resilience"
)

// stubCompletion is a minimal well-formed chat completion.
const stubCompletion = `{"choices":[{"message":{"role":"assistant","content":"ok"}}]}`

// newStub starts an httptest chat-completions endpoint driven by
// handler and returns an adapter wired to it.
func newStub(t *testing.T, handler http.HandlerFunc) *HTTPBackend {
	t.Helper()
	srv := httptest.NewServer(handler)
	t.Cleanup(srv.Close)
	h := NewHTTPBackend(srv.URL)
	h.SetClient(srv.Client())
	return h
}

func TestHTTPBackendSuccess(t *testing.T) {
	var got chatRequest
	h := newStub(t, func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/chat/completions" {
			t.Errorf("path = %q", r.URL.Path)
		}
		if err := json.NewDecoder(r.Body).Decode(&got); err != nil {
			t.Errorf("decode request: %v", err)
		}
		w.Write([]byte(stubCompletion))
	})
	if err := h.Do(context.Background(), Call{Path: "a.go", Attempt: 1, Bytes: 42}); err != nil {
		t.Fatal(err)
	}
	if got.Model != "wasabi-reviewer" || len(got.Messages) != 2 {
		t.Errorf("request = %+v", got)
	}
}

func TestHTTPBackendErrorMapping(t *testing.T) {
	cases := []struct {
		name      string
		status    int
		body      string
		class     string
		transient bool
	}{
		{"429 rate limited", http.StatusTooManyRequests, "slow down", "RateLimitedException", true},
		{"503 unavailable", http.StatusServiceUnavailable, "down", "ServiceUnavailableException", true},
		{"500 server error", http.StatusInternalServerError, "boom", "ServiceUnavailableException", true},
		{"404 unexpected", http.StatusNotFound, "lost", "Exception", false},
		{"200 garbage body", http.StatusOK, "not json{", "MalformedCompletionException", false},
		{"200 empty choices", http.StatusOK, `{"choices":[]}`, "MalformedCompletionException", false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			h := newStub(t, func(w http.ResponseWriter, _ *http.Request) {
				w.WriteHeader(c.status)
				w.Write([]byte(c.body))
			})
			err := h.Do(context.Background(), Call{Path: "a.go"})
			if !errmodel.CauseIsClass(err, c.class) {
				t.Fatalf("err = %v, want class %s", err, c.class)
			}
			if got := IsTransient(err); got != c.transient {
				t.Errorf("IsTransient = %v, want %v", got, c.transient)
			}
		})
	}
}

// TestHTTPBackendRetryAfterHint: a 429 carrying Retry-After surfaces the
// server's delay as a resilience backoff hint without hiding the
// exception class — the wire end of the hint-floors-backoff contract.
func TestHTTPBackendRetryAfterHint(t *testing.T) {
	h := newStub(t, func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Retry-After", "7")
		w.WriteHeader(http.StatusTooManyRequests)
	})
	err := h.Do(context.Background(), Call{Path: "a.go"})
	hint, ok := resilience.RetryAfterHint(err)
	if !ok || hint != 7*time.Second {
		t.Fatalf("hint = %v, %v, want 7s", hint, ok)
	}
	if !errmodel.CauseIsClass(err, "RateLimitedException") {
		t.Errorf("hinted err lost its class: %v", err)
	}
	if !IsTransient(err) {
		t.Error("hinted 429 must stay transient (retryable)")
	}
}

func TestHTTPBackendRetryAfterUnparseable(t *testing.T) {
	for _, v := range []string{"", "soon", "-3", "0", "Wed, 21 Oct 2015 07:28:00 GMT"} {
		v := v
		h := newStub(t, func(w http.ResponseWriter, _ *http.Request) {
			if v != "" {
				w.Header().Set("Retry-After", v)
			}
			w.WriteHeader(http.StatusTooManyRequests)
		})
		err := h.Do(context.Background(), Call{Path: "a.go"})
		if _, ok := resilience.RetryAfterHint(err); ok {
			t.Errorf("Retry-After %q produced a hint", v)
		}
		if !errmodel.CauseIsClass(err, "RateLimitedException") {
			t.Errorf("Retry-After %q: err = %v, want RateLimitedException", v, err)
		}
	}
}

// TestHTTPBackendUnreachable: a refused connection maps to the permanent
// outage class — re-sending the same request cannot fix it.
func TestHTTPBackendUnreachable(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {}))
	url := srv.URL
	srv.Close() // nothing listens here anymore
	h := NewHTTPBackend(url)
	err := h.Do(context.Background(), Call{Path: "a.go"})
	if !errmodel.CauseIsClass(err, "BackendOutageException") {
		t.Fatalf("err = %v, want BackendOutageException", err)
	}
	if IsTransient(err) {
		t.Error("outage must be permanent")
	}
}

// TestHTTPBackendTimeout: a client-side timeout maps to the transient
// socket-timeout class.
func TestHTTPBackendTimeout(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	h := newStub(t, func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-block:
		case <-r.Context().Done():
		}
	})
	h.SetClient(&http.Client{Timeout: 20 * time.Millisecond})
	err := h.Do(context.Background(), Call{Path: "a.go"})
	if !errmodel.CauseIsClass(err, "SocketTimeoutException") {
		t.Fatalf("err = %v, want SocketTimeoutException", err)
	}
	if !IsTransient(err) {
		t.Error("timeouts must be transient")
	}
}

// TestHTTPBackendCancellationPassthrough: our own context cancellation
// is returned bare — the router must see context.Canceled (no verdict),
// not a backend failure class.
func TestHTTPBackendCancellationPassthrough(t *testing.T) {
	started := make(chan struct{})
	unblock := make(chan struct{})
	defer close(unblock)
	h := newStub(t, func(w http.ResponseWriter, r *http.Request) {
		// Drain the body so the server watches the connection (and sees
		// the client hang up) while we hold the response open.
		io.Copy(io.Discard, r.Body)
		close(started)
		select {
		case <-r.Context().Done():
		case <-unblock:
		}
	})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		<-started
		cancel()
	}()
	err := h.Do(ctx, Call{Path: "a.go"})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled passed through", err)
	}
}

// TestRoutedHTTPFailover: end-to-end through the router — a dead HTTP
// primary fails over to a healthy HTTP secondary, exercising the same
// adapter the -llm-backends http kind builds.
func TestRoutedHTTPFailover(t *testing.T) {
	good := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte(stubCompletion))
	}))
	t.Cleanup(good.Close)
	dead := httptest.NewServer(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {}))
	deadURL := dead.URL
	dead.Close()

	cfg := DefaultConfig()
	var err error
	cfg.Backends, err = ParseBackends("primary=http:" + deadURL + ";secondary=http:" + good.URL)
	if err != nil {
		t.Fatal(err)
	}
	rev := NewClient(cfg).Review("mem.go", []byte("package mem\n"))
	if rev.Degraded {
		t.Fatalf("review degraded: %+v", rev)
	}
	if rev.Backend != "secondary" {
		t.Errorf("winning backend = %q, want secondary", rev.Backend)
	}
}
