package llm

import (
	"fmt"
	"strings"
	"testing"
)

// reviewSrc runs the prompt chain over an in-memory file.
func reviewSrc(cfg Config, src string) FileReview {
	return NewClient(cfg).Review("mem.go", []byte(src))
}

func noNoise() Config {
	cfg := DefaultConfig()
	cfg.HallucinateRetryDenom = 0
	cfg.Q4MissDenom = 0
	cfg.CapMisreadDenom = 0
	cfg.DelayMisreadDenom = 0
	return cfg
}

const memHeader = `package mem

import (
	"context"
	"time"

	"wasabi/internal/vclock"
)

func op(ctx context.Context) error { return nil }
`

func TestPolicyDefinitionFileSaysNo(t *testing.T) {
	// Q1 clarification: a file that only builds retry policies is not
	// performing retry.
	rev := reviewSrc(noNoise(), memHeader+`
// DefaultRetryPolicy builds the standard retry policy with maxRetries
// attempts and retryDelay between them.
func DefaultRetryPolicy(maxRetries int, retryDelay time.Duration) map[string]any {
	return map[string]any{"retries": maxRetries, "retryDelay": retryDelay}
}
`)
	if rev.PerformsRetry {
		t.Errorf("policy-definition file labeled as retry: %+v", rev.Findings)
	}
}

func TestPollerExcludedByQ4(t *testing.T) {
	rev := reviewSrc(noNoise(), memHeader+`
// pollUntilReady keeps retrying the status probe until the service is up.
func pollUntilReady(ctx context.Context) bool {
	for retry := 0; retry < 10; retry++ {
		if err := op(ctx); err != nil {
			vclock.Sleep(ctx, time.Second)
			continue
		}
		return true
	}
	return false
}
`)
	if rev.PerformsRetry {
		t.Errorf("poller should be excluded by Q4: %+v", rev.Findings)
	}
}

func TestQ4MissRetainsPollerFP(t *testing.T) {
	// With the Q4-miss mode enabled at 1-in-1, the exclusion always
	// fails and the poller is retained — the §4.2 FP mode.
	cfg := noNoise()
	cfg.Q4MissDenom = 1
	rev := reviewSrc(cfg, memHeader+`
// pollUntilReady keeps retrying the status probe until the service is up.
func pollUntilReady(ctx context.Context) bool {
	for retry := 0; retry < 10; retry++ {
		if err := op(ctx); err != nil {
			vclock.Sleep(ctx, time.Second)
			continue
		}
		return true
	}
	return false
}
`)
	if !rev.PerformsRetry {
		t.Error("with Q4 always missing, the poller FP should be retained")
	}
}

func TestCrossFileSleepInvisible(t *testing.T) {
	// The sleep helper is in ANOTHER file, so the single-file reader
	// answers Q2 "No" — the missing-delay FP mode of §4.3.
	rev := reviewSrc(noNoise(), memHeader+`
// send delivers a message, retrying transient failures.
func send(ctx context.Context) error {
	var last error
	for retry := 0; retry < 5; retry++ {
		if err := op(ctx); err != nil {
			last = err
			pauseBetween(ctx, retry) // defined in another file
			continue
		}
		return nil
	}
	return last
}
`)
	var f *Finding
	for i := range rev.Findings {
		if rev.Findings[i].Coordinator == "mem.send" {
			f = &rev.Findings[i]
		}
	}
	if f == nil {
		t.Fatalf("send not identified: %+v", rev.Findings)
	}
	if f.SleepsBeforeRetry {
		t.Error("cross-file sleep helper must be invisible (Q2 = No)")
	}
}

func TestSameFileSleepHelperVisible(t *testing.T) {
	rev := reviewSrc(noNoise(), memHeader+`
func pauseBetween(ctx context.Context, n int) {
	vclock.Sleep(ctx, time.Second)
}

// send delivers a message, retrying transient failures.
func send(ctx context.Context) error {
	var last error
	for retry := 0; retry < 5; retry++ {
		if err := op(ctx); err != nil {
			last = err
			pauseBetween(ctx, retry)
			continue
		}
		return nil
	}
	return last
}
`)
	for _, f := range rev.Findings {
		if f.Coordinator == "mem.send" && !f.SleepsBeforeRetry {
			t.Error("same-file sleep helper should be visible (Q2 = Yes)")
		}
	}
}

func TestLargeFileThresholdBoundary(t *testing.T) {
	cfg := noNoise()
	cfg.LargeFileThreshold = 100000
	body := memHeader + `
// send delivers a message, retrying transient failures.
func send(ctx context.Context) error {
	var last error
	for retry := 0; retry < 5; retry++ {
		if err := op(ctx); err != nil {
			last = err
			continue
		}
		return nil
	}
	return last
}
`
	if rev := reviewSrc(cfg, body); !rev.PerformsRetry {
		t.Error("small file under a large threshold should be read")
	}
	cfg.LargeFileThreshold = len(body) - 1
	if rev := reviewSrc(cfg, body); !rev.TruncatedContext {
		t.Error("file one byte over the threshold should be truncated")
	}
}

func TestTokenAccountingScalesWithFileSize(t *testing.T) {
	c := NewClient(noNoise())
	pad := strings.Repeat("// padding line for token accounting\n", 40)
	c.Review("a.go", []byte(memHeader+pad))
	small := c.Usage().TokensIn
	c.ResetUsage()
	c.Review("b.go", []byte(memHeader+pad+pad+pad))
	large := c.Usage().TokensIn
	if large <= small {
		t.Errorf("tokens: small=%d large=%d", small, large)
	}
}

func TestManyFunctionsAllReviewed(t *testing.T) {
	var b strings.Builder
	b.WriteString(memHeader)
	for i := 0; i < 5; i++ {
		fmt.Fprintf(&b, `
// worker%d retries its operation on failure.
func worker%d(ctx context.Context) error {
	var last error
	for retry := 0; retry < 3; retry++ {
		if err := op(ctx); err != nil {
			last = err
			vclock.Sleep(ctx, time.Second)
			continue
		}
		return nil
	}
	return last
}
`, i, i)
	}
	rev := reviewSrc(noNoise(), b.String())
	if len(rev.Findings) != 5 {
		t.Errorf("findings = %d, want all 5 workers", len(rev.Findings))
	}
}
