// httpbackend.go is the OpenAI-compatible HTTP adapter: the one
// Transport in the repo that talks to a real socket. It sends the
// prompt chain as a chat-completions request and maps the wire's
// failure surface onto the errmodel classes the retry classifier
// already understands, so the resilience stack treats a real endpoint
// and the simulator identically:
//
//	429 Too Many Requests      → RateLimitedException (transient), with
//	                             the Retry-After header attached as a
//	                             resilience backoff hint
//	5xx                        → ServiceUnavailableException (transient)
//	context deadline/timeout   → SocketTimeoutException (transient)
//	connection refused / DNS   → BackendOutageException (permanent)
//	2xx with bad/empty body    → MalformedCompletionException (permanent)
//
// The adapter carries no fault model of its own — real networks supply
// their own — and no determinism promise: multi-backend runs already
// trade canonical-order admission for availability. Tests drive it
// against a local httptest stub; nothing here needs the internet.
package llm

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"wasabi/internal/errmodel"
	"wasabi/internal/resilience"
)

// HTTPBackend delivers prompt chains to an OpenAI-compatible endpoint
// (POST {base}/v1/chat/completions).
type HTTPBackend struct {
	base   string
	model  string
	client *http.Client
}

// NewHTTPBackend returns an adapter for the endpoint at base (scheme +
// host, no trailing path). The default request timeout is 30s; override
// the whole client with SetClient for tests.
func NewHTTPBackend(base string) *HTTPBackend {
	return &HTTPBackend{
		base:   base,
		model:  "wasabi-reviewer",
		client: &http.Client{Timeout: 30 * time.Second},
	}
}

// SetClient swaps the underlying http.Client (test seam; httptest
// servers hand out pre-wired clients).
func (h *HTTPBackend) SetClient(c *http.Client) { h.client = c }

// chatRequest and chatResponse are the minimal slice of the OpenAI chat
// wire format the adapter speaks.
type chatRequest struct {
	Model    string        `json:"model"`
	Messages []chatMessage `json:"messages"`
}

type chatMessage struct {
	Role    string `json:"role"`
	Content string `json:"content"`
}

type chatResponse struct {
	Choices []struct {
		Message chatMessage `json:"message"`
	} `json:"choices"`
}

// Do implements Transport. A nil return means the endpoint produced a
// well-formed completion for the file's prompt chain; the review
// answers themselves still come from the local model (a pure function
// of config, path and contents), which is what keeps multi-backend
// output byte-identical across healthy backends.
func (h *HTTPBackend) Do(ctx context.Context, call Call) error {
	body, err := json.Marshal(chatRequest{
		Model: h.model,
		Messages: []chatMessage{
			{Role: "system", Content: "You analyze retry logic in source files."},
			{Role: "user", Content: fmt.Sprintf("review %s (attempt %d, %d bytes)", call.Path, call.Attempt, call.Bytes)},
		},
	})
	if err != nil {
		return errmodel.Newf("Exception", "llm: encode chat request for %s: %v", call.Path, err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, h.base+"/v1/chat/completions", bytes.NewReader(body))
	if err != nil {
		return errmodel.Newf("Exception", "llm: build request for %s: %v", call.Path, err)
	}
	req.Header.Set("Content-Type", "application/json")

	resp, err := h.client.Do(req)
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded) || isClientTimeout(err):
			return errmodel.Newf("SocketTimeoutException", "llm: %s attempt %d timed out: %v", call.Path, call.Attempt, err)
		case errors.Is(err, context.Canceled):
			// Our own cancellation (hedge rival won) — pass it through so
			// the router releases the probe slot without a health verdict.
			return err
		default:
			// Refused connections, DNS failures, resets: the endpoint is
			// unreachable, and re-sending the same request won't fix that.
			return errmodel.Newf("BackendOutageException", "llm: endpoint %s unreachable: %v", h.base, err)
		}
	}
	// Drain a bounded remainder before close so net/http can reuse the
	// keep-alive connection: returning early on 429/5xx without reading
	// the body would burn the connection — and pay reconnect latency —
	// exactly when the endpoint is degraded.
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10)) //nolint:errcheck // best-effort drain
		resp.Body.Close()
	}()

	switch {
	case resp.StatusCode == http.StatusTooManyRequests:
		rlErr := errmodel.Newf("RateLimitedException", "llm: 429 on %s attempt %d", call.Path, call.Attempt)
		if hint := parseRetryAfter(resp.Header.Get("Retry-After")); hint > 0 {
			return resilience.WithRetryAfterHint(rlErr, hint)
		}
		return rlErr
	case resp.StatusCode >= 500:
		return errmodel.Newf("ServiceUnavailableException", "llm: %d on %s attempt %d", resp.StatusCode, call.Path, call.Attempt)
	case resp.StatusCode != http.StatusOK:
		return errmodel.Newf("Exception", "llm: unexpected %d on %s", resp.StatusCode, call.Path)
	}

	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return errmodel.Newf("SocketTimeoutException", "llm: read completion for %s: %v", call.Path, err)
	}
	var completion chatResponse
	if err := json.Unmarshal(raw, &completion); err != nil {
		return errmodel.Newf("MalformedCompletionException", "llm: unparseable completion for %s: %v", call.Path, err)
	}
	if len(completion.Choices) == 0 {
		return errmodel.Newf("MalformedCompletionException", "llm: empty completion for %s", call.Path)
	}
	return nil
}

// isClientTimeout spots net/http's own timeout errors (client.Timeout
// fires a *url.Error with Timeout() == true rather than a context
// error).
func isClientTimeout(err error) bool {
	var te interface{ Timeout() bool }
	return errors.As(err, &te) && te.Timeout()
}

// parseRetryAfter parses the delay-seconds form of a Retry-After header
// (the HTTP-date form is ignored: simulated and stub servers speak
// seconds, and a missing hint just falls back to local backoff).
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs <= 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}
