// Package oracle implements WASABI's three retry-specific,
// application-agnostic test oracles (§3.1.3): "missing cap",
// "missing delay", and "different exception". They operate purely on the
// trace recorded during an instrumented test run plus the run's outcome.
package oracle

import (
	"fmt"
	"strings"
	"time"

	"wasabi/internal/errmodel"
	"wasabi/internal/fault"
	"wasabi/internal/obs"
	"wasabi/internal/testkit"
	"wasabi/internal/trace"
)

// Kind classifies a report.
type Kind string

const (
	// MissingCap flags unbounded retry: an injection handler threw the
	// cap-threshold number of times, or the (virtual) run exceeded the
	// timeout.
	MissingCap Kind = "missing-cap"
	// MissingDelay flags back-to-back retry attempts with no sleep issued
	// by the coordinator in between.
	MissingDelay Kind = "missing-delay"
	// How flags a run that crashed with an exception different from the
	// injected one — evidence of broken retry execution (§2.4).
	How Kind = "how"
)

// Report is one oracle finding for one test run.
type Report struct {
	Kind Kind
	App  string
	Test string
	// Coordinator/Retried identify the retry structure (cap/delay) or
	// the injection location active when the crash occurred (how).
	Coordinator string
	Retried     string
	// Exception is the injected trigger (cap/delay) or the observed crash
	// class (how).
	Exception string
	// GroupKey identifies the distinct bug this report belongs to: retry
	// structure for WHEN bugs, crash class+site for HOW bugs (§4.1).
	GroupKey string
	// Details is a human-readable explanation.
	Details string
}

// Options tunes the oracles.
type Options struct {
	// CapThreshold is the number of injections that signals unbounded
	// retry. The paper uses 100 ("safely exceeds all application
	// configured thresholds", which are typically <= 20).
	CapThreshold int
	// VirtualTimeout is the run-duration limit (15 minutes in the paper),
	// measured in virtual time here.
	VirtualTimeout time.Duration
	// Metrics, when set, receives the per-oracle verdict distribution
	// (oracle_reports_total{oracle=…}) and an evaluation counter. Reports
	// are a deterministic function of the trace, so the counters are
	// identical at every worker count.
	Metrics *obs.Registry
}

// DefaultOptions mirrors the paper.
func DefaultOptions() Options {
	return Options{CapThreshold: 100, VirtualTimeout: 15 * time.Minute}
}

// Evaluate applies all three oracles to one test result. rules are the
// injections that were armed for the run.
func Evaluate(app string, res testkit.Result, rules []fault.Rule, opts Options) []Report {
	if opts.CapThreshold == 0 {
		metrics := opts.Metrics
		opts = DefaultOptions()
		opts.Metrics = metrics
	}
	var out []Report
	out = append(out, missingCap(app, res, rules, opts)...)
	out = append(out, missingDelay(app, res)...)
	out = append(out, differentException(app, res, rules)...)
	opts.Metrics.Counter("oracle_evaluations_total").Inc()
	for _, r := range out {
		opts.Metrics.Counter("oracle_reports_total", "oracle", string(r.Kind)).Inc()
	}
	return out
}

// missingCap reports locations whose injections reached the threshold, or
// a run that exceeded the virtual timeout.
func missingCap(app string, res testkit.Result, rules []fault.Rule, opts Options) []Report {
	counts := make(map[fault.Location]int)
	for _, e := range res.Run.Events() {
		if e.Kind == trace.KindInjection {
			loc := fault.Location{Coordinator: e.Caller, Retried: e.Callee, Exception: e.Exception}
			if e.Count > counts[loc] {
				counts[loc] = e.Count
			}
		}
	}
	var out []Report
	for loc, n := range counts {
		if n >= opts.CapThreshold {
			out = append(out, Report{
				Kind: MissingCap, App: app, Test: res.Test.Name,
				Coordinator: loc.Coordinator, Retried: loc.Retried, Exception: loc.Exception,
				GroupKey: "cap|" + loc.Coordinator,
				Details:  fmt.Sprintf("%d consecutive injections at %s absorbed by retry in %s", n, loc.Retried, loc.Coordinator),
			})
		}
	}
	if len(out) == 0 && res.VDuration > opts.VirtualTimeout && len(rules) > 0 {
		loc := rules[0].Loc
		out = append(out, Report{
			Kind: MissingCap, App: app, Test: res.Test.Name,
			Coordinator: loc.Coordinator, Retried: loc.Retried, Exception: loc.Exception,
			GroupKey: "cap|" + loc.Coordinator,
			Details:  fmt.Sprintf("run exceeded virtual timeout (%v)", res.VDuration),
		})
	}
	return out
}

// missingDelay reports retry locations with at least two consecutive
// injections and no coordinator-issued sleep between any adjacent pair.
func missingDelay(app string, res testkit.Result) []Report {
	events := res.Run.Events()
	type pair struct{ coordinator, retried string }
	injSeqs := make(map[pair][]int)
	for _, e := range events {
		if e.Kind == trace.KindInjection {
			p := pair{e.Caller, e.Callee}
			injSeqs[p] = append(injSeqs[p], e.Seq)
		}
	}
	var out []Report
	for p, seqs := range injSeqs {
		if len(seqs) < 2 {
			continue
		}
		delayed := false
		for i := 1; i < len(seqs) && !delayed; i++ {
			if sleepBetween(events, seqs[i-1], seqs[i], p.coordinator) {
				delayed = true
			}
		}
		if !delayed {
			out = append(out, Report{
				Kind: MissingDelay, App: app, Test: res.Test.Name,
				Coordinator: p.coordinator, Retried: p.retried,
				GroupKey: "delay|" + p.coordinator,
				Details:  fmt.Sprintf("%d retry attempts at %s with no sleep issued by %s", len(seqs), p.retried, p.coordinator),
			})
		}
	}
	return out
}

// sleepBetween reports whether a sleep attributed to the coordinator
// occurs between the two event sequence numbers. Attribution matches the
// coordinator frame exactly or through its closures ("coordinator.funcN").
func sleepBetween(events []trace.Event, lo, hi int, coordinator string) bool {
	for _, e := range events {
		if e.Seq <= lo || e.Seq >= hi || e.Kind != trace.KindSleep {
			continue
		}
		for _, f := range e.Stack {
			if f == coordinator || strings.HasPrefix(f, coordinator+".func") {
				return true
			}
		}
	}
	return false
}

// differentException implements the HOW oracle: a crash with an exception
// other than the injected one is suspicious; a crash that merely re-throws
// the injected exception is correct give-up behaviour; assertion failures
// belong to the test's own oracle and are ignored here.
func differentException(app string, res testkit.Result, rules []fault.Rule) []Report {
	if res.Err == nil {
		return nil
	}
	exc, ok := res.Err.(*errmodel.Exception)
	if !ok {
		return []Report{{
			Kind: How, App: app, Test: res.Test.Name,
			Exception: "<non-exception>",
			GroupKey:  "how|plain|" + res.Err.Error(),
			Details:   "test crashed with a non-exception error: " + res.Err.Error(),
		}}
	}
	if exc.Class == testkit.AssertionError {
		return nil
	}
	// A crash with the same exception CLASS as the injected trigger is
	// the application correctly giving up after its retries — whether it
	// re-threw our exception object or constructed a fresh one of the
	// same type (§3.1.3). Only a *different* class is suspicious.
	for _, r := range rules {
		if r.Loc.Exception == exc.Class {
			return nil
		}
	}
	loc := fault.Location{}
	if len(rules) > 0 {
		loc = rules[0].Loc
	}
	return []Report{{
		Kind: How, App: app, Test: res.Test.Name,
		Coordinator: loc.Coordinator, Retried: loc.Retried,
		Exception: exc.Class,
		GroupKey:  "how|" + exc.Class + "@" + exc.Site,
		Details: fmt.Sprintf("injected %s at %s but test crashed with %s (site %s)",
			loc.Exception, loc.Retried, exc.Class, exc.Site),
	}}
}

// ByCoordinator groups reports by their coordinator — the shape corpus
// verification (internal/corpusgen) consumes when matching oracle
// witnesses against ground-truth structures. Reports without a
// coordinator (plain-error HOW reports) group under "".
func ByCoordinator(reports []Report) map[string][]Report {
	out := make(map[string][]Report)
	for _, r := range reports {
		out[r.Coordinator] = append(out[r.Coordinator], r)
	}
	return out
}

// Dedup collapses reports with the same group key, keeping the first.
func Dedup(reports []Report) []Report {
	seen := make(map[string]bool)
	var out []Report
	for _, r := range reports {
		key := string(r.Kind) + "|" + r.App + "|" + r.GroupKey
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, r)
	}
	return out
}
