package oracle

import (
	"strings"
	"testing"
	"time"

	"wasabi/internal/errmodel"
	"wasabi/internal/fault"
	"wasabi/internal/testkit"
	"wasabi/internal/trace"
)

func loc() fault.Location {
	return fault.Location{Coordinator: "app.C.run", Retried: "app.C.work", Exception: "ConnectException"}
}

func resultWith(run *trace.Run, err error) testkit.Result {
	return testkit.Result{
		Test:      testkit.Test{Name: "app.TestX", App: "HD"},
		Err:       err,
		Run:       run,
		VDuration: run.VNow(),
	}
}

func inject(run *trace.Run, l fault.Location, count int) {
	run.Append(trace.Event{
		Kind: trace.KindInjection, Callee: l.Retried, Caller: l.Coordinator,
		Exception: l.Exception, Count: count,
	})
}

func sleepFrom(run *trace.Run, coordinator string) {
	run.AdvanceAndRecordSleep(time.Second, []string{"vclock.Sleep", coordinator, "app.TestX"})
}

func TestMissingCapAtThreshold(t *testing.T) {
	run := trace.NewRun("t")
	l := loc()
	for i := 1; i <= 100; i++ {
		inject(run, l, i)
		sleepFrom(run, l.Coordinator)
	}
	reports := Evaluate("HD", resultWith(run, nil), []fault.Rule{{Loc: l, K: 100}}, DefaultOptions())
	var cap_ int
	for _, r := range reports {
		if r.Kind == MissingCap {
			cap_++
			if r.Coordinator != l.Coordinator {
				t.Errorf("coordinator = %q", r.Coordinator)
			}
		}
		if r.Kind == MissingDelay {
			t.Error("delay present; should not report missing delay")
		}
	}
	if cap_ != 1 {
		t.Errorf("missing-cap reports = %d, want 1", cap_)
	}
}

func TestNoCapReportBelowThreshold(t *testing.T) {
	run := trace.NewRun("t")
	l := loc()
	for i := 1; i <= 5; i++ {
		inject(run, l, i)
		sleepFrom(run, l.Coordinator)
	}
	for _, r := range Evaluate("HD", resultWith(run, nil), []fault.Rule{{Loc: l, K: 100}}, DefaultOptions()) {
		if r.Kind == MissingCap {
			t.Errorf("unexpected cap report: %+v", r)
		}
	}
}

func TestMissingCapOnVirtualTimeout(t *testing.T) {
	run := trace.NewRun("t")
	l := loc()
	inject(run, l, 1)
	run.Advance(16 * time.Minute)
	reports := Evaluate("HD", resultWith(run, nil), []fault.Rule{{Loc: l, K: 100}}, DefaultOptions())
	found := false
	for _, r := range reports {
		if r.Kind == MissingCap && strings.Contains(r.Details, "timeout") {
			found = true
		}
	}
	if !found {
		t.Errorf("expected timeout-based cap report, got %+v", reports)
	}
}

func TestMissingDelayNoSleeps(t *testing.T) {
	run := trace.NewRun("t")
	l := loc()
	inject(run, l, 1)
	inject(run, l, 2)
	inject(run, l, 3)
	reports := Evaluate("HD", resultWith(run, nil), []fault.Rule{{Loc: l, K: 100}}, DefaultOptions())
	found := false
	for _, r := range reports {
		if r.Kind == MissingDelay {
			found = true
		}
	}
	if !found {
		t.Error("expected missing-delay report")
	}
}

func TestNoDelayReportForSingleInjection(t *testing.T) {
	run := trace.NewRun("t")
	inject(run, loc(), 1)
	for _, r := range Evaluate("HD", resultWith(run, nil), []fault.Rule{{Loc: loc(), K: 1}}, DefaultOptions()) {
		if r.Kind == MissingDelay {
			t.Error("one injection cannot establish missing delay")
		}
	}
}

func TestDelaySatisfiedByCoordinatorSleep(t *testing.T) {
	run := trace.NewRun("t")
	l := loc()
	inject(run, l, 1)
	sleepFrom(run, l.Coordinator)
	inject(run, l, 2)
	for _, r := range Evaluate("HD", resultWith(run, nil), []fault.Rule{{Loc: l, K: 100}}, DefaultOptions()) {
		if r.Kind == MissingDelay {
			t.Errorf("sleep between attempts should satisfy the oracle: %+v", r)
		}
	}
}

func TestDelayFromOtherMethodDoesNotCount(t *testing.T) {
	run := trace.NewRun("t")
	l := loc()
	inject(run, l, 1)
	sleepFrom(run, "app.Other.method") // someone else slept
	inject(run, l, 2)
	found := false
	for _, r := range Evaluate("HD", resultWith(run, nil), []fault.Rule{{Loc: l, K: 100}}, DefaultOptions()) {
		if r.Kind == MissingDelay {
			found = true
		}
	}
	if !found {
		t.Error("sleep from an unrelated method must not mask missing delay")
	}
}

func TestDelayFromCoordinatorClosureCounts(t *testing.T) {
	run := trace.NewRun("t")
	l := loc()
	inject(run, l, 1)
	sleepFrom(run, l.Coordinator+".func1")
	inject(run, l, 2)
	for _, r := range Evaluate("HD", resultWith(run, nil), []fault.Rule{{Loc: l, K: 100}}, DefaultOptions()) {
		if r.Kind == MissingDelay {
			t.Error("closure sleep should attribute to the coordinator")
		}
	}
}

func TestHowRethrownInjectedFiltered(t *testing.T) {
	run := trace.NewRun("t")
	l := loc()
	inject(run, l, 1)
	exc := errmodel.New("ConnectException", "injected")
	exc.Injected = true
	for _, r := range Evaluate("HD", resultWith(run, exc), []fault.Rule{{Loc: l, K: 100}}, DefaultOptions()) {
		if r.Kind == How {
			t.Errorf("re-thrown injected exception must be filtered: %+v", r)
		}
	}
}

func TestHowDifferentExceptionReported(t *testing.T) {
	run := trace.NewRun("t")
	l := loc()
	inject(run, l, 1)
	npe := errmodel.New("NullPointerException", "stats nil")
	reports := Evaluate("HD", resultWith(run, npe), []fault.Rule{{Loc: l, K: 1}}, DefaultOptions())
	found := false
	for _, r := range reports {
		if r.Kind == How && r.Exception == "NullPointerException" {
			found = true
			if !strings.Contains(r.GroupKey, "NullPointerException") {
				t.Errorf("group key should carry the crash class: %q", r.GroupKey)
			}
		}
	}
	if !found {
		t.Errorf("expected HOW report, got %+v", reports)
	}
}

func TestHowWrappedInjectedIsReported(t *testing.T) {
	// The §4.3 FP mode: the app wraps the injected exception; the oracle
	// sees a different outermost class and reports it.
	run := trace.NewRun("t")
	l := loc()
	inject(run, l, 1)
	inner := errmodel.New("ConnectException", "injected")
	inner.Injected = true
	wrapped := errmodel.Wrap("HadoopException", "wrapped", inner)
	found := false
	for _, r := range Evaluate("HD", resultWith(run, wrapped), []fault.Rule{{Loc: l, K: 100}}, DefaultOptions()) {
		if r.Kind == How && r.Exception == "HadoopException" {
			found = true
		}
	}
	if !found {
		t.Error("wrapped injected exception should be (falsely) reported, as in the paper")
	}
}

func TestHowAssertionErrorIgnored(t *testing.T) {
	run := trace.NewRun("t")
	inject(run, loc(), 1)
	ae := errmodel.New(testkit.AssertionError, "expected 3 got 2")
	for _, r := range Evaluate("HD", resultWith(run, ae), []fault.Rule{{Loc: loc(), K: 1}}, DefaultOptions()) {
		if r.Kind == How {
			t.Error("assertion failures belong to the test's own oracle")
		}
	}
}

func TestPassingRunYieldsNothing(t *testing.T) {
	run := trace.NewRun("t")
	if got := Evaluate("HD", resultWith(run, nil), nil, DefaultOptions()); len(got) != 0 {
		t.Errorf("reports = %+v", got)
	}
}

func TestDedupCollapsesGroups(t *testing.T) {
	reports := []Report{
		{Kind: MissingCap, App: "HD", GroupKey: "cap|a"},
		{Kind: MissingCap, App: "HD", GroupKey: "cap|a"},
		{Kind: MissingCap, App: "HB", GroupKey: "cap|a"},
		{Kind: MissingDelay, App: "HD", GroupKey: "delay|a"},
	}
	if got := len(Dedup(reports)); got != 3 {
		t.Errorf("dedup = %d, want 3 (same app+kind+group collapses)", got)
	}
}
