// Package evaluation reproduces the paper's evaluation (§4): it runs both
// WASABI workflows over the whole corpus, scores every report against the
// corpus ground truth (the role the authors' manual inspection plays in
// the paper), and renders each table and figure.
package evaluation

import (
	"fmt"

	"wasabi/internal/apps/corpus"
	"wasabi/internal/apps/meta"
	"wasabi/internal/core"
	"wasabi/internal/llm"
	"wasabi/internal/oracle"
	"wasabi/internal/sast"
)

// Score is a reports-vs-ground-truth tally: True counts reports whose
// coordinator carries the matching ground-truth bug, FP the rest.
type Score struct {
	True, FP int
}

// Reports returns the total number of reports.
func (s Score) Reports() int { return s.True + s.FP }

// Add accumulates another score.
func (s *Score) Add(o Score) { s.True += o.True; s.FP += o.FP }

// Cell renders the paper's "N_f" notation: report count with the
// false-positive count as a subscript.
func (s Score) Cell() string {
	if s.Reports() == 0 {
		return "-"
	}
	return fmt.Sprintf("%d_%d", s.Reports(), s.FP)
}

// AppScores holds the per-category scores for one app in one workflow —
// one row of Table 3 or Table 4.
type AppScores struct {
	App   string
	Cap   Score
	Delay Score
	How   Score
}

// Total sums the categories.
func (a AppScores) Total() Score {
	t := a.Cap
	t.Add(a.Delay)
	t.Add(a.How)
	return t
}

// AppResult bundles everything measured for one application.
type AppResult struct {
	App         corpus.App
	ID          *core.Identification
	Dyn         *core.DynamicResult
	Static      *core.StaticResult
	DynScores   AppScores
	StaticScore AppScores
}

// Evaluation is the complete corpus-wide measurement.
type Evaluation struct {
	Apps      []AppResult
	IFRatios  []sast.ExceptionRatio
	IFReports []sast.IFReport
	IFScore   Score
	Usage     llm.Usage
}

// manifestIndex maps coordinator names to ground truth for one app.
func manifestIndex(app corpus.App) map[string]meta.Structure {
	out := make(map[string]meta.Structure, len(app.Manifest))
	for _, s := range app.Manifest {
		out[s.Coordinator] = s
	}
	return out
}

// scoreKind classifies one report coordinator against ground truth.
func scoreKind(idx map[string]meta.Structure, coordinator string, want meta.Bug) Score {
	if s, ok := idx[coordinator]; ok && s.Bug == want {
		return Score{True: 1}
	}
	return Score{FP: 1}
}

// ScoreDynamic scores the deduplicated oracle reports of one app.
func ScoreDynamic(app corpus.App, reports []oracle.Report) AppScores {
	idx := manifestIndex(app)
	out := AppScores{App: app.Code}
	for _, r := range reports {
		switch r.Kind {
		case oracle.MissingCap:
			out.Cap.Add(scoreKind(idx, r.Coordinator, meta.MissingCap))
		case oracle.MissingDelay:
			out.Delay.Add(scoreKind(idx, r.Coordinator, meta.MissingDelay))
		case oracle.How:
			out.How.Add(scoreKind(idx, r.Coordinator, meta.How))
		}
	}
	return out
}

// ScoreStatic scores the LLM WHEN reports of one app.
func ScoreStatic(app corpus.App, reports []llm.WhenReport) AppScores {
	idx := manifestIndex(app)
	out := AppScores{App: app.Code}
	for _, r := range reports {
		switch r.Kind {
		case "missing-cap":
			out.Cap.Add(scoreKind(idx, r.Coordinator, meta.MissingCap))
		case "missing-delay":
			out.Delay.Add(scoreKind(idx, r.Coordinator, meta.MissingDelay))
		}
	}
	return out
}

// ScoreIF scores the retry-ratio outlier reports corpus-wide.
func ScoreIF(reports []sast.IFReport, manifests []meta.Structure) Score {
	idx := make(map[string]meta.Structure, len(manifests))
	for _, s := range manifests {
		idx[s.Coordinator] = s
	}
	var out Score
	for _, r := range reports {
		want := meta.WrongPolicyNotRetried
		if r.Retried {
			want = meta.WrongPolicyRetried
		}
		if s, ok := idx[r.Coordinator]; ok && s.Bug == want {
			out.True++
		} else {
			out.FP++
		}
	}
	return out
}

// Run executes both workflows over the entire corpus and scores them,
// using the default configuration (one worker per CPU). Scores and tables
// are identical at any worker count; see core's determinism tests.
func Run() (*Evaluation, error) { return RunWith(core.DefaultOptions()) }

// RunWith is Run with explicit options (Workers=1 forces the sequential
// execution path).
func RunWith(opts core.Options) (*Evaluation, error) {
	w := core.New(opts)
	cr, err := w.RunCorpus(corpus.Apps())
	if err != nil {
		return nil, err
	}
	ev := &Evaluation{}
	for _, ar := range cr.Apps {
		ev.Apps = append(ev.Apps, AppResult{
			App:         ar.App,
			ID:          ar.ID,
			Dyn:         ar.Dyn,
			Static:      ar.Static,
			DynScores:   ScoreDynamic(ar.App, ar.Dyn.Reports),
			StaticScore: ScoreStatic(ar.App, ar.Static.WhenReports),
		})
	}
	ev.IFRatios, ev.IFReports = cr.IFRatios, cr.IFReports
	ev.IFScore = ScoreIF(ev.IFReports, corpus.Manifests())
	ev.Usage = cr.Usage
	return ev, nil
}

// TrueBugKeys returns the set of distinct true bugs found by the dynamic
// workflow and by the static workflow (LLM WHEN + IF), keyed by
// kind+coordinator — the input of the Figure 3 overlap analysis.
func (ev *Evaluation) TrueBugKeys() (dynamic, static map[string]bool) {
	dynamic, static = map[string]bool{}, map[string]bool{}
	for _, ar := range ev.Apps {
		idx := manifestIndex(ar.App)
		for _, r := range ar.Dyn.Reports {
			want := map[oracle.Kind]meta.Bug{
				oracle.MissingCap:   meta.MissingCap,
				oracle.MissingDelay: meta.MissingDelay,
				oracle.How:          meta.How,
			}[r.Kind]
			if s, ok := idx[r.Coordinator]; ok && s.Bug == want {
				dynamic[string(r.Kind)+"|"+r.Coordinator] = true
			}
		}
		for _, r := range ar.Static.WhenReports {
			want := meta.MissingCap
			if r.Kind == "missing-delay" {
				want = meta.MissingDelay
			}
			if s, ok := idx[r.Coordinator]; ok && s.Bug == want {
				static[r.Kind+"|"+r.Coordinator] = true
			}
		}
	}
	idx := make(map[string]meta.Structure)
	for _, s := range corpus.Manifests() {
		idx[s.Coordinator] = s
	}
	for _, r := range ev.IFReports {
		want := meta.WrongPolicyNotRetried
		if r.Retried {
			want = meta.WrongPolicyRetried
		}
		if s, ok := idx[r.Coordinator]; ok && s.Bug == want {
			static["if|"+r.Coordinator] = true
		}
	}
	return dynamic, static
}

// IdentificationBreakdown summarizes Figure 4 for one app: ground-truth
// structures identified by each technique, by mechanism.
type IdentificationBreakdown struct {
	App string
	// ByMechanism[mech] = [codeqlOnly, llmOnly, both]
	ByMechanism map[meta.Mechanism][3]int
	// Missed counts ground-truth structures no technique identified.
	Missed int
	// SpuriousLLM counts LLM-identified coordinators absent from ground
	// truth (identification false positives, §4.2).
	SpuriousLLM int
}

// BreakdownIdentification computes Figure 4's data for one app result.
func BreakdownIdentification(ar AppResult) IdentificationBreakdown {
	idx := map[string]core.Structure{}
	for _, s := range ar.ID.Structures {
		idx[s.Coordinator] = s
	}
	out := IdentificationBreakdown{App: ar.App.Code, ByMechanism: map[meta.Mechanism][3]int{}}
	known := map[string]bool{}
	for _, gt := range ar.App.Manifest {
		known[gt.Coordinator] = true
		s, ok := idx[gt.Coordinator]
		if !ok {
			out.Missed++
			continue
		}
		cell := out.ByMechanism[gt.Mechanism]
		switch {
		case s.FoundBy.CodeQL && s.FoundBy.LLM:
			cell[2]++
		case s.FoundBy.CodeQL:
			cell[0]++
		case s.FoundBy.LLM:
			cell[1]++
		}
		out.ByMechanism[gt.Mechanism] = cell
	}
	for _, s := range ar.ID.Structures {
		if !known[s.Coordinator] && s.FoundBy.LLM {
			out.SpuriousLLM++
		}
	}
	return out
}
