package evaluation

import (
	"strings"
	"sync"
	"testing"

	"wasabi/internal/apps/corpus"
	"wasabi/internal/apps/meta"
	"wasabi/internal/oracle"
)

// The full evaluation is expensive enough to share across tests.
var (
	once sync.Once
	ev   *Evaluation
	err  error
)

func sharedEval(t *testing.T) *Evaluation {
	t.Helper()
	once.Do(func() { ev, err = Run() })
	if err != nil {
		t.Fatal(err)
	}
	return ev
}

func TestRunCoversAllApps(t *testing.T) {
	e := sharedEval(t)
	if len(e.Apps) != 8 {
		t.Fatalf("apps = %d", len(e.Apps))
	}
}

// TestShapeTable3 checks the qualitative properties of the dynamic results
// the paper reports: true bugs outnumber false positives roughly 2:1, and
// every category has findings.
func TestShapeTable3(t *testing.T) {
	e := sharedEval(t)
	var total AppScores
	for _, a := range e.Apps {
		total.Cap.Add(a.DynScores.Cap)
		total.Delay.Add(a.DynScores.Delay)
		total.How.Add(a.DynScores.How)
	}
	if total.Cap.True == 0 || total.Delay.True == 0 || total.How.True == 0 {
		t.Errorf("every category needs true findings: %+v", total)
	}
	tt := total.Total()
	if tt.True <= tt.FP {
		t.Errorf("true (%d) should outnumber FPs (%d), as in the paper's 2:1", tt.True, tt.FP)
	}
	if total.Cap.FP == 0 || total.Delay.FP == 0 || total.How.FP == 0 {
		t.Errorf("each FP mode of §4.3 should reproduce: %+v", total)
	}
}

// TestShapeTable4 checks the LLM detector reports more WHEN bugs than unit
// testing but with a worse precision, as the paper observes.
func TestShapeTable4(t *testing.T) {
	e := sharedEval(t)
	var dynWhen, llmWhen, dynWhenFP, llmWhenFP int
	for _, a := range e.Apps {
		dynWhen += a.DynScores.Cap.True + a.DynScores.Delay.True
		dynWhenFP += a.DynScores.Cap.FP + a.DynScores.Delay.FP
		llmWhen += a.StaticScore.Cap.True + a.StaticScore.Delay.True
		llmWhenFP += a.StaticScore.Cap.FP + a.StaticScore.Delay.FP
	}
	if llmWhen+llmWhenFP <= dynWhen+dynWhenFP {
		t.Errorf("LLM should report more WHEN bugs (%d) than unit testing (%d)",
			llmWhen+llmWhenFP, dynWhen+dynWhenFP)
	}
	if llmWhenFP <= dynWhenFP {
		t.Errorf("LLM should have more FPs (%d) than unit testing (%d)", llmWhenFP, dynWhenFP)
	}
}

// TestShapeTable5 checks HBase has the most identified structures and that
// tested never exceeds identified.
func TestShapeTable5(t *testing.T) {
	e := sharedEval(t)
	maxApp, maxN := "", 0
	for _, a := range e.Apps {
		if a.Dyn.StructuresTested > a.Dyn.StructuresTotal {
			t.Errorf("%s: tested %d > identified %d", a.App.Code, a.Dyn.StructuresTested, a.Dyn.StructuresTotal)
		}
		if a.Dyn.StructuresTotal > maxN {
			maxN, maxApp = a.Dyn.StructuresTotal, a.App.Code
		}
	}
	if maxApp != "HB" {
		t.Errorf("HBase should have the most structures (got %s with %d)", maxApp, maxN)
	}
}

// TestShapeTable6 checks planning strictly reduces runs for every app.
func TestShapeTable6(t *testing.T) {
	e := sharedEval(t)
	for _, a := range e.Apps {
		if a.Dyn.PlannedRuns >= a.Dyn.NaiveRuns {
			t.Errorf("%s: planned %d !< naive %d", a.App.Code, a.Dyn.PlannedRuns, a.Dyn.NaiveRuns)
		}
	}
}

// TestShapeFigure3 checks the overlap structure: both workflows find true
// bugs, they overlap, and each finds bugs the other misses.
func TestShapeFigure3(t *testing.T) {
	e := sharedEval(t)
	dyn, st := e.TrueBugKeys()
	overlap, dynOnly, stOnly := 0, 0, 0
	for k := range dyn {
		if st[k] {
			overlap++
		} else {
			dynOnly++
		}
	}
	for k := range st {
		if !dyn[k] {
			stOnly++
		}
	}
	if overlap == 0 || dynOnly == 0 || stOnly == 0 {
		t.Errorf("overlap=%d dynOnly=%d staticOnly=%d; all must be positive", overlap, dynOnly, stOnly)
	}
	if len(st) <= len(dyn) {
		t.Errorf("static (%d) should find more true bugs than dynamic (%d), as in the paper", len(st), len(dyn))
	}
}

// TestShapeIF checks the retry-ratio analysis: mostly true reports with
// exactly the boolean-flag FP the paper describes.
func TestShapeIF(t *testing.T) {
	e := sharedEval(t)
	if e.IFScore.True < 5 {
		t.Errorf("IF true = %d, want the seeded outliers found", e.IFScore.True)
	}
	if e.IFScore.FP != 1 {
		t.Errorf("IF FPs = %d, want exactly the CommitWithRetry flag-flow FP", e.IFScore.FP)
	}
	foundFNF := false
	for _, r := range e.IFReports {
		if r.Exception == "FileNotFoundException" && r.Coordinator == "mapreduce.OutputCommitter.CommitWithRetry" {
			foundFNF = true
		}
	}
	if !foundFNF {
		t.Error("the FileNotFoundException boolean-flag FP (§4.3) did not reproduce")
	}
}

// TestShapeFigure4 checks identification: structural analysis covers most
// loops, finds no non-loop structures, and the LLM covers non-loop retry.
func TestShapeFigure4(t *testing.T) {
	e := sharedEval(t)
	total := map[meta.Mechanism][3]int{}
	for _, a := range e.Apps {
		bd := BreakdownIdentification(a)
		for m, c := range bd.ByMechanism {
			tt := total[m]
			tt[0] += c[0]
			tt[1] += c[1]
			tt[2] += c[2]
			total[m] = tt
		}
	}
	if total[meta.Queue][0] != 0 || total[meta.StateMachine][0] != 0 {
		t.Errorf("structural analysis must not find non-loop retry: %v", total)
	}
	if total[meta.Queue][1]+total[meta.Queue][2] == 0 {
		t.Error("LLM should identify queue retry")
	}
	if total[meta.StateMachine][1]+total[meta.StateMachine][2] == 0 {
		t.Error("LLM should identify state-machine retry")
	}
	loops := total[meta.Loop]
	loopSum := loops[0] + loops[1] + loops[2]
	codeqlShare := float64(loops[0]+loops[2]) / float64(loopSum)
	if codeqlShare < 0.75 {
		t.Errorf("structural analysis should find most loops (got %.0f%%, paper >85%%)", codeqlShare*100)
	}
	if loops[0] == 0 {
		t.Error("large-file LLM misses should leave some loops CodeQL-only")
	}
}

// TestAblationKeywordFilter checks the filter prunes a meaningful fraction.
func TestAblationKeywordFilter(t *testing.T) {
	e := sharedEval(t)
	cand, kw := 0, 0
	for _, a := range e.Apps {
		cand += a.ID.CandidateLoops
		kw += a.ID.KeywordedLoops
	}
	if float64(cand)/float64(kw) < 1.5 {
		t.Errorf("candidates/keyworded = %d/%d; the filter should prune substantially (paper 3.5x)", cand, kw)
	}
}

// TestRenderersNonEmpty smoke-tests every table renderer.
func TestRenderersNonEmpty(t *testing.T) {
	e := sharedEval(t)
	for name, out := range map[string]string{
		"t1": Table1(), "t2": Table2(), "study": StudyStats(),
		"t3": e.Table3(), "t4": e.Table4(), "t5": e.Table5(), "t6": e.Table6(),
		"f3": e.Figure3(), "f4": e.Figure4(),
		"cost": e.CostReport(), "abl": e.AblationKeywordFilter(), "if": e.IFReportText(),
	} {
		if len(strings.TrimSpace(out)) == 0 {
			t.Errorf("%s rendered empty", name)
		}
	}
}

// TestScoreDynamicClassification unit-tests the scorer directly.
func TestScoreDynamicClassification(t *testing.T) {
	app, _ := corpus.ByCode("HD")
	scores := ScoreDynamic(app, []oracle.Report{
		{Kind: oracle.MissingCap, Coordinator: "hdfs.EditLogTailer.CatchUp"},        // true
		{Kind: oracle.MissingCap, Coordinator: "hdfs.Checkpointer.UploadImage"},     // FP (harness)
		{Kind: oracle.MissingDelay, Coordinator: "hdfs.DataStreamer.SetupPipeline"}, // true
		{Kind: oracle.How, Coordinator: "hdfs.DFSInputStream.ReadBlock"},            // true
		{Kind: oracle.How, Coordinator: "hdfs.WebFS.UploadChunked"},                 // FP (wrap)
		{Kind: oracle.MissingDelay, Coordinator: "not.in.manifest"},                 // FP
	})
	if scores.Cap.True != 1 || scores.Cap.FP != 1 {
		t.Errorf("cap = %+v", scores.Cap)
	}
	if scores.Delay.True != 1 || scores.Delay.FP != 1 {
		t.Errorf("delay = %+v", scores.Delay)
	}
	if scores.How.True != 1 || scores.How.FP != 1 {
		t.Errorf("how = %+v", scores.How)
	}
}

func TestScoreCell(t *testing.T) {
	if (Score{}).Cell() != "-" {
		t.Error("empty cell should render as dash")
	}
	if (Score{True: 3, FP: 1}).Cell() != "4_1" {
		t.Errorf("cell = %s", (Score{True: 3, FP: 1}).Cell())
	}
}
