package evaluation

import (
	"fmt"
	"sort"
	"strings"

	"wasabi/internal/apps/meta"
	"wasabi/internal/sast"
	"wasabi/internal/study"
)

// appOrder is the evaluation column order of Tables 3–6.
var appOrder = []string{"HA", "HD", "MA", "YA", "HB", "HI", "CA", "EL"}

func (ev *Evaluation) byCode() map[string]AppResult {
	out := make(map[string]AppResult, len(ev.Apps))
	for _, a := range ev.Apps {
		out[a.App.Code] = a
	}
	return out
}

// Table1 renders the studied applications (study data; identical to the
// paper, since it is input not measurement).
func Table1() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: Applications included in our study\n")
	fmt.Fprintf(&b, "%-15s %-28s %6s %5s\n", "Application", "Category", "Stars", "Bugs")
	counts := study.CountByApp(study.Issues())
	for _, a := range study.Applications() {
		fmt.Fprintf(&b, "%-15s %-28s %5dK %5d\n", a.Name, a.Category, a.StarsK, counts[a.Name])
	}
	return b.String()
}

// Table2 renders the root-cause taxonomy of the 70 studied issues.
func Table2() string {
	var b strings.Builder
	issues := study.Issues()
	cat := study.CountByCategory(issues)
	fmt.Fprintf(&b, "Table 2: Root causes of retry bugs\n")
	fmt.Fprintf(&b, "IF retry should be performed\n")
	fmt.Fprintf(&b, "  - Wrong retry policy                  %3d\n", cat[study.WrongPolicy])
	fmt.Fprintf(&b, "  - Missing or disabled retry mechanism %3d\n", cat[study.MissingMechanism])
	fmt.Fprintf(&b, "WHEN retry should be performed\n")
	fmt.Fprintf(&b, "  - Delay problem                       %3d\n", cat[study.DelayProblem])
	fmt.Fprintf(&b, "  - Cap problem                         %3d\n", cat[study.CapProblem])
	fmt.Fprintf(&b, "HOW to execute retry\n")
	fmt.Fprintf(&b, "  - Improper state reset                %3d\n", cat[study.StateReset])
	fmt.Fprintf(&b, "  - Broken/raced job tracking           %3d\n", cat[study.JobTracking])
	fmt.Fprintf(&b, "  - Other                               %3d\n", cat[study.Other])
	fmt.Fprintf(&b, "Total                                   %3d\n", len(issues))
	return b.String()
}

// StudyStats renders the §2.5 statistics.
func StudyStats() string {
	var b strings.Builder
	issues := study.Issues()
	sev := study.CountBySeverity(issues)
	mech := study.CountByMechanism(issues)
	trig := study.CountByTrigger(issues)
	n := float64(len(issues))
	fmt.Fprintf(&b, "Study statistics (section 2.5)\n")
	fmt.Fprintf(&b, "severity: blocker %.0f%%, critical %.0f%%, major %.0f%%, minor %.0f%%, unlabeled %.0f%%\n",
		float64(sev[study.Blocker])/n*100, float64(sev[study.Critical])/n*100,
		float64(sev[study.Major])/n*100, float64(sev[study.Minor])/n*100,
		float64(sev[study.Unlabeled])/n*100)
	fmt.Fprintf(&b, "mechanism: loop %.0f%%, queue re-enqueue %.0f%%, state machine %.0f%%\n",
		float64(mech[study.Loop])/n*100, float64(mech[study.Queue])/n*100,
		float64(mech[study.StateMachine])/n*100)
	fmt.Fprintf(&b, "triggers: exceptions %.0f%%, error codes %.0f%%\n",
		float64(trig[study.Exception])/n*100, float64(trig[study.ErrorCode])/n*100)
	fmt.Fprintf(&b, "regression tests added with fixes: %d/%d\n",
		study.RegressionTested(issues), len(issues))
	return b.String()
}

// renderScoresTable renders a Table 3/4 style grid from per-app scores.
func renderScoresTable(title string, rows map[string]AppScores, withHow bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "(cells are reports_falsePositives)\n")
	fmt.Fprintf(&b, "%-26s", "Retry Bug Type")
	for _, app := range appOrder {
		fmt.Fprintf(&b, "%8s", app)
	}
	fmt.Fprintf(&b, "%8s\n", "Total")

	line := func(label string, get func(AppScores) Score) {
		fmt.Fprintf(&b, "%-26s", label)
		var total Score
		for _, app := range appOrder {
			s := get(rows[app])
			total.Add(s)
			fmt.Fprintf(&b, "%8s", s.Cell())
		}
		fmt.Fprintf(&b, "%8s\n", total.Cell())
	}
	line("WHEN bugs: missing cap", func(a AppScores) Score { return a.Cap })
	line("WHEN bugs: missing delay", func(a AppScores) Score { return a.Delay })
	if withHow {
		line("HOW retry bugs", func(a AppScores) Score { return a.How })
	}
	line("Total", func(a AppScores) Score { return a.Total() })
	return b.String()
}

// Table3 renders the repurposed-unit-testing results.
func (ev *Evaluation) Table3() string {
	rows := map[string]AppScores{}
	for _, a := range ev.Apps {
		rows[a.App.Code] = a.DynScores
	}
	return renderScoresTable("Table 3: Retry bugs reported by WASABI unit testing", rows, true)
}

// Table4 renders the LLM static-detector results.
func (ev *Evaluation) Table4() string {
	rows := map[string]AppScores{}
	for _, a := range ev.Apps {
		rows[a.App.Code] = a.StaticScore
	}
	return renderScoresTable("Table 4: Retry bugs reported by WASABI GPT-4 detector (simulated)", rows, false)
}

// Table5 renders identified vs dynamically covered retry structures.
func (ev *Evaluation) Table5() string {
	var b strings.Builder
	by := ev.byCode()
	fmt.Fprintf(&b, "Table 5: Retry code structures identified and covered in unit tests\n")
	fmt.Fprintf(&b, "%-12s", "App.")
	for _, app := range appOrder {
		fmt.Fprintf(&b, "%6s", app)
	}
	fmt.Fprintf(&b, "\n%-12s", "Identified")
	for _, app := range appOrder {
		fmt.Fprintf(&b, "%6d", by[app].Dyn.StructuresTotal)
	}
	fmt.Fprintf(&b, "\n%-12s", "Tested")
	for _, app := range appOrder {
		fmt.Fprintf(&b, "%6d", by[app].Dyn.StructuresTested)
	}
	fmt.Fprintf(&b, "\n")
	return b.String()
}

// Table6 renders unit-test counts and the planning reduction.
func (ev *Evaluation) Table6() string {
	var b strings.Builder
	by := ev.byCode()
	fmt.Fprintf(&b, "Table 6: Details of WASABI unit testing\n")
	fmt.Fprintf(&b, "%-6s %8s %12s %14s %14s %10s\n",
		"App.", "Total", "CoverRetry", "w/o planning", "w/ planning", "reduction")
	for _, app := range appOrder {
		d := by[app].Dyn
		red := "-"
		if d.PlannedRuns > 0 {
			red = fmt.Sprintf("%.1fx", float64(d.NaiveRuns)/float64(d.PlannedRuns))
		}
		fmt.Fprintf(&b, "%-6s %8d %12d %14d %14d %10s\n",
			app, d.TestsTotal, d.TestsCoveringRetry, d.NaiveRuns, d.PlannedRuns, red)
	}
	return b.String()
}

// Figure3 renders the bug-overlap Venn data.
func (ev *Evaluation) Figure3() string {
	dyn, st := ev.TrueBugKeys()
	overlap := 0
	for k := range dyn {
		if st[k] {
			overlap++
		}
	}
	union := len(dyn) + len(st) - overlap
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3: True bugs found by WASABI unit testing and static checking\n")
	fmt.Fprintf(&b, "unit testing:    %d true bugs\n", len(dyn))
	fmt.Fprintf(&b, "static checking: %d true bugs (LLM WHEN + IF ratio)\n", len(st))
	fmt.Fprintf(&b, "found by both:   %d\n", overlap)
	fmt.Fprintf(&b, "total distinct:  %d\n", union)
	return b.String()
}

// Figure4 renders the identification breakdown by mechanism & technique.
func (ev *Evaluation) Figure4() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4: Retry code structures identified\n")
	total := map[meta.Mechanism][3]int{}
	missed, spurious, totalGT := 0, 0, 0
	for _, a := range ev.Apps {
		bd := BreakdownIdentification(a)
		for m, c := range bd.ByMechanism {
			t := total[m]
			t[0] += c[0]
			t[1] += c[1]
			t[2] += c[2]
			total[m] = t
		}
		missed += bd.Missed
		spurious += bd.SpuriousLLM
		totalGT += len(a.App.Manifest)
	}
	mechs := []meta.Mechanism{meta.Loop, meta.Queue, meta.StateMachine}
	fmt.Fprintf(&b, "%-14s %12s %9s %6s %7s\n", "mechanism", "codeql-only", "llm-only", "both", "total")
	identified := 0
	for _, m := range mechs {
		c := total[m]
		sum := c[0] + c[1] + c[2]
		identified += sum
		fmt.Fprintf(&b, "%-14s %12d %9d %6d %7d\n", m, c[0], c[1], c[2], sum)
	}
	loops := total[meta.Loop]
	loopSum := loops[0] + loops[1] + loops[2]
	fmt.Fprintf(&b, "identified %d of %d ground-truth structures (%d missed by both)\n",
		identified, totalGT, missed)
	if loopSum > 0 {
		fmt.Fprintf(&b, "structural analysis found %.0f%% of identified loops; the LLM missed %d loops (large files)\n",
			float64(loops[0]+loops[2])/float64(loopSum)*100, loops[0])
	}
	fmt.Fprintf(&b, "non-loop structures found by structural analysis: 0 (by design)\n")
	fmt.Fprintf(&b, "spurious LLM identifications (non-retry code): %d\n", spurious)
	return b.String()
}

// CostReport renders the §4.3 cost accounting.
func (ev *Evaluation) CostReport() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Cost of WASABI (section 4.3)\n")
	totalNaive, totalPlanned := 0, 0
	for _, a := range ev.Apps {
		totalNaive += a.Dyn.NaiveRuns
		totalPlanned += a.Dyn.PlannedRuns
	}
	fmt.Fprintf(&b, "fault-injection runs: %d naive vs %d planned (%.1fx reduction)\n",
		totalNaive, totalPlanned, float64(totalNaive)/float64(totalPlanned))
	fmt.Fprintf(&b, "simulated GPT-4: %d API calls, %.1fK tokens, $%.2f total (~$%.2f per app)\n",
		ev.Usage.Calls, float64(ev.Usage.TokensIn)/1000, ev.Usage.CostUSD,
		ev.Usage.CostUSD/float64(len(ev.Apps)))
	return b.String()
}

// AblationKeywordFilter renders the §4.4 keyword-filter ablation.
func (ev *Evaluation) AblationKeywordFilter() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: structural loop candidates without the retry-keyword filter (section 4.4)\n")
	totalCand, totalKw := 0, 0
	for _, a := range ev.Apps {
		totalCand += a.ID.CandidateLoops
		totalKw += a.ID.KeywordedLoops
		fmt.Fprintf(&b, "%-4s candidates %3d -> keyworded %3d\n", a.App.Code, a.ID.CandidateLoops, a.ID.KeywordedLoops)
	}
	fmt.Fprintf(&b, "total: %d vs %d (%.1fx more loops without the filter)\n",
		totalCand, totalKw, float64(totalCand)/float64(totalKw))
	return b.String()
}

// AblationOracles renders the §4.4 oracle ablation: without the three
// retry-specific oracles, the only signal is a crashed test run — which
// misses every WHEN bug whose injected fault heals (the run passes) and
// drowns the rest in re-thrown-injected crashes.
func (ev *Evaluation) AblationOracles() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: without the retry test oracles (section 4.4)\n")
	crashed, whenTrue, howReports := 0, 0, 0
	for _, a := range ev.Apps {
		crashed += a.Dyn.InjectionRunsFailed
		whenTrue += a.DynScores.Cap.True + a.DynScores.Delay.True
		howReports += a.DynScores.How.Reports()
	}
	fmt.Fprintf(&b, "injection runs that crashed: %d — without oracles these would be the only signal,\n", crashed)
	fmt.Fprintf(&b, "and most are the application correctly re-throwing the injected exception\n")
	fmt.Fprintf(&b, "(filtered by the different-exception oracle; only %d are genuine HOW reports)\n", howReports)
	fmt.Fprintf(&b, "WHEN bugs whose detection depends entirely on oracles over PASSING runs: %d\n", whenTrue)
	fmt.Fprintf(&b, "(a missing-cap/missing-delay run passes once the fault heals, so no crash ever flags it)\n")
	return b.String()
}

// IFReportText renders the retry-ratio outliers.
func (ev *Evaluation) IFReportText() string {
	var b strings.Builder
	fmt.Fprintf(&b, "IF-bug detection (retry-ratio outliers, section 3.2.2)\n")
	reports := append([]sast.IFReport(nil), ev.IFReports...)
	sort.Slice(reports, func(i, j int) bool { return reports[i].Coordinator < reports[j].Coordinator })
	for _, r := range reports {
		verb := "not retried"
		if r.Retried {
			verb = "retried"
		}
		fmt.Fprintf(&b, "  %-28s %s in %s (%s)\n", r.Exception, verb, r.Coordinator, r.Ratio.String())
	}
	fmt.Fprintf(&b, "reports: %d (%d true, %d FP)\n", ev.IFScore.Reports(), ev.IFScore.True, ev.IFScore.FP)
	return b.String()
}
