package report

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"wasabi/internal/apps/corpus"
	"wasabi/internal/core"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestGoldenDocument pins the canonical JSON document for one app,
// byte for byte. Any schema or ordering drift shows up as a golden
// diff; regenerate deliberately with `go test ./internal/report
// -run Golden -update` and bump Schema when fields change.
func TestGoldenDocument(t *testing.T) {
	app, err := corpus.ByCode("HD")
	if err != nil {
		t.Fatal(err)
	}
	w := core.New(core.DefaultOptions())
	cr, err := w.RunCorpus([]corpus.App{app})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Marshal(Build(cr))
	if err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "report_HD.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("document drifted from golden file %s (regenerate with -update if intended)\ngot %d bytes, want %d", golden, len(got), len(want))
	}

	var doc Document
	if err := json.Unmarshal(got, &doc); err != nil {
		t.Fatalf("document does not round-trip: %v", err)
	}
	if doc.Schema != Schema {
		t.Fatalf("schema = %q, want %q", doc.Schema, Schema)
	}
	if len(doc.Apps) != 1 || doc.Apps[0].Code != "HD" {
		t.Fatalf("apps = %+v", doc.Apps)
	}
	if doc.Usage.TokensIn == 0 {
		t.Fatal("attributed usage missing from document")
	}
}

// TestDocumentStableAcrossWorkers marshals the same corpus at different
// worker counts and asserts identical bytes — the determinism the
// service's cache contract builds on.
func TestDocumentStableAcrossWorkers(t *testing.T) {
	app, err := corpus.ByCode("HB")
	if err != nil {
		t.Fatal(err)
	}
	marshal := func(workers int) []byte {
		opts := core.DefaultOptions()
		opts.Workers = workers
		cr, err := core.New(opts).RunCorpus([]corpus.App{app})
		if err != nil {
			t.Fatal(err)
		}
		data, err := Marshal(Build(cr))
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	if !bytes.Equal(marshal(1), marshal(4)) {
		t.Fatal("document bytes vary with worker count")
	}
}

// TestMarshalApp pins the single-app wrapper the service's
// /v1/reports/{app} endpoint serves.
func TestMarshalApp(t *testing.T) {
	app, err := corpus.ByCode("HD")
	if err != nil {
		t.Fatal(err)
	}
	cr, err := core.New(core.DefaultOptions()).RunCorpus([]corpus.App{app})
	if err != nil {
		t.Fatal(err)
	}
	doc := Build(cr)
	data, err := MarshalApp(doc.Apps[0])
	if err != nil {
		t.Fatal(err)
	}
	var wrapped struct {
		Schema string `json:"schema"`
		App    App    `json:"app"`
	}
	if err := json.Unmarshal(data, &wrapped); err != nil {
		t.Fatal(err)
	}
	if wrapped.Schema != Schema || wrapped.App.Code != "HD" {
		t.Fatalf("wrapper = %q / %q", wrapped.Schema, wrapped.App.Code)
	}
}
