// Package report renders a pipeline run as a canonical, deterministic
// JSON document — the machine-readable analogue of cmd/wasabi's text
// output and the response body WASABI-as-a-service returns (§4's
// evaluation artifacts, reproducible byte for byte).
//
// Determinism is structural, not accidental: the document contains only
// slices (never maps with mixed iteration order), every slice is either
// produced in canonical order by internal/core's reducers or explicitly
// sorted here, struct fields marshal in declaration order, and the
// schema carries an explicit version. Two runs over identical inputs at
// any Options.Workers setting — including a cold run and a warm
// cache-served run — therefore marshal to identical bytes, which the
// golden-file test pins.
package report

import (
	"encoding/json"
	"fmt"

	"wasabi/internal/core"
	"wasabi/internal/llm"
	"wasabi/internal/oracle"
)

// Schema identifies the document format. Bump on any field change.
const Schema = "wasabi-report/v1"

// Document is one full corpus (or sub-corpus) run.
type Document struct {
	Schema string `json:"schema"`
	// Apps holds the per-application reports in input order.
	Apps []App `json:"apps"`
	// IFRatios and IFBugs are the corpus-wide retry-ratio analysis over
	// the run's applications (§3.2.2).
	IFRatios []Ratio `json:"if_ratios"`
	IFBugs   []Bug   `json:"if_bugs"`
	// Usage is the LLM traffic attributable to the run's reviews. It is
	// an attribution, summed from per-file review costs, so a warm
	// cache-served run reports the same usage as the cold run that paid
	// for it; fresh spend is an observability fact (llm_tokens_in_total),
	// not a report field.
	Usage Usage `json:"llm_usage"`
	// Degraded marks a run that hit an LLM backend outage: LLM-dependent
	// findings under-report by construction.
	Degraded bool `json:"degraded"`
}

// App is one application's report (the JSON shape of the facade's
// wasabi.Report).
type App struct {
	Code       string      `json:"code"`
	Name       string      `json:"name"`
	Structures []Structure `json:"structures"`
	// Bugs are the deduplicated findings of the dynamic and static-LLM
	// workflows, dynamic first, each block in canonical order.
	Bugs     []Bug    `json:"bugs"`
	Coverage Coverage `json:"coverage"`
	// TruncatedFiles are files too large for the LLM (§4.2 misses).
	TruncatedFiles []string `json:"truncated_files,omitempty"`
	// DegradedFiles are files whose LLM review was lost to backend
	// faults (static-only fallback), with reasons.
	DegradedFiles []DegradedFile `json:"degraded_files,omitempty"`
}

// Structure is one identified retry structure.
type Structure struct {
	Coordinator string `json:"coordinator"`
	File        string `json:"file"`
	Mechanism   string `json:"mechanism"`
	ByCodeQL    bool   `json:"found_by_codeql"`
	ByLLM       bool   `json:"found_by_llm"`
	Triplets    int    `json:"injectable_triplets"`
}

// Bug is one detector finding.
type Bug struct {
	// Workflow is "dynamic", "static-llm", or "static-if".
	Workflow string `json:"workflow"`
	// Kind is "missing-cap", "missing-delay", "how", or "wrong-policy".
	Kind        string `json:"kind"`
	Coordinator string `json:"coordinator"`
	Details     string `json:"details"`
}

// Coverage is the dynamic workflow's coverage and cost statistics.
type Coverage struct {
	TestsTotal         int `json:"tests_total"`
	TestsCoveringRetry int `json:"tests_covering_retry"`
	StructuresTotal    int `json:"structures_total"`
	StructuresTested   int `json:"structures_tested"`
	PlanEntries        int `json:"plan_entries"`
	PlannedRuns        int `json:"planned_runs"`
	NaiveRuns          int `json:"naive_runs"`
	RunsFailed         int `json:"injection_runs_failed"`
}

// DegradedFile mirrors core.DegradedFile.
type DegradedFile struct {
	File   string `json:"file"`
	Reason string `json:"reason"`
}

// Ratio is one corpus-wide exception retry ratio.
type Ratio struct {
	Exception string `json:"exception"`
	Retried   int    `json:"retried"`
	Total     int    `json:"total"`
}

// Usage mirrors llm.Usage.
type Usage struct {
	Calls    int     `json:"calls"`
	TokensIn int64   `json:"tokens_in"`
	CostUSD  float64 `json:"cost_usd"`
}

// Build converts a finished corpus run into the canonical document.
func Build(cr *core.CorpusRun) *Document {
	doc := &Document{
		Schema:   Schema,
		Apps:     make([]App, 0, len(cr.Apps)),
		IFRatios: make([]Ratio, 0, len(cr.IFRatios)),
		IFBugs:   make([]Bug, 0, len(cr.IFReports)),
		Usage:    usageOf(cr.Usage),
		Degraded: cr.Degraded,
	}
	for _, ar := range cr.Apps {
		doc.Apps = append(doc.Apps, buildApp(ar))
	}
	for _, r := range cr.IFRatios {
		doc.IFRatios = append(doc.IFRatios, Ratio{Exception: r.Exception, Retried: r.Retried, Total: r.Total})
	}
	for _, r := range cr.IFReports {
		verb := "never retried here though usually retried"
		if r.Retried {
			verb = "retried here though usually not"
		}
		doc.IFBugs = append(doc.IFBugs, Bug{
			Workflow:    "static-if",
			Kind:        "wrong-policy",
			Coordinator: r.Coordinator,
			Details:     fmt.Sprintf("%s %s (%s)", r.Exception, verb, r.Ratio.String()),
		})
	}
	return doc
}

// buildApp converts one application's artifacts.
func buildApp(ar core.AppRun) App {
	a := App{
		Code: ar.App.Code,
		Name: ar.App.Name,
		Coverage: Coverage{
			TestsTotal:         ar.Dyn.TestsTotal,
			TestsCoveringRetry: ar.Dyn.TestsCoveringRetry,
			StructuresTotal:    ar.Dyn.StructuresTotal,
			StructuresTested:   ar.Dyn.StructuresTested,
			PlanEntries:        ar.Dyn.PlanEntries,
			PlannedRuns:        ar.Dyn.PlannedRuns,
			NaiveRuns:          ar.Dyn.NaiveRuns,
			RunsFailed:         ar.Dyn.InjectionRunsFailed,
		},
		TruncatedFiles: append([]string(nil), ar.ID.TruncatedFiles...),
	}
	for _, s := range ar.ID.Structures {
		a.Structures = append(a.Structures, Structure{
			Coordinator: s.Coordinator,
			File:        s.File,
			Mechanism:   s.Mechanism,
			ByCodeQL:    s.FoundBy.CodeQL,
			ByLLM:       s.FoundBy.LLM,
			Triplets:    len(s.Triplets),
		})
	}
	dyn := append([]oracle.Report(nil), ar.Dyn.Reports...)
	core.SortReports(dyn)
	for _, r := range dyn {
		a.Bugs = append(a.Bugs, Bug{
			Workflow: "dynamic", Kind: string(r.Kind),
			Coordinator: r.Coordinator, Details: r.Details,
		})
	}
	for _, r := range ar.Static.WhenReports {
		a.Bugs = append(a.Bugs, Bug{
			Workflow: "static-llm", Kind: r.Kind,
			Coordinator: r.Coordinator, Details: "detected from source (" + r.File + ")",
		})
	}
	for _, d := range ar.ID.Degraded {
		a.DegradedFiles = append(a.DegradedFiles, DegradedFile{File: d.File, Reason: d.Reason})
	}
	return a
}

// usageOf converts llm.Usage.
func usageOf(u llm.Usage) Usage {
	return Usage{Calls: u.Calls, TokensIn: u.TokensIn, CostUSD: u.CostUSD}
}

// Marshal renders the document as indented JSON with a trailing newline
// — the exact bytes the service serves and cmd/wasabi -json prints.
func Marshal(doc *Document) ([]byte, error) {
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("report: marshal: %w", err)
	}
	return append(data, '\n'), nil
}

// MarshalApp renders one application section as indented JSON with a
// trailing newline (the GET /v1/reports/{app} body).
func MarshalApp(app App) ([]byte, error) {
	data, err := json.MarshalIndent(struct {
		Schema string `json:"schema"`
		App    App    `json:"app"`
	}{Schema: Schema, App: app}, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("report: marshal app: %w", err)
	}
	return append(data, '\n'), nil
}
