package fault

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"

	"wasabi/internal/trace"
)

// concurrentRetried is a retried method driven from many goroutines.
func concurrentRetried(ctx context.Context) error {
	if err := Hook(ctx); err != nil {
		return err
	}
	return nil
}

// concurrentCoordinator retries until success, counting throws.
func concurrentCoordinator(ctx context.Context, throws *int64) {
	for {
		if err := concurrentRetried(ctx); err != nil {
			atomic.AddInt64(throws, 1)
			continue
		}
		return
	}
}

// TestConcurrentInjectionRespectsK drives one armed rule from eight
// goroutines: exactly K exceptions must be thrown in total, with no data
// race (run under -race in CI).
func TestConcurrentInjectionRespectsK(t *testing.T) {
	const K = 1000
	in := NewInjector([]Rule{{
		Loc: Location{
			Coordinator: "fault.concurrentCoordinator",
			Retried:     "fault.concurrentRetried",
			Exception:   "ConnectException",
		},
		K: K,
	}})
	run := trace.NewRun("t")
	ctx := With(trace.With(context.Background(), run), in)

	var throws int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			concurrentCoordinator(ctx, &throws)
		}()
	}
	wg.Wait()

	if throws != K {
		t.Errorf("throws = %d, want exactly K=%d", throws, K)
	}
	injections := 0
	for _, e := range run.Events() {
		if e.Kind == trace.KindInjection {
			injections++
		}
	}
	if injections != K {
		t.Errorf("trace injections = %d, want %d", injections, K)
	}
}

// TestConcurrentObserverCoverage checks coverage recording under
// concurrent hooks.
func TestConcurrentObserverCoverage(t *testing.T) {
	in := NewObserver([]Location{{Retried: "fault.concurrentRetried"}})
	run := trace.NewRun("t")
	ctx := With(trace.With(context.Background(), run), in)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var n int64
			concurrentCoordinator(ctx, &n)
		}()
	}
	wg.Wait()
	if got := len(in.Covered()); got != 1 {
		t.Errorf("covered = %d, want exactly one (coordinator, retried) pair", got)
	}
}
