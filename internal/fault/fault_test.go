package fault

import (
	"context"
	"testing"

	"wasabi/internal/errmodel"
	"wasabi/internal/trace"
)

// fakeRetried simulates a retried method: hook at entry, success otherwise.
func fakeRetried(ctx context.Context) error {
	if err := Hook(ctx); err != nil {
		return err
	}
	return nil
}

// fakeCoordinator simulates a loop-based coordinator retrying fakeRetried.
func fakeCoordinator(ctx context.Context, attempts int) (errs int) {
	for i := 0; i < attempts; i++ {
		if err := fakeRetried(ctx); err != nil {
			errs++
			continue
		}
		return errs
	}
	return errs
}

// otherCoordinator calls the same retried method from a different caller.
func otherCoordinator(ctx context.Context) error {
	return fakeRetried(ctx)
}

func loc(exc string) Location {
	return Location{
		Coordinator: "fault.fakeCoordinator",
		Retried:     "fault.fakeRetried",
		Exception:   exc,
	}
}

func injectCtx(in *Injector) (context.Context, *trace.Run) {
	r := trace.NewRun("t")
	ctx := trace.With(context.Background(), r)
	return With(ctx, in), r
}

func TestHookWithoutInjectorIsNil(t *testing.T) {
	if err := fakeRetried(context.Background()); err != nil {
		t.Errorf("err = %v", err)
	}
}

func TestInjectThrowsUpToK(t *testing.T) {
	in := NewInjector([]Rule{{Loc: loc("ConnectException"), K: 3}})
	ctx, _ := injectCtx(in)
	errs := fakeCoordinator(ctx, 10)
	if errs != 3 {
		t.Errorf("throws = %d, want 3", errs)
	}
	if got := in.Throws(loc("ConnectException")); got != 3 {
		t.Errorf("Throws = %d, want 3", got)
	}
}

func TestInjectedExceptionClassAndFlag(t *testing.T) {
	in := NewInjector([]Rule{{Loc: loc("SocketTimeoutException"), K: 1}})
	ctx, _ := injectCtx(in)
	err := func() error { // inline coordinator named differently: should NOT match
		return fakeRetried(ctx)
	}()
	if err != nil {
		t.Fatalf("anonymous caller should not match coordinator, got %v", err)
	}
	// Now through the real coordinator.
	if errs := fakeCoordinator(ctx, 5); errs != 1 {
		t.Fatalf("throws = %d, want 1", errs)
	}
}

func TestInjectionExceptionProperties(t *testing.T) {
	in := NewInjector([]Rule{{Loc: loc("ConnectException"), K: 1}})
	ctx, _ := injectCtx(in)
	var got error
	for i := 0; i < 3; i++ {
		if err := fakeRetried(ctx); err != nil {
			got = err
		}
	}
	// fakeRetried called directly from the test: test function is not the
	// coordinator, so nothing should throw.
	if got != nil {
		t.Fatalf("direct call threw %v", got)
	}
	if errs := fakeCoordinator(ctx, 3); errs != 1 {
		t.Fatal("coordinator path should throw once")
	}
}

func TestInjectionEventLogged(t *testing.T) {
	in := NewInjector([]Rule{{Loc: loc("ConnectException"), K: 2}})
	ctx, r := injectCtx(in)
	fakeCoordinator(ctx, 10)
	var injections, suppressed int
	for _, e := range r.Events() {
		switch e.Kind {
		case trace.KindInjection:
			injections++
			if e.Callee != "fault.fakeRetried" || e.Caller != "fault.fakeCoordinator" {
				t.Errorf("bad event attribution: %+v", e)
			}
		case trace.KindInjectionSuppressed:
			suppressed++
		}
	}
	if injections != 2 {
		t.Errorf("injection events = %d, want 2", injections)
	}
	if suppressed != 1 {
		t.Errorf("suppressed events = %d, want 1 (the healing call)", suppressed)
	}
}

func TestInjectionCountsMonotonic(t *testing.T) {
	in := NewInjector([]Rule{{Loc: loc("ConnectException"), K: 5}})
	ctx, r := injectCtx(in)
	fakeCoordinator(ctx, 100)
	want := 1
	for _, e := range r.Events() {
		if e.Kind == trace.KindInjection {
			if e.Count != want {
				t.Errorf("Count = %d, want %d", e.Count, want)
			}
			want++
		}
	}
}

func TestCallerMismatchDoesNotThrow(t *testing.T) {
	in := NewInjector([]Rule{{Loc: loc("ConnectException"), K: 1}})
	ctx, _ := injectCtx(in)
	if err := otherCoordinator(ctx); err != nil {
		t.Errorf("other coordinator should not trigger injection, got %v", err)
	}
}

func TestTwoRulesDifferentExceptions(t *testing.T) {
	in := NewInjector([]Rule{
		{Loc: loc("ConnectException"), K: 1},
		{Loc: loc("SocketException"), K: 1},
	})
	ctx, _ := injectCtx(in)
	if errs := fakeCoordinator(ctx, 10); errs != 2 {
		t.Errorf("throws = %d, want 2 (one per rule)", errs)
	}
	if in.Throws(loc("ConnectException")) != 1 || in.Throws(loc("SocketException")) != 1 {
		t.Error("each rule must throw exactly K times")
	}
}

func TestObserverRecordsCoverageOnce(t *testing.T) {
	in := NewObserver([]Location{{Retried: "fault.fakeRetried"}})
	ctx, r := injectCtx(in)
	fakeCoordinator(ctx, 3)
	fakeCoordinator(ctx, 3)
	cov := in.Covered()
	if len(cov) != 1 {
		t.Fatalf("covered = %v", cov)
	}
	if cov[0].Coordinator != "fault.fakeCoordinator" || cov[0].Retried != "fault.fakeRetried" {
		t.Errorf("covered = %+v", cov[0])
	}
	// Coverage event appended exactly once despite repeated hits.
	var n int
	for _, e := range r.Events() {
		if e.Kind == trace.KindCoverage {
			n++
		}
	}
	if n != 1 {
		t.Errorf("coverage events = %d, want 1", n)
	}
}

func TestObserverDistinguishesCallers(t *testing.T) {
	in := NewObserver([]Location{{Retried: "fault.fakeRetried"}})
	ctx, _ := injectCtx(in)
	fakeCoordinator(ctx, 1)
	otherCoordinator(ctx)
	if got := len(in.Covered()); got != 2 {
		t.Errorf("covered pairs = %d, want 2 (two distinct coordinators)", got)
	}
}

func TestObserverIgnoresUnwatched(t *testing.T) {
	in := NewObserver([]Location{{Retried: "some.other.method"}})
	ctx, _ := injectCtx(in)
	fakeCoordinator(ctx, 1)
	if len(in.Covered()) != 0 {
		t.Error("unwatched method should not be covered")
	}
}

func TestHookAtMatchesHookSemantics(t *testing.T) {
	// HookAt with explicit names must behave exactly like Hook with the
	// equivalent stack: throw K times, then heal and suppress.
	in := NewInjector([]Rule{{Loc: loc("ConnectException"), K: 3}})
	ctx, r := injectCtx(in)
	var errs int
	for i := 0; i < 10; i++ {
		if err := HookAt(ctx, "fault.fakeCoordinator", "fault.fakeRetried"); err != nil {
			errs++
			exc, ok := err.(*errmodel.Exception)
			if !ok || !exc.Injected || exc.Class != "ConnectException" {
				t.Fatalf("bad injected error: %#v", err)
			}
			continue
		}
		break
	}
	if errs != 3 {
		t.Errorf("throws = %d, want 3", errs)
	}
	var injections, suppressed int
	for _, e := range r.Events() {
		switch e.Kind {
		case trace.KindInjection:
			injections++
			if e.Callee != "fault.fakeRetried" || e.Caller != "fault.fakeCoordinator" {
				t.Errorf("bad event attribution: %+v", e)
			}
		case trace.KindInjectionSuppressed:
			suppressed++
		}
	}
	if injections != 3 || suppressed != 1 {
		t.Errorf("events = %d injected / %d suppressed, want 3/1", injections, suppressed)
	}
}

func TestHookAtCoordinatorMismatch(t *testing.T) {
	in := NewInjector([]Rule{{Loc: loc("ConnectException"), K: 1}})
	ctx, _ := injectCtx(in)
	if err := HookAt(ctx, "fault.someOtherCoordinator", "fault.fakeRetried"); err != nil {
		t.Errorf("mismatched coordinator should not throw, got %v", err)
	}
	if err := HookAt(ctx, "fault.fakeCoordinator", "fault.someOtherRetried"); err != nil {
		t.Errorf("mismatched retried should not throw, got %v", err)
	}
}

func TestHookAtObserveCoverage(t *testing.T) {
	in := NewObserver([]Location{{Retried: "gen001.Fetcher.fetchOnce"}})
	ctx, r := injectCtx(in)
	for i := 0; i < 3; i++ {
		if err := HookAt(ctx, "gen001.Fetcher.Fetch", "gen001.Fetcher.fetchOnce"); err != nil {
			t.Fatalf("observe mode threw: %v", err)
		}
	}
	cov := in.Covered()
	if len(cov) != 1 || cov[0].Coordinator != "gen001.Fetcher.Fetch" {
		t.Fatalf("covered = %+v", cov)
	}
	var n int
	for _, e := range r.Events() {
		if e.Kind == trace.KindCoverage {
			n++
		}
	}
	if n != 1 {
		t.Errorf("coverage events = %d, want 1", n)
	}
}

func TestHookAtWithoutInjectorIsNil(t *testing.T) {
	if err := HookAt(context.Background(), "a.B.c", "a.B.d"); err != nil {
		t.Errorf("err = %v", err)
	}
}

// capturingCoordinator returns the first error observed while retrying.
func capturingCoordinator(ctx context.Context) error {
	var first error
	for i := 0; i < 5; i++ {
		err := fakeRetried(ctx)
		if err == nil {
			return first
		}
		if first == nil {
			first = err
		}
	}
	return first
}

func TestInjectedErrorIsMarked(t *testing.T) {
	in := NewInjector([]Rule{{
		Loc: Location{Coordinator: "fault.capturingCoordinator", Retried: "fault.fakeRetried", Exception: "ConnectException"},
		K:   1,
	}})
	ctx, _ := injectCtx(in)
	captured := capturingCoordinator(ctx)
	if captured == nil {
		t.Fatal("no injection happened")
	}
	exc, ok := captured.(*errmodel.Exception)
	if !ok || !exc.Injected {
		t.Fatalf("injected error not marked: %#v", captured)
	}
	if exc.Class != "ConnectException" {
		t.Errorf("class = %q", exc.Class)
	}
}
