// Package fault is the fault-injection runtime of WASABI's dynamic
// workflow — the reproduction's analogue of the paper's AspectJ weaving
// (§3.1.2).
//
// Corpus methods that can fail call Hook at entry ("weaving by
// convention"). Hook recovers both the callee (the retried method) and its
// caller (the coordinator) from the runtime stack, so injection is keyed on
// the same (coordinator, retried method, exception) triplets as the paper's
// pointcuts. A hook either:
//
//   - in observe mode, records that the retry location was reached (the
//     coverage pass the test planner depends on, §3.1.4);
//   - in inject mode, throws the planned exception if the triplet has
//     thrown fewer than K times, and logs the injection; after K throws the
//     fault "heals" and application code proceeds, mirroring Listing 5.
//
// Every test execution owns a fresh Injector attached to its context, and
// an Injector's internal maps are mutex-protected, so concurrent test runs
// (the parallel plan executor in internal/core) and concurrent goroutines
// within one instrumented test are both safe — no injection state is
// shared between runs.
package fault

import (
	"context"
	"sync"

	"wasabi/internal/errmodel"
	"wasabi/internal/obs"
	"wasabi/internal/trace"
)

// Location identifies a retry location: the call of a retried method from
// a coordinator method, together with the trigger exception class thrown
// there. Names use the corpus convention "app.Type.method".
type Location struct {
	Coordinator string
	Retried     string
	Exception   string
}

// Mode selects the injector behaviour.
type Mode int

const (
	// Observe records coverage of watched retried methods without
	// injecting faults.
	Observe Mode = iota
	// Inject throws exceptions according to the configured rules.
	Inject
)

// Rule arms one injection: throw Location.Exception at Location up to K
// times.
type Rule struct {
	Loc Location
	K   int
}

// Injector is the per-test-run injection state. A fresh Injector is
// attached to the context of every instrumented test execution.
type Injector struct {
	mode Mode
	// reg, when set, receives the fault_injections_total /
	// fault_injections_suppressed_total counters per exception class.
	// Injections are a deterministic function of the plan, so these
	// counters are identical at every worker count.
	reg *obs.Registry

	mu    sync.Mutex
	rules map[string][]*armedRule // retried method -> armed rules
	watch map[string]bool         // observe mode: retried methods to track
	seen  map[Location]bool       // observe mode: coverage observed
	count map[Location]int        // inject mode: throws so far per triplet
	hits  map[Location]int        // inject mode: total hook arrivals per triplet
}

type armedRule struct {
	rule Rule
}

// NewObserver returns an Injector in observe mode that records coverage of
// the given locations' retried methods.
func NewObserver(locs []Location) *Injector {
	in := &Injector{
		mode:  Observe,
		watch: make(map[string]bool, len(locs)),
		seen:  make(map[Location]bool),
	}
	for _, l := range locs {
		in.watch[l.Retried] = true
	}
	return in
}

// NewInjector returns an Injector in inject mode armed with the given
// rules.
func NewInjector(rules []Rule) *Injector {
	in := &Injector{
		mode:  Inject,
		rules: make(map[string][]*armedRule),
		count: make(map[Location]int),
		hits:  make(map[Location]int),
	}
	for _, r := range rules {
		r := r
		in.rules[r.Loc.Retried] = append(in.rules[r.Loc.Retried], &armedRule{rule: r})
	}
	return in
}

// Instrument attaches a metrics registry to the injector (nil is fine)
// and returns the injector for chaining.
func (in *Injector) Instrument(reg *obs.Registry) *Injector {
	in.reg = reg
	return in
}

// Covered returns the locations observed during an observe-mode run. The
// caller recorded is the innermost enclosing function at the hook, which by
// construction is the coordinator containing the call site.
func (in *Injector) Covered() []Location {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]Location, 0, len(in.seen))
	for l := range in.seen {
		out = append(out, l)
	}
	return out
}

// Throws returns how many times the given triplet threw during this run.
func (in *Injector) Throws(loc Location) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.count[loc]
}

type ctxKey struct{}

// With attaches an injector to the context.
func With(ctx context.Context, in *Injector) context.Context {
	return context.WithValue(ctx, ctxKey{}, in)
}

// From extracts the injector attached to ctx, or nil.
func From(ctx context.Context) *Injector {
	in, _ := ctx.Value(ctxKey{}).(*Injector)
	return in
}

// callerWindow is how many stack frames above the retried method are
// searched for the coordinator. Retried methods are sometimes invoked
// through small wrappers or closures (queue processors, state-machine
// executors), which adds intermediate frames, just as AspectJ pointcuts
// see intermediate synthetic frames.
const callerWindow = 5

// Hook is the woven entry point. Corpus methods call it first thing:
//
//	func (r *BlockReader) connect(ctx context.Context) error {
//	    if err := fault.Hook(ctx); err != nil {
//	        return err
//	    }
//	    ...
//	}
//
// The returned error, when non-nil, is an *errmodel.Exception with
// Injected=true of the class the active rule prescribes.
func Hook(ctx context.Context) error {
	in := From(ctx)
	if in == nil {
		return nil
	}
	// Frame 0 is the retried method (our caller); frames 1.. are its
	// callers, the first of which is the coordinator containing the
	// call site.
	stack := trace.Callers(1, callerWindow+1)
	if len(stack) == 0 {
		return nil
	}
	return in.arrive(ctx, stack[0], stack[1:])
}

// HookAt is the explicit-name variant of Hook — "weaving by
// configuration" rather than by convention. Generated corpora
// (internal/corpusgen) are interpreted rather than compiled, so their
// retried methods have no real stack frames to recover; the interpreter
// instead declares the (coordinator, retried) pair it is executing.
// Semantics are otherwise identical to Hook: observe mode records
// coverage, inject mode throws per the armed rules.
func HookAt(ctx context.Context, coordinator, retried string) error {
	in := From(ctx)
	if in == nil {
		return nil
	}
	return in.arrive(ctx, retried, []string{coordinator})
}

// arrive is the shared hook body: callee is the retried method, callers
// the candidate coordinator frames (innermost first).
func (in *Injector) arrive(ctx context.Context, callee string, callers []string) error {
	switch in.mode {
	case Observe:
		in.mu.Lock()
		if in.watch[callee] && len(callers) > 0 {
			loc := Location{Coordinator: callers[0], Retried: callee}
			first := !in.seen[loc]
			in.seen[loc] = true
			in.mu.Unlock()
			if first {
				if r := trace.From(ctx); r != nil {
					r.Append(trace.Event{
						Kind:   trace.KindCoverage,
						Callee: callee,
						Caller: callers[0],
					})
				}
			}
			return nil
		}
		in.mu.Unlock()
		return nil

	case Inject:
		in.mu.Lock()
		rules := in.rules[callee]
		if len(rules) == 0 {
			in.mu.Unlock()
			return nil
		}
		var exhausted *Location
		for _, ar := range rules {
			if !stackMatches(callers, ar.rule.Loc.Coordinator) {
				continue
			}
			loc := ar.rule.Loc
			in.hits[loc]++
			if in.count[loc] >= ar.rule.K {
				// This rule has healed; remember it but give other
				// armed rules at the same location a chance.
				exhausted = &loc
				continue
			}
			in.count[loc]++
			n := in.count[loc]
			in.mu.Unlock()
			in.reg.Counter("fault_injections_total", "exception", loc.Exception).Inc()
			if r := trace.From(ctx); r != nil {
				r.Append(trace.Event{
					Kind:      trace.KindInjection,
					Callee:    callee,
					Caller:    loc.Coordinator,
					Exception: loc.Exception,
					Count:     n,
				})
			}
			exc := errmodel.Newf(loc.Exception, "injected at %s invoked from %s (throw %d)", callee, loc.Coordinator, n)
			exc.Injected = true
			return exc
		}
		in.mu.Unlock()
		if exhausted != nil {
			in.reg.Counter("fault_injections_suppressed_total", "exception", exhausted.Exception).Inc()
			if r := trace.From(ctx); r != nil {
				r.Append(trace.Event{
					Kind:      trace.KindInjectionSuppressed,
					Callee:    callee,
					Caller:    exhausted.Coordinator,
					Exception: exhausted.Exception,
				})
			}
		}
		return nil
	}
	return nil
}

// stackMatches reports whether coordinator appears in the caller frames.
func stackMatches(callers []string, coordinator string) bool {
	for _, f := range callers {
		if f == coordinator {
			return true
		}
	}
	return false
}
