package trace

import (
	"context"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestAppendAssignsSequence(t *testing.T) {
	r := NewRun("t1")
	r.Append(Event{Kind: KindNote, Msg: "a"})
	r.Append(Event{Kind: KindNote, Msg: "b"})
	ev := r.Events()
	if len(ev) != 2 {
		t.Fatalf("len = %d", len(ev))
	}
	if ev[0].Seq != 0 || ev[1].Seq != 1 {
		t.Errorf("sequence numbers = %d, %d", ev[0].Seq, ev[1].Seq)
	}
}

func TestSleepAdvancesVirtualTime(t *testing.T) {
	r := NewRun("t")
	r.AdvanceAndRecordSleep(3*time.Second, []string{"hdfs.WebFS.run"})
	r.AdvanceAndRecordSleep(2*time.Second, nil)
	if got := r.VNow(); got != 5*time.Second {
		t.Errorf("VNow = %v, want 5s", got)
	}
	ev := r.Events()
	if ev[0].VTime != 0 {
		t.Errorf("first sleep should start at t=0, got %v", ev[0].VTime)
	}
	if ev[1].VTime != 3*time.Second {
		t.Errorf("second sleep at %v, want 3s", ev[1].VTime)
	}
}

func TestAdvanceDoesNotRecord(t *testing.T) {
	r := NewRun("t")
	r.Advance(time.Minute)
	if r.Len() != 0 {
		t.Error("Advance must not append events")
	}
	if r.VNow() != time.Minute {
		t.Error("Advance must move virtual time")
	}
}

func TestContextRoundTrip(t *testing.T) {
	r := NewRun("t")
	ctx := With(context.Background(), r)
	if From(ctx) != r {
		t.Error("From(With(ctx,r)) != r")
	}
	if From(context.Background()) != nil {
		t.Error("From(empty ctx) should be nil")
	}
}

func TestNoteNoRunIsNoop(t *testing.T) {
	Note(context.Background(), "ignored %d", 1) // must not panic
}

func TestNoteRecords(t *testing.T) {
	r := NewRun("t")
	Note(With(context.Background(), r), "task %d done", 7)
	ev := r.Events()
	if len(ev) != 1 || ev[0].Msg != "task 7 done" || ev[0].Kind != KindNote {
		t.Errorf("events = %+v", ev)
	}
}

func TestNormalizeFunc(t *testing.T) {
	cases := []struct{ in, want string }{
		{"wasabi/internal/apps/hdfs.(*BlockReader).connect", "hdfs.BlockReader.connect"},
		{"wasabi/internal/apps/hbase.UnassignProcedure.Execute", "hbase.UnassignProcedure.Execute"},
		{"main.main", "main.main"},
		{"wasabi/internal/testkit.(*Runner).Run.func1", "testkit.Runner.Run.func1"},
		{"", ""},
	}
	for _, c := range cases {
		if got := NormalizeFunc(c.in); got != c.want {
			t.Errorf("NormalizeFunc(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestCallersReturnsThisTest(t *testing.T) {
	stack := Callers(0, 4)
	if len(stack) == 0 {
		t.Fatal("empty stack")
	}
	if stack[0] != "trace.TestCallersReturnsThisTest" {
		t.Errorf("stack[0] = %q", stack[0])
	}
}

func helperCaller() []string { return Callers(0, 4) }

func TestCallersSeesCallerChain(t *testing.T) {
	stack := helperCaller()
	if len(stack) < 2 {
		t.Fatalf("stack = %v", stack)
	}
	if stack[0] != "trace.helperCaller" || stack[1] != "trace.TestCallersSeesCallerChain" {
		t.Errorf("stack = %v", stack)
	}
}

func TestEventKindString(t *testing.T) {
	if KindInjection.String() != "inject" || KindSleep.String() != "sleep" {
		t.Error("kind names wrong")
	}
	if EventKind(99).String() == "" {
		t.Error("unknown kind should still render")
	}
}

// Property: after n appends, sequence numbers are exactly 0..n-1 and events
// are returned in order.
func TestSequenceProperty(t *testing.T) {
	f := func(n uint8) bool {
		r := NewRun("p")
		for i := 0; i < int(n%50); i++ {
			r.Append(Event{Kind: KindNote})
		}
		ev := r.Events()
		for i := range ev {
			if ev[i].Seq != i {
				return false
			}
		}
		return len(ev) == int(n%50)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: virtual time equals the sum of all sleeps and advances.
func TestVirtualTimeSumProperty(t *testing.T) {
	f := func(ds []uint16) bool {
		r := NewRun("p")
		var want time.Duration
		for i, d := range ds {
			dur := time.Duration(d) * time.Millisecond
			if i%2 == 0 {
				r.AdvanceAndRecordSleep(dur, nil)
			} else {
				r.Advance(dur)
			}
			want += dur
		}
		return r.VNow() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEventsSnapshotIsolation(t *testing.T) {
	r := NewRun("t")
	r.Append(Event{Kind: KindNote, Msg: "a"})
	snap := r.Events()
	r.Append(Event{Kind: KindNote, Msg: "b"})
	if len(snap) != 1 {
		t.Error("snapshot must not grow with later appends")
	}
}

// TestConcurrentAppenders has many goroutines interleave injection,
// sleep and note events on one Run — the shape of an instrumented test
// whose application code is itself concurrent. Sequence numbers must
// come out exactly 0..n-1 (each assigned once, in log order), every
// event must survive, and virtual time must equal the sum of all sleeps,
// whatever the interleaving. make race runs this under the race
// detector.
func TestConcurrentAppenders(t *testing.T) {
	const (
		goroutines = 16
		perG       = 201 // divisible by 3: equal parts inject/sleep/note
	)
	r := NewRun("concurrent")
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				switch i % 3 {
				case 0:
					r.Append(Event{
						Kind: KindInjection, Callee: "app.T.connect",
						Caller: "app.T.retryLoop", Exception: "IOException",
					})
				case 1:
					r.AdvanceAndRecordSleep(time.Millisecond, []string{"app.T.retryLoop"})
				case 2:
					r.Append(Event{Kind: KindNote, Msg: "tick"})
				}
			}
		}(g)
	}
	wg.Wait()

	ev := r.Events()
	if len(ev) != goroutines*perG {
		t.Fatalf("recorded %d events, want %d", len(ev), goroutines*perG)
	}
	kinds := map[EventKind]int{}
	for i, e := range ev {
		if e.Seq != i {
			t.Fatalf("event %d has seq %d: log order and sequence numbers diverged", i, e.Seq)
		}
		kinds[e.Kind]++
	}
	for kind, want := range map[EventKind]int{
		KindInjection: goroutines * perG / 3,
		KindSleep:     goroutines * perG / 3,
		KindNote:      goroutines * perG / 3,
	} {
		if kinds[kind] != want {
			t.Errorf("%v events = %d, want %d", kind, kinds[kind], want)
		}
	}
	if want := time.Duration(goroutines*perG/3) * time.Millisecond; r.VNow() != want {
		t.Errorf("VNow = %v, want %v (sum of all sleeps)", r.VNow(), want)
	}
	// Virtual timestamps never move backwards along the log.
	for i := 1; i < len(ev); i++ {
		if ev[i].VTime < ev[i-1].VTime {
			t.Fatalf("virtual time ran backwards at seq %d: %v -> %v", i, ev[i-1].VTime, ev[i].VTime)
		}
	}
}
