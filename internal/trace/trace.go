// Package trace records what happens during an instrumented test run.
//
// Every WASABI dynamic-workflow test run owns a *Run: the fault-injection
// runtime appends injection events, the virtual clock appends sleep events,
// corpus code may append notes, and the test runner appends the final
// outcome. The retry test oracles (internal/oracle) operate purely on this
// record, mirroring the paper's design where oracles post-process test logs
// (§3.1.3).
//
// A Run is goroutine-safe (its event log and virtual clock share one
// mutex) and strictly per-execution: testkit.Run creates a fresh Run for
// every test invocation, which is what lets the parallel plan executor in
// internal/core run independent injection experiments concurrently without
// their traces or clocks interfering.
package trace

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"
)

// EventKind classifies trace events.
type EventKind int

const (
	// KindInjection records a fault-injection handler throwing an exception.
	KindInjection EventKind = iota
	// KindInjectionSuppressed records a handler reached after its K
	// threshold was exhausted (the fault has "healed").
	KindInjectionSuppressed
	// KindSleep records a call to a sleep API.
	KindSleep
	// KindCoverage records, in observe mode, that a retry location was
	// reached (used by the test planner's coverage pass).
	KindCoverage
	// KindNote records free-form application events.
	KindNote
)

// String returns a short name for the event kind.
func (k EventKind) String() string {
	switch k {
	case KindInjection:
		return "inject"
	case KindInjectionSuppressed:
		return "inject-suppressed"
	case KindSleep:
		return "sleep"
	case KindCoverage:
		return "coverage"
	case KindNote:
		return "note"
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// Event is one record in a test-run trace.
type Event struct {
	Seq   int
	Kind  EventKind
	VTime time.Duration // virtual time when the event occurred

	// Injection/coverage fields.
	Callee    string // retried method, e.g. "hdfs.BlockReader.connect"
	Caller    string // coordinator method observed on the stack
	Exception string // exception class thrown (injection only)
	Count     int    // how many times this triplet has thrown so far

	// Sleep fields.
	Duration time.Duration
	Stack    []string // normalized function names, innermost first

	// Note fields.
	Msg string
}

// Run is the trace of a single test execution. It also owns the run's
// virtual clock so that event virtual-timestamps and sleep accounting agree.
type Run struct {
	Test string

	mu     sync.Mutex
	events []Event
	seq    int
	vnow   time.Duration
}

// NewRun creates an empty trace for the named test.
func NewRun(test string) *Run { return &Run{Test: test} }

// Append adds an event, assigning its sequence number and virtual time.
func (r *Run) Append(e Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e.Seq = r.seq
	r.seq++
	e.VTime = r.vnow
	r.events = append(r.events, e)
}

// AdvanceAndRecordSleep advances virtual time by d and appends a sleep
// event attributed to the given stack.
func (r *Run) AdvanceAndRecordSleep(d time.Duration, stack []string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := Event{
		Seq:      r.seq,
		Kind:     KindSleep,
		VTime:    r.vnow,
		Duration: d,
		Stack:    stack,
	}
	r.seq++
	r.vnow += d
	r.events = append(r.events, e)
}

// Advance moves virtual time forward without recording a sleep event
// (used for non-sleep time passage such as simulated work).
func (r *Run) Advance(d time.Duration) {
	r.mu.Lock()
	r.vnow += d
	r.mu.Unlock()
}

// VNow returns the current virtual time.
func (r *Run) VNow() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.vnow
}

// Events returns a snapshot of the recorded events in order.
func (r *Run) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Len returns the number of recorded events.
func (r *Run) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

type ctxKey struct{}

// With attaches a run to the context.
func With(ctx context.Context, r *Run) context.Context {
	return context.WithValue(ctx, ctxKey{}, r)
}

// From extracts the run attached to ctx, or nil.
func From(ctx context.Context) *Run {
	r, _ := ctx.Value(ctxKey{}).(*Run)
	return r
}

// Note appends a free-form note to the run on ctx, if any.
func Note(ctx context.Context, format string, args ...any) {
	if r := From(ctx); r != nil {
		r.Append(Event{Kind: KindNote, Msg: fmt.Sprintf(format, args...)})
	}
}

// Callers returns up to max normalized function names from the calling
// goroutine's stack, innermost first, skipping skip frames above the caller
// of Callers itself. Names are normalized by NormalizeFunc.
func Callers(skip, max int) []string {
	pcs := make([]uintptr, max+skip+2)
	n := runtime.Callers(skip+2, pcs)
	if n == 0 {
		return nil
	}
	frames := runtime.CallersFrames(pcs[:n])
	var out []string
	for {
		f, more := frames.Next()
		name := NormalizeFunc(f.Function)
		if name != "" {
			out = append(out, name)
		}
		if !more || len(out) >= max {
			break
		}
	}
	return out
}

// CallerFunc returns the normalized function name of the caller skip
// frames above the caller of CallerFunc (skip 0 = the immediate caller).
func CallerFunc(skip int) string {
	s := Callers(skip+1, 1)
	if len(s) == 0 {
		return ""
	}
	return s[0]
}

// NormalizeFunc converts a runtime function name such as
// "wasabi/internal/apps/hdfs.(*BlockReader).connect" into the corpus
// method-naming convention "hdfs.BlockReader.connect". Functions outside
// the corpus keep "pkg.Symbol" form (last import-path element only).
// Anonymous function suffixes (".func1") are preserved on the parent name.
func NormalizeFunc(fn string) string {
	if fn == "" {
		return ""
	}
	// Keep only the last path element: "wasabi/internal/apps/hdfs.(*T).m"
	// -> "hdfs.(*T).m".
	if i := strings.LastIndex(fn, "/"); i >= 0 {
		fn = fn[i+1:]
	}
	// Drop pointer-receiver decoration.
	fn = strings.ReplaceAll(fn, "(*", "")
	fn = strings.ReplaceAll(fn, ")", "")
	return fn
}
