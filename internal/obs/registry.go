// registry.go implements the metrics half of the observability layer
// (§3.1.3 record-then-inspect, applied to the pipeline): named counters,
// gauges and fixed-bucket histograms behind one goroutine-safe registry
// whose snapshots serialize in deterministic order.
package obs

import (
	"encoding/json"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry holds a run's metrics. Instruments are identified by a name
// plus an optional set of label key/value pairs; asking twice for the
// same identity returns the same instrument. A nil *Registry hands out
// nil instruments, whose methods are no-ops.
type Registry struct {
	mu       sync.Mutex
	counters map[string]counterEntry
	gauges   map[string]gaugeEntry
	hists    map[string]histEntry
}

// Each entry keeps the instrument's name and canonical label set beside
// the instrument itself: label values are user-supplied (tenant names
// become Prometheus labels), so snapshots must never re-derive them by
// parsing the identity string — a value containing '=', ',' or '{'
// would come back corrupted.
type counterEntry struct {
	name   string
	labels labelSet
	c      *Counter
}

type gaugeEntry struct {
	name   string
	labels labelSet
	g      *Gauge
}

type histEntry struct {
	name   string
	labels labelSet
	h      *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]counterEntry),
		gauges:   make(map[string]gaugeEntry),
		hists:    make(map[string]histEntry),
	}
}

// labelSet is a canonicalized label list: pairs sorted by key.
type labelSet []Label

// Label is one metric label.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// makeLabels canonicalizes alternating key/value strings. An odd
// trailing key gets an empty value rather than being dropped, so the
// mistake is visible in the snapshot.
func makeLabels(kv []string) labelSet {
	if len(kv) == 0 {
		return nil
	}
	ls := make(labelSet, 0, (len(kv)+1)/2)
	for i := 0; i < len(kv); i += 2 {
		l := Label{Key: kv[i]}
		if i+1 < len(kv) {
			l.Value = kv[i+1]
		}
		ls = append(ls, l)
	}
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	return ls
}

// id renders the canonical instrument identity "name{k=v,…}".
func (ls labelSet) id(name string) string {
	if len(ls) == 0 {
		return name
	}
	out := name + "{"
	for i, l := range ls {
		if i > 0 {
			out += ","
		}
		out += l.Key + "=" + l.Value
	}
	return out + "}"
}

// Counter is a monotonically increasing integer. Counters count logical
// pipeline events, so their values are deterministic across worker
// counts (see the package documentation).
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. No-op on a nil counter.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count, 0 on nil.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable float — configuration facts and last-seen levels.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v. No-op on nil.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the stored value, 0 on nil.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket distribution. Buckets are cumulative-style
// upper bounds fixed at first registration; observations above the last
// bound land in an implicit +Inf bucket (the final element of Counts).
type Histogram struct {
	bounds []float64

	mu    sync.Mutex
	count int64
	sum   float64
	cells []int64 // len(bounds)+1; last cell is +Inf
}

// Observe records one value. No-op on nil.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.count++
	h.sum += v
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.cells[i]++
}

// Counter returns the counter registered under name and labels, creating
// it on first use. Nil registry returns nil.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	ls := makeLabels(labels)
	id := ls.id(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.counters[id]
	if !ok {
		e = counterEntry{name: name, labels: ls, c: &Counter{}}
		r.counters[id] = e
	}
	return e.c
}

// Gauge returns the gauge registered under name and labels, creating it
// on first use. Nil registry returns nil.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	ls := makeLabels(labels)
	id := ls.id(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.gauges[id]
	if !ok {
		e = gaugeEntry{name: name, labels: ls, g: &Gauge{}}
		r.gauges[id] = e
	}
	return e.g
}

// RemoveGauge deletes the gauge with the given identity, if registered.
// Gauges describe current state, and keeping one alive for an evicted
// tenant would report state that no longer exists. No-op on a nil
// registry.
func (r *Registry) RemoveGauge(name string, labels ...string) {
	if r == nil {
		return
	}
	id := makeLabels(labels).id(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.gauges, id)
}

// RemoveCounter deletes the counter with the given identity and returns
// its final value (0 when absent or on a nil registry). Counters are
// monotonic facts, so a caller retiring one is expected to fold the
// returned value into a surviving aggregate series — dropping it
// silently would make sums over the family go backwards between
// scrapes. Remove-then-fold as two registry calls leaves a window where
// a concurrent snapshot sees neither series; callers that need the
// family sum to hold at every instant use FoldCounter instead.
func (r *Registry) RemoveCounter(name string, labels ...string) int64 {
	if r == nil {
		return 0
	}
	id := makeLabels(labels).id(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.counters[id]
	if !ok {
		return 0
	}
	delete(r.counters, id)
	return e.c.Value()
}

// FoldCounter retires the counter identified by (name, from) and adds
// its final value to the (name, into) series of the same family, all
// under a single registry lock acquisition: a concurrent Snapshot sees
// either the source series or the grown destination, never the gap
// between, so sums over the family never go backwards between scrapes.
// The destination is created on demand (only when there is a non-zero
// value to carry); an absent source is a no-op. Returns the folded
// value; 0 when the source was absent or on a nil registry. The
// scheduler uses this when it evicts an idle tenant's cost series.
func (r *Registry) FoldCounter(name string, from, into []string) int64 {
	if r == nil {
		return 0
	}
	fromID := makeLabels(from).id(name)
	intoLS := makeLabels(into)
	intoID := intoLS.id(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.counters[fromID]
	if !ok {
		return 0
	}
	delete(r.counters, fromID)
	v := e.c.Value()
	if v > 0 {
		dst, ok := r.counters[intoID]
		if !ok {
			dst = counterEntry{name: name, labels: intoLS, c: &Counter{}}
			r.counters[intoID] = dst
		}
		dst.c.Add(v)
	}
	return v
}

// RemoveHistogram deletes the histogram with the given identity, if
// registered. Unlike counters, a retired distribution has no meaningful
// fold into a survivor (mixed-tenant latency quantiles would answer a
// question nobody asked), so the observations are simply dropped; the
// caller should count the retirement if the history matters. No-op on a
// nil registry.
func (r *Registry) RemoveHistogram(name string, labels ...string) {
	if r == nil {
		return
	}
	id := makeLabels(labels).id(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.hists, id)
}

// Histogram returns the histogram registered under name and labels,
// creating it with the given bucket upper bounds on first use (bounds
// are sorted; later calls reuse the first registration's bounds). Nil
// registry returns nil.
func (r *Registry) Histogram(name string, bounds []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	ls := makeLabels(labels)
	id := ls.id(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.hists[id]
	if !ok {
		b := append([]float64(nil), bounds...)
		sort.Float64s(b)
		e = histEntry{name: name, labels: ls, h: &Histogram{bounds: b, cells: make([]int64, len(b)+1)}}
		r.hists[id] = e
	}
	return e.h
}

// LatencyBuckets is the default bucket set for millisecond latency
// histograms: exponential from sub-millisecond to minutes.
var LatencyBuckets = []float64{0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 30000, 60000}

// CounterPoint is one counter in a snapshot.
type CounterPoint struct {
	Name   string   `json:"name"`
	Labels labelSet `json:"labels,omitempty"`
	Value  int64    `json:"value"`
}

// GaugePoint is one gauge in a snapshot.
type GaugePoint struct {
	Name   string   `json:"name"`
	Labels labelSet `json:"labels,omitempty"`
	Value  float64  `json:"value"`
}

// HistogramPoint is one histogram in a snapshot. Bounds are the bucket
// upper bounds; Counts has one extra trailing cell for +Inf.
type HistogramPoint struct {
	Name   string    `json:"name"`
	Labels labelSet  `json:"labels,omitempty"`
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

// Snapshot is a point-in-time copy of every registered instrument, each
// section sorted by canonical identity. Marshaling a snapshot with
// identical instrument values therefore produces identical bytes — the
// property the counters section is guaranteed to have across worker
// counts.
type Snapshot struct {
	Counters   []CounterPoint   `json:"counters"`
	Gauges     []GaugePoint     `json:"gauges"`
	Histograms []HistogramPoint `json:"histograms"`
}

// Snapshot copies the registry's current state. Nil registry yields an
// empty (but non-nil-sectioned) snapshot.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   []CounterPoint{},
		Gauges:     []GaugePoint{},
		Histograms: []HistogramPoint{},
	}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, e := range r.counters {
		snap.Counters = append(snap.Counters, CounterPoint{Name: e.name, Labels: e.labels, Value: e.c.Value()})
	}
	for _, e := range r.gauges {
		snap.Gauges = append(snap.Gauges, GaugePoint{Name: e.name, Labels: e.labels, Value: e.g.Value()})
	}
	for _, e := range r.hists {
		h := e.h
		h.mu.Lock()
		p := HistogramPoint{
			Name: e.name, Labels: e.labels,
			Bounds: append([]float64(nil), h.bounds...),
			Counts: append([]int64(nil), h.cells...),
			Count:  h.count,
			Sum:    h.sum,
		}
		h.mu.Unlock()
		snap.Histograms = append(snap.Histograms, p)
	}
	sort.Slice(snap.Counters, func(i, j int) bool {
		return snap.Counters[i].Labels.id(snap.Counters[i].Name) < snap.Counters[j].Labels.id(snap.Counters[j].Name)
	})
	sort.Slice(snap.Gauges, func(i, j int) bool {
		return snap.Gauges[i].Labels.id(snap.Gauges[i].Name) < snap.Gauges[j].Labels.id(snap.Gauges[j].Name)
	})
	sort.Slice(snap.Histograms, func(i, j int) bool {
		return snap.Histograms[i].Labels.id(snap.Histograms[i].Name) < snap.Histograms[j].Labels.id(snap.Histograms[j].Name)
	})
	return snap
}

// MarshalIndent renders the snapshot as indented JSON.
func (s Snapshot) MarshalIndent() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// CountersJSON renders only the deterministic counters section — the
// sub-document that is byte-identical across worker counts.
func (s Snapshot) CountersJSON() ([]byte, error) {
	return json.Marshal(s.Counters)
}

// Counter returns the snapshotted value of the named counter (labels in
// any order), or 0 when absent.
func (s Snapshot) Counter(name string, labels ...string) int64 {
	want := makeLabels(labels).id(name)
	for _, c := range s.Counters {
		if c.Labels.id(c.Name) == want {
			return c.Value
		}
	}
	return 0
}

// Gauge returns the snapshotted value of the named gauge (labels in
// any order), or 0 when absent.
func (s Snapshot) Gauge(name string, labels ...string) float64 {
	want := makeLabels(labels).id(name)
	for _, g := range s.Gauges {
		if g.Labels.id(g.Name) == want {
			return g.Value
		}
	}
	return 0
}

// HistogramPoint returns the snapshotted histogram with the given
// identity, or false when absent.
func (s Snapshot) HistogramPoint(name string, labels ...string) (HistogramPoint, bool) {
	want := makeLabels(labels).id(name)
	for _, h := range s.Histograms {
		if h.Labels.id(h.Name) == want {
			return h, true
		}
	}
	return HistogramPoint{}, false
}

// Quantile estimates the q-quantile (0 < q ≤ 1) of the recorded
// distribution by linear interpolation inside the bucket holding the
// rank — the same estimator Prometheus's histogram_quantile uses.
// Observations in the +Inf bucket clamp to the last finite bound (the
// estimate is a floor, not an extrapolation). Returns 0 on an empty
// histogram.
func (h HistogramPoint) Quantile(q float64) float64 {
	if h.Count == 0 || len(h.Bounds) == 0 {
		return 0
	}
	rank := q * float64(h.Count)
	cum := int64(0)
	for i, c := range h.Counts {
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i >= len(h.Bounds) {
			return h.Bounds[len(h.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.Bounds[i-1]
		}
		hi := h.Bounds[i]
		prev := float64(cum - c)
		frac := (rank - prev) / float64(c)
		return lo + (hi-lo)*frac
	}
	return h.Bounds[len(h.Bounds)-1]
}

// AddGauge inserts a derived gauge into the snapshot, keeping the gauges
// section sorted by canonical identity so serialization stays
// deterministic. It exists for render-time summaries (e.g. the scheduler
// quantiles wasabid's /metrics derives from its latency histograms)
// that should not live as mutable registry state.
func (s *Snapshot) AddGauge(name string, value float64, labels ...string) {
	p := GaugePoint{Name: name, Labels: makeLabels(labels), Value: value}
	id := p.Labels.id(p.Name)
	i := sort.Search(len(s.Gauges), func(i int) bool {
		return s.Gauges[i].Labels.id(s.Gauges[i].Name) >= id
	})
	s.Gauges = append(s.Gauges, GaugePoint{})
	copy(s.Gauges[i+1:], s.Gauges[i:])
	s.Gauges[i] = p
}
