// span.go implements the tracing half of the observability layer:
// parent/child spans over pipeline stages (§3.1's identify → plan →
// inject → oracle sequence), serialized as Chrome trace-event JSON so a
// run renders directly in Perfetto / about://tracing.
//
// A Tracer can be scoped to one unit of work: the batch CLI keeps one
// tracer for the whole run, while the wasabid daemon mints one per job
// (docs/OBSERVABILITY.md "Daemon tracing") with SetCommonArgs carrying
// the job's correlation identity (job_id, tenant, trace_id) onto every
// span, so each job's trace is self-contained and byte-isolated from
// every concurrently running job.
package obs

import (
	"encoding/json"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Tracer collects the spans of one pipeline run. Spans are assigned
// display lanes — the Chrome trace "tid" — on start: a root span takes
// the lowest free lane and frees it on End, so the lane axis reads as
// worker-slot occupancy (lane count ≈ peak concurrency). A nil *Tracer
// is valid and records nothing.
type Tracer struct {
	mu     sync.Mutex
	start  time.Time
	events []chromeEvent
	lanes  []bool // lane i occupied?
	// common is merged into every span's args at completion (explicit
	// args win) — the per-job correlation identity.
	common map[string]string
	// rootParent, when set, is recorded as the parent of every root span
	// opened via Start that carries no explicit parent arg, so a scoped
	// trace stays one connected tree (the daemon sets it to its "run"
	// span; spans recorded via Record keep their explicit parentage).
	rootParent string
	// procName overrides the process_name metadata event.
	procName string
}

// Span is one in-flight operation. End completes it; children inherit
// the parent's lane and record the parent's name, so the hierarchy
// survives into the trace file. A nil *Span is valid.
type Span struct {
	tr       *Tracer
	name     string
	cat      string
	lane     int
	ownsLane bool
	start    time.Time
	args     map[string]string
}

// chromeEvent is one Chrome trace-event record ("X" = complete event,
// "M" = metadata). Timestamps and durations are microseconds.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	TS   int64             `json:"ts"`
	Dur  int64             `json:"dur,omitempty"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// chromeTrace is the JSON object form of the trace-event format.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// NewTracer returns an empty tracer anchored at the current time.
func NewTracer() *Tracer { return &Tracer{start: time.Now()} }

// NewTracerAt returns an empty tracer anchored at the given time — the
// daemon anchors a job's tracer at submission so the queue-wait span
// starts at timestamp zero.
func NewTracerAt(start time.Time) *Tracer { return &Tracer{start: start} }

// SetCommonArgs installs alternating key/value args merged into every
// span the tracer records (explicit span args win on collision). The
// daemon stamps job_id/tenant/trace_id here so every span of a job's
// trace carries its correlation identity. No-op on nil.
func (t *Tracer) SetCommonArgs(args ...string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.common = argMap(args)
}

// SetRootParent names the span adopted as parent by every parentless
// root span opened via Start — the seam that hangs the pipeline's
// "corpus" root under the daemon's per-job "run" span without the
// pipeline knowing it is being served. No-op on nil.
func (t *Tracer) SetRootParent(name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rootParent = name
}

// SetProcessName overrides the process_name metadata Perfetto displays
// (default "wasabi pipeline"). No-op on nil.
func (t *Tracer) SetProcessName(name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.procName = name
}

// SpanCount reports how many completed spans the tracer holds. 0 on nil.
func (t *Tracer) SpanCount() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Start opens a root span with the given name, category and alternating
// key/value args, allocating the lowest free display lane. Nil tracer
// returns a nil span.
func (t *Tracer) Start(name, cat string, args ...string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	lane := t.allocLaneLocked()
	t.mu.Unlock()
	return &Span{
		tr: t, name: name, cat: cat,
		lane: lane, ownsLane: true,
		start: time.Now(),
		args:  argMap(args),
	}
}

// allocLaneLocked takes the lowest free lane; t.mu must be held.
func (t *Tracer) allocLaneLocked() int {
	for i, busy := range t.lanes {
		if !busy {
			t.lanes[i] = true
			return i
		}
	}
	t.lanes = append(t.lanes, true)
	return len(t.lanes) - 1
}

// Child opens a sub-span on the parent's lane, recording the parent name
// in the args. Nil span returns nil.
func (s *Span) Child(name, cat string, args ...string) *Span {
	if s == nil {
		return nil
	}
	m := argMap(args)
	if m == nil {
		m = make(map[string]string, 1)
	}
	m["parent"] = s.name
	return &Span{
		tr: s.tr, name: name, cat: cat,
		lane:  s.lane,
		start: time.Now(),
		args:  m,
	}
}

// SetArg annotates the span with one key/value arg before End — review
// spans use it to record outcome facts (fresh token spend, cache hit,
// retries, degradation) known only once the work finished. The span is
// owned by one goroutine until End, so no locking. No-op on nil.
func (s *Span) SetArg(key, value string) {
	if s == nil {
		return
	}
	if s.args == nil {
		s.args = make(map[string]string, 1)
	}
	s.args[key] = value
}

// End completes the span, appending it to the tracer and freeing its
// lane if it owns one. No-op on nil.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := time.Now()
	t := s.tr
	t.mu.Lock()
	defer t.mu.Unlock()
	args := s.args
	if s.ownsLane && t.rootParent != "" && args["parent"] == "" && s.name != t.rootParent {
		if args == nil {
			args = make(map[string]string, 1)
		}
		args["parent"] = t.rootParent
	}
	t.events = append(t.events, chromeEvent{
		Name: s.name,
		Cat:  s.cat,
		Ph:   "X",
		TS:   s.start.Sub(t.start).Microseconds(),
		Dur:  maxI64(now.Sub(s.start).Microseconds(), 1),
		PID:  1,
		TID:  s.lane + 1, // tid 0 is reserved for metadata
		Args: t.mergeCommonLocked(args),
	})
	if s.ownsLane {
		t.lanes[s.lane] = false
	}
}

// Record appends an already-completed span measured externally — the
// daemon records the queue-wait (submission → slot start) and the
// slot-run envelope this way, since neither is "in flight" code the
// Start/End pattern could bracket. The span takes the lowest lane free
// at record time. No-op on nil.
func (t *Tracer) Record(name, cat string, start, end time.Time, args ...string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	lane := t.allocLaneLocked()
	t.lanes[lane] = false // retrospective: occupies no wall-clock
	t.events = append(t.events, chromeEvent{
		Name: name,
		Cat:  cat,
		Ph:   "X",
		TS:   start.Sub(t.start).Microseconds(),
		Dur:  maxI64(end.Sub(start).Microseconds(), 1),
		PID:  1,
		TID:  lane + 1,
		Args: t.mergeCommonLocked(argMap(args)),
	})
}

// mergeCommonLocked folds the tracer's common args into m (explicit keys
// win); t.mu must be held.
func (t *Tracer) mergeCommonLocked(m map[string]string) map[string]string {
	if len(t.common) == 0 {
		return m
	}
	if m == nil {
		m = make(map[string]string, len(t.common))
	}
	for k, v := range t.common {
		if _, ok := m[k]; !ok {
			m[k] = v
		}
	}
	return m
}

// SinceMS returns the span's age in milliseconds — the value stage
// latency histograms observe at End time. 0 on nil.
func (s *Span) SinceMS() float64 {
	if s == nil {
		return 0
	}
	return float64(time.Since(s.start)) / float64(time.Millisecond)
}

// WriteJSON serializes the recorded spans in Chrome trace-event JSON
// (object form, microsecond timestamps), preceded by process/thread
// metadata so Perfetto labels the lanes. Safe on a nil tracer, which
// writes an empty-but-valid trace.
func (t *Tracer) WriteJSON(w io.Writer) error {
	proc := "wasabi pipeline"
	trace := chromeTrace{DisplayTimeUnit: "ms"}
	if t != nil {
		t.mu.Lock()
		events := append([]chromeEvent(nil), t.events...)
		lanes := len(t.lanes)
		if t.procName != "" {
			proc = t.procName
		}
		t.mu.Unlock()
		// Stable output for a given set of spans: order by start, then
		// lane, then name (End order depends on scheduling).
		sort.Slice(events, func(i, j int) bool {
			a, b := events[i], events[j]
			if a.TS != b.TS {
				return a.TS < b.TS
			}
			if a.TID != b.TID {
				return a.TID < b.TID
			}
			return a.Name < b.Name
		})
		trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", PID: 1, Args: map[string]string{"name": proc},
		})
		for i := 0; i < lanes; i++ {
			trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
				Name: "thread_name", Ph: "M", PID: 1, TID: i + 1,
				Args: map[string]string{"name": "lane-" + strconv.Itoa(i)},
			})
		}
		trace.TraceEvents = append(trace.TraceEvents, events...)
	} else {
		trace.TraceEvents = []chromeEvent{
			{Name: "process_name", Ph: "M", PID: 1, Args: map[string]string{"name": proc}},
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(trace)
}

// argMap folds alternating key/value strings into a map (nil when empty).
func argMap(kv []string) map[string]string {
	if len(kv) == 0 {
		return nil
	}
	m := make(map[string]string, len(kv)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		m[kv[i]] = kv[i+1]
	}
	return m
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
