// span.go implements the tracing half of the observability layer:
// parent/child spans over pipeline stages (§3.1's identify → plan →
// inject → oracle sequence), serialized as Chrome trace-event JSON so a
// run renders directly in Perfetto / about://tracing.
package obs

import (
	"encoding/json"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Tracer collects the spans of one pipeline run. Spans are assigned
// display lanes — the Chrome trace "tid" — on start: a root span takes
// the lowest free lane and frees it on End, so the lane axis reads as
// worker-slot occupancy (lane count ≈ peak concurrency). A nil *Tracer
// is valid and records nothing.
type Tracer struct {
	mu     sync.Mutex
	start  time.Time
	events []chromeEvent
	lanes  []bool // lane i occupied?
}

// Span is one in-flight operation. End completes it; children inherit
// the parent's lane and record the parent's name, so the hierarchy
// survives into the trace file. A nil *Span is valid.
type Span struct {
	tr       *Tracer
	name     string
	cat      string
	lane     int
	ownsLane bool
	start    time.Time
	args     map[string]string
}

// chromeEvent is one Chrome trace-event record ("X" = complete event,
// "M" = metadata). Timestamps and durations are microseconds.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	TS   int64             `json:"ts"`
	Dur  int64             `json:"dur,omitempty"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// chromeTrace is the JSON object form of the trace-event format.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// NewTracer returns an empty tracer anchored at the current time.
func NewTracer() *Tracer { return &Tracer{start: time.Now()} }

// Start opens a root span with the given name, category and alternating
// key/value args, allocating the lowest free display lane. Nil tracer
// returns a nil span.
func (t *Tracer) Start(name, cat string, args ...string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	lane := -1
	for i, busy := range t.lanes {
		if !busy {
			lane = i
			break
		}
	}
	if lane < 0 {
		lane = len(t.lanes)
		t.lanes = append(t.lanes, false)
	}
	t.lanes[lane] = true
	t.mu.Unlock()
	return &Span{
		tr: t, name: name, cat: cat,
		lane: lane, ownsLane: true,
		start: time.Now(),
		args:  argMap(args),
	}
}

// Child opens a sub-span on the parent's lane, recording the parent name
// in the args. Nil span returns nil.
func (s *Span) Child(name, cat string, args ...string) *Span {
	if s == nil {
		return nil
	}
	m := argMap(args)
	if m == nil {
		m = make(map[string]string, 1)
	}
	m["parent"] = s.name
	return &Span{
		tr: s.tr, name: name, cat: cat,
		lane:  s.lane,
		start: time.Now(),
		args:  m,
	}
}

// End completes the span, appending it to the tracer and freeing its
// lane if it owns one. No-op on nil.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := time.Now()
	t := s.tr
	t.mu.Lock()
	defer t.mu.Unlock()
	t.events = append(t.events, chromeEvent{
		Name: s.name,
		Cat:  s.cat,
		Ph:   "X",
		TS:   s.start.Sub(t.start).Microseconds(),
		Dur:  maxI64(now.Sub(s.start).Microseconds(), 1),
		PID:  1,
		TID:  s.lane + 1, // tid 0 is reserved for metadata
		Args: s.args,
	})
	if s.ownsLane {
		t.lanes[s.lane] = false
	}
}

// SinceMS returns the span's age in milliseconds — the value stage
// latency histograms observe at End time. 0 on nil.
func (s *Span) SinceMS() float64 {
	if s == nil {
		return 0
	}
	return float64(time.Since(s.start)) / float64(time.Millisecond)
}

// WriteJSON serializes the recorded spans in Chrome trace-event JSON
// (object form, microsecond timestamps), preceded by process/thread
// metadata so Perfetto labels the lanes. Safe on a nil tracer, which
// writes an empty-but-valid trace.
func (t *Tracer) WriteJSON(w io.Writer) error {
	trace := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{
		{Name: "process_name", Ph: "M", PID: 1, Args: map[string]string{"name": "wasabi pipeline"}},
	}}
	if t != nil {
		t.mu.Lock()
		events := append([]chromeEvent(nil), t.events...)
		lanes := len(t.lanes)
		t.mu.Unlock()
		// Stable output for a given set of spans: order by start, then
		// lane, then name (End order depends on scheduling).
		sort.Slice(events, func(i, j int) bool {
			a, b := events[i], events[j]
			if a.TS != b.TS {
				return a.TS < b.TS
			}
			if a.TID != b.TID {
				return a.TID < b.TID
			}
			return a.Name < b.Name
		})
		for i := 0; i < lanes; i++ {
			trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
				Name: "thread_name", Ph: "M", PID: 1, TID: i + 1,
				Args: map[string]string{"name": "lane-" + strconv.Itoa(i)},
			})
		}
		trace.TraceEvents = append(trace.TraceEvents, events...)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(trace)
}

// argMap folds alternating key/value strings into a map (nil when empty).
func argMap(kv []string) map[string]string {
	if len(kv) == 0 {
		return nil
	}
	m := make(map[string]string, len(kv)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		m[kv[i]] = kv[i+1]
	}
	return m
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
