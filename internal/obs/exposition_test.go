package obs

import (
	"strings"
	"testing"
)

// TestWriteTextExposition pins the exposition format: family grouping
// and ordering, TYPE comments, label rendering, cumulative histogram
// buckets with the +Inf terminator, and _sum/_count series.
func TestWriteTextExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "stage", "review").Add(3)
	r.Counter("b_total", "stage", "analysis").Inc()
	r.Counter("a_total").Add(7)
	r.Gauge("pool_workers").Set(4)
	h := r.Histogram("lat_ms", []float64{1, 10}, "stage", "identify")
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(5000)

	var b strings.Builder
	if err := WriteText(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"# TYPE a_total counter",
		"a_total 7",
		"# TYPE b_total counter",
		`b_total{stage="analysis"} 1`,
		`b_total{stage="review"} 3`,
		"# TYPE lat_ms histogram",
		`lat_ms_bucket{stage="identify",le="1"} 1`,
		`lat_ms_bucket{stage="identify",le="10"} 2`,
		`lat_ms_bucket{stage="identify",le="+Inf"} 3`,
		`lat_ms_sum{stage="identify"} 5005.5`,
		`lat_ms_count{stage="identify"} 3`,
		"# TYPE pool_workers gauge",
		"pool_workers 4",
		"",
	}, "\n")
	if got := b.String(); got != want {
		t.Fatalf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestWriteTextEscaping verifies label-value escaping.
func TestWriteTextEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "k", "a\"b\\c\nd").Inc()
	var b strings.Builder
	if err := WriteText(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if want := `esc_total{k="a\"b\\c\nd"} 1`; !strings.Contains(b.String(), want) {
		t.Fatalf("escaped sample missing:\n%s", b.String())
	}
}

// TestWriteTextEscapingConformance pins the full label-value escaping
// contract against the Prometheus text format: backslash, double quote
// and newline are escaped (in that replacement set), while the
// separator bytes '=', ',', '{' and '}' — legal inside a quoted label
// value — pass through literally. Tenant names are user-supplied label
// values, so a hostile tenant must not be able to break a scrape or
// smuggle an extra sample line.
func TestWriteTextEscapingConformance(t *testing.T) {
	cases := []struct{ value, rendered string }{
		{`back\slash`, `back\\slash`},
		{`dou"ble`, `dou\"ble`},
		{"new\nline", `new\nline`},
		{`a=b,c{d}e`, `a=b,c{d}e`}, // separators stay literal inside quotes
		{"\\\"\n", `\\\"\n`},
		{`x="1",evil{} 9`, `x=\"1\",evil{} 9`},
	}
	for _, tc := range cases {
		r := NewRegistry()
		r.Counter("esc_total", "tenant", tc.value).Inc()
		var b strings.Builder
		if err := WriteText(&b, r.Snapshot()); err != nil {
			t.Fatal(err)
		}
		want := `esc_total{tenant="` + tc.rendered + `"} 1` + "\n"
		if got := b.String(); got != "# TYPE esc_total counter\n"+want {
			t.Fatalf("value %q rendered as:\n%swant sample line:\n%s", tc.value, got, want)
		}
		// The escaped exposition must still be exactly one sample line.
		if lines := strings.Count(b.String(), "\n"); lines != 2 {
			t.Fatalf("value %q produced %d lines, want 2 (TYPE + sample)", tc.value, lines)
		}
	}
}

// TestWriteTextEmpty verifies an empty snapshot renders as nothing.
func TestWriteTextEmpty(t *testing.T) {
	var b strings.Builder
	if err := WriteText(&b, (*Registry)(nil).Snapshot()); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Fatalf("expected empty exposition, got %q", b.String())
	}
}
