package obs

import (
	"strings"
	"testing"
)

// TestWriteTextExposition pins the exposition format: family grouping
// and ordering, TYPE comments, label rendering, cumulative histogram
// buckets with the +Inf terminator, and _sum/_count series.
func TestWriteTextExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "stage", "review").Add(3)
	r.Counter("b_total", "stage", "analysis").Inc()
	r.Counter("a_total").Add(7)
	r.Gauge("pool_workers").Set(4)
	h := r.Histogram("lat_ms", []float64{1, 10}, "stage", "identify")
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(5000)

	var b strings.Builder
	if err := WriteText(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"# TYPE a_total counter",
		"a_total 7",
		"# TYPE b_total counter",
		`b_total{stage="analysis"} 1`,
		`b_total{stage="review"} 3`,
		"# TYPE lat_ms histogram",
		`lat_ms_bucket{stage="identify",le="1"} 1`,
		`lat_ms_bucket{stage="identify",le="10"} 2`,
		`lat_ms_bucket{stage="identify",le="+Inf"} 3`,
		`lat_ms_sum{stage="identify"} 5005.5`,
		`lat_ms_count{stage="identify"} 3`,
		"# TYPE pool_workers gauge",
		"pool_workers 4",
		"",
	}, "\n")
	if got := b.String(); got != want {
		t.Fatalf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestWriteTextEscaping verifies label-value escaping.
func TestWriteTextEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "k", "a\"b\\c\nd").Inc()
	var b strings.Builder
	if err := WriteText(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if want := `esc_total{k="a\"b\\c\nd"} 1`; !strings.Contains(b.String(), want) {
		t.Fatalf("escaped sample missing:\n%s", b.String())
	}
}

// TestWriteTextEmpty verifies an empty snapshot renders as nothing.
func TestWriteTextEmpty(t *testing.T) {
	var b strings.Builder
	if err := WriteText(&b, (*Registry)(nil).Snapshot()); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Fatalf("expected empty exposition, got %q", b.String())
	}
}
