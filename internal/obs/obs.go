// Package obs is the pipeline's observability layer: a dependency-free
// metrics registry (counters, gauges, fixed-bucket histograms) plus
// span-based tracing of pipeline stages.
//
// The paper's test oracles work by post-processing per-test traces
// (§3.1.3); obs applies the same record-then-inspect design to the
// pipeline itself — identify → LLM review → plan → inject → oracle — so
// a run's stage latencies, worker-pool utilization, injection throughput
// and LLM token spend are inspectable artifacts rather than guesses.
// docs/OBSERVABILITY.md catalogs every metric and the span hierarchy.
//
// Two determinism tiers, by construction:
//
//   - Counters count logical pipeline events (files reviewed, injections
//     fired, oracle reports, tokens spent). The pipeline executes the
//     same logical events at every Options.Workers setting, so counter
//     snapshots are byte-identical across worker counts — the same
//     contract internal/core's reducers give results.
//   - Gauges, histograms and spans carry wall-clock and scheduling
//     facts (stage latency, pool occupancy, lane assignment). They are
//     honest measurements and therefore vary run to run.
//
// Every type is nil-safe: methods on a nil *Registry, *Tracer, *Span,
// *Counter, *Gauge or *Histogram are no-ops that return nil children, so
// instrumentation sites call unconditionally and an unobserved pipeline
// pays only a nil check.
package obs

// Observer bundles the two observability surfaces a pipeline run carries.
// A nil *Observer is valid and disables both.
type Observer struct {
	// Metrics is the run's metrics registry.
	Metrics *Registry
	// Tracer is the run's span tracer.
	Tracer *Tracer
}

// New returns an Observer with a fresh registry and tracer.
func New() *Observer {
	return &Observer{Metrics: NewRegistry(), Tracer: NewTracer()}
}

// Reg returns the registry, or nil on a nil observer.
func (o *Observer) Reg() *Registry {
	if o == nil {
		return nil
	}
	return o.Metrics
}

// Trc returns the tracer, or nil on a nil observer.
func (o *Observer) Trc() *Tracer {
	if o == nil {
		return nil
	}
	return o.Tracer
}

// WithTracer returns an Observer that shares this observer's metrics
// registry but records spans into tr. The wasabid daemon scopes
// observability per job this way: metrics stay fleet-wide (one registry
// behind /metrics) while each job gets a private tracer, so concurrent
// jobs' span trees are isolated by construction. Safe on nil (the
// result then carries a nil registry).
func (o *Observer) WithTracer(tr *Tracer) *Observer {
	return &Observer{Metrics: o.Reg(), Tracer: tr}
}
