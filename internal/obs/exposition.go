// exposition.go renders a metrics snapshot in the Prometheus text
// exposition format (version 0.0.4) — the lingua franca scrape format,
// emitted dependency-free. One writer serves every surface that wants
// the run's §3.1.3-style record-then-inspect metrics as text: the
// wasabid daemon's GET /metrics endpoint and cmd/wasabi's end-of-run
// stderr summary.
//
// Output is deterministic for a given snapshot: metric families are
// sorted by name, samples within a family keep the snapshot's canonical
// identity order, and histograms expand to cumulative _bucket/_sum/
// _count series exactly as Prometheus expects.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WriteText writes the snapshot in Prometheus text exposition format.
func WriteText(w io.Writer, s Snapshot) error {
	type family struct {
		name  string
		kind  string
		lines []string
	}
	byName := make(map[string]*family)
	order := make([]string, 0, len(s.Counters)+len(s.Gauges)+len(s.Histograms))
	fam := func(name, kind string) *family {
		f := byName[name]
		if f == nil {
			f = &family{name: name, kind: kind}
			byName[name] = f
			order = append(order, name)
		}
		return f
	}
	for _, c := range s.Counters {
		f := fam(c.Name, "counter")
		f.lines = append(f.lines, fmt.Sprintf("%s%s %d", c.Name, labelsText(c.Labels, "", ""), c.Value))
	}
	for _, g := range s.Gauges {
		f := fam(g.Name, "gauge")
		f.lines = append(f.lines, fmt.Sprintf("%s%s %s", g.Name, labelsText(g.Labels, "", ""), formatFloat(g.Value)))
	}
	for _, h := range s.Histograms {
		f := fam(h.Name, "histogram")
		cum := int64(0)
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			f.lines = append(f.lines, fmt.Sprintf("%s_bucket%s %d",
				h.Name, labelsText(h.Labels, "le", formatFloat(bound)), cum))
		}
		f.lines = append(f.lines, fmt.Sprintf("%s_bucket%s %d",
			h.Name, labelsText(h.Labels, "le", "+Inf"), h.Count))
		f.lines = append(f.lines, fmt.Sprintf("%s_sum%s %s", h.Name, labelsText(h.Labels, "", ""), formatFloat(h.Sum)))
		f.lines = append(f.lines, fmt.Sprintf("%s_count%s %d", h.Name, labelsText(h.Labels, "", ""), h.Count))
	}
	sort.Strings(order)
	for _, name := range order {
		f := byName[name]
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, line := range f.lines {
			if _, err := io.WriteString(w, line+"\n"); err != nil {
				return err
			}
		}
	}
	return nil
}

// labelsText renders a label set (plus an optional extra label appended
// last, used for histogram le bounds) in exposition syntax; empty sets
// render as nothing.
func labelsText(ls labelSet, extraKey, extraValue string) string {
	if len(ls) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	if extraKey != "" {
		if len(ls) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraKey)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extraValue))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// formatFloat renders a float the shortest way that round-trips.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
