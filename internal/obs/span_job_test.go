package obs

// span_job_test.go covers the per-job tracer scoping the wasabid daemon
// uses: common correlation args on every span, retrospective Record
// spans, root re-parenting, and post-hoc span annotation.

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// decodeSpans parses a serialized trace into its complete events and
// metadata events.
func decodeSpans(t *testing.T, tr *Tracer) (spans []chromeEvent, meta []chromeEvent) {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			spans = append(spans, ev)
		} else {
			meta = append(meta, ev)
		}
	}
	return spans, meta
}

func TestScopedTracerCommonArgsAndRootParent(t *testing.T) {
	anchor := time.Now().Add(-50 * time.Millisecond)
	tr := NewTracerAt(anchor)
	tr.SetProcessName("wasabid job-1")
	tr.SetCommonArgs("job_id", "job-1", "tenant", "acme", "trace_id", "abc123")
	tr.SetRootParent("run")

	root := tr.Start("corpus", "pipeline")
	child := root.Child("app:HD", "app")
	child.SetArg("cached", "true")
	child.End()
	root.End()

	now := time.Now()
	tr.Record("queue-wait", "sched", anchor, anchor.Add(10*time.Millisecond), "parent", "job")
	tr.Record("run", "sched", anchor.Add(10*time.Millisecond), now, "parent", "job")
	tr.Record("job", "job", anchor, now, "state", "done")

	if got := tr.SpanCount(); got != 5 {
		t.Fatalf("SpanCount = %d, want 5", got)
	}
	spans, meta := decodeSpans(t, tr)
	if len(spans) != 5 {
		t.Fatalf("serialized %d complete events, want 5", len(spans))
	}
	byName := map[string]chromeEvent{}
	for _, ev := range spans {
		byName[ev.Name] = ev
		// Common args reach every span, Start'd and Recorded alike.
		if ev.Args["job_id"] != "job-1" || ev.Args["tenant"] != "acme" || ev.Args["trace_id"] != "abc123" {
			t.Fatalf("span %q missing common args: %v", ev.Name, ev.Args)
		}
		if ev.TS < 0 {
			t.Fatalf("span %q ts = %d, want >= 0 (anchored at submission)", ev.Name, ev.TS)
		}
	}
	// The parentless Start'd root adopts the configured root parent...
	if got := byName["corpus"].Args["parent"]; got != "run" {
		t.Fatalf("corpus parent = %q, want run", got)
	}
	// ...explicit parentage wins over it...
	if got := byName["app:HD"].Args["parent"]; got != "corpus" {
		t.Fatalf("app:HD parent = %q, want corpus", got)
	}
	// ...and Recorded spans keep exactly the parentage they were given,
	// so the true root stays a root.
	if got := byName["queue-wait"].Args["parent"]; got != "job" {
		t.Fatalf("queue-wait parent = %q, want job", got)
	}
	if _, ok := byName["job"].Args["parent"]; ok {
		t.Fatalf("job span acquired a parent: %v", byName["job"].Args)
	}
	// SetArg annotation and explicit Record args survive the common-arg
	// merge.
	if byName["app:HD"].Args["cached"] != "true" || byName["job"].Args["state"] != "done" {
		t.Fatalf("span annotations lost: app=%v job=%v", byName["app:HD"].Args, byName["job"].Args)
	}
	// Process metadata reflects the override.
	named := false
	for _, ev := range meta {
		if ev.Name == "process_name" && ev.Args["name"] == "wasabid job-1" {
			named = true
		}
	}
	if !named {
		t.Fatalf("process_name metadata not overridden: %v", meta)
	}
}

// TestCommonArgsDoNotOverrideExplicit: a span arg that collides with a
// common key keeps the span's value.
func TestCommonArgsDoNotOverrideExplicit(t *testing.T) {
	tr := NewTracer()
	tr.SetCommonArgs("tenant", "common")
	sp := tr.Start("s", "c", "tenant", "explicit")
	sp.End()
	spans, _ := decodeSpans(t, tr)
	if got := spans[0].Args["tenant"]; got != "explicit" {
		t.Fatalf("tenant arg = %q, want the span's explicit value", got)
	}
}

// TestRecordDoesNotHoldLanes: retrospective spans reuse lane 0 rather
// than widening the lane axis.
func TestRecordDoesNotHoldLanes(t *testing.T) {
	tr := NewTracer()
	now := time.Now()
	for i := 0; i < 3; i++ {
		tr.Record("r", "c", now.Add(-time.Millisecond), now)
	}
	spans, _ := decodeSpans(t, tr)
	for _, ev := range spans {
		if ev.TID != 1 {
			t.Fatalf("recorded span on tid %d, want 1 (lane freed per record)", ev.TID)
		}
	}
}

// TestNilTracerJobSurface: the per-job API is nil-safe like the rest of
// the package.
func TestNilTracerJobSurface(t *testing.T) {
	var tr *Tracer
	tr.SetCommonArgs("k", "v")
	tr.SetRootParent("run")
	tr.SetProcessName("p")
	tr.Record("r", "c", time.Now(), time.Now())
	if got := tr.SpanCount(); got != 0 {
		t.Fatalf("nil SpanCount = %d", got)
	}
	var sp *Span
	sp.SetArg("k", "v") // must not panic
}
