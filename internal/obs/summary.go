// summary.go derives the machine-readable run summary from a metrics
// snapshot: the BENCH_pipeline.json stage report cmd/benchreport writes
// (the pipeline analogue of the paper's §4.3 cost accounting). Human-
// readable output went through a bespoke table formatter until the
// service work standardized every text surface on the Prometheus
// exposition writer (exposition.go).
package obs

import (
	"encoding/json"
)

// StageStats is one pipeline stage's roll-up in the BENCH_pipeline.json
// schema: stage → {wall_ms, count, tokens}.
type StageStats struct {
	// WallMS is the summed wall-clock time of the stage across all its
	// executions (milliseconds; varies run to run).
	WallMS float64 `json:"wall_ms"`
	// Count is how many times the stage executed (deterministic).
	Count int64 `json:"count"`
	// Tokens is the LLM token spend attributed to the stage
	// (deterministic; zero for non-LLM stages).
	Tokens int64 `json:"tokens"`
}

// PipelineReport is the machine-readable bench artifact.
type PipelineReport struct {
	Schema string                `json:"schema"`
	Stages map[string]StageStats `json:"stages"`
	// Source, when present, is the snapshot store's read/parse roll-up
	// for the run (docs/PERFORMANCE.md): with the parse-once pipeline,
	// parses == unique files and the reuse ratio reports how much of the
	// load was served from interned artifacts.
	Source *SourceStats `json:"source,omitempty"`
	// Cache, when present, is the cold-vs-warm analysis-cache benchmark
	// cmd/benchreport measures (docs/SERVICE.md).
	Cache *CacheBench `json:"cache,omitempty"`
	// SingleEdit, when present, is the warm single-file-edit benchmark:
	// a third run after touching exactly one source file of a warm,
	// snapshot-backed corpus (docs/PERFORMANCE.md).
	SingleEdit *EditBench `json:"single_edit,omitempty"`
	// Restart, when present, is the restart-warm benchmark: a cold run
	// into a disk-backed cache, then a fresh cache handle, snapshot store
	// and registry — a simulated process restart — re-running the same
	// corpus entirely from persisted reviews and retry-facts
	// (docs/PERFORMANCE.md).
	Restart *RestartBench `json:"restart,omitempty"`
	// Serve, when present, is the multi-tenant scheduler load benchmark:
	// many simulated tenants hammering a live wasabid instance
	// (docs/SCHEDULING.md).
	Serve *ServeBench `json:"serve,omitempty"`
	// Scale, when present, is the generated-corpus scale sweep
	// (docs/CORPUSGEN.md): cold and warm full runs over synthetic corpora
	// at increasing scale factors, recording how pipeline cost grows with
	// population size. Only `make bench` requests it (the sweep generates
	// and analyzes hundreds of apps).
	Scale []ScaleBench `json:"scale_sweep,omitempty"`
}

// ScaleBench is one point of the generated-corpus scale sweep: a corpus
// produced by internal/corpusgen at the given scale factor is analyzed
// cold (empty cache) and warm (populated cache). Wall times are honest
// measurements; app/structure counts and token rows are deterministic
// for a fixed seed — and a warm corpus must cost zero fresh tokens at
// any scale.
type ScaleBench struct {
	Scale           int     `json:"scale"`
	Apps            int     `json:"apps"`
	Structures      int     `json:"structures"`
	ColdWallMS      float64 `json:"cold_wall_ms"`
	WarmWallMS      float64 `json:"warm_wall_ms"`
	ColdFreshTokens int64   `json:"cold_fresh_tokens"`
	WarmFreshTokens int64   `json:"warm_fresh_tokens"`
}

// SourceStats is the snapshot store's roll-up, derived from the
// source_* counters. Every field is deterministic.
type SourceStats struct {
	// Reads counts file loads (bytes read + hashed); Parses the ASTs
	// actually built; Reuses the loads served from an interned artifact.
	Reads  int64 `json:"reads"`
	Parses int64 `json:"parses"`
	Reuses int64 `json:"reuses"`
	// Bytes totals the bytes read.
	Bytes int64 `json:"bytes"`
	// ReuseRatio is Reuses/Reads (0 when nothing was read).
	ReuseRatio float64 `json:"reuse_ratio"`
}

// EditBench is the warm single-file-edit trajectory: after a cold and a
// warm full run against one store and cache, one source file is touched
// and the corpus re-analyzed. Wall time is an honest measurement; the
// counter deltas are deterministic — exactly one file re-parses, exactly
// one file re-extracts, exactly one review re-runs.
type EditBench struct {
	WallMS       float64 `json:"wall_ms"`
	FreshTokens  int64   `json:"fresh_tokens"`
	Parses       int64   `json:"parses"`
	Extracts     int64   `json:"extracts"`
	ReviewMisses int64   `json:"review_misses"`
}

// RestartBench is the restart-warm trajectory: a cold run populates a
// disk-backed cache, then every in-memory handle (cache, snapshot
// store, metrics registry) is rebuilt over the same directory and the
// corpus re-analyzed. Wall times are honest measurements; the counters
// are deterministic — a restart-warm run parses nothing, extracts
// nothing and spends nothing, hydrating one facts entry per file and
// loading every review from disk.
type RestartBench struct {
	ColdWallMS      float64 `json:"cold_wall_ms"`
	WarmWallMS      float64 `json:"warm_wall_ms"`
	WarmFreshTokens int64   `json:"warm_fresh_tokens"`
	WarmParses      int64   `json:"warm_parses"`
	WarmExtracts    int64   `json:"warm_extracts"`
	WarmHydrations  int64   `json:"warm_hydrations"`
	DiskLoads       int64   `json:"disk_loads"`
}

// CacheBench compares a cold pipeline run against a warm, cache-served
// re-run of the same corpus. Wall times are honest measurements; token
// and hit/miss rows are deterministic.
type CacheBench struct {
	ColdWallMS      float64 `json:"cold_wall_ms"`
	WarmWallMS      float64 `json:"warm_wall_ms"`
	ColdFreshTokens int64   `json:"cold_fresh_tokens"`
	WarmFreshTokens int64   `json:"warm_fresh_tokens"`
	WarmHits        int64   `json:"warm_hits"`
	WarmMisses      int64   `json:"warm_misses"`
}

// ServeBench is the scheduler load benchmark: Tenants simulated tenants
// each submit Jobs jobs against a wasabid instance running Slots worker
// slots, and the driver waits for every job to complete. Wall time,
// throughput and the latency quantiles are honest measurements (they
// vary run to run); Completed and Rejections are exact client-side
// counts. The quantiles come from the server's own
// server_sched_job_wait_ms / server_sched_job_run_ms histograms and are
// zero when the driver targets a remote daemon whose registry it cannot
// read.
type ServeBench struct {
	Tenants    int     `json:"tenants"`
	Jobs       int     `json:"jobs_per_tenant"`
	Slots      int     `json:"slots"`
	Completed  int64   `json:"completed"`
	Rejections int64   `json:"rejections_429"`
	WallMS     float64 `json:"wall_ms"`
	JobsPerSec float64 `json:"jobs_per_sec"`
	WaitP50MS  float64 `json:"wait_p50_ms"`
	WaitP99MS  float64 `json:"wait_p99_ms"`
	RunP50MS   float64 `json:"run_p50_ms"`
	RunP99MS   float64 `json:"run_p99_ms"`
	// MaxBusySlots is the high-water mark of concurrently busy slots
	// (server_sched_slots_busy_max) — proof the load actually overlapped.
	MaxBusySlots float64 `json:"max_busy_slots"`
}

// PipelineReportSchema identifies the BENCH_pipeline.json format (v2
// added the optional cold-vs-warm cache section; v3 the snapshot-store
// source section and the warm single-file-edit benchmark; v4 the
// multi-tenant serve benchmark; v5 the generated-corpus scale sweep;
// v6 the restart-warm benchmark over the persisted retry-facts tier).
const PipelineReportSchema = "wasabi-bench-pipeline/v6"

// StageMetric is the histogram every stage observes its wall time into
// (label: stage), and StageTokensMetric the counter LLM token spend is
// attributed to stages with.
const (
	StageMetric       = "core_stage_ms"
	StageTokensMetric = "core_stage_tokens_total"
)

// BuildPipelineReport rolls a snapshot up into the per-stage report:
// wall time and execution count from the core_stage_ms histograms, token
// spend from the core_stage_tokens_total counters.
func BuildPipelineReport(s Snapshot) PipelineReport {
	rep := PipelineReport{Schema: PipelineReportSchema, Stages: map[string]StageStats{}}
	for _, h := range s.Histograms {
		if h.Name != StageMetric {
			continue
		}
		stage := labelValue(h.Labels, "stage")
		if stage == "" {
			continue
		}
		st := rep.Stages[stage]
		st.WallMS += h.Sum
		st.Count += h.Count
		rep.Stages[stage] = st
	}
	for _, c := range s.Counters {
		if c.Name != StageTokensMetric {
			continue
		}
		stage := labelValue(c.Labels, "stage")
		if stage == "" {
			continue
		}
		st := rep.Stages[stage]
		st.Tokens += c.Value
		rep.Stages[stage] = st
	}
	if src := buildSourceStats(s); src.Reads > 0 {
		rep.Source = &src
	}
	return rep
}

// buildSourceStats rolls the source_* counters up into the v3 source
// section.
func buildSourceStats(s Snapshot) SourceStats {
	st := SourceStats{
		Reads:  s.Counter("source_files_loaded_total"),
		Parses: s.Counter("source_parse_total"),
		Reuses: s.Counter("source_reuse_total"),
		Bytes:  s.Counter("source_bytes_total"),
	}
	if st.Reads > 0 {
		st.ReuseRatio = float64(st.Reuses) / float64(st.Reads)
	}
	return st
}

// MarshalIndent renders the report as indented JSON (map keys serialize
// sorted, so equal reports produce equal bytes).
func (r PipelineReport) MarshalIndent() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// labelValue returns the value of key in ls, or "".
func labelValue(ls labelSet, key string) string {
	for _, l := range ls {
		if l.Key == key {
			return l.Value
		}
	}
	return ""
}
