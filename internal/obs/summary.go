// summary.go derives human- and machine-readable run summaries from a
// metrics snapshot: the end-of-run table cmd/wasabi prints and the
// BENCH_pipeline.json stage report cmd/benchreport writes (the pipeline
// analogue of the paper's §4.3 cost accounting).
package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// StageStats is one pipeline stage's roll-up in the BENCH_pipeline.json
// schema: stage → {wall_ms, count, tokens}.
type StageStats struct {
	// WallMS is the summed wall-clock time of the stage across all its
	// executions (milliseconds; varies run to run).
	WallMS float64 `json:"wall_ms"`
	// Count is how many times the stage executed (deterministic).
	Count int64 `json:"count"`
	// Tokens is the LLM token spend attributed to the stage
	// (deterministic; zero for non-LLM stages).
	Tokens int64 `json:"tokens"`
}

// PipelineReport is the machine-readable bench artifact.
type PipelineReport struct {
	Schema string                `json:"schema"`
	Stages map[string]StageStats `json:"stages"`
}

// PipelineReportSchema identifies the BENCH_pipeline.json format.
const PipelineReportSchema = "wasabi-bench-pipeline/v1"

// StageMetric is the histogram every stage observes its wall time into
// (label: stage), and StageTokensMetric the counter LLM token spend is
// attributed to stages with.
const (
	StageMetric       = "core_stage_ms"
	StageTokensMetric = "core_stage_tokens_total"
)

// BuildPipelineReport rolls a snapshot up into the per-stage report:
// wall time and execution count from the core_stage_ms histograms, token
// spend from the core_stage_tokens_total counters.
func BuildPipelineReport(s Snapshot) PipelineReport {
	rep := PipelineReport{Schema: PipelineReportSchema, Stages: map[string]StageStats{}}
	for _, h := range s.Histograms {
		if h.Name != StageMetric {
			continue
		}
		stage := labelValue(h.Labels, "stage")
		if stage == "" {
			continue
		}
		st := rep.Stages[stage]
		st.WallMS += h.Sum
		st.Count += h.Count
		rep.Stages[stage] = st
	}
	for _, c := range s.Counters {
		if c.Name != StageTokensMetric {
			continue
		}
		stage := labelValue(c.Labels, "stage")
		if stage == "" {
			continue
		}
		st := rep.Stages[stage]
		st.Tokens += c.Value
		rep.Stages[stage] = st
	}
	return rep
}

// MarshalIndent renders the report as indented JSON (map keys serialize
// sorted, so equal reports produce equal bytes).
func (r PipelineReport) MarshalIndent() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// SummaryTable renders the end-of-run observability table: per-stage
// wall time and counts, then every counter in canonical order. Wall
// times vary run to run; the counter block is deterministic.
func SummaryTable(s Snapshot) string {
	var b strings.Builder
	rep := BuildPipelineReport(s)
	stages := make([]string, 0, len(rep.Stages))
	for st := range rep.Stages {
		stages = append(stages, st)
	}
	sort.Strings(stages)
	b.WriteString("== run observability ==\n")
	if len(stages) > 0 {
		fmt.Fprintf(&b, "%-12s %10s %8s %12s\n", "stage", "wall_ms", "count", "tokens")
		for _, st := range stages {
			v := rep.Stages[st]
			fmt.Fprintf(&b, "%-12s %10.1f %8d %12d\n", st, v.WallMS, v.Count, v.Tokens)
		}
	}
	if len(s.Counters) > 0 {
		b.WriteString("counters:\n")
		for _, c := range s.Counters {
			fmt.Fprintf(&b, "  %-58s %10d\n", c.Labels.id(c.Name), c.Value)
		}
	}
	return b.String()
}

// labelValue returns the value of key in ls, or "".
func labelValue(ls labelSet, key string) string {
	for _, l := range ls {
		if l.Key == key {
			return l.Value
		}
	}
	return ""
}
