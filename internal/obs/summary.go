// summary.go derives the machine-readable run summary from a metrics
// snapshot: the BENCH_pipeline.json stage report cmd/benchreport writes
// (the pipeline analogue of the paper's §4.3 cost accounting). Human-
// readable output went through a bespoke table formatter until the
// service work standardized every text surface on the Prometheus
// exposition writer (exposition.go).
package obs

import (
	"encoding/json"
)

// StageStats is one pipeline stage's roll-up in the BENCH_pipeline.json
// schema: stage → {wall_ms, count, tokens}.
type StageStats struct {
	// WallMS is the summed wall-clock time of the stage across all its
	// executions (milliseconds; varies run to run).
	WallMS float64 `json:"wall_ms"`
	// Count is how many times the stage executed (deterministic).
	Count int64 `json:"count"`
	// Tokens is the LLM token spend attributed to the stage
	// (deterministic; zero for non-LLM stages).
	Tokens int64 `json:"tokens"`
}

// PipelineReport is the machine-readable bench artifact.
type PipelineReport struct {
	Schema string                `json:"schema"`
	Stages map[string]StageStats `json:"stages"`
	// Cache, when present, is the cold-vs-warm analysis-cache benchmark
	// cmd/benchreport measures (docs/SERVICE.md).
	Cache *CacheBench `json:"cache,omitempty"`
}

// CacheBench compares a cold pipeline run against a warm, cache-served
// re-run of the same corpus. Wall times are honest measurements; token
// and hit/miss rows are deterministic.
type CacheBench struct {
	ColdWallMS      float64 `json:"cold_wall_ms"`
	WarmWallMS      float64 `json:"warm_wall_ms"`
	ColdFreshTokens int64   `json:"cold_fresh_tokens"`
	WarmFreshTokens int64   `json:"warm_fresh_tokens"`
	WarmHits        int64   `json:"warm_hits"`
	WarmMisses      int64   `json:"warm_misses"`
}

// PipelineReportSchema identifies the BENCH_pipeline.json format (v2
// added the optional cold-vs-warm cache section).
const PipelineReportSchema = "wasabi-bench-pipeline/v2"

// StageMetric is the histogram every stage observes its wall time into
// (label: stage), and StageTokensMetric the counter LLM token spend is
// attributed to stages with.
const (
	StageMetric       = "core_stage_ms"
	StageTokensMetric = "core_stage_tokens_total"
)

// BuildPipelineReport rolls a snapshot up into the per-stage report:
// wall time and execution count from the core_stage_ms histograms, token
// spend from the core_stage_tokens_total counters.
func BuildPipelineReport(s Snapshot) PipelineReport {
	rep := PipelineReport{Schema: PipelineReportSchema, Stages: map[string]StageStats{}}
	for _, h := range s.Histograms {
		if h.Name != StageMetric {
			continue
		}
		stage := labelValue(h.Labels, "stage")
		if stage == "" {
			continue
		}
		st := rep.Stages[stage]
		st.WallMS += h.Sum
		st.Count += h.Count
		rep.Stages[stage] = st
	}
	for _, c := range s.Counters {
		if c.Name != StageTokensMetric {
			continue
		}
		stage := labelValue(c.Labels, "stage")
		if stage == "" {
			continue
		}
		st := rep.Stages[stage]
		st.Tokens += c.Value
		rep.Stages[stage] = st
	}
	return rep
}

// MarshalIndent renders the report as indented JSON (map keys serialize
// sorted, so equal reports produce equal bytes).
func (r PipelineReport) MarshalIndent() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// labelValue returns the value of key in ls, or "".
func labelValue(ls labelSet, key string) string {
	for _, l := range ls {
		if l.Key == key {
			return l.Value
		}
	}
	return ""
}
