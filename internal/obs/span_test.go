package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

// decodeTrace unmarshals a Chrome trace-event JSON document.
func decodeTrace(t *testing.T, b []byte) map[string]any {
	t.Helper()
	var doc map[string]any
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if _, ok := doc["traceEvents"].([]any); !ok {
		t.Fatal("trace lacks a traceEvents array")
	}
	return doc
}

func TestSpansEmitChromeTraceJSON(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("corpus", "pipeline")
	app := root.Child("app:HD", "app", "app", "HD")
	stage := app.Child("identify", "stage")
	stage.End()
	app.End()
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	doc := decodeTrace(t, buf.Bytes())
	events := doc["traceEvents"].([]any)

	var complete, meta int
	var sawParent bool
	for _, raw := range events {
		e := raw.(map[string]any)
		switch e["ph"] {
		case "X":
			complete++
			if e["dur"].(float64) < 1 {
				t.Fatalf("complete event %v has zero duration", e["name"])
			}
			if args, ok := e["args"].(map[string]any); ok {
				if p, ok := args["parent"]; ok && p == "app:HD" {
					sawParent = true
				}
			}
		case "M":
			meta++
		default:
			t.Fatalf("unexpected phase %v", e["ph"])
		}
	}
	if complete != 3 {
		t.Fatalf("%d complete events, want 3", complete)
	}
	if meta == 0 {
		t.Fatal("no metadata events (process/thread names)")
	}
	if !sawParent {
		t.Fatal("child span lost its parent attribution")
	}
}

// TestLaneReuse asserts that sequential root spans share lane 1 while
// overlapping root spans get distinct lanes — the worker-slot reading of
// the tid axis.
func TestLaneReuse(t *testing.T) {
	tr := NewTracer()
	a := tr.Start("a", "x")
	b := tr.Start("b", "x") // overlaps a -> new lane
	a.End()
	b.End()
	c := tr.Start("c", "x") // a's lane is free again
	c.End()

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	tid := map[string]float64{}
	for _, raw := range decodeTrace(t, buf.Bytes())["traceEvents"].([]any) {
		e := raw.(map[string]any)
		if e["ph"] == "X" {
			tid[e["name"].(string)] = e["tid"].(float64)
		}
	}
	if tid["a"] == tid["b"] {
		t.Fatalf("overlapping spans share lane %v", tid["a"])
	}
	if tid["c"] != tid["a"] {
		t.Fatalf("freed lane not reused: a=%v c=%v", tid["a"], tid["c"])
	}
}

// TestConcurrentSpans hammers the tracer from many goroutines (run under
// -race by make race) and checks the resulting document stays valid.
func TestConcurrentSpans(t *testing.T) {
	tr := NewTracer()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				sp := tr.Start("work", "stress")
				sp.Child("inner", "stress").End()
				sp.End()
			}
		}()
	}
	wg.Wait()
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	events := decodeTrace(t, buf.Bytes())["traceEvents"].([]any)
	complete := 0
	for _, raw := range events {
		if raw.(map[string]any)["ph"] == "X" {
			complete++
		}
	}
	if complete != 8*50*2 {
		t.Fatalf("%d complete events, want %d", complete, 8*50*2)
	}
}
