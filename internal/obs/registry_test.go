package obs

import (
	"bytes"
	"sync"
	"testing"
)

func TestCounterGaugeHistogramBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("events_total", "kind", "a")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if same := r.Counter("events_total", "kind", "a"); same != c {
		t.Fatal("same identity must return the same counter")
	}
	if other := r.Counter("events_total", "kind", "b"); other == c {
		t.Fatal("different labels must return a different counter")
	}

	g := r.Gauge("level")
	g.Set(2.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", got)
	}

	h := r.Histogram("lat_ms", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 5, 50, 500} {
		h.Observe(v)
	}
	snap := r.Snapshot()
	hp, ok := snap.HistogramPoint("lat_ms")
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	if hp.Count != 4 || hp.Sum != 555.5 {
		t.Fatalf("histogram count/sum = %d/%v, want 4/555.5", hp.Count, hp.Sum)
	}
	want := []int64{1, 1, 1, 1} // one per bucket incl. +Inf
	for i, n := range want {
		if hp.Counts[i] != n {
			t.Fatalf("bucket %d = %d, want %d (%v)", i, hp.Counts[i], n, hp.Counts)
		}
	}
}

func TestLabelOrderIsCanonical(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("m", "x", "1", "y", "2")
	b := r.Counter("m", "y", "2", "x", "1")
	if a != b {
		t.Fatal("label order must not create distinct instruments")
	}
	snap := r.Snapshot()
	if got := snap.Counter("m", "y", "2", "x", "1"); got != 0 {
		// counter was never incremented; presence check below
		t.Fatalf("lookup = %d, want 0", got)
	}
	if len(snap.Counters) != 1 {
		t.Fatalf("snapshot has %d counters, want 1", len(snap.Counters))
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("y").Set(1)
	r.Histogram("z", LatencyBuckets).Observe(1)
	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
	if _, err := snap.MarshalIndent(); err != nil {
		t.Fatal(err)
	}

	var o *Observer
	o.Reg().Counter("x").Inc()
	sp := o.Trc().Start("s", "c")
	sp.Child("t", "c").End()
	sp.End()
	var tr *Tracer
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotDeterministicOrdering registers the same instruments in
// different orders from many goroutines and asserts the serialized
// snapshots are byte-identical — the ordering contract counters'
// cross-worker determinism rests on.
func TestSnapshotDeterministicOrdering(t *testing.T) {
	build := func(reverse bool) []byte {
		r := NewRegistry()
		names := []string{"a_total", "b_total", "c_total", "d_total"}
		apps := []string{"HD", "HB", "CA", "EL"}
		if reverse {
			for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
				names[i], names[j] = names[j], names[i]
			}
		}
		var wg sync.WaitGroup
		for _, n := range names {
			for _, app := range apps {
				wg.Add(1)
				go func(n, app string) {
					defer wg.Done()
					for i := 0; i < 100; i++ {
						r.Counter(n, "app", app).Inc()
					}
					r.Histogram("h_ms", LatencyBuckets, "app", app).Observe(1)
				}(n, app)
			}
		}
		wg.Wait()
		out, err := r.Snapshot().MarshalIndent()
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	if !bytes.Equal(build(false), build(true)) {
		t.Fatal("snapshots differ across registration order")
	}
}

func TestBuildPipelineReport(t *testing.T) {
	r := NewRegistry()
	r.Histogram(StageMetric, LatencyBuckets, "stage", "identify").Observe(10)
	r.Histogram(StageMetric, LatencyBuckets, "stage", "identify").Observe(30)
	r.Histogram(StageMetric, LatencyBuckets, "stage", "dynamic").Observe(5)
	r.Counter(StageTokensMetric, "stage", "identify").Add(1234)
	rep := BuildPipelineReport(r.Snapshot())
	if rep.Schema != PipelineReportSchema {
		t.Fatalf("schema = %q", rep.Schema)
	}
	id := rep.Stages["identify"]
	if id.WallMS != 40 || id.Count != 2 || id.Tokens != 1234 {
		t.Fatalf("identify stats = %+v", id)
	}
	if dyn := rep.Stages["dynamic"]; dyn.Count != 1 || dyn.Tokens != 0 {
		t.Fatalf("dynamic stats = %+v", dyn)
	}
}

// TestHistogramQuantile pins the bucket-interpolation estimator the
// scheduler summaries are derived from.
func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{10, 20, 40})
	// 4 observations in (0,10], 4 in (10,20], 2 in (20,40].
	for _, v := range []float64{2, 4, 6, 8, 12, 14, 16, 18, 25, 35} {
		h.Observe(v)
	}
	hp, _ := r.Snapshot().HistogramPoint("lat")
	if got := hp.Quantile(0.5); got != 12.5 {
		t.Fatalf("p50 = %v, want 12.5 (rank 5 interpolated in (10,20])", got)
	}
	if got := hp.Quantile(0.2); got != 5 {
		t.Fatalf("p20 = %v, want 5 (rank 2 interpolated in (0,10])", got)
	}
	if got := hp.Quantile(1); got != 40 {
		t.Fatalf("p100 = %v, want the last bound", got)
	}
	// Observations beyond every bound clamp to the last finite bound.
	h.Observe(10000)
	hp, _ = r.Snapshot().HistogramPoint("lat")
	if got := hp.Quantile(0.99); got != 40 {
		t.Fatalf("p99 with +Inf mass = %v, want clamp to 40", got)
	}
	if got := (HistogramPoint{}).Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", got)
	}
}

// TestHostileLabelValuesRoundTrip: tenant names become label values
// verbatim, so values containing the identity-string separator bytes
// ('=', ',', '{', '}') and escape-worthy bytes must survive the trip
// through Snapshot untouched — the registry stores name and labels
// beside each instrument instead of re-parsing its identity string.
func TestHostileLabelValuesRoundTrip(t *testing.T) {
	hostile := "a=b,c{d}e\"f\\g\nh"
	r := NewRegistry()
	r.Counter("jobs_total", "tenant", hostile).Add(2)
	r.Gauge("depth", "tenant", hostile).Set(3)
	r.Histogram("lat_ms", []float64{1}, "tenant", hostile).Observe(0.5)

	snap := r.Snapshot()
	if got := snap.Counter("jobs_total", "tenant", hostile); got != 2 {
		t.Fatalf("counter lookup by hostile label = %d, want 2", got)
	}
	for _, c := range snap.Counters {
		if c.Name != "jobs_total" || len(c.Labels) != 1 || c.Labels[0].Key != "tenant" || c.Labels[0].Value != hostile {
			t.Fatalf("counter point corrupted: %+v", c)
		}
	}
	for _, g := range snap.Gauges {
		if g.Name != "depth" || g.Labels[0].Value != hostile {
			t.Fatalf("gauge point corrupted: %+v", g)
		}
	}
	hp, ok := snap.HistogramPoint("lat_ms", "tenant", hostile)
	if !ok || hp.Labels[0].Value != hostile {
		t.Fatalf("histogram point corrupted: ok=%v %+v", ok, hp)
	}
}

// TestRemoveGauge: eviction deletes a gauge's identity; re-registering
// it afterwards starts fresh.
func TestRemoveGauge(t *testing.T) {
	r := NewRegistry()
	r.Gauge("server_sched_queue_depth", "tenant", "acme").Set(7)
	r.Gauge("server_sched_queue_depth", "tenant", "other").Set(1)
	r.RemoveGauge("server_sched_queue_depth", "tenant", "acme")
	snap := r.Snapshot()
	if len(snap.Gauges) != 1 || snap.Gauges[0].Labels[0].Value != "other" {
		t.Fatalf("gauges after removal = %+v, want only tenant=other", snap.Gauges)
	}
	// Labels match in any order, same as registration.
	r.Gauge("g2", "a", "1", "b", "2").Set(5)
	r.RemoveGauge("g2", "b", "2", "a", "1")
	if n := len(r.Snapshot().Gauges); n != 1 {
		t.Fatalf("canonical-order removal missed: %d gauges", n)
	}
	// A re-created gauge is a fresh instrument.
	if v := r.Gauge("server_sched_queue_depth", "tenant", "acme").Value(); v != 0 {
		t.Fatalf("re-created gauge = %v, want 0", v)
	}
	// Nil registry and absent identities are no-ops.
	(*Registry)(nil).RemoveGauge("x")
	r.RemoveGauge("never_registered")
}

// TestSnapshotAddGauge: derived gauges insert in canonical identity
// order, so post-processed snapshots stay deterministic.
func TestSnapshotAddGauge(t *testing.T) {
	r := NewRegistry()
	r.Gauge("m_a").Set(1)
	r.Gauge("m_z").Set(2)
	snap := r.Snapshot()
	snap.AddGauge("m_q_quantile", 3.5, "q", "0.50")
	snap.AddGauge("m_b", 4)
	var names []string
	for _, g := range snap.Gauges {
		names = append(names, g.Labels.id(g.Name))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("gauges out of order after AddGauge: %v", names)
		}
	}
	var buf1, buf2 bytes.Buffer
	if err := WriteText(&buf1, snap); err != nil {
		t.Fatal(err)
	}
	if err := WriteText(&buf2, snap); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Fatal("exposition of an augmented snapshot is not deterministic")
	}
}

// TestRemoveCounterReturnsFinalValue: retiring a counter hands back its
// final value so the caller can fold it into a surviving aggregate —
// the eviction contract the scheduler's _retired tenant relies on.
func TestRemoveCounterReturnsFinalValue(t *testing.T) {
	r := NewRegistry()
	r.Counter("server_sched_jobs_total", "tenant", "acme").Add(5)
	r.Counter("server_sched_jobs_total", "tenant", "other").Add(2)
	if v := r.RemoveCounter("server_sched_jobs_total", "tenant", "acme"); v != 5 {
		t.Fatalf("RemoveCounter = %d, want 5", v)
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 1 || snap.Counters[0].Labels[0].Value != "other" {
		t.Fatalf("counters after removal = %+v, want only tenant=other", snap.Counters)
	}
	// Fold into a survivor: family sum is conserved.
	r.Counter("server_sched_jobs_total", "tenant", "_retired").Add(5)
	sum := int64(0)
	for _, c := range r.Snapshot().Counters {
		sum += c.Value
	}
	if sum != 7 {
		t.Fatalf("family sum after fold = %d, want 7", sum)
	}
	// Absent identity and nil registry report 0.
	if v := r.RemoveCounter("never_registered"); v != 0 {
		t.Fatalf("absent RemoveCounter = %d, want 0", v)
	}
	if v := (*Registry)(nil).RemoveCounter("x"); v != 0 {
		t.Fatalf("nil RemoveCounter = %d, want 0", v)
	}
	// A re-created counter is a fresh instrument.
	if v := r.Counter("server_sched_jobs_total", "tenant", "acme").Value(); v != 0 {
		t.Fatalf("re-created counter = %d, want 0", v)
	}
}

// TestFoldCounter: retire-and-fold as one registry operation — the
// source vanishes, the destination grows by its value, and edge cases
// (absent source, zero source, nil registry) stay quiet.
func TestFoldCounter(t *testing.T) {
	r := NewRegistry()
	r.Counter("server_sched_jobs_total", "tenant", "acme").Add(5)
	r.Counter("server_sched_jobs_total", "tenant", "other").Add(2)
	if v := r.FoldCounter("server_sched_jobs_total", []string{"tenant", "acme"}, []string{"tenant", "_retired"}); v != 5 {
		t.Fatalf("FoldCounter = %d, want 5", v)
	}
	snap := r.Snapshot()
	if got := snap.Counter("server_sched_jobs_total", "tenant", "_retired"); got != 5 {
		t.Fatalf("_retired after fold = %d, want 5", got)
	}
	for _, c := range snap.Counters {
		if c.Labels[0].Value == "acme" {
			t.Fatalf("source series survived the fold: %+v", c)
		}
	}
	// Folding again into the same destination accumulates.
	r.Counter("server_sched_jobs_total", "tenant", "acme").Add(3)
	r.FoldCounter("server_sched_jobs_total", []string{"tenant", "acme"}, []string{"tenant", "_retired"})
	if got := r.Snapshot().Counter("server_sched_jobs_total", "tenant", "_retired"); got != 8 {
		t.Fatalf("_retired after second fold = %d, want 8", got)
	}
	// A zero-valued source is removed without creating the destination.
	r2 := NewRegistry()
	r2.Counter("x", "tenant", "idle")
	if v := r2.FoldCounter("x", []string{"tenant", "idle"}, []string{"tenant", "_retired"}); v != 0 {
		t.Fatalf("zero-source fold = %d, want 0", v)
	}
	if n := len(r2.Snapshot().Counters); n != 0 {
		t.Fatalf("counters after zero-source fold = %d, want 0", n)
	}
	// Absent source and nil registry report 0 and touch nothing.
	if v := r.FoldCounter("never_registered", []string{"tenant", "a"}, []string{"tenant", "b"}); v != 0 {
		t.Fatalf("absent fold = %d, want 0", v)
	}
	if v := (*Registry)(nil).FoldCounter("x", nil, nil); v != 0 {
		t.Fatalf("nil fold = %d, want 0", v)
	}
}

// TestFoldCounterAtomicUnderScrape: the fold happens under one lock
// acquisition, so a concurrent scrape can never observe the family sum
// dipping — the "sums never go backwards" invariant, proven under -race.
func TestFoldCounterAtomicUnderScrape(t *testing.T) {
	r := NewRegistry()
	const tenants, per = 8, 3
	for i := 0; i < tenants; i++ {
		r.Counter("server_sched_jobs_total", "tenant", string(rune('a'+i))).Add(per)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < tenants; i++ {
			r.FoldCounter("server_sched_jobs_total",
				[]string{"tenant", string(rune('a' + i))},
				[]string{"tenant", "_retired"})
		}
	}()
	for {
		sum := int64(0)
		for _, c := range r.Snapshot().Counters {
			sum += c.Value
		}
		if sum != tenants*per {
			t.Fatalf("family sum mid-fold = %d, want invariant %d", sum, tenants*per)
		}
		select {
		case <-done:
			sum = 0
			for _, c := range r.Snapshot().Counters {
				sum += c.Value
			}
			if sum != tenants*per {
				t.Fatalf("family sum after folds = %d, want %d", sum, tenants*per)
			}
			return
		default:
		}
	}
}

// TestRemoveHistogram: retired distributions are dropped outright (no
// meaningful fold), and removal honors canonical label identity.
func TestRemoveHistogram(t *testing.T) {
	r := NewRegistry()
	bounds := []float64{1, 10}
	r.Histogram("server_tenant_job_ms", bounds, "tenant", "acme").Observe(3)
	r.Histogram("server_tenant_job_ms", bounds, "tenant", "other").Observe(4)
	r.RemoveHistogram("server_tenant_job_ms", "tenant", "acme")
	snap := r.Snapshot()
	if len(snap.Histograms) != 1 || snap.Histograms[0].Labels[0].Value != "other" {
		t.Fatalf("hists after removal = %+v, want only tenant=other", snap.Histograms)
	}
	// Nil registry and absent identities are no-ops.
	(*Registry)(nil).RemoveHistogram("x")
	r.RemoveHistogram("never_registered")
	// A re-created histogram starts empty.
	r.Histogram("server_tenant_job_ms", bounds, "tenant", "acme").Observe(1)
	for _, h := range r.Snapshot().Histograms {
		if h.Labels[0].Value == "acme" && h.Count != 1 {
			t.Fatalf("re-created histogram count = %d, want 1 (fresh instrument)", h.Count)
		}
	}
}
