// Package source is the parse-once snapshot store behind every static
// consumer of corpus bytes. The pipeline's stages are independent by
// design — traditional static analysis, LLM fuzzy comprehension, and
// content-addressed cache keying each interpret the same files (the
// paper's §3.1.1 techniques and the §4.3 cost model price them
// separately) — but that independence used to be paid on the hot path:
// every file was read from disk and parsed into an AST up to three
// times per run. A Store loads each file exactly once per run and
// memoizes the expensive artifact — (bytes, sha256, *ast.File, shared
// token.FileSet positions) — by (path, content hash), so a warm daemon
// re-parses only files whose bytes actually changed.
//
// Consumers receive a Snapshot: the directory's source files in sorted
// order, fully loaded and parsed. Files are immutable once interned;
// derived per-file artifacts (e.g. internal/sast's method extraction)
// piggyback on the same content addressing through File.Memo, which is
// what makes the static tier file-granular and incremental.
//
// Concurrency: a Store is safe for concurrent Load calls across worker
// lanes. Parsing is serialized per (path, hash) entry by a sync.Once;
// the shared token.FileSet is internally synchronized; a File's bytes
// and AST are never mutated after interning, so concurrent readers need
// no locking. All source_* metrics (docs/OBSERVABILITY.md) count
// logical events and are deterministic across worker counts.
package source

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"wasabi/internal/obs"
)

// IsSourceFile reports whether a directory entry counts as application
// source for the static workflows. Tests are excluded; suite.go and
// workload.go hold an app's registered unit tests and manifest.go the
// evaluation ground truth — none of them is application source. Every
// consumer of a Snapshot (sast, llm review keying, cache manifests)
// shares this predicate, so content addresses cover exactly the files
// analyzed.
func IsSourceFile(name string) bool {
	if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
		return false
	}
	return name != "suite.go" && name != "workload.go" && name != "manifest.go"
}

// File is one loaded source file: bytes, content address, and the parsed
// AST, all computed exactly once per (path, content) version. Fields are
// immutable after interning; concurrent readers share them freely.
type File struct {
	// Name is the file basename.
	Name string
	// Path is the full path the file was loaded from.
	Path string
	// Bytes is the raw file content.
	Bytes []byte
	// SHA256 is the lowercase hex SHA-256 of Bytes — the content address
	// review keys and directory manifests are derived from.
	SHA256 string
	// Size is len(Bytes) as an int64 (the manifest shape).
	Size int64
	// AST is the parsed file, nil when ParseErr is set.
	AST *ast.File
	// ParseErr is the parser error for files that do not parse. The LLM
	// reviewer treats such files as unanswerable; the traditional static
	// analysis fails on them, exactly as it did when it parsed itself.
	ParseErr error
	// Fset is the store-wide FileSet AST positions resolve against.
	Fset *token.FileSet

	store *Store
	mu    sync.Mutex
	memo  map[string]any
}

// Memo returns the derived artifact registered under kind, computing it
// with compute at most once per file version. This is the hook the
// file-granular static tier hangs off: extraction results keyed by
// content survive across runs in a long-lived store, so a warm daemon
// recomputes them only for files that changed. compute must be a pure
// function of the file and must not call Memo on the same file.
func (f *File) Memo(kind string, compute func() any) any {
	f.mu.Lock()
	defer f.mu.Unlock()
	if v, ok := f.memo[kind]; ok {
		f.store.reg.Counter("source_derived_reuse_total", "kind", kind).Inc()
		return v
	}
	v := compute()
	f.memo[kind] = v
	f.store.reg.Counter("source_derived_computes_total", "kind", kind).Inc()
	return v
}

// Snapshot is one directory's loaded state: every source file, sorted by
// name, parsed against the store's shared FileSet.
type Snapshot struct {
	// Dir is the directory the snapshot describes.
	Dir string
	// Fset resolves positions for every Files[i].AST.
	Fset *token.FileSet
	// Files are the directory's source files in sorted name order.
	Files []*File
}

// TotalBytes sums the snapshot's file sizes.
func (s *Snapshot) TotalBytes() int64 {
	var n int64
	for _, f := range s.Files {
		n += f.Size
	}
	return n
}

// Names returns the file basenames in snapshot (sorted) order.
func (s *Snapshot) Names() []string {
	out := make([]string, len(s.Files))
	for i, f := range s.Files {
		out[i] = f.Name
	}
	return out
}

// Store interns loaded files by (path, content hash). The zero value is
// not usable; call NewStore. A Store may live for one run (the CLI) or
// across many (the daemon shares one across jobs, which is where the
// incremental wins come from).
//
// Entries are retained for the store's lifetime: every edit of a file
// interns a new version without releasing the old one (see
// docs/KNOWN_ISSUES.md on long-lived daemon growth).
type Store struct {
	reg  *obs.Registry
	fset *token.FileSet

	mu      sync.Mutex
	entries map[string]*storeEntry
}

// storeEntry guards one (path, hash) artifact: once.Do computes it, every
// later Load reuses it.
type storeEntry struct {
	once sync.Once
	file *File
}

// NewStore returns an empty store reporting into reg (nil disables
// metrics).
func NewStore(reg *obs.Registry) *Store {
	return &Store{
		reg:     reg,
		fset:    token.NewFileSet(),
		entries: make(map[string]*storeEntry),
	}
}

// Fset returns the store-wide FileSet.
func (s *Store) Fset() *token.FileSet { return s.fset }

// Load reads every source file of dir — exactly once each — and returns
// the snapshot. Bytes are read and hashed on every call (that is how
// change detection works); the parse and everything derived from it are
// reused when the content hash matches a previously interned version.
// Unparseable files do not fail the load: they carry ParseErr, and each
// consumer decides (sast fails, llm degrades to "no answer").
func (s *Store) Load(dir string) (*Snapshot, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("source: %w", err)
	}
	snap := &Snapshot{Dir: dir, Fset: s.fset}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !IsSourceFile(name) {
			continue
		}
		path := filepath.Join(dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("source: %w", err)
		}
		s.reg.Counter("source_files_loaded_total").Inc()
		s.reg.Counter("source_bytes_total").Add(int64(len(data)))
		snap.Files = append(snap.Files, s.intern(path, name, data))
	}
	return snap, nil
}

// intern returns the canonical File for (path, content), parsing on first
// sight of this content version and reusing the artifact afterwards.
func (s *Store) intern(path, name string, data []byte) *File {
	sum := sha256.Sum256(data)
	key := path + "\x00" + hex.EncodeToString(sum[:])
	s.mu.Lock()
	en, ok := s.entries[key]
	if !ok {
		en = &storeEntry{}
		s.entries[key] = en
	}
	s.mu.Unlock()
	computed := false
	en.once.Do(func() {
		computed = true
		f := &File{
			Name:   name,
			Path:   path,
			Bytes:  data,
			SHA256: hex.EncodeToString(sum[:]),
			Size:   int64(len(data)),
			Fset:   s.fset,
			store:  s,
			memo:   make(map[string]any),
		}
		f.AST, f.ParseErr = parser.ParseFile(s.fset, path, data, parser.ParseComments)
		if f.ParseErr != nil {
			f.AST = nil
		}
		s.reg.Counter("source_parse_total").Inc()
		s.mu.Lock()
		s.reg.Gauge("source_store_files").Set(float64(len(s.entries)))
		s.mu.Unlock()
		en.file = f
	})
	if !computed {
		s.reg.Counter("source_reuse_total").Inc()
	}
	return en.file
}
