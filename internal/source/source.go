// Package source is the parse-once snapshot store behind every static
// consumer of corpus bytes. The pipeline's stages are independent by
// design — traditional static analysis, LLM fuzzy comprehension, and
// content-addressed cache keying each interpret the same files (the
// paper's §3.1.1 techniques and the §4.3 cost model price them
// separately) — but that independence used to be paid on the hot path:
// every file was read from disk and parsed into an AST up to three
// times per run. A Store loads each file exactly once per run and
// interns the loaded artifact — (bytes, sha256, shared token.FileSet
// positions) — by (path, content hash), so a warm daemon re-parses only
// files whose bytes actually changed.
//
// Parsing is lazy: interning a file costs a read and a hash, and the
// AST is built only when a consumer actually asks for it via
// File.Syntax. That is what lets a restart-warm daemon serve an entire
// job at zero parses — the static tier hydrates its extraction facts
// from the disk cache (File.MemoThrough) and the LLM reviews replay
// from the review cache, so nothing ever touches go/ast.
//
// Consumers receive a Snapshot: the directory's source files in sorted
// order, fully loaded. Files are immutable once interned; derived
// per-file artifacts (e.g. internal/sast's method extraction) piggyback
// on the same content addressing through File.Memo / File.MemoThrough,
// which is what makes the static tier file-granular and incremental.
//
// Retention is bounded per path: the store keeps the latest
// DefaultKeepGenerations content versions of each path and evicts older
// generations — bytes, AST, and memoized artifacts together — so a
// long-lived daemon's memory plateaus under an endless edit history
// (source_evictions_total / source_retained_bytes account for it).
// Evicted versions stay valid in any snapshot still holding them (Files
// are immutable); re-loading one simply re-interns and recomputes.
//
// Concurrency: a Store is safe for concurrent Load calls across worker
// lanes. Parsing is serialized per File by a sync.Once; the shared
// token.FileSet is internally synchronized; a File's bytes and AST are
// never mutated after interning, so concurrent readers need no locking.
// All source_* metrics (docs/OBSERVABILITY.md) count logical events and
// are deterministic across worker counts.
package source

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"wasabi/internal/obs"
)

// DefaultKeepGenerations is how many content versions of one path a
// Store retains by default. Two covers the daemon's steady state — the
// version in flight plus the edit that just landed — while bounding
// memory under a long edit history.
const DefaultKeepGenerations = 2

// IsSourceFile reports whether a directory entry counts as application
// source for the static workflows. Tests are excluded; suite.go and
// workload.go hold an app's registered unit tests and manifest.go the
// evaluation ground truth — none of them is application source. Every
// consumer of a Snapshot (sast, llm review keying, cache manifests)
// shares this predicate, so content addresses cover exactly the files
// analyzed.
func IsSourceFile(name string) bool {
	if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
		return false
	}
	return name != "suite.go" && name != "workload.go" && name != "manifest.go"
}

// File is one loaded source file: bytes and content address computed at
// intern time, the AST built lazily on first Syntax call. Fields are
// immutable after interning; concurrent readers share them freely.
type File struct {
	// Name is the file basename.
	Name string
	// Path is the full path the file was loaded from.
	Path string
	// Bytes is the raw file content.
	Bytes []byte
	// SHA256 is the lowercase hex SHA-256 of Bytes — the content address
	// review keys, directory manifests and facts entries derive from.
	SHA256 string
	// Size is len(Bytes) as an int64 (the manifest shape).
	Size int64
	// Fset is the store-wide FileSet AST positions resolve against.
	Fset *token.FileSet

	store *Store

	parseOnce sync.Once
	syntax    *ast.File
	parseErr  error

	mu   sync.Mutex
	memo map[string]any
}

// Syntax returns the parsed AST, building it on first call (counted in
// source_parse_total) and memoizing both the tree and any parse error
// for the file's lifetime. The warm static tier never calls it — facts
// hydrate from the cache — so a restart-warm job runs at zero parses;
// anything that genuinely needs positions or declarations (fresh
// extraction, the LLM reviewer's evidence pass) pays for exactly the
// files it touches.
func (f *File) Syntax() (*ast.File, error) {
	f.parseOnce.Do(func() {
		f.syntax, f.parseErr = parser.ParseFile(f.Fset, f.Path, f.Bytes, parser.ParseComments)
		if f.parseErr != nil {
			f.syntax = nil
		}
		f.store.reg.Counter("source_parse_total").Inc()
	})
	return f.syntax, f.parseErr
}

// Memo returns the derived artifact registered under kind, computing it
// with compute at most once per file version. This is the hook the
// file-granular static tier hangs off: extraction results keyed by
// content survive across runs in a long-lived store, so a warm daemon
// recomputes them only for files that changed. compute must be a pure
// function of the file and must not call Memo on the same file.
func (f *File) Memo(kind string, compute func() any) any {
	return f.MemoThrough(kind, nil, compute)
}

// MemoThrough is Memo with an optional second chance before computing:
// when the in-memory memo misses, load may supply the artifact from an
// external tier (the disk facts cache) — counted in
// source_derived_hydrations_total — and only if both miss does compute
// run (source_derived_computes_total). load and compute run under the
// file's memo lock and must not call back into the same file's memo.
func (f *File) MemoThrough(kind string, load func() (any, bool), compute func() any) any {
	f.mu.Lock()
	defer f.mu.Unlock()
	if v, ok := f.memo[kind]; ok {
		f.store.reg.Counter("source_derived_reuse_total", "kind", kind).Inc()
		return v
	}
	if load != nil {
		if v, ok := load(); ok {
			f.memo[kind] = v
			f.store.reg.Counter("source_derived_hydrations_total", "kind", kind).Inc()
			return v
		}
	}
	v := compute()
	f.memo[kind] = v
	f.store.reg.Counter("source_derived_computes_total", "kind", kind).Inc()
	return v
}

// Snapshot is one directory's loaded state: every source file, sorted by
// name, interned against the store's shared FileSet.
type Snapshot struct {
	// Dir is the directory the snapshot describes.
	Dir string
	// Fset resolves positions for every Files[i].Syntax() tree.
	Fset *token.FileSet
	// Files are the directory's source files in sorted name order.
	Files []*File
}

// TotalBytes sums the snapshot's file sizes.
func (s *Snapshot) TotalBytes() int64 {
	var n int64
	for _, f := range s.Files {
		n += f.Size
	}
	return n
}

// Names returns the file basenames in snapshot (sorted) order.
func (s *Snapshot) Names() []string {
	out := make([]string, len(s.Files))
	for i, f := range s.Files {
		out[i] = f.Name
	}
	return out
}

// Store interns loaded files by (path, content hash). The zero value is
// not usable; call NewStore. A Store may live for one run (the CLI) or
// across many (the daemon shares one across jobs, which is where the
// incremental wins come from).
//
// Per path, only the latest keep generations are retained (see
// SetKeepGenerations); older versions are evicted wholesale — bytes,
// AST, memoized artifacts — under the store lock.
type Store struct {
	reg  *obs.Registry
	fset *token.FileSet

	mu            sync.Mutex
	keep          int
	entries       map[string]*File
	gens          map[string][]string // path → entry keys, oldest first
	retainedBytes int64
}

// NewStore returns an empty store reporting into reg (nil disables
// metrics), retaining DefaultKeepGenerations content versions per path.
func NewStore(reg *obs.Registry) *Store {
	return &Store{
		reg:     reg,
		fset:    token.NewFileSet(),
		keep:    DefaultKeepGenerations,
		entries: make(map[string]*File),
		gens:    make(map[string][]string),
	}
}

// SetKeepGenerations bounds per-path retention to the latest k content
// versions (k < 1 disables eviction — the unbounded pre-eviction
// behaviour, useful only for experiments). Lowering k takes effect on
// the next intern of each path.
func (s *Store) SetKeepGenerations(k int) {
	s.mu.Lock()
	s.keep = k
	s.mu.Unlock()
}

// Fset returns the store-wide FileSet.
func (s *Store) Fset() *token.FileSet { return s.fset }

// Load reads every source file of dir — exactly once each — and returns
// the snapshot. Bytes are read and hashed on every call (that is how
// change detection works); the interned artifact and everything derived
// from it are reused when the content hash matches a previously interned
// version. Nothing is parsed here: unparseable files surface their error
// from Syntax, and each consumer decides (sast fails, llm degrades to
// "no answer").
func (s *Store) Load(dir string) (*Snapshot, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("source: %w", err)
	}
	snap := &Snapshot{Dir: dir, Fset: s.fset}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !IsSourceFile(name) {
			continue
		}
		path := filepath.Join(dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("source: %w", err)
		}
		s.reg.Counter("source_files_loaded_total").Inc()
		s.reg.Counter("source_bytes_total").Add(int64(len(data)))
		snap.Files = append(snap.Files, s.intern(path, name, data))
	}
	return snap, nil
}

// intern returns the canonical File for (path, content), creating it on
// first sight of this content version and reusing the artifact
// afterwards. Interning a new version beyond the retention bound evicts
// the path's oldest generation.
func (s *Store) intern(path, name string, data []byte) *File {
	sum := sha256.Sum256(data)
	key := path + "\x00" + hex.EncodeToString(sum[:])
	s.mu.Lock()
	f, ok := s.entries[key]
	if !ok {
		f = &File{
			Name:   name,
			Path:   path,
			Bytes:  data,
			SHA256: hex.EncodeToString(sum[:]),
			Size:   int64(len(data)),
			Fset:   s.fset,
			store:  s,
			memo:   make(map[string]any),
		}
		s.entries[key] = f
		s.retainedBytes += f.Size
	}
	s.touchGeneration(path, key)
	s.reg.Gauge("source_store_files").Set(float64(len(s.entries)))
	s.reg.Gauge("source_retained_bytes").Set(float64(s.retainedBytes))
	s.mu.Unlock()
	if ok {
		s.reg.Counter("source_reuse_total").Inc()
	}
	return f
}

// touchGeneration marks key as path's most recent generation and evicts
// generations beyond the retention bound. Called with s.mu held.
func (s *Store) touchGeneration(path, key string) {
	g := s.gens[path]
	for i, k := range g {
		if k == key {
			g = append(g[:i], g[i+1:]...)
			break
		}
	}
	g = append(g, key)
	for s.keep >= 1 && len(g) > s.keep {
		victim := g[0]
		g = g[1:]
		if vf, ok := s.entries[victim]; ok {
			delete(s.entries, victim)
			s.retainedBytes -= vf.Size
			s.reg.Counter("source_evictions_total").Inc()
		}
	}
	s.gens[path] = g
}
