package source_test

// source_test pins the store's contract: each (path, content) version is
// parsed at most once — lazily, on the first Syntax call — no matter how
// many loads or lanes touch it, edits invalidate exactly the edited
// file, derived artifacts registered through File.Memo / MemoThrough are
// computed at most once per file version, and per-path retention is
// bounded to the latest K generations. The counters asserted here are
// the same ones docs/OBSERVABILITY.md documents and the incremental
// tests in internal/core build on.

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"wasabi/internal/obs"
	"wasabi/internal/source"
)

// writeDir materializes files into a temp dir and returns its path.
func writeDir(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, body := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestIsSourceFile(t *testing.T) {
	cases := map[string]bool{
		"retry.go":      true,
		"client.go":     true,
		"retry_test.go": false,
		"suite.go":      false,
		"workload.go":   false,
		"manifest.go":   false,
		"README.md":     false,
		"go":            false,
	}
	for name, want := range cases {
		if got := source.IsSourceFile(name); got != want {
			t.Errorf("IsSourceFile(%q) = %v, want %v", name, got, want)
		}
	}
}

// TestLoadParsesOncePerVersion is the core contract: loading N files
// parses nothing (parse is lazy), the first Syntax calls parse each file
// exactly once, and a second load of the unchanged dir re-reads bytes
// (that is how change detection works) but reuses every artifact —
// including the parses.
func TestLoadParsesOncePerVersion(t *testing.T) {
	dir := writeDir(t, map[string]string{
		"a.go":      "package demo\n\nfunc A() {}\n",
		"b.go":      "package demo\n\nfunc B() {}\n",
		"b_test.go": "package demo\n",
		"suite.go":  "package demo\n",
		"notes.txt": "not source",
		"c.go":      "package demo\n\nfunc C() {}\n",
	})
	observer := obs.New()
	st := source.NewStore(observer.Reg())

	snap, err := st.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := snap.Names(), []string{"a.go", "b.go", "c.go"}; len(got) != len(want) {
		t.Fatalf("snapshot files = %v, want %v", got, want)
	} else {
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("snapshot files = %v, want %v", got, want)
			}
		}
	}
	s := observer.Reg().Snapshot()
	if n := s.Counter("source_parse_total"); n != 0 {
		t.Fatalf("parses after load = %d, want 0 (parse is lazy)", n)
	}
	for _, f := range snap.Files {
		if _, err := f.Syntax(); err != nil {
			t.Fatal(err)
		}
		if _, err := f.Syntax(); err != nil { // second call must not re-parse
			t.Fatal(err)
		}
	}
	s = observer.Reg().Snapshot()
	if n := s.Counter("source_parse_total"); n != 3 {
		t.Fatalf("cold parses = %d, want 3", n)
	}
	if n := s.Counter("source_reuse_total"); n != 0 {
		t.Fatalf("cold reuses = %d, want 0", n)
	}

	snap2, err := st.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range snap2.Files {
		if _, err := f.Syntax(); err != nil {
			t.Fatal(err)
		}
	}
	s = observer.Reg().Snapshot()
	if n := s.Counter("source_parse_total"); n != 3 {
		t.Fatalf("warm parses = %d, want 3 (no re-parse of unchanged files)", n)
	}
	if n := s.Counter("source_reuse_total"); n != 3 {
		t.Fatalf("warm reuses = %d, want 3", n)
	}
	for i := range snap.Files {
		if snap.Files[i] != snap2.Files[i] {
			t.Fatalf("warm load returned a different *File for %s", snap.Files[i].Name)
		}
	}
}

// TestEditInvalidatesOnlyEditedFile: after touching one file, exactly one
// new parse happens; the other files' artifacts are reused.
func TestEditInvalidatesOnlyEditedFile(t *testing.T) {
	dir := writeDir(t, map[string]string{
		"a.go": "package demo\n\nfunc A() {}\n",
		"b.go": "package demo\n\nfunc B() {}\n",
	})
	observer := obs.New()
	st := source.NewStore(observer.Reg())
	snap0, err := st.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range snap0.Files {
		if _, err := f.Syntax(); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, "a.go"), []byte("package demo\n\nfunc A2() {}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	snap, err := st.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range snap.Files {
		if _, err := f.Syntax(); err != nil {
			t.Fatal(err)
		}
	}
	s := observer.Reg().Snapshot()
	if n := s.Counter("source_parse_total"); n != 3 {
		t.Fatalf("parses after single edit = %d, want 3 (2 cold + 1 re-parse)", n)
	}
	if n := s.Counter("source_reuse_total"); n != 1 {
		t.Fatalf("reuses after single edit = %d, want 1 (b.go only)", n)
	}
	if syntax, err := snap.Files[0].Syntax(); err != nil || syntax.Decls == nil {
		t.Fatalf("edited file has no parsed AST (err=%v)", err)
	}
}

// TestParseErrDoesNotFailLoad: a file that does not parse still loads —
// the consumer decides at Syntax time (sast fails, llm degrades) — and
// both the error and the nil tree memoize.
func TestParseErrDoesNotFailLoad(t *testing.T) {
	dir := writeDir(t, map[string]string{
		"bad.go":  "package demo\n\nfunc Broken( {\n",
		"good.go": "package demo\n\nfunc Fine() {}\n",
	})
	snap, err := source.NewStore(nil).Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Files) != 2 {
		t.Fatalf("loaded %d files, want 2", len(snap.Files))
	}
	bad, good := snap.Files[0], snap.Files[1]
	if syntax, err := bad.Syntax(); err == nil || syntax != nil {
		t.Fatalf("bad.go: Syntax()=%v,%v, want error and nil AST", syntax, err)
	}
	if syntax, err := bad.Syntax(); err == nil || syntax != nil { // memoized failure
		t.Fatalf("bad.go second Syntax()=%v,%v, want same error and nil AST", syntax, err)
	}
	if syntax, err := good.Syntax(); err != nil || syntax == nil {
		t.Fatalf("good.go: Syntax() err=%v, want parsed AST", err)
	}
}

// TestMemoComputesOncePerVersion: a derived artifact is computed once per
// file version and reused afterwards, with the per-kind counters moving
// exactly as the incremental static tier expects.
func TestMemoComputesOncePerVersion(t *testing.T) {
	dir := writeDir(t, map[string]string{"a.go": "package demo\n"})
	observer := obs.New()
	st := source.NewStore(observer.Reg())
	snap, err := st.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	f := snap.Files[0]
	calls := 0
	compute := func() any { calls++; return calls }
	if v := f.Memo("facts", compute); v.(int) != 1 {
		t.Fatalf("first Memo = %v, want 1", v)
	}
	if v := f.Memo("facts", compute); v.(int) != 1 {
		t.Fatalf("second Memo = %v, want cached 1", v)
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
	s := observer.Reg().Snapshot()
	if n := s.Counter("source_derived_computes_total", "kind", "facts"); n != 1 {
		t.Fatalf("derived computes = %d, want 1", n)
	}
	if n := s.Counter("source_derived_reuse_total", "kind", "facts"); n != 1 {
		t.Fatalf("derived reuses = %d, want 1", n)
	}
}

// TestMemoThroughHydrates: when the in-memory memo misses, the external
// load supplies the artifact (counted as a hydration, not a compute);
// later accesses reuse it; compute never runs.
func TestMemoThroughHydrates(t *testing.T) {
	dir := writeDir(t, map[string]string{"a.go": "package demo\n"})
	observer := obs.New()
	st := source.NewStore(observer.Reg())
	snap, err := st.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	f := snap.Files[0]
	loads, computes := 0, 0
	load := func() (any, bool) { loads++; return "from-disk", true }
	compute := func() any { computes++; return "computed" }
	if v := f.MemoThrough("facts", load, compute); v != "from-disk" {
		t.Fatalf("first MemoThrough = %v, want from-disk", v)
	}
	if v := f.MemoThrough("facts", load, compute); v != "from-disk" {
		t.Fatalf("second MemoThrough = %v, want memoized from-disk", v)
	}
	if loads != 1 || computes != 0 {
		t.Fatalf("loads=%d computes=%d, want 1/0", loads, computes)
	}
	s := observer.Reg().Snapshot()
	if n := s.Counter("source_derived_hydrations_total", "kind", "facts"); n != 1 {
		t.Fatalf("derived hydrations = %d, want 1", n)
	}
	if n := s.Counter("source_derived_computes_total", "kind", "facts"); n != 0 {
		t.Fatalf("derived computes = %d, want 0", n)
	}
	if n := s.Counter("source_derived_reuse_total", "kind", "facts"); n != 1 {
		t.Fatalf("derived reuses = %d, want 1", n)
	}
}

// TestConcurrentLoadSingleParse hammers one dir from many goroutines,
// each forcing the parse; the per-file sync.Once must collapse the
// parses to one per file.
func TestConcurrentLoadSingleParse(t *testing.T) {
	dir := writeDir(t, map[string]string{
		"a.go": "package demo\n\nfunc A() {}\n",
		"b.go": "package demo\n\nfunc B() {}\n",
	})
	observer := obs.New()
	st := source.NewStore(observer.Reg())
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			snap, err := st.Load(dir)
			if err != nil {
				t.Error(err)
				return
			}
			for _, f := range snap.Files {
				if _, err := f.Syntax(); err != nil {
					t.Error(err)
				}
			}
		}()
	}
	wg.Wait()
	s := observer.Reg().Snapshot()
	if n := s.Counter("source_parse_total"); n != 2 {
		t.Fatalf("concurrent parses = %d, want 2", n)
	}
	if loaded, reused := s.Counter("source_files_loaded_total"), s.Counter("source_reuse_total"); loaded-reused != 2 {
		t.Fatalf("loaded=%d reused=%d, want exactly 2 first-sight loads", loaded, reused)
	}
}

// TestGenerationalEviction drives one path through a long edit history:
// retained entries must plateau at the keep bound, retained bytes must
// track exactly the surviving generations, and source_evictions_total
// must account for every version beyond the bound.
func TestGenerationalEviction(t *testing.T) {
	dir := writeDir(t, map[string]string{
		"a.go": "package demo\n\nfunc Edit0() {}\n",
		"b.go": "package demo\n\nfunc B() {}\n",
	})
	observer := obs.New()
	st := source.NewStore(observer.Reg())

	const edits = 12
	var lastTwoBytes int64
	for i := 0; i < edits; i++ {
		body := fmt.Sprintf("package demo\n\nfunc Edit%d() {}\n", i)
		if i > 0 {
			if err := os.WriteFile(filepath.Join(dir, "a.go"), []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		snap, err := st.Load(dir)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := snap.Files[0].Syntax(); err != nil {
			t.Fatal(err)
		}
		if i >= edits-source.DefaultKeepGenerations {
			lastTwoBytes += int64(len(body))
		}
	}
	bSize := int64(len("package demo\n\nfunc B() {}\n"))

	s := observer.Reg().Snapshot()
	if n := s.Counter("source_evictions_total"); n != edits-source.DefaultKeepGenerations {
		t.Fatalf("evictions = %d, want %d (every generation beyond the keep bound)",
			n, edits-source.DefaultKeepGenerations)
	}
	if n := s.Gauge("source_store_files"); n != source.DefaultKeepGenerations+1 {
		t.Fatalf("store files = %v, want %d (K generations of a.go + b.go)",
			n, source.DefaultKeepGenerations+1)
	}
	if n := s.Gauge("source_retained_bytes"); int64(n) != lastTwoBytes+bSize {
		t.Fatalf("retained bytes = %v, want %d (latest %d generations + b.go)",
			n, lastTwoBytes+bSize, source.DefaultKeepGenerations)
	}
	// Every version of a.go parsed exactly once; b.go — loaded but never
	// asked for its AST — parsed zero times (parse is lazy).
	if n := s.Counter("source_parse_total"); n != edits {
		t.Fatalf("parses = %d, want %d", n, edits)
	}
}

// TestEvictedGenerationRecomputes: re-loading a content version that was
// evicted re-interns it and recomputes its derived artifacts from
// scratch — stale memo state is impossible because the File object went
// with the generation.
func TestEvictedGenerationRecomputes(t *testing.T) {
	dir := writeDir(t, map[string]string{"a.go": "package demo\n\nfunc V0() {}\n"})
	observer := obs.New()
	st := source.NewStore(observer.Reg())
	versions := []string{
		"package demo\n\nfunc V0() {}\n",
		"package demo\n\nfunc V1() {}\n",
		"package demo\n\nfunc V2() {}\n",
	}
	computes := 0
	loadAndMemo := func(body string) any {
		if err := os.WriteFile(filepath.Join(dir, "a.go"), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		snap, err := st.Load(dir)
		if err != nil {
			t.Fatal(err)
		}
		return snap.Files[0].Memo("kind", func() any { computes++; return body })
	}
	for _, v := range versions {
		if got := loadAndMemo(v); got != v {
			t.Fatalf("memo for %q = %v", v, got)
		}
	}
	// V0 was evicted (keep = 2). Re-loading it must recompute, not
	// resurrect, the artifact.
	if got := loadAndMemo(versions[0]); got != versions[0] {
		t.Fatalf("re-interned memo = %v, want %q", got, versions[0])
	}
	if computes != 4 {
		t.Fatalf("computes = %d, want 4 (3 versions + 1 recompute after eviction)", computes)
	}
	s := observer.Reg().Snapshot()
	if n := s.Counter("source_evictions_total"); n != 2 {
		t.Fatalf("evictions = %d, want 2 (V0 once, then V1)", n)
	}
}

// TestConcurrentEvictionSafe hammers edits and loads from many
// goroutines under -race — each goroutine owns one path, so file writes
// are race-free while every Load reads (and interns versions of) every
// path concurrently with the others' edits. Files held by older
// snapshots stay usable after eviction, and the store's retained set
// stays within the per-path bound.
func TestConcurrentEvictionSafe(t *testing.T) {
	dir := writeDir(t, map[string]string{"f0.go": "package demo\n\nfunc V0() {}\n"})
	observer := obs.New()
	st := source.NewStore(observer.Reg())
	snap0, err := st.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	held := snap0.Files[0]

	const goroutines, editsEach = 8, 10
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			own := fmt.Sprintf("f%d.go", g)
			for i := 0; i < editsEach; i++ {
				body := fmt.Sprintf("package demo\n\nfunc V%d_%d() {}\n", g, i)
				if err := os.WriteFile(filepath.Join(dir, own), []byte(body), 0o644); err != nil {
					t.Error(err)
					return
				}
				snap, err := st.Load(dir)
				if err != nil {
					t.Error(err)
					return
				}
				for _, f := range snap.Files {
					// Only the goroutine's own file is read race-free;
					// other paths may intern torn mid-write versions,
					// which the store must carry without corruption.
					if f.Name != own {
						continue
					}
					if _, perr := f.Syntax(); perr != nil {
						t.Errorf("unexpected parse error: %v", perr)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()

	// The file held across the whole storm is still fully usable even
	// though its generation was long evicted.
	if syntax, err := held.Syntax(); err != nil || syntax == nil {
		t.Fatalf("held file unusable after eviction: %v", err)
	}
	if held.SHA256 == "" || len(held.Bytes) == 0 {
		t.Fatal("held file lost its content")
	}
	s := observer.Reg().Snapshot()
	if n, bound := s.Gauge("source_store_files"), float64(goroutines*source.DefaultKeepGenerations); n > bound {
		t.Fatalf("store retains %v entries across %d paths, want <= %v",
			n, goroutines, bound)
	}
	if s.Counter("source_evictions_total") == 0 {
		t.Fatal("edit storm evicted nothing")
	}
}
