package source_test

// source_test pins the store's contract: each (path, content) version is
// parsed exactly once no matter how many loads or lanes touch it, edits
// invalidate exactly the edited file, and derived artifacts registered
// through File.Memo are computed at most once per file version. The
// counters asserted here are the same ones docs/OBSERVABILITY.md
// documents and the incremental tests in internal/core build on.

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"wasabi/internal/obs"
	"wasabi/internal/source"
)

// writeDir materializes files into a temp dir and returns its path.
func writeDir(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, body := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestIsSourceFile(t *testing.T) {
	cases := map[string]bool{
		"retry.go":      true,
		"client.go":     true,
		"retry_test.go": false,
		"suite.go":      false,
		"workload.go":   false,
		"manifest.go":   false,
		"README.md":     false,
		"go":            false,
	}
	for name, want := range cases {
		if got := source.IsSourceFile(name); got != want {
			t.Errorf("IsSourceFile(%q) = %v, want %v", name, got, want)
		}
	}
}

// TestLoadParsesOncePerVersion is the core contract: N files load with N
// parses; a second load of the unchanged dir re-reads bytes (that is how
// change detection works) but reuses every parsed artifact.
func TestLoadParsesOncePerVersion(t *testing.T) {
	dir := writeDir(t, map[string]string{
		"a.go":      "package demo\n\nfunc A() {}\n",
		"b.go":      "package demo\n\nfunc B() {}\n",
		"b_test.go": "package demo\n",
		"suite.go":  "package demo\n",
		"notes.txt": "not source",
		"c.go":      "package demo\n\nfunc C() {}\n",
	})
	observer := obs.New()
	st := source.NewStore(observer.Reg())

	snap, err := st.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := snap.Names(), []string{"a.go", "b.go", "c.go"}; len(got) != len(want) {
		t.Fatalf("snapshot files = %v, want %v", got, want)
	} else {
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("snapshot files = %v, want %v", got, want)
			}
		}
	}
	s := observer.Reg().Snapshot()
	if n := s.Counter("source_parse_total"); n != 3 {
		t.Fatalf("cold parses = %d, want 3", n)
	}
	if n := s.Counter("source_reuse_total"); n != 0 {
		t.Fatalf("cold reuses = %d, want 0", n)
	}

	snap2, err := st.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	s = observer.Reg().Snapshot()
	if n := s.Counter("source_parse_total"); n != 3 {
		t.Fatalf("warm parses = %d, want 3 (no re-parse of unchanged files)", n)
	}
	if n := s.Counter("source_reuse_total"); n != 3 {
		t.Fatalf("warm reuses = %d, want 3", n)
	}
	for i := range snap.Files {
		if snap.Files[i] != snap2.Files[i] {
			t.Fatalf("warm load returned a different *File for %s", snap.Files[i].Name)
		}
	}
}

// TestEditInvalidatesOnlyEditedFile: after touching one file, exactly one
// new parse happens; the other files' artifacts are reused.
func TestEditInvalidatesOnlyEditedFile(t *testing.T) {
	dir := writeDir(t, map[string]string{
		"a.go": "package demo\n\nfunc A() {}\n",
		"b.go": "package demo\n\nfunc B() {}\n",
	})
	observer := obs.New()
	st := source.NewStore(observer.Reg())
	if _, err := st.Load(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "a.go"), []byte("package demo\n\nfunc A2() {}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	snap, err := st.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	s := observer.Reg().Snapshot()
	if n := s.Counter("source_parse_total"); n != 3 {
		t.Fatalf("parses after single edit = %d, want 3 (2 cold + 1 re-parse)", n)
	}
	if n := s.Counter("source_reuse_total"); n != 1 {
		t.Fatalf("reuses after single edit = %d, want 1 (b.go only)", n)
	}
	if snap.Files[0].AST == nil || snap.Files[0].AST.Decls == nil {
		t.Fatal("edited file has no parsed AST")
	}
}

// TestParseErrDoesNotFailLoad: a file that does not parse still loads —
// the consumer decides (sast fails, llm degrades).
func TestParseErrDoesNotFailLoad(t *testing.T) {
	dir := writeDir(t, map[string]string{
		"bad.go":  "package demo\n\nfunc Broken( {\n",
		"good.go": "package demo\n\nfunc Fine() {}\n",
	})
	snap, err := source.NewStore(nil).Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Files) != 2 {
		t.Fatalf("loaded %d files, want 2", len(snap.Files))
	}
	bad, good := snap.Files[0], snap.Files[1]
	if bad.ParseErr == nil || bad.AST != nil {
		t.Fatalf("bad.go: ParseErr=%v AST=%v, want error and nil AST", bad.ParseErr, bad.AST)
	}
	if good.ParseErr != nil || good.AST == nil {
		t.Fatalf("good.go: ParseErr=%v, want parsed AST", good.ParseErr)
	}
}

// TestMemoComputesOncePerVersion: a derived artifact is computed once per
// file version and reused afterwards, with the per-kind counters moving
// exactly as the incremental static tier expects.
func TestMemoComputesOncePerVersion(t *testing.T) {
	dir := writeDir(t, map[string]string{"a.go": "package demo\n"})
	observer := obs.New()
	st := source.NewStore(observer.Reg())
	snap, err := st.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	f := snap.Files[0]
	calls := 0
	compute := func() any { calls++; return calls }
	if v := f.Memo("facts", compute); v.(int) != 1 {
		t.Fatalf("first Memo = %v, want 1", v)
	}
	if v := f.Memo("facts", compute); v.(int) != 1 {
		t.Fatalf("second Memo = %v, want cached 1", v)
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
	s := observer.Reg().Snapshot()
	if n := s.Counter("source_derived_computes_total", "kind", "facts"); n != 1 {
		t.Fatalf("derived computes = %d, want 1", n)
	}
	if n := s.Counter("source_derived_reuse_total", "kind", "facts"); n != 1 {
		t.Fatalf("derived reuses = %d, want 1", n)
	}
}

// TestConcurrentLoadSingleParse hammers one dir from many goroutines;
// the per-entry sync.Once must collapse the parses to one per file.
func TestConcurrentLoadSingleParse(t *testing.T) {
	dir := writeDir(t, map[string]string{
		"a.go": "package demo\n\nfunc A() {}\n",
		"b.go": "package demo\n\nfunc B() {}\n",
	})
	observer := obs.New()
	st := source.NewStore(observer.Reg())
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := st.Load(dir); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	s := observer.Reg().Snapshot()
	if n := s.Counter("source_parse_total"); n != 2 {
		t.Fatalf("concurrent parses = %d, want 2", n)
	}
	if loaded, reused := s.Counter("source_files_loaded_total"), s.Counter("source_reuse_total"); loaded-reused != 2 {
		t.Fatalf("loaded=%d reused=%d, want exactly 2 first-sight loads", loaded, reused)
	}
}
