package source_test

// bench_test compares the snapshot store against the pre-store cost
// model, where each pipeline consumer read and interpreted the corpus
// independently: the cache hashed the bytes, the static analysis parsed
// them, and the LLM reviewer parsed them again (three reads, two
// parses per file per run). `make bench` runs these; the numbers feed
// docs/PERFORMANCE.md and EXPERIMENTS.md.

import (
	"crypto/sha256"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"testing"

	"wasabi/internal/apps/corpus"
	"wasabi/internal/source"
)

// benchDir returns the HDFS app's source directory — the largest single
// app of the corpus, the same one the cache and edit benchmarks use.
func benchDir(b *testing.B) string {
	b.Helper()
	app, err := corpus.ByCode("HD")
	if err != nil {
		b.Fatal(err)
	}
	return app.Dir
}

// BenchmarkSnapshotLoadCold measures a cold load: fresh store each
// iteration, so every file is read, hashed and parsed.
func BenchmarkSnapshotLoadCold(b *testing.B) {
	dir := benchDir(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := source.NewStore(nil).Load(dir); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotLoadWarm measures the daemon steady state: one store
// across iterations, so loads re-read and re-hash bytes but reuse every
// parsed artifact.
func BenchmarkSnapshotLoadWarm(b *testing.B) {
	dir := benchDir(b)
	st := source.NewStore(nil)
	if _, err := st.Load(dir); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Load(dir); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLegacyTripleParse emulates the pre-store pipeline: per run,
// the cache manifest read and hashed every file, the static analysis
// read and parsed every file, and the reviewer read and parsed every
// file again against its own FileSet.
func BenchmarkLegacyTripleParse(b *testing.B) {
	dir := benchDir(b)
	entries, err := os.ReadDir(dir)
	if err != nil {
		b.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && source.IsSourceFile(e.Name()) {
			names = append(names, e.Name())
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// cache.HashDir: read + hash.
		for _, name := range names {
			data, err := os.ReadFile(filepath.Join(dir, name))
			if err != nil {
				b.Fatal(err)
			}
			sha256.Sum256(data)
		}
		// sast.AnalyzeDir: read + parse into one FileSet.
		fset := token.NewFileSet()
		for _, name := range names {
			path := filepath.Join(dir, name)
			data, err := os.ReadFile(path)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := parser.ParseFile(fset, path, data, parser.ParseComments); err != nil {
				b.Fatal(err)
			}
		}
		// llm.Review: read + parse again, one throwaway FileSet per file.
		for _, name := range names {
			path := filepath.Join(dir, name)
			data, err := os.ReadFile(path)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := parser.ParseFile(token.NewFileSet(), path, data, parser.ParseComments); err != nil {
				b.Fatal(err)
			}
		}
	}
}
