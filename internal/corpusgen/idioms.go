package corpusgen

import "wasabi/internal/apps/meta"

// Idiom name constants. Every constant here must be documented in
// docs/CORPUSGEN.md (scripts/docs_check.sh enforces the pairing), and the
// quota table below must sum to the seed corpus marginals of
// docs/CORPUS.md: 77 loop / 12 queue / 9 state-machine, 86 exception /
// 12 error-code, 82 keyworded, per 98 structures.
const (
	// IdiomBoundedBackoff is the classic bounded retry loop with
	// exponential backoff and a fatal-exception abort path.
	IdiomBoundedBackoff = "bounded-backoff"
	// IdiomBackoffJitter spreads bounded retries with a jittered delay —
	// an idiom the hand-written seed corpus lacks.
	IdiomBackoffJitter = "backoff-jitter"
	// IdiomIdempotencyToken replays an upload under one idempotency
	// token, making the re-send safe (new idiom).
	IdiomIdempotencyToken = "idempotency-token"
	// IdiomRPCBoundary retries client-side through an RPC proxy while the
	// failure originates server-side (new idiom).
	IdiomRPCBoundary = "rpc-boundary"
	// IdiomHedgedRequest re-requests a straggling read from a mirror; no
	// retry keyword appears, so only the LLM lane identifies it (new idiom).
	IdiomHedgedRequest = "hedged-request"
	// IdiomSagaCompensation compensates completed saga steps and re-runs
	// the saga; LLM-only, and the host of generated HOW bugs (new idiom).
	IdiomSagaCompensation = "saga-compensation"
	// IdiomStatusBackoff is error-code retry: a loop switching on a
	// status code with backoff, invisible to exception injection.
	IdiomStatusBackoff = "status-backoff"
	// IdiomQueueRequeue re-enqueues failed work items with a retry budget.
	IdiomQueueRequeue = "queue-requeue"
	// IdiomQueueRedispatch re-dispatches undeliverable updates to a
	// standby queue without retry vocabulary (LLM-only).
	IdiomQueueRedispatch = "queue-redispatch"
	// IdiomStateMachineExc is a step state machine retrying exception
	// failures of the current step in place.
	IdiomStateMachineExc = "state-machine-exc"
	// IdiomStateMachineCode is a step state machine driven by verdict
	// codes rather than exceptions.
	IdiomStateMachineCode = "state-machine-code"
)

// Exception vocabulary of the generated corpus.
const (
	classConnect       = "ConnectException"
	classSocketTimeout = "SocketTimeoutException"
	classAccessControl = "AccessControlException"
	classKeeperLoss    = "KeeperConnectionLossException"
	// classWrap is what WrapsErrors structures wrap give-up errors in —
	// the §4.3 "different exception" false-positive source.
	classWrap = "JobExecutionException"
	// classHow is what generated HOW bugs crash with after compensation
	// corrupts saga state.
	classHow = "IllegalStateException"
)

// Seed-corpus marginals per 98 structures (measured from the seed
// manifests; the envelope test keeps generation honest against them).
const (
	missingCapPer98   = 13
	missingDelayPer98 = 19
	howPer98          = 3
	ifNotRetriedPer98 = 2
	ifRetriedPer98    = 7

	harnessRetriedPer98 = 6
	delayUnneededPer98  = 4
	wrapsErrorsPer98    = 3
)

// idiomInfo is one row of the generation grammar.
type idiomInfo struct {
	Name      string
	Per98     int // instances per 98 structures (seed-envelope quota)
	Mechanism meta.Mechanism
	Trigger   meta.Trigger
	Keyworded bool

	// DeclaresAbort marks idioms that declare AccessControlException and
	// abort on it — the pool if-retried outliers are drawn from.
	DeclaresAbort bool
	// IFEligible marks keyworded exception loops that may become
	// if-not-retried outliers (abort a class the population retries).
	IFEligible bool
	// WhenEligible marks idioms whose instances may carry WHEN bugs
	// (missing-cap / missing-delay) or the FP flags.
	WhenEligible bool

	Cap     int // default attempt budget
	DelayMS int // default inter-attempt delay
	Steps   int // saga / state-machine step count (0 otherwise)

	Throws []string // classes the retried method(s) declare
	Aborts []string // classes the coordinator gives up on by default

	// Types is the type-name pool; CoordVerb/RetriedVerb are the method
	// base names ("<verb><ordinal>" keeps short names unique per app).
	Types       []string
	CoordVerb   string
	RetriedVerb string
}

// idiomTable is the generation grammar: quotas sum to 98 and reproduce
// the seed marginals exactly (77/12/9 mechanism, 86/12 trigger, 82
// keyworded).
var idiomTable = []idiomInfo{
	{
		Name: IdiomBoundedBackoff, Per98: 21,
		Mechanism: meta.Loop, Trigger: meta.Exception, Keyworded: true,
		DeclaresAbort: true, IFEligible: true, WhenEligible: true,
		Cap: 4, DelayMS: 120,
		Throws: []string{classConnect, classSocketTimeout, classAccessControl},
		Aborts: []string{classAccessControl},
		Types: []string{"BlockFetcher", "ChunkReader", "SegmentPuller",
			"ManifestLoader", "ReplicaReader", "IndexFetcher", "SnapshotPuller"},
		CoordVerb: "Fetch", RetriedVerb: "fetchOnce",
	},
	{
		Name: IdiomBackoffJitter, Per98: 12,
		Mechanism: meta.Loop, Trigger: meta.Exception, Keyworded: true,
		IFEligible: true, WhenEligible: true,
		Cap: 4, DelayMS: 90,
		Throws: []string{classConnect, classSocketTimeout},
		Types: []string{"HeartbeatSender", "MetricsFlusher", "WalSyncer",
			"OffsetCommitter", "TokenRefresher"},
		CoordVerb: "Send", RetriedVerb: "sendOnce",
	},
	{
		Name: IdiomIdempotencyToken, Per98: 10,
		Mechanism: meta.Loop, Trigger: meta.Exception, Keyworded: true,
		IFEligible: true, WhenEligible: true,
		Cap: 5, DelayMS: 90,
		Throws: []string{classConnect, classSocketTimeout},
		Types: []string{"UploadSession", "LedgerAppender", "ReceiptWriter",
			"BatchPoster", "StampedPusher"},
		CoordVerb: "Put", RetriedVerb: "putOnce",
	},
	{
		Name: IdiomRPCBoundary, Per98: 12,
		Mechanism: meta.Loop, Trigger: meta.Exception, Keyworded: true,
		DeclaresAbort: true, IFEligible: true, WhenEligible: true,
		Cap: 4, DelayMS: 150,
		Throws: []string{classConnect, classSocketTimeout, classAccessControl},
		Aborts: []string{classAccessControl},
		Types: []string{"LeaseClient", "NameClient", "RegistryClient",
			"QuotaClient", "JournalClient", "FenceClient"},
		CoordVerb: "Renew", RetriedVerb: "proxyRenew",
	},
	{
		Name: IdiomHedgedRequest, Per98: 8,
		Mechanism: meta.Loop, Trigger: meta.Exception, Keyworded: false,
		WhenEligible: true,
		Cap: 3, DelayMS: 40,
		Throws: []string{classConnect, classSocketTimeout},
		Types: []string{"ReadRouter", "TailCutter", "MirrorSelector",
			"StragglerGuard"},
		CoordVerb: "Get", RetriedVerb: "mirrorGet",
	},
	{
		Name: IdiomSagaCompensation, Per98: 6,
		Mechanism: meta.Loop, Trigger: meta.Exception, Keyworded: false,
		Cap: 3, DelayMS: 70, Steps: 3,
		Throws: []string{classConnect},
		Types:  []string{"CheckoutSaga", "ProvisionSaga", "TransferSaga"},
		CoordVerb: "Run", RetriedVerb: "step",
	},
	{
		Name: IdiomStatusBackoff, Per98: 8,
		Mechanism: meta.Loop, Trigger: meta.ErrorCode, Keyworded: true,
		Cap: 4, DelayMS: 80,
		Types: []string{"CompactionWatcher", "RebalanceWatcher",
			"VerifierLoop", "DrainWatcher"},
		CoordVerb: "Watch", RetriedVerb: "",
	},
	{
		Name: IdiomQueueRequeue, Per98: 10,
		Mechanism: meta.Queue, Trigger: meta.Exception, Keyworded: true,
		WhenEligible: true,
		Cap: 4, DelayMS: 60,
		Throws: []string{classConnect, classSocketTimeout},
		Types: []string{"DispatchWorker", "ReplicationWorker",
			"AuditWorker", "ExportWorker", "CompactWorker"},
		CoordVerb: "Drain", RetriedVerb: "deliver",
	},
	{
		Name: IdiomQueueRedispatch, Per98: 2,
		Mechanism: meta.Queue, Trigger: meta.Exception, Keyworded: false,
		Cap: 3, DelayMS: 50,
		Throws: []string{classConnect},
		Types:  []string{"RouteTable", "StandbyPublisher"},
		CoordVerb: "Push", RetriedVerb: "publish",
	},
	{
		Name: IdiomStateMachineExc, Per98: 5,
		Mechanism: meta.StateMachine, Trigger: meta.Exception, Keyworded: true,
		Cap: 4, DelayMS: 100, Steps: 2,
		Throws: []string{classKeeperLoss},
		Types:  []string{"RecoveryProc", "HandoffProc", "ReopenProc"},
		CoordVerb: "Execute", RetriedVerb: "step",
	},
	{
		Name: IdiomStateMachineCode, Per98: 4,
		Mechanism: meta.StateMachine, Trigger: meta.ErrorCode, Keyworded: true,
		Cap: 4, DelayMS: 100, Steps: 3,
		Types: []string{"ShardMover", "RegionSplitter"},
		CoordVerb: "Execute", RetriedVerb: "",
	},
}

// sagaStepVerbs / smStepVerbs name the per-step retried methods.
var sagaStepVerbs = []string{"stepReserve", "stepCharge", "stepRecord"}
var smStepVerbs = []string{"stepOpen", "stepReplay", "stepSeal"}

// IdiomNames returns every idiom name in table order (docs tooling).
func IdiomNames() []string {
	out := make([]string, 0, len(idiomTable))
	for _, i := range idiomTable {
		out = append(out, i.Name)
	}
	return out
}
