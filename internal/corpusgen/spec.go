package corpusgen

import (
	"fmt"
	"strings"

	"wasabi/internal/apps/meta"
)

// buildSpec instantiates one structure: idiom defaults, a type name from
// the idiom's pool, and the knob adjustments its assigned role requires.
// The per-app ordinal suffixes every emitted top-level identifier, so
// bare method names stay unique per application — the property the
// name-based callee resolution of internal/sast depends on.
func buildSpec(pkg string, ordinal int, info *idiomInfo, bug meta.Bug,
	delayUnneeded, harnessRetried, wrapsErrors bool, rng *rng) StructureSpec {

	typeBase := info.Types[rng.intn(len(info.Types))]
	typeName := fmt.Sprintf("%s%d", typeBase, ordinal)
	coordinator := fmt.Sprintf("%s.%s.%s%d", pkg, typeName, info.CoordVerb, ordinal)

	var retried []string
	switch info.Name {
	case IdiomSagaCompensation:
		for _, v := range sagaStepVerbs[:info.Steps] {
			retried = append(retried, fmt.Sprintf("%s.%s.%s%d", pkg, typeName, v, ordinal))
		}
	case IdiomStateMachineExc:
		for _, v := range smStepVerbs[:info.Steps] {
			retried = append(retried, fmt.Sprintf("%s.%s.%s%d", pkg, typeName, v, ordinal))
		}
	default:
		if info.RetriedVerb != "" {
			retried = []string{fmt.Sprintf("%s.%s.%s%d", pkg, typeName, info.RetriedVerb, ordinal)}
		}
	}

	s := StructureSpec{
		Idiom:       info.Name,
		Ordinal:     ordinal,
		TypeName:    typeName,
		File:        fmt.Sprintf("%s_%d.go", snake(typeBase), ordinal),
		Coordinator: coordinator,
		Retried:     retried,
		Mechanism:   info.Mechanism,
		Trigger:     info.Trigger,
		Keyworded:   info.Keyworded,
		Bug:         bug,
		Cap:         info.Cap,
		DelayMS:     info.DelayMS,
		Throws:      append([]string(nil), info.Throws...),
		Aborts:      append([]string(nil), info.Aborts...),
		Steps:       info.Steps,

		DelayUnneeded:  delayUnneeded,
		HarnessRetried: harnessRetried,
		WrapsErrors:    wrapsErrors,
	}

	switch bug {
	case meta.MissingCap:
		s.Cap = 0 // unbounded: the retry budget was never wired up
	case meta.MissingDelay:
		s.Cap, s.DelayMS = 6, 0 // bounded but back-to-back
	case meta.How:
		s.HowCls = classHow // compensation corrupts state; re-run crashes
	case meta.WrongPolicyNotRetried:
		// Aborts a class the rest of the population retries.
		s.Aborts = append(s.Aborts, classConnect)
	case meta.WrongPolicyRetried:
		// Retries the class the rest of the population gives up on.
		s.Aborts = nil
	}
	if harnessRetried {
		s.Drives = 40 // workload driver re-drives independent tasks
	}
	if delayUnneeded {
		s.DelayMS = 0 // compensates (rotates replica) instead of pausing
	}
	if wrapsErrors {
		s.Wrap = classWrap
	}
	return s
}

// snake converts "BlockFetcher" to "block_fetcher".
func snake(s string) string {
	var b strings.Builder
	for i, r := range s {
		if r >= 'A' && r <= 'Z' {
			if i > 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r - 'A' + 'a')
		} else {
			b.WriteRune(r)
		}
	}
	return b.String()
}
