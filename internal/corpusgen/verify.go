package corpusgen

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"wasabi/internal/apps/meta"
	"wasabi/internal/core"
	"wasabi/internal/oracle"
	"wasabi/internal/sast"
)

// LedgerSchema identifies the ground-truth ledger format.
const LedgerSchema = "corpusgen-ledger/v1"

// Ledger entry statuses. Every structure starts as a candidate; only a
// verify pass that records an oracle (or retry-ratio) witness promotes
// it to verified. A candidate is still usable ground truth — it is what
// the generator intended — but only verified entries have been confirmed
// end-to-end by the pipeline the corpus is meant to exercise.
const (
	StatusCandidate = "candidate"
	StatusVerified  = "verified"
)

// Ledger is the corpus ground-truth ledger (ledger.json at the root).
type Ledger struct {
	Schema     string        `json:"schema"`
	Seed       uint64        `json:"seed"`
	Scale      int           `json:"scale"`
	Verified   int           `json:"verified"`
	Candidates int           `json:"candidates"`
	Entries    []LedgerEntry `json:"entries"`
}

// LedgerEntry tracks one structure's verification status.
type LedgerEntry struct {
	// Key is "APPCODE/coordinator", unique corpus-wide.
	Key   string `json:"key"`
	Idiom string `json:"idiom"`
	Bug   string `json:"bug,omitempty"`
	// Status is StatusCandidate or StatusVerified.
	Status string `json:"status"`
	// Witness records the evidence that justified promotion: the oracle
	// report, the retry-ratio outlier, or the clean-injection record for
	// correct structures. Empty while the entry is a candidate.
	Witness string `json:"witness,omitempty"`
}

// NewLedger builds the initial all-candidate ledger for a corpus plan.
func NewLedger(c *Corpus) *Ledger {
	led := &Ledger{Schema: LedgerSchema, Seed: c.Config.Seed, Scale: c.Config.Scale}
	for _, app := range c.Apps {
		for _, s := range app.Structures {
			led.Entries = append(led.Entries, LedgerEntry{
				Key:    s.Key(app.Code),
				Idiom:  s.Idiom,
				Bug:    string(s.Bug),
				Status: StatusCandidate,
			})
		}
	}
	led.Candidates = len(led.Entries)
	return led
}

// WriteLedger persists the ledger at the corpus root.
func WriteLedger(root string, led *Ledger) error {
	return writeJSON(filepath.Join(root, LedgerFile), led)
}

// LoadLedger reads the ledger back from the corpus root.
func LoadLedger(root string) (*Ledger, error) {
	raw, err := os.ReadFile(filepath.Join(root, LedgerFile))
	if err != nil {
		return nil, fmt.Errorf("corpusgen: reading ledger: %w", err)
	}
	var led Ledger
	if err := json.Unmarshal(raw, &led); err != nil {
		return nil, fmt.Errorf("corpusgen: parsing %s: %w", LedgerFile, err)
	}
	if led.Schema != LedgerSchema {
		return nil, fmt.Errorf("corpusgen: %s has schema %q, want %q", LedgerFile, led.Schema, LedgerSchema)
	}
	return &led, nil
}

// Verify promotes candidates to verified from a full pipeline run over
// the generated corpus. Promotion requires an end-to-end witness:
//
//   - WHEN bugs (missing-cap / missing-delay) and HOW bugs: the matching
//     dynamic oracle report at the structure's coordinator.
//   - IF bugs (wrong-policy outliers): the corpus-wide retry-ratio
//     report naming the coordinator with the matching direction.
//   - FP-flagged structures (harness-retried, delay-unneeded,
//     wraps-errors): the false-positive oracle report the flag predicts —
//     the corpus documents these as expected FPs, so observing the FP is
//     the witness.
//   - Correct exception structures: identified with injectable locations
//     AND no oracle report at the coordinator (a clean injection pass).
//
// Error-code structures stay candidates by construction: they are
// outside the exception-injection scope (§4.2), so no oracle can witness
// them either way.
func Verify(c *Corpus, run *core.CorpusRun) *Ledger {
	led := NewLedger(c)

	byCode := make(map[string]*core.AppRun, len(run.Apps))
	for i := range run.Apps {
		byCode[run.Apps[i].App.Code] = &run.Apps[i]
	}
	ifByCoord := make(map[string][]sast.IFReport)
	for _, r := range run.IFReports {
		ifByCoord[r.Coordinator] = append(ifByCoord[r.Coordinator], r)
	}

	idx := 0
	for _, app := range c.Apps {
		var dyn map[string][]oracle.Report
		identified := make(map[string]int)
		if ar := byCode[app.Code]; ar != nil {
			if ar.Dyn != nil {
				dyn = oracle.ByCoordinator(ar.Dyn.Reports)
			}
			if ar.ID != nil {
				for _, s := range ar.ID.Structures {
					identified[s.Coordinator] = len(s.Triplets)
				}
			}
		}
		for _, s := range app.Structures {
			e := &led.Entries[idx]
			idx++
			promote(e, s, dyn[s.Coordinator], ifByCoord[s.Coordinator], identified[s.Coordinator])
		}
	}

	led.Verified, led.Candidates = 0, 0
	for _, e := range led.Entries {
		if e.Status == StatusVerified {
			led.Verified++
		} else {
			led.Candidates++
		}
	}
	return led
}

// promote applies the promotion rules to one entry.
func promote(e *LedgerEntry, s StructureSpec, dyn []oracle.Report, ifr []sast.IFReport, triplets int) {
	if s.Trigger == meta.ErrorCode {
		return // outside injection scope; candidate by construction
	}
	oracleWitness := func(kind oracle.Kind) (string, bool) {
		for _, r := range dyn {
			if r.Kind == kind {
				return fmt.Sprintf("oracle %s: %s", r.Kind, r.Details), true
			}
		}
		return "", false
	}
	ifWitness := func(retried bool) (string, bool) {
		for _, r := range ifr {
			if r.Retried == retried {
				return fmt.Sprintf("if-ratio outlier: %s retried=%v (%d/%d)",
					r.Exception, r.Retried, r.Ratio.Retried, r.Ratio.Total), true
			}
		}
		return "", false
	}

	var witness string
	var ok bool
	switch {
	case s.Bug == meta.MissingCap:
		witness, ok = oracleWitness(oracle.MissingCap)
	case s.Bug == meta.MissingDelay:
		witness, ok = oracleWitness(oracle.MissingDelay)
	case s.Bug == meta.How:
		witness, ok = oracleWitness(oracle.How)
	case s.Bug == meta.WrongPolicyNotRetried:
		witness, ok = ifWitness(false)
	case s.Bug == meta.WrongPolicyRetried:
		witness, ok = ifWitness(true)
	case s.HarnessRetried:
		// The flag predicts a missing-cap false positive; observing it is
		// the witness that the FP mode reproduced.
		witness, ok = oracleWitness(oracle.MissingCap)
	case s.DelayUnneeded:
		witness, ok = oracleWitness(oracle.MissingDelay)
	case s.WrapsErrors:
		witness, ok = oracleWitness(oracle.How)
	default:
		// Correct structure: identified with injectable locations and a
		// clean injection pass (no oracle report at the coordinator).
		if triplets > 0 && len(dyn) == 0 {
			witness, ok = fmt.Sprintf("clean-injection: %d locations injected, no oracle report", triplets), true
		}
	}
	if ok {
		e.Status = StatusVerified
		e.Witness = witness
	}
}
