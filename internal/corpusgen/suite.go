package corpusgen

import (
	"context"
	"time"

	"wasabi/internal/apps/meta"
	"wasabi/internal/errmodel"
	"wasabi/internal/fault"
	"wasabi/internal/testkit"
	"wasabi/internal/trace"
)

// Suite materializes the app's unit-test suite: one test per structure,
// backed by an interpreter that executes the StructureSpec's documented
// semantics. The emitted source files are parse-only corpus material for
// the static workflows; the suite is how the dynamic workflow runs the
// same structures. Hooks use fault.HookAt — "weaving by configuration" —
// because interpreted methods have no stack frames for fault.Hook to
// recover, and sleeps are recorded against the coordinator frame so the
// missing-delay oracle attributes them exactly as it would compiled code.
func Suite(app AppSpec) testkit.Suite {
	s := testkit.Suite{App: app.Code, Name: app.Name}
	for i, st := range app.Structures {
		st := st
		t := testkit.Test{
			Name:         app.Pkg + ".Test" + st.TypeName,
			App:          app.Code,
			RetryLabeled: st.Keyworded,
			Body: func(ctx context.Context, overrides map[string]string) error {
				return execute(ctx, st)
			},
		}
		if i == 0 {
			// Mirror the seed suites: the app's first test carries a
			// retry-restricting override the §3.1.4 preparation pass
			// must strip before injection runs.
			t.Overrides = map[string]string{
				"gen.cluster.name":  "local",
				"gen.fetch.retries": "1",
			}
		}
		s.Tests = append(s.Tests, t)
	}
	return s
}

// execute interprets one structure.
func execute(ctx context.Context, st StructureSpec) error {
	switch st.Idiom {
	case IdiomSagaCompensation:
		return runSaga(ctx, st)
	case IdiomStateMachineExc:
		return runStateMachine(ctx, st)
	case IdiomStatusBackoff, IdiomStateMachineCode:
		return runStatusRounds(ctx, st)
	default:
		return runRetryLoop(ctx, st)
	}
}

// sleepAs advances virtual time with a sleep attributed to the
// coordinator frame, matching what vclock.Sleep records in compiled
// corpus code (the delay oracle matches sleeps by coordinator frame).
func sleepAs(ctx context.Context, coordinator string, ms int) {
	if ms <= 0 {
		return
	}
	if r := trace.From(ctx); r != nil {
		r.AdvanceAndRecordSleep(time.Duration(ms)*time.Millisecond, []string{coordinator})
	}
}

// attemptCeiling is a safety bound for nominally unbounded loops: far
// above the cap oracle's threshold, so it never masks a missing-cap bug,
// but it guarantees termination against pathological injector configs.
const attemptCeiling = 100000

// runRetryLoop interprets the loop- and queue-family idioms. When the
// structure is harness-retried, the workload driver re-drives it once
// per pending task and tolerates individual give-ups (§4.3's missing-cap
// false-positive mode).
func runRetryLoop(ctx context.Context, st StructureSpec) error {
	drives := 1
	if st.HarnessRetried && st.Drives > 0 {
		drives = st.Drives
	}
	var last error
	for d := 0; d < drives; d++ {
		last = driveOnce(ctx, st)
		if last != nil && !st.HarnessRetried {
			return giveUp(st, last)
		}
	}
	if st.HarnessRetried {
		// The driver already logged per-task failures; the run as a
		// whole succeeds.
		return nil
	}
	return nil
}

// driveOnce performs one retry-loop execution: attempts until success,
// an aborted exception class, or an exhausted budget.
func driveOnce(ctx context.Context, st StructureSpec) error {
	var last error
	for attempt := 0; st.Cap == 0 || attempt < st.Cap; attempt++ {
		err := fault.HookAt(ctx, st.Coordinator, st.Retried[0])
		if err == nil {
			return nil
		}
		for _, cls := range st.Aborts {
			if errmodel.IsClass(err, cls) {
				return err
			}
		}
		last = err
		sleepAs(ctx, st.Coordinator, st.DelayMS)
		if attempt >= attemptCeiling {
			break
		}
	}
	return last
}

// giveUp propagates the budget-exhausted error, wrapping it for
// WrapsErrors structures (the "different exception" FP source, §4.3).
// The wrapped exception's site is pinned to the coordinator so distinct
// structures group as distinct bugs.
func giveUp(st StructureSpec, err error) error {
	if st.Wrap == "" {
		return err
	}
	exc := errmodel.Wrap(st.Wrap, "giving up after exhausting the retry budget", err)
	exc.Site = st.Coordinator
	return exc
}

// runSaga interprets saga/compensation structures: run the steps in
// order, compensate the completed prefix on failure, re-run the saga.
// The generated HOW bug manifests on the re-run after a compensation:
// the corrupted ledger surfaces as an IllegalStateException (§2.4 —
// broken retry execution under a single fault).
func runSaga(ctx context.Context, st StructureSpec) error {
	compensations := 0
	var last error
	for attempt := 0; attempt < st.Cap; attempt++ {
		if st.Bug == meta.How && compensations > 0 {
			exc := errmodel.New(st.HowCls, "saga ledger out of sync after compensation")
			exc.Site = st.Coordinator
			return exc
		}
		last = nil
		for _, step := range st.Retried {
			if err := fault.HookAt(ctx, st.Coordinator, step); err != nil {
				last = err
				break
			}
		}
		if last == nil {
			return nil
		}
		compensations++
		sleepAs(ctx, st.Coordinator, st.DelayMS)
	}
	return last
}

// runStateMachine interprets exception-triggered state machines: a
// failed step is retried in place (state unchanged) until the shared
// attempt budget is spent.
func runStateMachine(ctx context.Context, st StructureSpec) error {
	attempts := 0
	state := 0
	for state < len(st.Retried) {
		err := fault.HookAt(ctx, st.Coordinator, st.Retried[state])
		if err == nil {
			state++
			continue
		}
		attempts++
		if attempts >= st.Cap {
			return err
		}
		sleepAs(ctx, st.Coordinator, st.DelayMS)
	}
	return nil
}

// runStatusRounds interprets error-code structures: they are outside the
// exception-injection scope (§4.2), so the interpreter only simulates
// the polling rounds' virtual-time cost.
func runStatusRounds(ctx context.Context, st StructureSpec) error {
	for round := 0; round < 2; round++ {
		sleepAs(ctx, st.Coordinator, st.DelayMS)
	}
	return nil
}
