package corpusgen

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"testing"

	"wasabi/internal/core"
)

// TestGenSmoke is the `make gen-smoke` gate: generate a 10× corpus into
// a temp dir, run the static-only pipeline (identification; no fault
// injection), and require zero parse failures plus a ledger whose
// candidate count equals the manifest count.
func TestGenSmoke(t *testing.T) {
	const scale = 10
	c, err := Generate(Config{Seed: 1, Scale: scale})
	if err != nil {
		t.Fatal(err)
	}
	root := t.TempDir()
	if err := Write(c, root, 8); err != nil {
		t.Fatal(err)
	}

	// Every emitted source file must parse: the corpus is useless to the
	// static lanes otherwise.
	parsed := 0
	fset := token.NewFileSet()
	for _, app := range c.Apps {
		dir := filepath.Join(root, app.Pkg)
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if filepath.Ext(e.Name()) != ".go" {
				continue
			}
			if _, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments); err != nil {
				t.Errorf("parse failure: %v", err)
			}
			parsed++
		}
	}
	wantFiles := structuresPerScale * scale
	if parsed != wantFiles {
		t.Errorf("parsed %d files, want %d", parsed, wantFiles)
	}

	// Static-only pipeline: identification over every generated app.
	apps, spec, err := LoadApps(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(apps) != appsPerScale*scale {
		t.Fatalf("loaded %d apps, want %d", len(apps), appsPerScale*scale)
	}
	w := core.New(core.DefaultOptions())
	identified := 0
	for _, app := range apps {
		id, err := w.Identify(app)
		if err != nil {
			t.Fatalf("identify %s: %v", app.Code, err)
		}
		identified += len(id.Structures)
	}
	if identified == 0 {
		t.Fatal("static lanes identified no structures in the generated corpus")
	}

	// The fresh ledger tracks every manifest structure as a candidate.
	led, err := LoadLedger(root)
	if err != nil {
		t.Fatal(err)
	}
	manifests := spec.Manifests()
	if led.Candidates != len(manifests) || len(led.Entries) != len(manifests) {
		t.Errorf("ledger candidates=%d entries=%d, want both == manifest count %d",
			led.Candidates, len(led.Entries), len(manifests))
	}
}
