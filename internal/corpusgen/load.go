package corpusgen

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"wasabi/internal/apps/corpus"
)

// Load reads a generated corpus root's machine-readable spec
// (corpusgen.json) back into memory.
func Load(root string) (*Corpus, error) {
	raw, err := os.ReadFile(filepath.Join(root, SpecFile))
	if err != nil {
		return nil, fmt.Errorf("corpusgen: reading spec: %w", err)
	}
	var c Corpus
	if err := json.Unmarshal(raw, &c); err != nil {
		return nil, fmt.Errorf("corpusgen: parsing %s: %w", SpecFile, err)
	}
	if c.Schema != SpecSchema {
		return nil, fmt.Errorf("corpusgen: %s has schema %q, want %q", SpecFile, c.Schema, SpecSchema)
	}
	return &c, nil
}

// LoadApps returns the generated corpus as pipeline-ready applications:
// each app's Dir points at its emitted sources (for the SAST and LLM
// lanes), its Suite at the interpreter (for the dynamic lane), and its
// Manifest at the derived ground truth. The result is a drop-in
// replacement for corpus.Apps().
func LoadApps(root string) ([]corpus.App, *Corpus, error) {
	c, err := Load(root)
	if err != nil {
		return nil, nil, err
	}
	apps := make([]corpus.App, 0, len(c.Apps))
	for _, a := range c.Apps {
		apps = append(apps, corpus.App{
			Code:     a.Code,
			Name:     a.Name,
			Dir:      filepath.Join(root, a.Pkg),
			Suite:    Suite(a),
			Manifest: a.Manifest(),
		})
	}
	return apps, c, nil
}
