package corpusgen

// rng is a splitmix64 generator: tiny, fast, and — unlike the standard
// library's generator — guaranteed stable across Go releases, which the
// determinism contract (same seed → byte-identical corpus) depends on.
type rng struct {
	state uint64
}

func newRNG(seed uint64) *rng {
	return &rng{state: seed ^ 0x9e3779b97f4a7c15}
}

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a value in [0, n). n must be positive.
func (r *rng) intn(n int) int {
	return int(r.next() % uint64(n))
}

// shuffle permutes xs in place (Fisher–Yates).
func (r *rng) shuffle(xs []int) {
	for i := len(xs) - 1; i > 0; i-- {
		j := r.intn(i + 1)
		xs[i], xs[j] = xs[j], xs[i]
	}
}
