package corpusgen

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// treeHash hashes every file under root (path + content) in sorted path
// order, so byte-identical trees — and only those — hash equal.
func treeHash(t *testing.T, root string) string {
	t.Helper()
	var paths []string
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() {
			paths = append(paths, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(paths)
	h := sha256.New()
	for _, p := range paths {
		rel, err := filepath.Rel(root, p)
		if err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(h, "%s\n%d\n", filepath.ToSlash(rel), len(data))
		h.Write(data)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TestGenerateDeterministic is the determinism contract: the same seed
// and configuration produce a byte-identical tree, manifest, and ledger
// at any writer worker count. Run under -race this also proves the
// parallel writer has no ordering races that could leak into output.
func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, Scale: 2}

	var hashes []string
	for _, workers := range []int{1, 8} {
		c, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		root := t.TempDir()
		if err := Write(c, root, workers); err != nil {
			t.Fatal(err)
		}
		hashes = append(hashes, treeHash(t, root))
	}
	if hashes[0] != hashes[1] {
		t.Fatalf("tree hash differs across worker counts: %s vs %s", hashes[0], hashes[1])
	}

	// A different seed must shuffle role assignment and type choices into
	// a different tree.
	c, err := Generate(Config{Seed: 43, Scale: 2})
	if err != nil {
		t.Fatal(err)
	}
	root := t.TempDir()
	if err := Write(c, root, 4); err != nil {
		t.Fatal(err)
	}
	if h := treeHash(t, root); h == hashes[0] {
		t.Fatal("different seeds produced identical trees")
	}
}

// TestGenerateStableAcrossCalls re-runs Generate in-process: no hidden
// global state may leak between runs.
func TestGenerateStableAcrossCalls(t *testing.T) {
	a, err := Generate(Config{Seed: 7, Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Config{Seed: 7, Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
		t.Fatal("two Generate calls with the same config differ")
	}
}

// TestGenerationIsDateFree asserts the package sources never consult the
// wall clock or global randomness — the static half of the determinism
// guarantee (the dynamic half is the tree-hash test above).
func TestGenerationIsDateFree(t *testing.T) {
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		src, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, forbidden := range []string{"time.Now(", "math/rand", "crypto/rand"} {
			if strings.Contains(string(src), forbidden) {
				t.Errorf("%s uses %s: generation must be a pure function of the config", name, forbidden)
			}
		}
	}
}
