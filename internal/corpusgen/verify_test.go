package corpusgen

import (
	"strings"
	"testing"

	"wasabi/internal/apps/meta"
	"wasabi/internal/core"
)

// TestVerifyPromotesWithWitnesses runs the real pipeline — both
// workflows plus the corpus-wide IF analysis — over a generated corpus
// and checks the candidate→verified promotion model end to end:
//
//   - every exception-triggered structure is promoted with a recorded
//     witness (86 of 98 at scale 1),
//   - every bug class is promoted by its matching oracle or IF witness,
//   - error-code structures stay candidates by construction (they are
//     outside the exception-injection scope).
func TestVerifyPromotesWithWitnesses(t *testing.T) {
	c, err := Generate(Config{Seed: 1, Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	root := t.TempDir()
	if err := Write(c, root, 4); err != nil {
		t.Fatal(err)
	}
	apps, _, err := LoadApps(root)
	if err != nil {
		t.Fatal(err)
	}
	run, err := core.New(core.DefaultOptions()).RunCorpus(apps)
	if err != nil {
		t.Fatal(err)
	}
	led := Verify(c, run)

	if led.Verified != 86 || led.Candidates != 12 {
		t.Errorf("verified=%d candidates=%d, want 86/12", led.Verified, led.Candidates)
	}

	specs := make(map[string]StructureSpec)
	for _, app := range c.Apps {
		for _, s := range app.Structures {
			specs[s.Key(app.Code)] = s
		}
	}
	promotedByClass := make(map[meta.Bug]int)
	for _, e := range led.Entries {
		s := specs[e.Key]
		switch e.Status {
		case StatusVerified:
			if e.Witness == "" {
				t.Errorf("%s verified without a witness", e.Key)
			}
			if s.Trigger == meta.ErrorCode {
				t.Errorf("%s is error-code triggered but was promoted", e.Key)
			}
			promotedByClass[s.Bug]++
		case StatusCandidate:
			if s.Trigger != meta.ErrorCode {
				t.Errorf("%s stayed candidate: trigger=%s bug=%q idiom=%s", e.Key, s.Trigger, s.Bug, s.Idiom)
			}
			if e.Witness != "" {
				t.Errorf("%s is a candidate but has witness %q", e.Key, e.Witness)
			}
		default:
			t.Errorf("%s has unknown status %q", e.Key, e.Status)
		}
	}

	// Every bug class must be represented among the promotions — the
	// acceptance bar is ≥1 promoted class; the generator's contract is
	// all five, plus the correct population.
	for class, want := range map[meta.Bug]int{
		meta.MissingCap:            missingCapPer98,
		meta.MissingDelay:          missingDelayPer98,
		meta.How:                   howPer98,
		meta.WrongPolicyNotRetried: ifNotRetriedPer98,
		meta.WrongPolicyRetried:    ifRetriedPer98,
		meta.None:                  0, // correct structures promote via clean injection
	} {
		if promotedByClass[class] < want || promotedByClass[class] == 0 {
			t.Errorf("bug class %q: promoted %d, want at least %d (and > 0)", class, promotedByClass[class], want)
		}
	}

	// Witness kinds line up with the bug classes.
	for _, e := range led.Entries {
		if e.Status != StatusVerified {
			continue
		}
		s := specs[e.Key]
		var wantPrefix string
		switch {
		case s.Bug == meta.MissingCap || s.HarnessRetried:
			wantPrefix = "oracle missing-cap"
		case s.Bug == meta.MissingDelay || s.DelayUnneeded:
			wantPrefix = "oracle missing-delay"
		case s.Bug == meta.How || s.WrapsErrors:
			wantPrefix = "oracle how"
		case s.Bug == meta.WrongPolicyNotRetried, s.Bug == meta.WrongPolicyRetried:
			wantPrefix = "if-ratio outlier"
		default:
			wantPrefix = "clean-injection"
		}
		if !strings.HasPrefix(e.Witness, wantPrefix) {
			t.Errorf("%s (bug=%q): witness %q, want prefix %q", e.Key, s.Bug, e.Witness, wantPrefix)
		}
	}
}

// TestLedgerRoundTrip checks ledger persistence and the initial
// all-candidate state Write seeds the corpus root with.
func TestLedgerRoundTrip(t *testing.T) {
	c, err := Generate(Config{Seed: 5, Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	root := t.TempDir()
	if err := Write(c, root, 2); err != nil {
		t.Fatal(err)
	}
	led, err := LoadLedger(root)
	if err != nil {
		t.Fatal(err)
	}
	if led.Verified != 0 || led.Candidates != len(c.Manifests()) {
		t.Errorf("fresh ledger verified=%d candidates=%d, want 0/%d", led.Verified, led.Candidates, len(c.Manifests()))
	}
	led.Entries[0].Status = StatusVerified
	led.Entries[0].Witness = "test witness"
	led.Verified, led.Candidates = 1, led.Candidates-1
	if err := WriteLedger(root, led); err != nil {
		t.Fatal(err)
	}
	back, err := LoadLedger(root)
	if err != nil {
		t.Fatal(err)
	}
	if back.Verified != 1 || back.Entries[0].Witness != "test witness" {
		t.Errorf("ledger round trip lost the promotion: %+v", back.Entries[0])
	}
}
