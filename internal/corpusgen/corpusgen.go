// Package corpusgen is the seeded procedural corpus generator: it emits
// synthetic application miniatures — Go source files, a testkit-based
// suite, and a []meta.Structure ground-truth manifest per app — at a
// configurable multiple of the hand-written seed corpus, so the pipeline
// and the service stack can be exercised beyond toy scale (§4's eight
// applications, scaled 10–100×).
//
// Generation is a pure function of (seed, scale, bug-ratio overrides):
// the same configuration always produces a byte-identical tree, manifest,
// and ledger, at any writer worker count, with no wall-clock or Date
// dependence. The generated population reproduces the seed data card's
// statistical envelope (mechanism / trigger / keyworded / bug-class
// proportions, docs/CORPUS.md) and extends it with retry idioms the
// hand-written corpus lacks: backoff-with-jitter, hedged requests,
// idempotency-token replay, saga/compensation loops, and
// retry-across-RPC-boundary.
//
// Ground truth follows a candidate/verified promotion model: every
// generated structure enters the ledger as a candidate, and only a
// corpusgen verify pass — which runs the real static + dynamic pipeline
// and records the oracle (or retry-ratio) witness — promotes it to
// verified. Error-code structures stay candidates by construction: they
// are outside WASABI's exception-injection scope (§4.2), so no oracle
// can witness them. See docs/CORPUSGEN.md.
package corpusgen

import (
	"fmt"
	"sort"

	"wasabi/internal/apps/meta"
)

// Spec schema identifier written to corpusgen.json.
const SpecSchema = "corpusgen-spec/v1"

// DefaultScale is the scale knob's default: 1× the 98-structure seed.
const DefaultScale = 1

// MaxScale bounds the scale knob (100× ≈ 9800 structures, 800 apps).
const MaxScale = 100

// structuresPerScale and appsPerScale mirror the seed corpus shape.
const (
	structuresPerScale = 98
	appsPerScale       = 8
)

// Config parameterizes one generation run.
type Config struct {
	// Seed drives every random choice; same seed + same knobs → same tree.
	Seed uint64 `json:"seed"`
	// Scale multiplies the seed corpus: Scale×98 structures over Scale×8
	// apps.
	Scale int `json:"scale"`
	// Buggy optionally overrides the per-bug-class fraction of the total
	// population (e.g. {"missing-cap": 0.25}). Classes not present keep
	// the seed corpus proportions. Fractions apply to eligible idioms
	// only; they are rounded to counts by largest remainder.
	Buggy map[string]float64 `json:"buggy,omitempty"`
}

// Normalize fills defaults and validates the knobs.
func (c *Config) Normalize() error {
	if c.Scale == 0 {
		c.Scale = DefaultScale
	}
	if c.Scale < 1 || c.Scale > MaxScale {
		return fmt.Errorf("corpusgen: scale %d out of range [1, %d]", c.Scale, MaxScale)
	}
	for class, frac := range c.Buggy {
		if frac < 0 || frac > 1 {
			return fmt.Errorf("corpusgen: buggy fraction %q=%v out of [0,1]", class, frac)
		}
		if !knownBugClass(class) {
			return fmt.Errorf("corpusgen: unknown bug class %q", class)
		}
	}
	return nil
}

func knownBugClass(class string) bool {
	switch meta.Bug(class) {
	case meta.MissingCap, meta.MissingDelay, meta.How,
		meta.WrongPolicyNotRetried, meta.WrongPolicyRetried:
		return true
	}
	return false
}

// Corpus is a fully resolved generation plan: everything needed to emit
// the tree, rebuild the suites, and derive the manifests.
type Corpus struct {
	Schema string    `json:"schema"`
	Config Config    `json:"config"`
	Apps   []AppSpec `json:"apps"`
}

// AppSpec is one generated application.
type AppSpec struct {
	// Code is the corpus short code ("G001"…), Pkg the Go package name
	// ("gen001"…), Name the human-readable name.
	Code string `json:"code"`
	Name string `json:"name"`
	Pkg  string `json:"pkg"`
	// Structures are the app's retry structures in emission order.
	Structures []StructureSpec `json:"structures"`
}

// StructureSpec is one generated retry structure: the taxonomy labels
// plus the runtime knobs its interpreter-backed suite test executes.
type StructureSpec struct {
	Idiom    string `json:"idiom"`
	Ordinal  int    `json:"ordinal"` // 1-based position within the app
	TypeName string `json:"type"`    // emitted Go type, e.g. "BlockFetcher3"
	File     string `json:"file"`    // emitted source basename

	// Coordinator / Retried use the corpus "pkg.Type.method" convention.
	Coordinator string   `json:"coordinator"`
	Retried     []string `json:"retried,omitempty"`

	Mechanism meta.Mechanism `json:"mechanism"`
	Trigger   meta.Trigger   `json:"trigger"`
	Keyworded bool           `json:"keyworded"`
	Bug       meta.Bug       `json:"bug,omitempty"`

	DelayUnneeded  bool `json:"delay_unneeded,omitempty"`
	HarnessRetried bool `json:"harness_retried,omitempty"`
	WrapsErrors    bool `json:"wraps_errors,omitempty"`

	// Runtime knobs the suite interpreter executes (and the emitted
	// source mirrors textually).
	Cap     int      `json:"cap"`               // 0 = unbounded
	DelayMS int      `json:"delay_ms"`          // 0 = no pause between attempts
	Throws  []string `json:"throws,omitempty"`  // classes the retried method declares
	Aborts  []string `json:"aborts,omitempty"`  // classes the coordinator gives up on
	Wrap    string   `json:"wrap,omitempty"`    // class the give-up path wraps errors in
	Steps   int      `json:"steps,omitempty"`   // saga / state-machine step count
	Drives  int      `json:"drives,omitempty"`  // harness re-drives (HarnessRetried)
	HowCls  string   `json:"how_cls,omitempty"` // class the HOW defect crashes with
}

// Key returns the ledger key "CODE/coordinator" — unique corpus-wide.
func (s StructureSpec) Key(appCode string) string { return appCode + "/" + s.Coordinator }

// Manifest derives the app's ground-truth manifest from its specs.
func (a AppSpec) Manifest() []meta.Structure {
	out := make([]meta.Structure, 0, len(a.Structures))
	for _, s := range a.Structures {
		out = append(out, meta.Structure{
			App:            a.Code,
			Coordinator:    s.Coordinator,
			Retried:        append([]string(nil), s.Retried...),
			File:           s.File,
			Mechanism:      s.Mechanism,
			Trigger:        s.Trigger,
			Keyworded:      s.Keyworded,
			Bug:            s.Bug,
			DelayUnneeded:  s.DelayUnneeded,
			HarnessRetried: s.HarnessRetried,
			WrapsErrors:    s.WrapsErrors,
			Note:           "generated: idiom " + s.Idiom,
		})
	}
	return out
}

// Generate resolves a configuration into a full corpus plan. It is pure:
// no I/O, no clock, no global randomness — only the seeded generator.
func Generate(cfg Config) (*Corpus, error) {
	if err := cfg.Normalize(); err != nil {
		return nil, err
	}
	total := structuresPerScale * cfg.Scale
	numApps := appsPerScale * cfg.Scale

	// 1. Instantiate idiom quotas (exact multiples of the per-98 table).
	type instance struct {
		idiom *idiomInfo
		// role assignment results:
		bug            meta.Bug
		delayUnneeded  bool
		harnessRetried bool
		wrapsErrors    bool
	}
	var instances []instance
	for i := range idiomTable {
		info := &idiomTable[i]
		for k := 0; k < info.Per98*cfg.Scale; k++ {
			instances = append(instances, instance{idiom: info})
		}
	}
	if len(instances) != total {
		return nil, fmt.Errorf("corpusgen: idiom quotas sum to %d, want %d", len(instances), total)
	}

	// 2. Assign bug classes and FP flags over eligible idioms, in a fixed
	// order, each instance taking at most one role. Pools are shuffled
	// with the seeded generator so roles spread across apps and idioms.
	rng := newRNG(cfg.Seed)
	counts := bugCounts(cfg, total)
	poolOf := func(eligible func(*idiomInfo) bool) []int {
		var pool []int
		for i := range instances {
			if instances[i].bug == meta.None &&
				!instances[i].delayUnneeded && !instances[i].harnessRetried && !instances[i].wrapsErrors &&
				eligible(instances[i].idiom) {
				pool = append(pool, i)
			}
		}
		rng.shuffle(pool)
		return pool
	}
	take := func(pool []int, n int, assign func(*instance)) ([]int, error) {
		if n > len(pool) {
			return nil, fmt.Errorf("corpusgen: bug quota %d exceeds eligible pool %d", n, len(pool))
		}
		for _, idx := range pool[:n] {
			assign(&instances[idx])
		}
		return pool[n:], nil
	}
	var err error
	// HOW bugs live in saga/compensation structures only.
	howPool := poolOf(func(i *idiomInfo) bool { return i.Name == IdiomSagaCompensation })
	if _, err = take(howPool, counts[meta.How], func(in *instance) { in.bug = meta.How }); err != nil {
		return nil, err
	}
	// if-retried outliers must declare the aborted class (bounded/rpc).
	ifRetPool := poolOf(func(i *idiomInfo) bool { return i.DeclaresAbort })
	if _, err = take(ifRetPool, counts[meta.WrongPolicyRetried], func(in *instance) { in.bug = meta.WrongPolicyRetried }); err != nil {
		return nil, err
	}
	// if-not-retried outliers come from any keyworded exception loop idiom.
	ifNotPool := poolOf(func(i *idiomInfo) bool { return i.IFEligible })
	if _, err = take(ifNotPool, counts[meta.WrongPolicyNotRetried], func(in *instance) { in.bug = meta.WrongPolicyNotRetried }); err != nil {
		return nil, err
	}
	// WHEN bugs and FP flags share the cap/delay-eligible pool.
	whenPool := poolOf(func(i *idiomInfo) bool { return i.WhenEligible })
	if whenPool, err = take(whenPool, counts[meta.MissingCap], func(in *instance) { in.bug = meta.MissingCap }); err != nil {
		return nil, err
	}
	if whenPool, err = take(whenPool, counts[meta.MissingDelay], func(in *instance) { in.bug = meta.MissingDelay }); err != nil {
		return nil, err
	}
	if whenPool, err = take(whenPool, harnessRetriedPer98*cfg.Scale, func(in *instance) { in.harnessRetried = true }); err != nil {
		return nil, err
	}
	if whenPool, err = take(whenPool, delayUnneededPer98*cfg.Scale, func(in *instance) { in.delayUnneeded = true }); err != nil {
		return nil, err
	}
	if _, err = take(whenPool, wrapsErrorsPer98*cfg.Scale, func(in *instance) { in.wrapsErrors = true }); err != nil {
		return nil, err
	}

	// 3. Deal instances to apps. Interleave idioms (k-th instance of each
	// idiom in turn) so every app receives a representative mix, then
	// round-robin over the apps.
	apps := make([]AppSpec, numApps)
	for i := range apps {
		apps[i] = AppSpec{
			Code: fmt.Sprintf("G%03d", i+1),
			Name: fmt.Sprintf("GenApp %03d", i+1),
			Pkg:  fmt.Sprintf("gen%03d", i+1),
		}
	}
	var order []int
	{
		// indices of instances grouped per idiom, in table order
		byIdiom := make(map[string][]int)
		for i := range instances {
			byIdiom[instances[i].idiom.Name] = append(byIdiom[instances[i].idiom.Name], i)
		}
		for k := 0; ; k++ {
			progressed := false
			for i := range idiomTable {
				list := byIdiom[idiomTable[i].Name]
				if k < len(list) {
					order = append(order, list[k])
					progressed = true
				}
			}
			if !progressed {
				break
			}
		}
	}
	for pos, idx := range order {
		in := &instances[idx]
		app := &apps[pos%numApps]
		ordinal := len(app.Structures) + 1
		spec := buildSpec(app.Pkg, ordinal, in.idiom, in.bug, in.delayUnneeded, in.harnessRetried, in.wrapsErrors, rng)
		app.Structures = append(app.Structures, spec)
	}

	// Sanity: coordinators unique corpus-wide.
	seen := make(map[string]bool, total)
	for _, a := range apps {
		for _, s := range a.Structures {
			key := s.Key(a.Code)
			if seen[key] {
				return nil, fmt.Errorf("corpusgen: duplicate structure key %s", key)
			}
			seen[key] = true
		}
	}
	return &Corpus{Schema: SpecSchema, Config: cfg, Apps: apps}, nil
}

// Manifests concatenates every app's derived ground truth.
func (c *Corpus) Manifests() []meta.Structure {
	var out []meta.Structure
	for _, a := range c.Apps {
		out = append(out, a.Manifest()...)
	}
	return out
}

// bugCounts resolves the per-class counts: seed proportions by default,
// overridden fractions rounded by largest remainder against the total.
func bugCounts(cfg Config, total int) map[meta.Bug]int {
	fracs := map[meta.Bug]float64{
		meta.MissingCap:            float64(missingCapPer98) / structuresPerScale,
		meta.MissingDelay:          float64(missingDelayPer98) / structuresPerScale,
		meta.How:                   float64(howPer98) / structuresPerScale,
		meta.WrongPolicyNotRetried: float64(ifNotRetriedPer98) / structuresPerScale,
		meta.WrongPolicyRetried:    float64(ifRetriedPer98) / structuresPerScale,
	}
	for class, frac := range cfg.Buggy {
		fracs[meta.Bug(class)] = frac
	}
	// Largest-remainder rounding, iterating classes in a fixed order.
	classes := make([]meta.Bug, 0, len(fracs))
	for c := range fracs {
		classes = append(classes, c)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
	counts := make(map[meta.Bug]int, len(classes))
	type rem struct {
		class meta.Bug
		frac  float64
	}
	var rems []rem
	want := 0.0
	got := 0
	for _, c := range classes {
		exact := fracs[c] * float64(total)
		n := int(exact)
		counts[c] = n
		rems = append(rems, rem{c, exact - float64(n)})
		want += exact
		got += n
	}
	short := int(want+0.5) - got
	sort.SliceStable(rems, func(i, j int) bool { return rems[i].frac > rems[j].frac })
	for i := 0; i < short && i < len(rems); i++ {
		counts[rems[i].class]++
	}
	return counts
}
