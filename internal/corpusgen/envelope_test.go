package corpusgen

import (
	"testing"

	"wasabi/internal/apps/corpus"
	"wasabi/internal/apps/meta"
)

// TestDefaultScaleMatchesSeedEnvelope is the statistical-envelope
// guarantee: at the default configuration the generated population's
// mechanism / trigger / keyworded / bug-class / FP-flag proportions
// reproduce the hand-written seed corpus data card (docs/CORPUS.md)
// within DefaultTolerance. Failures print the observed-vs-expected
// table so drift is diagnosable from the test log alone.
func TestDefaultScaleMatchesSeedEnvelope(t *testing.T) {
	ref := EnvelopeOf(corpus.Manifests())
	if ref.Total == 0 {
		t.Fatal("seed corpus manifests are empty")
	}
	for _, scale := range []int{1, DefaultScale, 3} {
		c, err := Generate(Config{Seed: 1, Scale: scale})
		if err != nil {
			t.Fatal(err)
		}
		gen := EnvelopeOf(c.Manifests())
		if gen.Total != structuresPerScale*scale {
			t.Fatalf("scale %d: generated %d structures, want %d", scale, gen.Total, structuresPerScale*scale)
		}
		if devs := gen.Check(ref, DefaultTolerance); len(devs) > 0 {
			t.Errorf("scale %d: generated corpus leaves the seed envelope:\n%s", scale, FormatDeviations(devs))
		}
	}
}

// TestDefaultScaleIsExact sharpens the envelope guarantee: quotas are
// exact multiples of the seed marginals, so integer scales land on the
// seed fractions exactly, not merely within tolerance.
func TestDefaultScaleIsExact(t *testing.T) {
	ref := EnvelopeOf(corpus.Manifests())
	c, err := Generate(Config{Seed: 99, Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	if devs := EnvelopeOf(c.Manifests()).Check(ref, 1e-9); len(devs) > 0 {
		t.Errorf("default scale deviates from the seed marginals:\n%s", FormatDeviations(devs))
	}
}

// TestBuggyOverrideShiftsEnvelope proves the check has teeth: a config
// that nearly doubles the missing-cap fraction must (a) generate that
// many missing-cap bugs and (b) fail the seed-envelope comparison.
func TestBuggyOverrideShiftsEnvelope(t *testing.T) {
	c, err := Generate(Config{Seed: 1, Scale: 1, Buggy: map[string]float64{string(meta.MissingCap): 0.25}})
	if err != nil {
		t.Fatal(err)
	}
	caps := 0
	for _, s := range c.Manifests() {
		if s.Bug == meta.MissingCap {
			caps++
		}
	}
	if caps != 25 {
		t.Errorf("missing-cap override 0.25 produced %d/98 bugs, want 25", caps)
	}
	ref := EnvelopeOf(corpus.Manifests())
	if devs := EnvelopeOf(c.Manifests()).Check(ref, DefaultTolerance); len(devs) == 0 {
		t.Error("overridden corpus still passes the seed envelope — check has no teeth")
	}
}

// TestConfigValidation covers the knob guard rails.
func TestConfigValidation(t *testing.T) {
	if _, err := Generate(Config{Seed: 1, Scale: MaxScale + 1}); err == nil {
		t.Error("scale beyond MaxScale accepted")
	}
	if _, err := Generate(Config{Seed: 1, Scale: 1, Buggy: map[string]float64{"no-such-class": 0.1}}); err == nil {
		t.Error("unknown bug class accepted")
	}
	if _, err := Generate(Config{Seed: 1, Scale: 1, Buggy: map[string]float64{string(meta.How): 1.5}}); err == nil {
		t.Error("fraction > 1 accepted")
	}
	// An override that exceeds its eligible pool must fail loudly, not
	// silently truncate (HOW bugs only fit in saga structures).
	if _, err := Generate(Config{Seed: 1, Scale: 1, Buggy: map[string]float64{string(meta.How): 0.5}}); err == nil {
		t.Error("HOW quota beyond the saga pool accepted")
	}
}
