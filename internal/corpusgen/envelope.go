package corpusgen

import (
	"fmt"
	"sort"
	"strings"

	"wasabi/internal/apps/meta"
)

// DefaultTolerance is the envelope check's absolute tolerance on every
// population fraction. Default-scale generation lands exactly on the
// seed marginals (quotas are exact multiples), so the tolerance only
// absorbs rounding once Buggy overrides reshape the population.
const DefaultTolerance = 0.05

// Envelope is a corpus's statistical profile: every dimension is a
// fraction of the total population, so envelopes of different-sized
// corpora compare directly.
type Envelope struct {
	Total int

	Mechanism map[meta.Mechanism]float64
	Trigger   map[meta.Trigger]float64
	Keyworded float64
	Bugs      map[meta.Bug]float64 // meta.None holds the correct fraction

	HarnessRetried float64
	DelayUnneeded  float64
	WrapsErrors    float64
}

// EnvelopeOf profiles a manifest set.
func EnvelopeOf(list []meta.Structure) Envelope {
	e := Envelope{
		Total:     len(list),
		Mechanism: make(map[meta.Mechanism]float64),
		Trigger:   make(map[meta.Trigger]float64),
		Bugs:      make(map[meta.Bug]float64),
	}
	if e.Total == 0 {
		return e
	}
	n := float64(e.Total)
	for _, s := range list {
		e.Mechanism[s.Mechanism] += 1 / n
		e.Trigger[s.Trigger] += 1 / n
		e.Bugs[s.Bug] += 1 / n
		if s.Keyworded {
			e.Keyworded += 1 / n
		}
		if s.HarnessRetried {
			e.HarnessRetried += 1 / n
		}
		if s.DelayUnneeded {
			e.DelayUnneeded += 1 / n
		}
		if s.WrapsErrors {
			e.WrapsErrors += 1 / n
		}
	}
	return e
}

// Deviation is one envelope dimension outside tolerance.
type Deviation struct {
	Dimension string
	Observed  float64
	Expected  float64
}

// Check compares e (observed) against ref (expected) and returns every
// dimension whose fractions differ by more than tol (absolute).
func (e Envelope) Check(ref Envelope, tol float64) []Deviation {
	var out []Deviation
	add := func(dim string, obs, exp float64) {
		d := obs - exp
		if d < 0 {
			d = -d
		}
		if d > tol {
			out = append(out, Deviation{Dimension: dim, Observed: obs, Expected: exp})
		}
	}
	for _, k := range unionKeys(e.Mechanism, ref.Mechanism) {
		add("mechanism/"+string(k), e.Mechanism[k], ref.Mechanism[k])
	}
	for _, k := range unionKeys(e.Trigger, ref.Trigger) {
		add("trigger/"+string(k), e.Trigger[k], ref.Trigger[k])
	}
	add("keyworded", e.Keyworded, ref.Keyworded)
	for _, k := range unionKeys(e.Bugs, ref.Bugs) {
		name := string(k)
		if k == meta.None {
			name = "correct"
		}
		add("bug/"+name, e.Bugs[k], ref.Bugs[k])
	}
	add("flag/harness-retried", e.HarnessRetried, ref.HarnessRetried)
	add("flag/delay-unneeded", e.DelayUnneeded, ref.DelayUnneeded)
	add("flag/wraps-errors", e.WrapsErrors, ref.WrapsErrors)
	return out
}

func unionKeys[K ~string](a, b map[K]float64) []K {
	seen := make(map[K]bool)
	for k := range a {
		seen[k] = true
	}
	for k := range b {
		seen[k] = true
	}
	keys := make([]K, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// FormatDeviations renders an observed-vs-expected table for failing
// envelope checks.
func FormatDeviations(devs []Deviation) string {
	if len(devs) == 0 {
		return "envelope: all dimensions within tolerance\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %9s %9s %9s\n", "dimension", "observed", "expected", "delta")
	for _, d := range devs {
		fmt.Fprintf(&b, "%-28s %8.3f%% %8.3f%% %+8.3f%%\n",
			d.Dimension, d.Observed*100, d.Expected*100, (d.Observed-d.Expected)*100)
	}
	return b.String()
}
