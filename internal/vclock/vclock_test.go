package vclock

import (
	"context"
	"testing"
	"testing/quick"
	"time"

	"wasabi/internal/trace"
)

func runCtx() (context.Context, *trace.Run) {
	r := trace.NewRun("t")
	return trace.With(context.Background(), r), r
}

func TestSleepRecordsEventAndAdvances(t *testing.T) {
	ctx, r := runCtx()
	Sleep(ctx, 2*time.Second)
	if r.VNow() != 2*time.Second {
		t.Errorf("VNow = %v", r.VNow())
	}
	ev := r.Events()
	if len(ev) != 1 || ev[0].Kind != trace.KindSleep || ev[0].Duration != 2*time.Second {
		t.Errorf("events = %+v", ev)
	}
}

func TestSleepCapturesCallerStack(t *testing.T) {
	ctx, r := runCtx()
	sleepHelper(ctx)
	ev := r.Events()
	if len(ev) != 1 {
		t.Fatalf("events = %+v", ev)
	}
	if len(ev[0].Stack) == 0 || ev[0].Stack[0] != "vclock.sleepHelper" {
		t.Errorf("stack = %v", ev[0].Stack)
	}
}

func sleepHelper(ctx context.Context) { Sleep(ctx, time.Second) }

func TestSleepZeroAndNegativeIgnored(t *testing.T) {
	ctx, r := runCtx()
	Sleep(ctx, 0)
	Sleep(ctx, -time.Second)
	if r.Len() != 0 || r.VNow() != 0 {
		t.Error("non-positive sleeps must be ignored")
	}
}

func TestSleepWithoutRunIsNoop(t *testing.T) {
	Sleep(context.Background(), time.Hour) // must return immediately
}

func TestElapseAdvancesWithoutEvent(t *testing.T) {
	ctx, r := runCtx()
	Elapse(ctx, 30*time.Second)
	if r.VNow() != 30*time.Second {
		t.Errorf("VNow = %v", r.VNow())
	}
	if r.Len() != 0 {
		t.Error("Elapse must not record a sleep event")
	}
}

func TestNow(t *testing.T) {
	ctx, _ := runCtx()
	Elapse(ctx, time.Minute)
	if Now(ctx) != time.Minute {
		t.Errorf("Now = %v", Now(ctx))
	}
	if Now(context.Background()) != 0 {
		t.Error("Now without run should be 0")
	}
}

func TestBackoffDoubles(t *testing.T) {
	base := time.Second
	for i, want := range []time.Duration{time.Second, 2 * time.Second, 4 * time.Second, 8 * time.Second} {
		if got := Backoff(base, i, time.Hour); got != want {
			t.Errorf("Backoff(attempt=%d) = %v, want %v", i, got, want)
		}
	}
}

func TestBackoffCapped(t *testing.T) {
	if got := Backoff(time.Second, 20, 10*time.Second); got != 10*time.Second {
		t.Errorf("Backoff = %v, want cap", got)
	}
}

func TestBackoffHugeAttemptNoOverflow(t *testing.T) {
	if got := Backoff(time.Second, 200, time.Minute); got != time.Minute {
		t.Errorf("Backoff = %v", got)
	}
}

func TestBackoffNegativeAttempt(t *testing.T) {
	if got := Backoff(time.Second, -5, time.Minute); got != time.Second {
		t.Errorf("Backoff = %v, want base", got)
	}
}

func TestBackoffZeroBase(t *testing.T) {
	if got := Backoff(0, 3, time.Minute); got != 0 {
		t.Errorf("Backoff = %v, want 0", got)
	}
}

// Property: backoff is monotonically non-decreasing in attempt and never
// exceeds the cap.
func TestBackoffMonotoneProperty(t *testing.T) {
	f := func(a, b uint8) bool {
		lo, hi := int(a%40), int(b%40)
		if lo > hi {
			lo, hi = hi, lo
		}
		max := 5 * time.Minute
		x, y := Backoff(100*time.Millisecond, lo, max), Backoff(100*time.Millisecond, hi, max)
		return x <= y && y <= max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
