// Package vclock provides the virtual time facility used by the WASABI
// corpus applications and evaluation harness.
//
// The paper's missing-delay oracle works by intercepting standard sleep
// APIs (Thread.sleep, TimeUnit.sleep, ...) with AspectJ and logging each
// call with its stack (§3.1.3). In this reproduction, all corpus code
// sleeps through vclock.Sleep, which (a) records the sleep event with a
// normalized call stack in the run's trace and (b) advances *virtual* time
// instead of blocking, so that experiments with 100 injected faults and
// exponential backoff complete in milliseconds of wall time while the
// oracle still observes realistic delay/timeout behaviour.
//
// There is deliberately no package-level clock: virtual time lives on the
// per-run trace.Run reached through the context, so every test execution
// owns an independent clock instance. Concurrent runs (the parallel plan
// executor in internal/core) therefore never observe each other's time,
// and a run's timestamps are reproducible regardless of scheduling.
package vclock

import (
	"context"
	"math"
	"time"

	"wasabi/internal/trace"
)

// Sleep records a sleep of duration d on the run attached to ctx and
// advances that run's virtual clock. Without a run on ctx it is a no-op;
// corpus code therefore never blocks for real.
//
// This is the reproduction's stand-in for Thread.sleep and friends: the
// missing-delay oracle looks for these events between consecutive fault
// injections from the same retry location.
func Sleep(ctx context.Context, d time.Duration) {
	if d <= 0 {
		return
	}
	if r := trace.From(ctx); r != nil {
		r.AdvanceAndRecordSleep(d, trace.Callers(1, 8))
	}
}

// Now returns the virtual time of the run attached to ctx, or zero.
func Now(ctx context.Context) time.Duration {
	if r := trace.From(ctx); r != nil {
		return r.VNow()
	}
	return 0
}

// Elapse advances virtual time without recording a sleep event. Corpus code
// uses it to model work taking time (e.g. an RPC round trip), which must
// not be mistaken for a retry delay by the missing-delay oracle.
func Elapse(ctx context.Context, d time.Duration) {
	if d <= 0 {
		return
	}
	if r := trace.From(ctx); r != nil {
		r.Advance(d)
	}
}

// Backoff computes a capped exponential backoff: base * 2^attempt, never
// exceeding max. attempt counts from 0. It matches the fix pattern of
// HBASE-20492 ("1000 * Math.pow(2, attemptCount)").
func Backoff(base time.Duration, attempt int, max time.Duration) time.Duration {
	if base <= 0 {
		return 0
	}
	if attempt < 0 {
		attempt = 0
	}
	// Guard against overflow before shifting.
	if attempt > 62 || float64(base)*math.Pow(2, float64(attempt)) > float64(max) {
		return max
	}
	d := base << uint(attempt)
	if d > max || d <= 0 {
		return max
	}
	return d
}
