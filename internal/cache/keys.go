// keys.go derives the cache's content addresses. A key never encodes
// *when* something was analyzed, only *what*: the input bytes and the
// configuration that interprets them (§4.3's cost model makes the review
// tier the one worth addressing precisely). docs/SERVICE.md documents
// the derivations for API consumers.
package cache

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"wasabi/internal/sast"
	"wasabi/internal/source"
)

// AnalysisVersion identifies the static-analysis revision folded into
// analysis keys. Bump it when internal/sast's loop identification or
// throws resolution changes output for unchanged input.
const AnalysisVersion = "loops/v1"

// FileDigest is one source file's content address.
type FileDigest struct {
	// SHA256 is the lowercase hex SHA-256 of the file contents.
	SHA256 string
	// Size is the file length in bytes.
	Size int64
}

// DirManifest is the content address of one application directory: the
// per-file digests of every static-workflow source file (the
// sast.IsSourceFile set) plus a digest over the whole listing.
type DirManifest struct {
	// Dir is the directory the manifest describes.
	Dir string
	// Digest is the hex SHA-256 over the sorted (name, hash, size)
	// triples — it changes iff any source file is added, removed,
	// renamed or edited.
	Digest string
	// Files maps basenames to their digests.
	Files map[string]FileDigest
	// TotalBytes sums the source file sizes (the analysis-entry cost
	// estimate).
	TotalBytes int64
}

// manifestFile is one (name, digest) input of buildManifest.
type manifestFile struct {
	name string
	fd   FileDigest
}

// buildManifest assembles a DirManifest from per-file digests. files must
// already be in sorted name order — both producers (HashDir's sorted
// walk, a snapshot's sorted file list) guarantee it, which is what keeps
// the two derivations byte-identical.
func buildManifest(dir string, files []manifestFile) *DirManifest {
	m := &DirManifest{Dir: dir, Files: make(map[string]FileDigest, len(files))}
	h := sha256.New()
	for _, f := range files {
		m.Files[f.name] = f.fd
		m.TotalBytes += f.fd.Size
		fmt.Fprintf(h, "%s\x00%s\x00%d\x00", f.name, f.fd.SHA256, f.fd.Size)
	}
	m.Digest = hex.EncodeToString(h.Sum(nil))
	return m
}

// HashDir builds the manifest of an application directory by reading it.
// It covers the same file set the static workflows analyze, so a
// manifest digest addresses exactly the inputs of both the static
// analysis and the per-file LLM reviews. Pipeline runs derive the same
// manifest from an already-loaded snapshot via FromSnapshot instead of
// re-reading the tree.
func HashDir(dir string) (*DirManifest, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("cache: hash %s: %w", dir, err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() || !sast.IsSourceFile(e.Name()) {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	files := make([]manifestFile, 0, len(names))
	for _, name := range names {
		src, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("cache: hash %s: %w", dir, err)
		}
		sum := sha256.Sum256(src)
		files = append(files, manifestFile{name: name, fd: FileDigest{
			SHA256: hex.EncodeToString(sum[:]), Size: int64(len(src)),
		}})
	}
	return buildManifest(dir, files), nil
}

// FromSnapshot derives the directory manifest from an already-loaded
// snapshot: the store hashed every file at load time, so no bytes are
// re-read and nothing is re-hashed. The digest is byte-identical to
// HashDir over the same directory state.
func FromSnapshot(snap *source.Snapshot) *DirManifest {
	files := make([]manifestFile, 0, len(snap.Files))
	for _, f := range snap.Files {
		files = append(files, manifestFile{name: f.Name, fd: FileDigest{SHA256: f.SHA256, Size: f.Size}})
	}
	return buildManifest(snap.Dir, files)
}

// ReviewKey addresses one file's LLM review: the client configuration
// fingerprint (llm.Config.Fingerprint — prompt version, seed,
// thresholds, failure-mode rates), the file's path (the simulated
// model's stochastic-looking decisions are seeded by it, just as a real
// prompt embeds the file name) and the content hash.
func ReviewKey(cfgFingerprint, path, contentSHA256 string) string {
	return keyOf("review", cfgFingerprint, path, contentSHA256)
}

// AnalysisKey addresses one directory's static analysis: the analyzer
// version and the directory manifest digest. The directory path is
// folded in because reported positions derive from it.
func AnalysisKey(dir, manifestDigest string) string {
	return keyOf("sast", AnalysisVersion, dir, manifestDigest)
}

// FactsKey addresses one file's retry-facts entry: the facts format
// version and the content hash — nothing else, because extraction is a
// pure function of the bytes (facts are shared across paths and
// configurations). Bumping sast.FactsSchema changes every key, so
// stale-format entries become unreferenced files rather than decode
// errors.
func FactsKey(contentSHA256 string) string {
	return keyOf("facts", sast.FactsSchema, contentSHA256)
}

// keyOf hashes the NUL-joined parts into a hex key. Keys are plain hex
// strings so the disk tier can use them directly as file names.
func keyOf(parts ...string) string {
	h := sha256.New()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil))
}
