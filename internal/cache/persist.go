// persist.go is the cache's optional disk tier: review entries written
// through as JSON envelope files named by their key, read through on
// memory misses. It is what makes warm re-analysis survive a process
// restart (the serving shape §4.3's per-run cost argues for) without any
// external storage dependency.
//
// Persistence is strictly best-effort: a failed write or an unreadable,
// truncated or key-mismatched file degrades to a cache miss (counted in
// cache_persist_errors_total / cache_decode_errors_total), never to an
// analysis error. Eviction from the memory tier leaves disk files in
// place; the directory is the durable tier and is pruned only by the
// operator.
package cache

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"wasabi/internal/llm"
)

// envelopeSchema identifies the on-disk entry format.
const envelopeSchema = "wasabi-review-cache/v1"

// envelope is the persisted form of one review entry. The key is stored
// redundantly so a file renamed or copied to the wrong address fails
// closed.
type envelope struct {
	Schema string         `json:"schema"`
	Key    string         `json:"key"`
	Review llm.FileReview `json:"review"`
}

// encodeReview renders the envelope bytes stored in both tiers.
func encodeReview(key string, rev llm.FileReview) ([]byte, error) {
	return json.Marshal(envelope{Schema: envelopeSchema, Key: key, Review: rev})
}

// decodeReview parses envelope bytes, verifying schema and key.
func decodeReview(data []byte, key string) (llm.FileReview, error) {
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return llm.FileReview{}, fmt.Errorf("cache: decode entry: %w", err)
	}
	if env.Schema != envelopeSchema || env.Key != key {
		return llm.FileReview{}, fmt.Errorf("cache: entry schema/key mismatch (schema %q)", env.Schema)
	}
	return env.Review, nil
}

// initDir creates the persistence directory when one is configured.
func (c *Cache) initDir() error {
	if c.dir == "" {
		return nil
	}
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return fmt.Errorf("cache: init dir: %w", err)
	}
	return nil
}

// entryPath is the disk address of a key.
func (c *Cache) entryPath(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// loadDisk reads the persisted bytes for key, if the disk tier is
// enabled and has them.
func (c *Cache) loadDisk(key string) ([]byte, bool) {
	if c.dir == "" {
		return nil, false
	}
	data, err := os.ReadFile(c.entryPath(key))
	if err != nil {
		return nil, false
	}
	return data, true
}

// storeDisk persists entry bytes via write-to-temp + rename, so readers
// never observe a torn file. Failures count, and are otherwise ignored.
func (c *Cache) storeDisk(key string, data []byte) {
	if c.dir == "" {
		return
	}
	tmp, err := os.CreateTemp(c.dir, "tmp-*")
	if err == nil {
		_, err = tmp.Write(data)
		if cerr := tmp.Close(); err == nil {
			err = cerr
		}
		if err == nil {
			err = os.Rename(tmp.Name(), c.entryPath(key))
		}
		if err != nil {
			os.Remove(tmp.Name())
		}
	}
	if err != nil {
		c.mu.Lock()
		c.persistErrors++
		c.mu.Unlock()
		c.reg.Counter("cache_persist_errors_total").Inc()
	}
}
