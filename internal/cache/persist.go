// persist.go is the cache's optional disk tier: review and retry-facts
// entries written through as JSON files named by their key, read
// through on memory misses. It is what makes warm re-analysis survive a
// process restart (the serving shape §4.3's per-run cost argues for)
// without any external storage dependency — both the expensive LLM tier
// and the cheap-but-restart-hot static extraction tier replay from
// disk.
//
// Persistence is strictly best-effort: a failed write degrades to a
// recomputation (counted in cache_persist_errors_total), and an
// unreadable, truncated, version-mismatched or key-mismatched file is a
// miss — counted in cache_decode_errors_total and deleted, so one
// corrupt file can never poison the tier or fail twice. The directory
// is the durable tier; its entry count and byte total are observable as
// cache_disk_entries / cache_disk_bytes, seeded by a scan at
// construction and maintained across stores and deletions.
package cache

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"wasabi/internal/llm"
)

// envelopeSchema identifies the on-disk review-entry format.
const envelopeSchema = "wasabi-review-cache/v1"

// entrySuffix names disk-tier entry files: <key>.json.
const entrySuffix = ".json"

// envelope is the persisted form of one review entry. The key is stored
// redundantly so a file renamed or copied to the wrong address fails
// closed. (Facts entries carry their own schema and content hash —
// sast.EncodeFacts — and need no extra wrapping.)
type envelope struct {
	Schema string         `json:"schema"`
	Key    string         `json:"key"`
	Review llm.FileReview `json:"review"`
}

// encodeReview renders the envelope bytes stored in both tiers.
func encodeReview(key string, rev llm.FileReview) ([]byte, error) {
	return json.Marshal(envelope{Schema: envelopeSchema, Key: key, Review: rev})
}

// decodeReview parses envelope bytes, verifying schema and key.
func decodeReview(data []byte, key string) (llm.FileReview, error) {
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return llm.FileReview{}, fmt.Errorf("cache: decode entry: %w", err)
	}
	if env.Schema != envelopeSchema || env.Key != key {
		return llm.FileReview{}, fmt.Errorf("cache: entry schema/key mismatch (schema %q)", env.Schema)
	}
	return env.Review, nil
}

// initDir creates the persistence directory when one is configured and
// seeds the disk-tier stats from its current contents, so a restarted
// process reports the tier it inherited.
func (c *Cache) initDir() error {
	if c.dir == "" {
		return nil
	}
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return fmt.Errorf("cache: init dir: %w", err)
	}
	entries, err := os.ReadDir(c.dir)
	if err != nil {
		return fmt.Errorf("cache: scan dir: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), entrySuffix) {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		c.diskEntries++
		c.diskBytes += info.Size()
	}
	c.setDiskGauges()
	return nil
}

// entryPath is the disk address of a key.
func (c *Cache) entryPath(key string) string {
	return filepath.Join(c.dir, key+entrySuffix)
}

// loadDisk reads the persisted bytes for key, if the disk tier is
// enabled and has them. Whatever comes back is untrusted: callers must
// decode fail-closed and dropDisk entries that do not verify.
func (c *Cache) loadDisk(key string) ([]byte, bool) {
	if c.dir == "" {
		return nil, false
	}
	data, err := os.ReadFile(c.entryPath(key))
	if err != nil {
		return nil, false
	}
	return data, true
}

// storeDisk persists entry bytes via write-to-temp + rename, so readers
// never observe a torn file. Failures count, and are otherwise ignored.
func (c *Cache) storeDisk(key string, data []byte) {
	if c.dir == "" {
		return
	}
	var oldSize, replaced int64
	if info, serr := os.Stat(c.entryPath(key)); serr == nil {
		oldSize, replaced = info.Size(), 1
	}
	tmp, err := os.CreateTemp(c.dir, "tmp-*")
	if err == nil {
		_, err = tmp.Write(data)
		if cerr := tmp.Close(); err == nil {
			err = cerr
		}
		if err == nil {
			err = os.Rename(tmp.Name(), c.entryPath(key))
		}
		if err != nil {
			os.Remove(tmp.Name())
		}
	}
	if err != nil {
		c.mu.Lock()
		c.persistErrors++
		c.mu.Unlock()
		c.reg.Counter("cache_persist_errors_total").Inc()
		return
	}
	c.mu.Lock()
	c.diskEntries += 1 - replaced
	c.diskBytes += int64(len(data)) - oldSize
	c.setDiskGauges()
	c.mu.Unlock()
}

// dropDisk deletes a disk entry that failed verification, keeping the
// tier stats exact. Dropping is what turns a corrupt file into a
// one-time miss instead of a permanent decode error.
func (c *Cache) dropDisk(key string) {
	if c.dir == "" {
		return
	}
	path := c.entryPath(key)
	info, err := os.Stat(path)
	if err != nil {
		return
	}
	if err := os.Remove(path); err != nil {
		return
	}
	c.mu.Lock()
	c.diskEntries--
	c.diskBytes -= info.Size()
	c.setDiskGauges()
	c.mu.Unlock()
	c.reg.Counter("cache_disk_drops_total").Inc()
}

// setDiskGauges publishes the disk-tier stats. Callers hold c.mu or are
// single-threaded construction.
func (c *Cache) setDiskGauges() {
	c.reg.Gauge("cache_disk_entries").Set(float64(c.diskEntries))
	c.reg.Gauge("cache_disk_bytes").Set(float64(c.diskBytes))
}
