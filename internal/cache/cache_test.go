package cache

import (
	"os"
	"path/filepath"
	"testing"

	"wasabi/internal/llm"
	"wasabi/internal/obs"
	"wasabi/internal/sast"
)

// review builds a distinguishable FileReview fixture.
func review(file string, tokens int64) llm.FileReview {
	return llm.FileReview{
		File:          file,
		Size:          int(tokens),
		PerformsRetry: true,
		Findings: []llm.Finding{{
			Coordinator: "pkg.Type." + file,
			File:        file,
			Mechanism:   "loop",
			HasCap:      true,
		}},
		Spent: llm.Usage{Calls: 3, TokensIn: tokens, CostUSD: float64(tokens) / 1000},
	}
}

func TestReviewRoundTrip(t *testing.T) {
	c, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	key := ReviewKey("cfg", "/a/b.go", "abc123")

	if _, ok := c.GetReview(key); ok {
		t.Fatal("hit on empty cache")
	}
	want := review("b.go", 1234)
	c.PutReview(key, want)
	got, ok := c.GetReview(key)
	if !ok {
		t.Fatal("miss after put")
	}
	if got.File != want.File || got.Spent != want.Spent || len(got.Findings) != 1 {
		t.Fatalf("round-trip mismatch: %+v", got)
	}
	// Every hit decodes a fresh value: mutating one caller's copy must
	// not leak into the next.
	got.Findings[0].Coordinator = "mutated"
	again, _ := c.GetReview(key)
	if again.Findings[0].Coordinator != "pkg.Type.b.go" {
		t.Fatalf("hits alias a shared value: %q", again.Findings[0].Coordinator)
	}

	st := c.Stats()
	if st.Hits[StageReview] != 2 || st.Misses[StageReview] != 1 {
		t.Fatalf("hits/misses = %d/%d, want 2/1", st.Hits[StageReview], st.Misses[StageReview])
	}
	if st.Entries != 1 || st.Bytes <= 0 {
		t.Fatalf("entries/bytes = %d/%d", st.Entries, st.Bytes)
	}
}

// TestEvictionAtTinyBudget forces LRU eviction with a budget that holds
// roughly one encoded review, and checks the LRU order: the least
// recently used entry goes first.
func TestEvictionAtTinyBudget(t *testing.T) {
	reg := obs.NewRegistry()
	ka, kb := ReviewKey("cfg", "a.go", "1"), ReviewKey("cfg", "b.go", "2")
	one, err := encodeReview(ka, review("a.go", 1))
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(Options{MaxBytes: int64(len(one)) + 16, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	c.PutReview(ka, review("a.go", 1))
	c.PutReview(kb, review("b.go", 2)) // budget exceeded → a.go evicted
	if _, ok := c.GetReview(ka); ok {
		t.Fatal("LRU entry survived past the byte budget")
	}
	if _, ok := c.GetReview(kb); !ok {
		t.Fatal("MRU entry evicted")
	}

	st := c.Stats()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	if st.Entries != 1 {
		t.Fatalf("entries = %d, want 1", st.Entries)
	}
	if st.Bytes > st.MaxBytes {
		t.Fatalf("bytes %d exceed budget %d", st.Bytes, st.MaxBytes)
	}
	if got := reg.Snapshot().Counter("cache_evictions_total"); got != 1 {
		t.Fatalf("cache_evictions_total = %d, want 1", got)
	}
}

// TestPersistenceRoundTrip stores through a disk tier, then reads the
// entry back through a fresh cache instance — the process-restart path.
func TestPersistenceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	key := ReviewKey("cfg", "/a/p.go", "deadbeef")

	c1, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	c1.PutReview(key, review("p.go", 777))

	c2, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := c2.GetReview(key)
	if !ok {
		t.Fatal("disk read-through missed")
	}
	if got.Spent.TokensIn != 777 {
		t.Fatalf("review corrupted across restart: %+v", got)
	}
	st := c2.Stats()
	if st.DiskLoads != 1 || st.Hits[StageReview] != 1 {
		t.Fatalf("disk_loads/hits = %d/%d, want 1/1", st.DiskLoads, st.Hits[StageReview])
	}
	// Loaded entries populate the memory tier: a second get must not
	// touch disk again.
	if _, ok := c2.GetReview(key); !ok {
		t.Fatal("memory tier not populated after disk load")
	}
	if st := c2.Stats(); st.DiskLoads != 1 {
		t.Fatalf("disk_loads = %d after memory hit, want 1", st.DiskLoads)
	}

	// A corrupt disk entry is a miss, not an error.
	path := filepath.Join(dir, key+".json")
	if err := os.WriteFile(path, []byte("{garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	c3, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c3.GetReview(key); ok {
		t.Fatal("corrupt disk entry served as a hit")
	}
}

func TestAnalysisSharedByPointer(t *testing.T) {
	c, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	a := &sast.Analysis{}
	key := AnalysisKey("/some/dir", "digest")
	if _, ok := c.GetAnalysis(key); ok {
		t.Fatal("hit on empty cache")
	}
	c.PutAnalysis(key, a, 100)
	got, ok := c.GetAnalysis(key)
	if !ok || got != a {
		t.Fatalf("analysis pointer not shared: %p vs %p", got, a)
	}
	st := c.Stats()
	if st.Hits[StageAnalysis] != 1 || st.Misses[StageAnalysis] != 1 {
		t.Fatalf("analysis hits/misses = %d/%d, want 1/1", st.Hits[StageAnalysis], st.Misses[StageAnalysis])
	}
}

func TestNilCacheIsInert(t *testing.T) {
	var c *Cache
	if _, ok := c.GetReview("k"); ok {
		t.Fatal("nil cache hit")
	}
	c.PutReview("k", review("x.go", 1))
	if _, ok := c.GetAnalysis("k"); ok {
		t.Fatal("nil cache hit")
	}
	c.PutAnalysis("k", &sast.Analysis{}, 1)
	st := c.Stats()
	if st.Entries != 0 || st.Hits == nil || st.Misses == nil {
		t.Fatalf("nil stats = %+v", st)
	}
}

// TestHashDirManifest checks the manifest covers exactly the static
// source set and that its digest moves iff content does.
func TestHashDirManifest(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("a.go", "package p\n")
	write("b.go", "package p\nfunc B() {}\n")
	write("b_test.go", "package p\n") // excluded: test file
	write("notes.txt", "hello")       // excluded: not Go

	m1, err := HashDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(m1.Files) != 2 {
		t.Fatalf("manifest files = %v, want exactly a.go and b.go", m1.Files)
	}
	if m1.TotalBytes != m1.Files["a.go"].Size+m1.Files["b.go"].Size {
		t.Fatalf("total bytes = %d", m1.TotalBytes)
	}

	m2, err := HashDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if m1.Digest != m2.Digest {
		t.Fatal("digest not deterministic")
	}

	// Editing an excluded file must not move the digest; editing a
	// source file must.
	write("b_test.go", "package p\n// changed\n")
	m3, _ := HashDir(dir)
	if m3.Digest != m1.Digest {
		t.Fatal("digest moved on a non-source edit")
	}
	write("b.go", "package p\nfunc B() { _ = 1 }\n")
	m4, _ := HashDir(dir)
	if m4.Digest == m1.Digest {
		t.Fatal("digest did not move on a source edit")
	}
	if m4.Files["b.go"].SHA256 == m1.Files["b.go"].SHA256 {
		t.Fatal("file digest did not move on a source edit")
	}
}

// TestKeySeparation pins that each key ingredient matters.
func TestKeySeparation(t *testing.T) {
	base := ReviewKey("cfg", "/p/f.go", "h1")
	for name, other := range map[string]string{
		"config":  ReviewKey("cfg2", "/p/f.go", "h1"),
		"path":    ReviewKey("cfg", "/q/f.go", "h1"),
		"content": ReviewKey("cfg", "/p/f.go", "h2"),
	} {
		if other == base {
			t.Fatalf("review key ignores %s", name)
		}
	}
	if AnalysisKey("/p", "d1") == AnalysisKey("/p", "d2") {
		t.Fatal("analysis key ignores digest")
	}
	if AnalysisKey("/p", "d1") == AnalysisKey("/q", "d1") {
		t.Fatal("analysis key ignores dir")
	}
}

func TestFactsRoundTrip(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	c1, err := New(Options{Dir: dir, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	hash := "feedface"
	if _, ok := c1.GetFacts(hash); ok {
		t.Fatal("hit on empty cache")
	}
	want := &sast.FileFacts{
		Schema: sast.FactsSchema, Hash: hash, Pkg: "demo",
		Funcs: []sast.FuncFacts{{
			Key: "T.m", Throws: []string{"IOException"}, HasHook: true,
			Calls: []string{"send"},
			Loops: []sast.LoopFacts{{Line: 7, Keyworded: true, Calls: []string{"send"}}},
		}},
	}
	c1.PutFacts(hash, want)
	got, ok := c1.GetFacts(hash)
	if !ok {
		t.Fatal("miss after put")
	}
	if got.Pkg != "demo" || len(got.Funcs) != 1 || got.Funcs[0].Loops[0].Line != 7 {
		t.Fatalf("round-trip mismatch: %+v", got)
	}
	// Every hit decodes a fresh value — mutations must not leak.
	got.Funcs[0].Key = "mutated"
	if again, _ := c1.GetFacts(hash); again.Funcs[0].Key != "T.m" {
		t.Fatal("facts hits alias a shared value")
	}

	// The disk tier makes facts survive a restart: a fresh cache over
	// the same directory hydrates without any Put.
	c2, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	reborn, ok := c2.GetFacts(hash)
	if !ok {
		t.Fatal("facts did not survive restart")
	}
	if reborn.Funcs[0].Throws[0] != "IOException" {
		t.Fatalf("facts corrupted across restart: %+v", reborn)
	}
	st := c2.Stats()
	if st.DiskLoads != 1 || st.Hits[StageFacts] != 1 {
		t.Fatalf("disk_loads/facts hits = %d/%d, want 1/1", st.DiskLoads, st.Hits[StageFacts])
	}
}

// TestDiskCorruptionIsMissAndDrop injects every corruption class the
// disk tier must absorb — truncation, garbage, a facts schema bump and
// a review-envelope key mismatch — and checks each reads as a miss,
// deletes the bad file, and is counted.
func TestDiskCorruptionIsMissAndDrop(t *testing.T) {
	dir := t.TempDir()
	seed, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	rkey := ReviewKey("cfg", "/a/r.go", "aaa")
	seed.PutReview(rkey, review("r.go", 42))
	seed.PutFacts("bbb", &sast.FileFacts{Schema: sast.FactsSchema, Hash: "bbb", Pkg: "demo"})

	// Corrupt both entries and add a stale-schema facts file.
	rpath := filepath.Join(dir, rkey+entrySuffix)
	data, err := os.ReadFile(rpath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(rpath, data[:len(data)/2], 0o644); err != nil { // truncated
		t.Fatal(err)
	}
	fpath := filepath.Join(dir, FactsKey("bbb")+entrySuffix)
	if err := os.WriteFile(fpath, []byte("{garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	spath := filepath.Join(dir, FactsKey("ccc")+entrySuffix)
	stale := []byte(`{"schema":"wasabi-facts/v0","hash":"ccc","pkg":"demo"}`)
	if err := os.WriteFile(spath, stale, 0o644); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	c, err := New(Options{Dir: dir, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.DiskEntries != 3 {
		t.Fatalf("init scan found %d entries, want 3", st.DiskEntries)
	}
	if _, ok := c.GetReview(rkey); ok {
		t.Fatal("truncated review served as a hit")
	}
	if _, ok := c.GetFacts("bbb"); ok {
		t.Fatal("garbage facts served as a hit")
	}
	if _, ok := c.GetFacts("ccc"); ok {
		t.Fatal("stale-schema facts served as a hit")
	}
	for _, p := range []string{rpath, fpath, spath} {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Fatalf("corrupt entry %s not deleted (err=%v)", filepath.Base(p), err)
		}
	}
	s := reg.Snapshot()
	if n := s.Counter("cache_disk_drops_total"); n != 3 {
		t.Fatalf("cache_disk_drops_total = %v, want 3", n)
	}
	if n := s.Counter("cache_decode_errors_total"); n != 3 {
		t.Fatalf("cache_decode_errors_total = %v, want 3", n)
	}
	st := c.Stats()
	if st.DiskEntries != 0 || st.DiskBytes != 0 {
		t.Fatalf("disk accounting after drops = %d entries / %d bytes, want 0/0",
			st.DiskEntries, st.DiskBytes)
	}
}

// TestDiskStatsAccounting tracks the entry/byte bookkeeping through the
// full lifecycle: init scan, store, same-key replace, and drop.
func TestDiskStatsAccounting(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	c, err := New(Options{Dir: dir, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.DiskEntries != 0 || st.DiskBytes != 0 {
		t.Fatalf("fresh dir accounting = %d/%d", st.DiskEntries, st.DiskBytes)
	}

	small := &sast.FileFacts{Schema: sast.FactsSchema, Hash: "h1", Pkg: "p"}
	c.PutFacts("h1", small)
	st := c.Stats()
	if st.DiskEntries != 1 || st.DiskBytes <= 0 {
		t.Fatalf("after store: %d entries / %d bytes", st.DiskEntries, st.DiskBytes)
	}
	firstBytes := st.DiskBytes

	// Replacing the same key keeps the entry count and adjusts bytes to
	// the new encoding's size.
	big := &sast.FileFacts{
		Schema: sast.FactsSchema, Hash: "h1", Pkg: "p",
		Funcs: []sast.FuncFacts{{Key: "F", Calls: []string{"a", "b", "c"}}},
	}
	c.PutFacts("h1", big)
	st = c.Stats()
	if st.DiskEntries != 1 || st.DiskBytes <= firstBytes {
		t.Fatalf("after replace: %d entries / %d bytes (was %d)",
			st.DiskEntries, st.DiskBytes, firstBytes)
	}

	// The gauges mirror the stats.
	s := reg.Snapshot()
	if g := s.Gauge("cache_disk_entries"); int64(g) != st.DiskEntries {
		t.Fatalf("cache_disk_entries gauge = %v, stats say %d", g, st.DiskEntries)
	}
	if g := s.Gauge("cache_disk_bytes"); int64(g) != st.DiskBytes {
		t.Fatalf("cache_disk_bytes gauge = %v, stats say %d", g, st.DiskBytes)
	}

	// A restart's init scan re-derives the same numbers from the files.
	c2, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if st2 := c2.Stats(); st2.DiskEntries != st.DiskEntries || st2.DiskBytes != st.DiskBytes {
		t.Fatalf("init scan = %d/%d, live accounting said %d/%d",
			st2.DiskEntries, st2.DiskBytes, st.DiskEntries, st.DiskBytes)
	}
}
