// Package cache is the content-addressed analysis cache behind
// WASABI-as-a-service: it memoizes the expensive per-file LLM reviews
// (§3.1.1 technique 2, §3.2.1 — the paper's ~2,600 GPT-4 calls and ~$8
// per app per run, §4.3) and the per-app static analyses (§3.1.1
// technique 1) across pipeline runs, so re-analyzing a corpus whose
// files have not changed spends zero LLM tokens and re-analyzing after
// touching one file re-reviews only that file.
//
// Entries are addressed by content, not by time: a review key is derived
// from the file's path, its content hash and the client's prompt/config
// fingerprint (llm.Config.Fingerprint), an analysis key from the
// directory's manifest digest (HashDir) — see keys.go and
// docs/SERVICE.md for the exact derivations. There is no TTL and no
// explicit invalidation API; changing an input changes its key, and the
// stale entry simply ages out of the LRU.
//
// The in-memory tier holds encoded entries under a byte budget with LRU
// eviction. An optional disk tier (Options.Dir) persists review and
// retry-facts entries as JSON files, read through on memory misses and
// written through on stores — a restarted daemon replays both the
// expensive LLM tier and the static extraction tier from disk at zero
// parses. Whole-app analyses are a cheap in-memory merge of facts and
// stay memory-only. All operations are goroutine-safe; hit/miss counts
// are deterministic functions of the logical access sequence, so
// pipeline tests can assert them exactly.
package cache

import (
	"container/list"
	"sync"

	"wasabi/internal/llm"
	"wasabi/internal/obs"
	"wasabi/internal/sast"
)

// Stage names used in metrics labels and Stats maps: one per cached
// artifact kind.
const (
	// StageReview marks per-file LLM review entries.
	StageReview = "review"
	// StageAnalysis marks per-app static analysis entries.
	StageAnalysis = "analysis"
	// StageFacts marks per-file retry-facts entries (sast.FileFacts, the
	// portable static-extraction artifacts).
	StageFacts = "facts"
)

// DefaultMaxBytes is the in-memory byte budget when Options.MaxBytes is
// unset: comfortably above one full-corpus run (~1 MB of encoded
// reviews) while bounding a long-lived daemon.
const DefaultMaxBytes = 64 << 20

// Options configures a cache.
type Options struct {
	// MaxBytes is the in-memory byte budget; entries are evicted in LRU
	// order once the total estimated cost exceeds it. Zero or negative
	// means DefaultMaxBytes.
	MaxBytes int64
	// Dir, when non-empty, enables the disk tier: review entries are
	// persisted as JSON files in this directory and survive process
	// restarts. The directory is created if missing.
	Dir string
	// Metrics, when non-nil, receives the cache_* counters and gauges
	// (docs/OBSERVABILITY.md).
	Metrics *obs.Registry
}

// Cache is a content-addressed, byte-budgeted memoization store. The
// zero value is not usable; call New. A nil *Cache is valid everywhere
// in internal/core and disables memoization.
type Cache struct {
	maxBytes int64
	dir      string
	reg      *obs.Registry

	mu      sync.Mutex
	bytes   int64
	ll      *list.List // front = most recently used
	entries map[string]*list.Element

	hits, misses  map[string]int64 // by stage
	evictions     int64
	diskLoads     int64
	persistErrors int64
	diskEntries   int64 // disk-tier entry files
	diskBytes     int64 // disk-tier byte total
}

// entry is one cached artifact. Exactly one of data / analysis is set,
// per stage.
type entry struct {
	key      string
	stage    string
	data     []byte // StageReview: encoded envelope
	analysis *sast.Analysis
	cost     int64
}

// New returns a cache with the given options. With Options.Dir set, the
// directory is created eagerly so persistence failures surface at
// construction rather than mid-run.
func New(opts Options) (*Cache, error) {
	if opts.MaxBytes <= 0 {
		opts.MaxBytes = DefaultMaxBytes
	}
	c := &Cache{
		maxBytes: opts.MaxBytes,
		dir:      opts.Dir,
		reg:      opts.Metrics,
		ll:       list.New(),
		entries:  make(map[string]*list.Element),
		hits:     make(map[string]int64),
		misses:   make(map[string]int64),
	}
	if err := c.initDir(); err != nil {
		return nil, err
	}
	c.reg.Gauge("cache_max_bytes").Set(float64(c.maxBytes))
	return c, nil
}

// GetReview returns the memoized review under key. The stored envelope
// is decoded on every hit, so callers own the returned value outright
// and can never alias another caller's slices. Misses fall through to
// the disk tier when one is configured.
func (c *Cache) GetReview(key string) (llm.FileReview, bool) {
	if c == nil {
		return llm.FileReview{}, false
	}
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		data := el.Value.(*entry).data
		c.hits[StageReview]++
		c.mu.Unlock()
		c.reg.Counter("cache_hits_total", "stage", StageReview).Inc()
		rev, err := decodeReview(data, key)
		if err == nil {
			return rev, true
		}
		// An undecodable in-memory entry can only mean corruption;
		// drop it and report a miss.
		c.remove(key)
		c.reg.Counter("cache_decode_errors_total").Inc()
		return llm.FileReview{}, false
	}
	c.mu.Unlock()
	if data, ok := c.loadDisk(key); ok {
		rev, err := decodeReview(data, key)
		if err == nil {
			c.mu.Lock()
			c.diskLoads++
			c.hits[StageReview]++
			c.install(&entry{key: key, stage: StageReview, data: data, cost: int64(len(data))})
			c.mu.Unlock()
			c.reg.Counter("cache_hits_total", "stage", StageReview).Inc()
			c.reg.Counter("cache_disk_loads_total").Inc()
			return rev, true
		}
		// A truncated, corrupt or version-mismatched disk entry is a
		// miss, and the poisoned file is dropped so it cannot fail again.
		c.reg.Counter("cache_decode_errors_total").Inc()
		c.dropDisk(key)
	}
	c.miss(StageReview)
	return llm.FileReview{}, false
}

// PutReview memoizes a review under key, writing through to the disk
// tier when one is configured. Degraded reviews must not be stored (they
// record a backend failure, not an answer); callers enforce that.
func (c *Cache) PutReview(key string, rev llm.FileReview) {
	if c == nil {
		return
	}
	data, err := encodeReview(key, rev)
	if err != nil {
		c.reg.Counter("cache_decode_errors_total").Inc()
		return
	}
	c.storeDisk(key, data)
	c.mu.Lock()
	c.install(&entry{key: key, stage: StageReview, data: data, cost: int64(len(data))})
	c.mu.Unlock()
}

// GetFacts returns the decoded retry-facts entry for a content hash —
// the sast.FactsStore read side. Decoding re-validates the format
// version and content hash on every hit, so callers own a verified
// value; misses fall through to the disk tier, which is what makes the
// static extraction tier survive a process restart. A corrupt entry is
// a miss: dropped from memory, deleted from disk, never an error.
func (c *Cache) GetFacts(contentSHA256 string) (*sast.FileFacts, bool) {
	if c == nil {
		return nil, false
	}
	key := FactsKey(contentSHA256)
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		data := el.Value.(*entry).data
		c.hits[StageFacts]++
		c.mu.Unlock()
		c.reg.Counter("cache_hits_total", "stage", StageFacts).Inc()
		ff, err := sast.DecodeFacts(data, contentSHA256)
		if err == nil {
			return ff, true
		}
		c.remove(key)
		c.reg.Counter("cache_decode_errors_total").Inc()
		return nil, false
	}
	c.mu.Unlock()
	if data, ok := c.loadDisk(key); ok {
		ff, err := sast.DecodeFacts(data, contentSHA256)
		if err == nil {
			c.mu.Lock()
			c.diskLoads++
			c.hits[StageFacts]++
			c.install(&entry{key: key, stage: StageFacts, data: data, cost: int64(len(data))})
			c.mu.Unlock()
			c.reg.Counter("cache_hits_total", "stage", StageFacts).Inc()
			c.reg.Counter("cache_disk_loads_total").Inc()
			return ff, true
		}
		c.reg.Counter("cache_decode_errors_total").Inc()
		c.dropDisk(key)
	}
	c.miss(StageFacts)
	return nil, false
}

// PutFacts memoizes a retry-facts entry, writing through to the disk
// tier — the sast.FactsStore write side. Best-effort like every store:
// an encode or persist failure degrades to recomputation, never to an
// analysis error.
func (c *Cache) PutFacts(contentSHA256 string, ff *sast.FileFacts) {
	if c == nil || ff == nil {
		return
	}
	data, err := sast.EncodeFacts(ff)
	if err != nil {
		c.reg.Counter("cache_decode_errors_total").Inc()
		return
	}
	key := FactsKey(contentSHA256)
	c.storeDisk(key, data)
	c.mu.Lock()
	c.install(&entry{key: key, stage: StageFacts, data: data, cost: int64(len(data))})
	c.mu.Unlock()
}

// GetAnalysis returns the memoized static analysis under key. Analyses
// are shared by pointer and must be treated as immutable by every
// consumer (they are: internal/core and internal/sast only ever read a
// finished Analysis).
func (c *Cache) GetAnalysis(key string) (*sast.Analysis, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		a := el.Value.(*entry).analysis
		c.hits[StageAnalysis]++
		c.mu.Unlock()
		c.reg.Counter("cache_hits_total", "stage", StageAnalysis).Inc()
		return a, true
	}
	c.mu.Unlock()
	c.miss(StageAnalysis)
	return nil, false
}

// PutAnalysis memoizes a static analysis under key. cost estimates the
// entry's memory footprint (callers pass the analyzed directory's source
// byte total). Analyses stay memory-only: they are a cheap cross-file
// merge whose per-file inputs already persist as facts entries, so a
// restarted process rebuilds them from disk without parsing.
func (c *Cache) PutAnalysis(key string, a *sast.Analysis, cost int64) {
	if c == nil || a == nil {
		return
	}
	if cost <= 0 {
		cost = 1
	}
	c.mu.Lock()
	c.install(&entry{key: key, stage: StageAnalysis, analysis: a, cost: cost})
	c.mu.Unlock()
}

// miss records a miss for stage.
func (c *Cache) miss(stage string) {
	c.mu.Lock()
	c.misses[stage]++
	c.mu.Unlock()
	c.reg.Counter("cache_misses_total", "stage", stage).Inc()
}

// install inserts or replaces the entry and evicts LRU entries until the
// byte budget holds again. Called with c.mu held. An entry larger than
// the whole budget is evicted immediately after insertion — effectively
// never cached, but accounted honestly.
func (c *Cache) install(e *entry) {
	if el, ok := c.entries[e.key]; ok {
		old := el.Value.(*entry)
		c.bytes += e.cost - old.cost
		el.Value = e
		c.ll.MoveToFront(el)
	} else {
		c.entries[e.key] = c.ll.PushFront(e)
		c.bytes += e.cost
	}
	for c.bytes > c.maxBytes && c.ll.Len() > 0 {
		back := c.ll.Back()
		victim := back.Value.(*entry)
		c.ll.Remove(back)
		delete(c.entries, victim.key)
		c.bytes -= victim.cost
		c.evictions++
		c.reg.Counter("cache_evictions_total").Inc()
	}
	c.reg.Gauge("cache_bytes").Set(float64(c.bytes))
	c.reg.Gauge("cache_entries").Set(float64(c.ll.Len()))
}

// remove drops key from the in-memory tier (the disk tier, if any, is
// left alone).
func (c *Cache) remove(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return
	}
	e := el.Value.(*entry)
	c.ll.Remove(el)
	delete(c.entries, key)
	c.bytes -= e.cost
	c.reg.Gauge("cache_bytes").Set(float64(c.bytes))
	c.reg.Gauge("cache_entries").Set(float64(c.ll.Len()))
}

// Stats is a deterministic point-in-time summary of the cache: maps
// marshal with sorted keys, so equal states render equal JSON.
type Stats struct {
	Entries       int              `json:"entries"`
	Bytes         int64            `json:"bytes"`
	MaxBytes      int64            `json:"max_bytes"`
	Hits          map[string]int64 `json:"hits"`
	Misses        map[string]int64 `json:"misses"`
	Evictions     int64            `json:"evictions"`
	DiskLoads     int64            `json:"disk_loads"`
	PersistErrors int64            `json:"persist_errors"`
	// DiskEntries / DiskBytes describe the disk tier: entry-file count
	// and byte total, seeded by a directory scan at construction and
	// maintained across stores and corrupt-entry deletions.
	DiskEntries int64 `json:"disk_entries"`
	DiskBytes   int64 `json:"disk_bytes"`
}

// Stats snapshots the cache counters. Nil-safe: a nil cache reports the
// zero Stats (with non-nil maps, so it still marshals stably).
func (c *Cache) Stats() Stats {
	s := Stats{Hits: map[string]int64{}, Misses: map[string]int64{}}
	if c == nil {
		return s
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	s.Entries = c.ll.Len()
	s.Bytes = c.bytes
	s.MaxBytes = c.maxBytes
	for k, v := range c.hits {
		s.Hits[k] = v
	}
	for k, v := range c.misses {
		s.Misses[k] = v
	}
	s.Evictions = c.evictions
	s.DiskLoads = c.diskLoads
	s.PersistErrors = c.persistErrors
	s.DiskEntries = c.diskEntries
	s.DiskBytes = c.diskBytes
	return s
}
