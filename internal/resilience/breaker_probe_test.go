package resilience

import (
	"testing"
	"time"
)

// TestBreakerHalfOpenSingleProbe: when the cooldown expires, the breaker
// admits exactly ONE probe; further Allow calls are rejected until that
// probe's outcome is recorded. This is the latch that keeps hedged
// requests from stampeding a recovering backend with concurrent probes.
func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	b := NewBreaker(1, 5*time.Second)
	b.RecordFailure(0)
	if b.State() != Open {
		t.Fatalf("state = %v after threshold failure, want open", b.State())
	}
	if b.Allow(time.Second) {
		t.Fatal("admitted during cooldown")
	}
	if !b.Allow(6 * time.Second) {
		t.Fatal("probe not admitted after cooldown")
	}
	// The probe slot is claimed: a second caller racing the same expiry
	// must be rejected.
	if b.Allow(6 * time.Second) {
		t.Fatal("second concurrent probe admitted")
	}
	b.RecordSuccess()
	if b.State() != Closed {
		t.Fatalf("state = %v after successful probe, want closed", b.State())
	}
	if !b.Allow(6 * time.Second) {
		t.Fatal("closed breaker must admit")
	}
}

// TestBreakerProbeFailureReopens: a failed probe re-opens the circuit
// and a fresh cooldown admits exactly one new probe.
func TestBreakerProbeFailureReopens(t *testing.T) {
	b := NewBreaker(1, 5*time.Second)
	b.RecordFailure(0)
	if !b.Allow(6 * time.Second) {
		t.Fatal("probe not admitted")
	}
	b.RecordFailure(6 * time.Second)
	if b.State() != Open {
		t.Fatalf("state = %v after failed probe, want open", b.State())
	}
	if b.Allow(7 * time.Second) {
		t.Fatal("admitted during the new cooldown")
	}
	if !b.Allow(12 * time.Second) {
		t.Fatal("new probe not admitted after the new cooldown")
	}
	if b.Allow(12 * time.Second) {
		t.Fatal("second probe admitted after re-open")
	}
}

// TestBreakerCancelProbe: abandoning a probe (hedge rival won, context
// cancelled) releases the slot without recording a verdict — the next
// caller may probe, and the breaker state is unchanged.
func TestBreakerCancelProbe(t *testing.T) {
	b := NewBreaker(1, 5*time.Second)
	b.RecordFailure(0)
	if !b.Allow(6 * time.Second) {
		t.Fatal("probe not admitted")
	}
	b.CancelProbe()
	if b.State() != HalfOpen {
		t.Fatalf("state = %v after cancelled probe, want half-open (no verdict)", b.State())
	}
	if !b.Allow(6 * time.Second) {
		t.Fatal("probe slot not released by CancelProbe")
	}
	if b.Allow(6 * time.Second) {
		t.Fatal("released slot admitted two probes")
	}
}
