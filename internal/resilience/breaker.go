// breaker.go implements the circuit-breaker half of the resilience layer
// (§1's Polly/Hystrix discussion): closed → open → half-open transitions
// driven entirely by virtual time, so the cooldown behaves identically in
// every run and at every worker count.
package resilience

import "time"

// BreakerState is one of the three circuit-breaker states.
type BreakerState int

const (
	// Closed passes every call through and counts consecutive failures.
	Closed BreakerState = iota
	// Open rejects calls until the cooldown elapses.
	Open
	// HalfOpen lets probe calls through; the first recorded outcome
	// decides whether the circuit closes again or re-opens.
	HalfOpen
)

// String returns the conventional lowercase state name.
func (s BreakerState) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return "unknown"
}

// Breaker is a three-state circuit breaker. All timing is virtual: callers
// pass the current virtual time (a time.Duration offset, e.g.
// vclock.Now) into Allow and the Record methods, which is what keeps
// chaos experiments deterministic and instantaneous.
//
// Breaker is deliberately NOT goroutine-safe. Shared users must serialize
// access; the LLM client settles breaker decisions inside its Budget's
// canonical-order claim callback, which both provides the lock and pins
// the order of state transitions to the corpus order rather than the
// scheduler's.
type Breaker struct {
	threshold int           // consecutive failures that open the circuit
	cooldown  time.Duration // virtual time the circuit stays open

	state       BreakerState
	consecutive int
	openedAt    time.Duration
	probing     bool // a half-open probe is in flight and undecided
	onChange    func(to BreakerState)
}

// NewBreaker returns a closed breaker that opens after threshold
// consecutive failures and stays open for the given virtual cooldown.
// threshold < 1 is clamped to 1.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold < 1 {
		threshold = 1
	}
	return &Breaker{threshold: threshold, cooldown: cooldown}
}

// OnTransition registers a hook invoked with the new state on every
// transition (metrics wiring). Pass nil to clear.
func (b *Breaker) OnTransition(fn func(to BreakerState)) { b.onChange = fn }

// State returns the current state as last transitioned (Allow performs
// the open → half-open move, so poll through Allow when time passes).
func (b *Breaker) State() BreakerState { return b.state }

// Allow reports whether a call may proceed at virtual time now. In the
// open state it returns false until the cooldown has elapsed, at which
// point the breaker moves to half-open and admits exactly one probe:
// until that probe's outcome is recorded, further Allow calls are
// rejected. Without the single-probe latch, two callers racing the same
// cooldown expiry would both be admitted against a backend the breaker
// has only agreed to *test* — exactly the thundering-probe failure mode
// hedged requests make likely.
func (b *Breaker) Allow(now time.Duration) bool {
	switch b.state {
	case Open:
		if now-b.openedAt < b.cooldown {
			return false
		}
		b.transition(HalfOpen)
		b.probing = true
		return true
	case HalfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
	return true
}

// RecordSuccess records a successful call: the failure streak resets and
// a half-open probe closes the circuit.
func (b *Breaker) RecordSuccess() {
	b.consecutive = 0
	b.probing = false
	if b.state != Closed {
		b.transition(Closed)
	}
}

// RecordFailure records a failed call at virtual time now: a half-open
// probe failure re-opens the circuit immediately, and the threshold-th
// consecutive failure opens a closed circuit.
func (b *Breaker) RecordFailure(now time.Duration) {
	b.consecutive++
	b.probing = false
	switch b.state {
	case HalfOpen:
		b.openedAt = now
		b.transition(Open)
	case Closed:
		if b.consecutive >= b.threshold {
			b.openedAt = now
			b.transition(Open)
		}
	}
}

// CancelProbe releases the half-open probe slot without recording an
// outcome. Callers use it when a probe was abandoned rather than
// answered — e.g. a hedged rival won and the probe's context was
// cancelled — since a cancellation says nothing about the backend's
// health, but leaving the latch set would block probing forever.
func (b *Breaker) CancelProbe() { b.probing = false }

func (b *Breaker) transition(to BreakerState) {
	b.state = to
	if b.onChange != nil {
		b.onChange(to)
	}
}
