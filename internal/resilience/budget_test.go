package resilience

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestBudgetArrivalGrantsAndClamps exercises the bucket in arrival mode:
// grants draw down the pool, over-asks are clamped, and negative returns
// consume nothing.
func TestBudgetArrivalGrantsAndClamps(t *testing.T) {
	b := NewBudget(3, 0)
	take := func(want int) int {
		var got int
		b.Claim(0, 0, func(avail, _ int) int {
			got = avail
			return want
		})
		return got
	}
	if avail := take(2); avail != 3 {
		t.Fatalf("first claim saw %d tokens, want 3", avail)
	}
	if avail := take(-5); avail != 1 {
		t.Fatalf("second claim saw %d tokens, want 1 (negative consumption must not refund)", avail)
	}
	if avail := take(99); avail != 1 {
		t.Fatalf("third claim saw %d tokens, want 1", avail)
	}
	if got := b.Remaining(); got != 0 {
		t.Fatalf("Remaining() = %d after clamped over-ask, want 0", got)
	}
}

// TestBudgetRefill checks the one-token-per-N-settles refill, including
// the capacity cap.
func TestBudgetRefill(t *testing.T) {
	b := NewBudget(2, 2)
	noop := func(int, int) int { return 0 }
	spend := func(int, int) int { return 2 }

	b.Claim(0, 0, spend) // tokens 0, settled 1
	b.Claim(0, 0, noop)  // settled 2 → refill to 1
	if got := b.Remaining(); got != 1 {
		t.Fatalf("after refill Remaining() = %d, want 1", got)
	}
	b.Claim(0, 0, noop)
	b.Claim(0, 0, noop) // settled 4 → refill to 2 (cap)
	b.Claim(0, 0, noop)
	b.Claim(0, 0, noop) // settled 6 → already at capacity, no overfill
	if got := b.Remaining(); got != 2 {
		t.Fatalf("Remaining() = %d, want capacity 2 (refill must not overfill)", got)
	}
}

// TestBudgetSequencedCanonicalOrder launches claims from concurrent
// goroutines in scrambled start order and asserts they settle in
// canonical (lane, idx) order with grants that depend only on that order.
// Run under -race this is also the budget's concurrency test.
func TestBudgetSequencedCanonicalOrder(t *testing.T) {
	const lanes, perLane = 3, 4
	b := NewBudget(5, 0)
	b.Sequence(lanes)
	for l := 0; l < lanes; l++ {
		b.OpenLane(l, perLane)
	}

	var mu sync.Mutex
	var order []string
	var seqs []int
	var wg sync.WaitGroup
	// Start claims in reverse canonical order to maximize scrambling.
	for l := lanes - 1; l >= 0; l-- {
		for i := perLane - 1; i >= 0; i-- {
			wg.Add(1)
			go func(l, i int) {
				defer wg.Done()
				b.Claim(l, i, func(avail, seq int) int {
					mu.Lock()
					order = append(order, fmt.Sprintf("%d/%d", l, i))
					seqs = append(seqs, seq)
					mu.Unlock()
					return 1
				})
			}(l, i)
		}
	}
	wg.Wait()

	var want []string
	for l := 0; l < lanes; l++ {
		for i := 0; i < perLane; i++ {
			want = append(want, fmt.Sprintf("%d/%d", l, i))
		}
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("settle %d = %s, want %s (full order %v)", i, order[i], want[i], order)
		}
		if seqs[i] != i {
			t.Fatalf("settle %d saw sequence %d", i, seqs[i])
		}
	}
	if got := b.Remaining(); got != 0 {
		t.Fatalf("Remaining() = %d, want 0 (5 tokens granted, then dry)", got)
	}
}

// TestBudgetSharedAcrossLanes verifies the bucket is genuinely shared:
// with sequencing, the tokens an early lane consumes are gone when a
// later lane settles, no matter which goroutine ran first.
func TestBudgetSharedAcrossLanes(t *testing.T) {
	b := NewBudget(4, 0)
	b.Sequence(2)
	b.OpenLane(0, 1)
	b.OpenLane(1, 1)

	availAt := make([]int, 2)
	var wg sync.WaitGroup
	wg.Add(2)
	// Lane 1 starts first but must observe lane 0's consumption.
	go func() {
		defer wg.Done()
		b.Claim(1, 0, func(avail, _ int) int { availAt[1] = avail; return 0 })
	}()
	go func() {
		defer wg.Done()
		b.Claim(0, 0, func(avail, _ int) int { availAt[0] = avail; return 3 })
	}()
	wg.Wait()
	if availAt[0] != 4 || availAt[1] != 1 {
		t.Fatalf("lanes saw %v tokens, want [4 1]", availAt)
	}
}

// TestBudgetEmptyLanesAdvance checks that zero-claim lanes (error paths)
// do not wedge the cursor.
func TestBudgetEmptyLanesAdvance(t *testing.T) {
	b := NewBudget(1, 0)
	b.Sequence(3)
	b.OpenLane(0, 0)
	b.OpenLane(2, 1)
	done := make(chan struct{})
	go func() {
		b.Claim(2, 0, func(int, int) int { return 0 })
		close(done)
	}()
	b.OpenLane(1, 0) // the straggler: announced last, settles nothing
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("claim after empty lanes never settled")
	}
}

// TestBreakerTransitions drives the closed → open → half-open state
// machine through the transition table on a virtual timeline.
func TestBreakerTransitions(t *testing.T) {
	br := NewBreaker(3, 10*time.Second)
	var seen []string
	br.OnTransition(func(to BreakerState) { seen = append(seen, to.String()) })

	now := time.Duration(0)
	if !br.Allow(now) {
		t.Fatal("closed breaker must allow")
	}
	br.RecordFailure(now)
	br.RecordFailure(now)
	if br.State() != Closed {
		t.Fatalf("state after 2/3 failures = %v, want closed", br.State())
	}
	br.RecordFailure(now)
	if br.State() != Open {
		t.Fatalf("state after 3rd failure = %v, want open", br.State())
	}
	if br.Allow(now + 9*time.Second) {
		t.Fatal("open breaker allowed a call before the cooldown elapsed")
	}
	if !br.Allow(now + 10*time.Second) {
		t.Fatal("breaker did not admit a probe after the cooldown")
	}
	if br.State() != HalfOpen {
		t.Fatalf("state after cooldown = %v, want half-open", br.State())
	}
	// Probe fails → straight back to open, new cooldown from failure time.
	br.RecordFailure(11 * time.Second)
	if br.State() != Open {
		t.Fatalf("state after failed probe = %v, want open", br.State())
	}
	if br.Allow(20 * time.Second) {
		t.Fatal("re-opened breaker must run a full cooldown from the probe failure")
	}
	if !br.Allow(21 * time.Second) {
		t.Fatal("breaker did not admit the second probe")
	}
	br.RecordSuccess()
	if br.State() != Closed {
		t.Fatalf("state after successful probe = %v, want closed", br.State())
	}
	// A lone failure after recovery must not trip the fresh streak.
	br.RecordFailure(22 * time.Second)
	if br.State() != Closed {
		t.Fatal("single failure after recovery re-opened the breaker")
	}

	want := []string{"open", "half-open", "open", "half-open", "closed"}
	if fmt.Sprint(seen) != fmt.Sprint(want) {
		t.Fatalf("transition hook saw %v, want %v", seen, want)
	}
}

// TestBreakerThresholdClamp: threshold < 1 behaves as 1 (first failure
// opens).
func TestBreakerThresholdClamp(t *testing.T) {
	br := NewBreaker(0, time.Second)
	br.RecordFailure(0)
	if br.State() != Open {
		t.Fatalf("state = %v, want open after first failure with clamped threshold", br.State())
	}
}
