package resilience

import (
	"context"
	"errors"
	"testing"
	"testing/quick"
	"time"

	"wasabi/internal/errmodel"
	"wasabi/internal/trace"
)

func ctxWithRun() (context.Context, *trace.Run) {
	r := trace.NewRun("t")
	return trace.With(context.Background(), r), r
}

func failN(n int, class string) func(context.Context) error {
	calls := 0
	return func(context.Context) error {
		calls++
		if calls <= n {
			return errmodel.New(class, "transient")
		}
		return nil
	}
}

func TestDoSucceedsFirstTry(t *testing.T) {
	ctx, run := ctxWithRun()
	p := NewPolicy(3)
	if err := p.Do(ctx, failN(0, "ConnectException")); err != nil {
		t.Fatal(err)
	}
	if run.Len() != 0 {
		t.Error("no sleep expected on first-try success")
	}
}

func TestDoRetriesUntilSuccess(t *testing.T) {
	ctx, run := ctxWithRun()
	p := NewPolicy(5, WithFixedDelay(time.Second))
	if err := p.Do(ctx, failN(3, "ConnectException")); err != nil {
		t.Fatal(err)
	}
	sleeps := 0
	for _, e := range run.Events() {
		if e.Kind == trace.KindSleep {
			sleeps++
		}
	}
	if sleeps != 3 {
		t.Errorf("sleeps = %d, want one per retry", sleeps)
	}
}

func TestDoExhaustsAttempts(t *testing.T) {
	ctx, _ := ctxWithRun()
	p := NewPolicy(3, WithFixedDelay(time.Millisecond))
	err := p.Do(ctx, failN(100, "ConnectException"))
	if !errors.Is(err, ErrAttemptsExhausted) {
		t.Fatalf("err = %v", err)
	}
	if !errmodel.CauseIsClass(err, "ConnectException") {
		t.Error("last error not preserved in the chain")
	}
}

func TestDoClassifierStopsEarly(t *testing.T) {
	ctx, _ := ctxWithRun()
	calls := 0
	p := NewPolicy(10, WithRetryOn(func(err error) bool {
		return errmodel.IsClass(err, "ConnectException")
	}))
	err := p.Do(ctx, func(context.Context) error {
		calls++
		return errmodel.New("AccessControlException", "denied")
	})
	if calls != 1 {
		t.Errorf("calls = %d, non-retriable must not be retried", calls)
	}
	if !errmodel.IsClass(err, "AccessControlException") {
		t.Errorf("err = %v", err)
	}
}

// TestClassifierNotConsultedOnFinalAttempt: the classifier's verdict on
// the final attempt cannot change the outcome, so it must not run —
// stateful classifiers (the LLM client debits a shared budget token per
// approved retry) would otherwise pay for a retry that never executes.
func TestClassifierNotConsultedOnFinalAttempt(t *testing.T) {
	ctx, _ := ctxWithRun()
	consulted := 0
	p := NewPolicy(3, WithFixedDelay(time.Millisecond), WithRetryOn(func(error) bool {
		consulted++
		return true
	}))
	err := p.Do(ctx, failN(100, "ConnectException"))
	if !errors.Is(err, ErrAttemptsExhausted) {
		t.Fatalf("err = %v, want ErrAttemptsExhausted", err)
	}
	if consulted != 2 {
		t.Errorf("classifier consulted %d times, want 2 (once per retry that ran)", consulted)
	}
}

func TestDoDeadline(t *testing.T) {
	ctx, _ := ctxWithRun()
	p := NewPolicy(1000, WithFixedDelay(time.Second), WithMaxElapsed(3*time.Second))
	err := p.Do(ctx, failN(1000, "ConnectException"))
	if !errors.Is(err, ErrDeadlineExhausted) {
		t.Fatalf("err = %v", err)
	}
}

func TestDoExponentialBackoffDurations(t *testing.T) {
	ctx, run := ctxWithRun()
	p := NewPolicy(4, WithExponentialBackoff(100*time.Millisecond, time.Second))
	_ = p.Do(ctx, failN(3, "ConnectException"))
	var ds []time.Duration
	for _, e := range run.Events() {
		if e.Kind == trace.KindSleep {
			ds = append(ds, e.Duration)
		}
	}
	want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond}
	if len(ds) != len(want) {
		t.Fatalf("sleeps = %v", ds)
	}
	for i := range want {
		if ds[i] != want[i] {
			t.Errorf("sleep %d = %v, want %v", i, ds[i], want[i])
		}
	}
}

func TestDoContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := NewPolicy(100, WithFixedDelay(0))
	calls := 0
	err := p.Do(ctx, func(context.Context) error {
		calls++
		if calls == 2 {
			cancel()
		}
		return errmodel.New("ConnectException", "x")
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if calls != 2 {
		t.Errorf("calls = %d, cancellation must stop the loop", calls)
	}
}

func TestMinimumOneAttempt(t *testing.T) {
	p := NewPolicy(0)
	if p.MaxAttempts() != 1 {
		t.Errorf("MaxAttempts = %d, want clamped to 1", p.MaxAttempts())
	}
	calls := 0
	_ = p.Do(context.Background(), func(context.Context) error {
		calls++
		return errors.New("x")
	})
	if calls != 1 {
		t.Errorf("calls = %d", calls)
	}
}

// Property: for a function failing f times, Do calls it exactly
// min(f+1, maxAttempts) times.
func TestAttemptCountProperty(t *testing.T) {
	prop := func(failures, max uint8) bool {
		f, m := int(failures%20), int(max%20)+1
		calls := 0
		p := NewPolicy(m, WithFixedDelay(0))
		_ = p.Do(context.Background(), func(context.Context) error {
			calls++
			if calls <= f {
				return errmodel.New("ConnectException", "x")
			}
			return nil
		})
		want := f + 1
		if want > m {
			want = m
		}
		return calls == want
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestExhaustedErrorRendering(t *testing.T) {
	ctx, _ := ctxWithRun()
	p := NewPolicy(1)
	err := p.Do(ctx, failN(5, "SocketException"))
	if err == nil || !errors.Is(err, ErrAttemptsExhausted) {
		t.Fatalf("err = %v", err)
	}
	if err.Error() == "" {
		t.Error("empty rendering")
	}
}
