// budget.go implements a retry *budget*: a token bucket shared by every
// concurrent consumer of one backend, so a worker pool cannot amplify a
// backend brownout into a retry storm (the resilience-framework practice
// the paper's §1 discussion of Polly/Hystrix points at — retries are a
// global resource, not a per-call right).
//
// The novelty here is determinism. A naive shared bucket hands tokens out
// in scheduling order, so *which* caller hits an empty bucket would vary
// run to run and across worker counts — breaking the pipeline's
// byte-identical-output contract. This bucket instead settles claims in a
// canonical (lane, index) order declared by the orchestrator (lane = app
// position in the corpus, index = file position in the app's sorted file
// list): a claim for slot k waits until every earlier slot has settled.
// Grant decisions are therefore a pure function of the corpus and the
// fault profile, never of goroutine interleaving, while consumption is
// still genuinely shared — one global pool, concurrent claimants.
//
// Deadlock freedom rests on the worker pool's submission discipline
// (internal/core/parallel.go): tasks are submitted in index order and
// saturated submissions run inline, so whenever slot k blocks, every
// earlier slot is already running or settled — the waits-for graph only
// points backwards and progress is guaranteed.
package resilience

import (
	"fmt"
	"sync"
)

// Budget is a shared retry token bucket with deterministic admission.
// Construct with NewBudget; the zero value is unusable.
//
// Two modes:
//
//   - arrival mode (default): claims settle in the order they arrive —
//     appropriate for sequential callers (unit tests, one-off reviews);
//   - sequenced mode (after Sequence): claims settle in canonical
//     (lane, index) order regardless of arrival order, which is what
//     concurrent pipelines need for reproducible grants.
type Budget struct {
	mu   sync.Mutex
	cond *sync.Cond

	capacity    int
	tokens      int
	refillEvery int // one token returns every refillEvery settled claims
	settled     int

	sequenced bool
	lanes     []int // expected claim count per lane; -1 = unannounced
	lane, idx int   // cursor: next slot to settle
}

// NewBudget returns a full bucket in arrival mode. capacity < 0 is
// clamped to 0 (a bucket that never grants); refillEvery <= 0 disables
// refill (a strict budget for the whole run).
func NewBudget(capacity, refillEvery int) *Budget {
	if capacity < 0 {
		capacity = 0
	}
	b := &Budget{capacity: capacity, tokens: capacity, refillEvery: refillEvery}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Sequence resets the bucket to full and switches to sequenced mode with
// the given number of lanes, all initially unannounced. The orchestrator
// calls this once per run, before any claims.
func (b *Budget) Sequence(lanes int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tokens = b.capacity
	b.settled = 0
	b.sequenced = true
	b.lanes = make([]int, lanes)
	for i := range b.lanes {
		b.lanes[i] = -1
	}
	b.lane, b.idx = 0, 0
	b.advance()
	b.cond.Broadcast()
}

// OpenLane announces that the given lane will settle exactly claims
// claims. Every lane declared by Sequence must eventually be opened
// (with 0 claims if it produces none — e.g. on an error path), or later
// lanes would wait forever.
func (b *Budget) OpenLane(lane, claims int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.sequenced {
		return
	}
	if lane < 0 || lane >= len(b.lanes) {
		panic(fmt.Sprintf("resilience: OpenLane(%d) outside the %d declared lanes", lane, len(b.lanes)))
	}
	b.lanes[lane] = claims
	b.advance()
	b.cond.Broadcast()
}

// Claim settles one claim: it blocks until the claim's canonical turn
// (sequenced mode) or takes the next arrival turn, then runs settle with
// the number of tokens available and the claim's settle sequence number
// (0-based position in the canonical settlement order — a deterministic
// "arrival ordinal" for the run). settle returns how many tokens it
// consumes (clamped to [0, avail]); it runs under the budget lock, so it
// must be fast and must not call back into the budget. Use the callback
// to couple other shared admission state (the LLM client reads and
// updates its circuit breaker there) to the same canonical order.
func (b *Budget) Claim(lane, idx int, settle func(avail, seq int) int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.sequenced {
		if lane < 0 || lane >= len(b.lanes) {
			panic(fmt.Sprintf("resilience: Claim for undeclared lane %d", lane))
		}
		for !(b.lane == lane && b.idx == idx) {
			b.cond.Wait()
		}
	}
	consumed := settle(b.tokens, b.settled)
	if consumed < 0 {
		consumed = 0
	}
	if consumed > b.tokens {
		consumed = b.tokens
	}
	b.tokens -= consumed
	b.settled++
	if b.refillEvery > 0 && b.settled%b.refillEvery == 0 && b.tokens < b.capacity {
		b.tokens++
	}
	if b.sequenced {
		b.idx++
		b.advance()
		b.cond.Broadcast()
	}
}

// advance moves the cursor past every fully-settled announced lane
// (including empty ones), stopping at the first unannounced lane. Callers
// hold b.mu.
func (b *Budget) advance() {
	for b.lane < len(b.lanes) && b.lanes[b.lane] >= 0 && b.idx >= b.lanes[b.lane] {
		b.lane++
		b.idx = 0
	}
}

// Remaining returns the tokens currently in the bucket (racy by nature —
// for tests and reporting).
func (b *Budget) Remaining() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tokens
}
