// Package resilience is a retry/fault-tolerance library in the mold of
// the "resilience frameworks" the paper discusses (§1, e.g. Polly and
// Hystrix): configurable retry-on-error with bounded attempts and backoff,
// a shared retry budget (budget.go), and a circuit breaker (breaker.go).
//
// The paper's observation is that such frameworks help with *configurable*
// policy aspects but (a) cannot decide which errors are transient, (b)
// cannot prevent HOW-retry implementation bugs, and (c) only support simple
// loop-shaped retry. This package exists both as a correct-usage baseline
// for the ablation benchmarks and as the utility a few well-behaved corpus
// components use, in contrast to the ad-hoc retry the rest of the corpus
// implements inline (which is precisely what makes WASABI's identification
// problem hard).
//
// Since PR 3 the pipeline also dogfoods the library on its hottest
// dependency: the simulated LLM backend (internal/llm) retries transient
// transport faults through a Policy with decorrelated-jitter backoff,
// draws retries from a Budget shared across concurrent reviews, and trips
// a Breaker when the backend browns out — all timing stays virtual
// (internal/vclock), so chaos experiments are deterministic and fast.
package resilience

import (
	"context"
	"errors"
	"time"

	"wasabi/internal/vclock"
)

// Classifier decides whether an error is worth retrying.
type Classifier func(error) bool

// Policy configures bounded, delayed retry. The zero value retries nothing;
// construct policies with NewPolicy and the With* options.
type Policy struct {
	maxAttempts int
	baseDelay   time.Duration
	maxDelay    time.Duration
	maxElapsed  time.Duration
	retryOn     Classifier
	jitter      bool
}

// Option mutates a policy under construction.
type Option func(*Policy)

// NewPolicy returns a policy that performs at most maxAttempts executions
// (so maxAttempts-1 retries) with a fixed 1s delay between attempts and
// retries every error. maxAttempts < 1 is treated as 1.
func NewPolicy(maxAttempts int, opts ...Option) *Policy {
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	p := &Policy{
		maxAttempts: maxAttempts,
		baseDelay:   time.Second,
		maxDelay:    time.Second,
		retryOn:     func(error) bool { return true },
	}
	for _, o := range opts {
		o(p)
	}
	return p
}

// WithFixedDelay sets a constant delay between attempts.
func WithFixedDelay(d time.Duration) Option {
	return func(p *Policy) { p.baseDelay, p.maxDelay = d, d }
}

// WithExponentialBackoff sets exponential backoff from base up to max.
func WithExponentialBackoff(base, max time.Duration) Option {
	return func(p *Policy) { p.baseDelay, p.maxDelay = base, max }
}

// WithDecorrelatedJitter sets decorrelated-jitter backoff: each delay is
// drawn from [base, 3·previous) and capped at max, which decorrelates
// concurrent retriers after a shared outage (the thundering-herd fix the
// resilience-framework literature recommends). Delays come from a
// deterministic generator; seed the sequence per call site with DoSeeded
// so runs stay reproducible.
func WithDecorrelatedJitter(base, max time.Duration) Option {
	return func(p *Policy) { p.baseDelay, p.maxDelay, p.jitter = base, max, true }
}

// WithMaxElapsed bounds the total virtual time spent retrying. Zero means
// no time bound (attempts still bound the loop).
func WithMaxElapsed(d time.Duration) Option {
	return func(p *Policy) { p.maxElapsed = d }
}

// WithRetryOn sets the transient-error classifier.
func WithRetryOn(c Classifier) Option {
	return func(p *Policy) { p.retryOn = c }
}

// MaxAttempts returns the configured attempt bound.
func (p *Policy) MaxAttempts() int { return p.maxAttempts }

// retryAfterError annotates an error with a server-provided Retry-After
// hint. It wraps transparently: errors.Is/As and chain-walking class
// checks (errmodel.CauseIsClass) on the underlying error keep working;
// outermost-only checks (errmodel.IsClass) deliberately see the wrapper.
type retryAfterError struct {
	err  error
	hint time.Duration
}

func (e *retryAfterError) Error() string { return e.err.Error() }
func (e *retryAfterError) Unwrap() error { return e.err }

// WithRetryAfterHint annotates err with a server-provided Retry-After
// hint (e.g. parsed from an HTTP 429 response header). A nil error or a
// non-positive hint is returned unchanged.
func WithRetryAfterHint(err error, hint time.Duration) error {
	if err == nil || hint <= 0 {
		return err
	}
	return &retryAfterError{err: err, hint: hint}
}

// RetryAfterHint extracts the outermost Retry-After hint from err's
// wrap chain, reporting whether one was present.
func RetryAfterHint(err error) (time.Duration, bool) {
	for err != nil {
		if ra, ok := err.(*retryAfterError); ok {
			return ra.hint, true
		}
		err = errors.Unwrap(err)
	}
	return 0, false
}

// ErrAttemptsExhausted wraps the last error when the attempt cap is hit.
var ErrAttemptsExhausted = errors.New("resilience: retry attempts exhausted")

// ErrDeadlineExhausted wraps the last error when the elapsed-time cap is hit.
var ErrDeadlineExhausted = errors.New("resilience: retry deadline exhausted")

// exhaustedError carries the sentinel plus the last attempt's error.
type exhaustedError struct {
	sentinel error
	last     error
}

func (e *exhaustedError) Error() string   { return e.sentinel.Error() + ": " + e.last.Error() }
func (e *exhaustedError) Unwrap() error   { return e.last }
func (e *exhaustedError) Is(t error) bool { return t == e.sentinel }

// Do executes fn until it succeeds, the classifier rejects its error, the
// attempt cap is reached, or the elapsed-time cap is exceeded. The
// classifier runs only between attempts — never after the final one —
// so a stateful classifier pays exactly once per retry that can
// actually execute. Delays between attempts go through the virtual
// clock, so instrumented runs observe them as proper retry delays.
//
// The context is checked on entry (an already-cancelled context performs
// zero attempts), and the elapsed-time cap is checked *before* each
// backoff sleep: a delay that would overshoot the deadline is never slept,
// so the final backoff is not burned after the deadline became
// unreachable.
func (p *Policy) Do(ctx context.Context, fn func(context.Context) error) error {
	return p.DoSeeded(ctx, 0, fn)
}

// DoSeeded is Do with an explicit seed for the decorrelated-jitter delay
// sequence. Callers that need reproducible delays across runs derive the
// seed from a stable identity (the LLM client hashes the file path);
// policies without jitter ignore the seed.
func (p *Policy) DoSeeded(ctx context.Context, seed uint64, fn func(context.Context) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	start := vclock.Now(ctx)
	rng := prng(seed)
	prev := p.baseDelay
	var last error
	for attempt := 0; attempt < p.maxAttempts; attempt++ {
		if attempt > 0 {
			d := p.delay(attempt, &prev, &rng)
			// A server-provided Retry-After hint floors the sleep: the
			// server told us when it will be ready, and retrying earlier
			// both wastes an attempt and worsens the congestion the 429
			// signaled. The hint is deliberately not capped by maxDelay —
			// it overrides local policy — but the elapsed-time cap below
			// still applies, so a hostile hint cannot pin the caller.
			if hint, ok := RetryAfterHint(last); ok && hint > d {
				d = hint
			}
			if p.maxElapsed > 0 && vclock.Now(ctx)-start+d > p.maxElapsed {
				return &exhaustedError{sentinel: ErrDeadlineExhausted, last: last}
			}
			vclock.Sleep(ctx, d)
		}
		last = fn(ctx)
		if last == nil {
			return nil
		}
		// The classifier is consulted only while a retry could still run:
		// its verdict on the final attempt cannot change the outcome, and
		// classifiers may carry side effects per approved retry (the LLM
		// client debits a shared budget token) that must not fire for a
		// retry that never executes. A final-attempt failure therefore
		// always surfaces as ErrAttemptsExhausted, wrapping the last error.
		if attempt == p.maxAttempts-1 {
			break
		}
		if !p.retryOn(last) {
			return last
		}
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	return &exhaustedError{sentinel: ErrAttemptsExhausted, last: last}
}

// delay computes the backoff before the given attempt (attempt >= 1),
// updating the jitter state.
func (p *Policy) delay(attempt int, prev *time.Duration, rng *prng) time.Duration {
	if !p.jitter {
		return vclock.Backoff(p.baseDelay, attempt-1, p.maxDelay)
	}
	// Decorrelated jitter: uniform in [base, 3·prev), capped at max.
	d := p.baseDelay
	if span := 3**prev - p.baseDelay; span > 0 {
		d += time.Duration(rng.next() % uint64(span))
	}
	if d > p.maxDelay {
		d = p.maxDelay
	}
	*prev = d
	return d
}

// prng is a splitmix64 generator: tiny, deterministic, and good enough to
// decorrelate backoff delays.
type prng uint64

func (s *prng) next() uint64 {
	*s += 0x9e3779b97f4a7c15
	z := uint64(*s)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	return z ^ (z >> 31)
}
