// Package resilience is a small retry/fault-tolerance library in the mold
// of the "resilience frameworks" the paper discusses (§1, e.g. Polly and
// Hystrix): configurable retry-on-error with bounded attempts and backoff.
//
// The paper's observation is that such frameworks help with *configurable*
// policy aspects but (a) cannot decide which errors are transient, (b)
// cannot prevent HOW-retry implementation bugs, and (c) only support simple
// loop-shaped retry. This package exists both as a correct-usage baseline
// for the ablation benchmarks and as the utility a few well-behaved corpus
// components use, in contrast to the ad-hoc retry the rest of the corpus
// implements inline (which is precisely what makes WASABI's identification
// problem hard).
package resilience

import (
	"context"
	"errors"
	"time"

	"wasabi/internal/vclock"
)

// Classifier decides whether an error is worth retrying.
type Classifier func(error) bool

// Policy configures bounded, delayed retry. The zero value retries nothing;
// construct policies with NewPolicy and the With* options.
type Policy struct {
	maxAttempts int
	baseDelay   time.Duration
	maxDelay    time.Duration
	maxElapsed  time.Duration
	retryOn     Classifier
}

// Option mutates a policy under construction.
type Option func(*Policy)

// NewPolicy returns a policy that performs at most maxAttempts executions
// (so maxAttempts-1 retries) with a fixed 1s delay between attempts and
// retries every error. maxAttempts < 1 is treated as 1.
func NewPolicy(maxAttempts int, opts ...Option) *Policy {
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	p := &Policy{
		maxAttempts: maxAttempts,
		baseDelay:   time.Second,
		maxDelay:    time.Second,
		retryOn:     func(error) bool { return true },
	}
	for _, o := range opts {
		o(p)
	}
	return p
}

// WithFixedDelay sets a constant delay between attempts.
func WithFixedDelay(d time.Duration) Option {
	return func(p *Policy) { p.baseDelay, p.maxDelay = d, d }
}

// WithExponentialBackoff sets exponential backoff from base up to max.
func WithExponentialBackoff(base, max time.Duration) Option {
	return func(p *Policy) { p.baseDelay, p.maxDelay = base, max }
}

// WithMaxElapsed bounds the total virtual time spent retrying. Zero means
// no time bound (attempts still bound the loop).
func WithMaxElapsed(d time.Duration) Option {
	return func(p *Policy) { p.maxElapsed = d }
}

// WithRetryOn sets the transient-error classifier.
func WithRetryOn(c Classifier) Option {
	return func(p *Policy) { p.retryOn = c }
}

// MaxAttempts returns the configured attempt bound.
func (p *Policy) MaxAttempts() int { return p.maxAttempts }

// ErrAttemptsExhausted wraps the last error when the attempt cap is hit.
var ErrAttemptsExhausted = errors.New("resilience: retry attempts exhausted")

// ErrDeadlineExhausted wraps the last error when the elapsed-time cap is hit.
var ErrDeadlineExhausted = errors.New("resilience: retry deadline exhausted")

// exhaustedError carries the sentinel plus the last attempt's error.
type exhaustedError struct {
	sentinel error
	last     error
}

func (e *exhaustedError) Error() string   { return e.sentinel.Error() + ": " + e.last.Error() }
func (e *exhaustedError) Unwrap() error   { return e.last }
func (e *exhaustedError) Is(t error) bool { return t == e.sentinel }

// Do executes fn until it succeeds, the classifier rejects its error, the
// attempt cap is reached, or the elapsed-time cap is exceeded. Delays
// between attempts go through the virtual clock, so instrumented runs
// observe them as proper retry delays.
func (p *Policy) Do(ctx context.Context, fn func(context.Context) error) error {
	start := vclock.Now(ctx)
	var last error
	for attempt := 0; attempt < p.maxAttempts; attempt++ {
		if attempt > 0 {
			vclock.Sleep(ctx, vclock.Backoff(p.baseDelay, attempt-1, p.maxDelay))
			if p.maxElapsed > 0 && vclock.Now(ctx)-start > p.maxElapsed {
				return &exhaustedError{sentinel: ErrDeadlineExhausted, last: last}
			}
		}
		last = fn(ctx)
		if last == nil {
			return nil
		}
		if !p.retryOn(last) {
			return last
		}
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	return &exhaustedError{sentinel: ErrAttemptsExhausted, last: last}
}
