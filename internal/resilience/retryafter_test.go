package resilience

import (
	"context"
	"errors"
	"testing"
	"time"

	"wasabi/internal/errmodel"
	"wasabi/internal/trace"
)

// sleeps extracts the virtual backoff sleeps a run recorded.
func sleeps(run *trace.Run) []time.Duration {
	var ds []time.Duration
	for _, e := range run.Events() {
		if e.Kind == trace.KindSleep {
			ds = append(ds, e.Duration)
		}
	}
	return ds
}

// TestRetryAfterHintFloorsBackoff: a server-provided Retry-After hint
// floors the next sleep — a hint above the policy delay stretches it to
// the server's number, a hint below it changes nothing (the local
// backoff already waits longer). Deterministic: fixed delay, virtual
// clock.
func TestRetryAfterHintFloorsBackoff(t *testing.T) {
	ctx, run := ctxWithRun()
	p := NewPolicy(3, WithFixedDelay(time.Second))
	calls := 0
	err := p.Do(ctx, func(context.Context) error {
		calls++
		switch calls {
		case 1:
			// 429 with "Retry-After: 5" — the server knows best.
			return WithRetryAfterHint(errmodel.New("ConnectException", "429"), 5*time.Second)
		case 2:
			// A hint shorter than the policy delay must not shrink it.
			return WithRetryAfterHint(errmodel.New("ConnectException", "429"), 100*time.Millisecond)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{5 * time.Second, time.Second}
	got := sleeps(run)
	if len(got) != len(want) {
		t.Fatalf("sleeps = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("sleep %d = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestRetryAfterHintElapsedCapStillApplies: the hint overrides maxDelay
// but not the elapsed-time cap — a hostile hint cannot pin the caller.
func TestRetryAfterHintElapsedCapStillApplies(t *testing.T) {
	ctx, _ := ctxWithRun()
	p := NewPolicy(10, WithFixedDelay(time.Second), WithMaxElapsed(30*time.Second))
	err := p.Do(ctx, func(context.Context) error {
		return WithRetryAfterHint(errmodel.New("ConnectException", "429"), time.Hour)
	})
	if !errors.Is(err, ErrDeadlineExhausted) {
		t.Fatalf("err = %v, want deadline exhaustion (the 1h hint overshoots the 30s cap)", err)
	}
}

// TestRetryAfterHintExtraction: the hint survives error wrapping in both
// directions — a wrapped hint is found, and hint-wrapping stays
// transparent to errors.Is / class checks on the cause.
func TestRetryAfterHintExtraction(t *testing.T) {
	base := errmodel.New("ConnectException", "429")
	hinted := WithRetryAfterHint(base, 7*time.Second)
	if hint, ok := RetryAfterHint(hinted); !ok || hint != 7*time.Second {
		t.Fatalf("RetryAfterHint = %v, %v", hint, ok)
	}
	if !errmodel.CauseIsClass(hinted, "ConnectException") {
		t.Error("hint wrapper hides the exception class from the cause chain")
	}
	wrapped := &exhaustedError{sentinel: ErrAttemptsExhausted, last: hinted}
	if hint, ok := RetryAfterHint(wrapped); !ok || hint != 7*time.Second {
		t.Fatalf("RetryAfterHint through exhaustedError = %v, %v", hint, ok)
	}
	if _, ok := RetryAfterHint(base); ok {
		t.Error("unhinted error reported a hint")
	}
	if got := WithRetryAfterHint(nil, time.Second); got != nil {
		t.Errorf("WithRetryAfterHint(nil) = %v", got)
	}
	if got := WithRetryAfterHint(base, 0); got != base {
		t.Errorf("non-positive hint must return err unchanged, got %v", got)
	}
}
