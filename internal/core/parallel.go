// parallel.go implements the bounded worker-pool runner behind
// Options.Workers and the deterministic reducers that merge concurrent
// results.
//
// Three levels of the pipeline fan out on the pool:
//
//   - RunCorpus runs whole applications (identify → dynamic → static)
//     concurrently;
//   - Identify reviews an application's source files concurrently
//     (each review is a pure function of the file contents);
//   - RunDynamic executes independent {test, retry-location} plan entries
//     concurrently (every execution owns a fresh fault.Injector and
//     trace.Run, so no mutable state crosses goroutines — the virtual
//     clock lives on the per-run trace).
//
// All levels share one semaphore sized Workers-1 (the calling goroutine
// always works too), so nested fan-out never exceeds Workers concurrent
// executions in total. Determinism comes from indexed result slots plus
// sequential, input-ordered merging: the assembled streams are
// byte-identical to the Workers=1 path regardless of scheduling, which
// determinism_test.go asserts over the full corpus.
package core

import (
	"sort"
	"sync"
	"time"

	"wasabi/internal/apps/corpus"
	"wasabi/internal/llm"
	"wasabi/internal/obs"
	"wasabi/internal/oracle"
	"wasabi/internal/sast"
)

// inFlightBuckets sizes the pool-utilization histogram
// (core_pool_tasks_in_flight): the in-flight task count sampled as each
// task starts, bounded by Options.Workers.
var inFlightBuckets = []float64{1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64}

// parallelFor runs fn(0) … fn(n-1), each exactly once, on at most
// opts.Workers goroutines in total across nested calls. Saturated calls
// run inline on the caller — which both bounds the pool and makes the
// function deadlock-free under nesting. With Workers=1 the loop degrades
// to a plain sequential for, byte-for-byte the pre-parallel behaviour.
//
// level names the fan-out level ("apps", "reviews", "entries") for the
// pool metrics. On observed runs each task reports its queue wait (time
// between submission and execution start — goroutine spawn latency,
// since saturated submissions run inline at zero wait) and samples the
// in-flight task count; task counts per level are deterministic, the
// wait and occupancy distributions are honest measurements.
//
// fn must confine its writes to per-index state (result slots); panics are
// not recovered, matching the sequential path where a panic in fn would
// also crash the run.
func (w *Wasabi) parallelFor(level string, n int, fn func(int)) {
	reg := w.obs.Reg()
	reg.Counter("core_pool_tasks_total", "level", level).Add(int64(n))
	if reg != nil {
		inner := fn
		fn = func(i int) {
			reg.Histogram("core_pool_tasks_in_flight", inFlightBuckets).Observe(float64(w.active.Add(1)))
			defer w.active.Add(-1)
			inner(i)
		}
	}
	if n <= 1 || cap(w.sem) == 0 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		var submitted time.Time
		if reg != nil {
			submitted = time.Now()
		}
		select {
		case w.sem <- struct{}{}:
			wg.Add(1)
			go func(i int) {
				defer func() { <-w.sem; wg.Done() }()
				if reg != nil {
					wait := float64(time.Since(submitted)) / float64(time.Millisecond)
					reg.Histogram("core_pool_wait_ms", obs.LatencyBuckets).Observe(wait)
				}
				fn(i)
			}(i)
		default:
			// Pool saturated: the caller is the worker, at zero wait.
			reg.Histogram("core_pool_wait_ms", obs.LatencyBuckets).Observe(0)
			fn(i)
		}
	}
	wg.Wait()
}

// AppRun bundles every artifact the pipeline produces for one application.
type AppRun struct {
	App    corpus.App
	ID     *Identification
	Dyn    *DynamicResult
	Static *StaticResult
}

// CorpusRun is the merged outcome of running the full pipeline — both
// workflows plus the corpus-wide IF analysis — over a set of applications.
// Every field is deterministic: identical at any Options.Workers setting.
type CorpusRun struct {
	// Apps holds the per-application results in input order.
	Apps []AppRun
	// IFRatios and IFReports are the corpus-wide retry-ratio analysis
	// (§3.2.2) over all identifications.
	IFRatios  []sast.ExceptionRatio
	IFReports []sast.IFReport
	// Usage is the total simulated-LLM traffic of the run.
	Usage llm.Usage
	// Degraded marks a run that hit a backend outage: at least one file
	// carries an "outage" degradation record, so LLM-dependent results
	// under-report by construction and consumers must not compare them
	// against healthy-run baselines. Brown-outs the resilience stack
	// absorbed (retried transients, per-file degradations of other kinds)
	// do not set it; the per-file records in Identification.Degraded do.
	Degraded bool
}

// RunCorpus fans the full pipeline out over the given applications on the
// worker pool and merges the results deterministically: per-app results
// are stored in input order, the IF analysis consumes identifications in
// input order, and total usage is an order-independent sum. The first
// error in input order aborts the run.
func (w *Wasabi) RunCorpus(apps []corpus.App) (*CorpusRun, error) {
	csp := w.obs.Trc().Start("corpus", "pipeline")
	defer csp.End()
	w.obs.Reg().Gauge("core_corpus_apps").Set(float64(len(apps)))
	// Unreliable-backend runs settle LLM admissions in canonical
	// (app, file) order: one budget lane per app, opened by identifyLane.
	w.llm.StartRun(len(apps))
	runs := make([]AppRun, len(apps))
	errs := make([]error, len(apps))
	w.parallelFor("apps", len(apps), func(i int) {
		app := apps[i]
		asp := w.obs.Trc().Start("app:"+app.Code, "app", "parent", "corpus")
		defer asp.End()
		id, err := w.identifyLane(app, i)
		if err != nil {
			errs[i] = err
			return
		}
		dyn, err := w.RunDynamic(app, id)
		if err != nil {
			errs[i] = err
			return
		}
		runs[i] = AppRun{App: app, ID: id, Dyn: dyn, Static: w.RunStatic(app, id)}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	cr := &CorpusRun{Apps: runs}
	ids := make([]*Identification, len(runs))
	for i := range runs {
		ids[i] = runs[i].ID
	}
	cr.IFRatios, cr.IFReports = w.RunIFAnalysis(ids)
	for _, ar := range runs {
		cr.Usage.Add(ar.Static.Usage)
		for _, d := range ar.ID.Degraded {
			if d.Reason == llm.DegradedOutage {
				cr.Degraded = true
			}
		}
	}
	return cr, nil
}

// DegradedFiles flattens every application's degradation records in input
// (app, file) order.
func (c *CorpusRun) DegradedFiles() []DegradedFile {
	var out []DegradedFile
	for _, ar := range c.Apps {
		out = append(out, ar.ID.Degraded...)
	}
	return out
}

// Identifications returns the per-app identifications in input order (the
// shape RunIFAnalysis consumes).
func (c *CorpusRun) Identifications() []*Identification {
	out := make([]*Identification, len(c.Apps))
	for i := range c.Apps {
		out[i] = c.Apps[i].ID
	}
	return out
}

// SortReports orders oracle reports by (app, coordinator, kind, group key,
// test) — a total order over distinct reports, so the result is the same
// no matter what order the input arrived in.
func SortReports(reports []oracle.Report) {
	sort.Slice(reports, func(i, j int) bool {
		a, b := reports[i], reports[j]
		if a.App != b.App {
			return a.App < b.App
		}
		if a.Coordinator != b.Coordinator {
			return a.Coordinator < b.Coordinator
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.GroupKey != b.GroupKey {
			return a.GroupKey < b.GroupKey
		}
		return a.Test < b.Test
	})
}

// MergedReports flattens every application's deduplicated dynamic reports
// into one slice in canonical (app, coordinator, kind) order — the
// deterministic reducer consumers print or diff.
func (c *CorpusRun) MergedReports() []oracle.Report {
	var out []oracle.Report
	for _, ar := range c.Apps {
		out = append(out, ar.Dyn.Reports...)
	}
	SortReports(out)
	return out
}
