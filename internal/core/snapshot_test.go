package core_test

// snapshot_test pins the parse-once pipeline (internal/source) at the
// whole-pipeline level: a full corpus run parses each source file exactly
// once regardless of worker count, and a warm daemon — one store and one
// cache shared across runs, the internal/server configuration — re-parses
// and re-extracts exactly the files whose bytes changed, while the
// canonical report stays byte-identical. Counter assertions are exact:
// the source_* metrics count logical events (docs/OBSERVABILITY.md).

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"wasabi/internal/apps/corpus"
	"wasabi/internal/cache"
	"wasabi/internal/core"
	"wasabi/internal/llm"
	"wasabi/internal/obs"
	"wasabi/internal/report"
	"wasabi/internal/sast"
	"wasabi/internal/source"
)

// countSourceFiles counts the files source.IsSourceFile admits in dir.
func countSourceFiles(t *testing.T, dir string) int64 {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var n int64
	for _, e := range entries {
		if !e.IsDir() && source.IsSourceFile(e.Name()) {
			n++
		}
	}
	return n
}

// TestParseOncePerRun is the acceptance gate of the snapshot store: a
// full corpus run loads and parses each unique source file exactly once
// — source_parse_total equals the corpus file count and nothing is
// double-loaded, at any worker count.
func TestParseOncePerRun(t *testing.T) {
	var want int64
	for _, app := range corpus.Apps() {
		want += countSourceFiles(t, app.Dir)
	}
	if want == 0 {
		t.Fatal("corpus has no source files")
	}
	for _, workers := range []int{1, 4} {
		opts := core.DefaultOptions()
		opts.Workers = workers
		opts.Obs = obs.New()
		w := core.New(opts)
		if _, err := w.RunCorpus(corpus.Apps()); err != nil {
			t.Fatal(err)
		}
		s := opts.Obs.Reg().Snapshot()
		if got := s.Counter("source_parse_total"); got != want {
			t.Fatalf("workers=%d: source_parse_total = %d, want %d (one parse per unique file)", workers, got, want)
		}
		if got := s.Counter("source_files_loaded_total"); got != want {
			t.Fatalf("workers=%d: source_files_loaded_total = %d, want %d", workers, got, want)
		}
		if got := s.Counter("source_reuse_total"); got != 0 {
			t.Fatalf("workers=%d: source_reuse_total = %d, want 0 on a cold run", workers, got)
		}
		if got := s.Counter("source_derived_computes_total", "kind", sast.ExtractKind); got != want {
			t.Fatalf("workers=%d: sast extractions = %d, want %d", workers, got, want)
		}
	}
}

// counterDelta is the movement of one (possibly labeled) counter between
// two registry snapshots.
func counterDelta(after, before obs.Snapshot, name string, labels ...string) int64 {
	return after.Counter(name, labels...) - before.Counter(name, labels...)
}

// TestWarmDaemonSingleFileEdit drives the daemon configuration — one
// observer, one store, one cache across runs — through the cold → warm →
// single-edit trajectory and asserts the incremental contract exactly:
// the warm run parses nothing, and after editing one file only that file
// re-parses, re-extracts, and re-reviews.
func TestWarmDaemonSingleFileEdit(t *testing.T) {
	app := copyApp(t, "HD")
	nFiles := countSourceFiles(t, app.Dir)
	if nFiles < 2 {
		t.Fatalf("need ≥2 source files to distinguish one from all, have %d", nFiles)
	}

	observer := obs.New()
	ca, err := cache.New(cache.Options{Metrics: observer.Reg()})
	if err != nil {
		t.Fatal(err)
	}
	store := source.NewStore(observer.Reg())
	run := func() ([]byte, llm.Usage) {
		opts := core.DefaultOptions()
		opts.Workers = 2
		opts.Cache = ca
		opts.Source = store
		opts.Obs = observer
		w := core.New(opts)
		cr, err := w.RunCorpus([]corpus.App{app})
		if err != nil {
			t.Fatal(err)
		}
		data, err := report.Marshal(report.Build(cr))
		if err != nil {
			t.Fatal(err)
		}
		return data, w.LLMUsage()
	}

	// Cold: every file parses and extracts once.
	cold, _ := run()
	s0 := observer.Reg().Snapshot()
	if got := s0.Counter("source_parse_total"); got != nFiles {
		t.Fatalf("cold parses = %d, want %d", got, nFiles)
	}
	if got := s0.Counter("source_derived_computes_total", "kind", sast.ExtractKind); got != nFiles {
		t.Fatalf("cold extractions = %d, want %d", got, nFiles)
	}

	// Warm: bytes re-read (change detection), zero parses, zero
	// extractions — the analysis comes from the manifest-keyed cache and
	// the reviews from the review cache. Same bytes out, no fresh spend.
	warm, warmFresh := run()
	s1 := observer.Reg().Snapshot()
	if !bytes.Equal(cold, warm) {
		t.Fatal("warm report differs from cold")
	}
	if warmFresh != (llm.Usage{}) {
		t.Fatalf("warm run spent fresh LLM traffic: %+v", warmFresh)
	}
	if d := counterDelta(s1, s0, "source_parse_total"); d != 0 {
		t.Fatalf("warm run parsed %d files, want 0", d)
	}
	if d := counterDelta(s1, s0, "source_reuse_total"); d != nFiles {
		t.Fatalf("warm reuses = %d, want %d", d, nFiles)
	}
	if d := counterDelta(s1, s0, "source_derived_computes_total", "kind", sast.ExtractKind); d != 0 {
		t.Fatalf("warm run re-extracted %d files, want 0", d)
	}

	// Edit one file: exactly one parse, one extraction, one review miss.
	entries, err := os.ReadDir(app.Dir)
	if err != nil {
		t.Fatal(err)
	}
	var touched string
	for _, e := range entries {
		if !e.IsDir() && source.IsSourceFile(e.Name()) {
			touched = filepath.Join(app.Dir, e.Name())
			break
		}
	}
	src, err := os.ReadFile(touched)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(touched, append(src, []byte("\n// touched by snapshot_test\n")...), 0o644); err != nil {
		t.Fatal(err)
	}
	missBefore := ca.Stats().Misses[cache.StageReview]
	_, editFresh := run()
	s2 := observer.Reg().Snapshot()
	if d := counterDelta(s2, s1, "source_parse_total"); d != 1 {
		t.Fatalf("post-edit parses = %d, want exactly 1", d)
	}
	if d := counterDelta(s2, s1, "source_reuse_total"); d != nFiles-1 {
		t.Fatalf("post-edit reuses = %d, want %d", d, nFiles-1)
	}
	if d := counterDelta(s2, s1, "source_derived_computes_total", "kind", sast.ExtractKind); d != 1 {
		t.Fatalf("post-edit extractions = %d, want exactly 1", d)
	}
	if d := counterDelta(s2, s1, "source_derived_reuse_total", "kind", sast.ExtractKind); d != nFiles-1 {
		t.Fatalf("post-edit extraction reuses = %d, want %d", d, nFiles-1)
	}
	if d := ca.Stats().Misses[cache.StageReview] - missBefore; d != 1 {
		t.Fatalf("post-edit review misses = %d, want exactly 1", d)
	}
	if editFresh.TokensIn == 0 {
		t.Fatal("edited file was not re-reviewed")
	}
}
