package core

import (
	"testing"

	"wasabi/internal/apps/corpus"
	"wasabi/internal/oracle"
)

func identifyHDFS(t *testing.T) (*Wasabi, corpus.App, *Identification) {
	t.Helper()
	app, err := corpus.ByCode("HD")
	if err != nil {
		t.Fatal(err)
	}
	w := New(DefaultOptions())
	id, err := w.Identify(app)
	if err != nil {
		t.Fatal(err)
	}
	return w, app, id
}

func structByCoordinator(id *Identification, name string) *Structure {
	for i := range id.Structures {
		if id.Structures[i].Coordinator == name {
			return &id.Structures[i]
		}
	}
	return nil
}

func TestIdentifyMergesTechniques(t *testing.T) {
	_, _, id := identifyHDFS(t)
	fetch := structByCoordinator(id, "hdfs.WebFS.Fetch")
	if fetch == nil {
		t.Fatal("WebFS.Fetch not identified")
	}
	if !fetch.FoundBy.CodeQL || !fetch.FoundBy.LLM {
		t.Errorf("Fetch should be found by both techniques: %+v", fetch.FoundBy)
	}
	// Non-keyworded loop: LLM only.
	fc := structByCoordinator(id, "hdfs.BlockFetcher.FetchChecksummed")
	if fc == nil {
		t.Fatal("FetchChecksummed not identified at all")
	}
	if fc.FoundBy.CodeQL {
		t.Error("FetchChecksummed must be invisible to the keyword-filtered analysis")
	}
	// Queue retry: LLM only.
	pt := structByCoordinator(id, "hdfs.Balancer.processTask")
	if pt == nil || pt.FoundBy.CodeQL {
		t.Errorf("processTask should be LLM-only: %+v", pt)
	}
	if len(pt.Triplets) == 0 {
		t.Error("processTask triplets should be resolved via CalleesOf")
	}
}

func TestIdentifyCountsAblation(t *testing.T) {
	_, _, id := identifyHDFS(t)
	if id.CandidateLoops <= id.KeywordedLoops {
		t.Errorf("candidates %d should exceed keyword-filtered %d", id.CandidateLoops, id.KeywordedLoops)
	}
}

func TestDynamicWorkflowFindsSeededBugs(t *testing.T) {
	w, app, id := identifyHDFS(t)
	res, err := w.RunDynamic(app, id)
	if err != nil {
		t.Fatal(err)
	}
	byKind := map[oracle.Kind][]string{}
	for _, r := range res.Reports {
		byKind[r.Kind] = append(byKind[r.Kind], r.Coordinator+" ["+r.GroupKey+"]")
	}
	t.Logf("dynamic reports: %+v", byKind)

	wantCoordinator := func(kind oracle.Kind, coordinator string) {
		for _, r := range res.Reports {
			if r.Kind == kind && r.Coordinator == coordinator {
				return
			}
		}
		t.Errorf("missing %s report for %s; got %v", kind, coordinator, byKind[kind])
	}
	// True seeded bugs that the suite covers.
	wantCoordinator(oracle.MissingCap, "hdfs.EditLogTailer.CatchUp")
	wantCoordinator(oracle.MissingCap, "hdfs.DataStreamer.WritePacketGroup")
	wantCoordinator(oracle.MissingDelay, "hdfs.DataStreamer.SetupPipeline")
	wantCoordinator(oracle.How, "hdfs.DFSInputStream.ReadBlock")
	// Known false-positive modes reproduced from §4.3.
	wantCoordinator(oracle.MissingCap, "hdfs.Checkpointer.UploadImage") // harness re-drives
	wantCoordinator(oracle.MissingDelay, "hdfs.DFSInputStream.ReadWithFailover")

	// Correct structures must not be reported.
	for _, r := range res.Reports {
		switch r.Coordinator {
		case "hdfs.WebFS.Fetch", "hdfs.NamenodeRPC.Call", "hdfs.Balancer.processTask", "hdfs.Mover.MoveBlock":
			t.Errorf("correct structure reported: %+v", r)
		}
	}
}

func TestDynamicWorkflowStatistics(t *testing.T) {
	w, app, id := identifyHDFS(t)
	res, err := w.RunDynamic(app, id)
	if err != nil {
		t.Fatal(err)
	}
	if res.TestsTotal != len(app.Suite.Tests) {
		t.Errorf("TestsTotal = %d", res.TestsTotal)
	}
	if res.TestsCoveringRetry == 0 || res.TestsCoveringRetry > res.TestsTotal {
		t.Errorf("TestsCoveringRetry = %d", res.TestsCoveringRetry)
	}
	if res.StructuresTested == 0 || res.StructuresTested > res.StructuresTotal {
		t.Errorf("structures tested/total = %d/%d", res.StructuresTested, res.StructuresTotal)
	}
	if res.PlannedRuns >= res.NaiveRuns {
		t.Errorf("planning should reduce runs: %d vs %d", res.PlannedRuns, res.NaiveRuns)
	}
	if res.StrippedOverrides == 0 {
		t.Error("expected at least one stripped retry-restricting override")
	}
}

func TestStaticWorkflowWhenBugs(t *testing.T) {
	w, app, id := identifyHDFS(t)
	st := w.RunStatic(app, id)
	kinds := map[string]bool{}
	for _, r := range st.WhenReports {
		kinds[r.Coordinator+"/"+r.Kind] = true
	}
	for _, want := range []string{
		"hdfs.EditLogTailer.CatchUp/missing-cap",
		"hdfs.LeaseRenewer.Renew/missing-delay",
		"hdfs.RegistrationProc.Step/missing-delay", // uncovered by tests: static-only
	} {
		if !kinds[want] {
			t.Errorf("missing static WHEN report %s; got %v", want, kinds)
		}
	}
	if st.Usage.Calls == 0 {
		t.Error("LLM usage should be accounted")
	}
}

func TestIFAnalysisRuns(t *testing.T) {
	w, _, id := identifyHDFS(t)
	ratios, reports := w.RunIFAnalysis([]*Identification{id})
	if len(ratios) == 0 {
		t.Fatal("no exception ratios computed")
	}
	// HDFS alone is policy-consistent; outliers appear corpus-wide.
	t.Logf("IF reports on HDFS alone: %+v", reports)
}

func TestVerifySources(t *testing.T) {
	app, _ := corpus.ByCode("HD")
	if err := VerifySources(app); err != nil {
		t.Errorf("VerifySources = %v", err)
	}
	app.Dir = "/nonexistent"
	if err := VerifySources(app); err == nil {
		t.Error("expected error for missing directory")
	}
}
