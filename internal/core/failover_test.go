package core

import (
	"testing"

	"wasabi/internal/apps/corpus"
	"wasabi/internal/llm"
	"wasabi/internal/obs"
)

// failoverRun executes the full pipeline with reviews routed across a
// multi-backend topology and returns the run plus its metrics snapshot.
func failoverRun(t *testing.T, spec string, workers int) (*CorpusRun, obs.Snapshot) {
	t.Helper()
	specs, err := llm.ParseBackends(spec)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Workers = workers
	opts.Obs = obs.New()
	opts.LLM.Backends = specs
	cr, err := New(opts).RunCorpus(corpus.Apps())
	if err != nil {
		t.Fatalf("backends %q workers %d: %v", spec, workers, err)
	}
	return cr, opts.Obs.Reg().Snapshot()
}

// TestPrimaryOutageFailoverZeroDegraded is the headline availability
// claim: a hard primary outage with a healthy secondary completes the
// full corpus through failover with ZERO degraded files, and — because
// review answers are a pure function of (config, path, contents), the
// transport only delivers or fails — the pipeline output is
// byte-identical to a healthy single-backend run. Run under -race (make
// chaos does): the routing layer is concurrent by construction.
func TestPrimaryOutageFailoverZeroDegraded(t *testing.T) {
	healthy, _ := chaosRun(t, nil, 4)
	cr, snap := failoverRun(t, "primary=sim:outage;secondary=sim", 4)

	if cr.Degraded {
		t.Fatal("run marked degraded despite a healthy secondary")
	}
	for _, ar := range cr.Apps {
		if n := len(ar.ID.Degraded); n != 0 {
			t.Errorf("%s: %d degraded files, want 0 (first: %+v)", ar.App.Code, n, ar.ID.Degraded[0])
		}
	}
	if got, want := renderRun(cr), renderRun(healthy); got != want {
		t.Error("failover output differs from the healthy baseline")
	}

	// Every review failed over: the secondary carried the corpus.
	failovers, primaryFails := int64(0), int64(0)
	for _, c := range snap.Counters {
		switch {
		case c.Name == "llm_backend_failovers_total" && hasLabel([]obs.Label(c.Labels), "backend", "secondary"):
			failovers += c.Value
		case c.Name == "llm_backend_failures_total" && hasLabel([]obs.Label(c.Labels), "backend", "primary"):
			primaryFails += c.Value
		}
	}
	if failovers == 0 {
		t.Error("no failovers recorded into the secondary")
	}
	if primaryFails == 0 {
		t.Error("no primary failures recorded")
	}
}

// TestFlakyPrimaryFailoverMatchesBaseline: a heavily transient primary
// with a healthy secondary also converges on the healthy baseline —
// whatever the primary drops, retries or the secondary absorb.
func TestFlakyPrimaryFailoverMatchesBaseline(t *testing.T) {
	healthy, _ := chaosRun(t, nil, 4)
	cr, _ := failoverRun(t, "primary=sim:heavy;secondary=sim", 4)
	if cr.Degraded {
		t.Fatal("run marked degraded despite a healthy secondary")
	}
	if got, want := renderRun(cr), renderRun(healthy); got != want {
		t.Error("flaky-primary failover output differs from the healthy baseline")
	}
}

// TestSingleHealthyBackendMatchesBaseline: routing through a one-entry
// topology is output-equivalent to no routing at all — multi-backend
// mode adds availability machinery, not answers.
func TestSingleHealthyBackendMatchesBaseline(t *testing.T) {
	healthy, _ := chaosRun(t, nil, 2)
	cr, _ := failoverRun(t, "only=sim", 2)
	if got, want := renderRun(cr), renderRun(healthy); got != want {
		t.Error("single-backend routed output differs from the unrouted baseline")
	}
}

// hasLabel reports whether a snapshot label set carries key=value.
func hasLabel(labels []obs.Label, key, value string) bool {
	for _, l := range labels {
		if l.Key == key && l.Value == value {
			return true
		}
	}
	return false
}
