package core

import (
	"fmt"
	"strings"
	"testing"

	"wasabi/internal/apps/corpus"
	"wasabi/internal/llm"
	"wasabi/internal/obs"
)

// chaosRun executes the full pipeline against a faulty LLM backend and
// returns the run plus its metrics snapshot.
func chaosRun(t *testing.T, profile *llm.FaultProfile, workers int) (*CorpusRun, obs.Snapshot) {
	t.Helper()
	opts := DefaultOptions()
	opts.Workers = workers
	opts.Obs = obs.New()
	opts.LLM.Fault = profile
	cr, err := New(opts).RunCorpus(corpus.Apps())
	if err != nil {
		t.Fatalf("profile %v workers %d: %v", profile, workers, err)
	}
	return cr, opts.Obs.Reg().Snapshot()
}

// renderRun canonically renders everything the CLI would print from a
// CorpusRun — identification, degradations, dynamic and static reports,
// IF analysis, usage — so byte-equality of two renders is byte-equality
// of pipeline output.
func renderRun(cr *CorpusRun) string {
	var b strings.Builder
	for _, ar := range cr.Apps {
		fmt.Fprintf(&b, "== %s ==\n", ar.App.Code)
		fmt.Fprintf(&b, "structures=%d keyworded=%d candidates=%d truncated=%d\n",
			len(ar.ID.Structures), ar.ID.KeywordedLoops, ar.ID.CandidateLoops, len(ar.ID.TruncatedFiles))
		for _, s := range ar.ID.Structures {
			fmt.Fprintf(&b, "  %s %s codeql=%v llm=%v triplets=%d\n",
				s.Coordinator, s.Mechanism, s.FoundBy.CodeQL, s.FoundBy.LLM, len(s.Triplets))
		}
		for _, d := range ar.ID.Degraded {
			fmt.Fprintf(&b, "  DEGRADED %s %s\n", d.File, d.Reason)
		}
		fmt.Fprintf(&b, "dynamic: %d/%d covered, plan=%d, failed=%d\n",
			ar.Dyn.TestsCoveringRetry, ar.Dyn.TestsTotal, ar.Dyn.PlanEntries, ar.Dyn.InjectionRunsFailed)
		for _, r := range ar.Dyn.Reports {
			fmt.Fprintf(&b, "  [%s] %s %s (%s)\n", r.Kind, r.Coordinator, r.GroupKey, r.Test)
		}
		for _, r := range ar.Static.WhenReports {
			fmt.Fprintf(&b, "  [%s] %s (%s)\n", r.Kind, r.Coordinator, r.File)
		}
		fmt.Fprintf(&b, "usage: %d calls %d tokens\n", ar.Static.Usage.Calls, ar.Static.Usage.TokensIn)
	}
	for _, r := range cr.IFRatios {
		fmt.Fprintf(&b, "ratio %s %d/%d\n", r.Exception, r.Retried, r.Total)
	}
	for _, r := range cr.IFReports {
		fmt.Fprintf(&b, "outlier %s %s %v\n", r.Exception, r.Coordinator, r.Retried)
	}
	fmt.Fprintf(&b, "total: %d calls %d tokens degraded=%v\n", cr.Usage.Calls, cr.Usage.TokensIn, cr.Degraded)
	return b.String()
}

// TestChaosDeterministicAcrossWorkers sweeps fault profiles and asserts
// the determinism contract under chaos: for a fixed (seed, profile), the
// rendered pipeline output AND the metrics counters are byte-identical at
// every worker count — grant decisions, breaker trips and degradations
// must not depend on goroutine scheduling.
func TestChaosDeterministicAcrossWorkers(t *testing.T) {
	profiles := map[string]llm.FaultProfile{
		"zero":   {},
		"light":  {TimeoutDenom: 60, RateLimitDenom: 60, ServerErrorDenom: 60},
		"heavy":  {TimeoutDenom: 15, RateLimitDenom: 15, ServerErrorDenom: 15},
		"mixed":  {TimeoutDenom: 8, RateLimitDenom: 8, ServerErrorDenom: 8, MalformedDenom: 25, OutageAfterFiles: 40},
		"outage": {HardOutage: true},
	}
	for name, profile := range profiles {
		profile := profile
		t.Run(name, func(t *testing.T) {
			var wantRender, wantCounters string
			for _, workers := range []int{1, 2, 4} {
				cr, snap := chaosRun(t, &profile, workers)
				render := renderRun(cr)
				counters, err := snap.CountersJSON()
				if err != nil {
					t.Fatal(err)
				}
				if wantRender == "" {
					wantRender, wantCounters = render, string(counters)
					continue
				}
				if render != wantRender {
					t.Fatalf("workers=%d output differs from workers=1:\n%s\nvs\n%s", workers, render, wantRender)
				}
				if string(counters) != wantCounters {
					t.Fatalf("workers=%d counters differ from workers=1:\n%s\nvs\n%s", workers, counters, wantCounters)
				}
			}
		})
	}
}

// TestZeroFaultProfileMatchesNoTransport: enabling the resilience
// machinery with a fault-free profile must reproduce the no-transport
// pipeline byte-for-byte — admission, budget sequencing and the breaker
// leave no trace when nothing fails.
func TestZeroFaultProfileMatchesNoTransport(t *testing.T) {
	baseline, baseSnap := chaosRun(t, nil, 2)
	zero, zeroSnap := chaosRun(t, &llm.FaultProfile{}, 2)
	if renderRun(baseline) != renderRun(zero) {
		t.Fatal("zero-fault profile changed pipeline output")
	}
	b, err := baseSnap.CountersJSON()
	if err != nil {
		t.Fatal(err)
	}
	z, err := zeroSnap.CountersJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != string(z) {
		t.Fatalf("zero-fault profile changed counters:\n%s\nvs\n%s", z, b)
	}
}

// TestHardOutageDegradesGracefully: with the backend hard-down the run
// must complete the whole corpus in static-only degraded mode — no error,
// every file review degraded, zero files reviewed, zero LLM spend — and
// pipeline_degraded_files_total must equal the number of LLM-skipped
// files.
func TestHardOutageDegradesGracefully(t *testing.T) {
	cr, snap := chaosRun(t, &llm.FaultProfile{HardOutage: true}, 4)

	if !cr.Degraded {
		t.Error("run with a hard outage must be marked Degraded")
	}
	totalFiles, degraded := 0, 0
	for _, ar := range cr.Apps {
		totalFiles += len(ar.ID.Reviews)
		degraded += len(ar.ID.Degraded)
		// Static structural identification must still function.
		if ar.ID.KeywordedLoops == 0 {
			t.Errorf("%s: static identification found nothing under outage", ar.App.Code)
		}
		for _, rev := range ar.ID.Reviews {
			if !rev.Degraded {
				t.Errorf("%s: review of %s not degraded under hard outage", ar.App.Code, rev.File)
			}
			if rev.Spent != (llm.Usage{}) {
				t.Errorf("%s: degraded review of %s charged %+v", ar.App.Code, rev.File, rev.Spent)
			}
		}
		// LLM-dependent WHEN reports necessarily vanish.
		if len(ar.Static.WhenReports) != 0 {
			t.Errorf("%s: %d WHEN reports from a dead backend", ar.App.Code, len(ar.Static.WhenReports))
		}
	}
	if degraded != totalFiles || totalFiles == 0 {
		t.Fatalf("degraded %d of %d files, want all (and a non-empty corpus)", degraded, totalFiles)
	}
	if got := snap.Counter("pipeline_degraded_files_total"); got != int64(degraded) {
		t.Errorf("pipeline_degraded_files_total = %d, want %d (the LLM-skipped files)", got, degraded)
	}
	if got := snap.Counter("llm_files_reviewed_total"); got != 0 {
		t.Errorf("llm_files_reviewed_total = %d under hard outage, want 0", got)
	}
	if cr.Usage != (llm.Usage{}) {
		t.Errorf("run charged LLM usage %+v under hard outage, want zero", cr.Usage)
	}
	// The breaker must have tripped: outage failures open it, and skipped
	// reviews are the cheap path.
	if got := snap.Counter("llm_breaker_transitions_total", "to", "open"); got == 0 {
		t.Error("hard outage never opened the circuit breaker")
	}
	if got := snap.Counter("pipeline_degraded_reason_total", "reason", llm.DegradedBreakerOpen); got == 0 {
		t.Error("no reviews were skipped by the open breaker")
	}
}

// TestBudgetExhaustionDegradesNotFails: a strict no-refill budget far
// smaller than the corpus's retry demand must produce budget-exhausted
// degradations — and only degrade, never error.
func TestBudgetExhaustionDegradesNotFails(t *testing.T) {
	opts := DefaultOptions()
	opts.Workers = 2
	opts.Obs = obs.New()
	opts.LLM.Fault = &llm.FaultProfile{TimeoutDenom: 4, RateLimitDenom: 4, ServerErrorDenom: 4}
	opts.LLM.Resilience = llm.ResilienceConfig{BudgetCapacity: 2, BudgetRefillEvery: -1}
	cr, err := New(opts).RunCorpus(corpus.Apps())
	if err != nil {
		t.Fatal(err)
	}
	snap := opts.Obs.Reg().Snapshot()
	if got := snap.Counter("llm_retry_budget_exhausted_total"); got == 0 {
		t.Fatal("a 2-token budget against ~25% fault rates never ran dry")
	}
	found := false
	for _, d := range cr.DegradedFiles() {
		if d.Reason == llm.DegradedBudget {
			found = true
		}
	}
	if !found {
		t.Error("no file carries a budget-exhausted degradation record")
	}
	if cr.Degraded {
		t.Error("budget exhaustion must not mark the whole run degraded (that is reserved for outage)")
	}
}
