// Package core orchestrates WASABI's two workflows over a corpus
// application: the dynamic testing workflow (identify retry locations →
// plan → inject trigger exceptions into existing unit tests → apply retry
// oracles, §3.1) and the static checking workflow (LLM WHEN-bug detection
// + retry-ratio IF-bug detection, §3.2).
//
// Both workflows execute on a bounded worker pool (Options.Workers, see
// parallel.go): applications, per-file LLM reviews, and independent
// fault-injection plan entries fan out concurrently, and results merge
// through deterministic reducers so every artifact is byte-identical to
// the sequential (Workers=1) execution. docs/ARCHITECTURE.md diagrams the
// pipeline.
package core

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"wasabi/internal/apps/corpus"
	"wasabi/internal/fault"
	"wasabi/internal/llm"
	"wasabi/internal/oracle"
	"wasabi/internal/planner"
	"wasabi/internal/sast"
	"wasabi/internal/testkit"
)

// Options configures a WASABI run.
type Options struct {
	// HowK and CapK are the two injection-count settings (§3.1.2).
	HowK, CapK int
	// Workers bounds the worker pool the pipeline fans out on: corpus
	// applications, per-file LLM reviews, and independent fault-injection
	// plan entries all run on at most Workers goroutines. Zero means
	// runtime.GOMAXPROCS(0); 1 runs everything inline on the calling
	// goroutine, reproducing the original sequential execution exactly.
	// Results are byte-identical at every setting (see parallel.go).
	Workers int
	// Oracle tunes the test oracles.
	Oracle oracle.Options
	// LLM tunes the simulated model.
	LLM llm.Config
	// Ratio tunes the IF-bug outlier analysis.
	Ratio sast.RatioOptions
}

// DefaultOptions mirrors the paper's configuration and uses one worker per
// available CPU.
func DefaultOptions() Options {
	return Options{
		HowK:    1,
		CapK:    100,
		Workers: runtime.GOMAXPROCS(0),
		Oracle:  oracle.DefaultOptions(),
		LLM:     llm.DefaultConfig(),
		Ratio:   sast.DefaultRatioOptions(),
	}
}

// Wasabi is the toolkit facade.
type Wasabi struct {
	opts Options
	llm  *llm.Client
	// sem is the worker-pool semaphore shared by every parallel loop of
	// this toolkit instance, so nested fan-out (apps × plan entries) stays
	// bounded by Workers in total. See parallelFor in parallel.go.
	sem chan struct{}
}

// New returns a toolkit with the given options.
func New(opts Options) *Wasabi {
	if opts.CapK == 0 {
		workers := opts.Workers
		opts = DefaultOptions()
		opts.Workers = workers
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	return &Wasabi{
		opts: opts,
		llm:  llm.NewClient(opts.LLM),
		// The calling goroutine always participates in parallel loops, so
		// the pool itself holds Workers-1 extra slots.
		sem: make(chan struct{}, opts.Workers-1),
	}
}

// LLMUsage reports accumulated simulated-GPT-4 usage.
func (w *Wasabi) LLMUsage() llm.Usage { return w.llm.Usage() }

// FoundBy records which identification technique(s) located a structure.
type FoundBy struct {
	CodeQL bool
	LLM    bool
}

// Structure is one identified retry code structure, merged across the two
// identification techniques.
type Structure struct {
	Coordinator string
	File        string
	Mechanism   string // best-effort: "loop" | "queue" | "statemachine"
	FoundBy     FoundBy
	// Triplets are the injectable retry locations of the structure.
	Triplets []fault.Location
}

// Identification is the result of running both identification techniques
// over one application.
type Identification struct {
	App string
	// Structures are the merged identified retry structures, sorted by
	// coordinator.
	Structures []Structure
	// CandidateLoops counts structural loop candidates before the
	// keyword filter (§4.4 ablation).
	CandidateLoops int
	// KeywordedLoops counts loops surviving the keyword filter.
	KeywordedLoops int
	// TruncatedFiles are files too large for the LLM (§4.2 misses).
	TruncatedFiles []string
	// Analysis is the underlying static analysis (reused by IF checks).
	Analysis *sast.Analysis
	// Reviews are the raw per-file LLM reviews (reused by static WHEN
	// detection).
	Reviews []llm.FileReview
}

// Locations returns every injectable triplet across all structures.
func (id *Identification) Locations() []fault.Location {
	var out []fault.Location
	for _, s := range id.Structures {
		out = append(out, s.Triplets...)
	}
	return out
}

// Identify runs both retry-identification techniques (§3.1.1) on the app.
func (w *Wasabi) Identify(app corpus.App) (*Identification, error) {
	analysis, err := sast.AnalyzeDir(app.Dir)
	if err != nil {
		return nil, fmt.Errorf("identify %s: %w", app.Code, err)
	}
	id := &Identification{
		App:            app.Code,
		CandidateLoops: analysis.CandidateLoops,
		KeywordedLoops: len(analysis.Loops),
		Analysis:       analysis,
	}
	merged := make(map[string]*Structure)

	// Technique 1: control-flow + naming (CodeQL analogue).
	for _, loop := range analysis.Loops {
		s := merged[loop.Coordinator]
		if s == nil {
			s = &Structure{Coordinator: loop.Coordinator, File: loop.File, Mechanism: "loop"}
			merged[loop.Coordinator] = s
		}
		s.FoundBy.CodeQL = true
		for _, t := range loop.Triplets {
			s.Triplets = append(s.Triplets, fault.Location{
				Coordinator: t.Coordinator, Retried: t.Retried, Exception: t.Exception,
			})
		}
	}

	// Technique 2: LLM fuzzy comprehension, with callee/throws resolution
	// delegated back to traditional analysis. Reviews are pure per-file
	// functions, so they fan out across the worker pool; the merge below
	// stays sequential in sorted file order, which keeps the identification
	// byte-identical at every Workers setting.
	files := make([]string, 0, len(analysis.Files))
	for f := range analysis.Files {
		files = append(files, f)
	}
	sort.Strings(files)
	reviews := make([]llm.FileReview, len(files))
	errs := make([]error, len(files))
	w.parallelFor(len(files), func(i int) {
		reviews[i], errs[i] = w.llm.ReviewFile(filepath.Join(app.Dir, files[i]))
	})
	for i, f := range files {
		rev := reviews[i]
		if errs[i] != nil {
			return nil, fmt.Errorf("identify %s: %w", app.Code, errs[i])
		}
		id.Reviews = append(id.Reviews, rev)
		if rev.TruncatedContext {
			id.TruncatedFiles = append(id.TruncatedFiles, f)
			continue
		}
		for _, find := range rev.Findings {
			s := merged[find.Coordinator]
			if s == nil {
				s = &Structure{Coordinator: find.Coordinator, File: find.File, Mechanism: find.Mechanism}
				merged[find.Coordinator] = s
			}
			s.FoundBy.LLM = true
			if s.Mechanism == "loop" && find.Mechanism != "loop" {
				s.Mechanism = find.Mechanism
			}
			for _, t := range analysis.CalleesOf(find.Coordinator) {
				s.Triplets = append(s.Triplets, fault.Location{
					Coordinator: t.Coordinator, Retried: t.Retried, Exception: t.Exception,
				})
			}
		}
	}

	for _, s := range merged {
		s.Triplets = dedupLocations(s.Triplets)
		id.Structures = append(id.Structures, *s)
	}
	sort.Slice(id.Structures, func(i, j int) bool {
		return id.Structures[i].Coordinator < id.Structures[j].Coordinator
	})
	return id, nil
}

func dedupLocations(locs []fault.Location) []fault.Location {
	seen := make(map[fault.Location]bool, len(locs))
	var out []fault.Location
	for _, l := range locs {
		if !seen[l] {
			seen[l] = true
			out = append(out, l)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Retried != out[j].Retried {
			return out[i].Retried < out[j].Retried
		}
		return out[i].Exception < out[j].Exception
	})
	return out
}

// DynamicResult is the outcome of the repurposed-unit-testing workflow on
// one application.
type DynamicResult struct {
	App string
	// Reports are the deduplicated oracle reports (distinct bugs).
	Reports []oracle.Report
	// Coverage statistics.
	TestsTotal          int
	TestsCoveringRetry  int
	StructuresTotal     int
	StructuresTested    int
	StrippedOverrides   int
	PlanEntries         int
	NaiveRuns           int
	PlannedRuns         int
	InjectionRunsFailed int // runs that crashed (before oracle filtering)
}

// RunDynamic executes the dynamic workflow for one app, given its
// identification.
func (w *Wasabi) RunDynamic(app corpus.App, id *Identification) (*DynamicResult, error) {
	locs := id.Locations()
	cov := planner.Collect(app.Suite, locs)
	plan := planner.BuildPlan(cov)

	testsByName := make(map[string]testkit.Test, len(app.Suite.Tests))
	for _, t := range app.Suite.Tests {
		testsByName[t.Name] = t
	}

	// Every plan entry owns its injector and trace (testkit.Run builds a
	// fresh trace.Run per execution), so entries are independent and fan
	// out across the worker pool. Per-entry reports are kept in plan order
	// and flattened sequentially below, which makes the assembled report
	// stream — and therefore the first-report-wins dedup — byte-identical
	// to the sequential execution at every Workers setting.
	type entryOutcome struct {
		reports []oracle.Report
		failed  int
		err     error
	}
	outcomes := make([]entryOutcome, len(plan))
	w.parallelFor(len(plan), func(i int) {
		entry := plan[i]
		out := &outcomes[i]
		test, ok := testsByName[entry.Test]
		if !ok {
			out.err = fmt.Errorf("plan references unknown test %s", entry.Test)
			return
		}
		for _, exc := range planner.Exceptions(locs, entry.Loc) {
			loc := fault.Location{Coordinator: entry.Loc.Coordinator, Retried: entry.Loc.Retried, Exception: exc}
			for _, k := range []int{w.opts.HowK, w.opts.CapK} {
				rules := []fault.Rule{{Loc: loc, K: k}}
				res := testkit.Run(test, fault.NewInjector(rules), cov.Prepared[test.Name])
				if res.Failed() {
					out.failed++
				}
				out.reports = append(out.reports, oracle.Evaluate(app.Code, res, rules, w.opts.Oracle)...)
			}
		}
	})
	var all []oracle.Report
	failed := 0
	for _, out := range outcomes {
		if out.err != nil {
			return nil, out.err
		}
		all = append(all, out.reports...)
		failed += out.failed
	}

	tested := make(map[string]bool)
	for p := range cov.Covered() {
		tested[p.Coordinator] = true
	}

	return &DynamicResult{
		App:                 app.Code,
		Reports:             oracle.Dedup(all),
		TestsTotal:          len(app.Suite.Tests),
		TestsCoveringRetry:  cov.CoveringTests(),
		StructuresTotal:     len(id.Structures),
		StructuresTested:    len(tested),
		StrippedOverrides:   cov.Stripped,
		PlanEntries:         len(plan),
		NaiveRuns:           planner.NaiveRuns(cov, locs),
		PlannedRuns:         planner.PlannedRuns(plan, locs),
		InjectionRunsFailed: failed,
	}, nil
}

// StaticResult is the outcome of the static checking workflow for one app.
type StaticResult struct {
	App string
	// WhenReports are the LLM's missing-cap/missing-delay findings.
	WhenReports []llm.WhenReport
	// Usage is the LLM traffic attributable to this app: the sum over its
	// file reviews. It is independent of how apps are scheduled across
	// workers (a cumulative snapshot would not be).
	Usage llm.Usage
}

// RunStatic executes the LLM-based WHEN-bug detection for one app using
// the reviews gathered during identification.
func (w *Wasabi) RunStatic(app corpus.App, id *Identification) *StaticResult {
	var reports []llm.WhenReport
	var usage llm.Usage
	for _, rev := range id.Reviews {
		reports = append(reports, llm.DetectWhenBugs(rev)...)
		usage.Add(rev.Spent)
	}
	sort.Slice(reports, func(i, j int) bool {
		if reports[i].Coordinator != reports[j].Coordinator {
			return reports[i].Coordinator < reports[j].Coordinator
		}
		return reports[i].Kind < reports[j].Kind
	})
	return &StaticResult{App: app.Code, WhenReports: reports, Usage: usage}
}

// RunIFAnalysis runs the corpus-wide retry-ratio IF-bug detection over the
// given identifications (§3.2.2).
func (w *Wasabi) RunIFAnalysis(ids []*Identification) ([]sast.ExceptionRatio, []sast.IFReport) {
	var analyses []*sast.Analysis
	for _, id := range ids {
		analyses = append(analyses, id.Analysis)
	}
	return sast.RatioAnalysis(analyses, w.opts.Ratio)
}

// VerifySources sanity-checks that an app directory exists and contains Go
// sources; used by the CLI for friendlier errors.
func VerifySources(app corpus.App) error {
	entries, err := os.ReadDir(app.Dir)
	if err != nil {
		return fmt.Errorf("app %s: %w", app.Code, err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".go") {
			return nil
		}
	}
	return fmt.Errorf("app %s: no Go sources in %s", app.Code, app.Dir)
}
