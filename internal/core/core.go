// Package core orchestrates WASABI's two workflows over a corpus
// application: the dynamic testing workflow (identify retry locations →
// plan → inject trigger exceptions into existing unit tests → apply retry
// oracles, §3.1) and the static checking workflow (LLM WHEN-bug detection
// + retry-ratio IF-bug detection, §3.2).
//
// Both workflows execute on a bounded worker pool (Options.Workers, see
// parallel.go): applications, per-file LLM reviews, and independent
// fault-injection plan entries fan out concurrently, and results merge
// through deterministic reducers so every artifact is byte-identical to
// the sequential (Workers=1) execution. docs/ARCHITECTURE.md diagrams the
// pipeline.
package core

import (
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"wasabi/internal/apps/corpus"
	"wasabi/internal/cache"
	"wasabi/internal/fault"
	"wasabi/internal/llm"
	"wasabi/internal/obs"
	"wasabi/internal/oracle"
	"wasabi/internal/planner"
	"wasabi/internal/sast"
	"wasabi/internal/source"
	"wasabi/internal/testkit"
)

// Options configures a WASABI run.
type Options struct {
	// HowK and CapK are the two injection-count settings (§3.1.2).
	HowK, CapK int
	// Workers bounds the worker pool the pipeline fans out on: corpus
	// applications, per-file LLM reviews, and independent fault-injection
	// plan entries all run on at most Workers goroutines. Zero means
	// runtime.GOMAXPROCS(0); 1 runs everything inline on the calling
	// goroutine, reproducing the original sequential execution exactly.
	// Results are byte-identical at every setting (see parallel.go).
	Workers int
	// Oracle tunes the test oracles.
	Oracle oracle.Options
	// LLM tunes the simulated model.
	LLM llm.Config
	// Ratio tunes the IF-bug outlier analysis.
	Ratio sast.RatioOptions
	// Obs, when non-nil, observes the run: pipeline stages become spans,
	// and every layer reports metrics into Obs.Metrics (catalog in
	// docs/OBSERVABILITY.md). Counter values are byte-identical at every
	// Workers setting; timings and spans are honest measurements. Nil
	// disables observability at the cost of a nil check per event.
	Obs *obs.Observer
	// Cache, when non-nil, memoizes the identify stage across runs
	// (docs/SERVICE.md): per-app static analyses keyed by directory
	// content, and — on a fault-free backend — per-file LLM reviews
	// keyed by (config fingerprint, path, content hash). A warm run
	// over unchanged sources produces byte-identical results with zero
	// fresh LLM spend; runs with an LLM fault profile bypass the review
	// tier (their admissions depend on run-global order, so per-file
	// memoization would be unsound) but still reuse static analyses.
	Cache *cache.Cache
	// Source, when non-nil, is the parse-once snapshot store every
	// stage loads corpus bytes through (docs/PERFORMANCE.md). The
	// daemon passes one long-lived store so a warm job re-parses only
	// changed files; nil builds a fresh per-toolkit store, which still
	// guarantees each file is read and parsed exactly once per run.
	Source *source.Store
}

// DefaultOptions mirrors the paper's configuration and uses one worker per
// available CPU.
func DefaultOptions() Options {
	return Options{
		HowK:    1,
		CapK:    100,
		Workers: runtime.GOMAXPROCS(0),
		Oracle:  oracle.DefaultOptions(),
		LLM:     llm.DefaultConfig(),
		Ratio:   sast.DefaultRatioOptions(),
	}
}

// Wasabi is the toolkit facade.
type Wasabi struct {
	opts Options
	llm  *llm.Client
	obs  *obs.Observer
	// cache is Options.Cache; nil disables memoization.
	cache *cache.Cache
	// llmFP is the review-cache fingerprint of the LLM configuration,
	// and reviewCache gates the review tier: it is false when a fault
	// profile is configured, because fault-profile admissions depend on
	// run-global ordering that per-file memoization cannot reproduce.
	reviewCache bool
	// src is the parse-once snapshot store (Options.Source, or a fresh
	// per-toolkit store): every read of corpus bytes goes through it.
	src *source.Store
	// sem is the worker-pool semaphore shared by every parallel loop of
	// this toolkit instance, so nested fan-out (apps × plan entries) stays
	// bounded by Workers in total. See parallelFor in parallel.go.
	sem chan struct{}
	// active counts in-flight parallelFor tasks (pool-utilization
	// histogram; see parallel.go).
	active atomic.Int64
}

// New returns a toolkit with the given options.
func New(opts Options) *Wasabi {
	if opts.CapK == 0 {
		workers, o, ca, src := opts.Workers, opts.Obs, opts.Cache, opts.Source
		opts = DefaultOptions()
		opts.Workers, opts.Obs, opts.Cache, opts.Source = workers, o, ca, src
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	// The oracle and the LLM client report into the same registry.
	opts.Oracle.Metrics = opts.Obs.Reg()
	w := &Wasabi{
		opts:        opts,
		llm:         llm.NewClient(opts.LLM).Instrument(opts.Obs.Reg()),
		obs:         opts.Obs,
		cache:       opts.Cache,
		// Multi-backend runs are excluded like fault-profile runs: their
		// admissions (failover, hedging, singleflight) are arrival-order
		// facts that per-file memoization cannot reproduce.
		reviewCache: opts.Cache != nil && opts.LLM.Fault == nil && !opts.LLM.MultiBackend(),
		src:         opts.Source,
		// The calling goroutine always participates in parallel loops, so
		// the pool itself holds Workers-1 extra slots.
		sem: make(chan struct{}, opts.Workers-1),
	}
	if w.src == nil {
		w.src = source.NewStore(opts.Obs.Reg())
	}
	w.obs.Reg().Gauge("core_pool_workers").Set(float64(opts.Workers))
	return w
}

// stage opens a stage span (named "stage:app", parented under the app
// span when one exists) and returns the function that closes it,
// recording the stage wall-time histogram and run counter. All of it is
// a no-op when the run is unobserved.
func (w *Wasabi) stage(stage, app string) func() {
	name := stage
	parent := "corpus"
	if app != "" {
		name = stage + ":" + app
		parent = "app:" + app
	}
	sp := w.obs.Trc().Start(name, "stage", "app", app, "parent", parent)
	reg := w.obs.Reg()
	return func() {
		reg.Histogram(obs.StageMetric, obs.LatencyBuckets, "stage", stage).Observe(sp.SinceMS())
		reg.Counter("core_stage_runs_total", "stage", stage).Inc()
		sp.End()
	}
}

// LLMUsage reports accumulated simulated-GPT-4 usage.
func (w *Wasabi) LLMUsage() llm.Usage { return w.llm.Usage() }

// FoundBy records which identification technique(s) located a structure.
type FoundBy struct {
	CodeQL bool
	LLM    bool
}

// Structure is one identified retry code structure, merged across the two
// identification techniques.
type Structure struct {
	Coordinator string
	File        string
	Mechanism   string // best-effort: "loop" | "queue" | "statemachine"
	FoundBy     FoundBy
	// Triplets are the injectable retry locations of the structure.
	Triplets []fault.Location
}

// Identification is the result of running both identification techniques
// over one application.
type Identification struct {
	App string
	// Structures are the merged identified retry structures, sorted by
	// coordinator.
	Structures []Structure
	// CandidateLoops counts structural loop candidates before the
	// keyword filter (§4.4 ablation).
	CandidateLoops int
	// KeywordedLoops counts loops surviving the keyword filter.
	KeywordedLoops int
	// TruncatedFiles are files too large for the LLM (§4.2 misses).
	TruncatedFiles []string
	// Degraded records the files the LLM backend never successfully
	// reviewed (unreliable-backend runs only): the pipeline fell back to
	// static-only analysis for them, and oracles or evaluation harnesses
	// can discount LLM-dependent findings instead of silently
	// under-reporting. Ordered by file name.
	Degraded []DegradedFile
	// Analysis is the underlying static analysis (reused by IF checks).
	Analysis *sast.Analysis
	// Reviews are the raw per-file LLM reviews (reused by static WHEN
	// detection).
	Reviews []llm.FileReview
}

// DegradedFile is one file whose LLM review was degraded away by backend
// faults, with the reason (an llm.Degraded* constant).
type DegradedFile struct {
	File   string
	Reason string
}

// Locations returns every injectable triplet across all structures.
func (id *Identification) Locations() []fault.Location {
	var out []fault.Location
	for _, s := range id.Structures {
		out = append(out, s.Triplets...)
	}
	return out
}

// Identify runs both retry-identification techniques (§3.1.1) on the app.
// Standalone calls settle LLM admissions in arrival order; corpus runs go
// through identifyLane so admissions follow canonical corpus order.
func (w *Wasabi) Identify(app corpus.App) (*Identification, error) {
	return w.identifyLane(app, -1)
}

// identifyLane is Identify pinned to a budget lane (the app's position in
// the corpus input, or -1 outside a sequenced run). Whatever happens, a
// sequenced lane is always opened — with zero claims on early errors — so
// later lanes never wait on it forever.
func (w *Wasabi) identifyLane(app corpus.App, lane int) (*Identification, error) {
	defer w.stage("identify", app.Code)()
	opened := false
	defer func() {
		if lane >= 0 && !opened {
			w.llm.OpenLane(lane, 0)
		}
	}()
	// Load the app's sources through the snapshot store: one read, one
	// hash, and (for changed content) one parse per file, shared by every
	// consumer below — the static analysis, the per-file LLM reviews, and
	// the cache's manifest derivation all work off this snapshot.
	snap, err := w.src.Load(app.Dir)
	if err != nil {
		return nil, fmt.Errorf("identify %s: %w", app.Code, err)
	}
	// With a cache attached, derive the manifest from the snapshot's
	// already-computed hashes: it keys the static-analysis entry and
	// carries the per-file content hashes the review keys need.
	var man *cache.DirManifest
	if w.cache != nil {
		man = cache.FromSnapshot(snap)
	}
	var analysis *sast.Analysis
	if man != nil {
		analysis, _ = w.cache.GetAnalysis(cache.AnalysisKey(app.Dir, man.Digest))
	}
	if analysis == nil {
		// The cache doubles as the portable facts tier (sast.FactsStore):
		// per-file extraction hydrates from disk by content hash, so a
		// restarted daemon rebuilds the analysis at zero parses. The
		// explicit nil keeps the interface nil when no cache is attached.
		var facts sast.FactsStore
		if w.cache != nil {
			facts = w.cache
		}
		analysis, err = sast.AnalyzeSnapshotWith(snap, facts)
		if err != nil {
			return nil, fmt.Errorf("identify %s: %w", app.Code, err)
		}
		if man != nil {
			w.cache.PutAnalysis(cache.AnalysisKey(app.Dir, man.Digest), analysis, man.TotalBytes)
		}
	}
	id := &Identification{
		App:            app.Code,
		CandidateLoops: analysis.CandidateLoops,
		KeywordedLoops: len(analysis.Loops),
		Analysis:       analysis,
	}
	merged := make(map[string]*Structure)

	// Technique 1: control-flow + naming (CodeQL analogue).
	for _, loop := range analysis.Loops {
		s := merged[loop.Coordinator]
		if s == nil {
			s = &Structure{Coordinator: loop.Coordinator, File: loop.File, Mechanism: "loop"}
			merged[loop.Coordinator] = s
		}
		s.FoundBy.CodeQL = true
		for _, t := range loop.Triplets {
			s.Triplets = append(s.Triplets, fault.Location{
				Coordinator: t.Coordinator, Retried: t.Retried, Exception: t.Exception,
			})
		}
	}

	// Technique 2: LLM fuzzy comprehension, with callee/throws resolution
	// delegated back to traditional analysis. Reviews are pure per-file
	// functions consuming the snapshot's bytes and AST (no re-read, no
	// re-parse), so they fan out across the worker pool; the merge below
	// stays sequential in sorted file order, which keeps the identification
	// byte-identical at every Workers setting.
	files := snap.Names()
	if lane >= 0 {
		opened = true
		w.llm.OpenLane(lane, len(files))
	}
	reviews := make([]llm.FileReview, len(files))
	cached := make([]bool, len(files))
	// Review keys are derivable only with a manifest; any run with a
	// fault profile goes to the model.
	useReviewCache := w.reviewCache && man != nil
	var llmFP string
	if useReviewCache {
		llmFP = w.llm.Fingerprint()
	}
	w.parallelFor("reviews", len(files), func(i int) {
		sp := w.obs.Trc().Start("review:"+files[i], "review",
			"app", app.Code, "parent", "identify:"+app.Code)
		// The span records the review's outcome facts ("Daemon tracing"
		// in docs/OBSERVABILITY.md): whether it was served from cache,
		// what it freshly spent, and how the resilient client fared —
		// the per-request provenance that answers "which call retried,
		// which degraded, what did it cost".
		defer func() {
			rev := reviews[i]
			fresh := int64(0)
			// Singleflight followers, like cache hits, carry attributed
			// Spent without having moved fresh tokens upstream.
			if !cached[i] && !rev.Shared {
				fresh = rev.Spent.TokensIn
			}
			sp.SetArg("cached", strconv.FormatBool(cached[i]))
			sp.SetArg("fresh_tokens", strconv.FormatInt(fresh, 10))
			if rev.Backend != "" {
				sp.SetArg("backend", rev.Backend)
			}
			if rev.Shared {
				sp.SetArg("coalesced", "true")
			}
			if rev.Retries > 0 {
				sp.SetArg("retries", strconv.Itoa(rev.Retries))
			}
			if rev.Degraded {
				sp.SetArg("degraded", rev.DegradedReason)
			}
			sp.End()
		}()
		sf := snap.Files[i]
		key := ""
		if useReviewCache {
			key = cache.ReviewKey(llmFP, sf.Path, sf.SHA256)
		}
		if key != "" {
			if rev, ok := w.cache.GetReview(key); ok {
				reviews[i], cached[i] = rev, true
				return
			}
		}
		reviews[i] = w.llm.ReviewSnapshotAt(sf, lane, i)
		// Degraded reviews record a backend failure, not an answer —
		// memoizing one would pin the failure past the fault. Unreachable
		// while the review tier is fault-free-only, but kept as a guard.
		if key != "" && !reviews[i].Degraded {
			w.cache.PutReview(key, reviews[i])
		}
	})
	if reg := w.obs.Reg(); reg != nil {
		// Fresh spend only: cache hits carry their original attributed
		// Spent (so reports stay byte-identical warm vs cold), but no
		// tokens actually moved for them this run.
		var tokens int64
		for i, rev := range reviews {
			if !cached[i] && !rev.Shared {
				tokens += rev.Spent.TokensIn
			}
		}
		reg.Counter("core_app_llm_tokens_total", "app", app.Code).Add(tokens)
		reg.Counter(obs.StageTokensMetric, "stage", "identify").Add(tokens)
	}
	for i, f := range files {
		rev := reviews[i]
		id.Reviews = append(id.Reviews, rev)
		if rev.Degraded {
			// The backend never answered for this file: record the gap and
			// carry on with static-only signal (graceful degradation, not
			// failure). The merge loop is sequential in sorted file order,
			// so these counters stay deterministic at every Workers setting.
			id.Degraded = append(id.Degraded, DegradedFile{File: f, Reason: rev.DegradedReason})
			w.obs.Reg().Counter("pipeline_degraded_files_total").Inc()
			w.obs.Reg().Counter("pipeline_degraded_reason_total", "reason", rev.DegradedReason).Inc()
			continue
		}
		if rev.TruncatedContext {
			id.TruncatedFiles = append(id.TruncatedFiles, f)
			continue
		}
		for _, find := range rev.Findings {
			s := merged[find.Coordinator]
			if s == nil {
				s = &Structure{Coordinator: find.Coordinator, File: find.File, Mechanism: find.Mechanism}
				merged[find.Coordinator] = s
			}
			s.FoundBy.LLM = true
			if s.Mechanism == "loop" && find.Mechanism != "loop" {
				s.Mechanism = find.Mechanism
			}
			for _, t := range analysis.CalleesOf(find.Coordinator) {
				s.Triplets = append(s.Triplets, fault.Location{
					Coordinator: t.Coordinator, Retried: t.Retried, Exception: t.Exception,
				})
			}
		}
	}

	for _, s := range merged {
		s.Triplets = dedupLocations(s.Triplets)
		id.Structures = append(id.Structures, *s)
	}
	sort.Slice(id.Structures, func(i, j int) bool {
		return id.Structures[i].Coordinator < id.Structures[j].Coordinator
	})
	return id, nil
}

func dedupLocations(locs []fault.Location) []fault.Location {
	seen := make(map[fault.Location]bool, len(locs))
	var out []fault.Location
	for _, l := range locs {
		if !seen[l] {
			seen[l] = true
			out = append(out, l)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Retried != out[j].Retried {
			return out[i].Retried < out[j].Retried
		}
		return out[i].Exception < out[j].Exception
	})
	return out
}

// DynamicResult is the outcome of the repurposed-unit-testing workflow on
// one application.
type DynamicResult struct {
	App string
	// Reports are the deduplicated oracle reports (distinct bugs).
	Reports []oracle.Report
	// Coverage statistics.
	TestsTotal          int
	TestsCoveringRetry  int
	StructuresTotal     int
	StructuresTested    int
	StrippedOverrides   int
	PlanEntries         int
	NaiveRuns           int
	PlannedRuns         int
	InjectionRunsFailed int // runs that crashed (before oracle filtering)
}

// RunDynamic executes the dynamic workflow for one app, given its
// identification.
func (w *Wasabi) RunDynamic(app corpus.App, id *Identification) (*DynamicResult, error) {
	defer w.stage("dynamic", app.Code)()
	locs := id.Locations()
	cov := planner.Collect(app.Suite, locs)
	plan := planner.BuildPlan(cov)
	w.obs.Reg().Counter("core_plan_entries_total", "app", app.Code).Add(int64(len(plan)))

	testsByName := make(map[string]testkit.Test, len(app.Suite.Tests))
	for _, t := range app.Suite.Tests {
		testsByName[t.Name] = t
	}

	// Every plan entry owns its injector and trace (testkit.Run builds a
	// fresh trace.Run per execution), so entries are independent and fan
	// out across the worker pool. Per-entry reports are kept in plan order
	// and flattened sequentially below, which makes the assembled report
	// stream — and therefore the first-report-wins dedup — byte-identical
	// to the sequential execution at every Workers setting.
	type entryOutcome struct {
		reports []oracle.Report
		failed  int
		err     error
	}
	outcomes := make([]entryOutcome, len(plan))
	reg := w.obs.Reg()
	w.parallelFor("entries", len(plan), func(i int) {
		entry := plan[i]
		out := &outcomes[i]
		test, ok := testsByName[entry.Test]
		if !ok {
			out.err = fmt.Errorf("plan references unknown test %s", entry.Test)
			return
		}
		sp := w.obs.Trc().Start(entry.Test, "entry",
			"app", app.Code, "coordinator", entry.Loc.Coordinator, "parent", "dynamic:"+app.Code)
		defer sp.End()
		for _, exc := range planner.Exceptions(locs, entry.Loc) {
			loc := fault.Location{Coordinator: entry.Loc.Coordinator, Retried: entry.Loc.Retried, Exception: exc}
			for _, k := range []int{w.opts.HowK, w.opts.CapK} {
				rules := []fault.Rule{{Loc: loc, K: k}}
				res := testkit.Run(test, fault.NewInjector(rules).Instrument(reg), cov.Prepared[test.Name])
				reg.Counter("core_injection_runs_total", "app", app.Code).Inc()
				if res.Failed() {
					out.failed++
					reg.Counter("core_injection_runs_failed_total", "app", app.Code).Inc()
				}
				out.reports = append(out.reports, oracle.Evaluate(app.Code, res, rules, w.opts.Oracle)...)
			}
		}
	})
	var all []oracle.Report
	failed := 0
	for _, out := range outcomes {
		if out.err != nil {
			return nil, out.err
		}
		all = append(all, out.reports...)
		failed += out.failed
	}

	tested := make(map[string]bool)
	for p := range cov.Covered() {
		tested[p.Coordinator] = true
	}

	deduped := oracle.Dedup(all)
	reg.Counter("core_distinct_bugs_total", "app", app.Code).Add(int64(len(deduped)))

	return &DynamicResult{
		App:                 app.Code,
		Reports:             deduped,
		TestsTotal:          len(app.Suite.Tests),
		TestsCoveringRetry:  cov.CoveringTests(),
		StructuresTotal:     len(id.Structures),
		StructuresTested:    len(tested),
		StrippedOverrides:   cov.Stripped,
		PlanEntries:         len(plan),
		NaiveRuns:           planner.NaiveRuns(cov, locs),
		PlannedRuns:         planner.PlannedRuns(plan, locs),
		InjectionRunsFailed: failed,
	}, nil
}

// StaticResult is the outcome of the static checking workflow for one app.
type StaticResult struct {
	App string
	// WhenReports are the LLM's missing-cap/missing-delay findings.
	WhenReports []llm.WhenReport
	// Usage is the LLM traffic attributable to this app: the sum over its
	// file reviews. It is independent of how apps are scheduled across
	// workers (a cumulative snapshot would not be).
	Usage llm.Usage
}

// RunStatic executes the LLM-based WHEN-bug detection for one app using
// the reviews gathered during identification.
func (w *Wasabi) RunStatic(app corpus.App, id *Identification) *StaticResult {
	defer w.stage("static", app.Code)()
	var reports []llm.WhenReport
	var usage llm.Usage
	for _, rev := range id.Reviews {
		reports = append(reports, llm.DetectWhenBugs(rev)...)
		usage.Add(rev.Spent)
	}
	for _, r := range reports {
		w.obs.Reg().Counter("llm_when_reports_total", "kind", r.Kind).Inc()
	}
	sort.Slice(reports, func(i, j int) bool {
		if reports[i].Coordinator != reports[j].Coordinator {
			return reports[i].Coordinator < reports[j].Coordinator
		}
		return reports[i].Kind < reports[j].Kind
	})
	return &StaticResult{App: app.Code, WhenReports: reports, Usage: usage}
}

// RunIFAnalysis runs the corpus-wide retry-ratio IF-bug detection over the
// given identifications (§3.2.2).
func (w *Wasabi) RunIFAnalysis(ids []*Identification) ([]sast.ExceptionRatio, []sast.IFReport) {
	defer w.stage("if", "")()
	var analyses []*sast.Analysis
	for _, id := range ids {
		analyses = append(analyses, id.Analysis)
	}
	ratios, reports := sast.RatioAnalysis(analyses, w.opts.Ratio)
	w.obs.Reg().Counter("core_if_reports_total").Add(int64(len(reports)))
	return ratios, reports
}

// VerifySources sanity-checks that an app directory exists and contains Go
// sources; used by the CLI for friendlier errors.
func VerifySources(app corpus.App) error {
	entries, err := os.ReadDir(app.Dir)
	if err != nil {
		return fmt.Errorf("app %s: %w", app.Code, err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".go") {
			return nil
		}
	}
	return fmt.Errorf("app %s: no Go sources in %s", app.Code, app.Dir)
}
