package core

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"wasabi/internal/apps/corpus"
)

func TestParallelForRunsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		for _, n := range []int{0, 1, 2, 7, 100} {
			w := New(optionsWithWorkers(workers))
			counts := make([]int32, n)
			w.parallelFor("test", n, func(i int) { atomic.AddInt32(&counts[i], 1) })
			for i, c := range counts {
				if c != 1 {
					t.Errorf("workers=%d n=%d: index %d ran %d times", workers, n, i, c)
				}
			}
		}
	}
}

func TestParallelForNestedStaysBounded(t *testing.T) {
	const workers = 4
	w := New(optionsWithWorkers(workers))
	var cur, peak int32
	var mu sync.Mutex
	enter := func() {
		n := atomic.AddInt32(&cur, 1)
		mu.Lock()
		if n > peak {
			peak = n
		}
		mu.Unlock()
	}
	w.parallelFor("test", 8, func(int) {
		enter()
		defer atomic.AddInt32(&cur, -1)
		w.parallelFor("test", 8, func(int) {
			enter()
			defer atomic.AddInt32(&cur, -1)
		})
	})
	// Outer iterations hold their slot while running the inner loop, and
	// saturated inner iterations run inline, so total concurrency never
	// exceeds the pool bound.
	if peak > workers {
		t.Errorf("peak concurrency %d exceeds Workers=%d", peak, workers)
	}
}

func optionsWithWorkers(n int) Options {
	o := DefaultOptions()
	o.Workers = n
	return o
}

// renderCorpusRun flattens every deterministic artifact of a corpus run
// into one string, so two runs can be compared byte-for-byte.
func renderCorpusRun(cr *CorpusRun) string {
	var b strings.Builder
	for _, ar := range cr.Apps {
		fmt.Fprintf(&b, "== %s\n", ar.App.Code)
		for _, s := range ar.ID.Structures {
			fmt.Fprintf(&b, "structure %+v\n", s)
		}
		fmt.Fprintf(&b, "ablation %d %d truncated %v\n",
			ar.ID.CandidateLoops, ar.ID.KeywordedLoops, ar.ID.TruncatedFiles)
		d := ar.Dyn
		fmt.Fprintf(&b, "dyn %d/%d tests %d/%d structures stripped=%d plan=%d runs=%d/%d failed=%d\n",
			d.TestsCoveringRetry, d.TestsTotal, d.StructuresTested, d.StructuresTotal,
			d.StrippedOverrides, d.PlanEntries, d.PlannedRuns, d.NaiveRuns, d.InjectionRunsFailed)
		for _, r := range d.Reports {
			fmt.Fprintf(&b, "report %+v\n", r)
		}
		for _, r := range ar.Static.WhenReports {
			fmt.Fprintf(&b, "when %+v\n", r)
		}
		fmt.Fprintf(&b, "usage %+v\n", ar.Static.Usage)
	}
	for _, r := range cr.IFRatios {
		fmt.Fprintf(&b, "ratio %+v\n", r)
	}
	for _, r := range cr.IFReports {
		fmt.Fprintf(&b, "if %+v\n", r)
	}
	fmt.Fprintf(&b, "total usage %+v\n", cr.Usage)
	for _, r := range cr.MergedReports() {
		fmt.Fprintf(&b, "merged %+v\n", r)
	}
	return b.String()
}

// TestParallelCorpusMatchesSequential is the determinism acceptance test:
// the parallel runner (workers >= 4) must produce byte-identical results
// to the sequential runner (workers = 1) over the full 8-app corpus —
// reports, statistics, IF analysis, and usage accounting alike.
func TestParallelCorpusMatchesSequential(t *testing.T) {
	apps := corpus.Apps()
	run := func(workers int) string {
		t.Helper()
		cr, err := New(optionsWithWorkers(workers)).RunCorpus(apps)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return renderCorpusRun(cr)
	}
	seq := run(1)
	for _, workers := range []int{4, 8} {
		par := run(workers)
		if par == seq {
			continue
		}
		seqLines, parLines := strings.Split(seq, "\n"), strings.Split(par, "\n")
		for i := 0; i < len(seqLines) || i < len(parLines); i++ {
			var a, b string
			if i < len(seqLines) {
				a = seqLines[i]
			}
			if i < len(parLines) {
				b = parLines[i]
			}
			if a != b {
				t.Fatalf("workers=%d diverges from sequential at line %d:\n  seq: %s\n  par: %s", workers, i, a, b)
			}
		}
	}
}

// TestMergedReportsCanonicalOrder checks the reducer's order is total and
// stable: sorted by (app, coordinator, kind).
func TestMergedReportsCanonicalOrder(t *testing.T) {
	cr, err := New(DefaultOptions()).RunCorpus(corpus.Apps())
	if err != nil {
		t.Fatal(err)
	}
	merged := cr.MergedReports()
	if len(merged) == 0 {
		t.Fatal("no merged reports")
	}
	for i := 1; i < len(merged); i++ {
		a, b := merged[i-1], merged[i]
		ka := a.App + "|" + a.Coordinator + "|" + string(a.Kind) + "|" + a.GroupKey + "|" + a.Test
		kb := b.App + "|" + b.Coordinator + "|" + string(b.Kind) + "|" + b.GroupKey + "|" + b.Test
		if ka > kb {
			t.Fatalf("merged reports out of order at %d: %q > %q", i, ka, kb)
		}
	}
}

// TestRunCorpusPropagatesErrors checks the first error in input order
// aborts the run.
func TestRunCorpusPropagatesErrors(t *testing.T) {
	apps := corpus.Apps()
	apps[2].Dir = "/nonexistent-wasabi-dir"
	_, err := New(optionsWithWorkers(4)).RunCorpus(apps)
	if err == nil {
		t.Fatal("expected an error for a missing app directory")
	}
	if !strings.Contains(err.Error(), apps[2].Code) {
		t.Errorf("error should name the failing app %s: %v", apps[2].Code, err)
	}
}

// TestAnalyzeConsistentWithRunCorpus guards the facade path: per-app
// dynamic reports from RunCorpus equal those from individual runs.
func TestAnalyzeConsistentWithRunCorpus(t *testing.T) {
	apps := corpus.Apps()[:3]
	cr, err := New(optionsWithWorkers(8)).RunCorpus(apps)
	if err != nil {
		t.Fatal(err)
	}
	for i, app := range apps {
		w := New(optionsWithWorkers(1))
		id, err := w.Identify(app)
		if err != nil {
			t.Fatal(err)
		}
		dyn, err := w.RunDynamic(app, id)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := fmt.Sprintf("%+v", cr.Apps[i].Dyn.Reports), fmt.Sprintf("%+v", dyn.Reports); got != want {
			t.Errorf("%s: corpus-run reports differ from solo run:\n%s\nvs\n%s", app.Code, got, want)
		}
	}
}
