package core

import (
	"reflect"
	"testing"

	"wasabi/internal/apps/corpus"
	"wasabi/internal/oracle"
)

// TestIdentificationDeterministic runs identification twice with fresh
// toolkits: the seeded LLM and the static analysis must agree exactly.
func TestIdentificationDeterministic(t *testing.T) {
	app, err := corpus.ByCode("HB")
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(DefaultOptions()).Identify(app)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(DefaultOptions()).Identify(app)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Structures) != len(b.Structures) {
		t.Fatalf("structure counts differ: %d vs %d", len(a.Structures), len(b.Structures))
	}
	for i := range a.Structures {
		sa, sb := a.Structures[i], b.Structures[i]
		if sa.Coordinator != sb.Coordinator || sa.FoundBy != sb.FoundBy ||
			!reflect.DeepEqual(sa.Triplets, sb.Triplets) {
			t.Errorf("structure %d differs:\n%+v\n%+v", i, sa, sb)
		}
	}
	if a.CandidateLoops != b.CandidateLoops || len(a.TruncatedFiles) != len(b.TruncatedFiles) {
		t.Error("ablation counters differ between runs")
	}
}

// TestDynamicDeterministic runs the full dynamic workflow twice and
// compares the deduplicated report sets.
func TestDynamicDeterministic(t *testing.T) {
	app, err := corpus.ByCode("HD")
	if err != nil {
		t.Fatal(err)
	}
	run := func() map[string]bool {
		w := New(DefaultOptions())
		id, err := w.Identify(app)
		if err != nil {
			t.Fatal(err)
		}
		res, err := w.RunDynamic(app, id)
		if err != nil {
			t.Fatal(err)
		}
		out := map[string]bool{}
		for _, r := range res.Reports {
			out[string(r.Kind)+"|"+r.GroupKey] = true
		}
		return out
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("report sets differ:\n%v\n%v", a, b)
	}
}

// TestHowBugNeedsInjection checks that fault injection exposes the HDFS
// NullPointerException HOW bug of §4.1 with the right crash class.
func TestHowBugNeedsInjection(t *testing.T) {
	app, err := corpus.ByCode("HD")
	if err != nil {
		t.Fatal(err)
	}
	w := New(DefaultOptions())
	id, err := w.Identify(app)
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.RunDynamic(app, id)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range res.Reports {
		if r.Kind == oracle.How && r.Coordinator == "hdfs.DFSInputStream.ReadBlock" {
			found = true
			if r.Exception != "NullPointerException" {
				t.Errorf("crash class = %s", r.Exception)
			}
		}
	}
	if !found {
		t.Error("the createBlockReader NPE (§4.1) was not reported")
	}
}
