package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"wasabi/internal/apps/corpus"
	"wasabi/internal/obs"
)

// observedRun executes the full pipeline over the corpus with a fresh
// observer and returns the metrics snapshot.
func observedRun(t *testing.T, workers int) obs.Snapshot {
	t.Helper()
	opts := DefaultOptions()
	opts.Workers = workers
	opts.Obs = obs.New()
	w := New(opts)
	if _, err := w.RunCorpus(corpus.Apps()); err != nil {
		t.Fatal(err)
	}
	return opts.Obs.Reg().Snapshot()
}

// TestCountersDeterministicAcrossWorkers is the observability analogue
// of the result-determinism tests: the counters section of the metrics
// snapshot must be byte-identical at every worker count, because
// counters only ever count logical pipeline events. Gauges and
// histograms carry scheduling and wall-clock facts and are exempt.
func TestCountersDeterministicAcrossWorkers(t *testing.T) {
	var want []byte
	for _, workers := range []int{1, 2, 4} {
		snap := observedRun(t, workers)
		got, err := snap.CountersJSON()
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = got
			continue
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("counters at workers=%d differ from workers=1:\n%s\nvs\n%s", workers, got, want)
		}
	}
	if len(want) == 0 || string(want) == "[]" {
		t.Fatal("counters section is empty — instrumentation is not firing")
	}
}

// TestObservedRunRecordsEveryLayer spot-checks that each instrumented
// layer reported into the registry: stages, pool, LLM, fault runtime and
// oracles.
func TestObservedRunRecordsEveryLayer(t *testing.T) {
	snap := observedRun(t, 2)
	apps := len(corpus.Apps())

	for _, stage := range []string{"identify", "dynamic", "static"} {
		if got := snap.Counter("core_stage_runs_total", "stage", stage); got != int64(apps) {
			t.Errorf("stage %s ran %d times, want %d", stage, got, apps)
		}
		if h, ok := snap.HistogramPoint(obs.StageMetric, "stage", stage); !ok || h.Count != int64(apps) {
			t.Errorf("stage %s wall-time histogram: ok=%v count=%d, want %d", stage, ok, h.Count, apps)
		}
	}
	if got := snap.Counter("core_stage_runs_total", "stage", "if"); got != 1 {
		t.Errorf("if stage ran %d times, want 1", got)
	}

	checksPositive := map[string]int64{
		"core_pool_tasks_total{level=apps}": snap.Counter("core_pool_tasks_total", "level", "apps"),
		"llm_files_reviewed_total":          snap.Counter("llm_files_reviewed_total"),
		"llm_tokens_in_total":               snap.Counter("llm_tokens_in_total"),
		"oracle_evaluations_total":          snap.Counter("oracle_evaluations_total"),
	}
	for name, got := range checksPositive {
		if got <= 0 {
			t.Errorf("%s = %d, want > 0", name, got)
		}
	}

	// The fault runtime fires at least one injection per exception class
	// the plan arms; the corpus always injects IOException somewhere.
	if got := snap.Counter("fault_injections_total", "exception", "IOException"); got <= 0 {
		t.Errorf("no IOException injections recorded (got %d)", got)
	}

	// Stage token attribution equals the LLM client's own accounting.
	if stage, llmTotal := snap.Counter(obs.StageTokensMetric, "stage", "identify"), snap.Counter("llm_tokens_in_total"); stage != llmTotal {
		t.Errorf("identify-stage tokens %d != llm client tokens %d", stage, llmTotal)
	}
}

// TestTraceArtifactIsWellFormed runs an observed pipeline and checks the
// emitted Chrome trace: valid JSON, a traceEvents array of only complete
// ("X") and metadata ("M") events, and the expected span hierarchy
// (corpus → app → stage → leaf) present in the args.
func TestTraceArtifactIsWellFormed(t *testing.T) {
	opts := DefaultOptions()
	opts.Workers = 4
	opts.Obs = obs.New()
	w := New(opts)
	if _, err := w.RunCorpus(corpus.Apps()); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := opts.Obs.Trc().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Cat  string            `json:"cat"`
			Ph   string            `json:"ph"`
			Dur  int64             `json:"dur"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	cats := map[string]int{}
	parents := map[string]string{}
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "X":
			cats[e.Cat]++
			if e.Dur < 1 {
				t.Errorf("span %s has non-positive duration", e.Name)
			}
			parents[e.Name] = e.Args["parent"]
		case "M":
		default:
			t.Fatalf("unexpected event phase %q", e.Ph)
		}
	}
	for _, cat := range []string{"pipeline", "app", "stage", "review", "entry"} {
		if cats[cat] == 0 {
			t.Errorf("no %q spans in trace (got %v)", cat, cats)
		}
	}
	if got := parents["app:HD"]; got != "corpus" {
		t.Errorf("app:HD parent = %q, want corpus", got)
	}
	if got := parents["identify:HD"]; got != "app:HD" {
		t.Errorf("identify:HD parent = %q, want app:HD", got)
	}
}

// TestUnobservedRunStaysNil guards the zero-cost path: with Options.Obs
// unset the pipeline must run exactly as before and register nothing.
func TestUnobservedRunStaysNil(t *testing.T) {
	opts := DefaultOptions()
	opts.Workers = 2
	w := New(opts)
	if _, err := w.RunCorpus(corpus.Apps()); err != nil {
		t.Fatal(err)
	}
	var nilReg *obs.Registry
	if snap := nilReg.Snapshot(); len(snap.Counters) != 0 {
		t.Fatal("nil registry accumulated counters")
	}
}
