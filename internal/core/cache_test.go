package core_test

// cache_test.go exercises the pipeline against the content-addressed
// cache (internal/cache): a warm run over an unchanged corpus must
// produce the byte-identical canonical report while spending zero fresh
// LLM tokens, and touching one source file must re-review exactly that
// file. The test lives in package core_test because it asserts on the
// canonical JSON document, and internal/report imports internal/core.

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"wasabi/internal/apps/corpus"
	"wasabi/internal/cache"
	"wasabi/internal/core"
	"wasabi/internal/llm"
	"wasabi/internal/obs"
	"wasabi/internal/report"
	"wasabi/internal/sast"
)

// copyApp clones the app's source directory into a temp dir so the test
// can edit files without touching the real corpus. Suite and Manifest
// carry over unchanged — they are code, not files.
func copyApp(t *testing.T, code string) corpus.App {
	t.Helper()
	app, err := corpus.ByCode(code)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	entries, err := os.ReadDir(app.Dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(app.Dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	app.Dir = dir
	return app
}

// runOnce executes a single-app corpus run against the shared cache and
// returns the canonical report bytes and the run's fresh LLM usage. Each
// run gets its own observer so llm_tokens_in_total is per-run.
func runOnce(t *testing.T, app corpus.App, ca *cache.Cache, workers int) ([]byte, llm.Usage, obs.Snapshot) {
	t.Helper()
	opts := core.DefaultOptions()
	opts.Workers = workers
	opts.Cache = ca
	opts.Obs = obs.New()
	w := core.New(opts)
	cr, err := w.RunCorpus([]corpus.App{app})
	if err != nil {
		t.Fatal(err)
	}
	data, err := report.Marshal(report.Build(cr))
	if err != nil {
		t.Fatal(err)
	}
	return data, w.LLMUsage(), opts.Obs.Reg().Snapshot()
}

// delta subtracts two cache stats snapshots field-wise.
func delta(after, before cache.Stats) cache.Stats {
	d := cache.Stats{Hits: map[string]int64{}, Misses: map[string]int64{}}
	for k, v := range after.Hits {
		d.Hits[k] = v - before.Hits[k]
	}
	for k, v := range after.Misses {
		d.Misses[k] = v - before.Misses[k]
	}
	d.Evictions = after.Evictions - before.Evictions
	d.DiskLoads = after.DiskLoads - before.DiskLoads
	return d
}

// TestWarmRunByteIdenticalZeroSpend is the cache's core contract, pinned
// across worker counts: cold run populates, warm run replays — same
// bytes out, zero fresh tokens in — and a single-file edit invalidates
// exactly that file's review.
func TestWarmRunByteIdenticalZeroSpend(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			app := copyApp(t, "HD")
			man, err := cache.HashDir(app.Dir)
			if err != nil {
				t.Fatal(err)
			}
			nFiles := int64(len(man.Files))
			if nFiles == 0 {
				t.Fatal("copied app has no source files")
			}

			ca, err := cache.New(cache.Options{})
			if err != nil {
				t.Fatal(err)
			}

			// Cold: every review and the analysis miss, then populate.
			cold, coldFresh, _ := runOnce(t, app, ca, workers)
			if coldFresh.TokensIn == 0 || coldFresh.Calls == 0 {
				t.Fatal("cold run spent nothing; cache cannot have been exercised")
			}
			st0 := ca.Stats()
			if st0.Hits[cache.StageReview] != 0 || st0.Misses[cache.StageReview] != nFiles {
				t.Fatalf("cold review hits/misses = %d/%d, want 0/%d",
					st0.Hits[cache.StageReview], st0.Misses[cache.StageReview], nFiles)
			}
			if st0.Misses[cache.StageAnalysis] != 1 {
				t.Fatalf("cold analysis misses = %d, want 1", st0.Misses[cache.StageAnalysis])
			}

			// Warm: byte-identical report, zero fresh spend, all hits.
			warm, warmFresh, snap := runOnce(t, app, ca, workers)
			if !bytes.Equal(cold, warm) {
				t.Fatalf("warm report differs from cold:\ncold %d bytes, warm %d bytes", len(cold), len(warm))
			}
			if warmFresh != (llm.Usage{}) {
				t.Fatalf("warm run spent fresh LLM traffic: %+v", warmFresh)
			}
			if got := snap.Counter("llm_tokens_in_total"); got != 0 {
				t.Fatalf("warm llm_tokens_in_total = %d, want 0", got)
			}
			d := delta(ca.Stats(), st0)
			if d.Hits[cache.StageReview] != nFiles || d.Misses[cache.StageReview] != 0 {
				t.Fatalf("warm review hits/misses = %d/%d, want %d/0",
					d.Hits[cache.StageReview], d.Misses[cache.StageReview], nFiles)
			}
			if d.Hits[cache.StageAnalysis] != 1 || d.Misses[cache.StageAnalysis] != 0 {
				t.Fatalf("warm analysis hits/misses = %d/%d, want 1/0",
					d.Hits[cache.StageAnalysis], d.Misses[cache.StageAnalysis])
			}
			if d.Evictions != 0 {
				t.Fatalf("warm run evicted %d entries", d.Evictions)
			}

			// Touch one file: exactly one review re-runs; the directory
			// manifest moved, so the static analysis re-runs too.
			names := make([]string, 0, len(man.Files))
			for name := range man.Files {
				names = append(names, name)
			}
			sort.Strings(names)
			touched := filepath.Join(app.Dir, names[0])
			src, err := os.ReadFile(touched)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(touched, append(src, []byte("\n// touched by cache_test\n")...), 0o644); err != nil {
				t.Fatal(err)
			}
			st1 := ca.Stats()
			_, editFresh, _ := runOnce(t, app, ca, workers)
			d = delta(ca.Stats(), st1)
			if d.Hits[cache.StageReview] != nFiles-1 || d.Misses[cache.StageReview] != 1 {
				t.Fatalf("post-edit review hits/misses = %d/%d, want %d/1",
					d.Hits[cache.StageReview], d.Misses[cache.StageReview], nFiles-1)
			}
			if d.Misses[cache.StageAnalysis] != 1 {
				t.Fatalf("post-edit analysis misses = %d, want 1", d.Misses[cache.StageAnalysis])
			}
			if editFresh.TokensIn == 0 {
				t.Fatal("edited file was not re-reviewed")
			}
			if editFresh.TokensIn >= coldFresh.TokensIn {
				t.Fatalf("single-file edit re-spent the whole corpus: %d of %d tokens",
					editFresh.TokensIn, coldFresh.TokensIn)
			}
		})
	}
}

// TestDiskTierSurvivesRestart replays a corpus through a fresh cache
// instance backed by the same directory — the process-restart path.
// Each runOnce builds a fresh snapshot store too, so the warm run is a
// true cold process over a warm disk: every review and every extraction
// fact must come from disk, the analysis (a memory-only merge of those
// facts) re-runs without parsing anything, and fresh spend stays zero.
func TestDiskTierSurvivesRestart(t *testing.T) {
	app := copyApp(t, "HD")
	dir := t.TempDir()
	man, err := cache.HashDir(app.Dir)
	if err != nil {
		t.Fatal(err)
	}
	nFiles := int64(len(man.Files))

	c1, err := cache.New(cache.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	cold, _, _ := runOnce(t, app, c1, 2)

	c2, err := cache.New(cache.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	warm, fresh, snap := runOnce(t, app, c2, 2)
	if !bytes.Equal(cold, warm) {
		t.Fatal("restarted warm report differs from cold")
	}
	if fresh != (llm.Usage{}) {
		t.Fatalf("restarted warm run spent fresh LLM traffic: %+v", fresh)
	}
	st := c2.Stats()
	if st.Hits[cache.StageReview] != nFiles || st.Hits[cache.StageFacts] != nFiles {
		t.Fatalf("restart hits review/facts = %d/%d, want %d/%d",
			st.Hits[cache.StageReview], st.Hits[cache.StageFacts], nFiles, nFiles)
	}
	if want := st.Hits[cache.StageReview] + st.Hits[cache.StageFacts]; st.DiskLoads != want {
		t.Fatalf("disk loads = %d, want %d (every review and facts hit read through)",
			st.DiskLoads, want)
	}
	if st.Misses[cache.StageAnalysis] != 1 {
		t.Fatalf("analysis misses = %d, want 1 (memory-only merge tier)", st.Misses[cache.StageAnalysis])
	}
	// The restart-warm proof: the static tier rebuilt from portable
	// facts, so the new process parsed and extracted nothing.
	if got := snap.Counter("source_parse_total"); got != 0 {
		t.Fatalf("restart-warm run parsed %d files, want 0", got)
	}
	if got := snap.Counter("source_derived_computes_total", "kind", sast.ExtractKind); got != 0 {
		t.Fatalf("restart-warm run extracted %d files, want 0", got)
	}
	if got := snap.Counter("source_derived_hydrations_total", "kind", sast.ExtractKind); got != nFiles {
		t.Fatalf("restart-warm run hydrated %d facts, want %d", got, nFiles)
	}
	if st.DiskEntries == 0 || st.DiskBytes == 0 {
		t.Fatalf("restarted cache reports empty disk tier: %d entries / %d bytes",
			st.DiskEntries, st.DiskBytes)
	}

	// A single-file edit after restart costs exactly 1 parse /
	// 1 extraction / 1 review miss — the incremental contract holds
	// across process boundaries.
	names := make([]string, 0, len(man.Files))
	for name := range man.Files {
		names = append(names, name)
	}
	sort.Strings(names)
	touched := filepath.Join(app.Dir, names[0])
	src, err := os.ReadFile(touched)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(touched, append(src, []byte("\n// touched by cache_test\n")...), 0o644); err != nil {
		t.Fatal(err)
	}
	st1 := c2.Stats()
	_, _, editSnap := runOnce(t, app, c2, 2)
	d := delta(c2.Stats(), st1)
	if got := editSnap.Counter("source_parse_total"); got != 1 {
		t.Fatalf("post-restart edit parsed %d files, want 1", got)
	}
	if got := editSnap.Counter("source_derived_computes_total", "kind", sast.ExtractKind); got != 1 {
		t.Fatalf("post-restart edit extracted %d files, want 1", got)
	}
	if d.Misses[cache.StageReview] != 1 || d.Hits[cache.StageReview] != nFiles-1 {
		t.Fatalf("post-restart edit review hits/misses = %d/%d, want %d/1",
			d.Hits[cache.StageReview], d.Misses[cache.StageReview], nFiles-1)
	}
}

// TestFaultProfileDisablesReviewCache pins the safety gate: under a
// fault profile, per-file memoization is off (admission decisions are
// run-global), so a second run spends tokens again.
func TestFaultProfileDisablesReviewCache(t *testing.T) {
	app := copyApp(t, "HD")
	ca, err := cache.New(cache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	profile, err := llm.ParseFaultProfile("light")
	if err != nil {
		t.Fatal(err)
	}
	run := func() llm.Usage {
		opts := core.DefaultOptions()
		opts.Workers = 2
		opts.Cache = ca
		opts.LLM.Fault = &profile
		w := core.New(opts)
		if _, err := w.RunCorpus([]corpus.App{app}); err != nil {
			t.Fatal(err)
		}
		return w.LLMUsage()
	}
	run()
	if second := run(); second.TokensIn == 0 {
		t.Fatal("review cache served hits under a fault profile")
	}
	if hits := ca.Stats().Hits[cache.StageReview]; hits != 0 {
		t.Fatalf("review hits under fault profile = %d, want 0", hits)
	}
}
