// Package planner implements WASABI's test preparation and fault-injection
// planning (§3.1.4): run the whole suite once in observation mode to learn
// which tests reach which retry locations, then build a plan in which every
// coverable retry location appears exactly once, spread over as many
// distinct unit tests as possible.
package planner

import (
	"sort"

	"wasabi/internal/fault"
	"wasabi/internal/testkit"
	"wasabi/internal/trace"
)

// LocPair is a retry location at (coordinator, retried-method) granularity;
// trigger exceptions are expanded later, when runs are generated.
type LocPair struct {
	Coordinator string
	Retried     string
}

// Coverage records which tests reach which retry locations.
type Coverage struct {
	// Order is the suite's test order.
	Order []string
	// TestLocs maps a test to the location pairs it covers, in first-hit
	// order.
	TestLocs map[string][]LocPair
	// Prepared maps a test to its effective overrides after the
	// configuration-restoration pass.
	Prepared map[string]map[string]string
	// Stripped counts retry-restricting overrides removed during
	// preparation.
	Stripped int
}

// Covered returns the set of all covered location pairs.
func (c Coverage) Covered() map[LocPair]bool {
	out := make(map[LocPair]bool)
	for _, locs := range c.TestLocs {
		for _, l := range locs {
			out[l] = true
		}
	}
	return out
}

// CoveringTests returns how many tests cover at least one retry location.
func (c Coverage) CoveringTests() int {
	n := 0
	for _, locs := range c.TestLocs {
		if len(locs) > 0 {
			n++
		}
	}
	return n
}

// Collect runs every test once in observation mode against the identified
// retry locations and records coverage. This is the pass that dominates
// planning cost in the paper (18%–32% of total run time).
func Collect(suite testkit.Suite, locs []fault.Location) Coverage {
	cov := Coverage{
		TestLocs: make(map[string][]LocPair, len(suite.Tests)),
		Prepared: make(map[string]map[string]string, len(suite.Tests)),
	}
	// The observer watches retried methods; interesting coordinators are
	// filtered afterwards so that coverage reflects identified locations
	// only.
	interesting := make(map[LocPair]bool, len(locs))
	for _, l := range locs {
		interesting[LocPair{Coordinator: l.Coordinator, Retried: l.Retried}] = true
	}
	for _, t := range suite.Tests {
		eff, stripped := testkit.PrepareOverrides(t)
		cov.Stripped += len(stripped)
		cov.Prepared[t.Name] = eff
		cov.Order = append(cov.Order, t.Name)

		obs := fault.NewObserver(locs)
		res := testkit.Run(t, obs, eff)
		// First-hit order comes from the run's coverage events.
		for _, e := range res.Run.Events() {
			if e.Kind != trace.KindCoverage {
				continue
			}
			p := LocPair{Coordinator: e.Caller, Retried: e.Callee}
			if interesting[p] {
				cov.TestLocs[t.Name] = append(cov.TestLocs[t.Name], p)
			}
		}
	}
	return cov
}

// Entry pairs one unit test with one retry location to inject at.
type Entry struct {
	Test string
	Loc  LocPair
}

// BuildPlan implements the paper's round-robin planning: iterate through
// the tests repeatedly; on each pass a test contributes its first
// not-yet-planned location, until every coverable location is planned.
func BuildPlan(cov Coverage) []Entry {
	planned := make(map[LocPair]bool)
	var plan []Entry
	remaining := len(cov.Covered())
	for remaining > 0 {
		progress := false
		for _, test := range cov.Order {
			for _, loc := range cov.TestLocs[test] {
				if planned[loc] {
					continue
				}
				planned[loc] = true
				plan = append(plan, Entry{Test: test, Loc: loc})
				remaining--
				progress = true
				break // one location per test per pass
			}
		}
		if !progress {
			break
		}
	}
	return plan
}

// NaiveRuns counts the fault-injection runs a plan-free strategy would
// need: every test × every location it covers × every trigger exception ×
// both K settings (§3.1.4's "naive testing plan").
func NaiveRuns(cov Coverage, locs []fault.Location) int {
	excs := exceptionsPerPair(locs)
	n := 0
	for _, pairs := range cov.TestLocs {
		for _, p := range pairs {
			n += 2 * len(excs[p])
		}
	}
	return n
}

// PlannedRuns counts the runs the plan generates: every plan entry ×
// trigger exceptions × both K settings.
func PlannedRuns(plan []Entry, locs []fault.Location) int {
	excs := exceptionsPerPair(locs)
	n := 0
	for _, e := range plan {
		n += 2 * len(excs[e.Loc])
	}
	return n
}

// Exceptions returns the trigger exceptions identified for a location
// pair, sorted.
func Exceptions(locs []fault.Location, p LocPair) []string {
	return exceptionsPerPair(locs)[p]
}

func exceptionsPerPair(locs []fault.Location) map[LocPair][]string {
	set := make(map[LocPair]map[string]bool)
	for _, l := range locs {
		p := LocPair{Coordinator: l.Coordinator, Retried: l.Retried}
		if set[p] == nil {
			set[p] = make(map[string]bool)
		}
		set[p][l.Exception] = true
	}
	out := make(map[LocPair][]string, len(set))
	for p, m := range set {
		for e := range m {
			out[p] = append(out[p], e)
		}
		sort.Strings(out[p])
	}
	return out
}
