package planner

import (
	"context"
	"testing"

	"wasabi/internal/apps/corpus"
	"wasabi/internal/fault"
	"wasabi/internal/testkit"
)

// fakeSuite builds a synthetic coverage scenario without real corpus code.
func fakeCoverage() Coverage {
	return Coverage{
		Order: []string{"t1", "t2", "t3"},
		TestLocs: map[string][]LocPair{
			"t1": {{Coordinator: "c1", Retried: "m1"}, {Coordinator: "c2", Retried: "m2"}},
			"t2": {{Coordinator: "c1", Retried: "m1"}},
			"t3": {{Coordinator: "c3", Retried: "m3"}, {Coordinator: "c4", Retried: "m4"}},
		},
	}
}

func TestBuildPlanCoversEveryLocationOnce(t *testing.T) {
	plan := BuildPlan(fakeCoverage())
	seen := map[LocPair]int{}
	for _, e := range plan {
		seen[e.Loc]++
	}
	if len(seen) != 4 {
		t.Fatalf("plan covers %d locations, want 4: %+v", len(seen), plan)
	}
	for l, n := range seen {
		if n != 1 {
			t.Errorf("location %v planned %d times", l, n)
		}
	}
}

func TestBuildPlanSpreadsAcrossTests(t *testing.T) {
	plan := BuildPlan(fakeCoverage())
	// Pass 1 should use t1, t2(no new loc? c1/m1 already planned by t1 ->
	// t2 contributes nothing), t3. Pass 2 picks the leftovers.
	tests := map[string]int{}
	for _, e := range plan {
		tests[e.Test]++
	}
	if tests["t1"] == 0 || tests["t3"] == 0 {
		t.Errorf("plan should use multiple tests: %+v", plan)
	}
}

func TestBuildPlanEmptyCoverage(t *testing.T) {
	if plan := BuildPlan(Coverage{}); len(plan) != 0 {
		t.Errorf("plan = %+v", plan)
	}
}

func TestRunCounts(t *testing.T) {
	cov := fakeCoverage()
	locs := []fault.Location{
		{Coordinator: "c1", Retried: "m1", Exception: "A"},
		{Coordinator: "c1", Retried: "m1", Exception: "B"},
		{Coordinator: "c2", Retried: "m2", Exception: "A"},
		{Coordinator: "c3", Retried: "m3", Exception: "A"},
		{Coordinator: "c4", Retried: "m4", Exception: "A"},
	}
	// naive: t1 covers c1/m1 (2 excs) + c2/m2 (1) = 3; t2 covers c1/m1 (2);
	// t3 covers 1+1. Total pairs = 7, times 2 K settings = 14.
	if got := NaiveRuns(cov, locs); got != 14 {
		t.Errorf("NaiveRuns = %d, want 14", got)
	}
	plan := BuildPlan(cov)
	// planned: each of 4 locations once = 2+1+1+1 = 5 exception-runs × 2.
	if got := PlannedRuns(plan, locs); got != 10 {
		t.Errorf("PlannedRuns = %d, want 10", got)
	}
}

func TestExceptionsSorted(t *testing.T) {
	locs := []fault.Location{
		{Coordinator: "c", Retried: "m", Exception: "B"},
		{Coordinator: "c", Retried: "m", Exception: "A"},
		{Coordinator: "c", Retried: "m", Exception: "A"},
	}
	got := Exceptions(locs, LocPair{Coordinator: "c", Retried: "m"})
	if len(got) != 2 || got[0] != "A" || got[1] != "B" {
		t.Errorf("Exceptions = %v", got)
	}
}

func TestCollectOnHDFS(t *testing.T) {
	app, err := corpus.ByCode("HD")
	if err != nil {
		t.Fatal(err)
	}
	locs := []fault.Location{
		{Coordinator: "hdfs.WebFS.Fetch", Retried: "hdfs.WebFS.connect", Exception: "ConnectException"},
		{Coordinator: "hdfs.EditLogTailer.CatchUp", Retried: "hdfs.EditLogTailer.fetchEdits", Exception: "SocketTimeoutException"},
		{Coordinator: "hdfs.RegistrationProc.Step", Retried: "hdfs.RegistrationProc.handshake", Exception: "ConnectException"},
	}
	cov := Collect(app.Suite, locs)
	if len(cov.Order) != len(app.Suite.Tests) {
		t.Fatalf("order = %d tests", len(cov.Order))
	}
	covered := cov.Covered()
	if !covered[LocPair{Coordinator: "hdfs.WebFS.Fetch", Retried: "hdfs.WebFS.connect"}] {
		t.Error("WebFS.Fetch/connect should be covered by the suite")
	}
	if !covered[LocPair{Coordinator: "hdfs.EditLogTailer.CatchUp", Retried: "hdfs.EditLogTailer.fetchEdits"}] {
		t.Error("CatchUp/fetchEdits should be covered")
	}
	if covered[LocPair{Coordinator: "hdfs.RegistrationProc.Step", Retried: "hdfs.RegistrationProc.handshake"}] {
		t.Error("RegistrationProc is never exercised by the suite; it must not be covered")
	}
	if cov.Stripped == 0 {
		t.Error("the mover test's retry-restricting override should be stripped")
	}
}

func TestPreparedOverridesPropagated(t *testing.T) {
	suite := testkit.Suite{App: "XX", Name: "X", Tests: []testkit.Test{{
		Name: "x.TestCfg", App: "XX",
		Overrides: map[string]string{"a.retry.max": "1", "a.buffer": "64"},
		Body: func(ctx context.Context, o map[string]string) error {
			return nil
		},
	}}}
	cov := Collect(suite, nil)
	eff := cov.Prepared["x.TestCfg"]
	if _, ok := eff["a.retry.max"]; ok {
		t.Error("retry-restricting override survived preparation")
	}
	if eff["a.buffer"] != "64" {
		t.Error("unrelated override should survive")
	}
}
