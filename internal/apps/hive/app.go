// Package hive is the corpus miniature of Apache Hive (HI in the
// evaluation): metastore access, HiveServer2 statement execution, the Tez
// task queue, and warehouse maintenance. Much of Hive's retry is driven
// by error codes rather than exceptions (§4.2), which is why HI has the
// lowest dynamic retry coverage in Table 5. The package carries the
// HIVE-23894 cancel-retried bug (§2.2) and both sides of the
// TTransportException and IllegalArgumentException retry-ratio outliers
// (§3.2.2).
//
// Ground truth lives in manifest.go; detectors never read it.
package hive

import (
	"context"

	"wasabi/internal/apps/common"
	"wasabi/internal/trace"
)

// App is a miniature Hive deployment: a metastore, two executors, and
// warehouse state.
type App struct {
	Config    *common.Config
	Cluster   *common.Cluster
	Warehouse *common.KV
}

// New constructs a deployment with default configuration.
func New() *App {
	return &App{
		Config: common.NewConfig(map[string]string{
			"hive.metastore.connect.retries":    "5",
			"hive.metastore.client.retry.delay": "300ms",
			"hive.server2.statement.retries":    "3",
			"hive.tez.task.max.attempts":        "4",
			"hive.session.acquire.wait":         "150ms",
			"hive.stats.publish.retries":        "4",
			"hive.lock.numretries":              "6",
			"hive.partition.fetch.retries":      "3",
		}),
		Cluster:   common.NewCluster("ms1", "exec1", "exec2"),
		Warehouse: common.NewKV(),
	}
}

// log emits an application log line into the run trace.
func (a *App) log(ctx context.Context, format string, args ...any) {
	trace.Note(ctx, "[hive] "+format, args...)
}
