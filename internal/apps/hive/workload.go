package hive

import (
	"context"

	"wasabi/internal/testkit"
)

// workloadTests are end-to-end scenario tests; each covers several retry
// locations the focused tests also reach (§3.1.4 planning redundancy).
func workloadTests() []testkit.Test {
	return []testkit.Test{
		{
			Name: "hive.TestQueryEndToEndFlow", App: "HI",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				m := NewMetastoreClient(app)
				if err := m.Connect(ctx, "thrift://ms1:9083"); err != nil {
					return err
				}
				if err := NewZKLockManager(app).AcquireLock(ctx, "flow_t"); err != nil {
					return err
				}
				if _, err := NewSessionPool(app).Acquire(ctx); err != nil {
					return err
				}
				out, err := NewHS2Client(app).ExecuteStatement(ctx, "select count(*) from flow_t")
				if err != nil {
					return err
				}
				return testkit.Assertf(out == "rows:1", "out = %q", out)
			},
		},
		{
			Name: "hive.TestDDLFlow", App: "HI",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				m := NewMetastoreClient(app)
				if err := m.Connect(ctx, "thrift://ms1:9083"); err != nil {
					return err
				}
				if err := m.AlterTable(ctx, "flow_t2", "add col y string"); err != nil {
					return err
				}
				if err := NewStatsPublisher(app).Publish(ctx, "flow_t2"); err != nil {
					return err
				}
				return NewHookRunner(app).RunHook(ctx, "post-ddl")
			},
		},
		{
			Name: "hive.TestQueryPlanningFlow", App: "HI",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				p := NewPartitionPruner(app)
				for i := 0; i < 5; i++ {
					if _, err := p.FetchPartition(ctx, "fp"+string(rune('a'+i))); err != nil {
						return err
					}
				}
				t := NewTaskProcessor(app)
				t.Submit(&TezTask{ID: "flow-q"})
				return t.Drain(ctx)
			},
		},
	}
}
