package hive

import (
	"context"
	"testing"

	"wasabi/internal/errmodel"
	"wasabi/internal/fault"
	"wasabi/internal/trace"
)

func injected(coordinator, retried, exc string, k int) (context.Context, *trace.Run) {
	in := fault.NewInjector([]fault.Rule{{
		Loc: fault.Location{Coordinator: coordinator, Retried: retried, Exception: exc},
		K:   k,
	}})
	run := trace.NewRun("t")
	return fault.With(trace.With(context.Background(), run), in), run
}

// TestCancelledTaskIsResubmitted demonstrates HIVE-23894: the processor
// re-submits a cancelled task until its budget runs out.
func TestCancelledTaskIsResubmitted(t *testing.T) {
	app := New()
	p := NewTaskProcessor(app)
	task := &TezTask{ID: "q1", IsShutdown: true}
	p.Submit(task)
	err := p.Drain(context.Background())
	if err == nil {
		t.Fatal("cancelled task should eventually fail the drain")
	}
	if task.attempts != app.Config.GetInt("hive.tez.task.max.attempts", 4) {
		t.Errorf("attempts = %d; the whole budget was supposed to be burned", task.attempts)
	}
}

// TestStatsPublishPartialStateBug demonstrates the HOW bug: one transient
// flush failure leaves the stage marker behind, so the retry crashes with
// IllegalStateException.
func TestStatsPublishPartialStateBug(t *testing.T) {
	app := New()
	ctx, _ := injected("hive.StatsPublisher.Publish", "hive.StatsPublisher.publishOnce", "IOException", 1)
	err := NewStatsPublisher(app).Publish(ctx, "t1")
	if err == nil || !errmodel.IsClass(err, "IllegalStateException") {
		t.Fatalf("err = %v, want IllegalStateException", err)
	}
}

// TestExecuteStatementGivesUpOnTransport demonstrates the IF outlier: the
// transient transport exception retried elsewhere aborts immediately here.
func TestExecuteStatementGivesUpOnTransport(t *testing.T) {
	app := New()
	ctx, run := injected("hive.HS2Client.ExecuteStatement", "hive.HS2Client.execOnce", "TTransportException", 1)
	_, err := NewHS2Client(app).ExecuteStatement(ctx, "select 1")
	if err == nil || !errmodel.IsClass(err, "TTransportException") {
		t.Fatalf("err = %v", err)
	}
	for _, e := range run.Events() {
		if e.Kind == trace.KindInjection && e.Count > 1 {
			t.Error("TTransportException must not be retried here (that is the bug)")
		}
	}
}

// TestAlterTableRetriesIllegalArgument demonstrates the other IF outlier.
func TestAlterTableRetriesIllegalArgument(t *testing.T) {
	app := New()
	ctx, run := injected("hive.MetastoreClient.AlterTable", "hive.MetastoreClient.alterOnce", "IllegalArgumentException", 2)
	if err := NewMetastoreClient(app).AlterTable(ctx, "t2", "c"); err != nil {
		t.Fatalf("should heal after injections stop: %v", err)
	}
	injections := 0
	for _, e := range run.Events() {
		if e.Kind == trace.KindInjection {
			injections++
		}
	}
	if injections != 2 {
		t.Errorf("injections = %d; IllegalArgumentException was (wrongly) retried", injections)
	}
}

// TestSessionAcquireUnbounded demonstrates the missing-cap bug healing
// only because the fault stops.
func TestSessionAcquireUnbounded(t *testing.T) {
	app := New()
	ctx, run := injected("hive.SessionPool.Acquire", "hive.SessionPool.acquireOnce", "TimeoutException", 120)
	if _, err := NewSessionPool(app).Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	injections := 0
	for _, e := range run.Events() {
		if e.Kind == trace.KindInjection {
			injections++
		}
	}
	if injections != 120 {
		t.Errorf("injections = %d; only healing bounds this loop", injections)
	}
}

// TestChores exercises the non-retry housekeeping services.
func TestChores(t *testing.T) {
	app := New()
	ctx := context.Background()
	app.Warehouse.Put("partitionage/p1", "120")
	app.Warehouse.Put("partitionage/p2", "oops")
	s := NewPartitionRetentionSweeper(app)
	s.SweepOnce(ctx)
	if s.Dropped != 1 || s.Kept != 1 {
		t.Errorf("sweeper = %+v", s)
	}
	app.Warehouse.Put("udf/f1", "com.example.F@f.jar")
	app.Warehouse.Put("udf/f2", "broken")
	v := NewFunctionRegistryValidator(app)
	v.ValidateOnce(ctx)
	if len(v.Broken) != 1 {
		t.Errorf("broken = %v", v.Broken)
	}
	app.Warehouse.Put("txnopen/t1", "600")
	hk := NewTxnHouseKeeper(app)
	hk.HouseKeepOnce(ctx)
	if hk.Aborted != 1 {
		t.Errorf("aborted = %d", hk.Aborted)
	}
	app.Warehouse.Put("colstats/c1", "ndv=10")
	app.Warehouse.Put("colstats/c2", "garbage")
	m := NewColumnStatsMerger(app)
	m.MergeOnce(ctx)
	if m.Merged["ndv"] != 10 || m.Bad != 1 {
		t.Errorf("merger = %+v", m)
	}
}
