package hive

import (
	"context"
	"strconv"
	"strings"
)

// Housekeeping chores of the Hive miniature: per-item iteration with
// error tolerance — structural retry look-alikes the retry-naming filter
// prunes (§4.4).

type houseError struct{ what string }

func (e *houseError) Error() string { return e.what }

// PartitionRetentionSweeper drops partitions past their retention.
type PartitionRetentionSweeper struct {
	app *App
	// Dropped and Kept count pass outcomes.
	Dropped, Kept int
}

// NewPartitionRetentionSweeper returns a sweeper.
func NewPartitionRetentionSweeper(app *App) *PartitionRetentionSweeper {
	return &PartitionRetentionSweeper{app: app}
}

// expired parses one partition's age record.
func (p *PartitionRetentionSweeper) expired(key string) (bool, error) {
	v, _ := p.app.Warehouse.Get(key)
	days, err := strconv.Atoi(v)
	if err != nil {
		return false, &houseError{what: "unreadable partition age " + key}
	}
	return days > 90, nil
}

// SweepOnce walks every partition once.
func (p *PartitionRetentionSweeper) SweepOnce(ctx context.Context) {
	for _, key := range p.app.Warehouse.ListPrefix("partitionage/") {
		old, err := p.expired(key)
		if err != nil {
			p.app.log(ctx, "retention sweep skipping %s: %v", key, err)
			p.Kept++
			continue
		}
		if !old {
			p.Kept++
			continue
		}
		p.app.Warehouse.Delete(key)
		p.Dropped++
	}
}

// FunctionRegistryValidator checks registered UDF descriptors.
type FunctionRegistryValidator struct {
	app *App
	// Broken lists invalid function entries.
	Broken []string
}

// NewFunctionRegistryValidator returns a validator.
func NewFunctionRegistryValidator(app *App) *FunctionRegistryValidator {
	return &FunctionRegistryValidator{app: app}
}

// validate checks one UDF descriptor ("class@jar").
func (f *FunctionRegistryValidator) validate(key string) error {
	v, _ := f.app.Warehouse.Get(key)
	parts := strings.Split(v, "@")
	if len(parts) != 2 || parts[0] == "" || parts[1] == "" {
		return &houseError{what: "malformed udf descriptor " + key}
	}
	return nil
}

// ValidateOnce walks every registered function once.
func (f *FunctionRegistryValidator) ValidateOnce(ctx context.Context) {
	for _, key := range f.app.Warehouse.ListPrefix("udf/") {
		if err := f.validate(key); err != nil {
			f.app.log(ctx, "udf registry: %v", err)
			f.Broken = append(f.Broken, key)
			continue
		}
	}
}

// TxnHouseKeeper aborts transactions open past the timeout.
type TxnHouseKeeper struct {
	app *App
	// Aborted counts timed-out transactions.
	Aborted int
}

// NewTxnHouseKeeper returns a housekeeper.
func NewTxnHouseKeeper(app *App) *TxnHouseKeeper { return &TxnHouseKeeper{app: app} }

// openTooLong parses one transaction's age record.
func (t *TxnHouseKeeper) openTooLong(key string) (bool, error) {
	v, _ := t.app.Warehouse.Get(key)
	secs, err := strconv.Atoi(v)
	if err != nil {
		return false, &houseError{what: "unreadable txn age " + key}
	}
	return secs > 300, nil
}

// HouseKeepOnce walks every open transaction once.
func (t *TxnHouseKeeper) HouseKeepOnce(ctx context.Context) {
	for _, key := range t.app.Warehouse.ListPrefix("txnopen/") {
		old, err := t.openTooLong(key)
		if err != nil {
			t.app.log(ctx, "txn housekeeping skipping %s: %v", key, err)
			continue
		}
		if old {
			t.app.Warehouse.Delete(key)
			t.Aborted++
		}
	}
}

// ColumnStatsMerger folds partition-level column stats into table stats.
type ColumnStatsMerger struct {
	app *App
	// Merged maps column name to merged cardinality; Bad counts skipped
	// records.
	Merged map[string]int
	Bad    int
}

// NewColumnStatsMerger returns a merger.
func NewColumnStatsMerger(app *App) *ColumnStatsMerger {
	return &ColumnStatsMerger{app: app, Merged: make(map[string]int)}
}

// MergeOnce folds every partition stat record once.
func (c *ColumnStatsMerger) MergeOnce(ctx context.Context) {
	for _, key := range c.app.Warehouse.ListPrefix("colstats/") {
		v, _ := c.app.Warehouse.Get(key)
		parts := strings.SplitN(v, "=", 2)
		if len(parts) != 2 {
			c.app.log(ctx, "colstats merge skipping %s", key)
			c.Bad++
			continue
		}
		n, err := strconv.Atoi(parts[1])
		if err != nil {
			c.app.log(ctx, "colstats merge skipping %s: %v", key, err)
			c.Bad++
			continue
		}
		c.Merged[parts[0]] += n
	}
}

// ScratchDirAuditor reports scratch directories without an owning session.
type ScratchDirAuditor struct {
	app *App
	// Orphans lists unowned scratch dirs.
	Orphans []string
}

// NewScratchDirAuditor returns an auditor.
func NewScratchDirAuditor(app *App) *ScratchDirAuditor { return &ScratchDirAuditor{app: app} }

// owned checks one scratch dir's session reference.
func (s *ScratchDirAuditor) owned(key string) error {
	sess, _ := s.app.Warehouse.Get(key)
	if !s.app.Warehouse.Exists("session/" + sess) {
		return &houseError{what: "scratch dir " + key + " has no session"}
	}
	return nil
}

// AuditOnce walks every scratch dir once.
func (s *ScratchDirAuditor) AuditOnce(ctx context.Context) {
	for _, key := range s.app.Warehouse.ListPrefix("scratch/") {
		if err := s.owned(key); err != nil {
			s.app.log(ctx, "scratch audit: %v", err)
			s.Orphans = append(s.Orphans, key)
			continue
		}
	}
}
