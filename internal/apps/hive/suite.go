package hive

import (
	"context"

	"wasabi/internal/errmodel"
	"wasabi/internal/testkit"
)

// Suite returns the Hive miniature's existing unit-test suite.
func Suite() testkit.Suite {
	s := testkit.Suite{App: "HI", Name: "Hive", Tests: []testkit.Test{
		{
			Name: "hive.TestMetastoreConnect", App: "HI",
			RetryLabeled: true,
			Overrides:    map[string]string{"hive.metastore.connect.retries": "1"},
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				m := NewMetastoreClient(app)
				if err := m.Connect(ctx, "thrift://ms1:9083"); err != nil {
					return err
				}
				return testkit.Assertf(m.connected, "not connected")
			},
		},
		{
			Name: "hive.TestMetastoreConnectBadURI", App: "HI",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				err := NewMetastoreClient(app).Connect(ctx, "")
				if err == nil {
					return testkit.Assertf(false, "expected IllegalArgumentException")
				}
				if errmodel.IsClass(err, "IllegalArgumentException") {
					return nil
				}
				return err
			},
		},
		{
			Name: "hive.TestAlterTable", App: "HI",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				if err := NewMetastoreClient(app).AlterTable(ctx, "t1", "add col x int"); err != nil {
					return err
				}
				v, _ := app.Warehouse.Get("table/t1/schema")
				return testkit.Assertf(v == "add col x int", "schema = %q", v)
			},
		},
		{
			Name: "hive.TestExecuteStatement", App: "HI",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				out, err := NewHS2Client(app).ExecuteStatement(ctx, "select 1")
				if err != nil {
					return err
				}
				return testkit.Assertf(out == "rows:1", "out = %q", out)
			},
		},
		{
			Name: "hive.TestAcquireLock", App: "HI",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				if err := NewZKLockManager(app).AcquireLock(ctx, "t2"); err != nil {
					return err
				}
				v, _ := app.Warehouse.Get("lock/t2")
				return testkit.Assertf(v == "held", "lock = %q", v)
			},
		},
		{
			Name: "hive.TestTaskQueueExecutes", App: "HI",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				p := NewTaskProcessor(app)
				p.Submit(&TezTask{ID: "q1"})
				p.Submit(&TezTask{ID: "q2"})
				if err := p.Drain(ctx); err != nil {
					return err
				}
				return testkit.Assertf(p.Executed == 2, "executed = %d", p.Executed)
			},
		},
		{
			Name: "hive.TestSessionAcquire", App: "HI",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				id, err := NewSessionPool(app).Acquire(ctx)
				if err != nil {
					return err
				}
				return testkit.Assertf(id == "session-1", "session = %q", id)
			},
		},
		{
			Name: "hive.TestStatsPublish", App: "HI",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				if err := NewStatsPublisher(app).Publish(ctx, "t3"); err != nil {
					return err
				}
				v, _ := app.Warehouse.Get("stats/t3")
				return testkit.Assertf(v == "published", "stats = %q", v)
			},
		},
		{
			Name: "hive.TestPartitionPlanning", App: "HI",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				p := NewPartitionPruner(app)
				// Planning walks every partition and tolerates failures;
				// missing descriptors degrade the plan, not the query.
				fetched := 0
				for i := 0; i < 40; i++ {
					part := "p" + string(rune('a'+i%26))
					if _, err := p.FetchPartition(ctx, part); err == nil {
						fetched++
					}
				}
				return testkit.Assertf(fetched > 0, "no partition fetched")
			},
		},
		{
			Name: "hive.TestHookRunner", App: "HI",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				if err := NewHookRunner(app).RunHook(ctx, "pre-exec"); err != nil {
					return err
				}
				v, _ := app.Warehouse.Get("hook/pre-exec")
				return testkit.Assertf(v == "ran", "hook = %q", v)
			},
		},
		{
			Name: "hive.TestSubmitDAGResubmitsOnBusyEngine", App: "HI",
			RetryLabeled: true,
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				t := NewTezSubmitter(app)
				t.SetStatusSource(func(dag string, attempt int) string {
					if attempt < 2 {
						return "QUEUE_FULL"
					}
					return "ACCEPTED"
				})
				status := t.SubmitDAG(ctx, "dag-1")
				return testkit.Assertf(status == "ACCEPTED", "status = %q", status)
			},
		},
		{
			Name: "hive.TestSubmitDAGInvalidIsFinal", App: "HI",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				t := NewTezSubmitter(app)
				calls := 0
				t.SetStatusSource(func(string, int) string {
					calls++
					return "INVALID_DAG"
				})
				status := t.SubmitDAG(ctx, "dag-2")
				if err := testkit.Assertf(status == "INVALID_DAG", "status = %q", status); err != nil {
					return err
				}
				return testkit.Assertf(calls == 1, "invalid dag resubmitted %d times", calls)
			},
		},
		{
			Name: "hive.TestLlapFallsBackAfterRequeues", App: "HI",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				l := NewLlapScheduler(app)
				l.SetStatusSource(func(string) string { return "NO_SLOTS" })
				l.Enqueue("f-1")
				l.Drain(ctx)
				return testkit.Assertf(len(l.FellBack) == 1, "fellback = %v", l.FellBack)
			},
		},
		{
			Name: "hive.TestCompactionBusyThenDone", App: "HI",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				c := NewCompactionInitiator(app)
				c.SetStatusSource(func(table string, round int) string {
					if round == 0 {
						return "WORKERS_BUSY"
					}
					return "DONE"
				})
				status := c.RunRound(ctx, "t4")
				return testkit.Assertf(status == "DONE", "status = %q", status)
			},
		},
		{
			Name: "hive.TestReplLoaderPartialPass", App: "HI",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				r := NewReplLoader(app)
				r.SetStatusSource(func(dump string, pass int) string {
					if pass == 0 {
						return "PARTIAL"
					}
					return "LOADED"
				})
				status := r.LoadDump(ctx, "dump-1")
				return testkit.Assertf(status == "LOADED", "status = %q", status)
			},
		},
		{
			Name: "hive.TestDescribeWarehouse", App: "HI",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				app.Warehouse.Put("table/t9/schema", "x")
				out := DescribeWarehouse(app)
				return testkit.Assertf(len(out) > 0, "empty description")
			},
		},
	}}
	s.Tests = append(s.Tests, workloadTests()...)
	return s
}
