package hive

import (
	"context"
	"strconv"
	"strings"
	"time"

	"wasabi/internal/vclock"
)

// This file holds the ACID compaction initiator, whose retry is driven by
// STATUS CODES rather than exceptions and therefore cannot be exercised
// by exception injection (§4.2).

// Compaction status codes reported by the worker pool.
const (
	compactDone    = "DONE"
	compactBusy    = "WORKERS_BUSY"
	compactAborted = "ABORTED"
)

// CompactionInitiator schedules delta-file compactions for ACID tables.
type CompactionInitiator struct {
	app     *App
	statusF func(table string, round int) string
	// Compacted counts completed compactions.
	Compacted int
}

// NewCompactionInitiator returns an initiator whose workers are always
// free; tests replace statusF.
func NewCompactionInitiator(app *App) *CompactionInitiator {
	return &CompactionInitiator{
		app:     app,
		statusF: func(string, int) string { return compactDone },
	}
}

// SetStatusSource replaces the worker status source.
func (c *CompactionInitiator) SetStatusSource(f func(table string, round int) string) {
	c.statusF = f
}

// RunRound attempts to compact a table, re-requesting while the worker
// pool is busy, with a pause, up to a bounded number of rounds. An
// ABORTED status is final for this round.
func (c *CompactionInitiator) RunRound(ctx context.Context, table string) string {
	const maxRounds = 5
	for round := 0; round < maxRounds; round++ {
		status := c.statusF(table, round)
		switch status {
		case compactDone:
			c.Compacted++
			c.app.Warehouse.Put("compaction/"+table, "done")
			return compactDone
		case compactAborted:
			c.app.log(ctx, "compaction of %s aborted", table)
			return compactAborted
		case compactBusy:
			c.app.log(ctx, "workers busy for %s, re-requesting", table)
			vclock.Sleep(ctx, 250*time.Millisecond)
		}
	}
	return compactBusy
}

// DescribeWarehouse renders a human-readable summary of warehouse state,
// used by the CLI's DESCRIBE FORMATTED output.
func DescribeWarehouse(app *App) string {
	var b strings.Builder
	b.WriteString("warehouse summary\n")
	for _, section := range []string{"table/", "dag/", "compaction/", "repl/"} {
		keys := app.Warehouse.ListPrefix(section)
		b.WriteString(section)
		b.WriteString(": ")
		b.WriteString(strconv.Itoa(len(keys)))
		b.WriteString(" entries\n")
	}
	return b.String()
}
