package hive

import (
	"context"
	"time"

	"wasabi/internal/apps/common"
	"wasabi/internal/errmodel"
	"wasabi/internal/fault"
	"wasabi/internal/vclock"
)

// TezTask is a queued execution task. A task may be shut down (cancelled)
// while queued or running.
type TezTask struct {
	ID         string
	IsShutdown bool
	attempts   int
}

// TaskProcessor drains the Tez task queue; failed tasks are re-submitted —
// the queue-based retry of the paper's Listing 3.
type TaskProcessor struct {
	app   *App
	queue *common.Queue[*TezTask]
	// Executed counts completed tasks.
	Executed int
}

// NewTaskProcessor returns a processor with an empty queue.
func NewTaskProcessor(app *App) *TaskProcessor {
	return &TaskProcessor{app: app, queue: common.NewQueue[*TezTask]()}
}

// Submit enqueues a task.
func (p *TaskProcessor) Submit(t *TezTask) { p.queue.Put(t) }

// executeTask runs one task on an executor.
//
// Throws: RemoteException, SocketTimeoutException.
func (p *TaskProcessor) executeTask(ctx context.Context, t *TezTask) error {
	if err := fault.Hook(ctx); err != nil {
		return err
	}
	if t.IsShutdown {
		return errmodel.Newf("ServiceException", "task %s was cancelled", t.ID)
	}
	p.app.Warehouse.Put("task/"+t.ID, "done")
	return nil
}

// processTask handles one queued task, re-submitting failures for retry.
//
// BUG (IF, wrong retry policy — HIVE-23894, Listing 3): a cancelled task
// fails with a cancellation error, but the processor treats every failure
// as transient and re-submits it, so "cancel" never takes effect and the
// queue keeps burning executor slots on a dead task. The fix checks
// IsShutdown before re-enqueueing.
func (p *TaskProcessor) processTask(ctx context.Context, t *TezTask) error {
	maxRetries := p.app.Config.GetInt("hive.tez.task.max.attempts", 4)
	if err := p.executeTask(ctx, t); err != nil {
		if t.attempts < maxRetries {
			t.attempts++
			vclock.Sleep(ctx, 100*time.Millisecond)
			p.queue.Put(t) // re-submit — even when the task was cancelled
			return nil
		}
		return err
	}
	p.Executed++
	return nil
}

// Drain processes queued tasks until empty.
func (p *TaskProcessor) Drain(ctx context.Context) error {
	for {
		t, ok := p.queue.Take()
		if !ok {
			return nil
		}
		if err := p.processTask(ctx, t); err != nil {
			return err
		}
	}
}

// SessionPool hands out HiveServer2 sessions.
type SessionPool struct {
	app *App
}

// NewSessionPool returns a pool.
func NewSessionPool(app *App) *SessionPool { return &SessionPool{app: app} }

// acquireOnce claims a session slot.
//
// Throws: TimeoutException.
func (s *SessionPool) acquireOnce(ctx context.Context) (string, error) {
	if err := fault.Hook(ctx); err != nil {
		return "", err
	}
	return "session-1", nil
}

// Acquire claims a session, retrying until one is available.
//
// BUG (WHEN, missing cap): session acquisition retries forever (with a
// wait); if the pool is permanently exhausted the caller hangs here.
func (s *SessionPool) Acquire(ctx context.Context) (string, error) {
	retryWait := s.app.Config.GetDuration("hive.session.acquire.wait", 150*time.Millisecond)
	for {
		id, err := s.acquireOnce(ctx)
		if err == nil {
			return id, nil
		}
		s.app.log(ctx, "session acquire failed: %v", err)
		vclock.Sleep(ctx, retryWait)
	}
}

// StatsPublisher aggregates and publishes table statistics.
type StatsPublisher struct {
	app *App
}

// NewStatsPublisher returns a publisher.
func NewStatsPublisher(app *App) *StatsPublisher { return &StatsPublisher{app: app} }

// publishOnce stages the aggregate and then flushes it. The staging
// happens before the flush, so a flush failure leaves the stage marker
// behind.
//
// Throws: IOException.
func (s *StatsPublisher) publishOnce(ctx context.Context, table string) error {
	if !s.app.Warehouse.PutIfAbsent("stats/"+table+"/staged", "true") {
		return errmodel.Newf("IllegalStateException", "stats for %s already staged", table)
	}
	if err := fault.Hook(ctx); err != nil {
		return err // flush failed; stage marker left behind
	}
	s.app.Warehouse.Put("stats/"+table, "published")
	return nil
}

// Publish publishes statistics with bounded, delayed retry.
//
// BUG (HOW, improper state reset): a failed flush leaves the stage marker
// in place, so the retry crashes with IllegalStateException instead of
// republishing — the §2.4 partial-state pattern.
func (s *StatsPublisher) Publish(ctx context.Context, table string) error {
	maxRetries := s.app.Config.GetInt("hive.stats.publish.retries", 4)
	var last error
	for retry := 0; retry < maxRetries; retry++ {
		err := s.publishOnce(ctx, table)
		if err == nil {
			return nil
		}
		if errmodel.IsClass(err, "IllegalStateException") {
			return err
		}
		last = err
		vclock.Sleep(ctx, 150*time.Millisecond)
	}
	return last
}

// PartitionPruner fetches partition metadata for query planning.
type PartitionPruner struct {
	app *App
}

// NewPartitionPruner returns a pruner.
func NewPartitionPruner(app *App) *PartitionPruner { return &PartitionPruner{app: app} }

// fetchPartition reads one partition descriptor.
//
// Throws: SocketTimeoutException.
func (p *PartitionPruner) fetchPartition(ctx context.Context, part string) (string, error) {
	if err := fault.Hook(ctx); err != nil {
		return "", err
	}
	return "desc:" + part, nil
}

// FetchPartition reads a partition descriptor with a small bounded retry
// and pause. The cap is correct; query planning re-drives it for every
// partition of every table and tolerates per-partition failures — the
// caller-level re-driving behind §4.3's missing-cap false positives.
func (p *PartitionPruner) FetchPartition(ctx context.Context, part string) (string, error) {
	maxRetries := p.app.Config.GetInt("hive.partition.fetch.retries", 3)
	var last error
	for retry := 0; retry < maxRetries; retry++ {
		desc, err := p.fetchPartition(ctx, part)
		if err == nil {
			return desc, nil
		}
		last = err
		vclock.Sleep(ctx, 50*time.Millisecond)
	}
	return "", last
}

// HookRunner executes pre/post execution hooks.
type HookRunner struct {
	app *App
}

// NewHookRunner returns a runner.
func NewHookRunner(app *App) *HookRunner { return &HookRunner{app: app} }

// runHook executes one hook.
//
// Throws: IOException.
func (h *HookRunner) runHook(ctx context.Context, name string) error {
	if err := fault.Hook(ctx); err != nil {
		return err
	}
	h.app.Warehouse.Put("hook/"+name, "ran")
	return nil
}

// RunHook executes a hook with bounded, delayed retry; exhausted retries
// are rethrown wrapped in the module's ServiceException — the wrapping
// behind §4.3's "different exception" false positives.
func (h *HookRunner) RunHook(ctx context.Context, name string) error {
	const maxRetries = 3
	var last error
	for retry := 0; retry < maxRetries; retry++ {
		err := h.runHook(ctx, name)
		if err == nil {
			return nil
		}
		last = err
		vclock.Sleep(ctx, 100*time.Millisecond)
	}
	return errmodel.Wrap("ServiceException", "hook "+name+" failed", last)
}
