package hive

import (
	"context"
	"time"

	"wasabi/internal/apps/common"
	"wasabi/internal/vclock"
)

// This file holds the submission-side services whose retry is status-code
// driven: the DAG submitter, the LLAP scheduler, and the replication
// loader. Their retry decisions inspect status results, not exceptions,
// so WASABI's injection cannot exercise them (§4.2) — but the fuzzy
// reader still identifies them as retry structures.

// DAG submission status codes returned by the execution engine.
const (
	dagAccepted    = "ACCEPTED"
	dagQueueFull   = "QUEUE_FULL"
	dagInvalid     = "INVALID_DAG"
	dagAMStarting  = "AM_STARTING"
	dagUnavailable = "ENGINE_UNAVAILABLE"
)

// TezSubmitter submits query DAGs to the execution engine.
type TezSubmitter struct {
	app     *App
	statusF func(dag string, attempt int) string
	// Submitted counts accepted DAGs.
	Submitted int
}

// NewTezSubmitter returns a submitter whose engine always accepts; tests
// replace statusF to simulate engine conditions.
func NewTezSubmitter(app *App) *TezSubmitter {
	return &TezSubmitter{
		app:     app,
		statusF: func(string, int) string { return dagAccepted },
	}
}

// SetStatusSource replaces the engine status source.
func (t *TezSubmitter) SetStatusSource(f func(dag string, attempt int) string) { t.statusF = f }

// SubmitDAG submits a DAG, re-submitting on transient engine statuses
// (queue full, AM starting, engine unavailable) with a pause, up to the
// configured attempt cap. An INVALID_DAG status is final.
func (t *TezSubmitter) SubmitDAG(ctx context.Context, dag string) string {
	maxAttempts := t.app.Config.GetInt("hive.tez.task.max.attempts", 4)
	for attempt := 0; attempt < maxAttempts; attempt++ {
		status := t.statusF(dag, attempt)
		switch status {
		case dagAccepted:
			t.Submitted++
			t.app.Warehouse.Put("dag/"+dag, "accepted")
			return dagAccepted
		case dagInvalid:
			t.app.log(ctx, "dag %s rejected as invalid", dag)
			return dagInvalid
		case dagQueueFull, dagAMStarting, dagUnavailable:
			t.app.log(ctx, "dag %s deferred (%s), resubmitting", dag, status)
			vclock.Sleep(ctx, 200*time.Millisecond)
		}
	}
	return dagUnavailable
}

// llapWork is a fragment scheduled onto LLAP daemons, carrying a status.
type llapWork struct {
	fragment string
	requeues int
}

// LLAP scheduling status codes.
const (
	llapScheduled = "SCHEDULED"
	llapNoSlots   = "NO_SLOTS"
	llapRejected  = "REJECTED"
)

// LlapScheduler places query fragments onto LLAP daemons via a queue.
// NO_SLOTS outcomes re-queue the fragment after a pause; REJECTED
// fragments fall back to containers.
type LlapScheduler struct {
	app     *App
	queue   *common.Queue[*llapWork]
	statusF func(fragment string) string
	// Placed counts scheduled fragments; FellBack lists rejected ones.
	Placed   int
	FellBack []string
}

// NewLlapScheduler returns a scheduler whose daemons always have slots;
// tests replace statusF.
func NewLlapScheduler(app *App) *LlapScheduler {
	return &LlapScheduler{
		app:     app,
		queue:   common.NewQueue[*llapWork](),
		statusF: func(string) string { return llapScheduled },
	}
}

// SetStatusSource replaces the daemon status source.
func (l *LlapScheduler) SetStatusSource(f func(string) string) { l.statusF = f }

// Enqueue adds a fragment for scheduling.
func (l *LlapScheduler) Enqueue(fragment string) {
	l.queue.Put(&llapWork{fragment: fragment})
}

// Drain schedules queued fragments until the queue is empty. NO_SLOTS
// re-queues a fragment up to a bounded number of times before falling
// back; REJECTED falls back immediately.
func (l *LlapScheduler) Drain(ctx context.Context) {
	const maxRequeues = 3
	for {
		w, ok := l.queue.Take()
		if !ok {
			return
		}
		switch status := l.statusF(w.fragment); status {
		case llapScheduled:
			l.Placed++
		case llapNoSlots:
			if w.requeues < maxRequeues {
				w.requeues++
				vclock.Sleep(ctx, 100*time.Millisecond)
				l.queue.Put(w)
				continue
			}
			l.FellBack = append(l.FellBack, w.fragment)
		case llapRejected:
			l.FellBack = append(l.FellBack, w.fragment)
		}
	}
}

// Replication load status codes.
const (
	replLoaded  = "LOADED"
	replPartial = "PARTIAL"
	replCorrupt = "CORRUPT_DUMP"
)

// ReplLoader applies replication dumps from a source warehouse.
type ReplLoader struct {
	app     *App
	statusF func(dump string, pass int) string
	// Applied counts loaded dumps.
	Applied int
}

// NewReplLoader returns a loader whose dumps always apply; tests replace
// statusF.
func NewReplLoader(app *App) *ReplLoader {
	return &ReplLoader{
		app:     app,
		statusF: func(string, int) string { return replLoaded },
	}
}

// SetStatusSource replaces the load status source.
func (r *ReplLoader) SetStatusSource(f func(dump string, pass int) string) { r.statusF = f }

// LoadDump applies a replication dump. A PARTIAL status re-runs the load
// (it is idempotent) with a pause, bounded; CORRUPT_DUMP is final.
func (r *ReplLoader) LoadDump(ctx context.Context, dump string) string {
	const maxPasses = 4
	for pass := 0; pass < maxPasses; pass++ {
		status := r.statusF(dump, pass)
		switch status {
		case replLoaded:
			r.Applied++
			r.app.Warehouse.Put("repl/"+dump, "loaded")
			return replLoaded
		case replCorrupt:
			r.app.log(ctx, "dump %s corrupt; manual intervention required", dump)
			return replCorrupt
		case replPartial:
			r.app.log(ctx, "dump %s applied partially, re-running load", dump)
			vclock.Sleep(ctx, 300*time.Millisecond)
		}
	}
	return replPartial
}
