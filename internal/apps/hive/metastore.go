package hive

import (
	"context"
	"time"

	"wasabi/internal/errmodel"
	"wasabi/internal/fault"
	"wasabi/internal/vclock"
)

// MetastoreClient talks to the Hive metastore over a thrift-style
// transport.
type MetastoreClient struct {
	app       *App
	connected bool
}

// NewMetastoreClient returns an unconnected client.
func NewMetastoreClient(app *App) *MetastoreClient { return &MetastoreClient{app: app} }

// openTransport opens the thrift transport to the metastore.
//
// Throws: TTransportException, IllegalArgumentException.
func (m *MetastoreClient) openTransport(ctx context.Context, uri string) error {
	if err := fault.Hook(ctx); err != nil {
		return err
	}
	if uri == "" {
		return errmodel.New("IllegalArgumentException", "empty metastore uri")
	}
	vclock.Elapse(ctx, time.Millisecond)
	m.connected = true
	return nil
}

// Connect opens the metastore connection, retrying transient transport
// failures with a delay up to the configured cap. A malformed URI is the
// caller's mistake and aborts immediately.
func (m *MetastoreClient) Connect(ctx context.Context, uri string) error {
	maxRetries := m.app.Config.GetInt("hive.metastore.connect.retries", 5)
	delay := m.app.Config.GetDuration("hive.metastore.client.retry.delay", 300*time.Millisecond)
	var last error
	for retry := 0; retry < maxRetries; retry++ {
		err := m.openTransport(ctx, uri)
		if err == nil {
			return nil
		}
		if errmodel.IsClass(err, "IllegalArgumentException") {
			return err
		}
		last = err
		vclock.Sleep(ctx, delay)
	}
	return last
}

// alterOnce applies one table alteration.
//
// Throws: TTransportException, IllegalArgumentException.
func (m *MetastoreClient) alterOnce(ctx context.Context, table, change string) error {
	if err := fault.Hook(ctx); err != nil {
		return err
	}
	m.app.Warehouse.Put("table/"+table+"/schema", change)
	return nil
}

// AlterTable applies a schema change with retry.
//
// BUG (IF, wrong retry policy — an IllegalArgumentException retry-ratio
// outlier): a malformed alteration is retried together with transient
// transport errors, burning the retry budget on a request that can never
// succeed and delaying the error back to the user.
func (m *MetastoreClient) AlterTable(ctx context.Context, table, change string) error {
	maxRetries := m.app.Config.GetInt("hive.metastore.connect.retries", 5)
	delay := m.app.Config.GetDuration("hive.metastore.client.retry.delay", 300*time.Millisecond)
	var last error
	for retry := 0; retry < maxRetries; retry++ {
		err := m.alterOnce(ctx, table, change)
		if err == nil {
			return nil
		}
		last = err
		vclock.Sleep(ctx, delay)
	}
	return last
}

// HS2Client executes statements against HiveServer2.
type HS2Client struct {
	app *App
}

// NewHS2Client returns a client.
func NewHS2Client(app *App) *HS2Client { return &HS2Client{app: app} }

// execOnce runs one statement.
//
// Throws: TTransportException, SocketTimeoutException.
func (c *HS2Client) execOnce(ctx context.Context, stmt string) (string, error) {
	if err := fault.Hook(ctx); err != nil {
		return "", err
	}
	vclock.Elapse(ctx, 2*time.Millisecond)
	return "rows:1", nil
}

// ExecuteStatement runs a statement with retry on timeouts.
//
// BUG (IF, wrong retry policy — the TTransportException retry-ratio
// outlier): transport failures are transient and retried everywhere else
// in this codebase (2/3 of the loops that can see them), but this loop
// gives up on them immediately, failing queries that a retry would save.
func (c *HS2Client) ExecuteStatement(ctx context.Context, stmt string) (string, error) {
	maxRetries := c.app.Config.GetInt("hive.server2.statement.retries", 3)
	var last error
	for retry := 0; retry < maxRetries; retry++ {
		out, err := c.execOnce(ctx, stmt)
		if err == nil {
			return out, nil
		}
		if errmodel.IsClass(err, "TTransportException") {
			return "", err
		}
		last = err
		vclock.Sleep(ctx, 200*time.Millisecond)
	}
	return "", last
}

// ZKLockManager acquires table locks through ZooKeeper.
type ZKLockManager struct {
	app *App
}

// NewZKLockManager returns a lock manager.
func NewZKLockManager(app *App) *ZKLockManager { return &ZKLockManager{app: app} }

// lockOnce attempts to create the lock znode.
//
// Throws: KeeperException.
func (z *ZKLockManager) lockOnce(ctx context.Context, table string) error {
	if err := fault.Hook(ctx); err != nil {
		return err
	}
	z.app.Warehouse.Put("lock/"+table, "held")
	return nil
}

// AcquireLock takes a table lock, re-attempting transient coordination
// failures up to hive.lock.numretries.
//
// BUG (WHEN, missing delay): lock attempts are fired back to back,
// stampeding the coordination service.
func (z *ZKLockManager) AcquireLock(ctx context.Context, table string) error {
	numRetries := z.app.Config.GetInt("hive.lock.numretries", 6)
	var last error
	for retry := 0; retry < numRetries; retry++ {
		err := z.lockOnce(ctx, table)
		if err == nil {
			return nil
		}
		last = err
	}
	return last
}

// RemoteSparkClient connects Hive-on-Spark sessions.
type RemoteSparkClient struct {
	app *App
}

// NewRemoteSparkClient returns a client.
func NewRemoteSparkClient(app *App) *RemoteSparkClient { return &RemoteSparkClient{app: app} }

// dial opens the remote driver connection.
//
// Throws: ConnectException.
func (r *RemoteSparkClient) dial(ctx context.Context) error {
	if err := fault.Hook(ctx); err != nil {
		return err
	}
	vclock.Elapse(ctx, time.Millisecond)
	return nil
}

// Connect dials the remote driver, re-attempting connection failures.
//
// BUG (WHEN, missing delay): the dial storm goes out back to back, and
// the counter is named "tries", hiding the loop from keyword-filtered
// structural analysis.
func (r *RemoteSparkClient) Connect(ctx context.Context) error {
	const maxTries = 5
	var last error
	for tries := 0; tries < maxTries; tries++ {
		err := r.dial(ctx)
		if err == nil {
			return nil
		}
		last = err
	}
	return last
}
