package hive

import "wasabi/internal/apps/meta"

// Manifest is the ground-truth record of every retry code structure in
// this package; detectors never read it.
func Manifest() []meta.Structure {
	return []meta.Structure{
		{
			App: "HI", Coordinator: "hive.MetastoreClient.Connect",
			Retried: []string{"hive.MetastoreClient.openTransport"},
			File:    "metastore.go", Mechanism: meta.Loop, Trigger: meta.Exception,
			Keyworded: true,
			Note:      "correct: cap + delay, retries TTransportException, IllegalArgumentException excluded",
		},
		{
			App: "HI", Coordinator: "hive.MetastoreClient.AlterTable",
			Retried: []string{"hive.MetastoreClient.alterOnce"},
			File:    "metastore.go", Mechanism: meta.Loop, Trigger: meta.Exception,
			Keyworded: true, Bug: meta.WrongPolicyRetried,
			Note: "IF: IllegalArgumentException retried (retry-ratio outlier, 2/9 corpus-wide)",
		},
		{
			App: "HI", Coordinator: "hive.HS2Client.ExecuteStatement",
			Retried: []string{"hive.HS2Client.execOnce"},
			File:    "metastore.go", Mechanism: meta.Loop, Trigger: meta.Exception,
			Keyworded: true, Bug: meta.WrongPolicyNotRetried,
			Note: "IF: TTransportException NOT retried here though retried in 2/3 of the loops that can see it (retry-ratio outlier)",
		},
		{
			App: "HI", Coordinator: "hive.ZKLockManager.AcquireLock",
			Retried: []string{"hive.ZKLockManager.lockOnce"},
			File:    "metastore.go", Mechanism: meta.Loop, Trigger: meta.Exception,
			Keyworded: true, Bug: meta.MissingDelay,
			Note: "WHEN: lock attempts stampede the coordination service back to back",
		},
		{
			App: "HI", Coordinator: "hive.RemoteSparkClient.Connect",
			Retried: []string{"hive.RemoteSparkClient.dial"},
			File:    "metastore.go", Mechanism: meta.Loop, Trigger: meta.Exception,
			Keyworded: false, Bug: meta.MissingDelay,
			Note: "WHEN: dial storm back to back; counter named 'tries' (CodeQL keyword miss); uncovered by the suite",
		},
		{
			App: "HI", Coordinator: "hive.TaskProcessor.processTask",
			Retried: []string{"hive.TaskProcessor.executeTask"},
			File:    "tasks.go", Mechanism: meta.Queue, Trigger: meta.Exception,
			Keyworded: true, Bug: meta.WrongPolicyRetried,
			Note: "IF: cancelled tasks re-submitted as if transient (HIVE-23894, Listing 3); invisible to WASABI's detectors (false negative)",
		},
		{
			App: "HI", Coordinator: "hive.SessionPool.Acquire",
			Retried: []string{"hive.SessionPool.acquireOnce"},
			File:    "tasks.go", Mechanism: meta.Loop, Trigger: meta.Exception,
			Keyworded: true, Bug: meta.MissingCap,
			Note: "WHEN: unbounded session acquisition (wait present)",
		},
		{
			App: "HI", Coordinator: "hive.StatsPublisher.Publish",
			Retried: []string{"hive.StatsPublisher.publishOnce"},
			File:    "tasks.go", Mechanism: meta.Loop, Trigger: meta.Exception,
			Keyworded: true, Bug: meta.How,
			Note: "HOW: stage marker not cleaned before retry; rewrite crashes with IllegalStateException (§2.4 partial-state pattern)",
		},
		{
			App: "HI", Coordinator: "hive.PartitionPruner.FetchPartition",
			Retried: []string{"hive.PartitionPruner.fetchPartition"},
			File:    "tasks.go", Mechanism: meta.Loop, Trigger: meta.Exception,
			Keyworded: true, HarnessRetried: true,
			Note: "correct cap; planning re-drives it per partition (missing-cap FP source, §4.3)",
		},
		{
			App: "HI", Coordinator: "hive.HookRunner.RunHook",
			Retried: []string{"hive.HookRunner.runHook"},
			File:    "tasks.go", Mechanism: meta.Loop, Trigger: meta.Exception,
			Keyworded: true, WrapsErrors: true,
			Note: "correct; wraps exhausted failures in ServiceException (different-exception oracle FP source)",
		},
		{
			App: "HI", Coordinator: "hive.TezSubmitter.SubmitDAG",
			File: "submitter.go", Mechanism: meta.Loop, Trigger: meta.ErrorCode,
			Keyworded: false,
			Note:      "correct error-code retry; uninjectable (§4.2) but LLM-identified",
		},
		{
			App: "HI", Coordinator: "hive.LlapScheduler.Drain",
			File: "submitter.go", Mechanism: meta.Queue, Trigger: meta.ErrorCode,
			Keyworded: false,
			Note:      "correct error-code re-queue; uninjectable (§4.2)",
		},
		{
			App: "HI", Coordinator: "hive.CompactionInitiator.RunRound",
			File: "execution.go", Mechanism: meta.Loop, Trigger: meta.ErrorCode,
			Keyworded: false,
			Note:      "correct error-code retry; uninjectable (§4.2)",
		},
		{
			App: "HI", Coordinator: "hive.ReplLoader.LoadDump",
			File: "submitter.go", Mechanism: meta.Loop, Trigger: meta.ErrorCode,
			Keyworded: false,
			Note:      "correct error-code retry; uninjectable (§4.2)",
		},
	}
}
