package common

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"wasabi/internal/errmodel"
)

func TestConfigDefaultsAndOverrides(t *testing.T) {
	c := NewConfig(map[string]string{"a.b": "1", "a.c": "x"})
	if c.Get("a.b") != "1" {
		t.Error("default not returned")
	}
	c.Set("a.b", "2")
	if c.Get("a.b") != "2" || !c.IsOverridden("a.b") {
		t.Error("override not visible")
	}
	if c.Default("a.b") != "1" {
		t.Error("default mutated by override")
	}
	c.Unset("a.b")
	if c.Get("a.b") != "1" || c.IsOverridden("a.b") {
		t.Error("unset did not restore the default")
	}
}

func TestConfigRestoreDefaults(t *testing.T) {
	c := NewConfig(map[string]string{"k": "v"})
	c.Set("k", "w")
	c.Set("extra", "1")
	c.RestoreDefaults()
	if c.Get("k") != "v" || c.Get("extra") != "" {
		t.Error("restore incomplete")
	}
	if len(c.Overrides()) != 0 {
		t.Error("overrides survived restore")
	}
}

func TestConfigTypedGetters(t *testing.T) {
	c := NewConfig(map[string]string{
		"n": "7", "neg": "-3", "bad": "xyz",
		"d": "250ms", "b1": "true", "b2": "no",
	})
	if c.GetInt("n", 0) != 7 || c.GetInt("neg", 0) != -3 {
		t.Error("int parsing broken")
	}
	if c.GetInt("bad", 42) != 42 || c.GetInt("missing", 42) != 42 {
		t.Error("int fallback broken")
	}
	if c.GetDuration("d", 0) != 250*time.Millisecond {
		t.Error("duration parsing broken")
	}
	if c.GetDuration("bad", time.Second) != time.Second {
		t.Error("duration fallback broken")
	}
	if !c.GetBool("b1", false) || c.GetBool("b2", true) {
		t.Error("bool parsing broken")
	}
	if !c.GetBool("missing", true) {
		t.Error("bool fallback broken")
	}
}

func TestConfigApplyOverrides(t *testing.T) {
	c := NewConfig(map[string]string{"x": "1"})
	c.ApplyOverrides(map[string]string{"x": "2", "y": "3"})
	if c.Get("x") != "2" || c.Get("y") != "3" {
		t.Error("ApplyOverrides incomplete")
	}
}

func TestQueueFIFO(t *testing.T) {
	q := NewQueue[int]()
	for i := 0; i < 5; i++ {
		q.Put(i)
	}
	if q.Len() != 5 {
		t.Fatalf("len = %d", q.Len())
	}
	for i := 0; i < 5; i++ {
		v, ok := q.Take()
		if !ok || v != i {
			t.Fatalf("take %d = %d, %v", i, v, ok)
		}
	}
	if _, ok := q.Take(); ok {
		t.Error("empty queue returned an item")
	}
}

func TestQueueDrain(t *testing.T) {
	q := NewQueue[string]()
	q.Put("a")
	q.Put("b")
	got := q.Drain()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("drain = %v", got)
	}
	if q.Len() != 0 {
		t.Error("drain left items behind")
	}
}

// Property: a queue preserves order and cardinality for any input.
func TestQueueOrderProperty(t *testing.T) {
	f := func(items []int) bool {
		q := NewQueue[int]()
		for _, v := range items {
			q.Put(v)
		}
		out := q.Drain()
		if len(out) != len(items) {
			return false
		}
		for i := range items {
			if out[i] != items[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKVBasics(t *testing.T) {
	kv := NewKV()
	kv.Put("a/1", "x")
	kv.Put("a/2", "y")
	kv.Put("b/1", "z")
	if v, ok := kv.Get("a/1"); !ok || v != "x" {
		t.Error("get failed")
	}
	if got := kv.ListPrefix("a/"); len(got) != 2 || got[0] != "a/1" {
		t.Errorf("prefix = %v", got)
	}
	if !kv.Delete("a/1") || kv.Delete("a/1") {
		t.Error("delete semantics broken")
	}
	if kv.DeletePrefix("a/") != 1 {
		t.Error("delete-prefix count wrong")
	}
	if kv.Len() != 1 {
		t.Errorf("len = %d", kv.Len())
	}
}

func TestKVPutIfAbsent(t *testing.T) {
	kv := NewKV()
	if !kv.PutIfAbsent("k", "1") {
		t.Error("first put should succeed")
	}
	if kv.PutIfAbsent("k", "2") {
		t.Error("second put should fail")
	}
	if v, _ := kv.Get("k"); v != "1" {
		t.Error("value overwritten")
	}
}

// Property: ListPrefix returns sorted keys that all carry the prefix.
func TestKVListPrefixProperty(t *testing.T) {
	f := func(n uint8) bool {
		kv := NewKV()
		for i := 0; i < int(n%30); i++ {
			kv.Put(fmt.Sprintf("p/%02d", i), "v")
			kv.Put(fmt.Sprintf("q/%02d", i), "v")
		}
		keys := kv.ListPrefix("p/")
		if len(keys) != int(n%30) {
			return false
		}
		for i := 1; i < len(keys); i++ {
			if keys[i-1] >= keys[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClusterCallAndOutage(t *testing.T) {
	c := NewCluster("n1", "n2")
	ctx := context.Background()
	if err := c.Call(ctx, "n1", func(n *Node) error {
		n.Store.Put("k", "v")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	c.Node("n1").SetDown(true)
	err := c.Call(ctx, "n1", func(*Node) error { return nil })
	if !errmodel.IsClass(err, "ConnectException") {
		t.Errorf("down node err = %v", err)
	}
	err = c.Call(ctx, "ghost", func(*Node) error { return nil })
	if !errmodel.IsClass(err, "ConnectException") {
		t.Errorf("missing node err = %v", err)
	}
}

func TestClusterNodesSorted(t *testing.T) {
	c := NewCluster("zeta", "alpha", "mid")
	nodes := c.Nodes()
	if len(nodes) != 3 || nodes[0].Name != "alpha" || nodes[2].Name != "zeta" {
		t.Errorf("nodes = %v", []string{nodes[0].Name, nodes[1].Name, nodes[2].Name})
	}
}

type countdownProc struct {
	left int
	fail error
}

func (p *countdownProc) Name() string { return "countdown" }
func (p *countdownProc) Step(context.Context) (bool, error) {
	if p.fail != nil {
		return false, p.fail
	}
	p.left--
	return p.left <= 0, nil
}

func TestProcedureExecutorRunsToCompletion(t *testing.T) {
	exec := NewProcedureExecutor()
	if err := exec.Run(context.Background(), &countdownProc{left: 5}); err != nil {
		t.Fatal(err)
	}
}

func TestProcedureExecutorPropagatesError(t *testing.T) {
	exec := NewProcedureExecutor()
	boom := errors.New("boom")
	if err := exec.Run(context.Background(), &countdownProc{left: 5, fail: boom}); !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
}

func TestProcedureExecutorStepBudget(t *testing.T) {
	exec := &ProcedureExecutor{MaxSteps: 3}
	err := exec.Run(context.Background(), &countdownProc{left: 100})
	if err == nil {
		t.Fatal("expected budget exhaustion")
	}
}

func TestProcedureExecutorHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	exec := NewProcedureExecutor()
	if err := exec.Run(ctx, &countdownProc{left: 5}); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v", err)
	}
}
