package common

import (
	"context"
	"fmt"
)

// Procedure is a state-machine task in the style of HBase's ProcedureV2
// framework, the "state-machine retry" mechanism of §2.5 and Listing 4.
//
// The executor repeatedly calls Step. A Step implementation performs the
// work of the procedure's *current* state and advances its own state on
// success. Retry is implicit: if the implementation catches an internal
// error and returns nil without advancing its state, the executor simply
// executes the same state again — whether that implicit retry has a delay
// or a cap is entirely up to the procedure code, which is where the
// HBASE-20492 and YARN-8362 classes of bugs live.
type Procedure interface {
	// Name identifies the procedure for logs and reports.
	Name() string
	// Step executes the current state. done=true completes the procedure;
	// a non-nil error aborts it.
	Step(ctx context.Context) (done bool, err error)
}

// ProcedureExecutor drives procedures to completion. MaxSteps is a safety
// valve against truly unbounded procedures (the framework-level analogue
// of a watchdog); the corpus default is high enough that a missing-cap bug
// still performs its 100 injected retry attempts before the fault heals.
type ProcedureExecutor struct {
	MaxSteps int
}

// NewProcedureExecutor returns an executor with the default step budget.
func NewProcedureExecutor() *ProcedureExecutor {
	return &ProcedureExecutor{MaxSteps: 100000}
}

// Run drives p until it reports done, returns an error, exceeds the step
// budget, or the context is cancelled.
func (e *ProcedureExecutor) Run(ctx context.Context, p Procedure) error {
	max := e.MaxSteps
	if max <= 0 {
		max = 100000
	}
	for i := 0; i < max; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		done, err := p.Step(ctx)
		if err != nil {
			return err
		}
		if done {
			return nil
		}
	}
	return fmt.Errorf("procedure %s exceeded step budget %d", p.Name(), max)
}
