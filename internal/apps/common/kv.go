package common

import (
	"sort"
	"strings"
	"sync"
)

// KV is a small in-memory key-value store used by the corpus miniatures as
// their durable substrate: HDFS block metadata, HBase filesystem layouts
// and region assignments, commit offsets, and so on.
type KV struct {
	mu   sync.RWMutex
	data map[string]string
}

// NewKV returns an empty store.
func NewKV() *KV { return &KV{data: make(map[string]string)} }

// Put stores value under key.
func (s *KV) Put(key, value string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.data[key] = value
}

// PutIfAbsent stores value only when key is absent; it reports whether the
// write happened.
func (s *KV) PutIfAbsent(key, value string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.data[key]; ok {
		return false
	}
	s.data[key] = value
	return true
}

// Get returns the value for key and whether it exists.
func (s *KV) Get(key string) (string, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.data[key]
	return v, ok
}

// Delete removes key, reporting whether it existed.
func (s *KV) Delete(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.data[key]
	delete(s.data, key)
	return ok
}

// Exists reports whether key is present.
func (s *KV) Exists(key string) bool {
	_, ok := s.Get(key)
	return ok
}

// ListPrefix returns all keys with the given prefix, sorted.
func (s *KV) ListPrefix(prefix string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []string
	for k := range s.data {
		if strings.HasPrefix(k, prefix) {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// DeletePrefix removes all keys with the given prefix and returns how many
// were removed.
func (s *KV) DeletePrefix(prefix string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for k := range s.data {
		if strings.HasPrefix(k, prefix) {
			delete(s.data, k)
			n++
		}
	}
	return n
}

// Len returns the number of keys.
func (s *KV) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.data)
}
