package common

import (
	"context"
	"sort"
	"sync"
	"time"

	"wasabi/internal/errmodel"
	"wasabi/internal/vclock"
)

// Cluster models the node topology of a corpus miniature. Node outages are
// an application-visible condition (methods return ConnectException when a
// peer is down), distinct from the transient faults WASABI injects.
type Cluster struct {
	mu    sync.RWMutex
	nodes map[string]*Node
	rtt   time.Duration
}

// Node is one member of the cluster, with its own local store.
type Node struct {
	Name  string
	Store *KV

	mu   sync.RWMutex
	down bool
}

// NewCluster creates a cluster with the given node names, all up, with a
// 2ms simulated round-trip time.
func NewCluster(names ...string) *Cluster {
	c := &Cluster{nodes: make(map[string]*Node, len(names)), rtt: 2 * time.Millisecond}
	for _, n := range names {
		c.nodes[n] = &Node{Name: n, Store: NewKV()}
	}
	return c
}

// Node returns the named node, or nil.
func (c *Cluster) Node(name string) *Node {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.nodes[name]
}

// Nodes returns all nodes sorted by name, for deterministic iteration.
func (c *Cluster) Nodes() []*Node {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Node, 0, len(c.nodes))
	for _, n := range c.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// SetDown marks a node up or down.
func (n *Node) SetDown(down bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.down = down
}

// Down reports whether the node is down.
func (n *Node) Down() bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.down
}

// Call performs a simulated RPC to the named node: it elapses the cluster
// round-trip time on the virtual clock and runs work against the node's
// store. A missing or down node yields a ConnectException.
func (c *Cluster) Call(ctx context.Context, node string, work func(*Node) error) error {
	vclock.Elapse(ctx, c.rtt)
	n := c.Node(node)
	if n == nil {
		return errmodel.Newf("ConnectException", "no such node %s", node)
	}
	if n.Down() {
		return errmodel.Newf("ConnectException", "node %s unreachable", node)
	}
	return work(n)
}
