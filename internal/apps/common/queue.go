package common

import "sync"

// Queue is a simple FIFO used by the queue-based retry mechanisms of the
// corpus: a request is packaged as a task object, and a processor that
// catches a task error may re-submit ("re-enqueue") the task for retry
// (§2.5, Listing 1 and Listing 3). The queue itself is policy-free.
type Queue[T any] struct {
	mu    sync.Mutex
	items []T
}

// NewQueue returns an empty queue.
func NewQueue[T any]() *Queue[T] { return &Queue[T]{} }

// Put appends an item.
func (q *Queue[T]) Put(item T) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.items = append(q.items, item)
}

// Take removes and returns the oldest item. ok is false when empty.
func (q *Queue[T]) Take() (item T, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.items) == 0 {
		return item, false
	}
	item = q.items[0]
	q.items = q.items[1:]
	return item, true
}

// Len returns the current queue length.
func (q *Queue[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// Drain removes and returns all items in order.
func (q *Queue[T]) Drain() []T {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := q.items
	q.items = nil
	return out
}
