// Package common provides the shared mini-system infrastructure the eight
// corpus applications are built on: configuration, task queues, a
// state-machine procedure executor, a key-value store, and a small cluster
// model. Mirroring the real systems, retry *logic* never lives here — each
// application implements retry ad hoc (loops, re-enqueueing, state
// transitions), which is exactly the property that makes retry hard to
// identify automatically (§2.5).
package common

import (
	"strconv"
	"sync"
	"time"
)

// Config is a per-application configuration: defaults set by the
// application, values overridden by tests or operators. The WASABI test
// preparation pass (§3.1.4 "Restoring default retry configurations")
// inspects and removes test overrides of retry-related keys.
type Config struct {
	mu       sync.RWMutex
	defaults map[string]string
	values   map[string]string
}

// NewConfig creates a configuration with the given defaults.
func NewConfig(defaults map[string]string) *Config {
	d := make(map[string]string, len(defaults))
	for k, v := range defaults {
		d[k] = v
	}
	return &Config{defaults: d, values: make(map[string]string)}
}

// Set overrides a key. Unknown keys are allowed (real systems accept
// free-form configuration).
func (c *Config) Set(key, value string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.values[key] = value
}

// Unset removes an override, restoring the default.
func (c *Config) Unset(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.values, key)
}

// RestoreDefaults drops all overrides.
func (c *Config) RestoreDefaults() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.values = make(map[string]string)
}

// ApplyOverrides sets every key/value pair as an override.
func (c *Config) ApplyOverrides(o map[string]string) {
	for k, v := range o {
		c.Set(k, v)
	}
}

// Get returns the effective value of key ("" if unknown).
func (c *Config) Get(key string) string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if v, ok := c.values[key]; ok {
		return v
	}
	return c.defaults[key]
}

// Default returns the default value of key ("" if unknown).
func (c *Config) Default(key string) string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.defaults[key]
}

// IsOverridden reports whether key currently has a test/operator override.
func (c *Config) IsOverridden(key string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	_, ok := c.values[key]
	return ok
}

// Overrides returns a snapshot of all overridden keys and values.
func (c *Config) Overrides() map[string]string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(map[string]string, len(c.values))
	for k, v := range c.values {
		out[k] = v
	}
	return out
}

// Keys returns all keys with defaults.
func (c *Config) Keys() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.defaults))
	for k := range c.defaults {
		out = append(out, k)
	}
	return out
}

// GetInt returns the effective integer value of key, or fallback if the
// value is missing or malformed. Note: negative values are returned as-is;
// HDFS-15439 style bugs depend on callers mishandling them.
func (c *Config) GetInt(key string, fallback int) int {
	v := c.Get(key)
	if v == "" {
		return fallback
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return fallback
	}
	return n
}

// GetDuration returns the effective duration value (Go syntax, e.g. "3s"),
// or fallback when missing/malformed.
func (c *Config) GetDuration(key string, fallback time.Duration) time.Duration {
	v := c.Get(key)
	if v == "" {
		return fallback
	}
	d, err := time.ParseDuration(v)
	if err != nil {
		return fallback
	}
	return d
}

// GetBool returns the effective boolean value, or fallback.
func (c *Config) GetBool(key string, fallback bool) bool {
	switch c.Get(key) {
	case "true", "1", "yes":
		return true
	case "false", "0", "no":
		return false
	}
	return fallback
}
