package hdfs

import (
	"context"
	"time"

	"wasabi/internal/apps/common"
	"wasabi/internal/errmodel"
	"wasabi/internal/fault"
	"wasabi/internal/vclock"
)

// NamenodeRPC is the client-side RPC proxy to the namenode.
type NamenodeRPC struct {
	app *App
}

// NewNamenodeRPC returns a proxy for the deployment.
func NewNamenodeRPC(app *App) *NamenodeRPC { return &NamenodeRPC{app: app} }

// invoke performs one RPC against the namenode.
//
// Throws: IOException, RemoteException, FileNotFoundException.
func (r *NamenodeRPC) invoke(ctx context.Context, method, arg string) (string, error) {
	if err := fault.Hook(ctx); err != nil {
		return "", err
	}
	vclock.Elapse(ctx, time.Millisecond)
	switch method {
	case "getFileInfo":
		if v, ok := r.app.Meta.Get("path" + arg); ok {
			return v, nil
		}
		return "", errmodel.Newf("FileNotFoundException", "no such path %s", arg)
	case "mkdirs":
		r.app.Meta.Put("path"+arg, "dir")
		return "ok", nil
	default:
		return "", errmodel.Newf("UnsupportedOperationException", "unknown method %s", method)
	}
}

// Call performs a namenode RPC with the standard client retry policy:
// bounded attempts with exponential backoff, retrying the whole
// IOException family (the coarse policy HADOOP-16580 shows can be *too*
// coarse — our corpus keeps it correct here by excluding the permission
// and not-found subclasses).
func (r *NamenodeRPC) Call(ctx context.Context, method, arg string) (string, error) {
	maxRetries := r.app.Config.GetInt("dfs.client.retry.max.attempts", 4)
	var last error
	for retry := 0; retry < maxRetries; retry++ {
		out, err := r.invoke(ctx, method, arg)
		if err == nil {
			return out, nil
		}
		if errmodel.IsClass(err, "AccessControlException") {
			return "", err
		}
		if errmodel.IsClass(err, "FileNotFoundException") {
			return "", err
		}
		if errmodel.IsClass(err, "UnsupportedOperationException") {
			return "", err
		}
		last = err
		vclock.Sleep(ctx, vclock.Backoff(200*time.Millisecond, retry, 5*time.Second))
	}
	return "", last
}

// replicationItem is a block whose replication level must be repaired.
// Outcomes are reported as status codes, not exceptions.
type replicationItem struct {
	block    string
	attempts int
}

// Replication status codes returned by datanodes.
const (
	replOK      = "OK"
	replTimeout = "TIMEOUT"
	replCorrupt = "CORRUPT"
)

// ReplicationMonitor re-replicates under-replicated blocks. Work items
// carry datanode *status codes*: the monitor retries TIMEOUT items by
// re-queueing them but drops CORRUPT items — an error-code-triggered retry
// structure, the kind WASABI's exception injection cannot exercise (§4.2).
type ReplicationMonitor struct {
	app     *App
	queue   *common.Queue[*replicationItem]
	statusF func(block string) string // datanode status source
	Dropped []string
}

// NewReplicationMonitor returns a monitor whose datanode status source
// always reports success; tests replace statusF to simulate outcomes.
func NewReplicationMonitor(app *App) *ReplicationMonitor {
	return &ReplicationMonitor{
		app:     app,
		queue:   common.NewQueue[*replicationItem](),
		statusF: func(string) string { return replOK },
	}
}

// SetStatusSource replaces the datanode status source.
func (m *ReplicationMonitor) SetStatusSource(f func(string) string) { m.statusF = f }

// Enqueue adds a block to the repair queue.
func (m *ReplicationMonitor) Enqueue(block string) {
	m.queue.Put(&replicationItem{block: block})
}

// ProcessQueue drains the repair queue. TIMEOUT outcomes are retried by
// re-enqueueing up to the configured retry cap; CORRUPT outcomes are
// dropped for quarantine.
func (m *ReplicationMonitor) ProcessQueue(ctx context.Context) int {
	maxRetry := m.app.Config.GetInt("dfs.replication.monitor.max.retry", 3)
	repaired := 0
	for {
		item, ok := m.queue.Take()
		if !ok {
			return repaired
		}
		switch status := m.statusF(item.block); status {
		case replOK:
			repaired++
		case replTimeout:
			if item.attempts < maxRetry {
				item.attempts++
				vclock.Sleep(ctx, 100*time.Millisecond)
				m.queue.Put(item)
				continue
			}
			m.Dropped = append(m.Dropped, item.block)
		case replCorrupt:
			m.Dropped = append(m.Dropped, item.block)
		}
	}
}
