package hdfs

import (
	"context"
	"time"

	"wasabi/internal/errmodel"
	"wasabi/internal/fault"
	"wasabi/internal/vclock"
)

// DataStreamer writes a client's data into a datanode pipeline, modeled on
// the HDFS write path.
type DataStreamer struct {
	app      *App
	pipeline []string
	acked    int
	pending  int
}

// NewDataStreamer returns a streamer for the deployment.
func NewDataStreamer(app *App) *DataStreamer { return &DataStreamer{app: app} }

// allocatePipeline asks the namenode for a fresh pipeline of datanodes.
//
// Throws: ConnectException, RemoteException.
func (d *DataStreamer) allocatePipeline(ctx context.Context) ([]string, error) {
	if err := fault.Hook(ctx); err != nil {
		return nil, err
	}
	vclock.Elapse(ctx, time.Millisecond)
	nodes := d.app.Cluster.Nodes()
	out := make([]string, 0, len(nodes))
	for _, n := range nodes {
		if !n.Down() {
			out = append(out, n.Name)
		}
	}
	if len(out) == 0 {
		return nil, errmodel.New("RemoteException", "no datanodes available")
	}
	return out, nil
}

// SetupPipeline establishes the write pipeline, retrying allocation when
// the namenode reports a transient condition.
//
// BUG (WHEN, missing delay, modeled on pipeline-recovery hot loops): the
// retry loop re-requests a pipeline immediately, flooding the namenode
// with allocation RPCs while the transient condition persists.
func (d *DataStreamer) SetupPipeline(ctx context.Context) error {
	maxRetries := d.app.Config.GetInt("dfs.pipeline.setup.retries", 5)
	var last error
	for retry := 0; retry < maxRetries; retry++ {
		p, err := d.allocatePipeline(ctx)
		if err != nil {
			last = err
			d.app.log(ctx, "pipeline allocation failed: %v", err)
			continue
		}
		d.pipeline = p
		return nil
	}
	return last
}

// checkAcks polls the pipeline for write acknowledgements.
//
// Throws: SocketTimeoutException.
func (d *DataStreamer) checkAcks(ctx context.Context) (int, error) {
	if err := fault.Hook(ctx); err != nil {
		return d.acked, err
	}
	vclock.Elapse(ctx, time.Millisecond)
	if d.acked < d.pending {
		d.acked++
	}
	return d.acked, nil
}

// WritePacketGroup submits n packets and waits until every packet is
// acknowledged by the pipeline, retrying the acknowledgement check on
// transient timeouts.
//
// BUG (WHEN, missing cap): acknowledgement checks are retried forever —
// there is no bound on retry attempts nor on total wait time, so a
// persistently failing pipeline wedges the writer (with a polite delay).
func (d *DataStreamer) WritePacketGroup(ctx context.Context, n int) error {
	if len(d.pipeline) == 0 {
		if err := d.SetupPipeline(ctx); err != nil {
			return err
		}
	}
	d.pending += n
	for {
		acked, err := d.checkAcks(ctx)
		if err != nil {
			// Transient ack timeout: wait and retry the check.
			d.app.log(ctx, "ack check failed: %v", err)
			vclock.Sleep(ctx, 500*time.Millisecond)
			continue
		}
		if acked >= d.pending {
			return nil
		}
	}
}
