package hdfs

import (
	"context"
	"strings"
	"time"

	"wasabi/internal/vclock"
)

// This file contains HDFS background services that do NOT implement retry:
// periodic loops, pollers, and per-item iteration with error logging. They
// exist because real codebases are dominated by such loops — the paper
// reports that without keyword filtering its structural analysis would
// flag 3.5× more loops, almost all non-retry (§4.4) — and because pollers
// are the main source of LLM retry-identification false positives (§4.2).

// HeartbeatManager sends periodic datanode heartbeats.
type HeartbeatManager struct {
	app  *App
	Sent int
}

// NewHeartbeatManager returns a manager for the deployment.
func NewHeartbeatManager(app *App) *HeartbeatManager { return &HeartbeatManager{app: app} }

// RunRounds sends n heartbeat rounds. Failures are logged and *ignored* —
// the next round happens on schedule regardless; this is a periodic task,
// not retry.
func (h *HeartbeatManager) RunRounds(ctx context.Context, n int) {
	interval := h.app.Config.GetDuration("dfs.heartbeat.interval", 3*time.Second)
	for i := 0; i < n; i++ {
		for _, node := range h.app.Cluster.Nodes() {
			if node.Down() {
				h.app.log(ctx, "heartbeat to %s failed; will report next round", node.Name)
				continue
			}
			h.Sent++
		}
		vclock.Sleep(ctx, interval)
	}
}

// MetricsPoller waits for a namenode metric to cross a threshold.
type MetricsPoller struct {
	app *App
}

// NewMetricsPoller returns a poller for the deployment.
func NewMetricsPoller(app *App) *MetricsPoller { return &MetricsPoller{app: app} }

// WaitForBlocks polls the block count until it reaches want or the poll
// budget runs out. This is status polling — repeated execution with
// sleeps, but no failed task is ever re-executed.
func (m *MetricsPoller) WaitForBlocks(ctx context.Context, want, polls int) bool {
	for i := 0; i < polls; i++ {
		n := len(m.app.Meta.ListPrefix("block/"))
		if n >= want {
			return true
		}
		vclock.Sleep(ctx, 100*time.Millisecond)
	}
	return false
}

// BlockScanner verifies stored blocks in the background.
type BlockScanner struct {
	app       *App
	Scanned   int
	Corrupted []string
}

// NewBlockScanner returns a scanner for the deployment.
func NewBlockScanner(app *App) *BlockScanner { return &BlockScanner{app: app} }

// ScanAll iterates over every block once, logging corrupt entries. Each
// item is processed exactly once — errors do not cause re-execution.
func (s *BlockScanner) ScanAll(ctx context.Context) {
	for _, key := range s.app.Meta.ListPrefix("block/") {
		if !strings.Contains(key, "/replica/") {
			continue
		}
		s.Scanned++
		if dn, ok := s.app.Meta.Get(key); ok {
			if node := s.app.Cluster.Node(dn); node != nil && node.Down() {
				s.app.log(ctx, "replica %s unverifiable: node down", key)
				s.Corrupted = append(s.Corrupted, key)
			}
		}
	}
}

// PathValidator rejects malformed HDFS paths. Pure computation: its loop
// parses path components and reports the first error, with no re-execution
// anywhere.
type PathValidator struct{}

// Validate checks each component of an absolute path.
func (PathValidator) Validate(path string) error {
	if !strings.HasPrefix(path, "/") {
		return errInvalidPath(path, "not absolute")
	}
	for _, comp := range strings.Split(strings.TrimPrefix(path, "/"), "/") {
		if comp == "" {
			return errInvalidPath(path, "empty component")
		}
		if strings.ContainsAny(comp, ":\x00") {
			return errInvalidPath(path, "illegal character in "+comp)
		}
	}
	return nil
}

func errInvalidPath(path, why string) error {
	return &invalidPathError{path: path, why: why}
}

type invalidPathError struct{ path, why string }

func (e *invalidPathError) Error() string { return "invalid path " + e.path + ": " + e.why }
