package hdfs

import (
	"context"
	"time"

	"wasabi/internal/apps/common"
	"wasabi/internal/errmodel"
	"wasabi/internal/fault"
	"wasabi/internal/vclock"
)

// Mover migrates blocks between storage tiers, modeled on the HDFS mover
// whose retry cap handling was the subject of HDFS-15439.
type Mover struct {
	app *App
}

// NewMover returns a mover for the deployment.
func NewMover(app *App) *Mover { return &Mover{app: app} }

// migrate copies one block to the target tier.
//
// Throws: SocketException, RemoteException.
func (m *Mover) migrate(ctx context.Context, block, tier string) error {
	if err := fault.Hook(ctx); err != nil {
		return err
	}
	replicas := m.app.Replicas(block)
	if len(replicas) == 0 {
		return errmodel.Newf("FileNotFoundException", "unknown block %s", block)
	}
	return m.app.Cluster.Call(ctx, replicas[0], func(n *common.Node) error {
		n.Store.Put("tier/"+block, tier)
		return nil
	})
}

// MoveBlock migrates a block with retry up to
// dfs.mover.retry.max.attempts.
//
// NOTE (modeled on HDFS-15439): the loop gives up when the attempt counter
// *equals* the configured maximum. With the default configuration the cap
// works, but a negative configured value can never be reached by the
// incrementing counter, allowing infinite retries — the configuration-
// dependent bug class WASABI misses unless a test uses the bad value
// (§4.5).
func (m *Mover) MoveBlock(ctx context.Context, block, tier string) error {
	maxRetryAttempts := m.app.Config.GetInt("dfs.mover.retry.max.attempts", 10)
	var last error
	for attempts := 0; attempts != maxRetryAttempts; attempts++ {
		err := m.migrate(ctx, block, tier)
		if err == nil {
			return nil
		}
		last = err
		vclock.Sleep(ctx, time.Second)
	}
	return last
}

// moveTask is a queued block-move request with its own attempt budget.
type moveTask struct {
	block    string
	target   string
	attempts int
}

// Balancer spreads blocks across datanodes by draining a queue of move
// tasks; failed moves are re-submitted to the queue, the asynchronous
// re-enqueue retry mechanism of §2.5.
type Balancer struct {
	app   *App
	queue *common.Queue[*moveTask]
}

// NewBalancer returns a balancer with an empty move queue.
func NewBalancer(app *App) *Balancer {
	return &Balancer{app: app, queue: common.NewQueue[*moveTask]()}
}

// Submit enqueues a block move.
func (b *Balancer) Submit(block, target string) {
	b.queue.Put(&moveTask{block: block, target: target})
}

// transferBlock copies a block onto the target datanode.
//
// Throws: ConnectException, SocketTimeoutException.
func (b *Balancer) transferBlock(ctx context.Context, block, target string) error {
	if err := fault.Hook(ctx); err != nil {
		return err
	}
	replicas := b.app.Replicas(block)
	if len(replicas) == 0 {
		return errmodel.Newf("FileNotFoundException", "unknown block %s", block)
	}
	var payload string
	if err := b.app.Cluster.Call(ctx, replicas[0], func(n *common.Node) error {
		v, ok := n.Store.Get("block/" + block)
		if !ok {
			return errmodel.New("EOFException", "source replica lost")
		}
		payload = v
		return nil
	}); err != nil {
		return err
	}
	return b.app.Cluster.Call(ctx, target, func(n *common.Node) error {
		n.Store.Put("block/"+block, payload)
		return nil
	})
}

// processTask handles one queued move. A transient transfer failure
// re-submits the task to the queue for retry after a pause, up to the
// per-task retry budget; exhausting the budget fails the task. This is
// the asynchronous re-enqueue retry mechanism of §2.5 (Listing 3): the
// retry decision lives in a plain handler method with no loop, invisible
// to loop-based structural analysis.
func (b *Balancer) processTask(ctx context.Context, task *moveTask) error {
	const maxTaskRetries = 4
	if err := b.transferBlock(ctx, task.block, task.target); err != nil {
		if task.attempts < maxTaskRetries {
			task.attempts++
			vclock.Sleep(ctx, 250*time.Millisecond)
			b.queue.Put(task) // re-enqueue for retry
			return nil
		}
		return err
	}
	return nil
}

// DrainQueue processes move tasks until the queue is empty.
func (b *Balancer) DrainQueue(ctx context.Context) error {
	for {
		task, ok := b.queue.Take()
		if !ok {
			return nil
		}
		if err := b.processTask(ctx, task); err != nil {
			return err
		}
	}
}
