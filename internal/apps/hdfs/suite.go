package hdfs

import (
	"context"

	"wasabi/internal/errmodel"
	"wasabi/internal/testkit"
)

// Suite returns the HDFS miniature's existing unit-test suite: the tests
// its developers would have written, unaware of WASABI. Some cover retry
// code (directly or deep in a call chain), some do not, and a couple
// restrict retry configuration — the landscape §2.5 and §3.1.4 describe.
func Suite() testkit.Suite {
	s := testkit.Suite{App: "HD", Name: "HDFS", Tests: []testkit.Test{
		{
			Name: "hdfs.TestWebFSFetchReturnsBody", App: "HD",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				app.Meta.Put("path/data/a", "payload-a")
				body, err := NewWebFS(app).Fetch(ctx, "/data/a")
				if err != nil {
					return err
				}
				return testkit.Assertf(body == "payload-a", "body = %q", body)
			},
		},
		{
			Name: "hdfs.TestWebFSFetchMissingPath", App: "HD",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				_, err := NewWebFS(app).Fetch(ctx, "/nope")
				if err == nil {
					return testkit.Assertf(false, "expected FileNotFoundException")
				}
				if errmodel.IsClass(err, "FileNotFoundException") {
					return nil
				}
				return err
			},
		},
		{
			Name: "hdfs.TestWebFSUploadChunked", App: "HD",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				w := NewWebFS(app)
				if err := w.UploadChunked(ctx, "/up/f1", "abcdefghij"); err != nil {
					return err
				}
				done, _ := app.Meta.Get("upload/up/f1/complete")
				return testkit.Assertf(done == "true", "upload incomplete")
			},
		},
		{
			Name: "hdfs.TestReadBlockFromReplica", App: "HD",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				app.AddBlock("b1", "block-data", "dn1", "dn2")
				payload, err := NewInputStream(app).ReadBlock(ctx, "b1")
				if err != nil {
					return err
				}
				return testkit.Assertf(payload == "block-data", "payload = %q", payload)
			},
		},
		{
			Name: "hdfs.TestReadWithFailoverSkipsDownNode", App: "HD",
			RetryLabeled: true,
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				app.AddBlock("b2", "failover-data", "dn1", "dn2", "dn3")
				app.Cluster.Node("dn1").SetDown(true)
				payload, err := NewInputStream(app).ReadWithFailover(ctx, "b2")
				if err != nil {
					return err
				}
				return testkit.Assertf(payload == "failover-data", "payload = %q", payload)
			},
		},
		{
			Name: "hdfs.TestSetupPipelineFindsLiveNodes", App: "HD",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				d := NewDataStreamer(app)
				if err := d.SetupPipeline(ctx); err != nil {
					return err
				}
				return testkit.Assertf(len(d.pipeline) == 3, "pipeline = %v", d.pipeline)
			},
		},
		{
			Name: "hdfs.TestWritePacketGroupAcksAll", App: "HD",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				d := NewDataStreamer(app)
				if err := d.WritePacketGroup(ctx, 3); err != nil {
					return err
				}
				return testkit.Assertf(d.acked == 3, "acked = %d", d.acked)
			},
		},
		{
			Name: "hdfs.TestMoverMovesBlockToTier", App: "HD",
			RetryLabeled: true,
			// The developers capped mover retries low to keep the test
			// fast — exactly the restriction §3.1.4's preparation pass
			// removes.
			Overrides: map[string]string{"dfs.mover.retry.max.attempts": "1"},
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				app.AddBlock("b3", "cold-data", "dn2")
				if err := NewMover(app).MoveBlock(ctx, "b3", "ARCHIVE"); err != nil {
					return err
				}
				tier, _ := app.Cluster.Node("dn2").Store.Get("tier/b3")
				return testkit.Assertf(tier == "ARCHIVE", "tier = %q", tier)
			},
		},
		{
			Name: "hdfs.TestBalancerMovesQueuedBlocks", App: "HD",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				app.AddBlock("b4", "hot", "dn1")
				app.AddBlock("b5", "hot2", "dn1")
				b := NewBalancer(app)
				b.Submit("b4", "dn3")
				b.Submit("b5", "dn3")
				if err := b.DrainQueue(ctx); err != nil {
					return err
				}
				v, ok := app.Cluster.Node("dn3").Store.Get("block/b4")
				return testkit.Assertf(ok && v == "hot", "b4 on dn3 = %q (%v)", v, ok)
			},
		},
		{
			Name: "hdfs.TestEditLogTailerCatchesUp", App: "HD",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				app.Meta.Put("edits/1", "mkdir /a")
				app.Meta.Put("edits/2", "mkdir /b")
				applied, err := NewEditLogTailer(app).CatchUp(ctx)
				if err != nil {
					return err
				}
				return testkit.Assertf(applied == 2, "applied = %d", applied)
			},
		},
		{
			Name: "hdfs.TestCheckpointerUploadsImageSeries", App: "HD",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				c := NewCheckpointer(app)
				// The harness tolerates individual image failures: the
				// scheduler will retry the whole series later anyway.
				uploaded := 0
				for txid := 0; txid < 40; txid++ {
					if err := c.UploadImage(ctx, txid); err == nil {
						uploaded++
					}
				}
				return testkit.Assertf(uploaded > 0, "no image uploaded")
			},
		},
		{
			Name: "hdfs.TestNamenodeRPCMkdirs", App: "HD",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				rpc := NewNamenodeRPC(app)
				if _, err := rpc.Call(ctx, "mkdirs", "/warehouse"); err != nil {
					return err
				}
				info, err := rpc.Call(ctx, "getFileInfo", "/warehouse")
				if err != nil {
					return err
				}
				return testkit.Assertf(info == "dir", "info = %q", info)
			},
		},
		{
			Name: "hdfs.TestReplicationMonitorRetriesTimeouts", App: "HD",
			RetryLabeled: true,
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				m := NewReplicationMonitor(app)
				calls := map[string]int{}
				m.SetStatusSource(func(block string) string {
					calls[block]++
					if block == "bt" && calls[block] <= 2 {
						return "TIMEOUT"
					}
					if block == "bc" {
						return "CORRUPT"
					}
					return "OK"
				})
				m.Enqueue("bt")
				m.Enqueue("bc")
				repaired := m.ProcessQueue(ctx)
				if err := testkit.Assertf(repaired == 1, "repaired = %d", repaired); err != nil {
					return err
				}
				return testkit.Assertf(len(m.Dropped) == 1 && m.Dropped[0] == "bc", "dropped = %v", m.Dropped)
			},
		},
		{
			Name: "hdfs.TestHeartbeatRoundsCountLiveNodes", App: "HD",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				app.Cluster.Node("dn2").SetDown(true)
				h := NewHeartbeatManager(app)
				h.RunRounds(ctx, 4)
				return testkit.Assertf(h.Sent == 8, "sent = %d", h.Sent)
			},
		},
		{
			Name: "hdfs.TestMetricsPollerSeesBlocks", App: "HD",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				app.AddBlock("b6", "x", "dn1")
				ok := NewMetricsPoller(app).WaitForBlocks(ctx, 1, 3)
				return testkit.Assertf(ok, "poller never saw the block")
			},
		},
		{
			Name: "hdfs.TestBlockScannerFlagsDownReplicas", App: "HD",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				app.AddBlock("b7", "x", "dn1", "dn2")
				app.Cluster.Node("dn2").SetDown(true)
				s := NewBlockScanner(app)
				s.ScanAll(ctx)
				if err := testkit.Assertf(s.Scanned == 2, "scanned = %d", s.Scanned); err != nil {
					return err
				}
				return testkit.Assertf(len(s.Corrupted) == 1, "corrupted = %v", s.Corrupted)
			},
		},
		{
			Name: "hdfs.TestPathValidatorRejectsBadPaths", App: "HD",
			Body: func(ctx context.Context, o map[string]string) error {
				var v PathValidator
				if err := testkit.Assertf(v.Validate("/a/b") == nil, "valid path rejected"); err != nil {
					return err
				}
				if err := testkit.Assertf(v.Validate("a/b") != nil, "relative path accepted"); err != nil {
					return err
				}
				return testkit.Assertf(v.Validate("/a//b") != nil, "empty component accepted")
			},
		},
		{
			Name: "hdfs.TestReconstructionProcName", App: "HD",
			// Exercises procedure bookkeeping only; the EC and
			// registration procedures stay uncovered by the suite, as some
			// retry structures always are (§4.2, Table 5).
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				p := NewReconstructionProc(app, "b8")
				return testkit.Assertf(p.Name() == "ec-reconstruction-b8", "name = %q", p.Name())
			},
		},
		{
			Name: "hdfs.TestConfigDefaults", App: "HD",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				got := app.Config.GetInt("dfs.client.retry.max.attempts", 0)
				return testkit.Assertf(got >= 1, "retry attempts default = %d", got)
			},
		},
	}}
	s.Tests = append(s.Tests, workloadTests()...)
	return s
}
