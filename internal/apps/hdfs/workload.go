package hdfs

import (
	"context"

	"wasabi/internal/testkit"
)

// workloadTests are the suite's end-to-end scenario tests. Each drives a
// whole user flow, so each covers SEVERAL retry locations that the
// focused tests above already cover individually — the redundancy that
// makes WASABI's test planning worthwhile (§3.1.4): without a plan, every
// one of these tests would re-inject at every location it reaches.
func workloadTests() []testkit.Test {
	return []testkit.Test{
		{
			Name: "hdfs.TestWriteThenReadFlow", App: "HD",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				d := NewDataStreamer(app)
				if err := d.SetupPipeline(ctx); err != nil {
					return err
				}
				if err := d.WritePacketGroup(ctx, 2); err != nil {
					return err
				}
				app.AddBlock("w1", "written", "dn1", "dn2")
				payload, err := NewInputStream(app).ReadBlock(ctx, "w1")
				if err != nil {
					return err
				}
				return testkit.Assertf(payload == "written", "payload = %q", payload)
			},
		},
		{
			Name: "hdfs.TestClusterMaintenanceFlow", App: "HD",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				app.AddBlock("m1", "data", "dn1")
				if err := NewMover(app).MoveBlock(ctx, "m1", "ARCHIVE"); err != nil {
					return err
				}
				b := NewBalancer(app)
				b.Submit("m1", "dn3")
				if err := b.DrainQueue(ctx); err != nil {
					return err
				}
				rpc := NewNamenodeRPC(app)
				if _, err := rpc.Call(ctx, "mkdirs", "/maint"); err != nil {
					return err
				}
				return NewCheckpointer(app).UploadImage(ctx, 1)
			},
		},
		{
			Name: "hdfs.TestStandbyCatchupFlow", App: "HD",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				app.Meta.Put("edits/1", "op")
				if _, err := NewEditLogTailer(app).CatchUp(ctx); err != nil {
					return err
				}
				for txid := 0; txid < 3; txid++ {
					if err := NewCheckpointer(app).UploadImage(ctx, txid); err != nil {
						return err
					}
				}
				return nil
			},
		},
		{
			Name: "hdfs.TestGatewayBrowseFlow", App: "HD",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				w := NewWebFS(app)
				if err := w.UploadChunked(ctx, "/flow/f", "abcdefgh"); err != nil {
					return err
				}
				app.Meta.Put("path/flow/f", "abcdefgh")
				body, err := w.Fetch(ctx, "/flow/f")
				if err != nil {
					return err
				}
				return testkit.Assertf(body == "abcdefgh", "body = %q", body)
			},
		},
	}
}
