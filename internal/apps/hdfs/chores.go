package hdfs

import (
	"context"
	"strconv"
	"strings"
)

// Maintenance chores of the HDFS miniature. Every loop here tolerates
// per-item errors — it records the failure and moves to the NEXT item,
// never re-executing the failed one. Structurally these are the
// retry look-alikes that a keyword-free control-flow analysis flags and
// the retry-naming filter prunes (the §4.4 ablation: "loops may iterate
// through lists of items ... catch blocks may be used to simply track or
// log errors").

// DirectoryScanner reconciles on-disk blocks with the block map.
type DirectoryScanner struct {
	app *App
	// Reconciled and Mismatched count scan outcomes.
	Reconciled, Mismatched int
}

// NewDirectoryScanner returns a scanner.
func NewDirectoryScanner(app *App) *DirectoryScanner { return &DirectoryScanner{app: app} }

// reconcile checks one replica entry against the block map.
func (d *DirectoryScanner) reconcile(key string) error {
	dn, ok := d.app.Meta.Get(key)
	if !ok {
		return errInvalidPath(key, "dangling replica entry")
	}
	if d.app.Cluster.Node(dn) == nil {
		return errInvalidPath(key, "unknown datanode "+dn)
	}
	return nil
}

// ScanOnce walks every replica entry once.
func (d *DirectoryScanner) ScanOnce(ctx context.Context) {
	for _, key := range d.app.Meta.ListPrefix("block/") {
		if !strings.Contains(key, "/replica/") {
			continue
		}
		if err := d.reconcile(key); err != nil {
			d.app.log(ctx, "scanner mismatch: %v", err)
			d.Mismatched++
			continue
		}
		d.Reconciled++
	}
}

// UsageCollector aggregates per-datanode storage usage.
type UsageCollector struct {
	app *App
	// Bytes is the aggregate usage; Unreachable counts skipped nodes.
	Bytes       int
	Unreachable int
}

// NewUsageCollector returns a collector.
func NewUsageCollector(app *App) *UsageCollector { return &UsageCollector{app: app} }

// sample reads one datanode's usage figure.
func (u *UsageCollector) sample(name string) (int, error) {
	n := u.app.Cluster.Node(name)
	if n == nil || n.Down() {
		return 0, errInvalidPath(name, "node unreachable")
	}
	return n.Store.Len() * 128, nil
}

// CollectOnce samples every datanode once, skipping unreachable ones.
func (u *UsageCollector) CollectOnce(ctx context.Context) {
	for _, node := range u.app.Cluster.Nodes() {
		bytes, err := u.sample(node.Name)
		if err != nil {
			u.app.log(ctx, "usage sample failed: %v", err)
			u.Unreachable++
			continue
		}
		u.Bytes += bytes
	}
}

// SnapshotDiffCleaner drops snapshot diff records whose snapshot is gone.
type SnapshotDiffCleaner struct {
	app *App
	// Dropped counts removed diffs; Kept counts valid ones.
	Dropped, Kept int
}

// NewSnapshotDiffCleaner returns a cleaner.
func NewSnapshotDiffCleaner(app *App) *SnapshotDiffCleaner { return &SnapshotDiffCleaner{app: app} }

// validate checks one diff record's snapshot reference.
func (s *SnapshotDiffCleaner) validate(key string) error {
	ref, _ := s.app.Meta.Get(key)
	if !s.app.Meta.Exists("snapshot/" + ref) {
		return errInvalidPath(key, "snapshot "+ref+" gone")
	}
	return nil
}

// CleanOnce walks every diff record once, deleting invalid ones.
func (s *SnapshotDiffCleaner) CleanOnce(ctx context.Context) {
	for _, key := range s.app.Meta.ListPrefix("snapdiff/") {
		if err := s.validate(key); err != nil {
			s.app.Meta.Delete(key)
			s.Dropped++
			continue
		}
		s.Kept++
	}
}

// DecommissionMonitor checks nodes slated for decommission.
type DecommissionMonitor struct {
	app *App
	// Ready lists nodes whose replicas are fully evacuated.
	Ready []string
}

// NewDecommissionMonitor returns a monitor.
func NewDecommissionMonitor(app *App) *DecommissionMonitor { return &DecommissionMonitor{app: app} }

// checkEvacuated verifies a node holds no live replicas.
func (d *DecommissionMonitor) checkEvacuated(name string) error {
	n := d.app.Cluster.Node(name)
	if n == nil {
		return errInvalidPath(name, "unknown node")
	}
	if len(n.Store.ListPrefix("block/")) > 0 {
		return errInvalidPath(name, "still holds replicas")
	}
	return nil
}

// CheckOnce evaluates every decommissioning node once.
func (d *DecommissionMonitor) CheckOnce(ctx context.Context) {
	for _, key := range d.app.Meta.ListPrefix("decommissioning/") {
		name := strings.TrimPrefix(key, "decommissioning/")
		if err := d.checkEvacuated(name); err != nil {
			d.app.log(ctx, "decommission pending: %v", err)
			continue
		}
		d.Ready = append(d.Ready, name)
	}
}

// QuotaVerifier recomputes directory quotas.
type QuotaVerifier struct {
	app *App
	// Violations lists paths over quota.
	Violations []string
}

// NewQuotaVerifier returns a verifier.
func NewQuotaVerifier(app *App) *QuotaVerifier { return &QuotaVerifier{app: app} }

// check compares one directory's usage with its quota.
func (q *QuotaVerifier) check(key string) error {
	limitStr, _ := q.app.Meta.Get(key)
	limit, err := strconv.Atoi(limitStr)
	if err != nil {
		return errInvalidPath(key, "malformed quota "+limitStr)
	}
	dir := strings.TrimPrefix(key, "quota/")
	used := len(q.app.Meta.ListPrefix("path" + dir))
	if used > limit {
		return errInvalidPath(dir, "over quota")
	}
	return nil
}

// VerifyOnce evaluates every quota entry once.
func (q *QuotaVerifier) VerifyOnce(ctx context.Context) {
	for _, key := range q.app.Meta.ListPrefix("quota/") {
		if err := q.check(key); err != nil {
			q.app.log(ctx, "quota violation: %v", err)
			q.Violations = append(q.Violations, key)
			continue
		}
	}
}

// TrashCleaner deletes expired trash entries.
type TrashCleaner struct {
	app *App
	// Removed counts deleted entries; Skipped counts still-fresh ones.
	Removed, Skipped int
}

// NewTrashCleaner returns a cleaner.
func NewTrashCleaner(app *App) *TrashCleaner { return &TrashCleaner{app: app} }

// expired reports whether one trash entry is past its retention.
func (t *TrashCleaner) expired(key string) (bool, error) {
	ageStr, _ := t.app.Meta.Get(key)
	age, err := strconv.Atoi(ageStr)
	if err != nil {
		return false, errInvalidPath(key, "malformed age")
	}
	return age > 7, nil
}

// CleanOnce walks every trash entry once.
func (t *TrashCleaner) CleanOnce(ctx context.Context) {
	for _, key := range t.app.Meta.ListPrefix("trash/") {
		old, err := t.expired(key)
		if err != nil {
			t.app.log(ctx, "trash entry skipped: %v", err)
			t.Skipped++
			continue
		}
		if !old {
			t.Skipped++
			continue
		}
		t.app.Meta.Delete(key)
		t.Removed++
	}
}
