package hdfs

import (
	"context"
	"testing"

	"wasabi/internal/apps/common"
	"wasabi/internal/apps/meta"
	"wasabi/internal/fault"
	"wasabi/internal/testkit"
	"wasabi/internal/trace"
)

// TestSuitePassesWithoutInjection runs every corpus unit test plain: the
// application must be healthy when no faults are injected.
func TestSuitePassesWithoutInjection(t *testing.T) {
	s := Suite()
	if err := testkit.Validate(s); err != nil {
		t.Fatal(err)
	}
	for _, tc := range s.Tests {
		res := testkit.Run(tc, nil, nil)
		if res.Failed() {
			t.Errorf("%s failed: %v", tc.Name, res.Err)
		}
	}
}

// TestSuitePassesWithPreparedOverrides runs the suite as WASABI would,
// with retry-restricting overrides stripped.
func TestSuitePassesWithPreparedOverrides(t *testing.T) {
	for _, tc := range Suite().Tests {
		eff, _ := testkit.PrepareOverrides(tc)
		res := testkit.Run(tc, nil, eff)
		if res.Failed() {
			t.Errorf("%s failed with prepared overrides: %v", tc.Name, res.Err)
		}
	}
}

func TestManifestConsistency(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range Manifest() {
		if s.App != "HD" {
			t.Errorf("%s: app = %q", s.Coordinator, s.App)
		}
		if seen[s.Coordinator] {
			t.Errorf("duplicate manifest entry %s", s.Coordinator)
		}
		seen[s.Coordinator] = true
		if s.Trigger == meta.Exception && len(s.Retried) == 0 {
			t.Errorf("%s: exception-triggered structure with no retried methods", s.Coordinator)
		}
		if s.Trigger == meta.ErrorCode && len(s.Retried) != 0 {
			t.Errorf("%s: error-code structure should have no hooked retried methods", s.Coordinator)
		}
	}
}

func TestMechanismMixIsLoopHeavy(t *testing.T) {
	counts := meta.CountByMechanism(Manifest())
	if counts[meta.Loop] <= counts[meta.Queue]+counts[meta.StateMachine] {
		t.Errorf("loop structures should dominate, got %v", counts)
	}
}

func TestReadBlockNilStatsBugIsReal(t *testing.T) {
	// Drive the HOW bug deterministically: when the very first
	// createBlockReader attempt fails, the catch handler logs from read
	// stats that were never allocated and panics. A single injected
	// SocketException at that call site is exactly the transient failure.
	app := New()
	app.AddBlock("b1", "data", "dn1")
	s := NewInputStream(app)
	in := fault.NewInjector([]fault.Rule{{
		Loc: fault.Location{
			Coordinator: "hdfs.DFSInputStream.ReadBlock",
			Retried:     "hdfs.DFSInputStream.createBlockReader",
			Exception:   "SocketException",
		},
		K: 1,
	}})
	ctx := fault.With(trace.With(context.Background(), trace.NewRun("t")), in)
	defer func() {
		if recover() == nil {
			t.Error("expected nil-stats panic when the first connect attempt fails")
		}
	}()
	_, _ = s.ReadBlock(ctx, "b1")
}

func TestReconstructionProcedureCompletes(t *testing.T) {
	app := New()
	app.AddBlock("b9", "shard", "dn1", "dn2")
	exec := common.NewProcedureExecutor()
	if err := exec.Run(context.Background(), NewReconstructionProc(app, "b9")); err != nil {
		t.Fatalf("reconstruction failed: %v", err)
	}
	if v, ok := app.Cluster.Node("dn1").Store.Get("block/b9/recovered"); !ok || v != "decoded:b9" {
		t.Errorf("recovered payload = %q (%v)", v, ok)
	}
}

func TestRegistrationProcedureCompletes(t *testing.T) {
	app := New()
	exec := common.NewProcedureExecutor()
	if err := exec.Run(context.Background(), NewRegistrationProc(app, "dn1")); err != nil {
		t.Fatalf("registration failed: %v", err)
	}
	if _, ok := app.Meta.Get("datanode/dn1"); !ok {
		t.Error("datanode not registered")
	}
}

func TestMoverNegativeCapSpinsForever(t *testing.T) {
	// HDFS-15439: a negative cap makes the '!=' comparison never true.
	// We can't run forever, so verify the comparison logic by checking the
	// loop would not terminate at the cap: with cap -1 and a healthy
	// cluster the first attempt succeeds, so the call returns; the bug is
	// only reachable under persistent failure, which is WASABI's job to
	// simulate. Here we confirm the configured value passes through.
	app := New()
	app.Config.Set("dfs.mover.retry.max.attempts", "-1")
	if got := app.Config.GetInt("dfs.mover.retry.max.attempts", 10); got != -1 {
		t.Errorf("negative cap not honored: %d", got)
	}
}

func TestWebFSFetchDoesNotRetryWrappedAccessControl(t *testing.T) {
	// The HADOOP-16683 patched behaviour: a HadoopException wrapping an
	// AccessControlException must abort immediately. Verified through the
	// classifier logic the loop uses.
	app := New()
	w := NewWebFS(app)
	_ = w
	run := trace.NewRun("t")
	ctx := trace.With(context.Background(), run)
	app.Meta.Put("path/x", "v")
	if _, err := w.Fetch(ctx, "/x"); err != nil {
		t.Fatalf("fetch failed: %v", err)
	}
	// No sleeps should be recorded on the happy path.
	for _, e := range run.Events() {
		if e.Kind == trace.KindSleep {
			t.Error("unexpected retry sleep on happy path")
		}
	}
}
