package hdfs

import (
	"context"
	"strconv"
	"time"

	"wasabi/internal/errmodel"
	"wasabi/internal/fault"
	"wasabi/internal/vclock"
)

// WebFS is the HTTP gateway filesystem client, modeled on
// WebHdfsFileSystem from HADOOP-16683 (Listing 2 in the paper).
type WebFS struct {
	app *App
}

// NewWebFS returns a gateway client for the deployment.
func NewWebFS(app *App) *WebFS { return &WebFS{app: app} }

// conn is an established gateway connection.
type conn struct {
	endpoint string
}

// connect opens a connection to the gateway.
//
// Throws: ConnectException, AccessControlException.
func (w *WebFS) connect(ctx context.Context) (*conn, error) {
	if err := fault.Hook(ctx); err != nil {
		return nil, err
	}
	vclock.Elapse(ctx, 2*time.Millisecond)
	return &conn{endpoint: "gateway:9870"}, nil
}

// getResponse reads the response body for path over an open connection.
//
// Throws: SocketTimeoutException, EOFException, FileNotFoundException.
func (w *WebFS) getResponse(ctx context.Context, c *conn, path string) (string, error) {
	if err := fault.Hook(ctx); err != nil {
		return "", err
	}
	if v, ok := w.app.Meta.Get("path" + path); ok {
		return v, nil
	}
	return "", errmodel.Newf("FileNotFoundException", "no such path %s", path)
}

// Fetch GETs a path, retrying transient connection and read failures up to
// the configured attempt cap with a fixed delay, and giving up immediately
// on permission errors — including permission errors wrapped inside
// HadoopException by lower layers (the HADOOP-16683 patch behaviour).
func (w *WebFS) Fetch(ctx context.Context, path string) (string, error) {
	maxRetries := w.app.Config.GetInt("dfs.client.retry.max.attempts", 4)
	delay := w.app.Config.GetDuration("dfs.client.retry.delay", time.Second)
	var last error
	for retry := 0; retry < maxRetries; retry++ {
		c, err := w.connect(ctx)
		if err != nil {
			if errmodel.IsClass(err, "AccessControlException") {
				return "", err
			}
			if errmodel.IsClass(err, "HadoopException") && errmodel.CauseIsClass(err, "AccessControlException") {
				return "", err
			}
			last = err
			vclock.Sleep(ctx, delay)
			continue
		}
		body, err := w.getResponse(ctx, c, path)
		if err != nil {
			if errmodel.IsClass(err, "FileNotFoundException") {
				return "", err
			}
			last = err
			vclock.Sleep(ctx, delay)
			continue
		}
		return body, nil
	}
	return "", last
}

// putChunk uploads one chunk of a file to the gateway.
//
// Throws: ConnectException, SocketTimeoutException.
func (w *WebFS) putChunk(ctx context.Context, path string, seq int, data string) error {
	if err := fault.Hook(ctx); err != nil {
		return err
	}
	vclock.Elapse(ctx, time.Millisecond)
	w.app.Meta.Put("upload"+path+"/"+strconv.Itoa(seq), data)
	return nil
}

// UploadChunked writes data as fixed-size chunks, retrying each chunk up
// to the attempt cap. Transport errors are wrapped in the module-level
// HadoopException before being rethrown to the caller once retries are
// exhausted — the wrapping pattern §4.3 identifies as a source of
// "different exception" oracle false positives.
func (w *WebFS) UploadChunked(ctx context.Context, path, data string) error {
	const chunk = 4
	maxRetries := w.app.Config.GetInt("dfs.client.retry.max.attempts", 4)
	for seq, off := 0, 0; off < len(data); seq, off = seq+1, off+chunk {
		end := off + chunk
		if end > len(data) {
			end = len(data)
		}
		var last error
		ok := false
		for retry := 0; retry < maxRetries; retry++ {
			err := w.putChunk(ctx, path, seq, data[off:end])
			if err == nil {
				ok = true
				break
			}
			last = err
			vclock.Sleep(ctx, 500*time.Millisecond)
		}
		if !ok {
			return errmodel.Wrap("HadoopException", "chunk upload failed", last)
		}
	}
	w.app.Meta.Put("upload"+path+"/complete", "true")
	return nil
}
