// Package hdfs is the corpus miniature of the Hadoop Distributed File
// System (HD in the evaluation): a namenode with block metadata, datanodes
// holding block replicas, and client/server components whose retry code
// structures — loop, queue, and state-machine based — reproduce the retry
// behaviours and seeded bugs described in the paper (HDFS-15439 style cap
// handling, the createBlockReader NullPointerException HOW bug from §4.1,
// replica-failover retries without delay, and more).
//
// Ground truth for every retry structure in this package is recorded in
// manifest.go; WASABI's detectors never read it.
package hdfs

import (
	"context"
	"fmt"

	"wasabi/internal/apps/common"
	"wasabi/internal/trace"
)

// App is a miniature HDFS deployment: one namespace, several datanodes.
type App struct {
	Config  *common.Config
	Cluster *common.Cluster
	Meta    *common.KV // namenode metadata: paths, block maps
}

// New constructs a small three-datanode deployment with default
// configuration.
func New() *App {
	app := &App{
		Config: common.NewConfig(map[string]string{
			"dfs.client.retry.max.attempts":     "4",
			"dfs.client.retry.delay":            "1s",
			"dfs.mover.retry.max.attempts":      "10",
			"dfs.image.transfer.retries":        "3",
			"dfs.pipeline.setup.retries":        "5",
			"dfs.ec.reconstruction.attempts":    "4",
			"dfs.heartbeat.interval":            "3s",
			"dfs.replication.monitor.max.retry": "3",
		}),
		Cluster: common.NewCluster("dn1", "dn2", "dn3"),
		Meta:    common.NewKV(),
	}
	return app
}

// AddBlock registers a block with replicas on the given datanodes and
// stores the payload on each.
func (a *App) AddBlock(block, payload string, replicas ...string) {
	for i, dn := range replicas {
		a.Meta.Put(fmt.Sprintf("block/%s/replica/%d", block, i), dn)
		if n := a.Cluster.Node(dn); n != nil {
			n.Store.Put("block/"+block, payload)
		}
	}
}

// Replicas returns the datanodes holding block, in replica order.
func (a *App) Replicas(block string) []string {
	var out []string
	for _, k := range a.Meta.ListPrefix(fmt.Sprintf("block/%s/replica/", block)) {
		if dn, ok := a.Meta.Get(k); ok {
			out = append(out, dn)
		}
	}
	return out
}

// log emits an application log line into the run trace.
func (a *App) log(ctx context.Context, format string, args ...any) {
	trace.Note(ctx, "[hdfs] "+format, args...)
}
