package hdfs

import "wasabi/internal/apps/meta"

// Manifest is the ground-truth record of every retry code structure in
// this package. WASABI's detectors never read it; the evaluation harness
// scores detector reports against it (see internal/apps/meta).
func Manifest() []meta.Structure {
	return []meta.Structure{
		{
			App: "HD", Coordinator: "hdfs.WebFS.Fetch",
			Retried: []string{"hdfs.WebFS.connect", "hdfs.WebFS.getResponse"},
			File:    "webfs.go", Mechanism: meta.Loop, Trigger: meta.Exception,
			Keyworded: true,
			Note:      "correct: cap + delay, AccessControlException excluded even when wrapped (HADOOP-16683 patched behaviour)",
		},
		{
			App: "HD", Coordinator: "hdfs.WebFS.UploadChunked",
			Retried: []string{"hdfs.WebFS.putChunk"},
			File:    "webfs.go", Mechanism: meta.Loop, Trigger: meta.Exception,
			Keyworded: true, WrapsErrors: true,
			Note: "correct; wraps exhausted transport errors in HadoopException (different-exception oracle FP source)",
		},
		{
			App: "HD", Coordinator: "hdfs.DFSInputStream.ReadBlock",
			Retried: []string{"hdfs.DFSInputStream.createBlockReader", "hdfs.blockReader.read"},
			File:    "blockreader.go", Mechanism: meta.Loop, Trigger: meta.Exception,
			Keyworded: true, Bug: meta.How,
			Note: "HOW: catch handler dereferences read stats that an early transient failure never allocated (NullPointerException; §4.1 createBlockReader bug)",
		},
		{
			App: "HD", Coordinator: "hdfs.DFSInputStream.ReadWithFailover",
			Retried: []string{"hdfs.DFSInputStream.fetchReplica"},
			File:    "blockreader.go", Mechanism: meta.Loop, Trigger: meta.Exception,
			Keyworded: true, DelayUnneeded: true,
			Note: "no delay, but each attempt targets a different replica (missing-delay FP source, §4.3)",
		},
		{
			App: "HD", Coordinator: "hdfs.BlockFetcher.FetchChecksummed",
			Retried: []string{"hdfs.BlockFetcher.transferChecksummed"},
			File:    "blockreader.go", Mechanism: meta.Loop, Trigger: meta.Exception,
			Keyworded: false, Bug: meta.MissingDelay,
			Note: "WHEN: back-to-back attempts against the same datanode; counter named 'tries' (CodeQL keyword miss)",
		},
		{
			App: "HD", Coordinator: "hdfs.DataStreamer.SetupPipeline",
			Retried: []string{"hdfs.DataStreamer.allocatePipeline"},
			File:    "datastreamer.go", Mechanism: meta.Loop, Trigger: meta.Exception,
			Keyworded: true, Bug: meta.MissingDelay,
			Note: "WHEN: pipeline allocation retried immediately, flooding the namenode",
		},
		{
			App: "HD", Coordinator: "hdfs.DataStreamer.WritePacketGroup",
			Retried: []string{"hdfs.DataStreamer.checkAcks"},
			File:    "datastreamer.go", Mechanism: meta.Loop, Trigger: meta.Exception,
			Keyworded: false, Bug: meta.MissingCap,
			Note: "WHEN: unbounded ack-check retry (delay present, no cap); no retry-named identifier",
		},
		{
			App: "HD", Coordinator: "hdfs.Mover.MoveBlock",
			Retried: []string{"hdfs.Mover.migrate"},
			File:    "mover.go", Mechanism: meta.Loop, Trigger: meta.Exception,
			Keyworded: true,
			Note:      "correct under defaults; '!=' cap comparison turns a negative configured cap into infinite retry (HDFS-15439), a misconfiguration bug WASABI misses (§4.5)",
		},
		{
			App: "HD", Coordinator: "hdfs.Balancer.processTask",
			Retried: []string{"hdfs.Balancer.transferBlock"},
			File:    "mover.go", Mechanism: meta.Queue, Trigger: meta.Exception,
			Keyworded: true,
			Note:      "correct queue re-enqueue retry: per-task cap and pause",
		},
		{
			App: "HD", Coordinator: "hdfs.EditLogTailer.CatchUp",
			Retried: []string{"hdfs.EditLogTailer.fetchEdits"},
			File:    "editlog.go", Mechanism: meta.Loop, Trigger: meta.Exception,
			Keyworded: true, Bug: meta.MissingCap,
			Note: "WHEN: standby tailer retries journal fetches forever (backoff present)",
		},
		{
			App: "HD", Coordinator: "hdfs.Checkpointer.UploadImage",
			Retried: []string{"hdfs.Checkpointer.putImage"},
			File:    "editlog.go", Mechanism: meta.Loop, Trigger: meta.Exception,
			Keyworded: true, HarnessRetried: true,
			Note: "correct cap; callers drive it for many images per run (missing-cap FP source, §4.3)",
		},
		{
			App: "HD", Coordinator: "hdfs.LeaseRenewer.Renew",
			Retried: []string{"hdfs.LeaseRenewer.renewOnce"},
			File:    "editlog.go", Mechanism: meta.Loop, Trigger: meta.Exception,
			Keyworded: false, Bug: meta.MissingDelay,
			Note: "WHEN: renewal attempts fired back to back; counter named 'tries'",
		},
		{
			App: "HD", Coordinator: "hdfs.NamenodeRPC.Call",
			Retried: []string{"hdfs.NamenodeRPC.invoke"},
			File:    "namenode.go", Mechanism: meta.Loop, Trigger: meta.Exception,
			Keyworded: true,
			Note:      "correct: cap, exponential backoff, permission/not-found/unsupported excluded",
		},
		{
			App: "HD", Coordinator: "hdfs.ReplicationMonitor.ProcessQueue",
			File: "namenode.go", Mechanism: meta.Queue, Trigger: meta.ErrorCode,
			Keyworded: true,
			Note:      "correct error-code-triggered re-enqueue; uninjectable by exception-based testing (§4.2)",
		},
		{
			App: "HD", Coordinator: "hdfs.ReconstructionProc.Step",
			Retried: []string{"hdfs.ReconstructionProc.readShards", "hdfs.ReconstructionProc.writeRecovered"},
			File:    "procedures.go", Mechanism: meta.StateMachine, Trigger: meta.Exception,
			Keyworded: true,
			Note:      "correct state-machine retry: in-place re-dispatch with backoff and cap",
		},
		{
			App: "HD", Coordinator: "hdfs.RegistrationProc.Step",
			Retried: []string{"hdfs.RegistrationProc.handshake", "hdfs.RegistrationProc.register"},
			File:    "procedures.go", Mechanism: meta.StateMachine, Trigger: meta.Exception,
			Keyworded: true, Bug: meta.MissingDelay,
			Note: "WHEN: implicit state retry re-dispatched hot with no pause (HBASE-20492 shape)",
		},
	}
}
