package hdfs

import (
	"context"
	"time"

	"wasabi/internal/apps/common"
	"wasabi/internal/errmodel"
	"wasabi/internal/fault"
	"wasabi/internal/vclock"
)

// Reconstruction states for erasure-coded block repair.
const (
	ecStateRead = iota
	ecStateDecode
	ecStateWrite
	ecStateDone
)

// ReconstructionProc rebuilds a lost erasure-coded block as a
// state-machine procedure: read surviving shards, decode, write the
// recovered block. A failed state is retried in place with backoff up to
// the configured attempt cap — a *correct* state-machine retry.
type ReconstructionProc struct {
	app      *App
	block    string
	state    int
	attempts int
	shards   []string
	decoded  string
}

// NewReconstructionProc returns a procedure to rebuild block.
func NewReconstructionProc(app *App, block string) *ReconstructionProc {
	return &ReconstructionProc{app: app, block: block}
}

// Name implements common.Procedure.
func (p *ReconstructionProc) Name() string { return "ec-reconstruction-" + p.block }

// readShards fetches the surviving shards of the block.
//
// Throws: SocketException, EOFException.
func (p *ReconstructionProc) readShards(ctx context.Context) error {
	if err := fault.Hook(ctx); err != nil {
		return err
	}
	replicas := p.app.Replicas(p.block)
	if len(replicas) == 0 {
		return errmodel.Newf("EOFException", "no shards for %s", p.block)
	}
	p.shards = replicas
	return nil
}

// writeRecovered stores the reconstructed block on a target datanode.
//
// Throws: ConnectException.
func (p *ReconstructionProc) writeRecovered(ctx context.Context) error {
	if err := fault.Hook(ctx); err != nil {
		return err
	}
	return p.app.Cluster.Call(ctx, p.shards[0], func(n *common.Node) error {
		n.Store.Put("block/"+p.block+"/recovered", p.decoded)
		return nil
	})
}

// Step implements common.Procedure. On a transient error the state is
// left unchanged so the executor re-runs it (implicit retry), after a
// backoff and subject to the configured attempt cap.
func (p *ReconstructionProc) Step(ctx context.Context) (bool, error) {
	maxAttempts := p.app.Config.GetInt("dfs.ec.reconstruction.attempts", 4)
	retryStep := func(err error) (bool, error) {
		p.attempts++
		if p.attempts >= maxAttempts {
			return false, err
		}
		vclock.Sleep(ctx, vclock.Backoff(100*time.Millisecond, p.attempts-1, 2*time.Second))
		return false, nil // state unchanged: implicit retry
	}
	switch p.state {
	case ecStateRead:
		if err := p.readShards(ctx); err != nil {
			return retryStep(err)
		}
		p.state, p.attempts = ecStateDecode, 0
	case ecStateDecode:
		p.decoded = "decoded:" + p.block
		p.state, p.attempts = ecStateWrite, 0
	case ecStateWrite:
		if err := p.writeRecovered(ctx); err != nil {
			return retryStep(err)
		}
		p.state = ecStateDone
	case ecStateDone:
		return true, nil
	}
	return p.state == ecStateDone, nil
}

// Registration states for datanode startup.
const (
	regStateHandshake = iota
	regStateRegister
	regStateFirstReport
	regStateDone
)

// RegistrationProc drives a datanode's registration with the namenode as
// a state-machine procedure.
//
// BUG (WHEN, missing delay, modeled on HBASE-20492's shape): a failed
// handshake or registration leaves the state unchanged for the executor
// to re-dispatch, but there is no pause before the implicit retry, so the
// executor spins hot against the namenode while the condition persists.
type RegistrationProc struct {
	app      *App
	node     string
	state    int
	attempts int
}

// NewRegistrationProc returns a registration procedure for node.
func NewRegistrationProc(app *App, node string) *RegistrationProc {
	return &RegistrationProc{app: app, node: node}
}

// Name implements common.Procedure.
func (p *RegistrationProc) Name() string { return "register-" + p.node }

// handshake negotiates namespace and version with the namenode.
//
// Throws: ConnectException.
func (p *RegistrationProc) handshake(ctx context.Context) error {
	if err := fault.Hook(ctx); err != nil {
		return err
	}
	vclock.Elapse(ctx, time.Millisecond)
	return nil
}

// register records the datanode in the namenode's registry.
//
// Throws: RemoteException.
func (p *RegistrationProc) register(ctx context.Context) error {
	if err := fault.Hook(ctx); err != nil {
		return err
	}
	p.app.Meta.Put("datanode/"+p.node, "registered")
	return nil
}

// Step implements common.Procedure. Transient errors are retried
// implicitly, capped by attempt count — but with no delay in between.
func (p *RegistrationProc) Step(ctx context.Context) (bool, error) {
	const maxRetryAttempts = 8
	retryStep := func(err error) (bool, error) {
		p.attempts++
		if p.attempts >= maxRetryAttempts {
			return false, err
		}
		return false, nil // implicit retry, immediately re-dispatched
	}
	switch p.state {
	case regStateHandshake:
		if err := p.handshake(ctx); err != nil {
			return retryStep(err)
		}
		p.state, p.attempts = regStateRegister, 0
	case regStateRegister:
		if err := p.register(ctx); err != nil {
			return retryStep(err)
		}
		p.state, p.attempts = regStateFirstReport, 0
	case regStateFirstReport:
		p.app.Meta.Put("datanode/"+p.node+"/report", "sent")
		p.state = regStateDone
	case regStateDone:
		return true, nil
	}
	return p.state == regStateDone, nil
}
