package hdfs

import (
	"context"
	"time"

	"wasabi/internal/apps/common"
	"wasabi/internal/errmodel"
	"wasabi/internal/fault"
	"wasabi/internal/vclock"
)

// readStats tracks per-read telemetry; it is allocated lazily once a
// block reader connection is established.
type readStats struct {
	lastPeer string
	bytes    int
}

// blockReader streams a block's bytes from one datanode.
type blockReader struct {
	app   *App
	block string
	peer  string
}

// read returns the block payload from the reader's peer.
//
// Throws: EOFException.
func (r *blockReader) read(ctx context.Context) (string, error) {
	if err := fault.Hook(ctx); err != nil {
		return "", err
	}
	var payload string
	err := r.app.Cluster.Call(ctx, r.peer, func(n *common.Node) error {
		v, ok := n.Store.Get("block/" + r.block)
		if !ok {
			return errmodel.Newf("EOFException", "block %s missing on %s", r.block, n.Name)
		}
		payload = v
		return nil
	})
	return payload, err
}

// DFSInputStream reads file blocks with transparent failover between
// replicas.
type DFSInputStream struct {
	app    *App
	reader *blockReader
	stats  *readStats
}

// NewInputStream returns an input stream over the deployment.
func NewInputStream(app *App) *DFSInputStream { return &DFSInputStream{app: app} }

// createBlockReader connects to the first replica of block and, once the
// connection succeeds, allocates the read statistics.
//
// Throws: SocketException, ConnectException.
func (s *DFSInputStream) createBlockReader(ctx context.Context, block string) error {
	if err := fault.Hook(ctx); err != nil {
		return err
	}
	replicas := s.app.Replicas(block)
	if len(replicas) == 0 {
		return errmodel.Newf("FileNotFoundException", "unknown block %s", block)
	}
	s.reader = &blockReader{app: s.app, block: block, peer: replicas[0]}
	s.stats = &readStats{lastPeer: replicas[0]}
	return nil
}

// ReadBlock reads a block with bounded retry on transient errors.
//
// BUG (HOW, modeled on the createBlockReader NullPointerException in
// §4.1): when a transient error happens this early, the read statistics
// were never allocated, yet the handler below logs the current peer from
// them — a nil dereference on the very first retry attempt.
func (s *DFSInputStream) ReadBlock(ctx context.Context, block string) (string, error) {
	maxRetries := s.app.Config.GetInt("dfs.client.retry.max.attempts", 4)
	var last error
	for retry := 0; retry < maxRetries; retry++ {
		if err := s.createBlockReader(ctx, block); err != nil {
			if errmodel.IsClass(err, "FileNotFoundException") {
				return "", err
			}
			last = err
			s.app.log(ctx, "read of %s failed on peer %s, retrying", block, s.stats.lastPeer)
			vclock.Sleep(ctx, time.Second)
			continue
		}
		payload, err := s.reader.read(ctx)
		if err != nil {
			last = err
			s.app.log(ctx, "read of %s failed on peer %s, retrying", block, s.stats.lastPeer)
			vclock.Sleep(ctx, time.Second)
			continue
		}
		s.stats.bytes += len(payload)
		return payload, nil
	}
	return "", last
}

// fetchReplica reads block directly from the replica at index idx.
//
// Throws: SocketTimeoutException, ConnectException.
func (s *DFSInputStream) fetchReplica(ctx context.Context, block string, idx int) (string, error) {
	if err := fault.Hook(ctx); err != nil {
		return "", err
	}
	replicas := s.app.Replicas(block)
	if idx >= len(replicas) {
		return "", errmodel.Newf("EOFException", "replica %d of %s out of range", idx, block)
	}
	var payload string
	err := s.app.Cluster.Call(ctx, replicas[idx], func(n *common.Node) error {
		v, ok := n.Store.Get("block/" + block)
		if !ok {
			return errmodel.Newf("EOFException", "missing replica")
		}
		payload = v
		return nil
	})
	return payload, err
}

// ReadWithFailover reads a block, moving to the next replica on failure.
// There is deliberately no sleep between attempts: each retry contacts a
// *different* datanode, so pausing is unnecessary — the pattern §4.3
// describes as a missing-delay false positive for WASABI.
func (s *DFSInputStream) ReadWithFailover(ctx context.Context, block string) (string, error) {
	replicas := s.app.Replicas(block)
	var last error
	for retry := 0; retry < len(replicas); retry++ {
		payload, err := s.fetchReplica(ctx, block, retry)
		if err != nil {
			last = err
			s.app.log(ctx, "replica %d of %s failed, trying next", retry, block)
			continue
		}
		return payload, nil
	}
	if last == nil {
		last = errmodel.Newf("EOFException", "no replicas for %s", block)
	}
	return "", last
}

// BlockFetcher verifies block integrity while reading.
type BlockFetcher struct {
	app *App
}

// NewBlockFetcher returns a checksumming fetcher.
func NewBlockFetcher(app *App) *BlockFetcher { return &BlockFetcher{app: app} }

// transferChecksummed reads the block and its checksum from a datanode.
//
// Throws: SocketException, EOFException.
func (f *BlockFetcher) transferChecksummed(ctx context.Context, block string) (string, error) {
	if err := fault.Hook(ctx); err != nil {
		return "", err
	}
	replicas := f.app.Replicas(block)
	if len(replicas) == 0 {
		return "", errmodel.Newf("EOFException", "no replicas for %s", block)
	}
	var payload string
	err := f.app.Cluster.Call(ctx, replicas[0], func(n *common.Node) error {
		v, ok := n.Store.Get("block/" + block)
		if !ok {
			return errmodel.Newf("EOFException", "missing block")
		}
		payload = v
		return nil
	})
	return payload, err
}

// FetchChecksummed reads a block, re-attempting the transfer when the
// datanode connection drops mid-stream.
//
// BUG (WHEN, missing delay): attempts are issued back to back against the
// same datanode with no pause; under a persistent transient condition this
// hammers the node. The loop also carries no retry-named identifier — the
// counter is called "tries" — making it invisible to keyword-filtered
// structural analysis (a CodeQL false negative, found only by the LLM).
func (f *BlockFetcher) FetchChecksummed(ctx context.Context, block string) (string, error) {
	const maxTries = 6
	var last error
	for tries := 0; tries < maxTries; tries++ {
		payload, err := f.transferChecksummed(ctx, block)
		if err != nil {
			last = err
			continue
		}
		return payload, nil
	}
	return "", last
}
