package hdfs

import (
	"context"
	"strconv"
	"time"

	"wasabi/internal/fault"
	"wasabi/internal/vclock"
)

// EditLogTailer replays namespace edits from the shared journal onto the
// standby namenode.
type EditLogTailer struct {
	app     *App
	applied int
}

// NewEditLogTailer returns a tailer with no edits applied.
func NewEditLogTailer(app *App) *EditLogTailer { return &EditLogTailer{app: app} }

// fetchEdits pulls the next batch of edits from the journal nodes.
//
// Throws: SocketTimeoutException, EOFException.
func (t *EditLogTailer) fetchEdits(ctx context.Context) (int, error) {
	if err := fault.Hook(ctx); err != nil {
		return 0, err
	}
	vclock.Elapse(ctx, time.Millisecond)
	n := len(t.app.Meta.ListPrefix("edits/"))
	return n - t.applied, nil
}

// CatchUp replays journal edits until the standby is current, retrying
// transient journal failures.
//
// BUG (WHEN, missing cap): the tailer must eventually become current, so
// failures are retried without any bound on attempts — if the journal
// quorum stays unreachable, the standby wedges here forever (the backoff
// makes it quiet, not bounded).
func (t *EditLogTailer) CatchUp(ctx context.Context) (int, error) {
	retryBackoff := 250 * time.Millisecond
	for {
		pending, err := t.fetchEdits(ctx)
		if err != nil {
			t.app.log(ctx, "journal fetch failed: %v", err)
			vclock.Sleep(ctx, retryBackoff)
			continue
		}
		t.applied += pending
		return t.applied, nil
	}
}

// Checkpointer uploads periodic namespace images from the standby to the
// active namenode.
type Checkpointer struct {
	app *App
}

// NewCheckpointer returns a checkpointer for the deployment.
func NewCheckpointer(app *App) *Checkpointer { return &Checkpointer{app: app} }

// putImage transfers one checkpoint image to the active namenode.
//
// Throws: ConnectException, SocketTimeoutException.
func (c *Checkpointer) putImage(ctx context.Context, txid int) error {
	if err := fault.Hook(ctx); err != nil {
		return err
	}
	vclock.Elapse(ctx, 2*time.Millisecond)
	c.app.Meta.Put("image/"+strconv.Itoa(txid), "uploaded")
	return nil
}

// UploadImage transfers a checkpoint image with a small bounded retry.
// The cap is correct; callers (including the checkpoint scheduler and the
// application's own tests) invoke UploadImage once per image over many
// images and tolerate individual failures — the caller-level re-driving
// that §4.3 identifies as a missing-cap false-positive source for WASABI.
func (c *Checkpointer) UploadImage(ctx context.Context, txid int) error {
	maxRetries := c.app.Config.GetInt("dfs.image.transfer.retries", 3)
	var last error
	for retry := 0; retry < maxRetries; retry++ {
		err := c.putImage(ctx, txid)
		if err == nil {
			return nil
		}
		last = err
		vclock.Sleep(ctx, 100*time.Millisecond)
	}
	return last
}

// LeaseRenewer keeps client write leases alive.
type LeaseRenewer struct {
	app *App
}

// NewLeaseRenewer returns a renewer for the deployment.
func NewLeaseRenewer(app *App) *LeaseRenewer { return &LeaseRenewer{app: app} }

// renewOnce sends one lease renewal to the namenode.
//
// Throws: ConnectException.
func (l *LeaseRenewer) renewOnce(ctx context.Context, client string) error {
	if err := fault.Hook(ctx); err != nil {
		return err
	}
	l.app.Meta.Put("lease/"+client, "renewed")
	return nil
}

// Renew refreshes a client lease, re-attempting on connection failures.
//
// BUG (WHEN, missing delay): renewal attempts are fired back to back.
// The attempt counter is named "tries", so keyword-filtered structural
// analysis does not see this loop; only fuzzy comprehension does.
func (l *LeaseRenewer) Renew(ctx context.Context, client string) error {
	const maxTries = 5
	var last error
	for tries := 0; tries < maxTries; tries++ {
		err := l.renewOnce(ctx, client)
		if err == nil {
			return nil
		}
		last = err
	}
	return last
}
