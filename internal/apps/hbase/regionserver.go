package hbase

import (
	"context"
	"time"

	"wasabi/internal/apps/common"
	"wasabi/internal/errmodel"
	"wasabi/internal/fault"
	"wasabi/internal/vclock"
)

// RegionFlusher flushes a region's memstore to durable storage.
type RegionFlusher struct {
	app *App
}

// NewRegionFlusher returns a flusher for the deployment.
func NewRegionFlusher(app *App) *RegionFlusher { return &RegionFlusher{app: app} }

// flushOnce writes the memstore snapshot for region.
//
// Throws: IOException, IllegalArgumentException.
func (f *RegionFlusher) flushOnce(ctx context.Context, region string) error {
	if err := fault.Hook(ctx); err != nil {
		return err
	}
	rs := f.app.RegionServer(region)
	if rs == "" {
		return errmodel.Newf("IllegalArgumentException", "unknown region %s", region)
	}
	return f.app.Cluster.Call(ctx, rs, func(n *common.Node) error {
		n.Store.Put("flush/"+region, "done")
		return nil
	})
}

// Flush flushes a region, retrying transient storage errors up to the
// configured cap. A request for an unknown region is a caller mistake and
// aborts immediately.
//
// BUG (WHEN, missing delay): flush attempts are issued back to back,
// saturating the storage layer exactly when it is struggling.
func (f *RegionFlusher) Flush(ctx context.Context, region string) error {
	maxRetries := f.app.Config.GetInt("hbase.flush.retries.number", 6)
	var last error
	for retry := 0; retry < maxRetries; retry++ {
		err := f.flushOnce(ctx, region)
		if err == nil {
			return nil
		}
		if errmodel.IsClass(err, "IllegalArgumentException") {
			return err
		}
		last = err
	}
	return last
}

// CompactionRunner merges store files for a region.
type CompactionRunner struct {
	app *App
}

// NewCompactionRunner returns a runner for the deployment.
func NewCompactionRunner(app *App) *CompactionRunner { return &CompactionRunner{app: app} }

// selectFiles chooses the store files to merge for region.
//
// Throws: IOException.
func (c *CompactionRunner) selectFiles(ctx context.Context, region string) ([]string, error) {
	if err := fault.Hook(ctx); err != nil {
		return nil, err
	}
	vclock.Elapse(ctx, time.Millisecond)
	return []string{"sf1-" + region, "sf2-" + region}, nil
}

// Compact merges a region's store files, retrying selection while the
// region is busy.
//
// BUG (WHEN, missing cap): compaction "must" eventually run, so selection
// failures are retried forever — with a pause, but with no bound on retry
// attempts or total time.
func (c *CompactionRunner) Compact(ctx context.Context, region string) (int, error) {
	retryPause := c.app.Config.GetDuration("hbase.regionserver.compaction.wait", 200*time.Millisecond)
	for {
		files, err := c.selectFiles(ctx, region)
		if err != nil {
			c.app.log(ctx, "compaction selection for %s failed: %v", region, err)
			vclock.Sleep(ctx, retryPause)
			continue
		}
		c.app.Meta.Put("compacted/"+region, "done")
		return len(files), nil
	}
}

// WALRoller rotates the write-ahead log when it grows too large.
type WALRoller struct {
	app *App
}

// NewWALRoller returns a roller for the deployment.
func NewWALRoller(app *App) *WALRoller { return &WALRoller{app: app} }

// rollOnce closes the current log segment and opens a new one.
//
// Throws: IOException.
func (w *WALRoller) rollOnce(ctx context.Context) error {
	if err := fault.Hook(ctx); err != nil {
		return err
	}
	vclock.Elapse(ctx, time.Millisecond)
	w.app.Meta.Put("wal/segment", "rolled")
	return nil
}

// Roll rotates the log, retrying until it succeeds.
//
// BUG (WHEN, missing cap): the roller cannot make progress without a new
// segment, so it retries indefinitely; a persistently failing filesystem
// wedges the region server here.
func (w *WALRoller) Roll(ctx context.Context) error {
	retryDelay := 100 * time.Millisecond
	for {
		err := w.rollOnce(ctx)
		if err == nil {
			return nil
		}
		w.app.log(ctx, "log roll failed: %v", err)
		vclock.Sleep(ctx, retryDelay)
	}
}

// MobCompactor compacts medium-object (MOB) files.
type MobCompactor struct {
	app *App
}

// NewMobCompactor returns a compactor for the deployment.
func NewMobCompactor(app *App) *MobCompactor { return &MobCompactor{app: app} }

// sweepOnce merges one generation of MOB files.
//
// Throws: IOException.
func (m *MobCompactor) sweepOnce(ctx context.Context) error {
	if err := fault.Hook(ctx); err != nil {
		return err
	}
	vclock.Elapse(ctx, time.Millisecond)
	m.app.Meta.Put("mob/swept", "true")
	return nil
}

// Sweep keeps re-attempting the MOB sweep until it goes through.
//
// BUG (WHEN, missing cap): unbounded re-attempts, and the loop carries no
// retry-named identifier (the counter is "tries"), so keyword-filtered
// structural analysis does not see it — only fuzzy comprehension does.
func (m *MobCompactor) Sweep(ctx context.Context) error {
	tries := 0
	for {
		err := m.sweepOnce(ctx)
		if err == nil {
			return nil
		}
		tries++
		m.app.log(ctx, "mob sweep failed (%d tries): %v", tries, err)
		vclock.Sleep(ctx, 150*time.Millisecond)
	}
}
