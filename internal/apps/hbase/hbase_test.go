package hbase

import (
	"context"
	"testing"

	"wasabi/internal/apps/common"
	"wasabi/internal/errmodel"
	"wasabi/internal/fault"
	"wasabi/internal/trace"
)

func injected(coordinator, retried, exc string, k int) (context.Context, *trace.Run) {
	in := fault.NewInjector([]fault.Rule{{
		Loc: fault.Location{Coordinator: coordinator, Retried: retried, Exception: exc},
		K:   k,
	}})
	run := trace.NewRun("t")
	return fault.With(trace.With(context.Background(), run), in), run
}

// TestUnassignRetriesWithoutDelay demonstrates HBASE-20492 directly: the
// injected transient failures are absorbed by implicit state retries with
// zero sleeps between them.
func TestUnassignRetriesWithoutDelay(t *testing.T) {
	app := New()
	app.AddRegion("r1", "rs1")
	ctx, run := injected("hbase.UnassignProc.Step", "hbase.UnassignProc.markRegionAsClosing", "KeeperException", 3)
	exec := common.NewProcedureExecutor()
	if err := exec.Run(ctx, NewUnassignProc(app, "r1")); err != nil {
		t.Fatalf("procedure should heal after 3 injections: %v", err)
	}
	injections, sleeps := 0, 0
	for _, e := range run.Events() {
		switch e.Kind {
		case trace.KindInjection:
			injections++
		case trace.KindSleep:
			sleeps++
		}
	}
	if injections != 3 {
		t.Errorf("injections = %d", injections)
	}
	if sleeps != 0 {
		t.Errorf("the bug is that there are no sleeps; got %d", sleeps)
	}
}

// TestTruncateLeavesPartialLayout demonstrates HBASE-20616: one transient
// flush failure leaves a layout file behind, and the state retry then
// fails with FileAlreadyExistsException.
func TestTruncateLeavesPartialLayout(t *testing.T) {
	app := New()
	ctx, _ := injected("hbase.TruncateTableProc.Step", "hbase.TruncateTableProc.writeLayoutFile", "IOException", 1)
	exec := common.NewProcedureExecutor()
	err := exec.Run(ctx, NewTruncateTableProc(app, "t1"))
	if err == nil {
		t.Fatal("expected the procedure to wedge")
	}
	if !errmodel.IsClass(err, "FileAlreadyExistsException") {
		t.Errorf("err = %v, want FileAlreadyExistsException", err)
	}
}

// TestAssignHealsWithBackoff shows the correct procedure absorbing
// transient failures with delays.
func TestAssignHealsWithBackoff(t *testing.T) {
	app := New()
	ctx, run := injected("hbase.AssignProc.Step", "hbase.AssignProc.openRegion", "RemoteException", 2)
	exec := common.NewProcedureExecutor()
	if err := exec.Run(ctx, NewAssignProc(app, "r2", "rs1")); err != nil {
		t.Fatalf("assign failed: %v", err)
	}
	sleeps := 0
	for _, e := range run.Events() {
		if e.Kind == trace.KindSleep {
			sleeps++
		}
	}
	if sleeps != 2 {
		t.Errorf("sleeps = %d, want one per retry", sleeps)
	}
	if st, _ := app.Meta.Get("regionstate/r2"); st != "OPEN" {
		t.Errorf("state = %q", st)
	}
}

// TestProcedureStoreAbortsOnKeeperException shows the IF outlier: the
// exception retried everywhere else aborts recovery here.
func TestProcedureStoreAbortsOnKeeperException(t *testing.T) {
	app := New()
	app.ZK.Put("procs/1", "RUNNING")
	ctx, run := injected("hbase.ProcedureStore.Recover", "hbase.ProcedureStore.loadEntries", "KeeperException", 1)
	_, err := NewProcedureStore(app).Recover(ctx)
	if err == nil {
		t.Fatal("recovery should abort on the first KeeperException")
	}
	for _, e := range run.Events() {
		if e.Kind == trace.KindInjection && e.Count > 1 {
			t.Error("no retry should have happened")
		}
	}
}

// TestZKLoopsHealUnderInjection covers the correct ZooKeeper retry loops.
func TestZKLoopsHealUnderInjection(t *testing.T) {
	app := New()
	app.ZK.Put("node/a", "v")
	z := NewZKWatcher(app)
	ctx, _ := injected("hbase.ZKWatcher.GetData", "hbase.ZKWatcher.zkGet", "KeeperException", 2)
	v, err := z.GetData(ctx, "node/a")
	if err != nil || v != "v" {
		t.Errorf("GetData = %q, %v", v, err)
	}
	ctx2, _ := injected("hbase.ZKWatcher.SetData", "hbase.ZKWatcher.zkSet", "KeeperException", 3)
	if err := z.SetData(ctx2, "node/b", "w"); err != nil {
		t.Errorf("SetData: %v", err)
	}
	ctx3, _ := injected("hbase.ZKWatcher.CreateNode", "hbase.ZKWatcher.zkCreate", "KeeperException", 1)
	if err := z.CreateNode(ctx3, "node/c", "x"); err != nil {
		t.Errorf("CreateNode: %v", err)
	}
}

// TestScannerRotatesServers shows the delay-unneeded failover shape.
func TestScannerRotatesServers(t *testing.T) {
	app := New()
	app.Cluster.Node("rs1").SetDown(true)
	app.Cluster.Node("rs2").SetDown(true)
	id, err := NewScannerCallable(app).Open(context.Background())
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if id != "scanner-2" {
		t.Errorf("scanner = %q, want the third server", id)
	}
}

// TestBulkLoadRequeuesOnFailure exercises the queue retry path.
func TestBulkLoadRequeuesOnFailure(t *testing.T) {
	app := New()
	b := NewBulkLoader(app)
	b.Submit("cf1")
	ctx, run := injected("hbase.BulkLoader.processLoad", "hbase.BulkLoader.loadOnce", "IOException", 2)
	if err := b.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if b.Loaded != 1 {
		t.Errorf("loaded = %d", b.Loaded)
	}
	injections := 0
	for _, e := range run.Events() {
		if e.Kind == trace.KindInjection {
			injections++
		}
	}
	if injections != 2 {
		t.Errorf("injections = %d", injections)
	}
}

// TestLeaseRecoveryWrapsExhaustedFailure shows the wrap-on-exhaust FP
// source behaviour.
func TestLeaseRecoveryWrapsExhaustedFailure(t *testing.T) {
	app := New()
	ctx, _ := injected("hbase.LeaseRecovery.Recover", "hbase.LeaseRecovery.recoverOnce", "IOException", 100)
	err := NewLeaseRecovery(app).Recover(ctx, "wal-1")
	if err == nil {
		t.Fatal("expected wrapped failure")
	}
	if !errmodel.IsClass(err, "ServiceException") {
		t.Errorf("outermost class = %v", err)
	}
	if !errmodel.CauseIsClass(err, "IOException") {
		t.Error("cause chain should carry the injected IOException")
	}
}
