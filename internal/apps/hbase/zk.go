package hbase

import (
	"context"
	"strconv"
	"strings"
	"time"

	"wasabi/internal/errmodel"
	"wasabi/internal/fault"
	"wasabi/internal/vclock"
)

// This file is HBase's ZooKeeper access layer. Every public operation
// wraps a transient-failure-prone ensemble call in its own ad-hoc retry
// loop — the duplication is deliberate, mirroring the "range of unique
// local implementations" the paper calls out (§4.5). The KeeperException
// family is retried everywhere EXCEPT in ProcedureStore.Recover, which is
// the application-wide retry-ratio outlier the IF-bug analysis flags
// (modeled on HBASE-25743, where a new transient KeeperException subtype
// went unretried for over a year).
//
// This file is also intentionally the largest in the package: the paper
// found that GPT-4 misses retry logic in large files (100 missed loops in
// 53 files of ~10.5 KB mean size, §4.2), so the loops here are found by
// the structural analysis alone.

// ZKWatcher is the client handle to the ZooKeeper ensemble.
type ZKWatcher struct {
	app *App
}

// NewZKWatcher returns a watcher over the deployment's ensemble.
func NewZKWatcher(app *App) *ZKWatcher { return &ZKWatcher{app: app} }

// zkGet reads a znode from the ensemble.
//
// Throws: KeeperException.
func (z *ZKWatcher) zkGet(ctx context.Context, path string) (string, error) {
	if err := fault.Hook(ctx); err != nil {
		return "", err
	}
	vclock.Elapse(ctx, time.Millisecond)
	v, ok := z.app.ZK.Get(path)
	if !ok {
		return "", errmodel.Newf("KeeperException", "no node %s", path)
	}
	return v, nil
}

// zkSet writes a znode on the ensemble.
//
// Throws: KeeperException.
func (z *ZKWatcher) zkSet(ctx context.Context, path, value string) error {
	if err := fault.Hook(ctx); err != nil {
		return err
	}
	vclock.Elapse(ctx, time.Millisecond)
	z.app.ZK.Put(path, value)
	return nil
}

// zkCreate creates a znode, failing if it already exists.
//
// Throws: KeeperException.
func (z *ZKWatcher) zkCreate(ctx context.Context, path, value string) error {
	if err := fault.Hook(ctx); err != nil {
		return err
	}
	vclock.Elapse(ctx, time.Millisecond)
	if !z.app.ZK.PutIfAbsent(path, value) {
		return errmodel.Newf("KeeperException", "node exists %s", path)
	}
	return nil
}

// zkChildren lists the children of a znode prefix.
//
// Throws: KeeperException.
func (z *ZKWatcher) zkChildren(ctx context.Context, prefix string) ([]string, error) {
	if err := fault.Hook(ctx); err != nil {
		return nil, err
	}
	vclock.Elapse(ctx, time.Millisecond)
	return z.app.ZK.ListPrefix(prefix), nil
}

// GetData reads a znode, retrying transient ensemble errors up to the
// configured recovery retry count with a fixed pause.
func (z *ZKWatcher) GetData(ctx context.Context, path string) (string, error) {
	maxRetries := z.app.Config.GetInt("hbase.zookeeper.recovery.retry", 6)
	pause := z.app.Config.GetDuration("hbase.client.pause", 100*time.Millisecond)
	var last error
	for retry := 0; retry < maxRetries; retry++ {
		v, err := z.zkGet(ctx, path)
		if err == nil {
			return v, nil
		}
		last = err
		vclock.Sleep(ctx, pause)
	}
	return "", last
}

// SetData writes a znode, retrying transient ensemble errors with
// exponential backoff.
func (z *ZKWatcher) SetData(ctx context.Context, path, value string) error {
	maxRetries := z.app.Config.GetInt("hbase.zookeeper.recovery.retry", 6)
	var last error
	for retry := 0; retry < maxRetries; retry++ {
		err := z.zkSet(ctx, path, value)
		if err == nil {
			return nil
		}
		last = err
		vclock.Sleep(ctx, vclock.Backoff(50*time.Millisecond, retry, 2*time.Second))
	}
	return last
}

// CreateNode creates a znode, retrying transient errors. An
// already-exists outcome is treated as success on retry, since a previous
// attempt may have succeeded on the ensemble before the client saw the
// error (the create is idempotent by design here).
func (z *ZKWatcher) CreateNode(ctx context.Context, path, value string) error {
	maxRetries := z.app.Config.GetInt("hbase.zookeeper.recovery.retry", 6)
	pause := z.app.Config.GetDuration("hbase.client.pause", 100*time.Millisecond)
	var last error
	for retry := 0; retry < maxRetries; retry++ {
		err := z.zkCreate(ctx, path, value)
		if err == nil {
			return nil
		}
		if strings.Contains(err.Error(), "node exists") {
			return nil
		}
		last = err
		vclock.Sleep(ctx, pause)
	}
	return last
}

// DeleteNode removes a znode, retrying transient ensemble errors up to
// the configured cap.
//
// BUG (WHEN, missing delay): deletions are re-attempted back to back.
// Because this file is too large for the LLM's context, only fault
// injection through unit tests finds this bug (the "unit testing only"
// region of Figure 3).
func (z *ZKWatcher) DeleteNode(ctx context.Context, path string) error {
	maxRetries := z.app.Config.GetInt("hbase.zookeeper.recovery.retry", 6)
	var last error
	for retry := 0; retry < maxRetries; retry++ {
		err := z.zkDelete(ctx, path)
		if err == nil {
			return nil
		}
		last = err
	}
	return last
}

// zkDelete removes a znode on the ensemble.
//
// Throws: KeeperException.
func (z *ZKWatcher) zkDelete(ctx context.Context, path string) error {
	if err := fault.Hook(ctx); err != nil {
		return err
	}
	vclock.Elapse(ctx, time.Millisecond)
	z.app.ZK.Delete(path)
	return nil
}

// SyncEnsemble forces a read barrier against the ensemble leader,
// retrying until it goes through.
//
// BUG (WHEN, missing cap): the barrier "must" complete before reads can
// proceed, so it retries forever (with a pause). Like DeleteNode above,
// this hides in a file the LLM cannot digest, so only injected unit
// testing reports it.
func (z *ZKWatcher) SyncEnsemble(ctx context.Context) error {
	pause := z.app.Config.GetDuration("hbase.client.pause", 100*time.Millisecond)
	for {
		err := z.zkSync(ctx)
		if err == nil {
			return nil
		}
		z.app.log(ctx, "ensemble sync failed, retrying: %v", err)
		vclock.Sleep(ctx, pause)
	}
}

// zkSync issues the sync barrier.
//
// Throws: KeeperException.
func (z *ZKWatcher) zkSync(ctx context.Context) error {
	if err := fault.Hook(ctx); err != nil {
		return err
	}
	vclock.Elapse(ctx, time.Millisecond)
	return nil
}

// MetaCache caches region locations read from ZooKeeper.
type MetaCache struct {
	app   *App
	zk    *ZKWatcher
	cache map[string]string
}

// NewMetaCache returns an empty cache.
func NewMetaCache(app *App) *MetaCache {
	return &MetaCache{app: app, zk: NewZKWatcher(app), cache: make(map[string]string)}
}

// locateOnce reads a region's location znode.
//
// Throws: KeeperException.
func (m *MetaCache) locateOnce(ctx context.Context, region string) (string, error) {
	if err := fault.Hook(ctx); err != nil {
		return "", err
	}
	vclock.Elapse(ctx, time.Millisecond)
	if rs, ok := m.app.ZK.Get("meta/region/" + region); ok {
		return rs, nil
	}
	if rs := m.app.RegionServer(region); rs != "" {
		return rs, nil
	}
	return "", errmodel.Newf("KeeperException", "region %s not in meta", region)
}

// Relocate refreshes a region's cached location, retrying transient
// ensemble errors with backoff.
func (m *MetaCache) Relocate(ctx context.Context, region string) (string, error) {
	maxRetries := m.app.Config.GetInt("hbase.client.retries.number", 5)
	var last error
	for retry := 0; retry < maxRetries; retry++ {
		rs, err := m.locateOnce(ctx, region)
		if err == nil {
			m.cache[region] = rs
			return rs, nil
		}
		last = err
		vclock.Sleep(ctx, vclock.Backoff(100*time.Millisecond, retry, 3*time.Second))
	}
	return "", last
}

// Cached returns the cached location of a region ("" if absent).
func (m *MetaCache) Cached(region string) string { return m.cache[region] }

// SplitLogManager coordinates write-ahead-log splitting after a region
// server crash by acquiring task znodes.
type SplitLogManager struct {
	app *App
	zk  *ZKWatcher
}

// NewSplitLogManager returns a manager for the deployment.
func NewSplitLogManager(app *App) *SplitLogManager {
	return &SplitLogManager{app: app, zk: NewZKWatcher(app)}
}

// claimTask atomically claims a split task znode.
//
// Throws: KeeperException.
func (s *SplitLogManager) claimTask(ctx context.Context, task string) error {
	if err := fault.Hook(ctx); err != nil {
		return err
	}
	if !s.app.ZK.PutIfAbsent("splitlog/"+task, "owned") {
		return errmodel.Newf("KeeperException", "task %s already owned", task)
	}
	return nil
}

// AcquireTask claims a split task, retrying transient ensemble errors a
// bounded number of times with a pause between attempts.
func (s *SplitLogManager) AcquireTask(ctx context.Context, task string) error {
	maxRetries := s.app.Config.GetInt("hbase.zookeeper.recovery.retry", 6)
	pause := s.app.Config.GetDuration("hbase.client.pause", 100*time.Millisecond)
	var last error
	for retry := 0; retry < maxRetries; retry++ {
		err := s.claimTask(ctx, task)
		if err == nil {
			return nil
		}
		last = err
		vclock.Sleep(ctx, pause)
	}
	return last
}

// ProcedureStore persists procedure state in ZooKeeper and recovers it on
// master failover.
type ProcedureStore struct {
	app *App
	zk  *ZKWatcher
}

// NewProcedureStore returns a store for the deployment.
func NewProcedureStore(app *App) *ProcedureStore {
	return &ProcedureStore{app: app, zk: NewZKWatcher(app)}
}

// loadEntries reads all persisted procedure entries.
//
// Throws: KeeperException.
func (p *ProcedureStore) loadEntries(ctx context.Context) ([]string, error) {
	if err := fault.Hook(ctx); err != nil {
		return nil, err
	}
	vclock.Elapse(ctx, 2*time.Millisecond)
	return p.app.ZK.ListPrefix("procs/"), nil
}

// Recover replays persisted procedures on failover, retrying when the
// store is momentarily inconsistent.
//
// BUG (IF, wrong retry policy — the retry-ratio outlier, HBASE-25743
// shape): unlike every other ensemble access in this file, a
// KeeperException here aborts recovery immediately, even though the whole
// family is transient and retried elsewhere 6 out of 7 times.
func (p *ProcedureStore) Recover(ctx context.Context) (int, error) {
	maxRetries := p.app.Config.GetInt("hbase.zookeeper.recovery.retry", 6)
	var last error
	for retry := 0; retry < maxRetries; retry++ {
		entries, err := p.loadEntries(ctx)
		if err != nil {
			if errmodel.IsClass(err, "KeeperException") {
				return 0, err
			}
			last = err
			vclock.Sleep(ctx, 100*time.Millisecond)
			continue
		}
		recovered := 0
		for _, e := range entries {
			if v, ok := p.app.ZK.Get(e); ok && v != "corrupt" {
				recovered++
			}
		}
		return recovered, nil
	}
	return 0, last
}

// Persist stores a procedure entry with a sequence number.
func (p *ProcedureStore) Persist(procID int, state string) {
	p.app.ZK.Put("procs/"+strconv.Itoa(procID), state)
}
