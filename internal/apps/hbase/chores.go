package hbase

import (
	"context"
	"strconv"
	"strings"
)

// Housekeeping chores of the HBase miniature: per-item iteration with
// error tolerance — structural retry look-alikes pruned by the
// retry-naming filter (§4.4). No failed item is ever re-executed.

// HFileCleaner removes store files that no region references.
type HFileCleaner struct {
	app *App
	// Removed and Referenced count outcomes per pass.
	Removed, Referenced int
}

// NewHFileCleaner returns a cleaner.
func NewHFileCleaner(app *App) *HFileCleaner { return &HFileCleaner{app: app} }

// referenced reports whether one archived file is still referenced.
func (h *HFileCleaner) referenced(key string) (bool, error) {
	owner, ok := h.app.Meta.Get(key)
	if !ok {
		return false, &schemaError{desc: key, why: "no owner record"}
	}
	return h.app.Meta.Exists(regionKey(owner)), nil
}

// CleanOnce walks every archived store file once.
func (h *HFileCleaner) CleanOnce(ctx context.Context) {
	for _, key := range h.app.Meta.ListPrefix("archive/hfile/") {
		used, err := h.referenced(key)
		if err != nil {
			h.app.log(ctx, "cleaner skipping %s: %v", key, err)
			continue
		}
		if used {
			h.Referenced++
			continue
		}
		h.app.Meta.Delete(key)
		h.Removed++
	}
}

// RegionSizeCalculator sums store sizes per region server.
type RegionSizeCalculator struct {
	app *App
	// Sizes maps server name to aggregate size.
	Sizes map[string]int
}

// NewRegionSizeCalculator returns a calculator.
func NewRegionSizeCalculator(app *App) *RegionSizeCalculator {
	return &RegionSizeCalculator{app: app, Sizes: make(map[string]int)}
}

// sizeOf reads one region's size record.
func (r *RegionSizeCalculator) sizeOf(region string) (int, error) {
	v, ok := r.app.Meta.Get("size/" + region)
	if !ok {
		return 0, &schemaError{desc: region, why: "no size record"}
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, &schemaError{desc: region, why: "malformed size " + v}
	}
	return n, nil
}

// ComputeOnce walks every region once, skipping unparsable records.
func (r *RegionSizeCalculator) ComputeOnce(ctx context.Context) {
	for _, key := range r.app.Meta.ListPrefix("region/") {
		region := strings.TrimPrefix(key, "region/")
		size, err := r.sizeOf(region)
		if err != nil {
			r.app.log(ctx, "size calc skipping %s: %v", region, err)
			continue
		}
		rs, _ := r.app.Meta.Get(key)
		r.Sizes[rs] += size
	}
}

// NamespaceAuditor validates namespace descriptors.
type NamespaceAuditor struct {
	app *App
	// Invalid lists namespaces with broken descriptors.
	Invalid []string
}

// NewNamespaceAuditor returns an auditor.
func NewNamespaceAuditor(app *App) *NamespaceAuditor { return &NamespaceAuditor{app: app} }

// validate checks one namespace descriptor.
func (n *NamespaceAuditor) validate(key string) error {
	desc, _ := n.app.Meta.Get(key)
	if desc == "" {
		return &schemaError{desc: key, why: "empty descriptor"}
	}
	if !strings.Contains(desc, "=") {
		return &schemaError{desc: key, why: "descriptor missing properties"}
	}
	return nil
}

// AuditOnce walks every namespace once.
func (n *NamespaceAuditor) AuditOnce(ctx context.Context) {
	for _, key := range n.app.Meta.ListPrefix("namespace/") {
		if err := n.validate(key); err != nil {
			n.app.log(ctx, "namespace audit: %v", err)
			n.Invalid = append(n.Invalid, key)
			continue
		}
	}
}

// ReplicationLagReader samples per-peer replication lag.
type ReplicationLagReader struct {
	app *App
	// MaxLag is the largest sampled lag; Stale counts unreadable peers.
	MaxLag int
	Stale  int
}

// NewReplicationLagReader returns a reader.
func NewReplicationLagReader(app *App) *ReplicationLagReader {
	return &ReplicationLagReader{app: app}
}

// lagOf reads one peer's lag record.
func (r *ReplicationLagReader) lagOf(key string) (int, error) {
	v, _ := r.app.ZK.Get(key)
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, &schemaError{desc: key, why: "unreadable lag"}
	}
	return n, nil
}

// SampleOnce reads every peer's lag once.
func (r *ReplicationLagReader) SampleOnce(ctx context.Context) {
	for _, key := range r.app.ZK.ListPrefix("peers/lag/") {
		lag, err := r.lagOf(key)
		if err != nil {
			r.app.log(ctx, "lag sample failed: %v", err)
			r.Stale++
			continue
		}
		if lag > r.MaxLag {
			r.MaxLag = lag
		}
	}
}

// MobFileAuditor verifies medium-object file references.
type MobFileAuditor struct {
	app *App
	// Dangling counts files whose owning cell is gone.
	Dangling int
}

// NewMobFileAuditor returns an auditor.
func NewMobFileAuditor(app *App) *MobFileAuditor { return &MobFileAuditor{app: app} }

// verify checks one MOB file's back reference.
func (m *MobFileAuditor) verify(key string) error {
	ref, _ := m.app.Meta.Get(key)
	if !m.app.Meta.Exists("row/" + ref) {
		return &schemaError{desc: key, why: "dangling mob reference"}
	}
	return nil
}

// AuditOnce walks every MOB file once.
func (m *MobFileAuditor) AuditOnce(ctx context.Context) {
	for _, key := range m.app.Meta.ListPrefix("mobfile/") {
		if err := m.verify(key); err != nil {
			m.app.log(ctx, "mob audit: %v", err)
			m.Dangling++
			continue
		}
	}
}

// FavoredNodeChecker validates favored-node assignments.
type FavoredNodeChecker struct {
	app *App
	// Bad counts assignments referencing dead servers.
	Bad int
}

// NewFavoredNodeChecker returns a checker.
func NewFavoredNodeChecker(app *App) *FavoredNodeChecker { return &FavoredNodeChecker{app: app} }

// check validates one favored-node record.
func (f *FavoredNodeChecker) check(key string) error {
	rs, _ := f.app.Meta.Get(key)
	n := f.app.Cluster.Node(rs)
	if n == nil || n.Down() {
		return &schemaError{desc: key, why: "favored node " + rs + " unavailable"}
	}
	return nil
}

// CheckOnce walks every favored-node record once.
func (f *FavoredNodeChecker) CheckOnce(ctx context.Context) {
	for _, key := range f.app.Meta.ListPrefix("favored/") {
		if err := f.check(key); err != nil {
			f.app.log(ctx, "favored-node check: %v", err)
			f.Bad++
			continue
		}
	}
}
