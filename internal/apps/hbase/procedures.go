package hbase

import (
	"context"
	"fmt"
	"time"

	"wasabi/internal/errmodel"
	"wasabi/internal/fault"
	"wasabi/internal/vclock"
)

// Unassign procedure states.
const (
	unassignDispatch = iota
	unassignFinish
	unassignDone
)

// UnassignProc removes a region from its server as a state-machine
// procedure — the paper's Listing 4 (HBASE-20492).
//
// BUG (WHEN, missing delay): when marking the region as closing fails
// transiently, the state is deliberately left unchanged so the executor
// retries the step — but with no pause, congesting the executor while the
// condition persists. (The real fix added an exponential backoff before
// the implicit retry.)
type UnassignProc struct {
	app      *App
	region   string
	state    int
	attempts int
}

// NewUnassignProc returns an unassign procedure for region.
func NewUnassignProc(app *App, region string) *UnassignProc {
	return &UnassignProc{app: app, region: region}
}

// Name implements common.Procedure.
func (p *UnassignProc) Name() string { return "unassign-" + p.region }

// markRegionAsClosing flips the region's state in master metadata.
//
// Throws: KeeperException, RemoteException.
func (p *UnassignProc) markRegionAsClosing(ctx context.Context) error {
	if err := fault.Hook(ctx); err != nil {
		return err
	}
	vclock.Elapse(ctx, time.Millisecond)
	p.app.Meta.Put("regionstate/"+p.region, "CLOSING")
	return nil
}

// Step implements common.Procedure.
func (p *UnassignProc) Step(ctx context.Context) (bool, error) {
	maxRetryAttempts := p.app.Config.GetInt("hbase.assignment.maximum.attempts", 7)
	switch p.state {
	case unassignDispatch:
		if err := p.markRegionAsClosing(ctx); err != nil {
			p.attempts++
			if p.attempts >= maxRetryAttempts {
				return false, err
			}
			return false, nil // implicit retry, re-dispatched immediately
		}
		p.state = unassignFinish
	case unassignFinish:
		rs := p.app.RegionServer(p.region)
		if n := p.app.Cluster.Node(rs); n != nil {
			n.Store.Delete("region/" + p.region)
		}
		p.app.Meta.Put("regionstate/"+p.region, "CLOSED")
		p.state = unassignDone
	case unassignDone:
		return true, nil
	}
	return p.state == unassignDone, nil
}

// Truncate procedure states.
const (
	truncateClearData = iota
	truncateCreateLayout
	truncateFinish
	truncateDone
)

// layoutFiles are the filesystem entries a table layout comprises.
var layoutFiles = []string{"tableinfo", "regioninfo", "seqid"}

// TruncateTableProc truncates a table: clear its data, then recreate the
// filesystem layout — the paper's HBASE-20616.
//
// BUG (HOW, improper state reset): if creating the layout fails after some
// files were written, the step is retried WITHOUT cleaning up the partial
// files; the rewrite then fails with FileAlreadyExistsException and the
// whole procedure wedges.
type TruncateTableProc struct {
	app      *App
	table    string
	state    int
	attempts int
}

// NewTruncateTableProc returns a truncate procedure for table.
func NewTruncateTableProc(app *App, table string) *TruncateTableProc {
	return &TruncateTableProc{app: app, table: table}
}

// Name implements common.Procedure.
func (p *TruncateTableProc) Name() string { return "truncate-" + p.table }

// writeLayoutFile creates one layout entry and flushes it. The entry is
// created before the flush, so a flush failure leaves the entry behind.
//
// Throws: IOException.
func (p *TruncateTableProc) writeLayoutFile(ctx context.Context, name string) error {
	key := fmt.Sprintf("layout/%s/%s", p.table, name)
	if !p.app.Meta.PutIfAbsent(key, "v1") {
		return errmodel.Newf("FileAlreadyExistsException", "layout file %s exists", key)
	}
	if err := fault.Hook(ctx); err != nil {
		return err // flush failed; the entry above is left behind
	}
	return nil
}

// Step implements common.Procedure.
func (p *TruncateTableProc) Step(ctx context.Context) (bool, error) {
	const maxRetryAttempts = 5
	switch p.state {
	case truncateClearData:
		p.app.Meta.DeletePrefix("rows/" + p.table + "/")
		p.app.Meta.DeletePrefix("layout/" + p.table + "/")
		p.state = truncateCreateLayout
	case truncateCreateLayout:
		for _, f := range layoutFiles {
			if err := p.writeLayoutFile(ctx, f); err != nil {
				if errmodel.IsClass(err, "FileAlreadyExistsException") {
					// Unexpected: abort the procedure.
					return false, err
				}
				p.attempts++
				if p.attempts >= maxRetryAttempts {
					return false, err
				}
				vclock.Sleep(ctx, vclock.Backoff(100*time.Millisecond, p.attempts-1, time.Second))
				return false, nil // implicit retry of the whole state
			}
		}
		p.state = truncateFinish
	case truncateFinish:
		p.app.Meta.Put("table/"+p.table, "ENABLED")
		p.state = truncateDone
	case truncateDone:
		return true, nil
	}
	return p.state == truncateDone, nil
}

// Assign procedure states.
const (
	assignQueue = iota
	assignOpen
	assignDone
)

// AssignProc places a region on a server — a correct state-machine retry:
// a failed open is re-dispatched after backoff up to the configured
// attempt cap.
type AssignProc struct {
	app      *App
	region   string
	target   string
	state    int
	attempts int
}

// NewAssignProc returns an assign procedure for region onto target.
func NewAssignProc(app *App, region, target string) *AssignProc {
	return &AssignProc{app: app, region: region, target: target}
}

// Name implements common.Procedure.
func (p *AssignProc) Name() string { return "assign-" + p.region }

// openRegion asks the target server to open the region.
//
// Throws: RemoteException, SocketTimeoutException.
func (p *AssignProc) openRegion(ctx context.Context) error {
	if err := fault.Hook(ctx); err != nil {
		return err
	}
	n := p.app.Cluster.Node(p.target)
	if n == nil || n.Down() {
		return errmodel.Newf("RemoteException", "server %s unavailable", p.target)
	}
	n.Store.Put("region/"+p.region, "open")
	return nil
}

// Step implements common.Procedure.
func (p *AssignProc) Step(ctx context.Context) (bool, error) {
	maxRetryAttempts := p.app.Config.GetInt("hbase.assignment.maximum.attempts", 7)
	switch p.state {
	case assignQueue:
		p.app.Meta.Put("regionstate/"+p.region, "OPENING")
		p.state = assignOpen
	case assignOpen:
		if err := p.openRegion(ctx); err != nil {
			p.attempts++
			if p.attempts >= maxRetryAttempts {
				return false, err
			}
			vclock.Sleep(ctx, vclock.Backoff(100*time.Millisecond, p.attempts-1, 2*time.Second))
			return false, nil // implicit retry with backoff
		}
		p.app.Meta.Put("region/"+p.region, p.target)
		p.app.Meta.Put("regionstate/"+p.region, "OPEN")
		p.state = assignDone
	case assignDone:
		return true, nil
	}
	return p.state == assignDone, nil
}
