package hbase

import (
	"context"
	"strconv"
	"time"

	"wasabi/internal/apps/common"
	"wasabi/internal/errmodel"
	"wasabi/internal/fault"
	"wasabi/internal/vclock"
)

// RSRpcClient is the client-side proxy to region servers.
type RSRpcClient struct {
	app *App
}

// NewRSRpcClient returns a proxy for the deployment.
func NewRSRpcClient(app *App) *RSRpcClient { return &RSRpcClient{app: app} }

// rpcOnce performs one RPC against the server hosting region.
//
// Throws: SocketTimeoutException, IllegalStateException.
func (c *RSRpcClient) rpcOnce(ctx context.Context, region, op, arg string) (string, error) {
	if err := fault.Hook(ctx); err != nil {
		return "", err
	}
	rs := c.app.RegionServer(region)
	if rs == "" {
		return "", errmodel.Newf("IllegalStateException", "region %s unassigned", region)
	}
	var out string
	err := c.app.Cluster.Call(ctx, rs, func(n *common.Node) error {
		switch op {
		case "get":
			out, _ = n.Store.Get("row/" + arg)
		case "put":
			n.Store.Put("row/"+arg, "v")
			out = "ok"
		}
		return nil
	})
	return out, err
}

// Call invokes a region-server operation, retrying transient timeouts with
// the standard backoff. An IllegalStateException means the region is not
// assigned — a condition retry cannot fix — so it aborts immediately.
func (c *RSRpcClient) Call(ctx context.Context, region, op, arg string) (string, error) {
	maxRetries := c.app.Config.GetInt("hbase.client.retries.number", 5)
	var last error
	for retry := 0; retry < maxRetries; retry++ {
		out, err := c.rpcOnce(ctx, region, op, arg)
		if err == nil {
			return out, nil
		}
		if errmodel.IsClass(err, "IllegalStateException") {
			return "", err
		}
		last = err
		pauseBetweenAttempts(ctx, retry)
	}
	return "", last
}

// HTableClient batches row mutations against a table.
type HTableClient struct {
	app *App
	rpc *RSRpcClient
}

// NewHTableClient returns a table client.
func NewHTableClient(app *App) *HTableClient {
	return &HTableClient{app: app, rpc: NewRSRpcClient(app)}
}

// putRow writes one row to the hosting server.
//
// Throws: SocketTimeoutException, NotEnoughReplicasException.
func (t *HTableClient) putRow(ctx context.Context, region, row string) error {
	if err := fault.Hook(ctx); err != nil {
		return err
	}
	rs := t.app.RegionServer(region)
	return t.app.Cluster.Call(ctx, rs, func(n *common.Node) error {
		n.Store.Put("row/"+row, "v")
		return nil
	})
}

// PutRow writes a row with a small bounded retry and pause. The cap is
// correct; batch callers drive PutRow once per row over large batches and
// tolerate individual failures — the caller-level re-driving that turns
// into a missing-cap false positive for WASABI (§4.3).
func (t *HTableClient) PutRow(ctx context.Context, region, row string) error {
	maxRetries := 3
	var last error
	for retry := 0; retry < maxRetries; retry++ {
		err := t.putRow(ctx, region, row)
		if err == nil {
			return nil
		}
		last = err
		vclock.Sleep(ctx, 50*time.Millisecond)
	}
	return last
}

// ScannerCallable streams rows region by region.
type ScannerCallable struct {
	app     *App
	servers []string
}

// NewScannerCallable returns a scanner over all region servers.
func NewScannerCallable(app *App) *ScannerCallable {
	var names []string
	for _, n := range app.Cluster.Nodes() {
		names = append(names, n.Name)
	}
	return &ScannerCallable{app: app, servers: names}
}

// openScanner opens a scanner on the server at index idx.
//
// Throws: SocketTimeoutException, ConnectException.
func (s *ScannerCallable) openScanner(ctx context.Context, idx int) (string, error) {
	if err := fault.Hook(ctx); err != nil {
		return "", err
	}
	if idx >= len(s.servers) {
		return "", errmodel.New("IllegalStateException", "no more servers")
	}
	rs := s.servers[idx]
	if n := s.app.Cluster.Node(rs); n == nil || n.Down() {
		return "", errmodel.Newf("ConnectException", "server %s down", rs)
	}
	return "scanner-" + strconv.Itoa(idx), nil
}

// Open opens a scanner, moving to the next region server on failure.
// There is deliberately no pause between attempts: each retry talks to a
// different server, so waiting buys nothing (the missing-delay FP shape).
func (s *ScannerCallable) Open(ctx context.Context) (string, error) {
	var last error
	for retryCount := 0; retryCount < len(s.servers); retryCount++ {
		id, err := s.openScanner(ctx, retryCount)
		if err == nil {
			return id, nil
		}
		last = err
	}
	return "", last
}
