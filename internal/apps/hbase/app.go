// Package hbase is the corpus miniature of HBase (HB in the evaluation):
// a region-based store with ZooKeeper coordination, ProcedureV2-style
// state-machine operations, and region-server RPC. It is the largest
// corpus application, as in the paper (98 identified structures, the most
// of any app; Table 5), and carries the HBASE-20492 (missing delay in
// UnassignProcedure, §2.3) and HBASE-20616 (truncate-table state not
// cleaned up before retry, §2.4) bugs among others.
//
// Ground truth lives in manifest.go; detectors never read it.
package hbase

import (
	"context"

	"wasabi/internal/apps/common"
	"wasabi/internal/trace"
)

// App is a miniature HBase deployment: three region servers, a ZooKeeper
// ensemble modeled as a KV namespace, and master metadata.
type App struct {
	Config  *common.Config
	Cluster *common.Cluster
	ZK      *common.KV // ZooKeeper znodes
	Meta    *common.KV // master metadata: regions, tables, procedures
}

// New constructs a deployment with default configuration.
func New() *App {
	return &App{
		Config: common.NewConfig(map[string]string{
			"hbase.client.retries.number":        "5",
			"hbase.client.pause":                 "100ms",
			"hbase.zookeeper.recovery.retry":     "6",
			"hbase.assignment.maximum.attempts":  "7",
			"hbase.flush.retries.number":         "6",
			"hbase.bulkload.retries.number":      "4",
			"hbase.lease.recovery.retries":       "3",
			"hbase.regionserver.compaction.wait": "200ms",
		}),
		Cluster: common.NewCluster("rs1", "rs2", "rs3"),
		ZK:      common.NewKV(),
		Meta:    common.NewKV(),
	}
}

// AddRegion registers a region hosted on server rs.
func (a *App) AddRegion(region, rs string) {
	a.Meta.Put("region/"+region, rs)
	if n := a.Cluster.Node(rs); n != nil {
		n.Store.Put("region/"+region, "open")
	}
}

// RegionServer returns the server hosting region ("" if unknown).
func (a *App) RegionServer(region string) string {
	rs, _ := a.Meta.Get("region/" + region)
	return rs
}

// log emits an application log line into the run trace.
func (a *App) log(ctx context.Context, format string, args ...any) {
	trace.Note(ctx, "[hbase] "+format, args...)
}
