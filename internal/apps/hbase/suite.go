package hbase

import (
	"context"

	"wasabi/internal/apps/common"
	"wasabi/internal/errmodel"
	"wasabi/internal/testkit"
)

// Suite returns the HBase miniature's existing unit-test suite.
func Suite() testkit.Suite {
	s := testkit.Suite{App: "HB", Name: "HBase", Tests: []testkit.Test{
		{
			Name: "hbase.TestZKGetData", App: "HB",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				app.ZK.Put("conf/master", "m1")
				v, err := NewZKWatcher(app).GetData(ctx, "conf/master")
				if err != nil {
					return err
				}
				return testkit.Assertf(v == "m1", "value = %q", v)
			},
		},
		{
			Name: "hbase.TestZKGetDataRestricted", App: "HB",
			RetryLabeled: true,
			// Developers pinned recovery retries to 1 to keep this test
			// snappy; the preparation pass restores the default.
			Overrides: map[string]string{"hbase.zookeeper.recovery.retry": "1"},
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				app.ZK.Put("conf/flag", "on")
				v, err := NewZKWatcher(app).GetData(ctx, "conf/flag")
				if err != nil {
					return err
				}
				return testkit.Assertf(v == "on", "value = %q", v)
			},
		},
		{
			Name: "hbase.TestZKDeleteNode", App: "HB",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				app.ZK.Put("node/tmp", "v")
				z := NewZKWatcher(app)
				if err := z.DeleteNode(ctx, "node/tmp"); err != nil {
					return err
				}
				return testkit.Assertf(!app.ZK.Exists("node/tmp"), "znode survived deletion")
			},
		},
		{
			Name: "hbase.TestZKSyncBarrier", App: "HB",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				return NewZKWatcher(app).SyncEnsemble(ctx)
			},
		},
		{
			Name: "hbase.TestMetaCacheRelocate", App: "HB",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				app.AddRegion("r1", "rs2")
				rs, err := NewMetaCache(app).Relocate(ctx, "r1")
				if err != nil {
					return err
				}
				return testkit.Assertf(rs == "rs2", "located on %q", rs)
			},
		},
		{
			Name: "hbase.TestUnassignProcedure", App: "HB",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				app.AddRegion("r2", "rs1")
				exec := common.NewProcedureExecutor()
				if err := exec.Run(ctx, NewUnassignProc(app, "r2")); err != nil {
					return err
				}
				st, _ := app.Meta.Get("regionstate/r2")
				return testkit.Assertf(st == "CLOSED", "state = %q", st)
			},
		},
		{
			Name: "hbase.TestTruncateTable", App: "HB",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				app.Meta.Put("rows/t1/a", "1")
				exec := common.NewProcedureExecutor()
				if err := exec.Run(ctx, NewTruncateTableProc(app, "t1")); err != nil {
					return err
				}
				if err := testkit.Assertf(!app.Meta.Exists("rows/t1/a"), "rows not cleared"); err != nil {
					return err
				}
				return testkit.Assertf(len(app.Meta.ListPrefix("layout/t1/")) == 3, "layout incomplete")
			},
		},
		{
			Name: "hbase.TestRpcPutAndGet", App: "HB",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				app.AddRegion("r3", "rs1")
				c := NewRSRpcClient(app)
				if _, err := c.Call(ctx, "r3", "put", "k1"); err != nil {
					return err
				}
				v, err := c.Call(ctx, "r3", "get", "k1")
				if err != nil {
					return err
				}
				return testkit.Assertf(v == "v", "get = %q", v)
			},
		},
		{
			Name: "hbase.TestRpcUnassignedRegionFails", App: "HB",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				_, err := NewRSRpcClient(app).Call(ctx, "ghost", "get", "k")
				if err == nil {
					return testkit.Assertf(false, "expected IllegalStateException")
				}
				if errmodel.IsClass(err, "IllegalStateException") {
					return nil
				}
				return err
			},
		},
		{
			Name: "hbase.TestPutRowBatch", App: "HB",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				app.AddRegion("r4", "rs3")
				t := NewHTableClient(app)
				// The batch harness tolerates per-row failures; the
				// balancer redistributes and a later batch retries them.
				ok := 0
				for i := 0; i < 50; i++ {
					if err := t.PutRow(ctx, "r4", "row"+string(rune('a'+i%26))); err == nil {
						ok++
					}
				}
				return testkit.Assertf(ok > 0, "no row written")
			},
		},
		{
			Name: "hbase.TestScannerFailsOver", App: "HB",
			RetryLabeled: true,
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				app.Cluster.Node("rs1").SetDown(true)
				id, err := NewScannerCallable(app).Open(ctx)
				if err != nil {
					return err
				}
				return testkit.Assertf(id != "", "no scanner opened")
			},
		},
		{
			Name: "hbase.TestRegionFlush", App: "HB",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				app.AddRegion("r5", "rs2")
				if err := NewRegionFlusher(app).Flush(ctx, "r5"); err != nil {
					return err
				}
				v, _ := app.Cluster.Node("rs2").Store.Get("flush/r5")
				return testkit.Assertf(v == "done", "flush marker = %q", v)
			},
		},
		{
			Name: "hbase.TestFlushUnknownRegion", App: "HB",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				err := NewRegionFlusher(app).Flush(ctx, "ghost")
				if err == nil {
					return testkit.Assertf(false, "expected IllegalArgumentException")
				}
				if errmodel.IsClass(err, "IllegalArgumentException") {
					return nil
				}
				return err
			},
		},
		{
			Name: "hbase.TestCompactionRuns", App: "HB",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				app.AddRegion("r6", "rs1")
				n, err := NewCompactionRunner(app).Compact(ctx, "r6")
				if err != nil {
					return err
				}
				return testkit.Assertf(n == 2, "compacted %d files", n)
			},
		},
		{
			Name: "hbase.TestWALRoll", App: "HB",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				if err := NewWALRoller(app).Roll(ctx); err != nil {
					return err
				}
				v, _ := app.Meta.Get("wal/segment")
				return testkit.Assertf(v == "rolled", "segment = %q", v)
			},
		},
		{
			Name: "hbase.TestBulkLoadDrain", App: "HB",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				b := NewBulkLoader(app)
				b.Submit("cf1")
				b.Submit("cf2")
				if err := b.Drain(ctx); err != nil {
					return err
				}
				return testkit.Assertf(b.Loaded == 2, "loaded = %d", b.Loaded)
			},
		},
		{
			Name: "hbase.TestLeaseRecovery", App: "HB",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				if err := NewLeaseRecovery(app).Recover(ctx, "wal-7"); err != nil {
					return err
				}
				v, _ := app.Meta.Get("lease/wal-7")
				return testkit.Assertf(v == "recovered", "lease = %q", v)
			},
		},
		{
			Name: "hbase.TestCanaryCountsHealthy", App: "HB",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				app.AddRegion("r7", "rs1")
				app.AddRegion("r8", "rs2")
				app.Cluster.Node("rs2").SetDown(true)
				c := NewCanaryTool(app)
				c.ProbeAll(ctx)
				return testkit.Assertf(c.Healthy == 1, "healthy = %d", c.Healthy)
			},
		},
		{
			Name: "hbase.TestBalancerChoreRounds", App: "HB",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				ch := NewBalancerChore(app)
				ch.RunRounds(ctx, 3)
				return testkit.Assertf(ch.Rounds == 3, "rounds = %d", ch.Rounds)
			},
		},
		{
			Name: "hbase.TestWaitForRegionServers", App: "HB",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				return testkit.Assertf(WaitForRegionServers(ctx, app, 3, 2), "servers never up")
			},
		},
		{
			Name: "hbase.TestTableDescriptorCheck", App: "HB",
			Body: func(ctx context.Context, o map[string]string) error {
				if err := testkit.Assertf(TableDescriptorCheck("cf:604800") == nil, "valid schema rejected"); err != nil {
					return err
				}
				return testkit.Assertf(TableDescriptorCheck("cf") != nil, "malformed schema accepted")
			},
		},
		{
			Name: "hbase.TestLogCleanerRound", App: "HB",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				app.Meta.Put("oldwal/1", "free")
				app.Meta.Put("oldwal/2", "pinned")
				l := NewLogCleaner(app)
				l.CleanRound(ctx)
				if err := testkit.Assertf(l.Deleted == 1, "deleted = %d", l.Deleted); err != nil {
					return err
				}
				return testkit.Assertf(l.Skipped == 1, "skipped = %d", l.Skipped)
			},
		},
	}}
	s.Tests = append(s.Tests, workloadTests()...)
	return s
}
