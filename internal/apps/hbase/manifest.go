package hbase

import "wasabi/internal/apps/meta"

// Manifest is the ground-truth record of every retry code structure in
// this package; detectors never read it.
func Manifest() []meta.Structure {
	return []meta.Structure{
		{
			App: "HB", Coordinator: "hbase.ZKWatcher.GetData",
			Retried: []string{"hbase.ZKWatcher.zkGet"},
			File:    "zk.go", Mechanism: meta.Loop, Trigger: meta.Exception,
			Keyworded: true,
			Note:      "correct: cap + pause, retries KeeperException",
		},
		{
			App: "HB", Coordinator: "hbase.ZKWatcher.SetData",
			Retried: []string{"hbase.ZKWatcher.zkSet"},
			File:    "zk.go", Mechanism: meta.Loop, Trigger: meta.Exception,
			Keyworded: true,
			Note:      "correct: cap + backoff, retries KeeperException",
		},
		{
			App: "HB", Coordinator: "hbase.ZKWatcher.CreateNode",
			Retried: []string{"hbase.ZKWatcher.zkCreate"},
			File:    "zk.go", Mechanism: meta.Loop, Trigger: meta.Exception,
			Keyworded: true,
			Note:      "correct: idempotent create with cap + pause",
		},
		{
			App: "HB", Coordinator: "hbase.ZKWatcher.DeleteNode",
			Retried: []string{"hbase.ZKWatcher.zkDelete"},
			File:    "zk.go", Mechanism: meta.Loop, Trigger: meta.Exception,
			Keyworded: true, Bug: meta.MissingDelay,
			Note: "WHEN: deletions re-attempted back to back; in a file too large for the LLM, so found by unit testing only (Figure 3)",
		},
		{
			App: "HB", Coordinator: "hbase.ZKWatcher.SyncEnsemble",
			Retried: []string{"hbase.ZKWatcher.zkSync"},
			File:    "zk.go", Mechanism: meta.Loop, Trigger: meta.Exception,
			Keyworded: true, Bug: meta.MissingCap,
			Note: "WHEN: unbounded sync-barrier retry; in a file too large for the LLM, so found by unit testing only (Figure 3)",
		},
		{
			App: "HB", Coordinator: "hbase.MetaCache.Relocate",
			Retried: []string{"hbase.MetaCache.locateOnce"},
			File:    "zk.go", Mechanism: meta.Loop, Trigger: meta.Exception,
			Keyworded: true,
			Note:      "correct: cap + backoff",
		},
		{
			App: "HB", Coordinator: "hbase.SplitLogManager.AcquireTask",
			Retried: []string{"hbase.SplitLogManager.claimTask"},
			File:    "zk.go", Mechanism: meta.Loop, Trigger: meta.Exception,
			Keyworded: true,
			Note:      "correct: cap + pause",
		},
		{
			App: "HB", Coordinator: "hbase.ProcedureStore.Recover",
			Retried: []string{"hbase.ProcedureStore.loadEntries"},
			File:    "zk.go", Mechanism: meta.Loop, Trigger: meta.Exception,
			Keyworded: true, Bug: meta.WrongPolicyNotRetried,
			Note: "IF: KeeperException aborted here although retried in 6/7 sibling loops (HBASE-25743 shape); retry-ratio outlier",
		},
		{
			App: "HB", Coordinator: "hbase.UnassignProc.Step",
			Retried: []string{"hbase.UnassignProc.markRegionAsClosing"},
			File:    "procedures.go", Mechanism: meta.StateMachine, Trigger: meta.Exception,
			Keyworded: true, Bug: meta.MissingDelay,
			Note: "WHEN: implicit state retry with no pause (HBASE-20492, Listing 4)",
		},
		{
			App: "HB", Coordinator: "hbase.TruncateTableProc.Step",
			Retried: []string{"hbase.TruncateTableProc.writeLayoutFile"},
			File:    "procedures.go", Mechanism: meta.StateMachine, Trigger: meta.Exception,
			Keyworded: true, Bug: meta.How,
			Note: "HOW: partial layout files not cleaned before state retry; rewrite crashes with FileAlreadyExistsException (HBASE-20616)",
		},
		{
			App: "HB", Coordinator: "hbase.AssignProc.Step",
			Retried: []string{"hbase.AssignProc.openRegion"},
			File:    "procedures.go", Mechanism: meta.StateMachine, Trigger: meta.Exception,
			Keyworded: true,
			Note:      "correct state-machine retry: backoff + cap",
		},
		{
			App: "HB", Coordinator: "hbase.RSRpcClient.Call",
			Retried: []string{"hbase.RSRpcClient.rpcOnce"},
			File:    "rpc.go", Mechanism: meta.Loop, Trigger: meta.Exception,
			Keyworded: true,
			Note:      "correct: cap + cross-file backoff helper (LLM single-file missing-delay FP source, §4.3); IllegalStateException excluded",
		},
		{
			App: "HB", Coordinator: "hbase.HTableClient.PutRow",
			Retried: []string{"hbase.HTableClient.putRow"},
			File:    "rpc.go", Mechanism: meta.Loop, Trigger: meta.Exception,
			Keyworded: true, HarnessRetried: true,
			Note: "correct cap; batch callers re-drive per row (missing-cap FP source, §4.3)",
		},
		{
			App: "HB", Coordinator: "hbase.ScannerCallable.Open",
			Retried: []string{"hbase.ScannerCallable.openScanner"},
			File:    "rpc.go", Mechanism: meta.Loop, Trigger: meta.Exception,
			Keyworded: true, DelayUnneeded: true,
			Note: "no pause, but each attempt targets a different server (missing-delay FP source)",
		},
		{
			App: "HB", Coordinator: "hbase.RegionFlusher.Flush",
			Retried: []string{"hbase.RegionFlusher.flushOnce"},
			File:    "regionserver.go", Mechanism: meta.Loop, Trigger: meta.Exception,
			Keyworded: true, Bug: meta.MissingDelay,
			Note: "WHEN: flush attempts back to back against struggling storage",
		},
		{
			App: "HB", Coordinator: "hbase.CompactionRunner.Compact",
			Retried: []string{"hbase.CompactionRunner.selectFiles"},
			File:    "regionserver.go", Mechanism: meta.Loop, Trigger: meta.Exception,
			Keyworded: true, Bug: meta.MissingCap,
			Note: "WHEN: unbounded selection retry (pause present)",
		},
		{
			App: "HB", Coordinator: "hbase.WALRoller.Roll",
			Retried: []string{"hbase.WALRoller.rollOnce"},
			File:    "regionserver.go", Mechanism: meta.Loop, Trigger: meta.Exception,
			Keyworded: true, Bug: meta.MissingCap,
			Note: "WHEN: unbounded log-roll retry wedges the region server",
		},
		{
			App: "HB", Coordinator: "hbase.MobCompactor.Sweep",
			Retried: []string{"hbase.MobCompactor.sweepOnce"},
			File:    "regionserver.go", Mechanism: meta.Loop, Trigger: meta.Exception,
			Keyworded: false, Bug: meta.MissingCap,
			Note: "WHEN: unbounded sweep retry; counter named 'tries' (CodeQL keyword miss)",
		},
		{
			App: "HB", Coordinator: "hbase.ReplicationPeer.Sync",
			Retried: []string{"hbase.ReplicationPeer.shipBatch"},
			File:    "replication.go", Mechanism: meta.Loop, Trigger: meta.Exception,
			Keyworded: true,
			Note:      "correct: cap + pause",
		},
		{
			App: "HB", Coordinator: "hbase.BulkLoader.processLoad",
			Retried: []string{"hbase.BulkLoader.loadOnce"},
			File:    "replication.go", Mechanism: meta.Queue, Trigger: meta.Exception,
			Keyworded: true,
			Note:      "correct queue re-enqueue retry: per-task cap and pause",
		},
		{
			App: "HB", Coordinator: "hbase.LeaseRecovery.Recover",
			Retried: []string{"hbase.LeaseRecovery.recoverOnce"},
			File:    "replication.go", Mechanism: meta.Loop, Trigger: meta.Exception,
			Keyworded: true, WrapsErrors: true,
			Note: "correct; wraps exhausted failures in ServiceException (different-exception oracle FP source)",
		},
		{
			App: "HB", Coordinator: "hbase.BackupMaster.SyncOnce",
			Retried: []string{"hbase.BackupMaster.pullState"},
			File:    "replication.go", Mechanism: meta.Loop, Trigger: meta.Exception,
			Keyworded: true, Bug: meta.MissingCap,
			Note: "WHEN: unbounded standby-sync retry; uncovered by the suite (static-only find)",
		},
	}
}
