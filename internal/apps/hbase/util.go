package hbase

import (
	"context"
	"time"

	"wasabi/internal/vclock"
)

// pauseBetweenAttempts performs the standard client backoff between RPC
// retry attempts. It lives in this file, away from its callers — a layout
// that is irrelevant to the dynamic delay oracle (the sleep still shows up
// on the coordinator's stack) but defeats a single-file reader, which is
// exactly the paper's missing-delay false-positive mode for GPT-4 (§4.3).
func pauseBetweenAttempts(ctx context.Context, attempt int) {
	vclock.Sleep(ctx, vclock.Backoff(100*time.Millisecond, attempt, 5*time.Second))
}

// regionKey renders the metadata key for a region.
func regionKey(region string) string { return "region/" + region }
