package hbase

import (
	"context"

	"wasabi/internal/apps/common"
	"wasabi/internal/testkit"
)

// workloadTests are end-to-end scenario tests; each covers several retry
// locations the focused tests also reach, creating the cross-test
// redundancy that test planning deduplicates (§3.1.4).
func workloadTests() []testkit.Test {
	return []testkit.Test{
		{
			Name: "hbase.TestTableLifecycleFlow", App: "HB",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				exec := common.NewProcedureExecutor()
				app.AddRegion("lf1", "rs1")
				if err := exec.Run(ctx, NewUnassignProc(app, "lf1")); err != nil {
					return err
				}
				if err := exec.Run(ctx, NewTruncateTableProc(app, "tlf")); err != nil {
					return err
				}
				z := NewZKWatcher(app)
				if err := z.SetData(ctx, "table/tlf/state", "ENABLED"); err != nil {
					return err
				}
				v, err := z.GetData(ctx, "table/tlf/state")
				if err != nil {
					return err
				}
				return testkit.Assertf(v == "ENABLED", "state = %q", v)
			},
		},
		{
			Name: "hbase.TestClientReadWriteFlow", App: "HB",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				app.AddRegion("rw1", "rs2")
				if _, err := NewMetaCache(app).Relocate(ctx, "rw1"); err != nil {
					return err
				}
				c := NewRSRpcClient(app)
				if _, err := c.Call(ctx, "rw1", "put", "k9"); err != nil {
					return err
				}
				t := NewHTableClient(app)
				for i := 0; i < 10; i++ {
					if err := t.PutRow(ctx, "rw1", "wrow"+string(rune('a'+i))); err != nil {
						return err
					}
				}
				_, err := NewScannerCallable(app).Open(ctx)
				return err
			},
		},
		{
			Name: "hbase.TestRegionServerHousekeepingFlow", App: "HB",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				app.AddRegion("hk1", "rs1")
				if err := NewRegionFlusher(app).Flush(ctx, "hk1"); err != nil {
					return err
				}
				if _, err := NewCompactionRunner(app).Compact(ctx, "hk1"); err != nil {
					return err
				}
				if err := NewWALRoller(app).Roll(ctx); err != nil {
					return err
				}
				return NewLeaseRecovery(app).Recover(ctx, "wal-hk")
			},
		},
		{
			Name: "hbase.TestCoordinationFlow", App: "HB",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				z := NewZKWatcher(app)
				if err := z.CreateNode(ctx, "flow/lock", "held"); err != nil {
					return err
				}
				if err := z.SyncEnsemble(ctx); err != nil {
					return err
				}
				if err := z.DeleteNode(ctx, "flow/lock"); err != nil {
					return err
				}
				b := NewBulkLoader(app)
				b.Submit("cf-flow")
				return b.Drain(ctx)
			},
		},
	}
}
