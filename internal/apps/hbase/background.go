package hbase

import (
	"context"
	"strings"
	"time"

	"wasabi/internal/vclock"
)

// Non-retry HBase services: pollers, per-item iteration with error
// tolerance, and periodic chores. These loops are structural look-alikes
// of retry (error check that falls through to the next iteration) and
// exist to exercise the keyword filter's pruning (§4.4) and the LLM's
// poll/spin exclusion prompt Q4.

// CanaryTool probes region availability and reports latency.
type CanaryTool struct {
	app *App
	// Healthy counts regions that answered the probe.
	Healthy int
}

// NewCanaryTool returns a canary for the deployment.
func NewCanaryTool(app *App) *CanaryTool { return &CanaryTool{app: app} }

// ProbeAll probes every known region once, logging and skipping regions
// whose server is down. Items are never re-executed.
func (c *CanaryTool) ProbeAll(ctx context.Context) {
	for _, key := range c.app.Meta.ListPrefix("region/") {
		rs, ok := c.app.Meta.Get(key)
		if !ok {
			continue
		}
		n := c.app.Cluster.Node(rs)
		if n == nil || n.Down() {
			c.app.log(ctx, "canary: %s unreachable on %s", key, rs)
			continue
		}
		c.Healthy++
	}
}

// BalancerChore periodically evens region counts across servers.
type BalancerChore struct {
	app *App
	// Rounds counts completed chore rounds.
	Rounds int
}

// NewBalancerChore returns a chore runner.
func NewBalancerChore(app *App) *BalancerChore { return &BalancerChore{app: app} }

// RunRounds runs n chore rounds on the chore schedule. A round that finds
// nothing to move simply waits for the next round — periodic work, not
// retry.
func (b *BalancerChore) RunRounds(ctx context.Context, n int) {
	for i := 0; i < n; i++ {
		moved := 0
		for _, node := range b.app.Cluster.Nodes() {
			if len(node.Store.ListPrefix("region/")) > 2 {
				moved++
			}
		}
		_ = moved
		b.Rounds++
		vclock.Sleep(ctx, 5*time.Second)
	}
}

// WaitForRegionServers polls until the expected number of region servers
// have checked in or the poll budget runs out. Status polling, not retry.
func WaitForRegionServers(ctx context.Context, app *App, want, polls int) bool {
	for i := 0; i < polls; i++ {
		up := 0
		for _, n := range app.Cluster.Nodes() {
			if !n.Down() {
				up++
			}
		}
		if up >= want {
			return true
		}
		vclock.Sleep(ctx, 100*time.Millisecond)
	}
	return false
}

// TableDescriptorCheck validates a table schema string of the form
// "family:ttl,family:ttl". Pure parsing; its loop reports the first error.
func TableDescriptorCheck(desc string) error {
	if desc == "" {
		return &schemaError{desc: desc, why: "empty descriptor"}
	}
	for _, fam := range strings.Split(desc, ",") {
		parts := strings.Split(fam, ":")
		if len(parts) != 2 {
			return &schemaError{desc: desc, why: "malformed family " + fam}
		}
		if parts[0] == "" {
			return &schemaError{desc: desc, why: "empty family name"}
		}
	}
	return nil
}

type schemaError struct{ desc, why string }

func (e *schemaError) Error() string { return "bad schema " + e.desc + ": " + e.why }

// LogCleaner deletes expired WAL segments, tolerating per-file errors:
// a file that cannot be deleted now is logged and revisited on the NEXT
// chore run, not re-executed in this one.
type LogCleaner struct {
	app *App
	// Deleted counts removed segments.
	Deleted int
	// Skipped counts segments left for the next run.
	Skipped int
}

// NewLogCleaner returns a cleaner.
func NewLogCleaner(app *App) *LogCleaner { return &LogCleaner{app: app} }

// CleanRound runs one cleaning pass over the archived segments.
func (l *LogCleaner) CleanRound(ctx context.Context) {
	for _, key := range l.app.Meta.ListPrefix("oldwal/") {
		if v, _ := l.app.Meta.Get(key); v == "pinned" {
			l.app.log(ctx, "cleaner: %s still referenced", key)
			l.Skipped++
			continue
		}
		l.app.Meta.Delete(key)
		l.Deleted++
	}
}
