package hbase

import (
	"context"
	"time"

	"wasabi/internal/apps/common"
	"wasabi/internal/errmodel"
	"wasabi/internal/fault"
	"wasabi/internal/vclock"
)

// ReplicationPeer ships WAL edits to a peer cluster, tracking progress in
// ZooKeeper.
type ReplicationPeer struct {
	app *App
}

// NewReplicationPeer returns a peer shipper.
func NewReplicationPeer(app *App) *ReplicationPeer { return &ReplicationPeer{app: app} }

// shipBatch sends one batch of edits and records the new position.
//
// Throws: KeeperException, SocketTimeoutException.
func (r *ReplicationPeer) shipBatch(ctx context.Context, batch string) error {
	if err := fault.Hook(ctx); err != nil {
		return err
	}
	vclock.Elapse(ctx, 2*time.Millisecond)
	r.app.ZK.Put("replication/position", batch)
	return nil
}

// Sync ships a batch, retrying transient coordination errors with a pause
// up to the configured cap.
func (r *ReplicationPeer) Sync(ctx context.Context, batch string) error {
	maxRetries := r.app.Config.GetInt("hbase.client.retries.number", 5)
	pause := r.app.Config.GetDuration("hbase.client.pause", 100*time.Millisecond)
	var last error
	for retry := 0; retry < maxRetries; retry++ {
		err := r.shipBatch(ctx, batch)
		if err == nil {
			return nil
		}
		last = err
		vclock.Sleep(ctx, pause)
	}
	return last
}

// loadTask is a queued bulk-load request with its own attempt budget.
type loadTask struct {
	family   string
	attempts int
}

// BulkLoader moves prepared store files into regions via a work queue;
// failed loads are re-submitted — queue-based retry, correct here.
type BulkLoader struct {
	app   *App
	queue *common.Queue[*loadTask]
	// Loaded counts completed loads.
	Loaded int
}

// NewBulkLoader returns a loader with an empty queue.
func NewBulkLoader(app *App) *BulkLoader {
	return &BulkLoader{app: app, queue: common.NewQueue[*loadTask]()}
}

// Submit enqueues a bulk load for a column family.
func (b *BulkLoader) Submit(family string) {
	b.queue.Put(&loadTask{family: family})
}

// loadOnce atomically moves one family's files into place.
//
// Throws: IOException.
func (b *BulkLoader) loadOnce(ctx context.Context, family string) error {
	if err := fault.Hook(ctx); err != nil {
		return err
	}
	b.app.Meta.Put("bulkload/"+family, "done")
	return nil
}

// processLoad handles one queued load: a transient failure re-submits the
// task for retry after a pause, bounded by the configured retry budget.
func (b *BulkLoader) processLoad(ctx context.Context, task *loadTask) error {
	maxRetries := b.app.Config.GetInt("hbase.bulkload.retries.number", 4)
	if err := b.loadOnce(ctx, task.family); err != nil {
		if task.attempts < maxRetries {
			task.attempts++
			vclock.Sleep(ctx, 100*time.Millisecond)
			b.queue.Put(task) // re-submit for retry
			return nil
		}
		return err
	}
	b.Loaded++
	return nil
}

// Drain processes queued loads until empty.
func (b *BulkLoader) Drain(ctx context.Context) error {
	for {
		task, ok := b.queue.Take()
		if !ok {
			return nil
		}
		if err := b.processLoad(ctx, task); err != nil {
			return err
		}
	}
}

// LeaseRecovery recovers write leases on WAL files after a crash.
type LeaseRecovery struct {
	app *App
}

// NewLeaseRecovery returns a recoverer.
func NewLeaseRecovery(app *App) *LeaseRecovery { return &LeaseRecovery{app: app} }

// recoverOnce attempts one lease recovery round.
//
// Throws: IOException.
func (l *LeaseRecovery) recoverOnce(ctx context.Context, wal string) error {
	if err := fault.Hook(ctx); err != nil {
		return err
	}
	l.app.Meta.Put("lease/"+wal, "recovered")
	return nil
}

// Recover recovers a WAL lease with bounded, delayed retry. Exhausted
// retries wrap the last failure in the module's ServiceException before
// rethrowing — the wrapping that turns into a "different exception"
// oracle false positive (§4.3).
func (l *LeaseRecovery) Recover(ctx context.Context, wal string) error {
	maxRetries := l.app.Config.GetInt("hbase.lease.recovery.retries", 3)
	var last error
	for retry := 0; retry < maxRetries; retry++ {
		err := l.recoverOnce(ctx, wal)
		if err == nil {
			return nil
		}
		last = err
		vclock.Sleep(ctx, 200*time.Millisecond)
	}
	return errmodel.Wrap("ServiceException", "lease recovery failed for "+wal, last)
}

// BackupMaster keeps a warm standby master in sync with the active one.
type BackupMaster struct {
	app *App
	// Synced counts successful sync rounds.
	Synced int
}

// NewBackupMaster returns a standby syncer.
func NewBackupMaster(app *App) *BackupMaster { return &BackupMaster{app: app} }

// pullState copies the active master's state snapshot.
//
// Throws: SocketTimeoutException.
func (b *BackupMaster) pullState(ctx context.Context) error {
	if err := fault.Hook(ctx); err != nil {
		return err
	}
	vclock.Elapse(ctx, 2*time.Millisecond)
	return nil
}

// SyncOnce brings the standby up to date, retrying until the pull
// succeeds.
//
// BUG (WHEN, missing cap): the standby must not fall behind, so pulls are
// retried forever with a pause — no attempt bound, no time bound.
func (b *BackupMaster) SyncOnce(ctx context.Context) {
	retryInterval := 250 * time.Millisecond
	for {
		err := b.pullState(ctx)
		if err == nil {
			b.Synced++
			return
		}
		b.app.log(ctx, "standby sync failed: %v", err)
		vclock.Sleep(ctx, retryInterval)
	}
}
