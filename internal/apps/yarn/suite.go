package yarn

import (
	"context"

	"wasabi/internal/apps/common"
	"wasabi/internal/errmodel"
	"wasabi/internal/testkit"
)

// Suite returns the YARN miniature's existing unit-test suite. The AM
// launcher, state store, localizer and tracker registration are NOT
// exercised anywhere — the coverage hole that makes YA's dynamic row the
// thinnest in Table 3.
func Suite() testkit.Suite {
	s := testkit.Suite{App: "YA", Name: "Yarn", Tests: []testkit.Test{
		{
			Name: "yarn.TestTransitionProcedure", App: "YA",
			RetryLabeled: true,
			Overrides:    map[string]string{"yarn.rm.transition.max.attempts": "2"},
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				exec := common.NewProcedureExecutor()
				if err := exec.Run(ctx, NewTransitionProc(app, "app-1")); err != nil {
					return err
				}
				v, _ := app.State.Get("appstate/app-1")
				return testkit.Assertf(v == "RUNNING", "state = %q", v)
			},
		},
		{
			Name: "yarn.TestNodeHealthScript", App: "YA",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				if err := NewNodeHealthScript(app).Run(ctx); err != nil {
					return err
				}
				v, _ := app.State.Get("health/last")
				return testkit.Assertf(v == "ok", "health = %q", v)
			},
		},
		{
			Name: "yarn.TestHeartbeatRounds", App: "YA",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				h := NewNodeHeartbeatHandler(app)
				// The heartbeat scheduler drives every node each
				// interval and tolerates individual failures.
				delivered := 0
				for round := 0; round < 20; round++ {
					for _, node := range []string{"nm1", "nm2"} {
						if err := h.Handle(ctx, node); err == nil {
							delivered++
						}
					}
				}
				return testkit.Assertf(delivered > 0, "no heartbeat delivered")
			},
		},
		{
			Name: "yarn.TestContainerCleanup", App: "YA",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				c := NewContainerCleanup(app)
				c.Submit("c-1")
				c.Submit("c-2")
				if err := c.Drain(ctx); err != nil {
					return err
				}
				return testkit.Assertf(c.Cleaned == 2, "cleaned = %d", c.Cleaned)
			},
		},
		{
			Name: "yarn.TestSchedulerDispatch", App: "YA",
			RetryLabeled: true,
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				d := NewSchedulerEventDispatcher(app)
				calls := map[string]int{}
				d.SetStatusSource(func(kind string) string {
					calls[kind]++
					if kind == "NODE_ADDED" && calls[kind] == 1 {
						return "REJECTED_TRANSIENT"
					}
					if kind == "BOGUS" {
						return "REJECTED_INVALID"
					}
					return "OK"
				})
				d.Enqueue("NODE_ADDED")
				d.Enqueue("BOGUS")
				d.Drain(ctx)
				if err := testkit.Assertf(d.Handled == 1, "handled = %d", d.Handled); err != nil {
					return err
				}
				return testkit.Assertf(len(d.Dropped) == 1, "dropped = %v", d.Dropped)
			},
		},
		{
			Name: "yarn.TestRegisterRejectsEmptyNode", App: "YA",
			// Exercises only the validation path of registerOnce via a
			// direct call; the Register retry loop itself stays uncovered.
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				err := NewResourceTrackerClient(app).registerOnce(ctx, "")
				if err == nil {
					return testkit.Assertf(false, "expected IllegalArgumentException")
				}
				if errmodel.IsClass(err, "IllegalArgumentException") {
					return nil
				}
				return err
			},
		},
		{
			Name: "yarn.TestConfigDefaults", App: "YA",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				got := app.Config.GetInt("yarn.am.launch.retries", 0)
				return testkit.Assertf(got >= 1, "am launch retries = %d", got)
			},
		},
	}}
	s.Tests = append(s.Tests, workloadTests()...)
	return s
}
