package yarn

import (
	"context"
	"testing"

	"wasabi/internal/apps/common"
	"wasabi/internal/fault"
	"wasabi/internal/trace"
)

func injected(coordinator, retried, exc string, k int) (context.Context, *trace.Run) {
	in := fault.NewInjector([]fault.Rule{{
		Loc: fault.Location{Coordinator: coordinator, Retried: retried, Exception: exc},
		K:   k,
	}})
	run := trace.NewRun("t")
	return fault.With(trace.With(context.Background(), run), in), run
}

// TestTransitionBudgetHalved is the regression test for YARN-8362: with a
// configured maximum of 8, the double-incremented counter gives up after
// only 4 actual attempts.
func TestTransitionBudgetHalved(t *testing.T) {
	app := New()
	ctx, run := injected("yarn.TransitionProc.Step", "yarn.TransitionProc.commitTransition", "ServiceException", 100)
	exec := common.NewProcedureExecutor()
	p := NewTransitionProc(app, "app-x")
	if err := exec.Run(ctx, p); err == nil {
		t.Fatal("expected the transition to give up")
	}
	injections := 0
	for _, e := range run.Events() {
		if e.Kind == trace.KindInjection {
			injections++
		}
	}
	if injections != 4 {
		t.Errorf("actual attempts = %d; the double-increment should halve the budget of 8", injections)
	}
}

// TestAMLauncherSpinsUntilFaultHeals demonstrates the no-cap-no-delay bug.
func TestAMLauncherSpinsUntilFaultHeals(t *testing.T) {
	app := New()
	ctx, run := injected("yarn.AMLauncher.LaunchAM", "yarn.AMLauncher.startAM", "ConnectException", 120)
	NewAMLauncher(app).LaunchAM(ctx, "app-y")
	injections, sleeps := 0, 0
	for _, e := range run.Events() {
		switch e.Kind {
		case trace.KindInjection:
			injections++
		case trace.KindSleep:
			sleeps++
		}
	}
	if injections != 120 {
		t.Errorf("injections = %d; only fault healing stops this loop", injections)
	}
	if sleeps != 0 {
		t.Errorf("sleeps = %d; the loop also has no delay", sleeps)
	}
}

// TestStateStoreRetriesWithDelay shows StoreApp has a delay but no cap.
func TestStateStoreRetriesWithDelay(t *testing.T) {
	app := New()
	ctx, run := injected("yarn.RMStateStore.StoreApp", "yarn.RMStateStore.writeEntry", "IOException", 10)
	NewRMStateStore(app).StoreApp(ctx, "app-z")
	injections, sleeps := 0, 0
	for _, e := range run.Events() {
		switch e.Kind {
		case trace.KindInjection:
			injections++
		case trace.KindSleep:
			sleeps++
		}
	}
	if injections != 10 || sleeps != 10 {
		t.Errorf("injections = %d sleeps = %d", injections, sleeps)
	}
}

// TestLocalizerNoDelay shows FetchResource's back-to-back attempts.
func TestLocalizerNoDelay(t *testing.T) {
	app := New()
	ctx, run := injected("yarn.LocalizerRunner.FetchResource", "yarn.LocalizerRunner.download", "ConnectException", 2)
	if err := NewLocalizerRunner(app).FetchResource(ctx, "job.jar"); err != nil {
		t.Fatalf("should heal: %v", err)
	}
	for _, e := range run.Events() {
		if e.Kind == trace.KindSleep {
			t.Error("no sleep expected between attempts")
		}
	}
}
