package yarn

import (
	"context"

	"wasabi/internal/apps/common"
	"wasabi/internal/testkit"
)

// workloadTests are end-to-end scenario tests; each covers several retry
// locations the focused tests also reach (§3.1.4 planning redundancy).
func workloadTests() []testkit.Test {
	return []testkit.Test{
		{
			Name: "yarn.TestAppLifecycleFlow", App: "YA",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				exec := common.NewProcedureExecutor()
				if err := exec.Run(ctx, NewTransitionProc(app, "flow-app")); err != nil {
					return err
				}
				h := NewNodeHeartbeatHandler(app)
				for round := 0; round < 3; round++ {
					if err := h.Handle(ctx, "nm1"); err != nil {
						return err
					}
				}
				c := NewContainerCleanup(app)
				c.Submit("flow-c1")
				return c.Drain(ctx)
			},
		},
		{
			Name: "yarn.TestNodeHealthFlow", App: "YA",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				if err := NewNodeHealthScript(app).Run(ctx); err != nil {
					return err
				}
				h := NewNodeHeartbeatHandler(app)
				if err := h.Handle(ctx, "nm2"); err != nil {
					return err
				}
				v, _ := app.State.Get("heartbeat/nm2")
				return testkit.Assertf(v == "seen", "heartbeat = %q", v)
			},
		},
	}
}
