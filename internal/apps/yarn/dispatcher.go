package yarn

import (
	"context"
	"time"

	"wasabi/internal/apps/common"
	"wasabi/internal/vclock"
)

// SchedulerEventDispatcher routes scheduler events; outcomes are status
// codes, and REJECTED_TRANSIENT events are re-queued — error-code retry,
// uninjectable by WASABI (§4.2).
type SchedulerEventDispatcher struct {
	app     *App
	queue   *common.Queue[*schedEvent]
	statusF func(kind string) string
	// Handled counts dispatched events; Dropped lists abandoned ones.
	Handled int
	Dropped []string
}

type schedEvent struct {
	kind     string
	requeues int
}

// Scheduler event status codes.
const (
	schedOK        = "OK"
	schedTransient = "REJECTED_TRANSIENT"
	schedInvalid   = "REJECTED_INVALID"
)

// NewSchedulerEventDispatcher returns a dispatcher whose status source
// always accepts; tests replace statusF.
func NewSchedulerEventDispatcher(app *App) *SchedulerEventDispatcher {
	return &SchedulerEventDispatcher{
		app:     app,
		queue:   common.NewQueue[*schedEvent](),
		statusF: func(string) string { return schedOK },
	}
}

// SetStatusSource replaces the scheduler status source.
func (d *SchedulerEventDispatcher) SetStatusSource(f func(string) string) { d.statusF = f }

// Enqueue adds an event.
func (d *SchedulerEventDispatcher) Enqueue(kind string) {
	d.queue.Put(&schedEvent{kind: kind})
}

// Drain dispatches queued events: transient rejections re-queue the event
// up to a small retry budget, invalid events are dropped.
func (d *SchedulerEventDispatcher) Drain(ctx context.Context) {
	const maxRetry = 2
	for {
		ev, ok := d.queue.Take()
		if !ok {
			return
		}
		switch status := d.statusF(ev.kind); status {
		case schedOK:
			d.Handled++
		case schedTransient:
			if ev.requeues < maxRetry {
				ev.requeues++
				vclock.Sleep(ctx, 50*time.Millisecond)
				d.queue.Put(ev)
				continue
			}
			d.Dropped = append(d.Dropped, ev.kind)
		case schedInvalid:
			d.Dropped = append(d.Dropped, ev.kind)
		}
	}
}
