package yarn

import (
	"context"
	"strconv"
	"strings"
)

// Housekeeping chores of the YARN miniature: per-item iteration with
// error tolerance — structural retry look-alikes the retry-naming filter
// prunes (§4.4).

type choreError struct{ what string }

func (e *choreError) Error() string { return e.what }

// AppLogRoller rolls aggregated application logs.
type AppLogRoller struct {
	app *App
	// Rolled and Skipped count pass outcomes.
	Rolled, Skipped int
}

// NewAppLogRoller returns a roller.
func NewAppLogRoller(app *App) *AppLogRoller { return &AppLogRoller{app: app} }

// roll rotates one application's log bundle.
func (a *AppLogRoller) roll(key string) error {
	v, _ := a.app.State.Get(key)
	size, err := strconv.Atoi(v)
	if err != nil {
		return &choreError{what: "unreadable log size for " + key}
	}
	if size < 1024 {
		return &choreError{what: key + " below roll threshold"}
	}
	a.app.State.Put(key, "0")
	return nil
}

// RollOnce walks every aggregated log once.
func (a *AppLogRoller) RollOnce(ctx context.Context) {
	for _, key := range a.app.State.ListPrefix("applog/") {
		if err := a.roll(key); err != nil {
			a.app.log(ctx, "log roll skipped: %v", err)
			a.Skipped++
			continue
		}
		a.Rolled++
	}
}

// NodeLabelSyncer pushes label assignments to node managers.
type NodeLabelSyncer struct {
	app *App
	// Synced counts delivered labels; Failed counts skipped nodes.
	Synced, Failed int
}

// NewNodeLabelSyncer returns a syncer.
func NewNodeLabelSyncer(app *App) *NodeLabelSyncer { return &NodeLabelSyncer{app: app} }

// push delivers one node's labels.
func (s *NodeLabelSyncer) push(name, label string) error {
	n := s.app.Cluster.Node(name)
	if n == nil || n.Down() {
		return &choreError{what: "node " + name + " unreachable"}
	}
	n.Store.Put("label", label)
	return nil
}

// SyncOnce walks every label assignment once.
func (s *NodeLabelSyncer) SyncOnce(ctx context.Context) {
	for _, key := range s.app.State.ListPrefix("label/") {
		name := strings.TrimPrefix(key, "label/")
		label, _ := s.app.State.Get(key)
		if err := s.push(name, label); err != nil {
			s.app.log(ctx, "label sync: %v", err)
			s.Failed++
			continue
		}
		s.Synced++
	}
}

// ReservationSweeper expires stale reservations.
type ReservationSweeper struct {
	app *App
	// Expired counts removed reservations.
	Expired int
}

// NewReservationSweeper returns a sweeper.
func NewReservationSweeper(app *App) *ReservationSweeper { return &ReservationSweeper{app: app} }

// stale parses one reservation's deadline record.
func (r *ReservationSweeper) stale(key string) (bool, error) {
	v, _ := r.app.State.Get(key)
	left, err := strconv.Atoi(v)
	if err != nil {
		return false, &choreError{what: "malformed reservation " + key}
	}
	return left <= 0, nil
}

// SweepOnce walks every reservation once.
func (r *ReservationSweeper) SweepOnce(ctx context.Context) {
	for _, key := range r.app.State.ListPrefix("reservation/") {
		old, err := r.stale(key)
		if err != nil {
			r.app.log(ctx, "reservation sweep skipping %s: %v", key, err)
			continue
		}
		if old {
			r.app.State.Delete(key)
			r.Expired++
		}
	}
}

// AclReloader re-parses queue ACL entries.
type AclReloader struct {
	app *App
	// Loaded maps queue to its ACL; Rejected counts malformed entries.
	Loaded   map[string]string
	Rejected int
}

// NewAclReloader returns a reloader.
func NewAclReloader(app *App) *AclReloader {
	return &AclReloader{app: app, Loaded: make(map[string]string)}
}

// parse validates one ACL entry.
func (a *AclReloader) parse(key, v string) error {
	if !strings.Contains(v, ":") {
		return &choreError{what: "acl " + key + " missing principal separator"}
	}
	return nil
}

// ReloadOnce walks every ACL entry once.
func (a *AclReloader) ReloadOnce(ctx context.Context) {
	for _, key := range a.app.State.ListPrefix("acl/") {
		v, _ := a.app.State.Get(key)
		if err := a.parse(key, v); err != nil {
			a.app.log(ctx, "acl reload: %v", err)
			a.Rejected++
			continue
		}
		a.Loaded[strings.TrimPrefix(key, "acl/")] = v
	}
}

// ContainerStatScanner aggregates per-container resource samples.
type ContainerStatScanner struct {
	app *App
	// TotalMB is the aggregate memory footprint; Bad counts unreadable
	// samples.
	TotalMB, Bad int
}

// NewContainerStatScanner returns a scanner.
func NewContainerStatScanner(app *App) *ContainerStatScanner {
	return &ContainerStatScanner{app: app}
}

// sample parses one container's memory record.
func (c *ContainerStatScanner) sample(key string) (int, error) {
	v, _ := c.app.State.Get(key)
	mb, err := strconv.Atoi(v)
	if err != nil {
		return 0, &choreError{what: "unreadable sample " + key}
	}
	return mb, nil
}

// ScanOnce walks every container sample once.
func (c *ContainerStatScanner) ScanOnce(ctx context.Context) {
	for _, key := range c.app.State.ListPrefix("containermb/") {
		mb, err := c.sample(key)
		if err != nil {
			c.app.log(ctx, "stat scan: %v", err)
			c.Bad++
			continue
		}
		c.TotalMB += mb
	}
}
