package yarn

import "wasabi/internal/apps/meta"

// Manifest is the ground-truth record of every retry code structure in
// this package; detectors never read it.
func Manifest() []meta.Structure {
	return []meta.Structure{
		{
			App: "YA", Coordinator: "yarn.TransitionProc.Step",
			Retried: []string{"yarn.TransitionProc.commitTransition"},
			File:    "rm.go", Mechanism: meta.StateMachine, Trigger: meta.Exception,
			Keyworded: true,
			Note:      "YARN-8362: counter double-increment halves the configured retry budget; symptom invisible to WASABI's oracles (deliberate false negative), otherwise backoff + cap are present",
		},
		{
			App: "YA", Coordinator: "yarn.AMLauncher.LaunchAM",
			Retried: []string{"yarn.AMLauncher.startAM"},
			File:    "rm.go", Mechanism: meta.Loop, Trigger: meta.Exception,
			Keyworded: true, Bug: meta.MissingCap,
			Note: "WHEN: AM launch spins hot — no cap, no delay; uncovered by the suite (static-only find). The same structure also lacks a delay.",
		},
		{
			App: "YA", Coordinator: "yarn.RMStateStore.StoreApp",
			Retried: []string{"yarn.RMStateStore.writeEntry"},
			File:    "rm.go", Mechanism: meta.Loop, Trigger: meta.Exception,
			Keyworded: true, Bug: meta.MissingCap,
			Note: "WHEN: unbounded state-store retry; uncovered by the suite (static-only find)",
		},
		{
			App: "YA", Coordinator: "yarn.NodeHealthScript.Run",
			Retried: []string{"yarn.NodeHealthScript.runScript"},
			File:    "rm.go", Mechanism: meta.Loop, Trigger: meta.Exception,
			Keyworded: true,
			Note:      "correct: cap + delay, ExitException excluded (majority policy)",
		},
		{
			App: "YA", Coordinator: "yarn.NodeHeartbeatHandler.Handle",
			Retried: []string{"yarn.NodeHeartbeatHandler.sendHeartbeat"},
			File:    "nm.go", Mechanism: meta.Loop, Trigger: meta.Exception,
			Keyworded: true, HarnessRetried: true,
			Note: "correct cap; the heartbeat scheduler re-drives it per node per interval (missing-cap FP source, §4.3)",
		},
		{
			App: "YA", Coordinator: "yarn.LocalizerRunner.FetchResource",
			Retried: []string{"yarn.LocalizerRunner.download"},
			File:    "nm.go", Mechanism: meta.Loop, Trigger: meta.Exception,
			Keyworded: true, Bug: meta.MissingDelay,
			Note: "WHEN: downloads re-attempted back to back; uncovered by the suite (static-only find)",
		},
		{
			App: "YA", Coordinator: "yarn.ResourceTrackerClient.Register",
			Retried: []string{"yarn.ResourceTrackerClient.registerOnce"},
			File:    "nm.go", Mechanism: meta.Loop, Trigger: meta.Exception,
			Keyworded: true, Bug: meta.MissingDelay,
			Note: "WHEN: registration storms the RM back to back; uncovered by the suite (static-only find); IllegalArgumentException excluded",
		},
		{
			App: "YA", Coordinator: "yarn.ContainerCleanup.processCleanup",
			Retried: []string{"yarn.ContainerCleanup.removeDirs"},
			File:    "nm.go", Mechanism: meta.Queue, Trigger: meta.Exception,
			Keyworded: true,
			Note:      "correct queue re-enqueue retry: per-task cap and pause",
		},
		{
			App: "YA", Coordinator: "yarn.SchedulerEventDispatcher.Drain",
			File: "dispatcher.go", Mechanism: meta.Queue, Trigger: meta.ErrorCode,
			Keyworded: true,
			Note:      "correct error-code-triggered re-queue; uninjectable (§4.2)",
		},
	}
}
