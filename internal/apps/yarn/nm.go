package yarn

import (
	"context"
	"time"

	"wasabi/internal/apps/common"
	"wasabi/internal/errmodel"
	"wasabi/internal/fault"
	"wasabi/internal/vclock"
)

// NodeHeartbeatHandler delivers node heartbeats to the resource manager.
type NodeHeartbeatHandler struct {
	app *App
}

// NewNodeHeartbeatHandler returns a handler.
func NewNodeHeartbeatHandler(app *App) *NodeHeartbeatHandler {
	return &NodeHeartbeatHandler{app: app}
}

// sendHeartbeat delivers one heartbeat.
//
// Throws: SocketTimeoutException.
func (h *NodeHeartbeatHandler) sendHeartbeat(ctx context.Context, node string) error {
	if err := fault.Hook(ctx); err != nil {
		return err
	}
	vclock.Elapse(ctx, time.Millisecond)
	h.app.State.Put("heartbeat/"+node, "seen")
	return nil
}

// Handle delivers a heartbeat with a small bounded retry and pause. The
// cap is correct; the heartbeat scheduler re-drives Handle every interval
// for every node and tolerates failures (the next interval supersedes
// them) — the caller-level re-driving that becomes a missing-cap false
// positive for WASABI (§4.3).
func (h *NodeHeartbeatHandler) Handle(ctx context.Context, node string) error {
	maxRetries := h.app.Config.GetInt("yarn.nm.heartbeat.retries", 3)
	var last error
	for retry := 0; retry < maxRetries; retry++ {
		err := h.sendHeartbeat(ctx, node)
		if err == nil {
			return nil
		}
		last = err
		vclock.Sleep(ctx, 50*time.Millisecond)
	}
	return last
}

// LocalizerRunner downloads a container's resources onto the node.
type LocalizerRunner struct {
	app *App
}

// NewLocalizerRunner returns a runner.
func NewLocalizerRunner(app *App) *LocalizerRunner { return &LocalizerRunner{app: app} }

// download fetches one resource bundle.
//
// Throws: ConnectException, EOFException.
func (l *LocalizerRunner) download(ctx context.Context, resource string) error {
	if err := fault.Hook(ctx); err != nil {
		return err
	}
	l.app.State.Put("resource/"+resource, "localized")
	return nil
}

// FetchResource downloads a resource, re-attempting transient failures up
// to the configured cap.
//
// BUG (WHEN, missing delay): downloads are re-attempted immediately,
// re-hammering the (possibly overloaded) source.
func (l *LocalizerRunner) FetchResource(ctx context.Context, resource string) error {
	maxRetries := l.app.Config.GetInt("yarn.localizer.fetch.retries", 5)
	var last error
	for retry := 0; retry < maxRetries; retry++ {
		err := l.download(ctx, resource)
		if err == nil {
			return nil
		}
		last = err
	}
	return last
}

// ResourceTrackerClient registers a node manager with the RM.
type ResourceTrackerClient struct {
	app *App
}

// NewResourceTrackerClient returns a client.
func NewResourceTrackerClient(app *App) *ResourceTrackerClient {
	return &ResourceTrackerClient{app: app}
}

// registerOnce performs one registration RPC.
//
// Throws: ConnectException, IllegalArgumentException.
func (c *ResourceTrackerClient) registerOnce(ctx context.Context, node string) error {
	if err := fault.Hook(ctx); err != nil {
		return err
	}
	if node == "" {
		return errmodel.New("IllegalArgumentException", "empty node id")
	}
	c.app.State.Put("registered/"+node, "true")
	return nil
}

// Register registers the node, re-attempting transient RM failures up to
// the cap; a malformed node id is the caller's fault and aborts.
//
// BUG (WHEN, missing delay): registration storms the RM back to back —
// exactly when the RM is already struggling to come up.
func (c *ResourceTrackerClient) Register(ctx context.Context, node string) error {
	maxRetries := c.app.Config.GetInt("yarn.tracker.register.retries", 4)
	var last error
	for retry := 0; retry < maxRetries; retry++ {
		err := c.registerOnce(ctx, node)
		if err == nil {
			return nil
		}
		if errmodel.IsClass(err, "IllegalArgumentException") {
			return err
		}
		last = err
	}
	return last
}

// cleanupTask is a queued container cleanup with its own retry budget.
type cleanupTask struct {
	container string
	attempts  int
}

// ContainerCleanup removes finished containers' work directories through
// a queue; failed cleanups are re-submitted — correct queue retry.
type ContainerCleanup struct {
	app   *App
	queue *common.Queue[*cleanupTask]
	// Cleaned counts removed containers.
	Cleaned int
}

// NewContainerCleanup returns a cleaner with an empty queue.
func NewContainerCleanup(app *App) *ContainerCleanup {
	return &ContainerCleanup{app: app, queue: common.NewQueue[*cleanupTask]()}
}

// Submit enqueues a container for cleanup.
func (c *ContainerCleanup) Submit(container string) {
	c.queue.Put(&cleanupTask{container: container})
}

// removeDirs deletes one container's directories.
//
// Throws: IOException.
func (c *ContainerCleanup) removeDirs(ctx context.Context, container string) error {
	if err := fault.Hook(ctx); err != nil {
		return err
	}
	c.app.State.Delete("workdir/" + container)
	return nil
}

// processCleanup handles one queued cleanup: transient failures re-submit
// the task after a pause, bounded per task.
func (c *ContainerCleanup) processCleanup(ctx context.Context, task *cleanupTask) error {
	maxRetries := c.app.Config.GetInt("yarn.cleanup.retries", 3)
	if err := c.removeDirs(ctx, task.container); err != nil {
		if task.attempts < maxRetries {
			task.attempts++
			vclock.Sleep(ctx, 100*time.Millisecond)
			c.queue.Put(task) // re-submit for retry
			return nil
		}
		return err
	}
	c.Cleaned++
	return nil
}

// Drain processes queued cleanups until empty.
func (c *ContainerCleanup) Drain(ctx context.Context) error {
	for {
		task, ok := c.queue.Take()
		if !ok {
			return nil
		}
		if err := c.processCleanup(ctx, task); err != nil {
			return err
		}
	}
}
