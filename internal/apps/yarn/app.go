// Package yarn is the corpus miniature of Hadoop YARN (YA in the
// evaluation): resource-manager state transitions, AM launching, node
// heartbeats, and resource localization. It hosts the YARN-8362 bug
// (a retry counter incremented twice, silently halving the configured
// attempt budget) — a cap problem WASABI's oracles cannot observe, kept
// here as a deliberate false negative (§2.3, §4.5; the YA rows of
// Tables 3–5).
//
// Ground truth lives in manifest.go; detectors never read it.
package yarn

import (
	"context"

	"wasabi/internal/apps/common"
	"wasabi/internal/trace"
)

// App is a miniature YARN deployment: a resource manager and two node
// managers.
type App struct {
	Config  *common.Config
	Cluster *common.Cluster
	State   *common.KV // RM state store
}

// New constructs a deployment with default configuration.
func New() *App {
	return &App{
		Config: common.NewConfig(map[string]string{
			"yarn.rm.transition.max.attempts": "8",
			"yarn.am.launch.retries":          "4",
			"yarn.nm.heartbeat.retries":       "3",
			"yarn.localizer.fetch.retries":    "5",
			"yarn.tracker.register.retries":   "4",
			"yarn.cleanup.retries":            "3",
		}),
		Cluster: common.NewCluster("nm1", "nm2"),
		State:   common.NewKV(),
	}
}

// log emits an application log line into the run trace.
func (a *App) log(ctx context.Context, format string, args ...any) {
	trace.Note(ctx, "[yarn] "+format, args...)
}
