package yarn

import (
	"context"
	"time"

	"wasabi/internal/errmodel"
	"wasabi/internal/fault"
	"wasabi/internal/vclock"
)

// Transition procedure states.
const (
	transitionPrepare = iota
	transitionCommit
	transitionDone
)

// TransitionProc drives a resource-manager state transition as a
// state-machine procedure with bounded, delayed in-place retry.
//
// BUG (WHEN, broken attempt tracking — YARN-8362): the attempt counter is
// incremented both when the transition fails AND again in the subsequent
// status check, so the effective retry budget is HALF the configured
// maximum. The symptom (too few retries) is invisible to WASABI's
// missing-cap/missing-delay oracles — a deliberate false negative, as in
// the paper's study.
type TransitionProc struct {
	app      *App
	appID    string
	state    int
	attempts int
}

// NewTransitionProc returns a transition procedure for appID.
func NewTransitionProc(app *App, appID string) *TransitionProc {
	return &TransitionProc{app: app, appID: appID}
}

// Name implements common.Procedure.
func (p *TransitionProc) Name() string { return "transition-" + p.appID }

// commitTransition applies the transition to the state store.
//
// Throws: ServiceException.
func (p *TransitionProc) commitTransition(ctx context.Context) error {
	if err := fault.Hook(ctx); err != nil {
		return err
	}
	p.app.State.Put("appstate/"+p.appID, "RUNNING")
	return nil
}

// checkStatus refreshes the transition's bookkeeping after a failure.
func (p *TransitionProc) checkStatus() {
	// YARN-8362: this bumps the same counter the failure path already
	// incremented.
	p.attempts++
}

// Step implements common.Procedure.
func (p *TransitionProc) Step(ctx context.Context) (bool, error) {
	maxRetryAttempts := p.app.Config.GetInt("yarn.rm.transition.max.attempts", 8)
	switch p.state {
	case transitionPrepare:
		p.app.State.Put("appstate/"+p.appID, "ACCEPTED")
		p.state = transitionCommit
	case transitionCommit:
		if err := p.commitTransition(ctx); err != nil {
			p.attempts++
			p.checkStatus()
			if p.attempts >= maxRetryAttempts {
				return false, err
			}
			vclock.Sleep(ctx, vclock.Backoff(100*time.Millisecond, p.attempts, 2*time.Second))
			return false, nil // implicit retry
		}
		p.state = transitionDone
	case transitionDone:
		return true, nil
	}
	return p.state == transitionDone, nil
}

// Attempts exposes the counter for the regression test of YARN-8362.
func (p *TransitionProc) Attempts() int { return p.attempts }

// AMLauncher starts application masters.
type AMLauncher struct {
	app *App
}

// NewAMLauncher returns a launcher.
func NewAMLauncher(app *App) *AMLauncher { return &AMLauncher{app: app} }

// startAM asks a node manager to start the AM container.
//
// Throws: ConnectException, RemoteException.
func (l *AMLauncher) startAM(ctx context.Context, appID string) error {
	if err := fault.Hook(ctx); err != nil {
		return err
	}
	l.app.State.Put("am/"+appID, "started")
	return nil
}

// LaunchAM starts an application master, retrying until the start
// succeeds.
//
// BUG (WHEN, missing cap AND missing delay): the launcher loops hot —
// no attempt bound, no pause — against whatever is failing.
func (l *AMLauncher) LaunchAM(ctx context.Context, appID string) {
	for {
		err := l.startAM(ctx, appID)
		if err == nil {
			return
		}
		l.app.log(ctx, "AM launch for %s failed, retrying: %v", appID, err)
	}
}

// RMStateStore persists resource-manager state.
type RMStateStore struct {
	app *App
}

// NewRMStateStore returns a store client.
func NewRMStateStore(app *App) *RMStateStore { return &RMStateStore{app: app} }

// writeEntry persists one application entry.
//
// Throws: IOException.
func (s *RMStateStore) writeEntry(ctx context.Context, appID string) error {
	if err := fault.Hook(ctx); err != nil {
		return err
	}
	s.app.State.Put("store/"+appID, "persisted")
	return nil
}

// StoreApp persists an application, retrying until the write lands.
//
// BUG (WHEN, missing cap): RM state "must" be durable, so writes retry
// forever with a pause; a broken store wedges the dispatcher thread.
func (s *RMStateStore) StoreApp(ctx context.Context, appID string) {
	retryInterval := 200 * time.Millisecond
	for {
		err := s.writeEntry(ctx, appID)
		if err == nil {
			return
		}
		s.app.log(ctx, "state store write failed: %v", err)
		vclock.Sleep(ctx, retryInterval)
	}
}

// NodeHealthScript runs the node-manager health check script.
type NodeHealthScript struct {
	app *App
}

// NewNodeHealthScript returns a runner.
func NewNodeHealthScript(app *App) *NodeHealthScript { return &NodeHealthScript{app: app} }

// runScript executes the health script once.
//
// Throws: ExitException, IOException.
func (n *NodeHealthScript) runScript(ctx context.Context) error {
	if err := fault.Hook(ctx); err != nil {
		return err
	}
	n.app.State.Put("health/last", "ok")
	return nil
}

// Run executes the health check with bounded, delayed retry. A deliberate
// script exit (ExitException) is final — the majority policy for that
// exception class.
func (n *NodeHealthScript) Run(ctx context.Context) error {
	const maxRetries = 3
	var last error
	for retry := 0; retry < maxRetries; retry++ {
		err := n.runScript(ctx)
		if err == nil {
			return nil
		}
		if errmodel.IsClass(err, "ExitException") {
			return err
		}
		last = err
		vclock.Sleep(ctx, 100*time.Millisecond)
	}
	return last
}
