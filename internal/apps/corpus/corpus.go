// Package corpus aggregates the eight target applications of the paper's
// evaluation (§4, Table 1): their unit-test suites (for the dynamic
// workflow, §3.1), their source directories (for the static workflows,
// §3.2), and their ground-truth manifests (for evaluation scoring only).
// See docs/CORPUS.md for the data card of the 98-structure ground truth.
package corpus

import (
	"fmt"
	"path/filepath"
	"runtime"

	"wasabi/internal/apps/cassandra"
	"wasabi/internal/apps/elastic"
	"wasabi/internal/apps/hadoop"
	"wasabi/internal/apps/hbase"
	"wasabi/internal/apps/hdfs"
	"wasabi/internal/apps/hive"
	"wasabi/internal/apps/mapreduce"
	"wasabi/internal/apps/meta"
	"wasabi/internal/apps/yarn"
	"wasabi/internal/testkit"
)

// App bundles everything WASABI needs to know about one target.
type App struct {
	// Code is the evaluation short code (HA, HD, MA, YA, HB, HI, CA, EL).
	Code string
	// Name is the human-readable application name.
	Name string
	// Dir is the absolute path of the application's Go sources.
	Dir string
	// Suite is the application's existing unit-test suite.
	Suite testkit.Suite
	// Manifest is the ground truth, used only for scoring.
	Manifest []meta.Structure
}

// baseDir returns the absolute path of internal/apps.
func baseDir() string {
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		panic("corpus: cannot locate source directory")
	}
	return filepath.Dir(filepath.Dir(file))
}

// Apps returns the full corpus in evaluation order.
func Apps() []App {
	base := baseDir()
	return []App{
		{Code: "HA", Name: "Hadoop", Dir: filepath.Join(base, "hadoop"), Suite: hadoop.Suite(), Manifest: hadoop.Manifest()},
		{Code: "HD", Name: "HDFS", Dir: filepath.Join(base, "hdfs"), Suite: hdfs.Suite(), Manifest: hdfs.Manifest()},
		{Code: "MA", Name: "MapReduce", Dir: filepath.Join(base, "mapreduce"), Suite: mapreduce.Suite(), Manifest: mapreduce.Manifest()},
		{Code: "YA", Name: "Yarn", Dir: filepath.Join(base, "yarn"), Suite: yarn.Suite(), Manifest: yarn.Manifest()},
		{Code: "HB", Name: "HBase", Dir: filepath.Join(base, "hbase"), Suite: hbase.Suite(), Manifest: hbase.Manifest()},
		{Code: "HI", Name: "Hive", Dir: filepath.Join(base, "hive"), Suite: hive.Suite(), Manifest: hive.Manifest()},
		{Code: "CA", Name: "Cassandra", Dir: filepath.Join(base, "cassandra"), Suite: cassandra.Suite(), Manifest: cassandra.Manifest()},
		{Code: "EL", Name: "ElasticSearch", Dir: filepath.Join(base, "elastic"), Suite: elastic.Suite(), Manifest: elastic.Manifest()},
	}
}

// ByCode returns the app with the given short code.
func ByCode(code string) (App, error) {
	for _, a := range Apps() {
		if a.Code == code {
			return a, nil
		}
	}
	return App{}, fmt.Errorf("corpus: unknown app %q", code)
}

// Manifests returns the concatenated ground truth of all apps.
func Manifests() []meta.Structure {
	var out []meta.Structure
	for _, a := range Apps() {
		out = append(out, a.Manifest...)
	}
	return out
}
