package corpus

import (
	"testing"

	"wasabi/internal/apps/meta"
	"wasabi/internal/testkit"
)

// TestAllSuitesPassPlain runs every corpus unit test without injection:
// the applications must be healthy.
func TestAllSuitesPassPlain(t *testing.T) {
	for _, app := range Apps() {
		if err := testkit.Validate(app.Suite); err != nil {
			t.Fatalf("%s: %v", app.Code, err)
		}
		for _, tc := range app.Suite.Tests {
			res := testkit.Run(tc, nil, nil)
			if res.Failed() {
				t.Errorf("%s %s failed: %v", app.Code, tc.Name, res.Err)
			}
		}
	}
}

// TestAllSuitesPassPrepared runs every test with retry-restricting
// overrides stripped, as WASABI does.
func TestAllSuitesPassPrepared(t *testing.T) {
	for _, app := range Apps() {
		for _, tc := range app.Suite.Tests {
			eff, _ := testkit.PrepareOverrides(tc)
			res := testkit.Run(tc, nil, eff)
			if res.Failed() {
				t.Errorf("%s %s failed prepared: %v", app.Code, tc.Name, res.Err)
			}
		}
	}
}

// TestManifestsConsistent sanity-checks every app's ground truth.
func TestManifestsConsistent(t *testing.T) {
	seen := map[string]bool{}
	for _, app := range Apps() {
		for _, s := range app.Manifest {
			if s.App != app.Code {
				t.Errorf("%s: manifest entry %s declares app %q", app.Code, s.Coordinator, s.App)
			}
			if seen[s.Key()] {
				t.Errorf("duplicate structure %s", s.Key())
			}
			seen[s.Key()] = true
			if s.Trigger == meta.Exception && len(s.Retried) == 0 {
				t.Errorf("%s: exception structure without retried methods", s.Coordinator)
			}
			if s.File == "" || s.Mechanism == "" {
				t.Errorf("%s: incomplete manifest entry", s.Coordinator)
			}
		}
	}
}

// TestCorpusMechanismMix checks the corpus-wide mechanism proportions
// roughly match the paper: ~70% loops, the rest queue/state-machine.
func TestCorpusMechanismMix(t *testing.T) {
	counts := meta.CountByMechanism(Manifests())
	total := counts[meta.Loop] + counts[meta.Queue] + counts[meta.StateMachine]
	if total == 0 {
		t.Fatal("empty corpus")
	}
	loopFrac := float64(counts[meta.Loop]) / float64(total)
	if loopFrac < 0.55 || loopFrac > 0.85 {
		t.Errorf("loop fraction = %.2f (counts %v), want ~0.70", loopFrac, counts)
	}
}

// TestByCode covers the lookup helper.
func TestByCode(t *testing.T) {
	if _, err := ByCode("HD"); err != nil {
		t.Error(err)
	}
	if _, err := ByCode("ZZ"); err == nil {
		t.Error("expected error for unknown code")
	}
}
