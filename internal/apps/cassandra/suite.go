package cassandra

import (
	"context"

	"wasabi/internal/apps/common"
	"wasabi/internal/errmodel"
	"wasabi/internal/testkit"
)

// Suite returns the Cassandra miniature's existing unit-test suite.
func Suite() testkit.Suite {
	s := testkit.Suite{App: "CA", Name: "Cassandra", Tests: []testkit.Test{
		{
			Name: "cassandra.TestGossipSyn", App: "CA",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				if err := NewGossiper(app).SendSyn(ctx, "n2"); err != nil {
					return err
				}
				v, _ := app.Cluster.Node("n2").Store.Get("gossip/last")
				return testkit.Assertf(v == "syn", "gossip = %q", v)
			},
		},
		{
			Name: "cassandra.TestGossipRejectsEmptyPeer", App: "CA",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				err := NewGossiper(app).SendSyn(ctx, "")
				if err == nil {
					return testkit.Assertf(false, "expected IllegalArgumentException")
				}
				if errmodel.IsClass(err, "IllegalArgumentException") {
					return nil
				}
				return err
			},
		},
		{
			Name: "cassandra.TestReadRepair", App: "CA",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				if err := NewReadRepairer(app).Repair(ctx, "k1"); err != nil {
					return err
				}
				v, _ := app.Local.Get("repaired/k1")
				return testkit.Assertf(v == "true", "repaired = %q", v)
			},
		},
		{
			Name: "cassandra.TestBatchlogReplay", App: "CA",
			RetryLabeled: true,
			Overrides:    map[string]string{"cassandra.batchlog.replay.retries": "1"},
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				if err := NewBatchlogReplayer(app).Replay(ctx, "b1"); err != nil {
					return err
				}
				v, _ := app.Local.Get("replayed/b1")
				return testkit.Assertf(v == "true", "replayed = %q", v)
			},
		},
		{
			Name: "cassandra.TestStreamChunks", App: "CA",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				s := NewStreamSession(app)
				for seq := 0; seq < 3; seq++ {
					s.RetryStream(ctx, seq)
				}
				return testkit.Assertf(s.Streamed == 3, "streamed = %d", s.Streamed)
			},
		},
		{
			Name: "cassandra.TestHintsDelivered", App: "CA",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				h := NewHintsDispatcher(app)
				h.Submit("n2")
				h.Submit("n3")
				if err := h.Drain(ctx); err != nil {
					return err
				}
				return testkit.Assertf(h.Delivered == 2, "delivered = %d", h.Delivered)
			},
		},
		{
			Name: "cassandra.TestCommitLogArchive", App: "CA",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				if err := NewCommitLogArchiver(app).Archive(ctx, "seg-1"); err != nil {
					return err
				}
				v, _ := app.Local.Get("archive/seg-1")
				return testkit.Assertf(v == "true", "archived = %q", v)
			},
		},
		{
			Name: "cassandra.TestRepairJob", App: "CA",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				exec := common.NewProcedureExecutor()
				if err := exec.Run(ctx, NewRepairJob(app, "ks1")); err != nil {
					return err
				}
				v, _ := app.Local.Get("synced/ks1")
				return testkit.Assertf(v == "true", "synced = %q", v)
			},
		},
	}}
	s.Tests = append(s.Tests, workloadTests()...)
	return s
}
