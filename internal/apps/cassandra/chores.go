package cassandra

import (
	"context"
	"strconv"
	"strings"
)

// Housekeeping chores of the Cassandra miniature: per-item iteration with
// error tolerance — structural retry look-alikes the retry-naming filter
// prunes (§4.4).

type tableError struct{ what string }

func (e *tableError) Error() string { return e.what }

// SSTableExpirer drops fully expired SSTables.
type SSTableExpirer struct {
	app *App
	// Dropped and Live count pass outcomes.
	Dropped, Live int
}

// NewSSTableExpirer returns an expirer.
func NewSSTableExpirer(app *App) *SSTableExpirer { return &SSTableExpirer{app: app} }

// fullyExpired parses one SSTable's max-TTL record.
func (s *SSTableExpirer) fullyExpired(key string) (bool, error) {
	v, _ := s.app.Local.Get(key)
	ttl, err := strconv.Atoi(v)
	if err != nil {
		return false, &tableError{what: "unreadable ttl for " + key}
	}
	return ttl <= 0, nil
}

// ExpireOnce walks every SSTable once.
func (s *SSTableExpirer) ExpireOnce(ctx context.Context) {
	for _, key := range s.app.Local.ListPrefix("sstablettl/") {
		gone, err := s.fullyExpired(key)
		if err != nil {
			s.app.log(ctx, "expirer skipping %s: %v", key, err)
			s.Live++
			continue
		}
		if !gone {
			s.Live++
			continue
		}
		s.app.Local.Delete(key)
		s.Dropped++
	}
}

// TombstoneCounter sums tombstones per table.
type TombstoneCounter struct {
	app *App
	// Total is the aggregate count; Bad counts unreadable records.
	Total, Bad int
}

// NewTombstoneCounter returns a counter.
func NewTombstoneCounter(app *App) *TombstoneCounter { return &TombstoneCounter{app: app} }

// read parses one table's tombstone record.
func (t *TombstoneCounter) read(key string) (int, error) {
	v, _ := t.app.Local.Get(key)
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, &tableError{what: "unreadable tombstone count " + key}
	}
	return n, nil
}

// CountOnce walks every table once.
func (t *TombstoneCounter) CountOnce(ctx context.Context) {
	for _, key := range t.app.Local.ListPrefix("tombstones/") {
		n, err := t.read(key)
		if err != nil {
			t.app.log(ctx, "tombstone count: %v", err)
			t.Bad++
			continue
		}
		t.Total += n
	}
}

// AuditLogRoller rotates full audit log segments.
type AuditLogRoller struct {
	app *App
	// Rotated counts rolled segments.
	Rotated int
}

// NewAuditLogRoller returns a roller.
func NewAuditLogRoller(app *App) *AuditLogRoller { return &AuditLogRoller{app: app} }

// rotate rolls one segment if it is full.
func (a *AuditLogRoller) rotate(key string) error {
	v, _ := a.app.Local.Get(key)
	if v != "full" {
		return &tableError{what: key + " not full"}
	}
	a.app.Local.Put(key, "rotated")
	return nil
}

// RollOnce walks every audit segment once.
func (a *AuditLogRoller) RollOnce(ctx context.Context) {
	for _, key := range a.app.Local.ListPrefix("auditlog/") {
		if err := a.rotate(key); err != nil {
			a.app.log(ctx, "audit roll skipped: %v", err)
			continue
		}
		a.Rotated++
	}
}

// PeerVersionChecker validates gossip-learned peer release versions.
type PeerVersionChecker struct {
	app *App
	// Mixed reports whether multiple major versions coexist.
	Mixed  bool
	majors map[string]bool
}

// NewPeerVersionChecker returns a checker.
func NewPeerVersionChecker(app *App) *PeerVersionChecker {
	return &PeerVersionChecker{app: app, majors: make(map[string]bool)}
}

// parse extracts one peer's major version.
func (p *PeerVersionChecker) parse(key string) (string, error) {
	v, _ := p.app.Local.Get(key)
	parts := strings.Split(v, ".")
	if len(parts) < 2 {
		return "", &tableError{what: "unparsable version " + v + " for " + key}
	}
	return parts[0], nil
}

// CheckOnce walks every peer version once.
func (p *PeerVersionChecker) CheckOnce(ctx context.Context) {
	for _, key := range p.app.Local.ListPrefix("peerversion/") {
		major, err := p.parse(key)
		if err != nil {
			p.app.log(ctx, "version check: %v", err)
			continue
		}
		p.majors[major] = true
	}
	p.Mixed = len(p.majors) > 1
}

// KeyCacheSaver persists hot-key cache entries.
type KeyCacheSaver struct {
	app *App
	// Saved and Skipped count pass outcomes.
	Saved, Skipped int
}

// NewKeyCacheSaver returns a saver.
func NewKeyCacheSaver(app *App) *KeyCacheSaver { return &KeyCacheSaver{app: app} }

// persist saves one cache entry if it is still referenced.
func (k *KeyCacheSaver) persist(key string) error {
	v, ok := k.app.Local.Get(key)
	if !ok || v == "" {
		return &tableError{what: "cache entry " + key + " vanished"}
	}
	name := strings.TrimPrefix(key, "keycache/")
	k.app.Local.Put("savedcache/"+name, v)
	return nil
}

// SaveOnce walks every cache entry once.
func (k *KeyCacheSaver) SaveOnce(ctx context.Context) {
	for _, key := range k.app.Local.ListPrefix("keycache/") {
		if err := k.persist(key); err != nil {
			k.app.log(ctx, "key cache save: %v", err)
			k.Skipped++
			continue
		}
		k.Saved++
	}
}
