package cassandra

import "wasabi/internal/apps/meta"

// Manifest is the ground-truth record of every retry code structure in
// this package; detectors never read it.
func Manifest() []meta.Structure {
	return []meta.Structure{
		{
			App: "CA", Coordinator: "cassandra.Gossiper.SendSyn",
			Retried: []string{"cassandra.Gossiper.sendSyn"},
			File:    "gossip.go", Mechanism: meta.Loop, Trigger: meta.Exception,
			Keyworded: true,
			Note:      "correct: cap + delay; IllegalState/IllegalArgument excluded (majority policy)",
		},
		{
			App: "CA", Coordinator: "cassandra.ReadRepairer.Repair",
			Retried: []string{"cassandra.ReadRepairer.repairOnce"},
			File:    "gossip.go", Mechanism: meta.Loop, Trigger: meta.Exception,
			Keyworded: true, Bug: meta.WrongPolicyRetried,
			Note: "IF: IllegalStateException retried against the codebase-wide policy (retry-ratio outlier, 1/3)",
		},
		{
			App: "CA", Coordinator: "cassandra.BatchlogReplayer.Replay",
			Retried: []string{"cassandra.BatchlogReplayer.replayBatch"},
			File:    "gossip.go", Mechanism: meta.Loop, Trigger: meta.Exception,
			Keyworded: true, Bug: meta.WrongPolicyRetried,
			Note: "IF: IllegalArgumentException retried (retry-ratio outlier, 2/9 corpus-wide)",
		},
		{
			App: "CA", Coordinator: "cassandra.StreamSession.RetryStream",
			Retried: []string{"cassandra.StreamSession.streamChunk"},
			File:    "streaming.go", Mechanism: meta.Loop, Trigger: meta.Exception,
			Keyworded: true, Bug: meta.MissingCap,
			Note: "WHEN: unbounded chunk retry during streaming (pause present)",
		},
		{
			App: "CA", Coordinator: "cassandra.HintsDispatcher.processHint",
			Retried: []string{"cassandra.HintsDispatcher.deliverHint"},
			File:    "streaming.go", Mechanism: meta.Queue, Trigger: meta.Exception,
			Keyworded: true, Bug: meta.MissingDelay,
			Note: "WHEN: hints re-enqueued with no pause, hammering recovering replicas",
		},
		{
			App: "CA", Coordinator: "cassandra.CommitLogArchiver.Archive",
			Retried: []string{"cassandra.CommitLogArchiver.archiveSegment"},
			File:    "streaming.go", Mechanism: meta.Loop, Trigger: meta.Exception,
			Keyworded: true, Bug: meta.MissingDelay,
			Note: "WHEN: archive attempts issued back to back",
		},
		{
			App: "CA", Coordinator: "cassandra.RepairJob.Step",
			Retried: []string{"cassandra.RepairJob.snapshotReplicas", "cassandra.RepairJob.syncRanges"},
			File:    "streaming.go", Mechanism: meta.StateMachine, Trigger: meta.Exception,
			Keyworded: true,
			Note:      "correct state-machine retry: backoff + cap per state",
		},
	}
}
