package cassandra

import (
	"context"

	"wasabi/internal/apps/common"
	"wasabi/internal/testkit"
)

// workloadTests are end-to-end scenario tests; each covers several retry
// locations the focused tests also reach (§3.1.4 planning redundancy).
func workloadTests() []testkit.Test {
	return []testkit.Test{
		{
			Name: "cassandra.TestBootstrapFlow", App: "CA",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				if err := NewGossiper(app).SendSyn(ctx, "n2"); err != nil {
					return err
				}
				s := NewStreamSession(app)
				for seq := 0; seq < 2; seq++ {
					s.RetryStream(ctx, seq)
				}
				return testkit.Assertf(s.Streamed == 2, "streamed = %d", s.Streamed)
			},
		},
		{
			Name: "cassandra.TestRecoveryFlow", App: "CA",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				h := NewHintsDispatcher(app)
				h.Submit("n3")
				if err := h.Drain(ctx); err != nil {
					return err
				}
				if err := NewBatchlogReplayer(app).Replay(ctx, "flow-b"); err != nil {
					return err
				}
				if err := NewReadRepairer(app).Repair(ctx, "flow-k"); err != nil {
					return err
				}
				exec := common.NewProcedureExecutor()
				return exec.Run(ctx, NewRepairJob(app, "flow-ks"))
			},
		},
		{
			Name: "cassandra.TestMaintenanceFlow", App: "CA",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				if err := NewCommitLogArchiver(app).Archive(ctx, "flow-seg"); err != nil {
					return err
				}
				return NewGossiper(app).SendSyn(ctx, "n3")
			},
		},
	}
}
