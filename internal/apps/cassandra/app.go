// Package cassandra is the corpus miniature of Apache Cassandra (CA in
// the evaluation): gossip, streaming, hinted handoff, batchlog replay and
// repair. It contributes the retried side of the IllegalStateException
// and IllegalArgumentException retry-ratio outliers (§3.2.2; the CA rows
// of Tables 3–5).
//
// Ground truth lives in manifest.go; detectors never read it.
package cassandra

import (
	"context"

	"wasabi/internal/apps/common"
	"wasabi/internal/trace"
)

// App is a miniature three-node Cassandra ring.
type App struct {
	Config  *common.Config
	Cluster *common.Cluster
	Local   *common.KV // node-local system tables
}

// New constructs a ring with default configuration.
func New() *App {
	return &App{
		Config: common.NewConfig(map[string]string{
			"cassandra.gossip.retries":          "4",
			"cassandra.hints.dispatch.retries":  "3",
			"cassandra.repair.job.attempts":     "5",
			"cassandra.batchlog.replay.retries": "4",
			"cassandra.archive.retries":         "5",
		}),
		Cluster: common.NewCluster("n1", "n2", "n3"),
		Local:   common.NewKV(),
	}
}

// log emits an application log line into the run trace.
func (a *App) log(ctx context.Context, format string, args ...any) {
	trace.Note(ctx, "[cassandra] "+format, args...)
}
