package cassandra

import (
	"context"
	"time"

	"wasabi/internal/apps/common"
	"wasabi/internal/errmodel"
	"wasabi/internal/fault"
	"wasabi/internal/vclock"
)

// Gossiper exchanges cluster state with peers.
type Gossiper struct {
	app *App
}

// NewGossiper returns a gossiper for the ring.
func NewGossiper(app *App) *Gossiper { return &Gossiper{app: app} }

// sendSyn sends one gossip SYN to a peer.
//
// Throws: SocketTimeoutException, IllegalStateException, IllegalArgumentException.
func (g *Gossiper) sendSyn(ctx context.Context, peer string) error {
	if err := fault.Hook(ctx); err != nil {
		return err
	}
	if peer == "" {
		return errmodel.New("IllegalArgumentException", "empty peer")
	}
	return g.app.Cluster.Call(ctx, peer, func(n *common.Node) error {
		n.Store.Put("gossip/last", "syn")
		return nil
	})
}

// SendSyn gossips to a peer with bounded, delayed retry on transient
// timeouts. A shut-down gossiper (IllegalState) or malformed peer
// (IllegalArgument) aborts immediately — the majority policy for both.
func (g *Gossiper) SendSyn(ctx context.Context, peer string) error {
	maxRetries := g.app.Config.GetInt("cassandra.gossip.retries", 4)
	var last error
	for retry := 0; retry < maxRetries; retry++ {
		err := g.sendSyn(ctx, peer)
		if err == nil {
			return nil
		}
		if errmodel.IsClass(err, "IllegalStateException") {
			return err
		}
		if errmodel.IsClass(err, "IllegalArgumentException") {
			return err
		}
		last = err
		vclock.Sleep(ctx, 100*time.Millisecond)
	}
	return last
}

// ReadRepairer reconciles divergent replicas after a digest mismatch.
type ReadRepairer struct {
	app *App
}

// NewReadRepairer returns a repairer.
func NewReadRepairer(app *App) *ReadRepairer { return &ReadRepairer{app: app} }

// repairOnce pushes the reconciled row to a stale replica.
//
// Throws: SocketTimeoutException, IllegalStateException.
func (r *ReadRepairer) repairOnce(ctx context.Context, key string) error {
	if err := fault.Hook(ctx); err != nil {
		return err
	}
	r.app.Local.Put("repaired/"+key, "true")
	return nil
}

// Repair reconciles a key with bounded, delayed retry.
//
// BUG (IF, wrong retry policy — the IllegalStateException retry-ratio
// outlier): a shut-down repair stage raises IllegalStateException, which
// the rest of the codebase treats as final; this loop retries it,
// stalling drain during shutdown.
func (r *ReadRepairer) Repair(ctx context.Context, key string) error {
	maxRetries := r.app.Config.GetInt("cassandra.repair.job.attempts", 5)
	var last error
	for retry := 0; retry < maxRetries; retry++ {
		err := r.repairOnce(ctx, key)
		if err == nil {
			return nil
		}
		last = err
		vclock.Sleep(ctx, 100*time.Millisecond)
	}
	return last
}

// BatchlogReplayer re-applies batches that never got acknowledged.
type BatchlogReplayer struct {
	app *App
}

// NewBatchlogReplayer returns a replayer.
func NewBatchlogReplayer(app *App) *BatchlogReplayer { return &BatchlogReplayer{app: app} }

// replayBatch re-applies one logged batch.
//
// Throws: ConnectException, IllegalArgumentException.
func (b *BatchlogReplayer) replayBatch(ctx context.Context, id string) error {
	if err := fault.Hook(ctx); err != nil {
		return err
	}
	b.app.Local.Put("replayed/"+id, "true")
	return nil
}

// Replay re-applies a batch with bounded, delayed retry.
//
// BUG (IF, wrong retry policy — an IllegalArgumentException retry-ratio
// outlier): a malformed batch is retried along with transient connection
// failures, though it can never succeed.
func (b *BatchlogReplayer) Replay(ctx context.Context, id string) error {
	maxRetries := b.app.Config.GetInt("cassandra.batchlog.replay.retries", 4)
	var last error
	for retry := 0; retry < maxRetries; retry++ {
		err := b.replayBatch(ctx, id)
		if err == nil {
			return nil
		}
		last = err
		vclock.Sleep(ctx, 150*time.Millisecond)
	}
	return last
}
