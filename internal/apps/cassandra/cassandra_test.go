package cassandra

import (
	"context"
	"testing"

	"wasabi/internal/fault"
	"wasabi/internal/trace"
)

func injected(coordinator, retried, exc string, k int) (context.Context, *trace.Run) {
	in := fault.NewInjector([]fault.Rule{{
		Loc: fault.Location{Coordinator: coordinator, Retried: retried, Exception: exc},
		K:   k,
	}})
	run := trace.NewRun("t")
	return fault.With(trace.With(context.Background(), run), in), run
}

// TestStreamRetryUnbounded demonstrates the missing-cap bug.
func TestStreamRetryUnbounded(t *testing.T) {
	app := New()
	ctx, run := injected("cassandra.StreamSession.RetryStream", "cassandra.StreamSession.streamChunk", "SocketTimeoutException", 110)
	s := NewStreamSession(app)
	s.RetryStream(ctx, 0)
	injections := 0
	for _, e := range run.Events() {
		if e.Kind == trace.KindInjection {
			injections++
		}
	}
	if injections != 110 {
		t.Errorf("injections = %d; only healing bounds this loop", injections)
	}
	if s.Streamed != 1 {
		t.Errorf("streamed = %d", s.Streamed)
	}
}

// TestHintsRequeueNoPause demonstrates the missing-delay bug in the
// hinted-handoff queue.
func TestHintsRequeueNoPause(t *testing.T) {
	app := New()
	h := NewHintsDispatcher(app)
	h.Submit("n2")
	ctx, run := injected("cassandra.HintsDispatcher.processHint", "cassandra.HintsDispatcher.deliverHint", "ConnectException", 2)
	if err := h.Drain(ctx); err != nil {
		t.Fatalf("drain should heal: %v", err)
	}
	for _, e := range run.Events() {
		if e.Kind == trace.KindSleep {
			t.Error("no sleep expected before re-enqueue (that is the bug)")
		}
	}
	if h.Delivered != 1 {
		t.Errorf("delivered = %d", h.Delivered)
	}
}

// TestGossipExcludesIllegalState verifies the majority policy side of the
// IllegalStateException ratio.
func TestGossipExcludesIllegalState(t *testing.T) {
	app := New()
	ctx, run := injected("cassandra.Gossiper.SendSyn", "cassandra.Gossiper.sendSyn", "IllegalStateException", 100)
	if err := NewGossiper(app).SendSyn(ctx, "n2"); err == nil {
		t.Fatal("expected immediate failure")
	}
	for _, e := range run.Events() {
		if e.Kind == trace.KindInjection && e.Count > 1 {
			t.Error("IllegalStateException must not be retried by the gossiper")
		}
	}
}

// TestReadRepairRetriesIllegalState demonstrates the outlier side.
func TestReadRepairRetriesIllegalState(t *testing.T) {
	app := New()
	ctx, run := injected("cassandra.ReadRepairer.Repair", "cassandra.ReadRepairer.repairOnce", "IllegalStateException", 2)
	if err := NewReadRepairer(app).Repair(ctx, "k"); err != nil {
		t.Fatalf("should heal: %v", err)
	}
	injections := 0
	for _, e := range run.Events() {
		if e.Kind == trace.KindInjection {
			injections++
		}
	}
	if injections != 2 {
		t.Errorf("injections = %d; IllegalStateException was (wrongly) retried", injections)
	}
}

// TestChores exercises the non-retry housekeeping services.
func TestChores(t *testing.T) {
	app := New()
	ctx := context.Background()
	app.Local.Put("sstablettl/s1", "0")
	app.Local.Put("sstablettl/s2", "99")
	app.Local.Put("sstablettl/s3", "junk")
	ex := NewSSTableExpirer(app)
	ex.ExpireOnce(ctx)
	if ex.Dropped != 1 || ex.Live != 2 {
		t.Errorf("expirer = %+v", ex)
	}
	app.Local.Put("tombstones/t1", "5")
	app.Local.Put("tombstones/t2", "bad")
	tc := NewTombstoneCounter(app)
	tc.CountOnce(ctx)
	if tc.Total != 5 || tc.Bad != 1 {
		t.Errorf("counter = %+v", tc)
	}
	app.Local.Put("peerversion/n1", "4.1.3")
	app.Local.Put("peerversion/n2", "5.0.1")
	pv := NewPeerVersionChecker(app)
	pv.CheckOnce(ctx)
	if !pv.Mixed {
		t.Error("mixed versions not detected")
	}
	app.Local.Put("keycache/k1", "hot")
	ks := NewKeyCacheSaver(app)
	ks.SaveOnce(ctx)
	if ks.Saved != 1 {
		t.Errorf("saver = %+v", ks)
	}
}
