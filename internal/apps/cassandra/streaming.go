package cassandra

import (
	"context"
	"strconv"
	"time"

	"wasabi/internal/apps/common"
	"wasabi/internal/fault"
	"wasabi/internal/vclock"
)

// StreamSession transfers SSTable data between nodes during bootstrap and
// decommission.
type StreamSession struct {
	app *App
	// Streamed counts transferred chunks.
	Streamed int
}

// NewStreamSession returns a session.
func NewStreamSession(app *App) *StreamSession { return &StreamSession{app: app} }

// streamChunk sends one data chunk to the peer.
//
// Throws: SocketTimeoutException.
func (s *StreamSession) streamChunk(ctx context.Context, seq int) error {
	if err := fault.Hook(ctx); err != nil {
		return err
	}
	vclock.Elapse(ctx, time.Millisecond)
	s.app.Local.Put("chunk/"+strconv.Itoa(seq), "sent")
	return nil
}

// RetryStream sends a chunk, retrying until the peer accepts it.
//
// BUG (WHEN, missing cap): bootstrap "must" finish, so chunk sends are
// retried forever (with a pause); a permanently failing peer wedges the
// whole stream session.
func (s *StreamSession) RetryStream(ctx context.Context, seq int) {
	retryWait := 200 * time.Millisecond
	for {
		err := s.streamChunk(ctx, seq)
		if err == nil {
			s.Streamed++
			return
		}
		s.app.log(ctx, "chunk %d failed, retrying: %v", seq, err)
		vclock.Sleep(ctx, retryWait)
	}
}

// hint is a queued hinted-handoff delivery with its own retry budget.
type hint struct {
	target   string
	attempts int
}

// HintsDispatcher delivers stored hints to recovered replicas through a
// queue; failed deliveries are re-submitted.
type HintsDispatcher struct {
	app   *App
	queue *common.Queue[*hint]
	// Delivered counts completed hints.
	Delivered int
}

// NewHintsDispatcher returns a dispatcher with an empty queue.
func NewHintsDispatcher(app *App) *HintsDispatcher {
	return &HintsDispatcher{app: app, queue: common.NewQueue[*hint]()}
}

// Submit enqueues a hint delivery.
func (h *HintsDispatcher) Submit(target string) {
	h.queue.Put(&hint{target: target})
}

// deliverHint sends one hint to its target replica.
//
// Throws: ConnectException.
func (h *HintsDispatcher) deliverHint(ctx context.Context, target string) error {
	if err := fault.Hook(ctx); err != nil {
		return err
	}
	return h.app.Cluster.Call(ctx, target, func(n *common.Node) error {
		n.Store.Put("hint/applied", "true")
		return nil
	})
}

// processHint handles one queued delivery: failures re-submit the hint
// for retry up to its budget.
//
// BUG (WHEN, missing delay): the hint is re-enqueued immediately, so the
// dispatcher hammers a replica that is still coming back up.
func (h *HintsDispatcher) processHint(ctx context.Context, hi *hint) error {
	maxRetries := h.app.Config.GetInt("cassandra.hints.dispatch.retries", 3)
	if err := h.deliverHint(ctx, hi.target); err != nil {
		if hi.attempts < maxRetries {
			hi.attempts++
			h.queue.Put(hi) // re-submit with no pause
			return nil
		}
		return err
	}
	h.Delivered++
	return nil
}

// Drain processes queued hints until empty.
func (h *HintsDispatcher) Drain(ctx context.Context) error {
	for {
		hi, ok := h.queue.Take()
		if !ok {
			return nil
		}
		if err := h.processHint(ctx, hi); err != nil {
			return err
		}
	}
}

// CommitLogArchiver copies commit-log segments to the archive location.
type CommitLogArchiver struct {
	app *App
}

// NewCommitLogArchiver returns an archiver.
func NewCommitLogArchiver(app *App) *CommitLogArchiver { return &CommitLogArchiver{app: app} }

// archiveSegment copies one segment.
//
// Throws: IOException.
func (c *CommitLogArchiver) archiveSegment(ctx context.Context, segment string) error {
	if err := fault.Hook(ctx); err != nil {
		return err
	}
	c.app.Local.Put("archive/"+segment, "true")
	return nil
}

// Archive copies a segment with bounded retry.
//
// BUG (WHEN, missing delay): archive attempts are issued back to back
// against the (possibly overloaded) archive volume.
func (c *CommitLogArchiver) Archive(ctx context.Context, segment string) error {
	maxRetries := c.app.Config.GetInt("cassandra.archive.retries", 5)
	var last error
	for retry := 0; retry < maxRetries; retry++ {
		err := c.archiveSegment(ctx, segment)
		if err == nil {
			return nil
		}
		last = err
	}
	return last
}

// Repair job states.
const (
	repairSnapshot = iota
	repairMerkle
	repairSync
	repairDone
)

// RepairJob runs anti-entropy repair as a state-machine procedure —
// correct: each state retries in place with backoff up to a cap.
type RepairJob struct {
	app      *App
	keyspace string
	state    int
	attempts int
}

// NewRepairJob returns a repair job for a keyspace.
func NewRepairJob(app *App, keyspace string) *RepairJob {
	return &RepairJob{app: app, keyspace: keyspace}
}

// Name implements common.Procedure.
func (r *RepairJob) Name() string { return "repair-" + r.keyspace }

// snapshotReplicas snapshots the keyspace on all replicas.
//
// Throws: SocketTimeoutException.
func (r *RepairJob) snapshotReplicas(ctx context.Context) error {
	if err := fault.Hook(ctx); err != nil {
		return err
	}
	r.app.Local.Put("snapshot/"+r.keyspace, "taken")
	return nil
}

// syncRanges streams mismatching ranges between replicas.
//
// Throws: ConnectException.
func (r *RepairJob) syncRanges(ctx context.Context) error {
	if err := fault.Hook(ctx); err != nil {
		return err
	}
	r.app.Local.Put("synced/"+r.keyspace, "true")
	return nil
}

// Step implements common.Procedure.
func (r *RepairJob) Step(ctx context.Context) (bool, error) {
	maxRetryAttempts := r.app.Config.GetInt("cassandra.repair.job.attempts", 5)
	retryStep := func(err error) (bool, error) {
		r.attempts++
		if r.attempts >= maxRetryAttempts {
			return false, err
		}
		vclock.Sleep(ctx, vclock.Backoff(100*time.Millisecond, r.attempts-1, time.Second))
		return false, nil
	}
	switch r.state {
	case repairSnapshot:
		if err := r.snapshotReplicas(ctx); err != nil {
			return retryStep(err)
		}
		r.state, r.attempts = repairMerkle, 0
	case repairMerkle:
		r.app.Local.Put("merkle/"+r.keyspace, "computed")
		r.state = repairSync
	case repairSync:
		if err := r.syncRanges(ctx); err != nil {
			return retryStep(err)
		}
		r.state = repairDone
	case repairDone:
		return true, nil
	}
	return r.state == repairDone, nil
}
