// Package meta defines the ground-truth manifest of the corpus — the
// reproduction's stand-in for the paper's manual inspection in §4.
//
// Every corpus application exports a manifest describing its retry code
// structures: where they are, which mechanism they use, how their trigger
// is encoded, and which (if any) retry bug each one contains. The manifest
// plays the role of the paper authors' *manual inspection*: WASABI's
// detectors never read it — they analyze source code and test executions —
// and the evaluation harness scores detector reports against it to compute
// the true-bug and false-positive counts of Tables 3, 4 and Figure 3.
package meta

import (
	"fmt"
	"strings"
)

// Mechanism classifies how a retry structure re-executes work (§2.5).
type Mechanism string

const (
	// Loop is simple loop-based retry (≈70% of corpus structures).
	Loop Mechanism = "loop"
	// Queue is asynchronous task re-enqueueing.
	Queue Mechanism = "queue"
	// StateMachine is framework-driven re-execution of a procedure state.
	StateMachine Mechanism = "statemachine"
)

// Trigger classifies how task errors reach the retry decision.
type Trigger string

const (
	// Exception triggers are typed exceptions caught by the coordinator
	// (70% of the paper's study; the only kind WASABI can inject).
	Exception Trigger = "exception"
	// ErrorCode triggers are status codes inspected by the coordinator;
	// out of scope for WASABI's exception injection (§4.2).
	ErrorCode Trigger = "errorcode"
)

// Bug labels a structure's ground-truth defect, if any.
type Bug string

const (
	// None marks a correct retry structure.
	None Bug = ""
	// MissingCap marks unbounded retry (WHEN, §2.3.2).
	MissingCap Bug = "missing-cap"
	// MissingDelay marks back-to-back retry without delay (WHEN, §2.3.1).
	MissingDelay Bug = "missing-delay"
	// How marks a defect in retry execution (state reset, job tracking;
	// §2.4) that manifests when a fault strikes once.
	How Bug = "how"
	// WrongPolicyNotRetried marks a recoverable error that is not retried
	// (IF, §2.2.1).
	WrongPolicyNotRetried Bug = "if-not-retried"
	// WrongPolicyRetried marks a non-recoverable error that is retried
	// (IF, §2.2.1).
	WrongPolicyRetried Bug = "if-retried"
)

// Structure describes one retry code structure in the corpus.
type Structure struct {
	// App is the application short code: HA, HD, MA, YA, HB, HI, CA, EL.
	App string
	// Coordinator is the method implementing the retry decision, in
	// "pkg.Type.method" form matching runtime stack normalization.
	Coordinator string
	// Retried lists the retried methods invoked by the coordinator that
	// carry fault hooks (empty for error-code structures).
	Retried []string
	// File is the source file basename implementing the coordinator.
	File string

	Mechanism Mechanism
	Trigger   Trigger

	// Keyworded reports whether the structure carries a retry-ish
	// identifier or literal, making it detectable by the CodeQL-style
	// analysis (§3.1.1 technique 1).
	Keyworded bool

	// Bug is the ground-truth defect class.
	Bug Bug

	// DelayUnneeded marks structures that retry without delay but
	// compensate between attempts (e.g. switching replicas), so a
	// missing-delay report against them is a false positive (§4.3).
	DelayUnneeded bool

	// HarnessRetried marks structures whose cap is correct but whose
	// callers re-drive them for many independent tasks in one run, so a
	// 100-injection missing-cap report is a false positive (§4.3).
	HarnessRetried bool

	// WrapsErrors marks structures that wrap caught exceptions in a
	// general application exception before propagating, the source of
	// "different exception" oracle false positives (§4.3).
	WrapsErrors bool

	// Note documents the bug or the real-world issue it is modeled on.
	Note string
}

// HasBug reports whether the structure carries any ground-truth defect.
func (s Structure) HasBug() bool { return s.Bug != None }

// Key returns a unique identifier for the structure.
func (s Structure) Key() string { return s.App + "/" + s.Coordinator }

// CountByMechanism tallies structures per mechanism.
func CountByMechanism(list []Structure) map[Mechanism]int {
	out := make(map[Mechanism]int)
	for _, s := range list {
		out[s.Mechanism]++
	}
	return out
}

// CountByTrigger tallies structures per trigger encoding.
func CountByTrigger(list []Structure) map[Trigger]int {
	out := make(map[Trigger]int)
	for _, s := range list {
		out[s.Trigger]++
	}
	return out
}

// CountByBug tallies structures per ground-truth bug class; correct
// structures count under None.
func CountByBug(list []Structure) map[Bug]int {
	out := make(map[Bug]int)
	for _, s := range list {
		out[s.Bug]++
	}
	return out
}

// CountKeyworded returns how many structures carry a retry keyword.
func CountKeyworded(list []Structure) int {
	n := 0
	for _, s := range list {
		if s.Keyworded {
			n++
		}
	}
	return n
}

// CountFlags returns the false-positive-source flag tallies.
func CountFlags(list []Structure) (harnessRetried, delayUnneeded, wrapsErrors int) {
	for _, s := range list {
		if s.HarnessRetried {
			harnessRetried++
		}
		if s.DelayUnneeded {
			delayUnneeded++
		}
		if s.WrapsErrors {
			wrapsErrors++
		}
	}
	return harnessRetried, delayUnneeded, wrapsErrors
}

// AppCount is one application's manifest tallies — a row of the
// per-application composition table in docs/CORPUS.md.
type AppCount struct {
	Code       string
	Structures int
	Loop       int
	Queue      int
	SM         int
	Exception  int
	ErrCode    int
	Keyworded  int
	Buggy      int
}

// CountApp tallies one application's structures (matched by App code,
// so the full corpus manifest can be passed) into a table row.
func CountApp(code string, list []Structure) AppCount {
	row := AppCount{Code: code}
	for _, s := range list {
		if s.App != code {
			continue
		}
		row.Structures++
		switch s.Mechanism {
		case Loop:
			row.Loop++
		case Queue:
			row.Queue++
		case StateMachine:
			row.SM++
		}
		switch s.Trigger {
		case Exception:
			row.Exception++
		case ErrorCode:
			row.ErrCode++
		}
		if s.Keyworded {
			row.Keyworded++
		}
		if s.HasBug() {
			row.Buggy++
		}
	}
	return row
}

// CompositionTable renders rows as the markdown composition table of
// docs/CORPUS.md, byte-for-byte (so the docs-check drift gate can verify
// the documented table is computed from the manifests themselves).
func CompositionTable(rows []AppCount) string {
	var b strings.Builder
	b.WriteString("| App | Structures | Loop | Queue | SM | Exception | ErrCode | Keyworded | Buggy |\n")
	b.WriteString("|-----|-----------:|-----:|------:|---:|----------:|--------:|----------:|------:|\n")
	var sum AppCount
	for _, r := range rows {
		fmt.Fprintf(&b, "| %-3s | %2d | %2d | %2d | %d | %2d | %2d | %2d | %2d |\n",
			r.Code, r.Structures, r.Loop, r.Queue, r.SM, r.Exception, r.ErrCode, r.Keyworded, r.Buggy)
		sum.Structures += r.Structures
		sum.Loop += r.Loop
		sum.Queue += r.Queue
		sum.SM += r.SM
		sum.Exception += r.Exception
		sum.ErrCode += r.ErrCode
		sum.Keyworded += r.Keyworded
		sum.Buggy += r.Buggy
	}
	fmt.Fprintf(&b, "| **Σ** | **%d** | **%d** | **%d** | **%d** | **%d** | **%d** | **%d** | **%d** |\n",
		sum.Structures, sum.Loop, sum.Queue, sum.SM, sum.Exception, sum.ErrCode, sum.Keyworded, sum.Buggy)
	return b.String()
}

// Filter returns the structures for which keep returns true.
func Filter(list []Structure, keep func(Structure) bool) []Structure {
	var out []Structure
	for _, s := range list {
		if keep(s) {
			out = append(out, s)
		}
	}
	return out
}
