// Package meta defines the ground-truth manifest of the corpus — the
// reproduction's stand-in for the paper's manual inspection in §4.
//
// Every corpus application exports a manifest describing its retry code
// structures: where they are, which mechanism they use, how their trigger
// is encoded, and which (if any) retry bug each one contains. The manifest
// plays the role of the paper authors' *manual inspection*: WASABI's
// detectors never read it — they analyze source code and test executions —
// and the evaluation harness scores detector reports against it to compute
// the true-bug and false-positive counts of Tables 3, 4 and Figure 3.
package meta

// Mechanism classifies how a retry structure re-executes work (§2.5).
type Mechanism string

const (
	// Loop is simple loop-based retry (≈70% of corpus structures).
	Loop Mechanism = "loop"
	// Queue is asynchronous task re-enqueueing.
	Queue Mechanism = "queue"
	// StateMachine is framework-driven re-execution of a procedure state.
	StateMachine Mechanism = "statemachine"
)

// Trigger classifies how task errors reach the retry decision.
type Trigger string

const (
	// Exception triggers are typed exceptions caught by the coordinator
	// (70% of the paper's study; the only kind WASABI can inject).
	Exception Trigger = "exception"
	// ErrorCode triggers are status codes inspected by the coordinator;
	// out of scope for WASABI's exception injection (§4.2).
	ErrorCode Trigger = "errorcode"
)

// Bug labels a structure's ground-truth defect, if any.
type Bug string

const (
	// None marks a correct retry structure.
	None Bug = ""
	// MissingCap marks unbounded retry (WHEN, §2.3.2).
	MissingCap Bug = "missing-cap"
	// MissingDelay marks back-to-back retry without delay (WHEN, §2.3.1).
	MissingDelay Bug = "missing-delay"
	// How marks a defect in retry execution (state reset, job tracking;
	// §2.4) that manifests when a fault strikes once.
	How Bug = "how"
	// WrongPolicyNotRetried marks a recoverable error that is not retried
	// (IF, §2.2.1).
	WrongPolicyNotRetried Bug = "if-not-retried"
	// WrongPolicyRetried marks a non-recoverable error that is retried
	// (IF, §2.2.1).
	WrongPolicyRetried Bug = "if-retried"
)

// Structure describes one retry code structure in the corpus.
type Structure struct {
	// App is the application short code: HA, HD, MA, YA, HB, HI, CA, EL.
	App string
	// Coordinator is the method implementing the retry decision, in
	// "pkg.Type.method" form matching runtime stack normalization.
	Coordinator string
	// Retried lists the retried methods invoked by the coordinator that
	// carry fault hooks (empty for error-code structures).
	Retried []string
	// File is the source file basename implementing the coordinator.
	File string

	Mechanism Mechanism
	Trigger   Trigger

	// Keyworded reports whether the structure carries a retry-ish
	// identifier or literal, making it detectable by the CodeQL-style
	// analysis (§3.1.1 technique 1).
	Keyworded bool

	// Bug is the ground-truth defect class.
	Bug Bug

	// DelayUnneeded marks structures that retry without delay but
	// compensate between attempts (e.g. switching replicas), so a
	// missing-delay report against them is a false positive (§4.3).
	DelayUnneeded bool

	// HarnessRetried marks structures whose cap is correct but whose
	// callers re-drive them for many independent tasks in one run, so a
	// 100-injection missing-cap report is a false positive (§4.3).
	HarnessRetried bool

	// WrapsErrors marks structures that wrap caught exceptions in a
	// general application exception before propagating, the source of
	// "different exception" oracle false positives (§4.3).
	WrapsErrors bool

	// Note documents the bug or the real-world issue it is modeled on.
	Note string
}

// HasBug reports whether the structure carries any ground-truth defect.
func (s Structure) HasBug() bool { return s.Bug != None }

// Key returns a unique identifier for the structure.
func (s Structure) Key() string { return s.App + "/" + s.Coordinator }

// CountByMechanism tallies structures per mechanism.
func CountByMechanism(list []Structure) map[Mechanism]int {
	out := make(map[Mechanism]int)
	for _, s := range list {
		out[s.Mechanism]++
	}
	return out
}

// Filter returns the structures for which keep returns true.
func Filter(list []Structure, keep func(Structure) bool) []Structure {
	var out []Structure
	for _, s := range list {
		if keep(s) {
			out = append(out, s)
		}
	}
	return out
}
