package elastic

import (
	"context"
	"strconv"
	"time"

	"wasabi/internal/apps/common"
	"wasabi/internal/vclock"
)

// This file holds Elasticsearch's status-code-driven machinery: bulk
// flushing (HTTP 429 back-pressure), snapshotting, shard allocation, ILM
// steps, and reindexing. Their retry decisions inspect STATUS CODES, not
// exceptions, so WASABI's exception injection cannot exercise them (§4.2)
// — these structures are why EL has the lowest tested ratio in Table 5.
// The file is also intentionally large enough to exceed the LLM's
// comprehension threshold (§4.2).

// Bulk flush status codes (modeled on HTTP responses).
const (
	bulkOK          = 200
	bulkTooMany     = 429
	bulkBadRequest  = 400
	bulkUnavailable = 503
)

// BulkProcessor accumulates documents and flushes them in batches.
type BulkProcessor struct {
	app     *App
	pending []string
	statusF func(batch int, attempt int) int
	// Flushed counts successfully flushed batches.
	Flushed int
}

// NewBulkProcessor returns a processor whose flushes always succeed;
// tests replace statusF to simulate back-pressure.
func NewBulkProcessor(app *App) *BulkProcessor {
	return &BulkProcessor{
		app:     app,
		statusF: func(int, int) int { return bulkOK },
	}
}

// SetStatusSource replaces the flush status source.
func (b *BulkProcessor) SetStatusSource(f func(batch, attempt int) int) { b.statusF = f }

// Add buffers a document for the next flush.
func (b *BulkProcessor) Add(docID string) { b.pending = append(b.pending, docID) }

// Flush sends the pending batch. A 429 (too many requests) is
// back-pressure: the flush is re-sent after an exponential pause, up to
// the configured attempt cap. A 400 is a client error and final.
func (b *BulkProcessor) Flush(ctx context.Context, batch int) int {
	maxAttempts := b.app.Config.GetInt("es.reindex.batch.attempts", 3)
	for attempt := 0; attempt < maxAttempts; attempt++ {
		status := b.statusF(batch, attempt)
		switch status {
		case bulkOK:
			b.Flushed++
			b.pending = nil
			return bulkOK
		case bulkBadRequest:
			b.app.log(ctx, "batch %d rejected as malformed", batch)
			return bulkBadRequest
		case bulkTooMany, bulkUnavailable:
			b.app.log(ctx, "batch %d back-pressured (%d), resending", batch, status)
			vclock.Sleep(ctx, vclock.Backoff(100*time.Millisecond, attempt, 2*time.Second))
		}
	}
	return bulkTooMany
}

// snapshotWork is a queued snapshot request carrying a status outcome.
type snapshotWork struct {
	repo     string
	requeues int
}

// Snapshot status codes.
const (
	snapOK       = "SUCCESS"
	snapThrottle = "THROTTLED"
	snapMissing  = "REPO_MISSING"
)

// SnapshotRunner executes snapshot requests from a queue; throttled
// requests are re-queued after a pause.
type SnapshotRunner struct {
	app     *App
	queue   *common.Queue[*snapshotWork]
	statusF func(repo string) string
	// Taken counts completed snapshots; Failed lists abandoned repos.
	Taken  int
	Failed []string
}

// NewSnapshotRunner returns a runner whose repository always accepts;
// tests replace statusF.
func NewSnapshotRunner(app *App) *SnapshotRunner {
	return &SnapshotRunner{
		app:     app,
		queue:   common.NewQueue[*snapshotWork](),
		statusF: func(string) string { return snapOK },
	}
}

// SetStatusSource replaces the repository status source.
func (s *SnapshotRunner) SetStatusSource(f func(string) string) { s.statusF = f }

// Enqueue adds a snapshot request.
func (s *SnapshotRunner) Enqueue(repo string) {
	s.queue.Put(&snapshotWork{repo: repo})
}

// Drain executes queued snapshots until empty: THROTTLED re-queues the
// request up to a bounded number of times; REPO_MISSING is final.
func (s *SnapshotRunner) Drain(ctx context.Context) {
	const maxRequeues = 3
	for {
		w, ok := s.queue.Take()
		if !ok {
			return
		}
		switch status := s.statusF(w.repo); status {
		case snapOK:
			s.Taken++
			s.app.State.Put("snapshot/"+w.repo, "done")
		case snapThrottle:
			if w.requeues < maxRequeues {
				w.requeues++
				vclock.Sleep(ctx, 200*time.Millisecond)
				s.queue.Put(w)
				continue
			}
			s.Failed = append(s.Failed, w.repo)
		case snapMissing:
			s.Failed = append(s.Failed, w.repo)
		}
	}
}

// ReindexWorker copies documents between indices in batches.
type ReindexWorker struct {
	app     *App
	statusF func(batch, attempt int) int
	// Copied counts copied batches.
	Copied int
}

// NewReindexWorker returns a worker whose batches always land; tests
// replace statusF.
func NewReindexWorker(app *App) *ReindexWorker {
	return &ReindexWorker{
		app:     app,
		statusF: func(int, int) int { return bulkOK },
	}
}

// SetStatusSource replaces the batch status source.
func (w *ReindexWorker) SetStatusSource(f func(batch, attempt int) int) { w.statusF = f }

// Run copies n batches; a back-pressured batch (429) is re-sent after a
// pause up to the configured attempt budget, then the whole reindex
// fails.
func (w *ReindexWorker) Run(ctx context.Context, n int) bool {
	maxAttempts := w.app.Config.GetInt("es.reindex.batch.attempts", 3)
	for batch := 0; batch < n; batch++ {
		sent := false
		for attempt := 0; attempt < maxAttempts; attempt++ {
			status := w.statusF(batch, attempt)
			if status == bulkOK {
				w.Copied++
				w.app.State.Put("reindex/batch/"+strconv.Itoa(batch), "copied")
				sent = true
				break
			}
			w.app.log(ctx, "reindex batch %d back-pressured (%d)", batch, status)
			vclock.Sleep(ctx, 100*time.Millisecond)
		}
		if !sent {
			return false
		}
	}
	return true
}
