package elastic

import (
	"context"
	"strconv"
	"strings"
)

// Housekeeping chores of the Elasticsearch miniature: per-item iteration
// with error tolerance — structural retry look-alikes the retry-naming
// filter prunes (§4.4).

// IndexStatsCollector aggregates per-index document counts.
type IndexStatsCollector struct {
	app *App
	// Docs is the aggregate count; Bad counts unreadable records.
	Docs, Bad int
}

// NewIndexStatsCollector returns a collector.
func NewIndexStatsCollector(app *App) *IndexStatsCollector { return &IndexStatsCollector{app: app} }

// read parses one index's doc-count record.
func (c *IndexStatsCollector) read(key string) (int, error) {
	v, _ := c.app.State.Get(key)
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, &parseError{token: "doc count " + key}
	}
	return n, nil
}

// CollectOnce walks every index once.
func (c *IndexStatsCollector) CollectOnce(ctx context.Context) {
	for _, key := range c.app.State.ListPrefix("docs/") {
		n, err := c.read(key)
		if err != nil {
			c.app.log(ctx, "stats collect: %v", err)
			c.Bad++
			continue
		}
		c.Docs += n
	}
}

// DanglingIndexSweeper imports or drops indices found on disk but absent
// from the cluster state.
type DanglingIndexSweeper struct {
	app *App
	// Imported and Dropped count pass outcomes.
	Imported, Dropped int
}

// NewDanglingIndexSweeper returns a sweeper.
func NewDanglingIndexSweeper(app *App) *DanglingIndexSweeper {
	return &DanglingIndexSweeper{app: app}
}

// classify decides one dangling index's fate.
func (d *DanglingIndexSweeper) classify(key string) (string, error) {
	v, _ := d.app.State.Get(key)
	switch v {
	case "importable":
		return "import", nil
	case "tombstoned":
		return "drop", nil
	}
	return "", &parseError{token: "unknown dangling state " + v}
}

// SweepOnce walks every dangling index once.
func (d *DanglingIndexSweeper) SweepOnce(ctx context.Context) {
	for _, key := range d.app.State.ListPrefix("dangling/") {
		action, err := d.classify(key)
		if err != nil {
			d.app.log(ctx, "dangling sweep skipping %s: %v", key, err)
			continue
		}
		if action == "import" {
			d.Imported++
		} else {
			d.app.State.Delete(key)
			d.Dropped++
		}
	}
}

// TemplateAuditor validates index templates.
type TemplateAuditor struct {
	app *App
	// Invalid lists malformed templates.
	Invalid []string
}

// NewTemplateAuditor returns an auditor.
func NewTemplateAuditor(app *App) *TemplateAuditor { return &TemplateAuditor{app: app} }

// validate checks one template's pattern list.
func (t *TemplateAuditor) validate(key string) error {
	v, _ := t.app.State.Get(key)
	if v == "" {
		return &parseError{token: key + " has no patterns"}
	}
	for _, pat := range strings.Split(v, ",") {
		if pat == "" {
			return &parseError{token: key + " has an empty pattern"}
		}
	}
	return nil
}

// AuditOnce walks every template once.
func (t *TemplateAuditor) AuditOnce(ctx context.Context) {
	for _, key := range t.app.State.ListPrefix("template/") {
		if err := t.validate(key); err != nil {
			t.app.log(ctx, "template audit: %v", err)
			t.Invalid = append(t.Invalid, key)
			continue
		}
	}
}

// TaskResultPurger deletes completed task results past retention.
type TaskResultPurger struct {
	app *App
	// Purged counts removed results.
	Purged int
}

// NewTaskResultPurger returns a purger.
func NewTaskResultPurger(app *App) *TaskResultPurger { return &TaskResultPurger{app: app} }

// expired parses one result's age record.
func (p *TaskResultPurger) expired(key string) (bool, error) {
	v, _ := p.app.State.Get(key)
	days, err := strconv.Atoi(v)
	if err != nil {
		return false, &parseError{token: "unreadable result age " + key}
	}
	return days > 30, nil
}

// PurgeOnce walks every stored result once.
func (p *TaskResultPurger) PurgeOnce(ctx context.Context) {
	for _, key := range p.app.State.ListPrefix("taskresult/") {
		old, err := p.expired(key)
		if err != nil {
			p.app.log(ctx, "result purge skipping %s: %v", key, err)
			continue
		}
		if old {
			p.app.State.Delete(key)
			p.Purged++
		}
	}
}

// BreakerReset clears tripped field-data circuit breakers.
type BreakerReset struct {
	app *App
	// Reset and Healthy count pass outcomes.
	Reset, Healthy int
}

// NewBreakerReset returns a resetter.
func NewBreakerReset(app *App) *BreakerReset { return &BreakerReset{app: app} }

// resetIfTripped clears one breaker.
func (b *BreakerReset) resetIfTripped(key string) error {
	v, ok := b.app.State.Get(key)
	if !ok {
		return &parseError{token: "breaker " + key + " vanished"}
	}
	if v != "tripped" {
		return nil
	}
	b.app.State.Put(key, "closed")
	b.Reset++
	return nil
}

// ResetOnce walks every breaker once.
func (b *BreakerReset) ResetOnce(ctx context.Context) {
	for _, key := range b.app.State.ListPrefix("breaker/") {
		if err := b.resetIfTripped(key); err != nil {
			b.app.log(ctx, "breaker reset: %v", err)
			continue
		}
		b.Healthy++
	}
}
