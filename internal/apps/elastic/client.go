package elastic

import (
	"context"
	"time"

	"wasabi/internal/apps/common"
	"wasabi/internal/errmodel"
	"wasabi/internal/fault"
	"wasabi/internal/vclock"
)

// TransportClient sends node-to-node transport requests.
type TransportClient struct {
	app *App
}

// NewTransportClient returns a client.
func NewTransportClient(app *App) *TransportClient { return &TransportClient{app: app} }

// sendOnce delivers one transport request.
//
// Throws: ConnectException, IllegalArgumentException.
func (t *TransportClient) sendOnce(ctx context.Context, node, action string) error {
	if err := fault.Hook(ctx); err != nil {
		return err
	}
	if action == "" {
		return errmodel.New("IllegalArgumentException", "empty action")
	}
	return t.app.Cluster.Call(ctx, node, func(n *common.Node) error {
		n.Store.Put("action/last", action)
		return nil
	})
}

// Send delivers a request with bounded, delayed retry; a malformed action
// is the caller's fault and aborts immediately.
func (t *TransportClient) Send(ctx context.Context, node, action string) error {
	maxRetries := t.app.Config.GetInt("es.transport.retries", 4)
	var last error
	for retry := 0; retry < maxRetries; retry++ {
		err := t.sendOnce(ctx, node, action)
		if err == nil {
			return nil
		}
		if errmodel.IsClass(err, "IllegalArgumentException") {
			return err
		}
		last = err
		vclock.Sleep(ctx, vclock.Backoff(50*time.Millisecond, retry, time.Second))
	}
	return last
}

// BulkRetrier indexes single documents on behalf of the bulk pipeline.
type BulkRetrier struct {
	app *App
}

// NewBulkRetrier returns a retrier.
func NewBulkRetrier(app *App) *BulkRetrier { return &BulkRetrier{app: app} }

// indexOnce indexes one document.
//
// Throws: SocketTimeoutException.
func (b *BulkRetrier) indexOnce(ctx context.Context, docID string) error {
	if err := fault.Hook(ctx); err != nil {
		return err
	}
	b.app.State.Put("doc/"+docID, "indexed")
	return nil
}

// IndexDoc indexes a document with a small bounded retry and pause. The
// cap is correct; the bulk pipeline re-drives IndexDoc per document over
// large batches and tolerates failures — the caller-level re-driving that
// becomes a missing-cap false positive (§4.3).
func (b *BulkRetrier) IndexDoc(ctx context.Context, docID string) error {
	maxRetries := b.app.Config.GetInt("es.bulk.retries", 3)
	var last error
	for retry := 0; retry < maxRetries; retry++ {
		err := b.indexOnce(ctx, docID)
		if err == nil {
			return nil
		}
		last = err
		vclock.Sleep(ctx, 50*time.Millisecond)
	}
	return last
}

// WatcherService manages scheduled watches.
type WatcherService struct {
	app *App
}

// NewWatcherService returns a service.
func NewWatcherService(app *App) *WatcherService { return &WatcherService{app: app} }

// loadWatches reads the watch definitions from the system index.
//
// Throws: EOFException.
func (w *WatcherService) loadWatches(ctx context.Context) (int, error) {
	if err := fault.Hook(ctx); err != nil {
		return 0, err
	}
	return len(w.app.State.ListPrefix("watch/")), nil
}

// Reload re-reads watch definitions, re-attempting transient read
// failures up to the configured cap.
//
// BUG (WHEN, missing delay): reload attempts hit the system index back to
// back.
func (w *WatcherService) Reload(ctx context.Context) (int, error) {
	maxRetries := w.app.Config.GetInt("es.watcher.reload.retries", 5)
	var last error
	for retry := 0; retry < maxRetries; retry++ {
		n, err := w.loadWatches(ctx)
		if err == nil {
			return n, nil
		}
		last = err
	}
	return 0, last
}

// AnalyticsJob is a long-running analytics computation whose results are
// periodically persisted. Jobs can be cancelled by the user.
type AnalyticsJob struct {
	ID        string
	Cancelled bool
}

// ResultsPersister stores analytics job results.
type ResultsPersister struct {
	app *App
	// Persisted counts stored result sets.
	Persisted int
}

// NewResultsPersister returns a persister.
func NewResultsPersister(app *App) *ResultsPersister { return &ResultsPersister{app: app} }

// writeResults stores one result set.
//
// Throws: IOException.
func (p *ResultsPersister) writeResults(ctx context.Context, job *AnalyticsJob) error {
	if err := fault.Hook(ctx); err != nil {
		return err
	}
	if job.Cancelled {
		return errmodel.Newf("ServiceException", "job %s cancelled", job.ID)
	}
	p.app.State.Put("results/"+job.ID, "persisted")
	return nil
}

// PersistResults stores a job's results with bounded, delayed retry.
//
// BUG (IF, wrong retry policy — ELASTIC-53687): a cancellation failure is
// bundled with recoverable I/O errors, so the persister keeps re-writing
// results for a job the user already cancelled, wasting the retry budget
// and cluster resources. (In the real issue the retry was indefinite.)
func (p *ResultsPersister) PersistResults(ctx context.Context, job *AnalyticsJob) error {
	maxRetries := p.app.Config.GetInt("es.persister.retries", 6)
	var last error
	for retry := 0; retry < maxRetries; retry++ {
		err := p.writeResults(ctx, job)
		if err == nil {
			p.Persisted++
			return nil
		}
		last = err
		vclock.Sleep(ctx, 200*time.Millisecond)
	}
	return last
}

// MasterElection joins this node to the master quorum.
type MasterElection struct {
	app *App
}

// NewMasterElection returns an election handle.
func NewMasterElection(app *App) *MasterElection { return &MasterElection{app: app} }

// requestVote asks the current quorum for a vote.
//
// Throws: ConnectException.
func (m *MasterElection) requestVote(ctx context.Context) error {
	if err := fault.Hook(ctx); err != nil {
		return err
	}
	m.app.State.Put("master/joined", "true")
	return nil
}

// JoinLoop keeps requesting votes until the node joins.
//
// BUG (WHEN, missing cap): the node must eventually join, so vote
// requests retry forever (with a pause); a persistent quorum failure
// wedges startup here.
func (m *MasterElection) JoinLoop(ctx context.Context) {
	retryDelay := 250 * time.Millisecond
	for {
		err := m.requestVote(ctx)
		if err == nil {
			return
		}
		m.app.log(ctx, "vote request failed: %v", err)
		vclock.Sleep(ctx, retryDelay)
	}
}

// RecoveryTarget pulls shard data from the primary during recovery.
type RecoveryTarget struct {
	app *App
}

// NewRecoveryTarget returns a target.
func NewRecoveryTarget(app *App) *RecoveryTarget { return &RecoveryTarget{app: app} }

// pullSegment copies one shard segment from the primary.
//
// Throws: SocketTimeoutException, EOFException.
func (r *RecoveryTarget) pullSegment(ctx context.Context, shard string) error {
	if err := fault.Hook(ctx); err != nil {
		return err
	}
	r.app.State.Put("recovered/"+shard, "true")
	return nil
}

// Recover pulls a shard with bounded, delayed retry — a correct loop,
// though no unit test exercises it (coverage hole).
func (r *RecoveryTarget) Recover(ctx context.Context, shard string) error {
	maxRetries := r.app.Config.GetInt("es.recovery.retries", 4)
	var last error
	for retry := 0; retry < maxRetries; retry++ {
		err := r.pullSegment(ctx, shard)
		if err == nil {
			return nil
		}
		last = err
		vclock.Sleep(ctx, vclock.Backoff(100*time.Millisecond, retry, 2*time.Second))
	}
	return last
}
