package elastic

import (
	"context"
	"strconv"
	"strings"
	"time"

	"wasabi/internal/vclock"
)

// Non-retry Elasticsearch code: request parsing (with retry-named
// parameters — the paper's exact object-parsing FP for both CodeQL and
// GPT-4, §4.2) and cluster-health polling.

// UpdateRequest is a parsed _update request.
type UpdateRequest struct {
	Index           string
	DocID           string
	RetryOnConflict int
	Upsert          bool
}

// ParseUpdateRequest parses token streams such as
// "index=logs&id=7&retry_on_conflict=3&upsert=true". Token-by-token
// parsing; the retryOnConflict token is data, not behaviour.
func ParseUpdateRequest(raw string) (UpdateRequest, error) {
	req := UpdateRequest{RetryOnConflict: 0}
	for _, token := range strings.Split(raw, "&") {
		if token == "" {
			continue
		}
		parts := strings.SplitN(token, "=", 2)
		if len(parts) != 2 {
			return req, &parseError{token: token}
		}
		switch parts[0] {
		case "index":
			req.Index = parts[1]
		case "id":
			req.DocID = parts[1]
		case "retry_on_conflict":
			n, err := strconv.Atoi(parts[1])
			if err != nil {
				return req, &parseError{token: token}
			}
			req.RetryOnConflict = n
		case "upsert":
			req.Upsert = parts[1] == "true"
		default:
			return req, &parseError{token: token}
		}
	}
	if req.Index == "" {
		return req, &parseError{token: "missing index"}
	}
	return req, nil
}

type parseError struct{ token string }

func (e *parseError) Error() string { return "bad update request token: " + e.token }

// HealthPoller waits for the cluster to reach a target status.
type HealthPoller struct {
	app *App
}

// NewHealthPoller returns a poller.
func NewHealthPoller(app *App) *HealthPoller { return &HealthPoller{app: app} }

// WaitForGreen polls cluster health until it is green or the poll budget
// runs out — status polling, not retry.
func (h *HealthPoller) WaitForGreen(ctx context.Context, polls int) bool {
	for i := 0; i < polls; i++ {
		if v, _ := h.app.State.Get("cluster/health"); v == "green" || v == "" {
			return true
		}
		vclock.Sleep(ctx, 100*time.Millisecond)
	}
	return false
}

// SettingsValidator rejects invalid index settings maps.
type SettingsValidator struct{}

// Validate checks each setting entry once, reporting the first error.
func (SettingsValidator) Validate(settings map[string]string) error {
	for k, v := range settings {
		if k == "" {
			return &parseError{token: "empty key"}
		}
		if strings.HasPrefix(k, "index.") && v == "" {
			return &parseError{token: k + " has empty value"}
		}
	}
	return nil
}
