package elastic

import "wasabi/internal/apps/meta"

// Manifest is the ground-truth record of every retry code structure in
// this package; detectors never read it.
func Manifest() []meta.Structure {
	return []meta.Structure{
		{
			App: "EL", Coordinator: "elastic.TransportClient.Send",
			Retried: []string{"elastic.TransportClient.sendOnce"},
			File:    "client.go", Mechanism: meta.Loop, Trigger: meta.Exception,
			Keyworded: true,
			Note:      "correct: cap + backoff, IllegalArgumentException excluded",
		},
		{
			App: "EL", Coordinator: "elastic.BulkRetrier.IndexDoc",
			Retried: []string{"elastic.BulkRetrier.indexOnce"},
			File:    "client.go", Mechanism: meta.Loop, Trigger: meta.Exception,
			Keyworded: true, HarnessRetried: true,
			Note: "correct cap; the bulk pipeline re-drives it per document (missing-cap FP source, §4.3)",
		},
		{
			App: "EL", Coordinator: "elastic.WatcherService.Reload",
			Retried: []string{"elastic.WatcherService.loadWatches"},
			File:    "client.go", Mechanism: meta.Loop, Trigger: meta.Exception,
			Keyworded: true, Bug: meta.MissingDelay,
			Note: "WHEN: reload attempts hit the system index back to back",
		},
		{
			App: "EL", Coordinator: "elastic.ResultsPersister.PersistResults",
			Retried: []string{"elastic.ResultsPersister.writeResults"},
			File:    "client.go", Mechanism: meta.Loop, Trigger: meta.Exception,
			Keyworded: true, Bug: meta.WrongPolicyRetried,
			Note: "IF: cancellation bundled with recoverable I/O errors and retried (ELASTIC-53687); invisible to WASABI's detectors (false negative)",
		},
		{
			App: "EL", Coordinator: "elastic.MasterElection.JoinLoop",
			Retried: []string{"elastic.MasterElection.requestVote"},
			File:    "client.go", Mechanism: meta.Loop, Trigger: meta.Exception,
			Keyworded: true, Bug: meta.MissingCap,
			Note: "WHEN: unbounded vote-request retry; uncovered by the suite (static-only find)",
		},
		{
			App: "EL", Coordinator: "elastic.RecoveryTarget.Recover",
			Retried: []string{"elastic.RecoveryTarget.pullSegment"},
			File:    "client.go", Mechanism: meta.Loop, Trigger: meta.Exception,
			Keyworded: true,
			Note:      "correct: cap + backoff; uncovered by the suite",
		},
		{
			App: "EL", Coordinator: "elastic.BulkProcessor.Flush",
			File: "indexing.go", Mechanism: meta.Loop, Trigger: meta.ErrorCode,
			Keyworded: false,
			Note:      "correct 429 back-pressure retry; uninjectable and in a file too large for the LLM",
		},
		{
			App: "EL", Coordinator: "elastic.SnapshotRunner.Drain",
			File: "indexing.go", Mechanism: meta.Queue, Trigger: meta.ErrorCode,
			Keyworded: false,
			Note:      "correct error-code re-queue; uninjectable (§4.2)",
		},
		{
			App: "EL", Coordinator: "elastic.ShardAllocator.Allocate",
			File: "allocator.go", Mechanism: meta.Loop, Trigger: meta.ErrorCode,
			Keyworded: false,
			Note:      "correct throttle retry; uninjectable (§4.2)",
		},
		{
			App: "EL", Coordinator: "elastic.ILMRunner.RunPolicy",
			File: "allocator.go", Mechanism: meta.StateMachine, Trigger: meta.ErrorCode,
			Keyworded: false,
			Note:      "correct status-driven step re-execution; uninjectable (§4.2)",
		},
		{
			App: "EL", Coordinator: "elastic.ReindexWorker.Run",
			File: "indexing.go", Mechanism: meta.Loop, Trigger: meta.ErrorCode,
			Keyworded: false,
			Note:      "correct back-pressure retry; uninjectable (§4.2)",
		},
	}
}
