// Package elastic is the corpus miniature of Elasticsearch (EL in the
// evaluation): transport client, bulk indexing, watcher reload, analytics
// results persistence, master election and recovery. Like the real
// system, much of its retry is error-code driven and uninjectable (§4.2),
// giving EL the lowest dynamic retry coverage in Table 5; it also carries
// the ELASTIC-53687 cancel-retried policy bug (§2.2).
//
// Ground truth lives in manifest.go; detectors never read it.
package elastic

import (
	"context"

	"wasabi/internal/apps/common"
	"wasabi/internal/trace"
)

// App is a miniature three-node Elasticsearch cluster.
type App struct {
	Config  *common.Config
	Cluster *common.Cluster
	State   *common.KV // cluster state: indices, jobs, snapshots
}

// New constructs a cluster with default configuration.
func New() *App {
	return &App{
		Config: common.NewConfig(map[string]string{
			"es.transport.retries":      "4",
			"es.bulk.retries":           "3",
			"es.watcher.reload.retries": "5",
			"es.persister.retries":      "6",
			"es.recovery.retries":       "4",
			"es.reindex.batch.attempts": "3",
		}),
		Cluster: common.NewCluster("es1", "es2", "es3"),
		State:   common.NewKV(),
	}
}

// log emits an application log line into the run trace.
func (a *App) log(ctx context.Context, format string, args ...any) {
	trace.Note(ctx, "[elastic] "+format, args...)
}
