package elastic

import (
	"context"
	"strconv"

	"wasabi/internal/testkit"
)

// workloadTests are end-to-end scenario tests; each covers several retry
// locations the focused tests also reach (§3.1.4 planning redundancy).
func workloadTests() []testkit.Test {
	return []testkit.Test{
		{
			Name: "elastic.TestIngestFlow", App: "EL",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				if err := NewTransportClient(app).Send(ctx, "es1", "indices:create"); err != nil {
					return err
				}
				b := NewBulkRetrier(app)
				for i := 0; i < 8; i++ {
					if err := b.IndexDoc(ctx, "flow-"+strconv.Itoa(i)); err != nil {
						return err
					}
				}
				n, err := NewWatcherService(app).Reload(ctx)
				if err != nil {
					return err
				}
				return testkit.Assertf(n >= 0, "watch count = %d", n)
			},
		},
		{
			Name: "elastic.TestAnalyticsFlow", App: "EL",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				p := NewResultsPersister(app)
				if err := p.PersistResults(ctx, &AnalyticsJob{ID: "flow-j"}); err != nil {
					return err
				}
				return NewTransportClient(app).Send(ctx, "es2", "cluster:stats")
			},
		},
	}
}
