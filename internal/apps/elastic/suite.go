package elastic

import (
	"context"
	"strconv"

	"wasabi/internal/errmodel"
	"wasabi/internal/testkit"
)

// Suite returns the Elasticsearch miniature's existing unit-test suite.
// The master election and shard recovery loops are never exercised, and
// the error-code machinery is tested only through status stubs — giving
// EL the lowest injectable retry coverage, as in Table 5.
func Suite() testkit.Suite {
	s := testkit.Suite{App: "EL", Name: "ElasticSearch", Tests: []testkit.Test{
		{
			Name: "elastic.TestTransportSend", App: "EL",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				if err := NewTransportClient(app).Send(ctx, "es2", "indices:stats"); err != nil {
					return err
				}
				v, _ := app.Cluster.Node("es2").Store.Get("action/last")
				return testkit.Assertf(v == "indices:stats", "action = %q", v)
			},
		},
		{
			Name: "elastic.TestTransportRejectsEmptyAction", App: "EL",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				err := NewTransportClient(app).Send(ctx, "es1", "")
				if err == nil {
					return testkit.Assertf(false, "expected IllegalArgumentException")
				}
				if errmodel.IsClass(err, "IllegalArgumentException") {
					return nil
				}
				return err
			},
		},
		{
			Name: "elastic.TestBulkPipeline", App: "EL",
			RetryLabeled: true,
			Overrides:    map[string]string{"es.bulk.retries": "1"},
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				b := NewBulkRetrier(app)
				// The pipeline indexes a large batch and tolerates
				// per-document failures (they are re-fed next cycle).
				ok := 0
				for i := 0; i < 40; i++ {
					if err := b.IndexDoc(ctx, "doc-"+strconv.Itoa(i)); err == nil {
						ok++
					}
				}
				return testkit.Assertf(ok > 0, "no document indexed")
			},
		},
		{
			Name: "elastic.TestWatcherReload", App: "EL",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				app.State.Put("watch/w1", "def")
				n, err := NewWatcherService(app).Reload(ctx)
				if err != nil {
					return err
				}
				return testkit.Assertf(n == 1, "watches = %d", n)
			},
		},
		{
			Name: "elastic.TestPersistResults", App: "EL",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				p := NewResultsPersister(app)
				if err := p.PersistResults(ctx, &AnalyticsJob{ID: "j1"}); err != nil {
					return err
				}
				v, _ := app.State.Get("results/j1")
				return testkit.Assertf(v == "persisted", "results = %q", v)
			},
		},
		{
			Name: "elastic.TestBulkFlushBackpressure", App: "EL",
			RetryLabeled: true,
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				b := NewBulkProcessor(app)
				b.SetStatusSource(func(batch, attempt int) int {
					if attempt == 0 {
						return 429
					}
					return 200
				})
				b.Add("d1")
				status := b.Flush(ctx, 0)
				return testkit.Assertf(status == 200, "status = %d", status)
			},
		},
		{
			Name: "elastic.TestSnapshotThrottleFallsBack", App: "EL",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				s := NewSnapshotRunner(app)
				s.SetStatusSource(func(string) string { return "THROTTLED" })
				s.Enqueue("repo1")
				s.Drain(ctx)
				return testkit.Assertf(len(s.Failed) == 1, "failed = %v", s.Failed)
			},
		},
		{
			Name: "elastic.TestShardAllocatorThrottle", App: "EL",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				a := NewShardAllocator(app)
				a.SetStatusSource(func(shard string, round int) string {
					if round == 0 {
						return "THROTTLED"
					}
					return "YES"
				})
				status := a.Allocate(ctx, "s0")
				return testkit.Assertf(status == "YES", "status = %q", status)
			},
		},
		{
			Name: "elastic.TestILMPolicyWaits", App: "EL",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				r := NewILMRunner(app)
				r.SetStatusSource(func(index, step string, tick int) string {
					if step == "shrink" && tick < 3 {
						return "WAIT"
					}
					return "COMPLETE"
				})
				status := r.RunPolicy(ctx, "logs-1")
				return testkit.Assertf(status == "COMPLETE", "status = %q", status)
			},
		},
		{
			Name: "elastic.TestReindexBatches", App: "EL",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				w := NewReindexWorker(app)
				ok := w.Run(ctx, 4)
				if err := testkit.Assertf(ok, "reindex failed"); err != nil {
					return err
				}
				return testkit.Assertf(w.Copied == 4, "copied = %d", w.Copied)
			},
		},
		{
			Name: "elastic.TestParseUpdateRequest", App: "EL",
			Body: func(ctx context.Context, o map[string]string) error {
				req, err := ParseUpdateRequest("index=logs&id=7&retry_on_conflict=3")
				if err != nil {
					return err
				}
				if err := testkit.Assertf(req.RetryOnConflict == 3, "roc = %d", req.RetryOnConflict); err != nil {
					return err
				}
				_, err = ParseUpdateRequest("id=7")
				return testkit.Assertf(err != nil, "missing index accepted")
			},
		},
		{
			Name: "elastic.TestHealthPoller", App: "EL",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				app.State.Put("cluster/health", "green")
				ok := NewHealthPoller(app).WaitForGreen(ctx, 2)
				return testkit.Assertf(ok, "never green")
			},
		},
		{
			Name: "elastic.TestSettingsValidator", App: "EL",
			Body: func(ctx context.Context, o map[string]string) error {
				var v SettingsValidator
				if err := testkit.Assertf(v.Validate(map[string]string{"index.refresh": "1s"}) == nil, "valid settings rejected"); err != nil {
					return err
				}
				return testkit.Assertf(v.Validate(map[string]string{"index.bad": ""}) != nil, "empty value accepted")
			},
		},
	}}
	s.Tests = append(s.Tests, workloadTests()...)
	return s
}
