package elastic

import (
	"context"
	"time"

	"wasabi/internal/vclock"
)

// Shard allocation and index lifecycle management: both retry on STATUS
// decisions (throttling), not exceptions, so injection cannot exercise
// them (§4.2); the fuzzy reader identifies them from their vocabulary.

// Allocation decision codes.
const (
	allocYes       = "YES"
	allocThrottled = "THROTTLED"
	allocNo        = "NO"
)

// ShardAllocator places unassigned shards onto nodes.
type ShardAllocator struct {
	app     *App
	statusF func(shard string, round int) string
	// Placed counts allocated shards.
	Placed int
}

// NewShardAllocator returns an allocator whose deciders always say yes;
// tests replace statusF.
func NewShardAllocator(app *App) *ShardAllocator {
	return &ShardAllocator{
		app:     app,
		statusF: func(string, int) string { return allocYes },
	}
}

// SetStatusSource replaces the decider status source.
func (a *ShardAllocator) SetStatusSource(f func(shard string, round int) string) { a.statusF = f }

// Allocate tries to place a shard. THROTTLED decisions are re-evaluated
// after a pause, bounded; NO is final for this round.
func (a *ShardAllocator) Allocate(ctx context.Context, shard string) string {
	const maxRounds = 5
	for round := 0; round < maxRounds; round++ {
		switch status := a.statusF(shard, round); status {
		case allocYes:
			a.Placed++
			a.app.State.Put("shard/"+shard, "allocated")
			return allocYes
		case allocNo:
			a.app.log(ctx, "shard %s cannot be allocated", shard)
			return allocNo
		case allocThrottled:
			a.app.log(ctx, "allocation of %s throttled, re-evaluating", shard)
			vclock.Sleep(ctx, 150*time.Millisecond)
		}
	}
	return allocThrottled
}

// ILM (index lifecycle management) step outcomes.
const (
	ilmComplete = "COMPLETE"
	ilmWait     = "WAIT"
	ilmError    = "ERROR"
)

// ILMRunner advances indices through their lifecycle policies as a
// status-driven state machine: a WAIT outcome re-executes the same step
// on the next run.
type ILMRunner struct {
	app     *App
	statusF func(index, step string, tick int) string
	// Advanced counts completed steps.
	Advanced int
}

// ilmSteps is the lifecycle step order.
var ilmSteps = []string{"rollover", "shrink", "forcemerge", "delete"}

// NewILMRunner returns a runner whose steps always complete; tests
// replace statusF.
func NewILMRunner(app *App) *ILMRunner {
	return &ILMRunner{
		app:     app,
		statusF: func(string, string, int) string { return ilmComplete },
	}
}

// SetStatusSource replaces the step status source.
func (r *ILMRunner) SetStatusSource(f func(index, step string, tick int) string) { r.statusF = f }

// RunPolicy drives an index through all lifecycle steps. A WAIT outcome
// leaves the current step unchanged and re-executes it on the next tick
// (with a pause), up to a tick budget; ERROR aborts the policy.
func (r *ILMRunner) RunPolicy(ctx context.Context, index string) string {
	const maxTicks = 20
	step := 0
	for tick := 0; tick < maxTicks && step < len(ilmSteps); tick++ {
		switch status := r.statusF(index, ilmSteps[step], tick); status {
		case ilmComplete:
			r.Advanced++
			step++
		case ilmError:
			r.app.log(ctx, "ilm step %s failed for %s", ilmSteps[step], index)
			return ilmError
		case ilmWait:
			vclock.Sleep(ctx, 500*time.Millisecond)
		}
	}
	if step == len(ilmSteps) {
		r.app.State.Put("ilm/"+index, "complete")
		return ilmComplete
	}
	return ilmWait
}
