package elastic

import (
	"context"
	"testing"

	"wasabi/internal/fault"
	"wasabi/internal/trace"
)

func injected(coordinator, retried, exc string, k int) (context.Context, *trace.Run) {
	in := fault.NewInjector([]fault.Rule{{
		Loc: fault.Location{Coordinator: coordinator, Retried: retried, Exception: exc},
		K:   k,
	}})
	run := trace.NewRun("t")
	return fault.With(trace.With(context.Background(), run), in), run
}

// TestPersistRetriesCancelledJob demonstrates ELASTIC-53687: the
// persister keeps re-writing results for a cancelled job.
func TestPersistRetriesCancelledJob(t *testing.T) {
	app := New()
	p := NewResultsPersister(app)
	job := &AnalyticsJob{ID: "j1", Cancelled: true}
	err := p.PersistResults(context.Background(), job)
	if err == nil {
		t.Fatal("cancelled job should eventually fail")
	}
	// Every attempt in the budget was burned on a dead job.
	if p.Persisted != 0 {
		t.Errorf("persisted = %d", p.Persisted)
	}
}

// TestWatcherReloadBackToBack demonstrates the missing-delay bug.
func TestWatcherReloadBackToBack(t *testing.T) {
	app := New()
	ctx, run := injected("elastic.WatcherService.Reload", "elastic.WatcherService.loadWatches", "EOFException", 2)
	if _, err := NewWatcherService(app).Reload(ctx); err != nil {
		t.Fatalf("should heal: %v", err)
	}
	for _, e := range run.Events() {
		if e.Kind == trace.KindSleep {
			t.Error("no sleep expected between reload attempts (that is the bug)")
		}
	}
}

// TestJoinLoopUnbounded demonstrates the missing-cap bug.
func TestJoinLoopUnbounded(t *testing.T) {
	app := New()
	ctx, run := injected("elastic.MasterElection.JoinLoop", "elastic.MasterElection.requestVote", "ConnectException", 130)
	NewMasterElection(app).JoinLoop(ctx)
	injections := 0
	for _, e := range run.Events() {
		if e.Kind == trace.KindInjection {
			injections++
		}
	}
	if injections != 130 {
		t.Errorf("injections = %d; only healing bounds this loop", injections)
	}
}

// TestBulkFlushBadRequestFinal checks 400 is never re-sent.
func TestBulkFlushBadRequestFinal(t *testing.T) {
	app := New()
	b := NewBulkProcessor(app)
	calls := 0
	b.SetStatusSource(func(int, int) int {
		calls++
		return 400
	})
	if status := b.Flush(context.Background(), 0); status != 400 {
		t.Fatalf("status = %d", status)
	}
	if calls != 1 {
		t.Errorf("calls = %d; a 400 must not be re-sent", calls)
	}
}

// TestReindexGivesUpAfterBudget checks back-pressure exhaustion fails the
// reindex.
func TestReindexGivesUpAfterBudget(t *testing.T) {
	app := New()
	w := NewReindexWorker(app)
	w.SetStatusSource(func(int, int) int { return 429 })
	if ok := w.Run(context.Background(), 2); ok {
		t.Error("persistent 429 should fail the reindex")
	}
	if w.Copied != 0 {
		t.Errorf("copied = %d", w.Copied)
	}
}

// TestChores exercises the non-retry housekeeping services.
func TestChores(t *testing.T) {
	app := New()
	ctx := context.Background()
	app.State.Put("docs/i1", "100")
	app.State.Put("docs/i2", "bad")
	c := NewIndexStatsCollector(app)
	c.CollectOnce(ctx)
	if c.Docs != 100 || c.Bad != 1 {
		t.Errorf("collector = %+v", c)
	}
	app.State.Put("dangling/d1", "importable")
	app.State.Put("dangling/d2", "tombstoned")
	app.State.Put("dangling/d3", "???")
	sw := NewDanglingIndexSweeper(app)
	sw.SweepOnce(ctx)
	if sw.Imported != 1 || sw.Dropped != 1 {
		t.Errorf("sweeper = %+v", sw)
	}
	app.State.Put("template/t1", "logs-*,metrics-*")
	app.State.Put("template/t2", "")
	ta := NewTemplateAuditor(app)
	ta.AuditOnce(ctx)
	if len(ta.Invalid) != 1 {
		t.Errorf("auditor = %v", ta.Invalid)
	}
	app.State.Put("breaker/b1", "tripped")
	app.State.Put("breaker/b2", "closed")
	br := NewBreakerReset(app)
	br.ResetOnce(ctx)
	if br.Reset != 1 {
		t.Errorf("breaker = %+v", br)
	}
}
