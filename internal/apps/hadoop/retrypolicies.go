package hadoop

import (
	"time"

	"wasabi/internal/errmodel"
	"wasabi/internal/resilience"
)

// This file only DEFINES retry policies for other modules to use — it
// performs no retry itself. The paper's Q1 prompt explicitly instructs
// the model to answer "No" for such files ("Say NO if the file only
// _defines_ or _creates_ retry policies, or only passes retry parameters
// to other builders/constructors").

// RetryForever returns a policy that retries every error with a fixed
// one-second delay and a very large attempt budget.
func RetryForever() *resilience.Policy {
	return resilience.NewPolicy(1<<30, resilience.WithFixedDelay(time.Second))
}

// RetryUpToMaximumCountWithFixedSleep returns a policy bounded by
// maxRetries attempts with a fixed delay between them.
func RetryUpToMaximumCountWithFixedSleep(maxRetries int, delay time.Duration) *resilience.Policy {
	return resilience.NewPolicy(maxRetries, resilience.WithFixedDelay(delay))
}

// ExponentialBackoffRetry returns a policy with exponential backoff from
// base up to max and the given retry budget.
func ExponentialBackoffRetry(maxRetries int, base, max time.Duration) *resilience.Policy {
	return resilience.NewPolicy(maxRetries, resilience.WithExponentialBackoff(base, max))
}

// RetryOnNetworkErrors returns a bounded policy that retries only the
// network exception family; everything else fails fast.
func RetryOnNetworkErrors(maxRetries int) *resilience.Policy {
	return resilience.NewPolicy(maxRetries,
		resilience.WithFixedDelay(500*time.Millisecond),
		resilience.WithRetryOn(func(err error) bool {
			return errmodel.IsClass(err, "ConnectException") ||
				errmodel.IsClass(err, "SocketTimeoutException") ||
				errmodel.IsClass(err, "TimeoutException")
		}),
	)
}

// RetryByRemoteException returns a bounded policy retrying only wrapped
// remote failures.
func RetryByRemoteException(maxRetries int) *resilience.Policy {
	return resilience.NewPolicy(maxRetries,
		resilience.WithFixedDelay(time.Second),
		resilience.WithRetryOn(func(err error) bool {
			return errmodel.CauseIsClass(err, "RemoteException")
		}),
	)
}
