package hadoop

import (
	"context"
	"strconv"
	"strings"
	"time"

	"wasabi/internal/vclock"
)

// Non-retry Hadoop Common services: per-item error-tolerant iteration,
// pollers, and configuration parsing. The iteration loops are structural
// retry look-alikes (error check falling through to the next item) that
// only the keyword filter prunes (§4.4); the parser carries retry-named
// parameters, the paper's object-construction FP mode for the LLM (§4.2).

// DiskChecker validates local storage directories.
type DiskChecker struct {
	app *App
	// Bad lists directories that failed validation this round.
	Bad []string
}

// NewDiskChecker returns a checker.
func NewDiskChecker(app *App) *DiskChecker { return &DiskChecker{app: app} }

// checkDir validates one directory.
func (d *DiskChecker) checkDir(dir string) error {
	if v, _ := d.app.Store.Get("disk/" + dir); v == "bad" {
		return &diskError{dir: dir}
	}
	return nil
}

// CheckAll validates every configured directory once, recording failures
// and moving on — per-item tolerance, not retry.
func (d *DiskChecker) CheckAll(ctx context.Context, dirs []string) {
	for _, dir := range dirs {
		if err := d.checkDir(dir); err != nil {
			d.app.log(ctx, "disk check failed: %v", err)
			d.Bad = append(d.Bad, dir)
			continue
		}
	}
}

type diskError struct{ dir string }

func (e *diskError) Error() string { return "bad disk " + e.dir }

// WaitForSafemodeExit polls the namenode safemode flag until it clears or
// the poll budget runs out — status polling, not retry.
func WaitForSafemodeExit(ctx context.Context, app *App, polls int) bool {
	for i := 0; i < polls; i++ {
		if v, _ := app.Store.Get("nn/safemode"); v != "on" {
			return true
		}
		vclock.Sleep(ctx, 200*time.Millisecond)
	}
	return false
}

// ClientOptions is a parsed client configuration bundle. It CARRIES retry
// parameters but performs no retry — exactly the shape the paper reports
// GPT-4 sometimes mislabels as retry logic.
type ClientOptions struct {
	MaxRetries    int
	RetryDelay    time.Duration
	RetryOnIdle   bool
	FailoverProxy string
}

// ParseClientOptions parses "key=value" pairs such as
// "retries=3,retryDelay=1s,retryOnIdle=true".
func ParseClientOptions(spec string) (ClientOptions, error) {
	opts := ClientOptions{MaxRetries: 4, RetryDelay: time.Second}
	if spec == "" {
		return opts, nil
	}
	for _, kv := range strings.Split(spec, ",") {
		parts := strings.SplitN(kv, "=", 2)
		if len(parts) != 2 {
			return opts, &optionError{kv: kv}
		}
		switch parts[0] {
		case "retries":
			n, err := strconv.Atoi(parts[1])
			if err != nil {
				return opts, &optionError{kv: kv}
			}
			opts.MaxRetries = n
		case "retryDelay":
			d, err := time.ParseDuration(parts[1])
			if err != nil {
				return opts, &optionError{kv: kv}
			}
			opts.RetryDelay = d
		case "retryOnIdle":
			opts.RetryOnIdle = parts[1] == "true"
		case "failoverProxy":
			opts.FailoverProxy = parts[1]
		default:
			return opts, &optionError{kv: kv}
		}
	}
	return opts, nil
}

type optionError struct{ kv string }

func (e *optionError) Error() string { return "bad client option " + e.kv }

// MetricsPublisher emits metrics snapshots on a schedule; publish errors
// are dropped (the next snapshot supersedes them).
type MetricsPublisher struct {
	app *App
	// Published counts successful snapshots.
	Published int
}

// NewMetricsPublisher returns a publisher.
func NewMetricsPublisher(app *App) *MetricsPublisher { return &MetricsPublisher{app: app} }

// PublishRounds emits n scheduled snapshots.
func (m *MetricsPublisher) PublishRounds(ctx context.Context, n int) {
	for i := 0; i < n; i++ {
		if v, _ := m.app.Store.Get("metrics/sink"); v == "down" {
			m.app.log(ctx, "metrics sink unavailable; dropping snapshot %d", i)
		} else {
			m.Published++
		}
		vclock.Sleep(ctx, time.Second)
	}
}
