package hadoop

import (
	"context"
	"strconv"
	"time"

	"wasabi/internal/apps/common"
	"wasabi/internal/errmodel"
	"wasabi/internal/fault"
	"wasabi/internal/vclock"
)

// ExitUtil runs external commands whose failures surface as exceptions.
type ExitUtil struct {
	app *App
}

// NewExitUtil returns a runner.
func NewExitUtil(app *App) *ExitUtil { return &ExitUtil{app: app} }

// runCommand executes one external command.
//
// Throws: ExitException, IOException.
func (e *ExitUtil) runCommand(ctx context.Context, cmd string) error {
	if err := fault.Hook(ctx); err != nil {
		return err
	}
	e.app.Store.Put("cmd/"+cmd, "ran")
	return nil
}

// RunWithRetries re-runs a failed command up to the retry budget.
//
// BUG (IF, wrong retry policy — the ExitException retry-ratio outlier):
// ExitException signals a deliberate process exit and is not retried
// anywhere else in the codebase, yet this loop retries it along with
// transient I/O failures.
func (e *ExitUtil) RunWithRetries(ctx context.Context, cmd string) error {
	const maxRetries = 3
	var last error
	for retry := 0; retry < maxRetries; retry++ {
		err := e.runCommand(ctx, cmd)
		if err == nil {
			return nil
		}
		last = err
		vclock.Sleep(ctx, 100*time.Millisecond)
	}
	return last
}

// ServiceLauncher boots long-running services.
type ServiceLauncher struct {
	app *App
}

// NewServiceLauncher returns a launcher.
func NewServiceLauncher(app *App) *ServiceLauncher { return &ServiceLauncher{app: app} }

// launchOnce starts the named service once.
//
// Throws: ExitException, ServiceException.
func (l *ServiceLauncher) launchOnce(ctx context.Context, svc string) error {
	if err := fault.Hook(ctx); err != nil {
		return err
	}
	l.app.Store.Put("service/"+svc, "up")
	return nil
}

// LaunchLoop starts a service, retrying transient failures; a deliberate
// exit (ExitException) is final and never retried — the majority policy
// for that exception.
func (l *ServiceLauncher) LaunchLoop(ctx context.Context, svc string) error {
	maxRetries := l.app.Config.GetInt("service.launch.retries", 3)
	var last error
	for retry := 0; retry < maxRetries; retry++ {
		err := l.launchOnce(ctx, svc)
		if err == nil {
			return nil
		}
		if errmodel.IsClass(err, "ExitException") {
			return err
		}
		last = err
		vclock.Sleep(ctx, 200*time.Millisecond)
	}
	return last
}

// pushTask is a queued configuration push with its own attempt budget.
type pushTask struct {
	node     string
	attempts int
}

// ConfigPusher distributes configuration to every node through a work
// queue; failed pushes are re-submitted.
type ConfigPusher struct {
	app   *App
	queue *common.Queue[*pushTask]
	// Pushed counts completed pushes.
	Pushed int
}

// NewConfigPusher returns a pusher with an empty queue.
func NewConfigPusher(app *App) *ConfigPusher {
	return &ConfigPusher{app: app, queue: common.NewQueue[*pushTask]()}
}

// Submit enqueues a push to a node.
func (p *ConfigPusher) Submit(node string) {
	p.queue.Put(&pushTask{node: node})
}

// pushOnce delivers the configuration bundle to one node.
//
// Throws: ConnectException.
func (p *ConfigPusher) pushOnce(ctx context.Context, node string) error {
	if err := fault.Hook(ctx); err != nil {
		return err
	}
	return p.app.Cluster.Call(ctx, node, func(n *common.Node) error {
		n.Store.Put("conf/version", "v2")
		return nil
	})
}

// processPush handles one queued push: transient failures re-submit the
// task for retry after a pause, bounded per task.
func (p *ConfigPusher) processPush(ctx context.Context, task *pushTask) error {
	maxRetries := p.app.Config.GetInt("config.push.retries", 4)
	if err := p.pushOnce(ctx, task.node); err != nil {
		if task.attempts < maxRetries {
			task.attempts++
			vclock.Sleep(ctx, 150*time.Millisecond)
			p.queue.Put(task) // re-submit for retry
			return nil
		}
		return err
	}
	p.Pushed++
	return nil
}

// Drain processes queued pushes until empty.
func (p *ConfigPusher) Drain(ctx context.Context) error {
	for {
		task, ok := p.queue.Take()
		if !ok {
			return nil
		}
		if err := p.processPush(ctx, task); err != nil {
			return err
		}
	}
}

// KMSClient talks to the key-management service.
type KMSClient struct {
	app *App
}

// NewKMSClient returns a client.
func NewKMSClient(app *App) *KMSClient { return &KMSClient{app: app} }

// decryptOnce asks the KMS to decrypt one encrypted key.
//
// Throws: SocketTimeoutException.
func (k *KMSClient) decryptOnce(ctx context.Context, keyID int) (string, error) {
	if err := fault.Hook(ctx); err != nil {
		return "", err
	}
	vclock.Elapse(ctx, time.Millisecond)
	return "plain-" + strconv.Itoa(keyID), nil
}

// Decrypt decrypts a key with bounded, delayed retry.
func (k *KMSClient) Decrypt(ctx context.Context, keyID int) (string, error) {
	maxRetries := k.app.Config.GetInt("kms.client.failover.max.retries", 3)
	var last error
	for retry := 0; retry < maxRetries; retry++ {
		plain, err := k.decryptOnce(ctx, keyID)
		if err == nil {
			return plain, nil
		}
		last = err
		vclock.Sleep(ctx, vclock.Backoff(100*time.Millisecond, retry, time.Second))
	}
	return "", last
}
